(** Regenerate the experiment tables (DESIGN.md Section 4 /
    EXPERIMENTS.md).

    Usage:
      experiments [--full | --quick] [--markdown] [--jobs N] [ID ...]

    With no IDs, runs the whole suite in DESIGN.md order.  [--jobs N]
    runs the selected experiments on N worker domains (0 = one per
    core); the printed report is byte-identical at every job count
    because outputs are collected first and rendered in spec order. *)

open Cmdliner
module A = Ccache_analysis

let run full quick markdown jobs ids =
  if full && quick then begin
    Fmt.epr "--full and --quick are mutually exclusive@.";
    exit 2
  end;
  let size = if full then A.Experiment.Full else A.Experiment.Quick in
  let fmt = if markdown then A.Report.Markdown else A.Report.Text in
  let specs =
    match ids with
    | [] -> A.Suite.all
    | ids ->
        List.map
          (fun id ->
            match A.Suite.find (String.lowercase_ascii id) with
            | Some s -> s
            | None ->
                Fmt.epr "unknown experiment %S; known: %s@." id
                  (String.concat ", " A.Suite.ids);
                exit 2)
          ids
  in
  if jobs < 0 then begin
    Fmt.epr "--jobs must be >= 0@.";
    exit 2
  end;
  let report =
    if jobs = 1 then A.Report.run_suite ~fmt ~size specs
    else
      let size_opt = if jobs = 0 then None else Some jobs in
      Ccache_util.Domain_pool.with_pool ?size:size_opt (fun pool ->
          A.Report.run_suite ~fmt ~pool ~size specs)
  in
  print_string report;
  0

let full =
  Arg.(value & flag & info [ "full" ] ~doc:"Full-size runs (EXPERIMENTS.md scale).")

let quick =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Quick-size runs (the default; rejects --full).")

let markdown =
  Arg.(value & flag & info [ "markdown" ] ~doc:"Emit markdown tables.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run experiments on $(docv) worker domains (default 1 = \
           sequential, 0 = one per core, i.e. CCACHE_JOBS or the \
           recommended domain count).  Output is identical at every N.")

let ids =
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (e1..e10).")

let cmd =
  Cmd.v
    (Cmd.info "experiments" ~doc:"Reproduce the convex-caching experiment suite")
    Term.(const run $ full $ quick $ markdown $ jobs $ ids)

let () = exit (Cmd.eval' cmd)
