(** Regenerate the experiment tables (DESIGN.md Section 4 /
    EXPERIMENTS.md).

    Usage:
      experiments [--full | --quick] [--markdown] [--jobs N]
                  [--fused | --no-fused] [ID ...]
                  [--timeout S] [--retries N] [--backoff S] [--jitter J]
                  [--chaos SEED:RATE] [--kill ID]
                  [--checkpoint FILE] [--resume]

    With no IDs, runs the whole suite in DESIGN.md order.  [--jobs N]
    runs the selected experiments on N worker domains (0 = one per
    core); the printed report is byte-identical at every job count
    because outputs are collected first and rendered in spec order.

    The suite always runs under the supervised runner: injected
    transients and deadline misses are retried with deterministic
    backoff, and a permanently-failing experiment is quarantined (its
    section omitted, a report on stderr, exit code 3) while the rest of
    the suite completes.  [--chaos] / CCACHE_CHAOS inject deterministic
    faults for testing; with the default retry budget the report is
    byte-identical to a fault-free run.  [--checkpoint] snapshots
    completed sections atomically; [--resume] replays them bit-for-bit. *)

open Cmdliner
module A = Ccache_analysis
module U = Ccache_util

let quarantine_exit = 3

let make_fault ~chaos ~kill =
  let base =
    match chaos with
    | Some spec -> (
        match U.Fault.of_spec spec with
        | Ok f -> f
        | Error e ->
            Fmt.epr "%s@." e;
            exit 2)
    | None -> (
        match U.Fault.from_env () with
        | Ok (Some f) -> f
        | Ok None -> U.Fault.none
        | Error e ->
            Fmt.epr "%s@." e;
            exit 2)
  in
  if kill = [] then base else U.Fault.kill base kill

let make_policy ~timeout ~retries ~backoff ~jitter =
  if retries < 0 then begin
    Fmt.epr "--retries must be >= 0@.";
    exit 2
  end;
  {
    U.Supervisor.default_policy with
    max_retries = retries;
    timeout_s = timeout;
    backoff_base_s = backoff;
    jitter;
  }

let make_checkpoint ~path ~resume ~fingerprint =
  match (path, resume) with
  | None, false -> None
  | None, true ->
      Fmt.epr "--resume requires --checkpoint FILE@.";
      exit 2
  | Some p, true -> (
      (* missing file = nothing to resume: start fresh *)
      match U.Checkpoint.load_or_create ~path:p ~fingerprint () with
      | Ok ck -> Some ck
      | Error e ->
          Fmt.epr "cannot resume: %s@." e;
          exit 2)
  | Some p, false -> Some (U.Checkpoint.create ~path:p ~fingerprint ())

let pp_event ppf = function
  | U.Supervisor.Retrying { task; attempt; delay_s; error } ->
      Fmt.pf ppf "[supervisor] %s: attempt %d after %.3fs backoff (%s)" task
        attempt delay_s error
  | U.Supervisor.Gave_up { task; attempts; error } ->
      Fmt.pf ppf "[supervisor] %s: quarantined after %d attempt(s): %s" task
        attempts error
  | U.Supervisor.Replayed { task } ->
      Fmt.pf ppf "[supervisor] %s: replayed from checkpoint" task

let run full quick markdown jobs fused timeout retries backoff jitter chaos
    kill checkpoint_path resume trace_cache trace_out metrics_out ids =
  if full && quick then begin
    Fmt.epr "--full and --quick are mutually exclusive@.";
    exit 2
  end;
  Ccache_sim.Sweep.set_fused fused;
  Ccache_trace.Trace_cache.set_dir trace_cache;
  let size = if full then A.Experiment.Full else A.Experiment.Quick in
  let fmt = if markdown then A.Report.Markdown else A.Report.Text in
  let specs =
    match ids with
    | [] -> A.Suite.all
    | ids ->
        List.map
          (fun id ->
            match A.Suite.find (String.lowercase_ascii id) with
            | Some s -> s
            | None ->
                Fmt.epr "unknown experiment %S; known: %s@." id
                  (String.concat ", " A.Suite.ids);
                exit 2)
          ids
  in
  if jobs < 0 then begin
    Fmt.epr "--jobs must be >= 0@.";
    exit 2
  end;
  let obs = Obs_args.setup ~trace_out ~metrics_out in
  let fault = make_fault ~chaos ~kill in
  let policy = make_policy ~timeout ~retries ~backoff ~jitter in
  let fingerprint = A.Report.fingerprint ~fmt ~size specs in
  let checkpoint = make_checkpoint ~path:checkpoint_path ~resume ~fingerprint in
  let on_event ev = Fmt.epr "%a@." pp_event ev in
  let supervise pool =
    A.Report.run_suite_supervised ~fmt ?pool ~policy ~fault ?checkpoint
      ~on_event ~size specs
  in
  let { A.Report.report; failures; replayed } =
    if jobs = 1 then supervise None
    else
      let size_opt = if jobs = 0 then None else Some jobs in
      U.Domain_pool.with_pool ?size:size_opt (fun pool -> supervise (Some pool))
  in
  print_string report;
  (* all worker domains have joined: shards are complete *)
  Obs_args.finish obs;
  if replayed <> [] then
    Fmt.epr "[supervisor] replayed %d section(s) from %s@."
      (List.length replayed)
      (Option.value checkpoint_path ~default:"checkpoint");
  if failures = [] then 0
  else begin
    List.iter
      (fun { U.Supervisor.task; attempts; error } ->
        Fmt.epr "quarantined: %s (after %d attempt(s)): %s@." task attempts
          error)
      failures;
    (match checkpoint_path with
    | Some p ->
        Fmt.epr
          "partial results checkpointed to %s; rerun with --checkpoint %s \
           --resume to complete@."
          p p
    | None ->
        Fmt.epr "hint: rerun with --checkpoint FILE to make the run resumable@.");
    quarantine_exit
  end

let full =
  Arg.(value & flag & info [ "full" ] ~doc:"Full-size runs (EXPERIMENTS.md scale).")

let quick =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Quick-size runs (the default; rejects --full).")

let markdown =
  Arg.(value & flag & info [ "markdown" ] ~doc:"Emit markdown tables.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run experiments on $(docv) worker domains (default 1 = \
           sequential, 0 = one per core, i.e. CCACHE_JOBS or the \
           recommended domain count).  Output is identical at every N.")

let fused =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "fused" ]
              ~doc:
                "Scan each shared trace once for a whole grid of engine \
                 cells (the default).  Byte-identical to --no-fused; CI \
                 enforces the equivalence." );
          ( false,
            info [ "no-fused" ]
              ~doc:"Run every engine cell as its own trace scan." );
        ])

let timeout =
  Arg.(
    value & opt (some float) None
    & info [ "timeout" ] ~docv:"S"
        ~doc:
          "Per-attempt deadline in seconds; an experiment past it is \
           retried, then quarantined (default: none).")

let retries =
  Arg.(
    value & opt int U.Supervisor.default_policy.U.Supervisor.max_retries
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry budget for transient faults and deadline misses \
           (default 3).  Backoff is deterministic and jitter-free.")

let backoff =
  Arg.(
    value & opt float U.Supervisor.default_policy.U.Supervisor.backoff_base_s
    & info [ "backoff" ] ~docv:"S"
        ~doc:
          "Base backoff before the first retry, in seconds; doubles per \
           retry, capped at 1s (default 0.05).")

let jitter =
  Arg.(
    value & opt float 0.
    & info [ "jitter" ] ~docv:"J"
        ~doc:
          "Seeded backoff jitter fraction in [0,1] (default 0 = \
           jitter-free; any value stays deterministic).")

let chaos =
  Arg.(
    value & opt (some string) None
    & info [ "chaos" ] ~docv:"SEED:RATE"
        ~doc:
          "Deterministic fault injection at task boundaries (transient \
           exceptions and short delays).  Falls back to the \
           $(b,CCACHE_CHAOS) environment variable.  With retries \
           enabled the report is byte-identical to a fault-free run.")

let kill =
  Arg.(
    value & opt_all string []
    & info [ "kill" ] ~docv:"ID"
        ~doc:
          "Inject a permanent crash into experiment $(docv) (repeatable). \
           The cell is quarantined; the rest of the suite completes and \
           the exit code is 3.")

let checkpoint =
  Arg.(
    value & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Snapshot completed sections to $(docv) (atomic write on every \
           completion), making the run resumable.")

let resume =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Replay sections already recorded in --checkpoint FILE \
           bit-for-bit and compute only the rest.  Refuses a checkpoint \
           written by a different configuration.")

let trace_cache =
  Arg.(
    value & opt (some string) None
    & info [ "trace-cache" ] ~docv:"DIR"
        ~doc:
          "Cache generated workload traces as .ctrace binaries under \
           $(docv); repeated runs mmap the stored traces instead of \
           regenerating them.  The report is byte-identical either way.")

let ids =
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (e1..e14).")

let trace_out = Obs_args.trace_out
let metrics_out = Obs_args.metrics_out

let cmd =
  Cmd.v
    (Cmd.info "experiments" ~doc:"Reproduce the convex-caching experiment suite")
    Term.(
      const run $ full $ quick $ markdown $ jobs $ fused $ timeout $ retries
      $ backoff $ jitter $ chaos $ kill $ checkpoint $ resume $ trace_cache
      $ trace_out $ metrics_out $ ids)

let () = exit (Cmd.eval' cmd)
