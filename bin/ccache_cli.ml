(** Command-line simulator: run any policy on a generated or saved
    trace and print per-user results.

    Examples:
      ccache_cli run --policy lru --workload sqlvm --length 5000 -k 64
      ccache_cli run --policy alg-discrete --workload zipf --tenants 4 \
          --cost x2 -k 32 --flush
      ccache_cli gen --workload zipf --length 1000 --out trace.txt
      ccache_cli run --policy alg-discrete --trace trace.txt -k 16
      ccache_cli list *)

open Cmdliner
module Cf = Ccache_cost.Cost_function
module W = Ccache_trace.Workloads

let policies () =
  Ccache_policies.Registry.all
  @ [
      Ccache_core.Alg_discrete.policy;
      Ccache_core.Alg_discrete.analytic;
      Ccache_core.Alg_discrete.no_bump;
      Ccache_core.Alg_discrete.no_subtract;
      Ccache_core.Alg_fast.policy;
    ]

let find_policy name =
  List.find_opt (fun p -> Ccache_sim.Policy.name p = name) (policies ())

let make_workload ~workload ~tenants ~pages ~skew ~seed ~length =
  match workload with
  | "zipf" ->
      W.generate ~seed ~length
        (W.symmetric_zipf ~tenants ~pages_per_tenant:pages ~skew)
  | "sqlvm" -> W.generate ~seed ~length (W.sqlvm_mix ~scale:(Stdlib.max 1 (pages / 50)))
  | "cycle" -> W.generate_single ~seed ~length (W.Cycle { pages })
  | "uniform" ->
      W.generate ~seed ~length
        (List.init tenants (fun _ -> W.tenant (W.Uniform { pages })))
  | other -> Fmt.failwith "unknown workload %S (zipf|sqlvm|cycle|uniform)" other

(* Malformed trace input is a usage error: report and exit 2 (matching
   cmdliner's convention), never a backtrace. *)
let with_trace_errors f =
  try f () with
  | Ccache_trace.Trace_io.Parse_error { line; msg } ->
      Fmt.epr "trace parse error at line %d: %s@." line msg;
      exit 2
  | Ccache_trace.Trace_binary.Format_error { offset; msg } ->
      Fmt.epr "binary trace error at byte %d: %s@." offset msg;
      exit 2
  | Sys_error msg ->
      Fmt.epr "%s@." msg;
      exit 2

(* "-" = stdin; format sniffed (binary .ctrace vs text). *)
let load_trace path =
  with_trace_errors (fun () ->
      match path with
      | "-" -> Ccache_trace.Trace_io.of_string_any (In_channel.input_all stdin)
      | path -> Ccache_trace.Trace_io.read_any path)

let set_trace_cache dir = Ccache_trace.Trace_cache.set_dir dir

let make_costs ~cost n =
  match cost with
  | "linear" -> Array.init n (fun _ -> Cf.linear ~slope:1.0 ())
  | "weighted" ->
      Array.init n (fun i -> Cf.linear ~slope:(Float.pow 2.0 (float_of_int i)) ())
  | "x2" -> Array.init n (fun _ -> Cf.monomial ~beta:2.0 ())
  | "x3" -> Array.init n (fun _ -> Cf.monomial ~beta:3.0 ())
  | "sla" ->
      Array.init n (fun i ->
          Ccache_cost.Sla.hinge
            ~tolerance:(float_of_int (30 * (i + 1)))
            ~penalty_rate:(float_of_int (n - i)))
  | other -> Fmt.failwith "unknown cost %S (linear|weighted|x2|x3|sla)" other

(* --- run command --- *)

let run_cmd policy_name trace_file workload tenants pages skew seed length k cost
    flush trace_cache trace_out metrics_out =
  match find_policy policy_name with
  | None ->
      Fmt.epr "unknown policy %S; try the 'list' command@." policy_name;
      2
  | Some policy ->
      set_trace_cache trace_cache;
      let obs = Obs_args.setup ~trace_out ~metrics_out in
      let trace =
        match trace_file with
        | Some path -> load_trace path
        | None -> make_workload ~workload ~tenants ~pages ~skew ~seed ~length
      in
      let costs = make_costs ~cost (Ccache_trace.Trace.n_users trace) in
      let result = Ccache_sim.Engine.run ~flush ~k ~costs policy trace in
      Fmt.pr "%a@." (Ccache_sim.Metrics.pp_result ~costs) result;
      Obs_args.finish obs;
      0

(* --- gen command --- *)

let gen_cmd workload tenants pages skew seed length binary out trace_cache =
  set_trace_cache trace_cache;
  let trace = make_workload ~workload ~tenants ~pages ~skew ~seed ~length in
  let write_file, to_string =
    if binary then
      (Ccache_trace.Trace_binary.write_file, Ccache_trace.Trace_binary.to_string)
    else (Ccache_trace.Trace_io.write_file, Ccache_trace.Trace_io.to_string)
  in
  (match out with
  | Some path ->
      write_file path trace;
      Fmt.pr "wrote %d requests to %s@." (Ccache_trace.Trace.length trace) path
  | None -> print_string (to_string trace));
  0

(* --- certify command --- *)

let certify_cmd trace_file workload tenants pages skew seed length k cost iters
    trace_cache =
  set_trace_cache trace_cache;
  let trace =
    match trace_file with
    | Some path -> load_trace path
    | None -> make_workload ~workload ~tenants ~pages ~skew ~seed ~length
  in
  let costs = make_costs ~cost (Ccache_trace.Trace.n_users trace) in
  let c =
    Ccache_analysis.Certificate.certify ~ascent_iterations:iters ~k ~costs trace
  in
  Fmt.pr "%a@." Ccache_analysis.Certificate.pp c;
  Fmt.pr
    "certified: on this instance ALG-DISCRETE pays at most %.3f times any \
     offline schedule (weak duality on (CP))@."
    c.Ccache_analysis.Certificate.certified_ratio;
  0

(* --- sweep command --- *)

module U = Ccache_util

(* Metrics rows round-trip through the checkpoint as one tab-separated
   line; %h floats make the replay bit-exact. *)
let encode_row (r : Ccache_sim.Metrics.row) =
  Printf.sprintf "%s\t%d\t%d\t%h\t%h" r.Ccache_sim.Metrics.policy
    r.Ccache_sim.Metrics.hits r.Ccache_sim.Metrics.misses
    r.Ccache_sim.Metrics.miss_ratio r.Ccache_sim.Metrics.cost

let decode_row s =
  match String.split_on_char '\t' s with
  | [ policy; hits; misses; miss_ratio; cost ] -> (
      match
        ( int_of_string_opt hits,
          int_of_string_opt misses,
          float_of_string_opt miss_ratio,
          float_of_string_opt cost )
      with
      | Some hits, Some misses, Some miss_ratio, Some cost ->
          Some { Ccache_sim.Metrics.policy; hits; misses; miss_ratio; cost }
      | _ -> None)
  | _ -> None

let row_codec = { U.Supervisor.encode = encode_row; decode = decode_row }

let parse_fault ~chaos ~kill =
  let base =
    match chaos with
    | Some spec -> (
        match U.Fault.of_spec spec with
        | Ok f -> f
        | Error e ->
            Fmt.epr "%s@." e;
            exit 2)
    | None -> (
        match U.Fault.from_env () with
        | Ok (Some f) -> f
        | Ok None -> U.Fault.none
        | Error e ->
            Fmt.epr "%s@." e;
            exit 2)
  in
  if kill = [] then base else U.Fault.kill base kill

(* Multi-k (or multi-policy) sweep over one workload, evaluated on a
   domain pool when --jobs > 1 and always under the supervised runner:
   transient faults are retried, a permanently-failing cell is
   quarantined (row omitted, note on stderr, exit 3) while the rest of
   the sweep completes, and --checkpoint/--resume snapshot and replay
   finished cells bit-for-bit.  The trace is generated once up front
   and shared read-only across domains; each (policy, k) cell is an
   independent simulation, so the table is identical at every job
   count. *)
let sweep_cmd policy_names workload tenants pages skew seed length k_min k_max
    k_factor cost flush jobs timeout retries backoff chaos kill checkpoint_path
    resume trace_cache trace_out metrics_out =
  set_trace_cache trace_cache;
  let obs = Obs_args.setup ~trace_out ~metrics_out in
  if jobs < 0 then begin
    Fmt.epr "--jobs must be >= 0@.";
    exit 2
  end;
  if k_min <= 0 || k_max < k_min then begin
    Fmt.epr "bad cache-size range: need 0 < --k-min <= --k-max (got %d..%d)@."
      k_min k_max;
    exit 2
  end;
  if k_factor <= 1.0 then begin
    Fmt.epr "--k-factor must exceed 1 (got %g)@." k_factor;
    exit 2
  end;
  let policy_names = if policy_names = [] then [ "alg-discrete" ] else policy_names in
  let policies =
    List.map
      (fun name ->
        match find_policy name with
        | Some p -> p
        | None ->
            Fmt.epr "unknown policy %S; try the 'list' command@." name;
            exit 2)
      policy_names
  in
  if retries < 0 then begin
    Fmt.epr "--retries must be >= 0@.";
    exit 2
  end;
  let trace = make_workload ~workload ~tenants ~pages ~skew ~seed ~length in
  let costs = make_costs ~cost (Ccache_trace.Trace.n_users trace) in
  let index = Ccache_trace.Trace.Index.build trace in
  let ks =
    Ccache_sim.Sweep.geometric ~start:k_min ~stop:k_max ~factor:k_factor
  in
  let cells = Ccache_sim.Sweep.product policies ks in
  let task_id (policy, k) =
    Printf.sprintf "%s/k=%d" (Ccache_sim.Policy.name policy) k
  in
  let fault = parse_fault ~chaos ~kill in
  let policy_cfg =
    {
      U.Supervisor.default_policy with
      max_retries = retries;
      timeout_s = timeout;
      backoff_base_s = backoff;
    }
  in
  let fingerprint =
    Printf.sprintf
      "sweep-v1 workload=%s tenants=%d pages=%d skew=%h seed=%d length=%d \
       k=%d..%d*%h cost=%s flush=%b policies=%s"
      workload tenants pages skew seed length k_min k_max k_factor cost flush
      (String.concat "," (List.map Ccache_sim.Policy.name policies))
  in
  let checkpoint =
    match (checkpoint_path, resume) with
    | None, false -> None
    | None, true ->
        Fmt.epr "--resume requires --checkpoint FILE@.";
        exit 2
    | Some p, true -> (
        match U.Checkpoint.load_or_create ~path:p ~fingerprint () with
        | Ok ck -> Some ck
        | Error e ->
            Fmt.epr "cannot resume: %s@." e;
            exit 2)
    | Some p, false -> Some (U.Checkpoint.create ~path:p ~fingerprint ())
  in
  let on_event = function
    | U.Supervisor.Retrying { task; attempt; delay_s; error } ->
        Fmt.epr "[supervisor] %s: attempt %d after %.3fs backoff (%s)@." task
          attempt delay_s error
    | U.Supervisor.Gave_up { task; attempts; error } ->
        Fmt.epr "[supervisor] %s: quarantined after %d attempt(s): %s@." task
          attempts error
    | U.Supervisor.Replayed { task } ->
        Fmt.epr "[supervisor] %s: replayed from checkpoint@." task
  in
  (* The simulation is deterministic given the shared trace; the cell's
     derived PRNG stream is unused today but keyed on the task id so
     stochastic cells stay retry-safe. *)
  let eval _ctx _prng (policy, k) =
    Ccache_sim.Metrics.row ~costs
      (Ccache_sim.Engine.run ~flush ~index ~k ~costs policy trace)
  in
  let results =
    let run pool =
      Ccache_sim.Sweep.run_supervised ?pool ~policy:policy_cfg ~fault
        ?checkpoint ~codec:row_codec ~on_event ~seed ~task_id cells ~f:eval
    in
    if jobs = 1 then run None
    else
      let size = if jobs = 0 then None else Some jobs in
      Ccache_util.Domain_pool.with_pool ?size (fun pool -> run (Some pool))
  in
  let module Tbl = Ccache_util.Ascii_table in
  let tbl =
    Tbl.create
      ~title:
        (Printf.sprintf "sweep: %s, %d requests, cost=%s" workload length cost)
      ~aligns:[ Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right ]
      [ "policy"; "k"; "misses"; "miss%"; "cost" ]
  in
  let failures = ref [] in
  List.iter
    (fun ((_, k), outcome) ->
      match outcome with
      | U.Supervisor.Completed row ->
          Tbl.add_row tbl
            [
              row.Ccache_sim.Metrics.policy;
              Tbl.cell_int k;
              Tbl.cell_int row.Ccache_sim.Metrics.misses;
              Tbl.cell_pct row.Ccache_sim.Metrics.miss_ratio;
              Tbl.cell_float ~digits:2 row.Ccache_sim.Metrics.cost;
            ]
      | U.Supervisor.Quarantined f -> failures := f :: !failures)
    results;
  Tbl.print tbl;
  (* the pool (if any) has been joined inside with_pool above *)
  Obs_args.finish obs;
  match List.rev !failures with
  | [] -> 0
  | failures ->
      List.iter
        (fun { U.Supervisor.task; attempts; error } ->
          Fmt.epr "quarantined: %s (after %d attempt(s)): %s@." task attempts
            error)
        failures;
      (match checkpoint_path with
      | Some p ->
          Fmt.epr
            "partial results checkpointed to %s; rerun with --checkpoint %s \
             --resume to complete@."
            p p
      | None -> ());
      3

(* --- serve command --- *)

module Serve = Ccache_serve

(* Sharded service over a recorded or generated request stream.  The
   logical-clock scheduler makes the whole run a pure function of the
   configuration, so the report is byte-identical at every --jobs
   width; shards execute as supervised tasks (ids "shard/<i>"), so
   --kill shard/1 quarantines one shard while the rest complete, and
   --checkpoint/--resume replay finished shards bit-for-bit. *)
let serve_cmd policy_name trace_file workload tenants pages skew seed length k
    cost shards batch queue_cap clients rate route overload jobs timeout
    retries backoff chaos kill checkpoint_path resume trace_cache trace_out
    metrics_out =
  match find_policy policy_name with
  | None ->
      Fmt.epr "unknown policy %S; try the 'list' command@." policy_name;
      2
  | Some policy ->
      if Ccache_sim.Policy.needs_future policy then begin
        Fmt.epr "offline policy %S cannot serve (no future on a request stream)@."
          policy_name;
        exit 2
      end;
      if shards <= 0 || batch <= 0 || queue_cap <= 0 || clients <= 0 || rate <= 0
      then begin
        Fmt.epr
          "--shards, --batch, --queue-cap, --clients and --rate must be \
           positive@.";
        exit 2
      end;
      if jobs < 0 then begin
        Fmt.epr "--jobs must be >= 0@.";
        exit 2
      end;
      if retries < 0 then begin
        Fmt.epr "--retries must be >= 0@.";
        exit 2
      end;
      set_trace_cache trace_cache;
      let obs = Obs_args.setup ~trace_out ~metrics_out in
      let trace =
        match trace_file with
        | Some path -> load_trace path
        | None -> make_workload ~workload ~tenants ~pages ~skew ~seed ~length
      in
      let n_users = Ccache_trace.Trace.n_users trace in
      let costs = make_costs ~cost n_users in
      let router =
        match route with
        | "page" -> Serve.Router.by_page ~shards
        | "tenant" -> Serve.Router.by_tenant ~shards ~n_users ()
        | other -> Fmt.failwith "unknown route %S (page|tenant)" other
      in
      let overload =
        match overload with
        | "block" -> Serve.Scheduler.Block
        | "reject" -> Serve.Scheduler.Reject
        | other -> Fmt.failwith "unknown overload mode %S (block|reject)" other
      in
      let shard_k = Stdlib.max 1 (k / shards) in
      let config =
        Serve.Service.config ~policy ~clients ~overload ~client_rate:rate
          ~batch ~queue_cap ~router ~shard_k ()
      in
      let fingerprint = Serve.Service.fingerprint config ~costs trace in
      let fault = parse_fault ~chaos ~kill in
      let policy_cfg =
        {
          U.Supervisor.default_policy with
          max_retries = retries;
          timeout_s = timeout;
          backoff_base_s = backoff;
        }
      in
      let checkpoint =
        match (checkpoint_path, resume) with
        | None, false -> None
        | None, true ->
            Fmt.epr "--resume requires --checkpoint FILE@.";
            exit 2
        | Some p, true -> (
            match U.Checkpoint.load_or_create ~path:p ~fingerprint () with
            | Ok ck -> Some ck
            | Error e ->
                Fmt.epr "cannot resume: %s@." e;
                exit 2)
        | Some p, false -> Some (U.Checkpoint.create ~path:p ~fingerprint ())
      in
      let on_event = function
        | U.Supervisor.Retrying { task; attempt; delay_s; error } ->
            Fmt.epr "[supervisor] %s: attempt %d after %.3fs backoff (%s)@." task
              attempt delay_s error
        | U.Supervisor.Gave_up { task; attempts; error } ->
            Fmt.epr "[supervisor] %s: quarantined after %d attempt(s): %s@." task
              attempts error
        | U.Supervisor.Replayed { task } ->
            Fmt.epr "[supervisor] %s: replayed from checkpoint@." task
      in
      let sup =
        let run pool =
          Serve.Service.run_supervised ?pool ~policy:policy_cfg ~fault
            ?checkpoint ~on_event config ~costs trace
        in
        if jobs = 1 then run None
        else
          let size = if jobs = 0 then None else Some jobs in
          Ccache_util.Domain_pool.with_pool ?size (fun pool -> run (Some pool))
      in
      (match sup.Serve.Service.outcome with
      | Some r ->
          let s = r.Serve.Service.schedule in
          Fmt.pr
            "serve: %d shards (route=%s), k=%d/shard, batch=%d, queue-cap=%d, \
             %d client(s) x rate %d, overload=%s@."
            shards
            (Serve.Router.name router)
            shard_k batch queue_cap clients rate
            (Serve.Scheduler.overload_name
               config.Serve.Service.sched.Serve.Scheduler.overload);
          Fmt.pr
            "requests %d  admitted %d  rejected %d  stalls %d  rounds %d  \
             throughput %.2f req/round@."
            (Serve.Service.requests r)
            s.Serve.Scheduler.admitted s.Serve.Scheduler.rejected
            s.Serve.Scheduler.stalls s.Serve.Scheduler.rounds
            r.Serve.Service.throughput;
          Fmt.pr "hits %d  misses %d  total cost %.2f@." r.Serve.Service.hits
            (Serve.Service.misses r) r.Serve.Service.total_cost;
          let module Tbl = Ccache_util.Ascii_table in
          let tbl =
            Tbl.create ~title:"per-shard"
              ~aligns:
                [
                  Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right;
                  Tbl.Right; Tbl.Right; Tbl.Right;
                ]
              [
                "shard"; "requests"; "batches"; "maxdepth"; "meanwait";
                "rejected"; "hits"; "misses";
              ]
          in
          Array.iteri
            (fun i (ss : Serve.Scheduler.shard_schedule) ->
              let er = r.Serve.Service.engines.(i) in
              let drained = Array.length ss.Serve.Scheduler.pages in
              let mean_wait =
                if drained = 0 then 0.
                else
                  float_of_int
                    (Array.fold_left ( + ) 0 ss.Serve.Scheduler.waits)
                  /. float_of_int drained
              in
              Tbl.add_row tbl
                [
                  Tbl.cell_int i;
                  Tbl.cell_int drained;
                  Tbl.cell_int (Array.length ss.Serve.Scheduler.batches);
                  Tbl.cell_int ss.Serve.Scheduler.max_depth;
                  Tbl.cell_float ~digits:2 mean_wait;
                  Tbl.cell_int ss.Serve.Scheduler.rejected;
                  Tbl.cell_int er.Ccache_sim.Engine.hits;
                  Tbl.cell_int (Ccache_sim.Engine.misses er);
                ])
            s.Serve.Scheduler.shards;
          Tbl.print tbl
      | None -> ());
      Obs_args.finish obs;
      (match sup.Serve.Service.failures with
      | [] -> 0
      | failures ->
          List.iter
            (fun { U.Supervisor.task; attempts; error } ->
              Fmt.epr "quarantined: %s (after %d attempt(s)): %s@." task attempts
                error)
            failures;
          (match checkpoint_path with
          | Some p ->
              Fmt.epr
                "completed shards checkpointed to %s; rerun with --checkpoint \
                 %s --resume to complete@."
                p p
          | None -> ());
          3)

(* --- trace command group --- *)

module Tio = Ccache_trace.Trace_io
module Tbin = Ccache_trace.Trace_binary
module Text = Ccache_trace.Trace_extern

let read_input = function
  | "-" -> In_channel.input_all stdin
  | path ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))

(* Format sniffing for 'trace convert --format auto': binary magic,
   then the text header, else the R/W address format. *)
let parse_input ~format ~page_shift s =
  match format with
  | "auto" ->
      if Tbin.looks_binary s then Tbin.of_string s
      else if
        String.split_on_char '\n' s |> function
        | first :: _ -> String.trim first = Tio.magic
        | [] -> false
      then Tio.of_string s
      else Text.of_string_rw ~page_shift s
  | "binary" -> Tbin.of_string s
  | "text" -> Tio.of_string s
  | other -> (
      match Text.format_of_string other with
      | Some fmt -> Text.of_string ~page_shift fmt s
      | None ->
          Fmt.epr "unknown trace format %S (auto|binary|text|rw|lackey)@." other;
          exit 2)

let trace_convert_cmd in_file format page_shift text out =
  with_trace_errors @@ fun () ->
  if page_shift < 0 || page_shift > 62 then begin
    Fmt.epr "--page-shift must be in [0, 62]@.";
    exit 2
  end;
  let trace = parse_input ~format ~page_shift (read_input in_file) in
  let write_file, to_string =
    if text then (Tio.write_file, Tio.to_string)
    else (Tbin.write_file, Tbin.to_string)
  in
  (match out with
  | Some path ->
      write_file path trace;
      Fmt.epr "wrote %d requests (%d users, %d distinct pages) to %s@."
        (Ccache_trace.Trace.length trace)
        (Ccache_trace.Trace.n_users trace)
        (Ccache_trace.Trace.n_pages trace)
        path
  | None -> print_string (to_string trace));
  0

let trace_stat_cmd in_file =
  with_trace_errors @@ fun () ->
  (* binary stat is O(P): header + dictionary only, never the T requests *)
  if in_file <> "-" && Tbin.file_looks_binary in_file then begin
    let h = Tbin.open_file in_file in
    Fmt.pr "format binary@.requests %d@.users %d@.distinct %d@." (Tbin.length h)
      (Tbin.n_users h) (Tbin.n_pages h)
  end
  else begin
    let s = read_input in_file in
    let trace = if Tbin.looks_binary s then Tbin.of_string s else Tio.of_string s in
    Fmt.pr "format %s@.requests %d@.users %d@.distinct %d@."
      (if Tbin.looks_binary s then "binary" else "text")
      (Ccache_trace.Trace.length trace)
      (Ccache_trace.Trace.n_users trace)
      (Ccache_trace.Trace.n_pages trace)
  end;
  0

let trace_head_cmd in_file n =
  with_trace_errors @@ fun () ->
  if in_file <> "-" && Tbin.file_looks_binary in_file then begin
    (* zero-copy path: decode just the first n requests off the mmap *)
    let h = Tbin.open_file in_file in
    for i = 0 to Stdlib.min n (Tbin.length h) - 1 do
      let p = Tbin.page_at h i in
      Fmt.pr "%d %d@."
        (Ccache_trace.Page.user p)
        (Ccache_trace.Page.id p)
    done
  end
  else begin
    let trace = Tio.of_string_any (read_input in_file) in
    for i = 0 to Stdlib.min n (Ccache_trace.Trace.length trace) - 1 do
      let p = Ccache_trace.Trace.request trace i in
      Fmt.pr "%d %d@."
        (Ccache_trace.Page.user p)
        (Ccache_trace.Page.id p)
    done
  end;
  0

(* --- list command --- *)

let list_cmd () =
  Fmt.pr "policies:@.";
  List.iter (fun p -> Fmt.pr "  %s@." (Ccache_sim.Policy.name p)) (policies ());
  Fmt.pr "workloads: zipf sqlvm cycle uniform@.";
  Fmt.pr "costs: linear weighted x2 x3 sla@.";
  0

(* --- cmdliner plumbing --- *)

let policy_arg =
  Arg.(value & opt string "alg-discrete" & info [ "policy" ] ~docv:"NAME")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE")

let workload_arg = Arg.(value & opt string "zipf" & info [ "workload" ])
let tenants_arg = Arg.(value & opt int 4 & info [ "tenants" ])
let pages_arg = Arg.(value & opt int 64 & info [ "pages" ])
let skew_arg = Arg.(value & opt float 0.8 & info [ "skew" ])
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ])
let length_arg = Arg.(value & opt int 5000 & info [ "length" ])
let k_arg = Arg.(value & opt int 64 & info [ "k"; "cache-size" ])
let cost_arg = Arg.(value & opt string "x2" & info [ "cost" ])
let flush_arg = Arg.(value & flag & info [ "flush" ])
let out_arg = Arg.(value & opt (some string) None & info [ "out" ])
let iters_arg = Arg.(value & opt int 80 & info [ "iterations" ])

let binary_arg =
  Arg.(
    value & flag
    & info [ "binary" ]
        ~doc:"Write the zero-copy binary .ctrace format instead of text.")

let trace_cache_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace-cache" ] ~docv:"DIR"
        ~doc:
          "Cache generated workload traces as .ctrace binaries under \
           $(docv), keyed by a fingerprint of (seed, length, tenant \
           specs); repeated runs mmap the stored trace instead of \
           regenerating it.  Byte-identical results either way.")

let trace_in_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Input trace file ('-' = stdin).")

let trace_format_arg =
  Arg.(
    value & opt string "auto"
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Input format: 'auto' (sniff binary magic, then the text \
           header, else rw), 'binary', 'text', 'rw' (R/W 0xADDR lines), \
           or 'lackey' (valgrind --tool=lackey --trace-mem dumps).")

let page_shift_arg =
  Arg.(
    value & opt int Ccache_trace.Trace_extern.default_page_shift
    & info [ "page-shift" ] ~docv:"N"
        ~doc:
          "Map addresses to pages by shifting right $(docv) bits \
           (default 12 = 4 KiB pages; rw/lackey formats only).")

let text_out_arg =
  Arg.(
    value & flag
    & info [ "text" ] ~doc:"Write the text format instead of binary .ctrace.")

let head_n_arg =
  Arg.(
    value & opt int 10
    & info [ "n"; "lines" ] ~docv:"N" ~doc:"Requests to print (default 10).")

let policies_arg =
  Arg.(
    value & opt_all string []
    & info [ "policy" ] ~docv:"NAME"
        ~doc:"Policy to sweep (repeatable; default alg-discrete).")

let k_min_arg = Arg.(value & opt int 16 & info [ "k-min" ] ~docv:"K")
let k_max_arg = Arg.(value & opt int 512 & info [ "k-max" ] ~docv:"K")

let k_factor_arg =
  Arg.(value & opt float 2.0 & info [ "k-factor" ] ~docv:"F")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Evaluate sweep cells on $(docv) worker domains (default 1 = \
           sequential, 0 = one per core).  The table is identical at \
           every N.")

let timeout_arg =
  Arg.(
    value & opt (some float) None
    & info [ "timeout" ] ~docv:"S"
        ~doc:
          "Per-attempt cell deadline in seconds; a cell past it is \
           retried, then quarantined (default: none).")

let retries_arg =
  Arg.(
    value
    & opt int Ccache_util.Supervisor.default_policy.Ccache_util.Supervisor.max_retries
    & info [ "retries" ] ~docv:"N"
        ~doc:"Retry budget for transient faults and deadline misses (default 3).")

let backoff_arg =
  Arg.(
    value
    & opt float
        Ccache_util.Supervisor.default_policy.Ccache_util.Supervisor.backoff_base_s
    & info [ "backoff" ] ~docv:"S"
        ~doc:
          "Base backoff before the first retry, in seconds; doubles per \
           retry, capped at 1s (default 0.05).  Deterministic and \
           jitter-free.")

let chaos_arg =
  Arg.(
    value & opt (some string) None
    & info [ "chaos" ] ~docv:"SEED:RATE"
        ~doc:
          "Deterministic fault injection at cell boundaries; falls back \
           to $(b,CCACHE_CHAOS).  With retries the table is \
           byte-identical to a fault-free run.")

let kill_arg =
  Arg.(
    value & opt_all string []
    & info [ "kill" ] ~docv:"ID"
        ~doc:
          "Inject a permanent crash into the cell with task id $(docv) \
           (e.g. 'lru/k=64'; repeatable).  The cell is quarantined and \
           the exit code is 3.")

let checkpoint_arg =
  Arg.(
    value & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:"Snapshot completed cells to $(docv) (atomic writes).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Replay cells already recorded in --checkpoint FILE and \
           compute only the rest.  Refuses a checkpoint written by a \
           different sweep configuration.")

let shards_arg =
  Arg.(
    value & opt int 4
    & info [ "shards" ] ~docv:"N"
        ~doc:"Partition the page space across $(docv) engine shards.")

let batch_arg =
  Arg.(
    value & opt int 8
    & info [ "batch" ] ~docv:"B"
        ~doc:"Requests a shard drains per logical round (default 8).")

let queue_cap_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:"Bound on each shard's request queue (default 64).")

let clients_arg =
  Arg.(
    value & opt int 1
    & info [ "clients" ] ~docv:"N"
        ~doc:
          "Deal the request stream round-robin over $(docv) client \
           streams (default 1).")

let rate_arg =
  Arg.(
    value & opt int 1
    & info [ "rate" ] ~docv:"R"
        ~doc:"Requests each client emits per round (default 1).")

let route_arg =
  Arg.(
    value & opt string "page"
    & info [ "route" ] ~docv:"MODE"
        ~doc:
          "Shard routing: 'page' (hash partition of the page space) or \
           'tenant' (each user pinned to one shard).")

let overload_arg =
  Arg.(
    value & opt string "block"
    & info [ "overload" ] ~docv:"MODE"
        ~doc:
          "Backpressure on a full shard queue: 'block' (head-of-line \
           stall, nothing dropped) or 'reject' (drop and count).")

let trace_out_arg = Obs_args.trace_out
let metrics_out_arg = Obs_args.metrics_out

let run_term =
  Term.(
    const run_cmd $ policy_arg $ trace_arg $ workload_arg $ tenants_arg
    $ pages_arg $ skew_arg $ seed_arg $ length_arg $ k_arg $ cost_arg $ flush_arg
    $ trace_cache_arg $ trace_out_arg $ metrics_out_arg)

let certify_term =
  Term.(
    const certify_cmd $ trace_arg $ workload_arg $ tenants_arg $ pages_arg
    $ skew_arg $ seed_arg $ length_arg $ k_arg $ cost_arg $ iters_arg
    $ trace_cache_arg)

let gen_term =
  Term.(
    const gen_cmd $ workload_arg $ tenants_arg $ pages_arg $ skew_arg $ seed_arg
    $ length_arg $ binary_arg $ out_arg $ trace_cache_arg)

let sweep_term =
  Term.(
    const sweep_cmd $ policies_arg $ workload_arg $ tenants_arg $ pages_arg
    $ skew_arg $ seed_arg $ length_arg $ k_min_arg $ k_max_arg $ k_factor_arg
    $ cost_arg $ flush_arg $ jobs_arg $ timeout_arg $ retries_arg $ backoff_arg
    $ chaos_arg $ kill_arg $ checkpoint_arg $ resume_arg $ trace_cache_arg
    $ trace_out_arg $ metrics_out_arg)

let serve_term =
  Term.(
    const serve_cmd $ policy_arg $ trace_arg $ workload_arg $ tenants_arg
    $ pages_arg $ skew_arg $ seed_arg $ length_arg $ k_arg $ cost_arg
    $ shards_arg $ batch_arg $ queue_cap_arg $ clients_arg $ rate_arg
    $ route_arg $ overload_arg $ jobs_arg $ timeout_arg $ retries_arg
    $ backoff_arg $ chaos_arg $ kill_arg $ checkpoint_arg $ resume_arg
    $ trace_cache_arg $ trace_out_arg $ metrics_out_arg)

let trace_cmd_group =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Inspect and convert trace files (text, binary .ctrace, external \
          address formats)")
    [
      Cmd.v
        (Cmd.info "convert"
           ~doc:
             "Convert a trace (text, R/W address lines, valgrind-lackey \
              dump) to the zero-copy binary .ctrace format (or, with \
              --text, to the text format)")
        Term.(
          const trace_convert_cmd $ trace_in_arg $ trace_format_arg
          $ page_shift_arg $ text_out_arg $ out_arg);
      Cmd.v
        (Cmd.info "stat"
           ~doc:
             "Print request/user/distinct-page counts (O(1) in the trace \
              length for binary files)")
        Term.(const trace_stat_cmd $ trace_in_arg);
      Cmd.v
        (Cmd.info "head" ~doc:"Print the first N requests as 'user page' lines")
        Term.(const trace_head_cmd $ trace_in_arg $ head_n_arg);
    ]

let cmd =
  Cmd.group
    (Cmd.info "ccache_cli" ~doc:"Convex-cost caching simulator")
    [
      Cmd.v (Cmd.info "run" ~doc:"Run a policy on a trace") run_term;
      Cmd.v
        (Cmd.info "serve"
           ~doc:
             "Serve a request stream through a sharded cache service \
              (deterministic logical-clock replay)")
        serve_term;
      Cmd.v (Cmd.info "gen" ~doc:"Generate a trace file") gen_term;
      trace_cmd_group;
      Cmd.v
        (Cmd.info "sweep"
           ~doc:"Sweep policies across cache sizes, optionally in parallel")
        sweep_term;
      Cmd.v
        (Cmd.info "certify"
           ~doc:"Run ALG-DISCRETE and certify its per-instance ratio")
        certify_term;
      Cmd.v (Cmd.info "list" ~doc:"List policies, workloads, costs")
        Term.(const list_cmd $ const ());
    ]

let () = exit (Cmd.eval' cmd)
