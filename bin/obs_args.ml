(** Shared observability wiring for both binaries: the
    [--trace-out]/[--metrics-out] flags, the [CCACHE_TRACE] fallback,
    and the end-of-run export.  Recording is enabled only when at least
    one output is requested, so the default path keeps the
    zero-overhead-off guarantee (and byte-identical reports). *)

open Cmdliner

type t = { trace : string option; metrics : string option }

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record spans and write a Chrome trace-event JSON to $(docv) \
           (load it in chrome://tracing or Perfetto).  Falls back to \
           the $(b,CCACHE_TRACE) environment variable.  Tracing is off \
           (and costs nothing) unless one of the two is set.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Record counters/gauges/histograms and write the merged \
           snapshot to $(docv): markdown tables if $(docv) ends in \
           .md, flat JSON otherwise.")

(** Resolve the flags (plus [CCACHE_TRACE]) and flip recording on iff
    any output was requested. *)
let setup ~trace_out ~metrics_out =
  let trace =
    match trace_out with
    | Some _ as t -> t
    | None -> Ccache_obs.Control.trace_path_from_env ()
  in
  let cfg = { trace; metrics = metrics_out } in
  if cfg.trace <> None || cfg.metrics <> None then Ccache_obs.Control.enable ();
  cfg

(** Export whatever was recorded.  Call once, after all worker domains
    have joined (shards are merged at this point). *)
let finish cfg =
  (match cfg.trace with
  | Some path ->
      Ccache_obs.Trace_export.write ~path (Ccache_obs.Span.collect ());
      Fmt.epr "[obs] wrote trace to %s@." path
  | None -> ());
  match cfg.metrics with
  | Some path ->
      let snap = Ccache_obs.Metrics.snapshot () in
      let body =
        if Filename.check_suffix path ".md" then
          Ccache_obs.Metrics_export.to_markdown snap
        else Ccache_obs.Metrics_export.to_json snap
      in
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc body);
      Fmt.epr "[obs] wrote metrics to %s@." path
  | None -> ()
