(* The write hides one call away: the closure itself contains no
   assignment, so the parsetree heuristic is blind to it — only the
   call-graph analysis sees [record]'s global write reach the task. *)
let hits = ref 0
let record () = incr hits
let go xs =
  Ccache_util.Domain_pool.map_list
    ~f:(fun x ->
      record ();
      x)
    xs
