(* Returning the string instead of printing it keeps the node pure. *)
let render () = "boo" [@@effects.pure]
