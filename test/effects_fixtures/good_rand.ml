(* A seeded step function is pure: same state, same draw. *)
let roll state = (state * 0x2545F4914F6CDD1D) + 0x9E3779B9
  [@@effects.pure] [@@effects.no_alloc]
