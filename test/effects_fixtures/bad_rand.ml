(* Violates [pure]: ambient randomness. *)
let roll () = Random.int 6 [@@effects.pure]
