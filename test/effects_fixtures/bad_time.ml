(* Violates [deterministic] (reads the clock) and, because the [time]
   seed is outside the sanctioned Clock.wall sink, also [direct-clock]. *)
let stamp () = Unix.gettimeofday () [@@effects.deterministic]
