(* Violates [pure]: writes module-level mutable state. *)
let counter = ref 0
let bump () = counter := !counter + 1 [@@effects.pure]
