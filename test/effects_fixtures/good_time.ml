(* Deterministic the sanctioned way: the clock arrives as an explicit
   capability, so the node itself only performs a higher-order call. *)
let stamp (now : unit -> float) = now () [@@effects.deterministic]
