(* Immediate-int arithmetic allocates nothing. *)
let add x y = x + y [@@effects.no_alloc] [@@effects.pure]
