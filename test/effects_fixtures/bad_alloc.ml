(* Violates [no_alloc]: builds a tuple per call. *)
let pair x = (x, x) [@@effects.no_alloc]
