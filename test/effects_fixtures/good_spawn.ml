(* Running the thunk on the calling domain is just a higher-order
   call. *)
let fire f = f () [@@effects.deterministic]
