(* Violates [deterministic]: spawning a domain makes scheduling part of
   the result. *)
let fire f = Domain.join (Domain.spawn f) [@@effects.deterministic]
