(* A non-escaping local ref is the repo's standard loop idiom: ocamlopt
   unboxes it, so the node stays pure and allocation-free. *)
let sum n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + i
  done;
  !acc
  [@@effects.pure] [@@effects.no_alloc]
