(* Violates [pure]: writes to stdout. *)
let shout () = print_string "boo" [@@effects.pure]
