(* The sanctioned shape: tasks compute, the caller combines after the
   await. *)
let go xs =
  List.fold_left ( + ) 0 (Ccache_util.Domain_pool.map_list ~f:(fun x -> x * x) xs)
