(* Both pool-task rules: [go]'s closure writes module-level state from
   worker domains; [go_captured]'s closure mutates a ref captured from
   the enclosing scope. *)
let total = ref 0

let go xs =
  Ccache_util.Domain_pool.map_list
    ~f:(fun x ->
      total := !total + x;
      x)
    xs

let go_captured xs =
  let acc = ref 0 in
  let _ =
    Ccache_util.Domain_pool.map_list
      ~f:(fun x ->
        acc := !acc + x;
        x)
      xs
  in
  !acc
