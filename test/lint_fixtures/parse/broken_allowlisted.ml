(* Deliberately unparseable: exercises the parse-error rule and its
   interaction with the allowlist (the fixture allowlist silences it;
   running without the allowlist must surface it again). *)
let oops = (
