(* fixture interface *)
