(* Fixture: float-eq — one violation, one suppressed. *)

let bad x = x = 0.0

let ok x = (x = 1.0 [@lint.allow "float-eq"])
