(* fixture interface *)
