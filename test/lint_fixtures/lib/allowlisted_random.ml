(* Fixture: violation silenced via the allowlist file, not inline. *)

let bad () = Random.bool ()
