(* Fixture: no-stdlib-random — one violation, one suppressed. *)

let bad () = Random.int 6

let ok () = (Random.int 6 [@lint.allow "no-stdlib-random"])
