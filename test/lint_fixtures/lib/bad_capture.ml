(* Fixture: domain-capture — one violation, one suppressed.
   Only parsed, never compiled, so the free identifiers are fine. *)

let total = ref 0

let bad pool xs =
  Domain_pool.parallel_iter pool ~f:(fun x -> total := !total + x) xs

let ok pool xs =
  Domain_pool.parallel_iter pool
    ~f:(fun x -> (total := !total + x [@lint.allow "domain-capture"]))
    xs
