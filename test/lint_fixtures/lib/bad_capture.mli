(* fixture interface *)
