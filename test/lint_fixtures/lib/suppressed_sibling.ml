(* Fixture: mli-coverage suppressed by a floating whole-file allow. *)

[@@@lint.allow "mli-coverage"]

let quiet = 1
