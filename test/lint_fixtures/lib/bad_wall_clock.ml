(* Fixture: no-wall-clock — one violation, one suppressed. *)

let bad () = Unix.gettimeofday ()

let ok () = (Sys.time () [@lint.allow "no-wall-clock"])
