(* Fixture: no-print-in-lib — one violation, one suppressed. *)

let bad () = print_endline "hi"

let ok () = (print_string "quiet" [@lint.allow "no-print-in-lib"])
