(* fixture interface *)
