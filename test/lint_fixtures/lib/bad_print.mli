(* fixture interface *)
