(* Fixture: mli-coverage — deliberately has no sibling interface. *)

let lonely = 42
