(* fixture interface *)
