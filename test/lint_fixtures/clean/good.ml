(* Fixture: clean file — the linter must report nothing here. *)

let approx_zero x = Float.abs x < 1e-9

let sum = List.fold_left ( + ) 0
