(* Fixture: the fault-injection idiom used by Ccache_util.Fault.
   Every stochastic decision — delay?, delay magnitude, transient? —
   is drawn from a seeded Prng stream derived from (seed, task,
   attempt), never from Stdlib.Random, so the no-stdlib-random rule
   must stay silent without any allowlist entry.  Probability
   comparisons use [<] / [<=] (never float [=]), so float-eq must stay
   silent too. *)

exception Injected_transient of { task : string; attempt : int }

let at_boundary ~seed ~rate ~max_delay_s ~task ~attempt =
  if rate > 0.0 then begin
    let key = task ^ "#" ^ string_of_int attempt in
    let g = Prng.derive ~seed ~key in
    if Prng.bernoulli g ~p:(rate /. 2.0) && max_delay_s > 0.0 then
      Clock.sleep (Prng.float_range g max_delay_s);
    if attempt < 1 && Prng.bernoulli g ~p:rate then
      raise (Injected_transient { task; attempt })
  end
