(* Tests for ccache_serve: routing, the logical-clock scheduler, the
   differential replay harness (sharded service vs independent engines
   on hash-split sub-traces), supervised execution with kill + resume,
   record/replay byte-identity of the obs exports, and the live
   session's backpressure and shutdown semantics. *)

open Ccache_trace
module Serve = Ccache_serve
module Router = Serve.Router
module Scheduler = Serve.Scheduler
module Service = Serve.Service
module Session = Serve.Session
module Engine = Ccache_sim.Engine
module Cf = Ccache_cost.Cost_function
module U = Ccache_util

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let qsuite = List.map (QCheck_alcotest.to_alcotest ~long:false)

let costs_of n = Array.init n (fun _ -> Cf.monomial ~beta:2.0 ())

let workload ~seed ~tenants ~length =
  Workloads.generate ~seed ~length
    (Workloads.symmetric_zipf ~tenants ~pages_per_tenant:12 ~skew:0.8)

let pages_of trace = Trace.requests trace

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let test_router_basics () =
  let r = Router.by_page ~shards:4 in
  checki "shards" 4 (Router.shards r);
  checkb "name" true (Router.name r = "page");
  let t = workload ~seed:1 ~tenants:3 ~length:500 in
  Array.iter
    (fun p ->
      let s = Router.route r p in
      checkb "in range" true (s >= 0 && s < 4))
    (pages_of t);
  let rt = Router.by_tenant ~shards:2 ~n_users:5 () in
  checkb "tenant name" true (Router.name rt = "tenant");
  Array.iter
    (fun p -> checki "round-robin tenant" (Page.user p mod 2) (Router.route rt p))
    (pages_of (workload ~seed:2 ~tenants:5 ~length:200));
  Alcotest.check_raises "assignment size"
    (Invalid_argument "Router.by_tenant: assignment/users mismatch") (fun () ->
      ignore (Router.by_tenant ~assignment:[| 0 |] ~shards:2 ~n_users:2 ()));
  Alcotest.check_raises "assignment range"
    (Invalid_argument "Router.by_tenant: assignment outside shard range")
    (fun () -> ignore (Router.by_tenant ~assignment:[| 0; 7 |] ~shards:2 ~n_users:2 ()))

let test_split_partitions () =
  let t = workload ~seed:3 ~tenants:3 ~length:800 in
  let r = Router.by_page ~shards:3 in
  let subs = Router.split r t in
  checki "one sub-trace per shard" 3 (Array.length subs);
  let total = Array.fold_left (fun a s -> a + Trace.length s) 0 subs in
  checki "partition preserves count" (Trace.length t) total;
  Array.iteri
    (fun i sub ->
      Array.iter
        (fun p -> checki "page on its shard" i (Router.route r p))
        (pages_of sub))
    subs;
  (* order within a shard is trace order *)
  let seen = Array.make 3 [] in
  Array.iter
    (fun p -> seen.(Router.route r p) <- p :: seen.(Router.route r p))
    (pages_of t);
  Array.iteri
    (fun i sub ->
      checkb "sub-trace in trace order" true
        (Array.to_list (pages_of sub) = List.rev seen.(i)))
    subs

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let sched_config ?(overload = Scheduler.Block) ?(client_rate = 1) ~shards
    ~batch ~queue_cap () =
  Scheduler.config ~overload ~client_rate
    ~router:(Router.by_page ~shards) ~batch ~queue_cap ()

let test_scheduler_conservation () =
  let t = workload ~seed:4 ~tenants:3 ~length:600 in
  let clients = Scheduler.clients_of_trace ~clients:3 t in
  List.iter
    (fun (overload, cap) ->
      let cfg = sched_config ~overload ~shards:4 ~batch:2 ~queue_cap:cap () in
      let s = Scheduler.build cfg ~clients in
      checki "admitted+rejected = requests" (Trace.length t)
        (s.Scheduler.admitted + s.Scheduler.rejected);
      let drained =
        Array.fold_left
          (fun a (ss : Scheduler.shard_schedule) ->
            a + Array.length ss.Scheduler.pages)
          0 s.Scheduler.shards
      in
      checki "drained = admitted" s.Scheduler.admitted drained;
      Array.iter
        (fun (ss : Scheduler.shard_schedule) ->
          let batched =
            Array.fold_left (fun a (_, n) -> a + n) 0 ss.Scheduler.batches
          in
          checki "batches tile the sequence" (Array.length ss.Scheduler.pages)
            batched;
          Array.iter
            (fun (_, n) -> checkb "batch within bound" true (n >= 1 && n <= 2))
            ss.Scheduler.batches;
          Array.iter (fun w -> checkb "wait >= 0" true (w >= 0)) ss.Scheduler.waits;
          checki "waits align with pages"
            (Array.length ss.Scheduler.pages)
            (Array.length ss.Scheduler.waits))
        s.Scheduler.shards;
      match overload with
      | Scheduler.Block -> checki "block drops nothing" 0 s.Scheduler.rejected
      | Scheduler.Reject -> checki "reject never stalls" 0 s.Scheduler.stalls)
    [ (Scheduler.Block, 1); (Scheduler.Block, 4); (Scheduler.Reject, 1) ]

let test_scheduler_deterministic_batches () =
  (* 1 shard, cap 2, batch 2, one client: admit 1 per round, drain
     catches up immediately; the batch log is exactly one singleton
     batch per round. *)
  let pages = Array.init 6 (fun i -> Page.make ~user:0 ~id:i) in
  let cfg = sched_config ~shards:1 ~batch:2 ~queue_cap:2 () in
  let s = Scheduler.build cfg ~clients:[| pages |] in
  let ss = s.Scheduler.shards.(0) in
  checkb "FIFO order preserved" true
    (Array.to_list ss.Scheduler.pages = Array.to_list pages);
  checkb "one batch per round" true
    (Array.to_list ss.Scheduler.batches
    = List.init 6 (fun r -> (r, 1)));
  checki "makespan" 6 s.Scheduler.rounds;
  checki "no queueing beyond depth 1" 1 ss.Scheduler.max_depth

let test_scheduler_backpressure_block () =
  (* 4 clients racing into one shard of cap 1, batch 1: three of the
     four stall every admission round. *)
  let client c = Array.init 5 (fun i -> Page.make ~user:0 ~id:((c * 5) + i)) in
  let clients = Array.init 4 client in
  let cfg = sched_config ~shards:1 ~batch:1 ~queue_cap:1 () in
  let s = Scheduler.build cfg ~clients in
  checki "nothing dropped" 0 s.Scheduler.rejected;
  checki "everything served" 20 s.Scheduler.admitted;
  checkb "stalls observed" true (s.Scheduler.stalls > 0);
  checkb "makespan stretched to ~1/round" true (s.Scheduler.rounds >= 20)

let test_scheduler_backpressure_reject () =
  let client c = Array.init 5 (fun i -> Page.make ~user:0 ~id:((c * 5) + i)) in
  let clients = Array.init 4 client in
  let cfg = sched_config ~overload:Scheduler.Reject ~shards:1 ~batch:1 ~queue_cap:1 () in
  let s = Scheduler.build cfg ~clients in
  checki "no stalls in reject mode" 0 s.Scheduler.stalls;
  checkb "load shed" true (s.Scheduler.rejected > 0);
  checki "conservation" 20 (s.Scheduler.admitted + s.Scheduler.rejected);
  checki "per-shard rejects add up" s.Scheduler.rejected
    s.Scheduler.shards.(0).Scheduler.rejected

let single_client_order_arb =
  QCheck.make
    ~print:(fun (seed, shards, batch, cap, rate) ->
      Printf.sprintf "seed=%d shards=%d batch=%d cap=%d rate=%d" seed shards
        batch cap rate)
    QCheck.Gen.(
      tup5 (int_bound 1000) (int_range 1 5) (int_range 1 8) (int_range 1 8)
        (int_range 1 4))

let prop_single_client_order =
  QCheck.Test.make ~name:"1 client + Block: shard sequence = Router.split"
    ~count:60 single_client_order_arb (fun (seed, shards, batch, cap, rate) ->
      let t = workload ~seed ~tenants:3 ~length:200 in
      let router = Router.by_page ~shards in
      let cfg =
        Scheduler.config ~client_rate:rate ~router ~batch ~queue_cap:cap ()
      in
      let s =
        Scheduler.build cfg ~clients:(Scheduler.clients_of_trace ~clients:1 t)
      in
      let subs = Router.split router t in
      Array.for_all
        (fun (ss : Scheduler.shard_schedule) ->
          Array.to_list ss.Scheduler.pages
          = Array.to_list (pages_of subs.(ss.Scheduler.shard)))
        s.Scheduler.shards)

(* ------------------------------------------------------------------ *)
(* Differential replay: sharded service vs independent engines         *)
(* ------------------------------------------------------------------ *)

let diff_arb =
  QCheck.make
    ~print:(fun (seed, tenants, shards, batch, cap) ->
      Printf.sprintf "seed=%d tenants=%d shards=%d batch=%d cap=%d" seed
        tenants shards batch cap)
    QCheck.Gen.(
      tup5 (int_bound 1000) (int_range 1 4) (int_range 1 5) (int_range 1 8)
        (int_range 1 8))

(* The service with one client in Block mode is observationally a
   router in front of N independent engines: same per-shard engine
   results as Engine.run on the Router.split sub-traces, same merged
   accounting — whatever the batch size or queue bound, and at every
   pool width. *)
let check_differential ?pool (seed, tenants, shards, batch, cap) =
  let t = workload ~seed ~tenants ~length:250 in
  let costs = costs_of tenants in
  let router = Router.by_page ~shards in
  let config =
    Service.config ~clients:1 ~batch ~queue_cap:cap ~router ~shard_k:8 ()
  in
  let r = Service.run ?pool config ~costs t in
  let subs = Router.split router t in
  let expected =
    Array.map
      (fun sub -> Engine.run ~k:8 ~costs Ccache_core.Alg_fast.policy sub)
      subs
  in
  let merged = Array.make tenants 0 in
  Array.iter
    (fun (e : Engine.result) ->
      Array.iteri (fun u m -> merged.(u) <- merged.(u) + m) e.Engine.misses_per_user)
    expected;
  r.Service.engines = expected
  && r.Service.misses_per_user = merged
  && r.Service.hits
     = Array.fold_left (fun a (e : Engine.result) -> a + e.Engine.hits) 0 expected
  && r.Service.schedule.Scheduler.rejected = 0

let prop_differential_serial =
  QCheck.Test.make ~name:"sharded service = engines on split sub-traces"
    ~count:40 diff_arb (fun args -> check_differential args)

let prop_differential_pooled =
  QCheck.Test.make ~name:"differential holds on a pool (jobs 8)" ~count:10
    diff_arb (fun args ->
      U.Domain_pool.with_pool ~size:8 (fun pool ->
          check_differential ~pool args))

let test_multi_client_differential () =
  (* several clients, ample queue/batch (>= clients, rate 1): no
     stalls, admission re-interleaves the dealt streams back into
     trace order, so the differential still holds exactly. *)
  let t = workload ~seed:7 ~tenants:4 ~length:600 in
  let costs = costs_of 4 in
  List.iter
    (fun clients ->
      let router = Router.by_page ~shards:3 in
      let config =
        Service.config ~clients ~batch:8 ~queue_cap:8 ~router ~shard_k:8 ()
      in
      let r = Service.run config ~costs t in
      let expected =
        Array.map
          (fun sub -> Engine.run ~k:8 ~costs Ccache_core.Alg_fast.policy sub)
          (Router.split router t)
      in
      checkb
        (Printf.sprintf "differential at %d clients" clients)
        true
        (r.Service.engines = expected))
    [ 1; 2; 3; 4 ]

let test_jobs_width_identity () =
  let t = workload ~seed:8 ~tenants:3 ~length:1000 in
  let costs = costs_of 3 in
  let config =
    Service.config ~clients:2 ~batch:4 ~queue_cap:4
      ~router:(Router.by_page ~shards:4) ~shard_k:8 ()
  in
  let serial = Service.run config ~costs t in
  let pooled =
    U.Domain_pool.with_pool ~size:8 (fun pool -> Service.run ~pool config ~costs t)
  in
  checkb "engines identical" true (serial.Service.engines = pooled.Service.engines);
  checkb "merged misses identical" true
    (serial.Service.misses_per_user = pooled.Service.misses_per_user);
  Alcotest.(check (float 0.0))
    "total cost identical" serial.Service.total_cost pooled.Service.total_cost

let test_reject_sheds_load () =
  (* Reject mode serves a subset: per-user misses can only shrink
     against the unthrottled run, and accounting stays conserved. *)
  let t = workload ~seed:9 ~tenants:3 ~length:800 in
  let costs = costs_of 3 in
  let router = Router.by_page ~shards:2 in
  let throttled =
    Service.run
      (Service.config ~clients:4 ~overload:Scheduler.Reject ~batch:1
         ~queue_cap:1 ~router ~shard_k:8 ())
      ~costs t
  in
  let s = throttled.Service.schedule in
  checkb "some load shed" true (s.Scheduler.rejected > 0);
  checki "conservation" (Trace.length t)
    (s.Scheduler.admitted + s.Scheduler.rejected);
  let served =
    Array.fold_left
      (fun a (e : Engine.result) -> a + e.Engine.trace_length)
      0 throttled.Service.engines
  in
  checki "engines saw exactly the admitted requests" s.Scheduler.admitted served;
  checki "hits+misses = admitted" s.Scheduler.admitted
    (throttled.Service.hits
    + Array.fold_left ( + ) 0 throttled.Service.misses_per_user)

let test_tenant_routing_matches_multipool () =
  (* By_tenant round-robin with shard_k-page shards is the multipool
     engine's Static_round_robin partition: same per-user misses. *)
  let t = workload ~seed:10 ~tenants:4 ~length:900 in
  let costs = costs_of 4 in
  List.iter
    (fun shards ->
      let r =
        Service.run
          (Service.config ~policy:Ccache_core.Alg_discrete.policy
             ~router:(Router.by_tenant ~shards ~n_users:4 ())
             ~shard_k:8 ())
          ~costs t
      in
      let mp =
        Ccache_multipool.Multi_engine.run ~pools:shards ~pool_size:8
          ~strategy:Ccache_multipool.Multi_engine.Static_round_robin ~costs t
      in
      checkb
        (Printf.sprintf "matches multipool at %d shards" shards)
        true
        (r.Service.misses_per_user
        = mp.Ccache_multipool.Multi_engine.misses_per_user))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Supervised execution: codec, fingerprint, kill + resume             *)
(* ------------------------------------------------------------------ *)

let codec_arb =
  QCheck.make
    ~print:(fun (seed, tenants, k) ->
      Printf.sprintf "seed=%d tenants=%d k=%d" seed tenants k)
    QCheck.Gen.(tup3 (int_bound 1000) (int_range 1 4) (int_range 1 32))

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"engine result codec roundtrips" ~count:60 codec_arb
    (fun (seed, tenants, k) ->
      let t = workload ~seed ~tenants ~length:120 in
      let costs = costs_of tenants in
      let r = Engine.run ~k ~costs Ccache_core.Alg_fast.policy t in
      Service.engine_codec.U.Supervisor.decode
        (Service.engine_codec.U.Supervisor.encode r)
      = Some r)

let test_codec_rejects_garbage () =
  checkb "garbage" true
    (Service.engine_codec.U.Supervisor.decode "nonsense" = None);
  checkb "wrong arity" true
    (Service.engine_codec.U.Supervisor.decode "a\t1\t2" = None);
  checkb "bad int" true
    (Service.engine_codec.U.Supervisor.decode "p\tx\t0\t1\t0\t0\t0\t" = None)

let test_fingerprint_sensitivity () =
  let t = workload ~seed:11 ~tenants:2 ~length:100 in
  let t' = workload ~seed:12 ~tenants:2 ~length:100 in
  let costs = costs_of 2 in
  let config batch =
    Service.config ~batch ~router:(Router.by_page ~shards:2) ~shard_k:4 ()
  in
  let fp = Service.fingerprint (config 8) ~costs t in
  checkb "stable" true (fp = Service.fingerprint (config 8) ~costs t);
  checkb "batch changes it" true (fp <> Service.fingerprint (config 4) ~costs t);
  checkb "trace changes it" true (fp <> Service.fingerprint (config 8) ~costs t');
  checkb "single line" true (not (String.contains fp '\n'))

let test_kill_quarantines_and_resume_completes () =
  let t = workload ~seed:13 ~tenants:3 ~length:700 in
  let costs = costs_of 3 in
  let config =
    Service.config ~clients:2 ~batch:4 ~queue_cap:4
      ~router:(Router.by_page ~shards:4) ~shard_k:8 ()
  in
  let baseline = Service.run config ~costs t in
  let path = Filename.temp_file "serve_ck" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let fingerprint = Service.fingerprint config ~costs t in
      let ck = U.Checkpoint.create ~path ~fingerprint () in
      let killed =
        Service.run_supervised
          ~fault:(U.Fault.kill U.Fault.none [ Service.shard_task_id 1 ])
          ~checkpoint:ck config ~costs t
      in
      checkb "no merged result under quarantine" true
        (killed.Service.outcome = None);
      (match killed.Service.failures with
      | [ f ] -> checkb "shard/1 quarantined" true (f.U.Supervisor.task = "shard/1")
      | fs -> Alcotest.failf "expected 1 failure, got %d" (List.length fs));
      (* resume: the three completed shards replay from the snapshot,
         only shard/1 is recomputed, and the merged result is
         byte-identical to the uninterrupted run *)
      let ck2 =
        match U.Checkpoint.load_or_create ~path ~fingerprint () with
        | Ok ck -> ck
        | Error e -> Alcotest.failf "reload failed: %s" e
      in
      let resumed = Service.run_supervised ~checkpoint:ck2 config ~costs t in
      checkb "resume completes" true (resumed.Service.failures = []);
      checkb "replayed the completed shards" true
        (List.sort compare resumed.Service.replayed
        = [ "shard/0"; "shard/2"; "shard/3" ]);
      match resumed.Service.outcome with
      | None -> Alcotest.fail "resume produced no result"
      | Some r ->
          checkb "engines identical to uninterrupted run" true
            (r.Service.engines = baseline.Service.engines);
          Alcotest.(check (float 0.0))
            "cost identical" baseline.Service.total_cost r.Service.total_cost)

let test_fingerprint_guards_resume () =
  let t = workload ~seed:14 ~tenants:2 ~length:100 in
  let costs = costs_of 2 in
  let config batch =
    Service.config ~batch ~router:(Router.by_page ~shards:2) ~shard_k:4 ()
  in
  let path = Filename.temp_file "serve_fp" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let ck =
        U.Checkpoint.create ~path
          ~fingerprint:(Service.fingerprint (config 8) ~costs t)
          ()
      in
      let _ = Service.run_supervised ~checkpoint:ck (config 8) ~costs t in
      checkb "other-config resume refused" true
        (match
           U.Checkpoint.load_or_create ~path
             ~fingerprint:(Service.fingerprint (config 4) ~costs t)
             ()
         with
        | Error _ -> true
        | Ok _ -> false))

(* ------------------------------------------------------------------ *)
(* Record/replay byte-identity of the obs exports                      *)
(* ------------------------------------------------------------------ *)

module Obs = Ccache_obs

(* Each call is a fresh recording epoch: its own counting clock and a
   metrics reset, so two identical runs must export identical bytes. *)
let serve_with_obs () =
  Obs.Control.with_enabled ~clock:(Obs.Clock.counting ()) @@ fun () ->
  Obs.Metrics.reset ();
  let t = workload ~seed:15 ~tenants:3 ~length:800 in
  let costs = costs_of 3 in
  let config =
    Service.config ~clients:2 ~batch:4 ~queue_cap:4
      ~router:(Router.by_page ~shards:3) ~shard_k:8 ()
  in
  let r = Service.run config ~costs t in
  let snap = Obs.Metrics.snapshot () in
  ( r,
    snap,
    Obs.Metrics_export.to_json snap,
    Obs.Trace_export.to_json ~origin:0.0 (Obs.Span.collect ()) )

let test_record_replay_byte_identity () =
  let r1, snap, metrics1, spans1 = serve_with_obs () in
  let r2, _, metrics2, spans2 = serve_with_obs () in
  checkb "results identical" true (r1.Service.engines = r2.Service.engines);
  Alcotest.(check string) "metrics export byte-identical" metrics1 metrics2;
  Alcotest.(check string) "span export byte-identical" spans1 spans2;
  checkb "serve counters present" true
    (List.mem_assoc "serve/requests" snap.Obs.Metrics.counters
    && List.mem_assoc "serve/rounds" snap.Obs.Metrics.counters)

let test_obs_off_equals_on () =
  (* recording must not change the computation *)
  let t = workload ~seed:16 ~tenants:3 ~length:600 in
  let costs = costs_of 3 in
  let config =
    Service.config ~clients:3 ~batch:2 ~queue_cap:2
      ~router:(Router.by_page ~shards:2) ~shard_k:8 ()
  in
  let off = Service.run config ~costs t in
  let on =
    Obs.Control.with_enabled ~clock:(Obs.Clock.counting ()) (fun () ->
        Obs.Metrics.reset ();
        Service.run config ~costs t)
  in
  checkb "identical with obs on" true (off.Service.engines = on.Service.engines);
  Alcotest.(check (float 0.0))
    "identical cost" off.Service.total_cost on.Service.total_cost

(* Pool self-telemetry (names under "pool/") measures the execution
   schedule, not the computation, and is excluded by contract — same
   convention as the sweep obs tests. *)
let drop_pool_names (s : Obs.Metrics.snapshot) =
  let keep (name, _) =
    not (String.length name >= 5 && String.sub name 0 5 = "pool/")
  in
  {
    Obs.Metrics.counters = List.filter keep s.Obs.Metrics.counters;
    gauges = List.filter keep s.Obs.Metrics.gauges;
    hists = List.filter keep s.Obs.Metrics.hists;
  }

let test_metrics_width_independent () =
  Obs.Control.with_enabled ~clock:(Obs.Clock.counting ()) @@ fun () ->
  let snap pool =
    Obs.Metrics.reset ();
    let t = workload ~seed:17 ~tenants:3 ~length:800 in
    let costs = costs_of 3 in
    let config =
      Service.config ~clients:2 ~batch:4 ~queue_cap:4
        ~router:(Router.by_page ~shards:4) ~shard_k:8 ()
    in
    let _ = Service.run ?pool config ~costs t in
    Obs.Metrics_export.to_json (drop_pool_names (Obs.Metrics.snapshot ()))
  in
  let serial = snap None in
  let pooled =
    U.Domain_pool.with_pool ~size:8 (fun pool -> snap (Some pool))
  in
  Alcotest.(check string) "metrics export identical at jobs 8" serial pooled

(* ------------------------------------------------------------------ *)
(* Engine.Step.feed                                                    *)
(* ------------------------------------------------------------------ *)

let test_feed_equals_run () =
  let t = workload ~seed:18 ~tenants:3 ~length:500 in
  let costs = costs_of 3 in
  List.iter
    (fun policy ->
      let st =
        Engine.Step.init ~k:12 ~costs policy
          (Trace.of_pages ~n_users:3 [||])
      in
      checki "starts unfed" 0 (Engine.Step.served st);
      Array.iter (fun p -> Engine.Step.feed st p) (pages_of t);
      checki "served counts feeds" (Trace.length t) (Engine.Step.served st);
      let fed = Engine.Step.finish st in
      let run = Engine.run ~k:12 ~costs policy t in
      checkb "feed = run" true (fed = run);
      checki "dynamic trace_length = requests fed" (Trace.length t)
        fed.Engine.trace_length)
    [ Ccache_core.Alg_fast.policy; Ccache_policies.Lru.policy ]

(* ------------------------------------------------------------------ *)
(* Live session                                                        *)
(* ------------------------------------------------------------------ *)

let session ?(shards = 1) ?(workers = false) ?(batch = 4) ?(queue_cap = 4) () =
  Session.create ~workers ~router:(Router.by_page ~shards) ~shard_k:8 ~batch
    ~queue_cap
    ~costs:(costs_of 2)
    ()

let test_session_manual_fifo () =
  let s = session ~batch:2 ~queue_cap:8 () in
  let pages = Array.init 6 (fun i -> Page.make ~user:0 ~id:(i mod 3)) in
  let tickets = Array.map (fun p -> Session.submit s p) pages in
  checki "queued" 6 (Session.pending s);
  checkb "unprocessed ticket polls None" true
    (Session.poll tickets.(0) = None);
  checki "first drain takes a batch" 2 (Session.drain s ~shard:0);
  checki "rest" 4 (Session.pending s);
  checki "drain_all finishes" 4 (Session.drain_all s);
  checki "served" 6 (Session.served s);
  (* all six requests have outcomes; distinct first touches miss *)
  Array.iter (fun tk -> ignore (Session.wait tk)) tickets;
  let results = Session.close s in
  checki "one shard" 1 (Array.length results);
  checki "engine saw all requests" 6 results.(0).Engine.trace_length

let test_session_outcomes_match_engine () =
  let t = workload ~seed:19 ~tenants:2 ~length:400 in
  let costs = costs_of 2 in
  let router = Router.by_page ~shards:2 in
  let s =
    Session.create ~router ~shard_k:8 ~batch:4 ~queue_cap:8 ~costs ()
  in
  let outcomes =
    Array.map
      (fun p ->
        let tk = Session.submit s p in
        ignore (Session.drain_all s);
        Session.wait tk)
      (pages_of t)
  in
  let results = Session.close s in
  let expected =
    Array.map
      (fun sub -> Engine.run ~k:8 ~costs Ccache_core.Alg_fast.policy sub)
      (Router.split router t)
  in
  Array.iteri
    (fun i (e : Engine.result) ->
      checkb (Printf.sprintf "shard %d engine state matches" i) true
        (results.(i) = e))
    expected;
  let miss_outcomes =
    Array.fold_left
      (fun a oc -> match oc with Session.Miss -> a + 1 | Session.Hit -> a)
      0 outcomes
  in
  let engine_misses =
    Array.fold_left (fun a e -> a + Engine.misses e) 0 expected
  in
  checki "per-request outcomes consistent with engines" engine_misses
    miss_outcomes

let test_session_overload_and_recovery () =
  let s = session ~batch:1 ~queue_cap:1 () in
  let page i = Page.make ~user:0 ~id:i in
  let _t0 = Session.submit s (page 0) in
  (match Session.try_submit s (page 1) with
  | Error `Overloaded -> ()
  | Ok _ -> Alcotest.fail "expected Overloaded on a full queue");
  checki "one queued" 1 (Session.pending s);
  checki "drain frees a slot" 1 (Session.drain s ~shard:0);
  (match Session.try_submit s (page 1) with
  | Ok _ -> ()
  | Error `Overloaded -> Alcotest.fail "queue should have space again");
  ignore (Session.drain_all s);
  ignore (Session.close s)

let test_session_blocking_submit () =
  let s = session ~batch:4 ~queue_cap:1 () in
  let page i = Page.make ~user:0 ~id:i in
  let _t0 = Session.submit s (page 0) in
  (* a second client blocks on the full queue; the [waiters] hook makes
     the blocking observable without timing assumptions *)
  let blocked =
    Domain.spawn (fun () -> Session.wait (Session.submit s (page 1)))
  in
  while Session.waiters s < 1 do
    Domain.cpu_relax ()
  done;
  checki "still only one queued" 1 (Session.pending s);
  ignore (Session.drain s ~shard:0);
  (* the blocked submit can now enqueue; drain until it lands *)
  let rec finish () =
    if Session.served s < 2 then begin
      ignore (Session.drain s ~shard:0);
      Domain.cpu_relax ();
      finish ()
    end
  in
  finish ();
  ignore (Domain.join blocked);
  checki "no waiters left" 0 (Session.waiters s);
  ignore (Session.close s)

let test_session_shutdown_cancels_pending () =
  let s = session ~queue_cap:8 () in
  let tk0 = Session.submit s (Page.make ~user:0 ~id:0) in
  ignore (Session.drain_all s);
  let tk1 = Session.submit s (Page.make ~user:0 ~id:1) in
  Session.shutdown_now s;
  checkb "processed ticket keeps its outcome" true
    (Session.poll tk0 = Some Session.Miss);
  Alcotest.check_raises "pending ticket fails loudly" Session.Cancelled
    (fun () -> ignore (Session.wait tk1));
  Alcotest.check_raises "submit after shutdown" Session.Closed (fun () ->
      ignore (Session.submit s (Page.make ~user:0 ~id:2)));
  Session.shutdown_now s (* idempotent *)

let test_session_lifecycle () =
  let s = session () in
  ignore (Session.close s);
  Alcotest.check_raises "double close" Session.Closed (fun () ->
      ignore (Session.close s));
  let s2 = session () in
  Session.shutdown_now s2;
  Alcotest.check_raises "close after shutdown" Session.Closed (fun () ->
      ignore (Session.close s2))

let test_session_workers () =
  (* one worker domain per shard; a single submitter keeps per-shard
     order deterministic, so the engines must match the split
     sub-traces exactly *)
  let t = workload ~seed:20 ~tenants:2 ~length:300 in
  let costs = costs_of 2 in
  let router = Router.by_page ~shards:2 in
  let s =
    Session.create ~workers:true ~router ~shard_k:8 ~batch:4 ~queue_cap:4
      ~costs ()
  in
  Alcotest.check_raises "manual drain refused"
    (Invalid_argument "Session.drain: session drains through worker domains")
    (fun () -> ignore (Session.drain s ~shard:0));
  let tickets = Array.map (fun p -> Session.submit s p) (pages_of t) in
  let outcomes = Array.map Session.wait tickets in
  checki "every request served" (Trace.length t) (Session.served s);
  let results = Session.close s in
  let expected =
    Array.map
      (fun sub -> Engine.run ~k:8 ~costs Ccache_core.Alg_fast.policy sub)
      (Router.split router t)
  in
  Array.iteri
    (fun i (e : Engine.result) ->
      checkb (Printf.sprintf "worker shard %d matches engine" i) true
        (results.(i) = e))
    expected;
  let misses =
    Array.fold_left
      (fun a oc -> match oc with Session.Miss -> a + 1 | Session.Hit -> a)
      0 outcomes
  in
  checki "outcome misses match engines"
    (Array.fold_left (fun a e -> a + Engine.misses e) 0 expected)
    misses

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "ccache_serve"
    [
      ( "router",
        [
          Alcotest.test_case "routing basics" `Quick test_router_basics;
          Alcotest.test_case "split partitions in order" `Quick test_split_partitions;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "conservation" `Quick test_scheduler_conservation;
          Alcotest.test_case "deterministic batches" `Quick
            test_scheduler_deterministic_batches;
          Alcotest.test_case "block backpressure" `Quick
            test_scheduler_backpressure_block;
          Alcotest.test_case "reject backpressure" `Quick
            test_scheduler_backpressure_reject;
        ]
        @ qsuite [ prop_single_client_order ] );
      ( "differential",
        [
          Alcotest.test_case "multi-client differential" `Quick
            test_multi_client_differential;
          Alcotest.test_case "jobs width identity" `Quick test_jobs_width_identity;
          Alcotest.test_case "reject sheds load" `Quick test_reject_sheds_load;
          Alcotest.test_case "tenant routing = multipool" `Quick
            test_tenant_routing_matches_multipool;
        ]
        @ qsuite [ prop_differential_serial; prop_differential_pooled ] );
      ( "supervised",
        [
          Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "fingerprint sensitivity" `Quick
            test_fingerprint_sensitivity;
          Alcotest.test_case "kill quarantines, resume completes" `Quick
            test_kill_quarantines_and_resume_completes;
          Alcotest.test_case "fingerprint guards resume" `Quick
            test_fingerprint_guards_resume;
        ]
        @ qsuite [ prop_codec_roundtrip ] );
      ( "replay",
        [
          Alcotest.test_case "record/replay byte identity" `Quick
            test_record_replay_byte_identity;
          Alcotest.test_case "obs off = obs on" `Quick test_obs_off_equals_on;
          Alcotest.test_case "metrics width-independent" `Quick
            test_metrics_width_independent;
          Alcotest.test_case "Step.feed = Engine.run" `Quick test_feed_equals_run;
        ] );
      ( "session",
        [
          Alcotest.test_case "manual FIFO drain" `Quick test_session_manual_fifo;
          Alcotest.test_case "outcomes match engine" `Quick
            test_session_outcomes_match_engine;
          Alcotest.test_case "overload and recovery" `Quick
            test_session_overload_and_recovery;
          Alcotest.test_case "blocking submit" `Quick test_session_blocking_submit;
          Alcotest.test_case "shutdown cancels pending" `Quick
            test_session_shutdown_cancels_pending;
          Alcotest.test_case "lifecycle" `Quick test_session_lifecycle;
          Alcotest.test_case "worker domains" `Quick test_session_workers;
        ] );
    ]
