(* Tests for ccache_cost: cost functions, piecewise curves, SLA
   builders, alpha computation and the validity checks of Calculus. *)

module Cf = Ccache_cost.Cost_function
module Pw = Ccache_cost.Piecewise
module Sla = Ccache_cost.Sla
module Calc = Ccache_cost.Calculus

let checkb = Alcotest.(check bool)
let checkf msg = Alcotest.(check (float 1e-9)) msg
let checkf_loose msg = Alcotest.(check (float 1e-6)) msg

(* ------------------------------------------------------------------ *)
(* Constructors and evaluation                                         *)
(* ------------------------------------------------------------------ *)

let test_linear () =
  let f = Cf.linear ~slope:3.0 () in
  checkf "f(0)" 0.0 (Cf.eval f 0.0);
  checkf "f(4)" 12.0 (Cf.eval f 4.0);
  checkf "f'(7)" 3.0 (Cf.deriv f 7.0);
  checkf "marginal" 3.0 (Cf.marginal f 5);
  checkf "alpha" 1.0 (Cf.alpha f);
  Alcotest.check_raises "negative slope"
    (Invalid_argument "Cost_function.linear: negative slope") (fun () ->
      ignore (Cf.linear ~slope:(-1.0) ()))

let test_monomial () =
  let f = Cf.monomial ~beta:2.0 () in
  checkf "f(3)" 9.0 (Cf.eval f 3.0);
  checkf "f'(3)" 6.0 (Cf.deriv f 3.0);
  checkf "marginal 3rd miss" 5.0 (Cf.marginal f 3);
  checkf "alpha = beta" 2.0 (Cf.alpha f);
  checkf "f(0)" 0.0 (Cf.eval f 0.0);
  let cube = Cf.monomial ~beta:3.0 () in
  checkf "cube alpha" 3.0 (Cf.alpha cube);
  Alcotest.check_raises "beta < 1"
    (Invalid_argument "Cost_function.monomial: beta must be >= 1") (fun () ->
      ignore (Cf.monomial ~beta:0.5 ()))

let test_polynomial () =
  let f = Cf.polynomial [| 0.0; 2.0; 1.0 |] in
  (* f(x) = 2x + x^2 *)
  checkf "f(3)" 15.0 (Cf.eval f 3.0);
  checkf "f'(3)" 8.0 (Cf.deriv f 3.0);
  checkf "alpha = degree" 2.0 (Cf.alpha f);
  Alcotest.check_raises "nonzero constant"
    (Invalid_argument "Cost_function.polynomial: constant term must be 0 (f(0)=0)")
    (fun () -> ignore (Cf.polynomial [| 1.0; 1.0 |]))

let test_exponential () =
  let f = Cf.exponential ~rate:0.5 ~scale:2.0 () in
  checkf "f(0)" 0.0 (Cf.eval f 0.0);
  checkf "f(2)" (2.0 *. (exp 1.0 -. 1.0)) (Cf.eval f 2.0);
  checkf "f'(2)" (exp 1.0) (Cf.deriv f 2.0);
  (* alpha is unbounded: the reported value grows with max_x *)
  checkb "alpha grows" true (Cf.alpha ~max_x:100.0 f < Cf.alpha ~max_x:1000.0 f)

let test_custom_and_combinators () =
  let f = Cf.monomial ~beta:2.0 () in
  let g = Cf.scale ~by:3.0 f in
  checkf "scaled eval" 27.0 (Cf.eval g 3.0);
  checkf "scaled deriv" 18.0 (Cf.deriv g 3.0);
  checkf "scaled alpha unchanged" 2.0 (Cf.alpha g);
  let h = Cf.sum f (Cf.linear ~slope:1.0 ()) in
  checkf "sum eval" 12.0 (Cf.eval h 3.0);
  checkf "sum alpha = max" 2.0 (Cf.alpha h);
  Alcotest.check_raises "scale by 0"
    (Invalid_argument "Cost_function.scale: factor must be positive") (fun () ->
      ignore (Cf.scale ~by:0.0 f))

let test_eval_negative_rejected () =
  let f = Cf.monomial ~beta:2.0 () in
  Alcotest.check_raises "negative x"
    (Invalid_argument "Cost_function.eval: negative miss count") (fun () ->
      ignore (Cf.eval f (-1.0)));
  Alcotest.check_raises "marginal at 0"
    (Invalid_argument "Cost_function.marginal: x must be >= 1") (fun () ->
      ignore (Cf.marginal f 0))

let test_rate_modes () =
  let f = Cf.monomial ~beta:2.0 () in
  checkf "analytic rate" 6.0 (Cf.rate f Cf.Analytic 3);
  checkf "discrete rate" 5.0 (Cf.rate f Cf.Discrete 3)

(* ------------------------------------------------------------------ *)
(* Piecewise                                                           *)
(* ------------------------------------------------------------------ *)

let test_piecewise_eval () =
  let segs = Pw.validate [| (0.0, 1.0); (10.0, 3.0) |] in
  checkf "before break" 5.0 (Pw.eval segs 5.0);
  checkf "at break" 10.0 (Pw.eval segs 10.0);
  checkf "after break" 16.0 (Pw.eval segs 12.0);
  checkf "deriv before" 1.0 (Pw.deriv segs 5.0);
  checkf "deriv at break (right)" 3.0 (Pw.deriv segs 10.0);
  checkf "deriv after" 3.0 (Pw.deriv segs 12.0);
  checkb "convex" true (Pw.is_convex segs)

let test_piecewise_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Piecewise.validate: empty")
    (fun () -> ignore (Pw.validate [||]));
  Alcotest.check_raises "first not 0"
    (Invalid_argument "Piecewise.validate: first breakpoint must be 0") (fun () ->
      ignore (Pw.validate [| (1.0, 1.0) |]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Piecewise.validate: duplicate breakpoint") (fun () ->
      ignore (Pw.validate [| (0.0, 1.0); (0.0, 2.0) |]));
  checkb "non-convex accepted but flagged" false
    (Pw.is_convex (Pw.validate [| (0.0, 3.0); (5.0, 1.0) |]))

let test_piecewise_sorting () =
  (* validate sorts by breakpoint *)
  let segs = Pw.validate [| (10.0, 2.0); (0.0, 1.0) |] in
  checkf "sorted eval" 3.0 (Pw.eval segs 3.0)

let test_piecewise_many_segments () =
  let segs =
    Pw.validate (Array.init 10 (fun i -> (float_of_int (5 * i), float_of_int (i + 1))))
  in
  (* slope i+1 on [5i, 5i+5); eval is sum of full segments *)
  let expected x =
    let rec go i acc =
      let lo = 5.0 *. float_of_int i in
      let hi = lo +. 5.0 in
      if x <= hi || i = 9 then acc +. (float_of_int (i + 1) *. (x -. lo))
      else go (i + 1) (acc +. (float_of_int (i + 1) *. 5.0))
    in
    go 0 0.0
  in
  List.iter
    (fun x -> checkf_loose (Printf.sprintf "eval %g" x) (expected x) (Pw.eval segs x))
    [ 0.0; 2.5; 5.0; 7.0; 23.0; 44.9; 45.0; 60.0 ]

(* ------------------------------------------------------------------ *)
(* SLA builders                                                        *)
(* ------------------------------------------------------------------ *)

let test_sla_hinge () =
  let f = Sla.hinge ~tolerance:10.0 ~penalty_rate:2.0 in
  checkf "free region" 0.0 (Cf.eval f 10.0);
  checkf "charged region" 10.0 (Cf.eval f 15.0);
  checkf "deriv in free region" 0.0 (Cf.deriv f 5.0);
  checkf "deriv charged" 2.0 (Cf.deriv f 15.0);
  (* integer-restricted alpha: attained at x = 11 -> 11*2/2 = 11 *)
  checkf "alpha" 11.0 (Cf.alpha f);
  let f0 = Sla.hinge ~tolerance:0.0 ~penalty_rate:2.0 in
  checkf "zero tolerance is linear" 1.0 (Cf.alpha f0)

let test_sla_tiered () =
  let f = Sla.tiered ~thresholds:[ 10.0; 20.0 ] ~base_rate:1.0 ~escalation:2.0 in
  checkf "tier 1" 5.0 (Cf.eval f 5.0);
  checkf "tier 2" 14.0 (Cf.eval f 12.0);
  (* 10*1 + 10*2 + 5*4 *)
  checkf "tier 3" 50.0 (Cf.eval f 25.0);
  checkb "convex" true (Calc.is_valid_for_guarantee ~max_x:200.0 f)

let test_sla_smooth_hinge () =
  let f = Sla.smooth_hinge ~tolerance:10.0 ~penalty_rate:2.0 in
  checkf "free" 0.0 (Cf.eval f 8.0);
  checkf "quadratic" 25.0 (Cf.eval f 15.0);
  checkf "deriv" 10.0 (Cf.deriv f 15.0);
  checkb "alpha finite" true (Float.is_finite (Cf.alpha f))

let test_sla_validation () =
  Alcotest.check_raises "hinge rate"
    (Invalid_argument "Sla.hinge: penalty_rate must be positive") (fun () ->
      ignore (Sla.hinge ~tolerance:1.0 ~penalty_rate:0.0));
  Alcotest.check_raises "tiered escalation"
    (Invalid_argument "Sla.tiered: escalation must be >= 1") (fun () ->
      ignore (Sla.tiered ~thresholds:[ 1.0 ] ~base_rate:1.0 ~escalation:0.5));
  Alcotest.check_raises "exponential rate"
    (Invalid_argument "Cost_function.exponential: rate and scale must be positive")
    (fun () -> ignore (Cf.exponential ~rate:0.0 ~scale:1.0 ()))

let test_hinge_discrete_rate_near_breakpoint () =
  (* discrete marginal crosses the hinge smoothly: the miss that spans
     the breakpoint is charged only for its past-tolerance part *)
  let f = Sla.hinge ~tolerance:2.5 ~penalty_rate:4.0 in
  checkb "below" true (Cf.rate f Cf.Discrete 2 = 0.0);
  checkb "spanning miss" true (Cf.rate f Cf.Discrete 3 = 2.0);
  checkb "past" true (Cf.rate f Cf.Discrete 4 = 4.0)

let test_sla_step_refund_nonconvex () =
  let f = Sla.step_refund ~thresholds:[ 5.0; 10.0 ] ~fee:3.0 in
  checkf "below" 0.0 (Cf.eval f 4.0);
  checkf "one tier" 3.0 (Cf.eval f 7.0);
  checkf "two tiers" 6.0 (Cf.eval f 12.0);
  (* non-convex: Calculus must flag it *)
  checkb "flagged non-convex" false (Calc.is_valid_for_guarantee ~max_x:50.0 f)

(* ------------------------------------------------------------------ *)
(* Calculus                                                            *)
(* ------------------------------------------------------------------ *)

let test_calculus_accepts_valid () =
  List.iter
    (fun f -> checkb (Cf.name f ^ " valid") true (Calc.is_valid_for_guarantee f))
    [
      Cf.linear ~slope:2.0 ();
      Cf.monomial ~beta:2.0 ();
      Cf.monomial ~beta:1.5 ();
      Cf.polynomial [| 0.0; 1.0; 0.5; 0.25 |];
      Sla.hinge ~tolerance:5.0 ~penalty_rate:1.0;
      Sla.tiered ~thresholds:[ 3.0 ] ~base_rate:1.0 ~escalation:2.0;
    ]

let test_calculus_rejects_invalid () =
  (* decreasing "cost" *)
  let bad =
    Cf.custom ~name:"decreasing" ~eval:(fun x -> -.x) ~deriv:(fun _ -> -1.0) ()
  in
  checkb "rejects decreasing" false (Calc.is_valid_for_guarantee bad);
  (* f(0) <> 0 *)
  let shifted =
    Cf.custom ~name:"shifted" ~eval:(fun x -> x +. 1.0) ~deriv:(fun _ -> 1.0) ()
  in
  checkb "rejects f(0)<>0" false (Calc.is_valid_for_guarantee shifted);
  (* concave *)
  let concave =
    Cf.custom ~name:"sqrt" ~eval:sqrt ~deriv:(fun x -> 0.5 /. sqrt (Float.max x 1e-9)) ()
  in
  checkb "rejects concave" false (Calc.validate_for_guarantee concave = [])

let test_calculus_derivative_check () =
  let good = Cf.monomial ~beta:2.0 () in
  checkb "analytic matches numeric" true (Calc.check_derivative good = []);
  let lying =
    Cf.custom ~name:"lying" ~eval:(fun x -> x *. x) ~deriv:(fun _ -> 0.0) ()
  in
  checkb "detects wrong derivative" true (Calc.check_derivative lying <> [])

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* marginal telescopes: sum of marginals 1..n = f(n) *)
let marginal_telescopes =
  QCheck.Test.make ~name:"marginals telescope to eval" ~count:100
    QCheck.(pair (int_range 1 50) (float_range 1.0 3.0))
    (fun (n, beta) ->
      let f = Cf.monomial ~beta () in
      let acc = ref 0.0 in
      for x = 1 to n do
        acc := !acc +. Cf.marginal f x
      done;
      Float.abs (!acc -. Cf.eval f (float_of_int n)) < 1e-6 *. Float.max 1.0 !acc)

(* alpha dominates the pointwise ratio at integer points *)
let alpha_dominates =
  QCheck.Test.make ~name:"alpha dominates pointwise ratio" ~count:100
    QCheck.(pair (int_range 1 1000) (float_range 1.0 3.0))
    (fun (x, beta) ->
      let f = Cf.monomial ~beta () in
      let x = float_of_int x in
      let ratio = x *. Cf.deriv f x /. Cf.eval f x in
      ratio <= Cf.alpha f +. 1e-9)

(* piecewise with non-decreasing slopes is convex and increasing *)
let piecewise_convex_increasing =
  QCheck.Test.make ~name:"increasing-slope piecewise passes guarantee checks"
    ~count:60
    QCheck.(list_of_size (Gen.int_range 1 5) (float_range 0.1 4.0))
    (fun raw_slopes ->
      let slopes = List.sort compare raw_slopes in
      let segs =
        List.mapi (fun i s -> (float_of_int (8 * i), s)) slopes |> Array.of_list
      in
      let f = Cf.piecewise_linear segs in
      Calc.is_valid_for_guarantee ~max_x:200.0 f)

(* NaN slips past sign checks (every comparison with NaN is false), so
   non-finite parameters need their own rejection path naming the
   offending field. *)
let test_float_hygiene () =
  Alcotest.check_raises "nan slope"
    (Invalid_argument "Cost_function.linear: slope = nan is not finite")
    (fun () -> ignore (Cf.linear ~slope:Float.nan ()));
  Alcotest.check_raises "inf beta"
    (Invalid_argument "Cost_function.monomial: beta = inf is not finite")
    (fun () -> ignore (Cf.monomial ~beta:Float.infinity ()));
  Alcotest.check_raises "nan coefficient"
    (Invalid_argument "Cost_function.polynomial: coefficient = nan is not finite")
    (fun () -> ignore (Cf.polynomial [| 0.0; Float.nan |]));
  Alcotest.check_raises "nan exponential rate"
    (Invalid_argument "Cost_function.exponential: rate = nan is not finite")
    (fun () -> ignore (Cf.exponential ~rate:Float.nan ~scale:1.0 ()));
  Alcotest.check_raises "inf exponential scale"
    (Invalid_argument "Cost_function.exponential: scale = inf is not finite")
    (fun () -> ignore (Cf.exponential ~rate:1.0 ~scale:Float.infinity ()));
  let f = Cf.linear ~slope:2.0 () in
  Alcotest.check_raises "nan eval point"
    (Invalid_argument "Cost_function.eval: x = nan is not finite") (fun () ->
      ignore (Cf.eval f Float.nan));
  Alcotest.check_raises "inf deriv point"
    (Invalid_argument "Cost_function.deriv: x = inf is not finite") (fun () ->
      ignore (Cf.deriv f Float.infinity));
  Alcotest.check_raises "nan scale factor"
    (Invalid_argument "Cost_function.scale: by = nan is not finite") (fun () ->
      ignore (Cf.scale ~by:Float.nan f))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ccache_cost"
    [
      ( "cost_function",
        [
          Alcotest.test_case "linear" `Quick test_linear;
          Alcotest.test_case "monomial" `Quick test_monomial;
          Alcotest.test_case "polynomial" `Quick test_polynomial;
          Alcotest.test_case "exponential" `Quick test_exponential;
          Alcotest.test_case "combinators" `Quick test_custom_and_combinators;
          Alcotest.test_case "negative rejected" `Quick test_eval_negative_rejected;
          Alcotest.test_case "non-finite rejected" `Quick test_float_hygiene;
          Alcotest.test_case "rate modes" `Quick test_rate_modes;
        ] );
      ( "piecewise",
        [
          Alcotest.test_case "eval/deriv" `Quick test_piecewise_eval;
          Alcotest.test_case "validation" `Quick test_piecewise_validation;
          Alcotest.test_case "sorting" `Quick test_piecewise_sorting;
          Alcotest.test_case "many segments" `Quick test_piecewise_many_segments;
        ] );
      ( "sla",
        [
          Alcotest.test_case "hinge" `Quick test_sla_hinge;
          Alcotest.test_case "tiered" `Quick test_sla_tiered;
          Alcotest.test_case "smooth hinge" `Quick test_sla_smooth_hinge;
          Alcotest.test_case "step refund non-convex" `Quick
            test_sla_step_refund_nonconvex;
          Alcotest.test_case "validation" `Quick test_sla_validation;
          Alcotest.test_case "hinge discrete rate" `Quick
            test_hinge_discrete_rate_near_breakpoint;
        ] );
      ( "calculus",
        [
          Alcotest.test_case "accepts valid" `Quick test_calculus_accepts_valid;
          Alcotest.test_case "rejects invalid" `Quick test_calculus_rejects_invalid;
          Alcotest.test_case "derivative check" `Quick test_calculus_derivative_check;
        ] );
      ( "properties",
        qsuite [ marginal_telescopes; alpha_dominates; piecewise_convex_increasing ] );
    ]
