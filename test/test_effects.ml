(* Tests for tools/effects: the effect-set lattice, fixpoint
   monotonicity (property), golden findings over the fixture library,
   and the --inject mutation hook over the real lib/ call graph.

   The shell-out tests run the real ccache_effects.exe exactly as CI
   does; cwd is _build/default/test, so the built lib/ and fixture
   .cmt trees are siblings at ../lib and effects_fixtures/. *)

let exe =
  Filename.concat ".."
    (Filename.concat "tools" (Filename.concat "effects" "ccache_effects.exe"))

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let run_capture cmd =
  let out = Filename.temp_file "ccache_effects_test" ".out" in
  let code = Sys.command (cmd ^ " > " ^ Filename.quote out ^ " 2> /dev/null") in
  let ic = open_in out in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove out;
  (code, List.rev !lines)

let effects args = run_capture (Filename.quote exe ^ " " ^ args)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---- effect-set lattice sanity ---- *)

let test_effect_set () =
  let module Es = Effect_set in
  Alcotest.(check string) "empty prints as dash" "-" (Es.to_string Es.empty);
  let s = Es.of_list [ Es.Time; Es.Alloc ] in
  Alcotest.(check string) "ordered rendering" "time+alloc" (Es.to_string s);
  checkb "subset of all" true (Es.subset s Es.all);
  checkb "union is monotone" true (Es.subset s (Es.union s (Es.bit Es.Io)));
  checkb "diff removes" false Es.(mem (diff s (bit Time)) Time);
  List.iter
    (fun c ->
      Alcotest.(check (option string))
        ("name roundtrip " ^ Es.name c)
        (Some (Es.name c))
        (Option.map Es.name (Es.of_name (Es.name c))))
    Es.all_classes

(* ---- fixpoint monotonicity: adding a call edge never shrinks any
   node's effect set ---- *)

let gen_graph =
  QCheck.Gen.(
    let node_name i = "n" ^ string_of_int i in
    let* n = int_range 2 10 in
    let name = map node_name (int_range 0 (n - 1)) in
    (* callees draw from nodes and a few externs *)
    let callee =
      frequency
        [ (3, name); (1, map (fun i -> "ext" ^ string_of_int i) (int_range 0 4)) ]
    in
    let eset = map (fun b -> b land 127) (int_range 0 127) in
    let edge = pair callee eset in
    let node i =
      let* seed = eset in
      let* forgiven = frequency [ (3, return 0); (1, eset) ] in
      let* calls = list_size (int_range 0 4) edge in
      return { Effects_graph.id = node_name i; seed; forgiven; calls }
    in
    let* nodes = flatten_l (List.init n node) in
    let* src = name and* dst = callee in
    return (nodes, src, dst))

let extern name = Hashtbl.hash name land 127

let test_monotone =
  QCheck.Test.make ~name:"adding a call edge never shrinks an effect set"
    ~count:500
    (QCheck.make ~print:(fun (ns, s, d) ->
         Printf.sprintf "%d nodes, +%s->%s" (List.length ns) s d)
       gen_graph)
    (fun (nodes, src, dst) ->
      let g0 = Effects_graph.of_nodes nodes in
      let before = Effects_graph.fixpoint ~extern g0 in
      let g1 = Effects_graph.of_nodes nodes in
      Effects_graph.add_call g1 ~src ~callee:dst;
      let after = Effects_graph.fixpoint ~extern g1 in
      List.for_all
        (fun (n : Effects_graph.node) ->
          Effect_set.subset
            (Effects_graph.effects before n.id)
            (Effects_graph.effects after n.id))
        nodes)

(* ---- golden findings over the fixture library ---- *)

(* (file, rule) pairs that MUST be reported, one per effect class. *)
let expected_fixture_findings =
  [
    ("bad_time.ml", "contract-deterministic");
    ("bad_time.ml", "direct-clock");
    ("bad_rand.ml", "contract-pure");
    ("bad_io.ml", "contract-pure");
    ("bad_gwrite.ml", "contract-pure");
    ("bad_spawn.ml", "contract-deterministic");
    ("bad_alloc.ml", "contract-no_alloc");
    ("bad_pool.ml", "pool-task-global-write");
    ("bad_pool.ml", "pool-task-capture");
    ("bad_pool_transitive.ml", "pool-task-global-write");
  ]

let test_fixture_findings () =
  let code, lines = effects "--root effects_fixtures --no-required" in
  checki "violations exit 1" 1 code;
  List.iter
    (fun (file, rule) ->
      checkb
        (Printf.sprintf "%s flagged by %s" file rule)
        true
        (List.exists
           (fun l -> contains_sub l file && contains_sub l ("[" ^ rule ^ "]"))
           lines))
    expected_fixture_findings;
  List.iter
    (fun l ->
      checkb ("no finding on a passing module: " ^ l) false
        (contains_sub l "good_"))
    lines

(* ---- the real library is clean, and stays checked ---- *)

let test_lib_clean () =
  let code, lines = effects "--root ../lib" in
  checki "lib/ has no findings" 0 code;
  Alcotest.(check (list string)) "no output" [] lines

(* Seeded mutation: wiring a clock read into the engine step MUST be
   caught — this is the canary that the analysis, the contract table
   and the CI gate are actually connected. *)
let test_mutation_caught () =
  let code, lines =
    effects
      "--root ../lib --inject Ccache_sim.Engine.Step.step=Unix.gettimeofday"
  in
  checki "mutated step fails the check" 1 code;
  checkb "step's deterministic contract violated" true
    (List.exists
       (fun l ->
         contains_sub l "[contract-deterministic]"
         && contains_sub l "Engine.Step.step")
       lines);
  checkb "clock reaches the fused-sweep pool task" true
    (List.exists
       (fun l ->
         contains_sub l "[pool-task-effects]" && contains_sub l "run_fused")
       lines)

let test_mutation_alloc () =
  let code, lines =
    effects "--root ../lib --inject Ccache_core.Alg_fast.touch=Printf.sprintf"
  in
  checki "allocating touch fails the check" 1 code;
  checkb "touch's no_alloc contract violated" true
    (List.exists
       (fun l ->
         contains_sub l "[contract-no_alloc]" && contains_sub l "Alg_fast.touch")
       lines)

let () =
  Alcotest.run "ccache_effects"
    [
      ( "lattice",
        [
          Alcotest.test_case "effect-set operations" `Quick test_effect_set;
          QCheck_alcotest.to_alcotest test_monotone;
        ] );
      ( "fixtures",
        [
          Alcotest.test_case "one finding per effect class" `Quick
            test_fixture_findings;
        ] );
      ( "library",
        [
          Alcotest.test_case "lib/ contracts hold" `Quick test_lib_clean;
          Alcotest.test_case "time mutation caught" `Quick test_mutation_caught;
          Alcotest.test_case "alloc mutation caught" `Quick test_mutation_alloc;
        ] );
    ]
