(* Fused single-pass sweeps: Sweep.run_fused / run_cells must be
   byte-identical to per-cell Engine.run over arbitrary (policy, k,
   costs, trace) grids — the invariant the fused-equivalence CI job
   enforces end to end on the suite, checked here at the API level.
   Also covers the Engine.Step API directly and the deterministic
   serial chunking of Domain_pool.map_list (the --jobs-width obs
   contract). *)

module Pool = Ccache_util.Domain_pool
module Sweep = Ccache_sim.Sweep
module Engine = Ccache_sim.Engine
module W = Ccache_trace.Workloads
module Cf = Ccache_cost.Cost_function

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let tenants = 3

let make_trace ~seed ~length =
  W.generate ~seed ~length
    (W.symmetric_zipf ~tenants ~pages_per_tenant:24 ~skew:0.8)

(* Online, offline (needs_future, so the fused group shares one trace
   index) and the paper's algorithms all in one pool. *)
let policy_pool =
  [|
    Ccache_policies.Lru.policy;
    Ccache_policies.Lfu.policy;
    Ccache_policies.Landlord.adaptive;
    Ccache_core.Alg_discrete.policy;
    Ccache_core.Alg_fast.policy;
    Ccache_policies.Belady.policy;
    Ccache_policies.Convex_belady.policy;
  |]

let costs_of ~beta =
  Array.init tenants (fun i ->
      if i = 0 then Cf.linear ~slope:2.0 () else Cf.monomial ~beta ())

(* The unfused reference: one plain Engine.run per cell. *)
let solo (c : Sweep.cell) =
  Engine.run ~flush:c.Sweep.flush ~k:c.Sweep.k ~costs:c.Sweep.costs
    c.Sweep.policy c.Sweep.trace

(* One random grid: a shared trace plus a list of heterogeneous cells
   over it.  [Engine.result] is a record of scalars, arrays and page
   lists, so structural equality is the byte-identity check. *)
let cell_params =
  QCheck.(
    list_of_size Gen.(int_range 1 8)
      (triple (int_range 0 (Array.length policy_pool - 1)) (int_range 1 40)
         bool))

let cells_over trace params =
  List.map
    (fun (pi, k, flush) ->
      let beta = 1.0 +. (float_of_int (k mod 5) /. 2.0) in
      Sweep.cell ~flush ~k ~costs:(costs_of ~beta) policy_pool.(pi) trace)
    params

let fused_matches_solo =
  QCheck.Test.make ~name:"run_fused = per-cell Engine.run" ~count:40
    QCheck.(triple (int_range 0 1000) (int_range 50 400) cell_params)
    (fun (seed, length, params) ->
      QCheck.assume (params <> []);
      let trace = make_trace ~seed ~length in
      let cells = cells_over trace params in
      Sweep.run_fused cells = List.map solo cells)

let fused_matches_solo_distinct_traces =
  (* cells alternating over two physically distinct traces: the fused
     partition degenerates to one group per trace, and the per-group
     fallback must still reproduce the solo runs exactly *)
  QCheck.Test.make ~name:"run_fused with distinct traces (per-group fallback)"
    ~count:25
    QCheck.(triple (int_range 0 1000) (int_range 50 300) cell_params)
    (fun (seed, length, params) ->
      QCheck.assume (List.length params >= 2);
      let t1 = make_trace ~seed ~length in
      let t2 = make_trace ~seed:(seed + 1) ~length in
      let cells =
        List.mapi
          (fun i c -> { c with Sweep.trace = (if i mod 2 = 0 then t1 else t2) })
          (cells_over t1 params)
      in
      List.length (Sweep.group_indices cells) = 2
      && Sweep.run_fused cells = List.map solo cells)

let fused_matches_solo_pooled =
  (* whole groups distributed over a pool, chunked — same results in
     the same order at any width and grain *)
  QCheck.Test.make ~name:"run_fused on a chunked Domain_pool" ~count:10
    QCheck.(
      quad (int_range 0 1000) (int_range 50 200) (int_range 1 3) cell_params)
    (fun (seed, length, chunk, params) ->
      QCheck.assume (params <> []);
      let traces =
        Array.init 3 (fun i -> make_trace ~seed:(seed + i) ~length)
      in
      let cells =
        List.mapi
          (fun i c -> { c with Sweep.trace = traces.(i mod 3) })
          (cells_over traces.(0) params)
      in
      let expected = List.map solo cells in
      Pool.with_pool ~size:2 (fun pool ->
          Sweep.run_fused ~pool ~chunk cells = expected))

let step_matches_run =
  (* the stepping API driven by hand is the engine *)
  QCheck.Test.make ~name:"Engine.Step init/step/finish = Engine.run" ~count:40
    QCheck.(
      quad (int_range 0 1000) (int_range 30 300)
        (int_range 0 (Array.length policy_pool - 1))
        (pair (int_range 1 32) bool))
    (fun (seed, length, pi, (k, flush)) ->
      let trace = make_trace ~seed ~length in
      let costs = costs_of ~beta:2.0 in
      let policy = policy_pool.(pi) in
      let st = Engine.Step.init ~flush ~k ~costs policy trace in
      for pos = 0 to Engine.Step.length st - 1 do
        Engine.Step.step st pos
      done;
      Engine.Step.finish st = Engine.run ~flush ~k ~costs policy trace)

let run_cells_obeys_switches () =
  let trace = make_trace ~seed:7 ~length:200 in
  let cells = cells_over trace [ (0, 8, false); (5, 8, false); (3, 16, true) ] in
  let expected = List.map solo cells in
  checkb "fused on" true (Sweep.run_cells cells = expected);
  checkb "per-call opt-out" true (Sweep.run_cells ~fuse:false cells = expected);
  Sweep.set_fused false;
  Fun.protect
    ~finally:(fun () -> Sweep.set_fused true)
    (fun () ->
      checkb "still enabled default" false (Sweep.fused_enabled ());
      checkb "global opt-out" true (Sweep.run_cells cells = expected));
  checkb "switch restored" true (Sweep.fused_enabled ())

let test_group_indices () =
  let t1 = make_trace ~seed:1 ~length:60 in
  let t2 = make_trace ~seed:2 ~length:60 in
  let cell t = Sweep.cell ~k:4 ~costs:(costs_of ~beta:2.0) policy_pool.(0) t in
  checki "empty" 0 (List.length (Sweep.group_indices []));
  checkb "all shared" true
    (Sweep.group_indices [ cell t1; cell t1; cell t1 ] = [ [ 0; 1; 2 ] ]);
  checkb "first-touch order, ascending within" true
    (Sweep.group_indices [ cell t1; cell t2; cell t1; cell t2 ]
    = [ [ 0; 2 ]; [ 1; 3 ] ]);
  (* value-equal but physically distinct traces must not fuse *)
  let t1' = make_trace ~seed:1 ~length:60 in
  checkb "physical identity only" true
    (Sweep.group_indices [ cell t1; cell t1' ] = [ [ 0 ]; [ 1 ] ])

let test_rows () =
  checkb "rows splits row-major" true
    (Sweep.rows ~width:2 [ 1; 2; 3; 4; 5; 6 ] = [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ] ]);
  checkb "empty" true (Sweep.rows ~width:3 [] = []);
  (match Sweep.rows ~width:0 [ 1 ] with
  | _ -> Alcotest.fail "width 0 must raise"
  | exception Invalid_argument _ -> ());
  match Sweep.rows ~width:2 [ 1; 2; 3 ] with
  | _ -> Alcotest.fail "ragged input must raise"
  | exception Invalid_argument _ -> ()

(* --------------------------------------------------------------- *)
(* Serial ?chunk determinism (Domain_pool.map_list)                 *)
(* --------------------------------------------------------------- *)

let serial_chunk_matches_map =
  QCheck.Test.make ~name:"map_list without a pool honours ?chunk" ~count:50
    QCheck.(pair (int_range 1 9) (list small_int))
    (fun (chunk, xs) ->
      let f x = (x * 3) + 1 in
      Pool.map_list ~chunk ~f xs = List.map f xs)

let serial_chunk_order () =
  (* blocks are walked in input order: the visit sequence is exactly
     the input sequence at every grain *)
  let xs = List.init 23 Fun.id in
  List.iter
    (fun chunk ->
      let seen = ref [] in
      ignore
        (Pool.map_list ~chunk ~f:(fun x -> seen := x :: !seen) xs);
      checkb
        (Printf.sprintf "chunk %d visits in order" chunk)
        true
        (List.rev !seen = xs))
    [ 1; 2; 5; 23; 100 ]

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ccache_fused"
    [
      ( "equivalence",
        qsuite
          [
            fused_matches_solo;
            fused_matches_solo_distinct_traces;
            fused_matches_solo_pooled;
            step_matches_run;
          ] );
      ( "grouping",
        [
          Alcotest.test_case "group_indices" `Quick test_group_indices;
          Alcotest.test_case "rows" `Quick test_rows;
          Alcotest.test_case "switches" `Quick run_cells_obeys_switches;
        ] );
      ( "serial chunking",
        Alcotest.test_case "visit order" `Quick serial_chunk_order
        :: qsuite [ serial_chunk_matches_map ] );
    ]
