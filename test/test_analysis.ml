(* Tests for ccache_analysis: scenarios, competitive bracketing, the
   experiment registry, and a full Quick run of every experiment
   (asserting the claims encoded in the notes, not just "it ran"). *)

module A = Ccache_analysis
module Cf = Ccache_cost.Cost_function

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

let test_scenarios_build () =
  let s = A.Scenarios.zipf ~seed:1 ~length:100 ~tenants:3 ~pages:10 ~skew:0.5 in
  checki "trace length" 100 (Ccache_trace.Trace.length s.A.Scenarios.trace);
  checki "costs per tenant" 3 (Array.length s.A.Scenarios.costs);
  let q = A.Scenarios.sqlvm ~seed:2 ~length:50 ~scale:1 in
  checki "sqlvm has 5 tenants" 5 (Array.length q.A.Scenarios.costs)

let test_scenarios_cost_builders () =
  let m = A.Scenarios.monomial_costs ~beta:2.0 3 in
  Array.iter (fun f -> checkf "alpha 2" 2.0 (Cf.alpha f)) m;
  let w = A.Scenarios.weighted_costs 3 in
  checkf "weights double" 4.0 (Cf.eval w.(2) 1.0);
  let mixed = A.Scenarios.mixed_costs 6 in
  checki "six costs" 6 (Array.length mixed)

(* ------------------------------------------------------------------ *)
(* Competitive bracketing                                              *)
(* ------------------------------------------------------------------ *)

let test_bracket () =
  let b =
    A.Competitive.bracket ~offline_lower:5.0 ~online_cost:20.0 ~offline_upper:10.0 ()
  in
  checkf "vs upper" 2.0 b.A.Competitive.ratio_vs_upper;
  checkb "vs lower" true (b.A.Competitive.ratio_vs_lower = Some 4.0);
  (* true ratio in [2, 4] *)
  checkb "ordering" true
    (b.A.Competitive.ratio_vs_upper
    <= Option.get b.A.Competitive.ratio_vs_lower);
  let nb = A.Competitive.bracket ~online_cost:1.0 ~offline_upper:0.0 () in
  checkb "zero offline -> infinite" true (nb.A.Competitive.ratio_vs_upper = infinity)

let test_cost_of () =
  let costs = [| Cf.monomial ~beta:2.0 (); Cf.linear ~slope:2.0 () |] in
  checkf "sum" 13.0 (A.Competitive.cost_of ~costs [| 3; 2 |])

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)
(* ------------------------------------------------------------------ *)

let test_certificate_soundness () =
  (* the certified lower bound must not exceed any feasible offline
     schedule's cost, and the certified ratio must be >= the ratio
     against best-of *)
  let s = A.Scenarios.two_tenant_monomial ~seed:5 ~length:400 ~beta:2.0 ~pages:24 in
  let costs = s.A.Scenarios.costs in
  let k = 8 in
  let c = A.Certificate.certify ~ascent_iterations:40 ~k ~costs s.A.Scenarios.trace in
  let off =
    Ccache_offline.Best_of.compute ~local_search_rounds:0 ~cache_size:k ~costs
      s.A.Scenarios.trace
  in
  checkb "bound <= best-of cost" true
    (c.A.Certificate.improved_bound <= off.Ccache_offline.Best_of.cost +. 1e-6);
  checkb "bound non-negative" true (c.A.Certificate.improved_bound >= 0.0);
  checkb "improvement monotone" true
    (c.A.Certificate.improved_bound >= c.A.Certificate.scaled_bound -. 1e-9
    && c.A.Certificate.scaled_bound >= c.A.Certificate.raw_bound -. 1e-9);
  checkb "certified ratio finite and >= 1-ish" true
    (c.A.Certificate.certified_ratio > 0.5)

let test_certificate_no_ascent () =
  let s = A.Scenarios.zipf ~seed:6 ~length:300 ~tenants:2 ~pages:20 ~skew:0.7 in
  let c =
    A.Certificate.certify ~ascent_iterations:0 ~k:6 ~costs:s.A.Scenarios.costs
      s.A.Scenarios.trace
  in
  checkb "no-ascent uses scaled bound" true
    (c.A.Certificate.improved_bound = Float.max 0.0 c.A.Certificate.scaled_bound)

(* ------------------------------------------------------------------ *)
(* Suite registry                                                      *)
(* ------------------------------------------------------------------ *)

let test_suite_registry () =
  checki "fifteen experiments" 15 (List.length A.Suite.all);
  checkb "ids e1..e15" true
    (A.Suite.ids
    = [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10"; "e11"; "e12"; "e13"; "e14"; "e15" ]);
  checkb "find works" true (A.Suite.find "e4" <> None);
  checkb "find missing" true (A.Suite.find "e99" = None)

(* ------------------------------------------------------------------ *)
(* Experiments: run Quick and assert their encoded claims              *)
(* ------------------------------------------------------------------ *)

let run_quick id =
  match A.Suite.find id with
  | Some e -> e.A.Experiment.run A.Experiment.Quick
  | None -> Alcotest.fail ("unknown experiment " ^ id)

let note_mentions out needle =
  List.exists
    (fun note ->
      let nl = String.length needle and hl = String.length note in
      let rec go i = i + nl <= hl && (String.sub note i nl = needle || go (i + 1)) in
      go 0)
    out.A.Experiment.notes

let test_e1_no_violations () =
  let out = run_quick "e1" in
  checkb "zero violations" true (note_mentions out "violations: 0");
  checkb "has table" true (out.A.Experiment.tables <> [])

let test_e2_no_violations () =
  let out = run_quick "e2" in
  checkb "zero violations" true (note_mentions out "violations: 0")

let test_e3_no_violations () =
  let out = run_quick "e3" in
  checkb "zero violations" true (note_mentions out "violations: 0")

let test_e4_runs () =
  let out = run_quick "e4" in
  checki "two tables" 2 (List.length out.A.Experiment.tables)

let test_e5_runs () =
  let out = run_quick "e5" in
  checkb "one table per k" true (List.length out.A.Experiment.tables >= 1)

let test_e6_no_violations () =
  let out = run_quick "e6" in
  checkb "alpha = 1" true (note_mentions out "alpha(linear costs) = 1");
  checkb "zero violations" true (note_mentions out "violations for alg-discrete: 0")

let test_e7_no_failures () =
  let out = run_quick "e7" in
  checkb "invariants clean" true (note_mentions out "invariant failures: 0");
  checkb "claim 2.3 clean" true (note_mentions out "Claim 2.3 failures: 0")

let test_e8_sound () =
  let out = run_quick "e8" in
  checkb "sandwich sound" true (note_mentions out "violations: 0")

let test_e9_fast_matches () =
  let out = run_quick "e9" in
  checkb "fast = reference" true (note_mentions out "identical miss vectors): true")

let test_e10_runs () =
  let out = run_quick "e10" in
  checkb "has table" true (out.A.Experiment.tables <> [])

let test_e11_sound () =
  let out = run_quick "e11" in
  checkb "ordering sound" true (note_mentions out "violations (certified < best-of ratio): 0")

let test_e12_runs () =
  let out = run_quick "e12" in
  checki "two regimes" 2 (List.length out.A.Experiment.tables)

let test_e13_smooth_regime () =
  let out = run_quick "e13" in
  checkb "cost-aware wins smooth regime" true
    (note_mentions out "smooth-convex regime: best online policy cost-aware on every k: true")

let test_e14_runs () =
  let out = run_quick "e14" in
  (* the documented honest negative: reset does not win *)
  checkb "reset outcome as documented" true
    (note_mentions out "objective: false (expected false")

(* ------------------------------------------------------------------ *)
(* Report rendering                                                    *)
(* ------------------------------------------------------------------ *)

let test_report_renders_both_formats () =
  let out = run_quick "e3" in
  let text = A.Report.render_output A.Report.Text out in
  let md = A.Report.render_output A.Report.Markdown out in
  checkb "text non-empty" true (String.length text > 0);
  checkb "markdown headed" true (String.length md > 2 && String.sub md 0 2 = "##")

let () =
  Alcotest.run "ccache_analysis"
    [
      ( "scenarios",
        [
          Alcotest.test_case "build" `Quick test_scenarios_build;
          Alcotest.test_case "cost builders" `Quick test_scenarios_cost_builders;
        ] );
      ( "competitive",
        [
          Alcotest.test_case "bracket" `Quick test_bracket;
          Alcotest.test_case "cost_of" `Quick test_cost_of;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "soundness" `Quick test_certificate_soundness;
          Alcotest.test_case "no ascent" `Quick test_certificate_no_ascent;
        ] );
      ("suite", [ Alcotest.test_case "registry" `Quick test_suite_registry ]);
      ( "experiments",
        [
          Alcotest.test_case "e1 thm1.1 holds" `Quick test_e1_no_violations;
          Alcotest.test_case "e2 cor1.2 holds" `Quick test_e2_no_violations;
          Alcotest.test_case "e3 thm1.3 holds" `Quick test_e3_no_violations;
          Alcotest.test_case "e4 lower bound" `Quick test_e4_runs;
          Alcotest.test_case "e5 sla baselines" `Quick test_e5_runs;
          Alcotest.test_case "e6 linear reduction" `Quick test_e6_no_violations;
          Alcotest.test_case "e7 invariants" `Quick test_e7_no_failures;
          Alcotest.test_case "e8 cp sandwich" `Quick test_e8_sound;
          Alcotest.test_case "e9 ablations" `Quick test_e9_fast_matches;
          Alcotest.test_case "e10 multipool" `Quick test_e10_runs;
          Alcotest.test_case "e11 certificates" `Quick test_e11_sound;
          Alcotest.test_case "e12 fractional" `Quick test_e12_runs;
          Alcotest.test_case "e13 dbsim regimes" `Quick test_e13_smooth_regime;
          Alcotest.test_case "e14 windowed SLAs" `Quick test_e14_runs;
        ] );
      ("report", [ Alcotest.test_case "render formats" `Quick test_report_renders_both_formats ]);
    ]
