(* Ccache_obs: merge laws, jobs-width independence, span nesting on
   supervisor retry paths, the zero-overhead-off guarantee, and the
   golden Chrome-trace export.

   Global-state discipline: every test runs inside
   [Control.with_enabled] (or explicitly disabled) and calls
   [Metrics.reset] first, so tests are order-independent. *)

module Control = Ccache_obs.Control
module Clock = Ccache_obs.Clock
module M = Ccache_obs.Metrics
module Span = Ccache_obs.Span
module Sink = Ccache_obs.Sink
module Trace_export = Ccache_obs.Trace_export
module U = Ccache_util
module A = Ccache_analysis

let qsuite = List.map (QCheck_alcotest.to_alcotest ~long:false)

(* ------------------------------------------------------------------ *)
(* Merge laws (QCheck)                                                 *)
(* ------------------------------------------------------------------ *)

(* Snapshots are generated directly.  Float payloads are small
   integers, so the sums that [merge] computes are exact and the
   associativity law is testable with structural equality.  Gauge
   values are a function of their (domain, seq) stamp, so stamp ties
   carry equal values and the max-by-stamp resolution stays
   commutative (live shards guarantee distinct stamps per domain by
   construction; the generator mirrors that invariant). *)

let name_gen = QCheck.Gen.oneofl [ "a"; "b"; "c"; "d"; "e" ]

let sorted_unique l =
  List.sort_uniq (fun (a, _) (b, _) -> compare a b) l

let counters_gen =
  QCheck.Gen.(
    map sorted_unique
      (list_size (int_bound 5) (pair name_gen (int_range 0 1000))))

let gauge_gen =
  QCheck.Gen.(
    map
      (fun (d, s) ->
        { M.g_domain = d; g_seq = s; g_value = float_of_int ((d * 1000) + s) })
      (pair (int_bound 3) (int_bound 50)))

let gauges_gen =
  QCheck.Gen.(
    map sorted_unique (list_size (int_bound 4) (pair name_gen gauge_gen)))

let hist_bounds = [| 1.0; 2.0; 4.0 |]

let hist_gen =
  QCheck.Gen.(
    map
      (fun counts ->
        let counts = Array.of_list counts in
        let count = Array.fold_left ( + ) 0 counts in
        {
          M.bounds = hist_bounds;
          counts;
          sum = float_of_int (count * 3);
          count;
        })
      (list_repeat 4 (int_bound 20)))

let hists_gen =
  QCheck.Gen.(
    map sorted_unique (list_size (int_bound 4) (pair name_gen hist_gen)))

let snapshot_gen =
  QCheck.Gen.(
    map
      (fun ((counters, gauges), hists) -> { M.counters; gauges; hists })
      (pair (pair counters_gen gauges_gen) hists_gen))

let pp_snapshot ppf (s : M.snapshot) =
  Fmt.pf ppf "counters=%a gauges=%a hists=%a"
    Fmt.(Dump.list (Dump.pair string int))
    s.M.counters
    Fmt.(
      Dump.list
        (Dump.pair string (fun ppf g ->
             Fmt.pf ppf "(%d,%d)=%g" g.M.g_domain g.M.g_seq g.M.g_value)))
    s.M.gauges
    Fmt.(
      Dump.list
        (Dump.pair string (fun ppf h ->
             Fmt.pf ppf "%a n=%d" (Dump.array int) h.M.counts h.M.count)))
    s.M.hists

let snapshot_arb =
  QCheck.make ~print:(Fmt.str "%a" pp_snapshot) snapshot_gen

let merge_commutative =
  QCheck.Test.make ~name:"Metrics.merge is commutative" ~count:300
    QCheck.(pair snapshot_arb snapshot_arb)
    (fun (a, b) -> M.merge a b = M.merge b a)

let merge_associative =
  QCheck.Test.make ~name:"Metrics.merge is associative" ~count:300
    QCheck.(triple snapshot_arb snapshot_arb snapshot_arb)
    (fun (a, b, c) -> M.merge a (M.merge b c) = M.merge (M.merge a b) c)

let merge_identity =
  QCheck.Test.make ~name:"Metrics.empty is the merge identity" ~count:100
    snapshot_arb
    (fun a -> M.merge M.empty a = a && M.merge a M.empty = a)

let test_merge_bounds_mismatch () =
  let h b = { M.bounds = b; counts = [| 0; 0 |]; sum = 0.0; count = 0 } in
  let s b = { M.empty with M.hists = [ ("h", h b) ] } in
  Alcotest.check_raises "mismatched bounds raise"
    (Invalid_argument
       "Metrics.merge: histogram \"h\" recorded with different bucket bounds")
    (fun () -> ignore (M.merge (s [| 1.0 |]) (s [| 2.0 |])))

(* ------------------------------------------------------------------ *)
(* Jobs-width independence                                             *)
(* ------------------------------------------------------------------ *)

(* The same sweep recorded at pool widths 1 and 8 must produce the
   same *application* telemetry.  Pool self-telemetry (names under
   "pool/", and gauges generally) measures the execution schedule, not
   the computation, and is excluded by contract. *)

let app_view (s : M.snapshot) =
  let keep (name, _) = not (String.length name >= 5 && String.sub name 0 5 = "pool/") in
  (List.filter keep s.M.counters, List.filter keep s.M.hists)

let span_view spans =
  spans
  |> List.filter (fun (s : Sink.span) ->
         s.Sink.sp_cat = "sweep" || s.Sink.sp_cat = "engine")
  |> List.map (fun (s : Sink.span) -> (s.Sink.sp_cat, s.Sink.sp_name, s.Sink.sp_args))
  |> List.sort compare

let record_sweep pool =
  M.reset ();
  let trace =
    Ccache_trace.Workloads.generate ~seed:11 ~length:3000
      (Ccache_trace.Workloads.sqlvm_mix ~scale:1)
  in
  let costs =
    Array.init
      (Ccache_trace.Trace.n_users trace)
      (fun _ -> Ccache_cost.Cost_function.monomial ~beta:2.0 ())
  in
  let results =
    Ccache_sim.Sweep.run ?pool [ 8; 16; 32; 64 ] ~f:(fun k ->
        Ccache_sim.Engine.misses
          (Ccache_sim.Engine.run ~k ~costs Ccache_core.Alg_fast.policy trace))
  in
  (List.map snd results, app_view (M.snapshot ()), span_view (Span.collect ()))

let test_jobs_width_independence () =
  Control.with_enabled ~clock:(Clock.counting ()) @@ fun () ->
  let misses1, app1, spans1 = record_sweep None in
  let misses8, app8, spans8 =
    U.Domain_pool.with_pool ~size:8 (fun pool -> record_sweep (Some pool))
  in
  Alcotest.(check (list int)) "results identical" misses1 misses8;
  Alcotest.(check bool) "counters+histograms identical" true (app1 = app8);
  Alcotest.(check int) "same span count" (List.length spans1) (List.length spans8);
  Alcotest.(check bool) "span structure identical" true (spans1 = spans8)

(* ------------------------------------------------------------------ *)
(* Span nesting on supervisor retry paths                              *)
(* ------------------------------------------------------------------ *)

(* With the counting clock every read is globally unique and
   monotonic, so proper nesting is checkable arithmetically: a child
   span (or instant) opens after its parent and closes before it. *)
let check_well_formed spans =
  let find_parent (s : Sink.span) p =
    List.find_opt
      (fun (q : Sink.span) ->
        q.Sink.sp_domain = s.Sink.sp_domain && q.Sink.sp_seq = p)
      spans
  in
  List.iter
    (fun (s : Sink.span) ->
      match s.Sink.sp_parent with
      | None -> ()
      | Some p -> (
          match find_parent s p with
          | None ->
              Alcotest.failf "span %s: parent seq %d missing on domain %d"
                s.Sink.sp_name p s.Sink.sp_domain
          | Some parent ->
              Alcotest.(check bool)
                (Printf.sprintf "%s nests inside %s" s.Sink.sp_name
                   parent.Sink.sp_name)
                true
                (parent.Sink.sp_seq < s.Sink.sp_seq
                && parent.Sink.sp_start < s.Sink.sp_start
                && s.Sink.sp_start +. s.Sink.sp_dur
                   < parent.Sink.sp_start +. parent.Sink.sp_dur)))
    spans

let retry_policy =
  {
    U.Supervisor.default_policy with
    U.Supervisor.max_retries = 3;
    backoff_base_s = 0.001;
    backoff_max_s = 0.002;
  }

let run_supervised_with_faults pool =
  M.reset ();
  let fault =
    match U.Fault.of_spec "9:0.8" with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  let tasks =
    List.init 6 (fun i ->
        {
          U.Supervisor.id = Printf.sprintf "t%d" i;
          run =
            (fun _ctx ->
              Span.with_ ~cat:"work" (Printf.sprintf "body%d" i) (fun () -> i));
        })
  in
  let retries = ref 0 in
  let on_event = function
    | U.Supervisor.Retrying _ -> incr retries
    | _ -> ()
  in
  let outcomes = U.Supervisor.run ?pool ~policy:retry_policy ~fault ~on_event tasks in
  (U.Supervisor.completed outcomes, !retries, Span.collect ())

let test_supervisor_retry_spans () =
  Control.with_enabled ~clock:(Clock.counting ()) @@ fun () ->
  let completed, retries, spans = run_supervised_with_faults None in
  Alcotest.(check (list int)) "all complete" [ 0; 1; 2; 3; 4; 5 ] completed;
  Alcotest.(check bool) "faults actually injected" true (retries > 0);
  check_well_formed spans;
  let attempts =
    List.length
      (List.filter
         (fun (s : Sink.span) ->
           (not s.Sink.sp_instant)
           && String.length s.Sink.sp_name >= 5
           && String.sub s.Sink.sp_name 0 5 = "task:")
         spans)
  in
  (* one span per attempt: 6 successes + one per retry *)
  Alcotest.(check int) "one span per attempt" (6 + retries) attempts;
  let retry_instants =
    List.length
      (List.filter
         (fun (s : Sink.span) -> s.Sink.sp_name = "supervisor/retry")
         spans)
  in
  Alcotest.(check int) "one instant per retry" retries retry_instants

let test_supervisor_retry_spans_pooled () =
  Control.with_enabled ~clock:(Clock.counting ()) @@ fun () ->
  let completed, _retries, spans =
    U.Domain_pool.with_pool ~size:4 (fun pool ->
        run_supervised_with_faults (Some pool))
  in
  Alcotest.(check (list int)) "all complete" [ 0; 1; 2; 3; 4; 5 ] completed;
  check_well_formed spans

(* ------------------------------------------------------------------ *)
(* Zero overhead when off                                              *)
(* ------------------------------------------------------------------ *)

let test_disabled_records_nothing () =
  Control.disable ();
  M.reset ();
  M.incr "c";
  M.set_gauge "g" 1.0;
  M.observe "h" 1.0;
  Span.with_ "s" (fun () -> Span.instant "i");
  Alcotest.(check bool) "empty snapshot" true (M.snapshot () = M.empty);
  Alcotest.(check int) "no spans" 0 (List.length (Span.collect ()))

(* The tentpole guarantee: recording on/off cannot change a report
   byte.  Rendered here in-process over two suite sections; CI repeats
   the check over the full binary. *)
let test_report_bytes_off_vs_on () =
  let specs =
    match A.Suite.all with a :: b :: _ -> [ a; b ] | l -> l
  in
  Control.disable ();
  let off = A.Report.run_suite ~size:A.Experiment.Quick specs in
  let on =
    Control.with_enabled (fun () ->
        M.reset ();
        A.Report.run_suite ~size:A.Experiment.Quick specs)
  in
  Alcotest.(check string) "report bytes identical" off on

(* ------------------------------------------------------------------ *)
(* Golden Chrome-trace export                                          *)
(* ------------------------------------------------------------------ *)

let test_trace_export_golden () =
  let spans =
    Control.with_enabled ~clock:(Clock.counting ()) (fun () ->
        M.reset ();
        Span.with_ ~cat:"t" ~args:[ ("k", Sink.Int 1) ] "outer" (fun () ->
            Span.instant ~cat:"t" "mark";
            Span.with_ ~cat:"t" ~args:[ ("ok", Sink.Bool true) ] "inner"
              (fun () -> ()));
        Span.collect ())
  in
  let domain = (Domain.self () :> int) in
  let expected =
    Printf.sprintf
      "{\"traceEvents\":[\n\
      \  {\"name\":\"outer\",\"cat\":\"t\",\"ph\":\"X\",\"ts\":0.000,\"dur\":4000000.000,\"pid\":1,\"tid\":%d,\"args\":{\"k\":1}},\n\
      \  {\"name\":\"mark\",\"cat\":\"t\",\"ph\":\"i\",\"ts\":1000000.000,\"s\":\"t\",\"pid\":1,\"tid\":%d,\"args\":{}},\n\
      \  {\"name\":\"inner\",\"cat\":\"t\",\"ph\":\"X\",\"ts\":2000000.000,\"dur\":1000000.000,\"pid\":1,\"tid\":%d,\"args\":{\"ok\":true}}\n\
       ],\"displayTimeUnit\":\"ms\"}\n"
      domain domain domain
  in
  Alcotest.(check string) "golden trace" expected
    (Trace_export.to_json ~origin:0.0 spans)

let test_json_escaping () =
  let module J = Ccache_obs.Obs_json in
  Alcotest.(check string) "quotes and control chars" "\"a\\\"b\\\\c\\u0001\""
    (J.str "a\"b\\c\x01");
  Alcotest.(check string) "non-finite is null" "null" (J.num Float.nan);
  Alcotest.(check string) "micros fixed-point" "1500000.000" (J.micros 1.5)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "ccache_obs"
    [
      ( "merge",
        Alcotest.test_case "bounds mismatch" `Quick test_merge_bounds_mismatch
        :: qsuite [ merge_commutative; merge_associative; merge_identity ] );
      ( "jobs-width",
        [
          Alcotest.test_case "1 vs 8 workers" `Quick test_jobs_width_independence;
        ] );
      ( "supervisor-spans",
        [
          Alcotest.test_case "retry path, inline" `Quick
            test_supervisor_retry_spans;
          Alcotest.test_case "retry path, pooled" `Quick
            test_supervisor_retry_spans_pooled;
        ] );
      ( "off",
        [
          Alcotest.test_case "records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "report bytes off vs on" `Quick
            test_report_bytes_off_vs_on;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace golden" `Quick
            test_trace_export_golden;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
        ] );
    ]
