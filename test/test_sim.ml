(* Tests for ccache_sim: the engine's accounting guarantees, flush
   semantics, policy-error detection, metrics and sweeps. *)

open Ccache_trace
module Policy = Ccache_sim.Policy
module Engine = Ccache_sim.Engine
module Metrics = Ccache_sim.Metrics
module Sweep = Ccache_sim.Sweep
module Cf = Ccache_cost.Cost_function
module Prng = Ccache_util.Prng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let p u i = Page.make ~user:u ~id:i
let linear_costs n = Array.init n (fun _ -> Cf.linear ~slope:1.0 ())

(* ------------------------------------------------------------------ *)
(* Engine basics with LRU                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_hit_miss_accounting () =
  (* a b a c with k=2, LRU: a miss, b miss, a hit, c miss (evict b) *)
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1; p 0 0; p 0 2 ] in
  let r = Engine.run ~k:2 ~costs:(linear_costs 1) Ccache_policies.Lru.policy t in
  checki "hits" 1 r.Engine.hits;
  checki "misses" 3 (Engine.misses r);
  checki "evictions" 1 (Engine.evictions r);
  checkb "hits+misses=T" true (r.Engine.hits + Engine.misses r = 4);
  checkb "final cache" true (r.Engine.final_cache = [ p 0 0; p 0 2 ]);
  checkf "miss ratio" 0.75 (Engine.miss_ratio r)

let test_engine_no_eviction_when_room () =
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1; p 0 2 ] in
  let r, log = Engine.run_logged ~k:8 ~costs:(linear_costs 1) Ccache_policies.Lru.policy t in
  checki "no evictions" 0 (Engine.evictions r);
  checkb "all miss-inserts" true
    (List.for_all (function Engine.Miss_insert _ -> true | _ -> false) log)

let test_engine_event_log_order () =
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 0; p 0 1 ] in
  let _, log = Engine.run_logged ~k:1 ~costs:(linear_costs 1) Ccache_policies.Lru.policy t in
  match log with
  | [ Engine.Miss_insert { pos = 0; _ }; Engine.Hit { pos = 1; _ };
      Engine.Miss_evict { pos = 2; victim; _ } ] ->
      checkb "victim is a" true (Page.equal victim (p 0 0))
  | _ -> Alcotest.fail "unexpected event log shape"

let test_engine_costs_length_check () =
  let t = Trace.of_list ~n_users:2 [ p 0 0; p 1 0 ] in
  Alcotest.check_raises "costs mismatch"
    (Invalid_argument "Engine.run: costs array must have one entry per user")
    (fun () ->
      ignore (Engine.run ~k:2 ~costs:(linear_costs 1) Ccache_policies.Lru.policy t))

(* a policy that misbehaves: returns the incoming page as victim *)
let bad_policy =
  Policy.make ~name:"bad" (fun _ ->
      {
        Policy.on_hit = Policy.no_hit;
        wants_evict = Policy.never_evict_early;
        choose_victim = (fun ~pos:_ ~incoming -> incoming);
        on_insert = (fun ~pos:_ _ -> ());
        on_evict = Policy.no_evict;
      })

let test_engine_detects_bad_victim () =
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1 ] in
  checkb "policy error raised" true
    (match Engine.run ~k:1 ~costs:(linear_costs 1) bad_policy t with
    | exception Engine.Policy_error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Flush semantics                                                     *)
(* ------------------------------------------------------------------ *)

let test_engine_flush_empties_cache () =
  let t =
    Workloads.generate ~seed:7 ~length:400
      (Workloads.symmetric_zipf ~tenants:3 ~pages_per_tenant:30 ~skew:0.8)
  in
  let costs = linear_costs 3 in
  List.iter
    (fun policy ->
      let r = Engine.run ~flush:true ~k:16 ~costs policy t in
      checkb
        (Ccache_sim.Policy.name policy ^ " flush empties cache")
        true (r.Engine.final_cache = []);
      (* with flush, evictions = misses per user *)
      checkb
        (Ccache_sim.Policy.name policy ^ " evictions = misses")
        true
        (r.Engine.misses_per_user = r.Engine.evictions_per_user))
    [
      Ccache_policies.Lru.policy;
      Ccache_policies.Fifo.policy;
      Ccache_policies.Lfu.policy;
      Ccache_policies.Marking.policy;
      Ccache_policies.Static_partition.equal_split;
      Ccache_policies.Landlord.adaptive;
      Ccache_policies.Clock.policy;
      Ccache_policies.Two_q.policy;
      Ccache_policies.Arc.policy;
    ]

let test_engine_flush_offline_too () =
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1; p 0 0 ] in
  let r = Engine.run ~flush:true ~k:2 ~costs:(linear_costs 1) Ccache_policies.Belady.policy t in
  checkb "belady flush empties" true (r.Engine.final_cache = []);
  checkb "evictions = misses" true (r.Engine.misses_per_user = r.Engine.evictions_per_user)

(* ------------------------------------------------------------------ *)
(* Cache-size safety property                                          *)
(* ------------------------------------------------------------------ *)

(* replay the event log maintaining a cache set: size must never
   exceed k, victims must be cached, hits must be cached *)
let replay_consistent ~k log =
  let cached = Page.Tbl.create 32 in
  List.for_all
    (fun ev ->
      match ev with
      | Engine.Hit { page; _ } -> Page.Tbl.mem cached page
      | Engine.Miss_insert { page; _ } ->
          if Page.Tbl.mem cached page then false
          else begin
            Page.Tbl.replace cached page ();
            Page.Tbl.length cached <= k
          end
      | Engine.Miss_evict { page; victim; _ } ->
          if not (Page.Tbl.mem cached victim) then false
          else begin
            Page.Tbl.remove cached victim;
            if Page.user page < 1000 && not (Page.Tbl.mem cached page) then
              Page.Tbl.replace cached page ();
            Page.Tbl.length cached <= k
          end)
    log

let cache_safety_property =
  QCheck.Test.make ~name:"cache never exceeds k for any policy" ~count:40
    QCheck.(triple (int_range 1 20) (int_range 0 9) small_nat)
    (fun (k, policy_idx, seed) ->
      let policies =
        [|
          Ccache_policies.Lru.policy;
          Ccache_policies.Fifo.policy;
          Ccache_policies.Lfu.policy;
          Ccache_policies.Marking.policy;
          Ccache_policies.Random_policy.policy;
          Ccache_policies.Lru_k.lru_2;
          Ccache_policies.Landlord.adaptive;
          Ccache_policies.Clock.policy;
          Ccache_policies.Two_q.policy;
          Ccache_policies.Arc.policy;
        |]
      in
      let policy = policies.(policy_idx) in
      let t =
        Workloads.generate ~seed:(seed + 1) ~length:300
          (Workloads.symmetric_zipf ~tenants:2 ~pages_per_tenant:25 ~skew:0.7)
      in
      let r, log = Engine.run_logged ~k ~costs:(linear_costs 2) policy t in
      replay_consistent ~k log
      && r.Engine.hits + Engine.misses r = Trace.length t)

(* ------------------------------------------------------------------ *)
(* wants_evict (early eviction)                                        *)
(* ------------------------------------------------------------------ *)

let test_early_eviction_hook () =
  (* a policy that always evicts early keeps at most 1 page cached *)
  let one_slot =
    Policy.make ~name:"one-slot" (fun _ ->
        let last = ref None in
        {
          Policy.on_hit = Policy.no_hit;
          wants_evict = (fun ~pos:_ ~incoming:_ -> true);
          choose_victim =
            (fun ~pos:_ ~incoming:_ ->
              match !last with Some p -> p | None -> assert false);
          on_insert = (fun ~pos:_ page -> last := Some page);
          on_evict = (fun ~pos:_ _ -> last := None);
        })
  in
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1; p 0 2; p 0 1 ] in
  let r = Engine.run ~k:10 ~costs:(linear_costs 1) one_slot t in
  (* every request misses: the single slot always holds the previous page *)
  checki "all miss" 4 (Engine.misses r);
  checki "evictions" 3 (Engine.evictions r)

(* With observability off (the default) the request loop must allocate
   O(1) bytes per request: no event records without a listener, no
   boxed keys in the cache set, no per-touch heap entries.  Measured by
   the *marginal* cost between a short and a long run of the same
   workload, which cancels the O(k) setup (policy state, final cache
   list) and any warm-up growth.  The bound is ~2x the worst measured
   policy (alg-discrete-fast under eviction pressure, ~220 B/request
   from floats boxed at non-inlined call boundaries), so it catches an
   accidental per-request record or closure, not normal drift. *)
let test_engine_alloc_per_request () =
  let budget = 512.0 (* bytes/request, marginal *) in
  let costs = Array.init 5 (fun _ -> Cf.monomial ~beta:2.0 ()) in
  let bytes_for policy n =
    let trace =
      Ccache_trace.Workloads.generate ~seed:42 ~length:n
        (Ccache_trace.Workloads.sqlvm_mix ~scale:1)
    in
    ignore (Engine.run ~k:64 ~costs policy trace);
    (* warm *)
    let b0 = Gc.allocated_bytes () in
    ignore (Engine.run ~k:64 ~costs policy trace);
    Gc.allocated_bytes () -. b0
  in
  List.iter
    (fun policy ->
      let b1 = bytes_for policy 2_000 and b2 = bytes_for policy 20_000 in
      let marginal = (b2 -. b1) /. 18_000.0 in
      if marginal > budget then
        Alcotest.failf "%s allocates %.1f bytes/request (budget %.0f)"
          (Policy.name policy) marginal budget)
    [ Ccache_policies.Fifo.policy; Ccache_core.Alg_fast.policy ]

(* ------------------------------------------------------------------ *)
(* Windows                                                             *)
(* ------------------------------------------------------------------ *)

module Windows = Ccache_sim.Windows

let test_windows_partition () =
  (* 5 requests, window 2 -> windows of sizes 2,2,1 *)
  let t = Trace.of_list ~n_users:2 [ p 0 0; p 1 0; p 0 1; p 1 1; p 0 2 ] in
  let costs = linear_costs 2 in
  let _, w = Windows.run_windowed ~window:2 ~k:10 ~costs Ccache_policies.Lru.policy t in
  checki "three windows" 3 w.Windows.n_windows;
  (* all cold misses: per-window per-user counts *)
  checkb "w0" true (w.Windows.misses.(0) = [| 1; 1 |]);
  checkb "w1" true (w.Windows.misses.(1) = [| 1; 1 |]);
  checkb "w2" true (w.Windows.misses.(2) = [| 1; 0 |]);
  checkb "totals = cumulative" true (Windows.total_misses w = [| 3; 2 |])

let test_windows_cost_convexity_gap () =
  (* f(x) = x^2: windowed pricing is cheaper than cumulative pricing of
     the same miss counts (convexity: splitting reduces cost) *)
  let t =
    Workloads.generate ~seed:13 ~length:600
      (Workloads.symmetric_zipf ~tenants:2 ~pages_per_tenant:30 ~skew:0.8)
  in
  let costs = Array.init 2 (fun _ -> Cf.monomial ~beta:2.0 ()) in
  let result, w =
    Windows.run_windowed ~window:100 ~k:8 ~costs Ccache_policies.Lru.policy t
  in
  let cumulative = Metrics.total_cost ~costs result in
  checkb "windowed <= cumulative for convex f" true
    (Windows.cost ~costs w <= cumulative +. 1e-9)

let test_windows_breaches () =
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1; p 0 0; p 0 0 ] in
  let costs = linear_costs 1 in
  let _, w = Windows.run_windowed ~window:2 ~k:10 ~costs Ccache_policies.Lru.policy t in
  (* window 0: 2 misses; window 1: 0 misses *)
  checki "breaches over threshold 1" 1 (Windows.breaches w ~user:0 ~threshold:1);
  checki "no breaches over threshold 2" 0 (Windows.breaches w ~user:0 ~threshold:2)

let test_windows_flush_ignored () =
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1 ] in
  let costs = linear_costs 1 in
  let _, w =
    Windows.run_windowed ~flush:true ~window:2 ~k:2 ~costs Ccache_policies.Lru.policy t
  in
  checkb "flush events not counted" true (Windows.total_misses w = [| 2 |])

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_costs () =
  let t = Trace.of_list ~n_users:2 [ p 0 0; p 1 0; p 0 1; p 1 1 ] in
  let costs = [| Cf.monomial ~beta:2.0 (); Cf.linear ~slope:3.0 () |] in
  let r = Engine.run ~k:10 ~costs Ccache_policies.Lru.policy t in
  (* user 0: 2 misses -> 4; user 1: 2 misses -> 6 *)
  checkf "total cost" 10.0 (Metrics.total_cost ~costs r);
  let per = Metrics.per_user_cost ~costs r in
  checkf "user0" 4.0 per.(0);
  checkf "user1" 6.0 per.(1);
  (* eviction accounting: no evictions -> 0 *)
  checkf "eviction accounting" 0.0
    (Metrics.total_cost ~accounting:Metrics.By_evictions ~costs r)

let test_metrics_comparison_table () =
  let t =
    Workloads.generate ~seed:3 ~length:300
      (Workloads.symmetric_zipf ~tenants:2 ~pages_per_tenant:20 ~skew:0.9)
  in
  let costs = linear_costs 2 in
  let results =
    List.map
      (fun pl -> Engine.run ~k:8 ~costs pl t)
      [ Ccache_policies.Lru.policy; Ccache_policies.Fifo.policy ]
  in
  let tbl = Metrics.comparison_table ~costs results in
  let s = Ccache_util.Ascii_table.to_string tbl in
  checkb "mentions lru" true
    (let rec has i =
       i + 3 <= String.length s && (String.sub s i 3 = "lru" || has (i + 1))
     in
     has 0)

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let test_sweep_helpers () =
  checkb "product" true
    (Sweep.product [ 1; 2 ] [ "a" ] = [ (1, "a"); (2, "a") ]);
  checki "product3 size" 8
    (List.length (Sweep.product3 [ 1; 2 ] [ 3; 4 ] [ 5; 6 ]));
  checkb "geometric" true (Sweep.geometric ~start:4 ~stop:32 ~factor:2.0 = [ 4; 8; 16; 32 ]);
  checkb "arithmetic" true (Sweep.arithmetic ~start:0 ~stop:6 ~step:3 = [ 0; 3; 6 ]);
  checkb "linspace ends" true
    (let l = Sweep.linspace ~start:0.0 ~stop:1.0 ~count:5 in
     List.nth l 0 = 0.0 && List.nth l 4 = 1.0 && List.length l = 5);
  checkb "run labels" true
    (Sweep.run [ 1; 2 ] ~f:(fun x -> x * x) = [ (1, 1); (2, 4) ])

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ccache_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_engine_hit_miss_accounting;
          Alcotest.test_case "no eviction when room" `Quick test_engine_no_eviction_when_room;
          Alcotest.test_case "event log order" `Quick test_engine_event_log_order;
          Alcotest.test_case "costs length check" `Quick test_engine_costs_length_check;
          Alcotest.test_case "detects bad victim" `Quick test_engine_detects_bad_victim;
          Alcotest.test_case "early eviction hook" `Quick test_early_eviction_hook;
          Alcotest.test_case "alloc budget per request" `Quick
            test_engine_alloc_per_request;
        ] );
      ( "flush",
        [
          Alcotest.test_case "empties cache (online)" `Quick test_engine_flush_empties_cache;
          Alcotest.test_case "empties cache (offline)" `Quick test_engine_flush_offline_too;
        ] );
      ("safety", qsuite [ cache_safety_property ]);
      ( "windows",
        [
          Alcotest.test_case "partition" `Quick test_windows_partition;
          Alcotest.test_case "convexity gap" `Quick test_windows_cost_convexity_gap;
          Alcotest.test_case "breaches" `Quick test_windows_breaches;
          Alcotest.test_case "flush ignored" `Quick test_windows_flush_ignored;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "costs" `Quick test_metrics_costs;
          Alcotest.test_case "comparison table" `Quick test_metrics_comparison_table;
        ] );
      ("sweep", [ Alcotest.test_case "helpers" `Quick test_sweep_helpers ]);
    ]
