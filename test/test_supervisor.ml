(* Tests for the supervision stack: Fault (deterministic injection),
   Supervisor (deadlines, retry/backoff, quarantine), Checkpoint
   (atomic snapshots, fingerprint guard) and the resume-determinism
   contract: a sweep killed mid-run and resumed from its checkpoint is
   bit-identical to an uninterrupted run, at any pool width, with and
   without chaos. *)

module Pool = Ccache_util.Domain_pool
module Prng = Ccache_util.Prng
module Fault = Ccache_util.Fault
module S = Ccache_util.Supervisor
module Ck = Ccache_util.Checkpoint
module Sweep = Ccache_sim.Sweep
module A = Ccache_analysis

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let tmp_path () =
  let p = Filename.temp_file "ccache_ck" ".db" in
  Sys.remove p;
  p

let cleanup p = if Sys.file_exists p then Sys.remove p

(* ------------------------------------------------------------------ *)
(* Fault                                                               *)
(* ------------------------------------------------------------------ *)

let test_fault_spec () =
  (match Fault.of_spec "7:0.2" with
  | Ok f ->
      checki "seed parsed" 7 (Fault.seed f);
      checkb "rate parsed" true (abs_float (Fault.rate f -. 0.2) < 1e-12);
      checks "roundtrip" "7:0.2" (Fault.to_spec f)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Fault.of_spec bad with
      | Ok _ -> Alcotest.failf "spec %S should be rejected" bad
      | Error _ -> ())
    [ ""; "7"; "x:0.2"; "7:nan"; "7:1.5"; "7:-0.1"; "7:" ]

let injects f ~task ~attempt =
  match Fault.at_boundary f ~task ~attempt with
  | () -> false
  | exception Fault.Injected_transient _ -> true

let test_fault_deterministic () =
  let f = Fault.create ~seed:42 ~rate:0.5 ~max_delay_s:0.0 () in
  let pattern () = List.init 40 (fun i -> injects f ~task:(string_of_int i) ~attempt:0) in
  checkb "same seed, same pattern" true (pattern () = pattern ());
  checkb "some tasks faulted" true (List.mem true (pattern ()));
  checkb "some tasks spared" true (List.mem false (pattern ()));
  let g = Fault.create ~seed:43 ~rate:0.5 ~max_delay_s:0.0 () in
  checkb "different seed, different pattern" true
    (pattern () <> List.init 40 (fun i -> injects g ~task:(string_of_int i) ~attempt:0))

let test_fault_first_attempt_only () =
  (* rate 1.0: every task faults on attempt 0, and never afterwards —
     the invariant that makes chaos + retries converge *)
  let f = Fault.create ~seed:1 ~rate:1.0 ~max_delay_s:0.0 () in
  for i = 0 to 9 do
    let task = Printf.sprintf "t%d" i in
    checkb "attempt 0 faults" true (injects f ~task ~attempt:0);
    checkb "attempt 1 clean" false (injects f ~task ~attempt:1);
    checkb "attempt 2 clean" false (injects f ~task ~attempt:2)
  done

let test_fault_kill () =
  let f = Fault.kill (Fault.create ~seed:1 ~rate:0.0 ()) [ "doomed" ] in
  (match Fault.at_boundary f ~task:"doomed" ~attempt:5 with
  | () -> Alcotest.fail "killed task must crash on every attempt"
  | exception Fault.Injected_crash { task } -> checks "task named" "doomed" task);
  Fault.at_boundary f ~task:"spared" ~attempt:0 (* no exception *)

let test_fault_validation () =
  List.iter
    (fun rate ->
      match Fault.create ~seed:0 ~rate () with
      | _ -> Alcotest.failf "rate %g should be rejected" rate
      | exception Invalid_argument _ -> ())
    [ -0.1; 1.5; Float.nan; Float.infinity ]

(* ------------------------------------------------------------------ *)
(* Backoff schedule                                                    *)
(* ------------------------------------------------------------------ *)

let test_backoff_schedule () =
  let p =
    {
      S.default_policy with
      backoff_base_s = 0.1;
      backoff_factor = 2.0;
      backoff_max_s = 0.5;
    }
  in
  let d a = S.backoff_delay p ~task:"t" ~attempt:a in
  let close x y = abs_float (x -. y) < 1e-12 in
  checkb "attempt 0 -> base" true (close (d 0) 0.1);
  checkb "attempt 1 -> doubled" true (close (d 1) 0.2);
  checkb "attempt 2 -> doubled again" true (close (d 2) 0.4);
  checkb "attempt 3 -> capped" true (close (d 3) 0.5);
  checkb "attempt 9 -> still capped" true (close (d 9) 0.5)

let test_backoff_jitter_deterministic () =
  let p = { S.default_policy with backoff_base_s = 0.1; jitter = 0.5; seed = 7 } in
  let d task a = S.backoff_delay p ~task ~attempt:a in
  checkb "jitter is deterministic" true (d "t" 1 = d "t" 1);
  checkb "jitter varies across tasks" true (d "t" 1 <> d "u" 1);
  let v = d "t" 1 in
  checkb "jitter bounded" true (v >= 0.2 *. 0.5 && v <= 0.2 *. 1.5)

let test_policy_validation () =
  let bad p =
    match S.run ~policy:p [ { S.id = "x"; run = (fun _ -> ()) } ] with
    | _ -> Alcotest.fail "bad policy should be rejected"
    | exception Invalid_argument _ -> ()
  in
  bad { S.default_policy with max_retries = -1 };
  bad { S.default_policy with backoff_factor = 0.5 };
  bad { S.default_policy with jitter = 2.0 };
  bad { S.default_policy with timeout_s = Some 0.0 }

(* ------------------------------------------------------------------ *)
(* Supervisor: retry, quarantine, deadlines                            *)
(* ------------------------------------------------------------------ *)

let fast_policy = { S.default_policy with backoff_base_s = 0.0005 }

let task id f = { S.id; run = (fun _ctx -> f ()) }

let test_all_success () =
  let tasks = List.init 10 (fun i -> task (string_of_int i) (fun () -> i * i)) in
  let out = S.run ~policy:fast_policy tasks in
  checki "all completed" 10 (List.length (S.completed out));
  checkb "in input order" true
    (S.completed out = List.init 10 (fun i -> i * i))

let test_chaos_converges () =
  (* rate 1.0 forces a transient on every task's first attempt; the
     retry budget absorbs them all and results equal the fault-free run *)
  let mk () = List.init 8 (fun i -> task (Printf.sprintf "c%d" i) (fun () -> 3 * i)) in
  let fault = Fault.create ~seed:5 ~rate:1.0 ~max_delay_s:0.0 () in
  let plain = S.run ~policy:fast_policy (mk ()) in
  let retries = ref 0 in
  let chaotic =
    S.run ~policy:fast_policy ~fault
      ~on_event:(function S.Retrying _ -> incr retries | _ -> ())
      (mk ())
  in
  checkb "chaos run equals fault-free run" true
    (S.completed plain = S.completed chaotic);
  checki "every task retried exactly once" 8 !retries

let test_chaos_without_retries_quarantines () =
  let fault = Fault.create ~seed:5 ~rate:1.0 ~max_delay_s:0.0 () in
  let out =
    S.run
      ~policy:{ fast_policy with max_retries = 0 }
      ~fault
      [ task "only" (fun () -> 1) ]
  in
  match out with
  | [ S.Quarantined f ] ->
      checks "task named" "only" f.S.task;
      checki "single attempt" 1 f.S.attempts
  | _ -> Alcotest.fail "rate-1 chaos without retries must quarantine"

let test_crash_isolation () =
  (* one permanently-crashing task; the other 9 complete, order kept *)
  let tasks =
    List.init 10 (fun i ->
        task (Printf.sprintf "t%d" i) (fun () ->
            if i = 4 then failwith "kaboom" else i))
  in
  Pool.with_pool ~size:4 (fun pool ->
      let out = S.run ~pool ~policy:fast_policy tasks in
      checki "nine completed" 9 (List.length (S.completed out));
      (match List.nth out 4 with
      | S.Quarantined f ->
          checks "right task" "t4" f.S.task;
          (* a real exception is permanent by construction: no retry *)
          checki "quarantined immediately" 1 f.S.attempts;
          checkb "error captured" true
            (String.length f.S.error > 0)
      | S.Completed _ -> Alcotest.fail "t4 should be quarantined");
      checkb "other slots in order" true
        (S.completed out = [ 0; 1; 2; 3; 5; 6; 7; 8; 9 ]))

let test_timeout_cooperative () =
  (* a task that spins forever but calls check: the deadline cancels
     each attempt, the budget runs out, the task is quarantined *)
  let spin ctx =
    let rec go () =
      S.check ctx;
      Unix.sleepf 0.002;
      go ()
    in
    go ()
  in
  let policy =
    { fast_policy with max_retries = 1; timeout_s = Some 0.02 }
  in
  match S.run ~policy [ { S.id = "spinner"; run = spin } ] with
  | [ S.Quarantined f ] ->
      checki "initial + one retry" 2 f.S.attempts;
      let prefix = "Supervisor.Timed_out" in
      checkb "reported as timeout" true
        (String.length f.S.error >= String.length prefix
        && String.sub f.S.error 0 (String.length prefix) = prefix)
  | _ -> Alcotest.fail "spinner must be quarantined by its deadline"

let test_timeout_closing_boundary () =
  (* a non-cooperative task (never calls check) that overruns still
     cannot return a result past its deadline *)
  let policy = { fast_policy with max_retries = 0; timeout_s = Some 0.01 } in
  match
    S.run ~policy
      [ task "sleepy" (fun () -> Unix.sleepf 0.05; "done anyway") ]
  with
  | [ S.Quarantined _ ] -> ()
  | [ S.Completed _ ] -> Alcotest.fail "overrun result must not be returned"
  | _ -> assert false

let test_duplicate_ids_rejected () =
  match S.run [ task "a" (fun () -> 1); task "a" (fun () -> 2) ] with
  | _ -> Alcotest.fail "duplicate ids must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  let path = tmp_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let ck = Ck.create ~path ~fingerprint:"fp v1" () in
  (* payloads with newlines, tabs, binary-ish bytes *)
  Ck.record ck ~id:"a" "line1\nline2\n";
  Ck.record ck ~id:"weird id with spaces" "\x00\x01\ttab";
  Ck.record ck ~id:"empty" "";
  Ck.flush ck;
  match Ck.load ~path ~fingerprint:"fp v1" () with
  | Error e -> Alcotest.fail e
  | Ok ck2 ->
      checkb "a" true (Ck.find ck2 "a" = Some "line1\nline2\n");
      checkb "weird" true
        (Ck.find ck2 "weird id with spaces" = Some "\x00\x01\ttab");
      checkb "empty payload" true (Ck.find ck2 "empty" = Some "");
      checkb "absent id" true (Ck.find ck2 "nope" = None);
      checki "three entries" 3 (Ck.length ck2);
      checkb "ids sorted" true
        (Ck.ids ck2 = [ "a"; "empty"; "weird id with spaces" ])

let test_checkpoint_fingerprint_guard () =
  let path = tmp_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let ck = Ck.create ~path ~fingerprint:"config A" () in
  Ck.record ck ~id:"x" "1";
  Ck.flush ck;
  (match Ck.load ~path ~fingerprint:"config B" () with
  | Ok _ -> Alcotest.fail "fingerprint mismatch must be refused"
  | Error e ->
      checkb "names the mismatch" true
        (String.length e > 0
        && Option.is_some
             (String.index_opt e 'm' (* "mismatch" *))));
  match Ck.load ~path ~fingerprint:"config A" () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_checkpoint_corrupt_and_missing () =
  let path = tmp_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  (match Ck.load ~path ~fingerprint:"fp" () with
  | Ok _ -> Alcotest.fail "missing file must be an error for load"
  | Error _ -> ());
  (match Ck.load_or_create ~path ~fingerprint:"fp" () with
  | Ok ck -> checki "fresh when missing" 0 (Ck.length ck)
  | Error e -> Alcotest.fail e);
  let oc = open_out_bin path in
  output_string oc "not a checkpoint at all\n";
  close_out oc;
  match Ck.load ~path ~fingerprint:"fp" () with
  | Ok _ -> Alcotest.fail "corrupt file must be refused"
  | Error _ -> ()

let test_checkpoint_flush_batching () =
  let path = tmp_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let ck = Ck.create ~flush_every:100 ~path ~fingerprint:"fp" () in
  Ck.record ck ~id:"x" "1";
  checkb "batched: nothing on disk yet" false (Sys.file_exists path);
  Ck.flush ck;
  checkb "flushed on demand" true (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* Resume determinism (the acceptance contract)                        *)
(* ------------------------------------------------------------------ *)

(* A seeded sweep whose cells actually consume their PRNG stream, so
   any retry/resume slip would change the output. *)
let cell_f _ctx g p =
  Printf.sprintf "%d:%d:%h" p (Prng.int g 1_000_000) (Prng.float g)

let points = List.init 12 Fun.id
let cell_id p = Printf.sprintf "cell%02d" p

let run_cells ?pool ?fault ?checkpoint () =
  Sweep.run_supervised ?pool ~policy:fast_policy ?fault ?checkpoint
    ~codec:S.string_codec ~seed:99 ~task_id:cell_id points ~f:cell_f

let completed_cells results =
  List.filter_map
    (fun (p, o) -> match o with S.Completed s -> Some (p, s) | _ -> None)
    results

let test_sweep_chaos_identical_any_width () =
  let baseline = completed_cells (run_cells ()) in
  checki "all cells complete" 12 (List.length baseline);
  List.iter
    (fun width ->
      let fault = Fault.create ~seed:3 ~rate:0.4 ~max_delay_s:0.001 () in
      let chaotic =
        if width = 1 then run_cells ~fault ()
        else Pool.with_pool ~size:width (fun pool -> run_cells ~pool ~fault ())
      in
      checkb
        (Printf.sprintf "chaos run identical at width %d" width)
        true
        (completed_cells chaotic = baseline))
    [ 1; 8 ]

let kill_resume_roundtrip ~width ~with_chaos () =
  let baseline = completed_cells (run_cells ()) in
  let path = tmp_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let fingerprint = "resume-test v1" in
  let chaos_rate = if with_chaos then 0.4 else 0.0 in
  (* phase 1: kill one cell mid-sweep -> partial checkpoint + quarantine *)
  let ck = Ck.create ~path ~fingerprint () in
  let fault =
    Fault.kill
      (Fault.create ~seed:3 ~rate:chaos_rate ~max_delay_s:0.0 ())
      [ cell_id 7 ]
  in
  let run ?pool ?fault ?checkpoint () = run_cells ?pool ?fault ?checkpoint () in
  let partial =
    if width = 1 then run ~fault ~checkpoint:ck ()
    else Pool.with_pool ~size:width (fun pool -> run ~pool ~fault ~checkpoint:ck ())
  in
  checki "one quarantined"
    1
    (List.length (S.failures (List.map snd partial)));
  checki "partial checkpoint holds the other cells" 11 (Ck.length ck);
  (* phase 2: resume from the checkpoint, fault gone *)
  match Ck.load ~path ~fingerprint () with
  | Error e -> Alcotest.fail e
  | Ok ck2 ->
      let replayed = ref 0 in
      let resumed =
        Sweep.run_supervised ~policy:fast_policy ~checkpoint:ck2
          ~codec:S.string_codec
          ~on_event:(function S.Replayed _ -> incr replayed | _ -> ())
          ~seed:99 ~task_id:cell_id points ~f:cell_f
      in
      checki "eleven cells replayed, one computed" 11 !replayed;
      checkb "resumed run bit-identical to uninterrupted run" true
        (completed_cells resumed = baseline)

let test_resume_j1 () = kill_resume_roundtrip ~width:1 ~with_chaos:false ()
let test_resume_j8 () = kill_resume_roundtrip ~width:8 ~with_chaos:false ()
let test_resume_j1_chaos () = kill_resume_roundtrip ~width:1 ~with_chaos:true ()
let test_resume_j8_chaos () = kill_resume_roundtrip ~width:8 ~with_chaos:true ()

(* The same contract at the report level: a killed experiment suite
   resumed from its checkpoint renders byte-identically. *)
let test_suite_kill_resume () =
  let specs = List.filteri (fun i _ -> i < 3) A.Suite.all in
  let size = A.Experiment.Quick in
  let baseline = A.Report.run_suite ~size specs in
  let path = tmp_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let fingerprint = A.Report.fingerprint ~fmt:A.Report.Text ~size specs in
  let victim = (List.nth specs 1).A.Experiment.id in
  let ck = Ck.create ~path ~fingerprint () in
  let fault = Fault.kill Fault.none [ victim ] in
  let partial =
    A.Report.run_suite_supervised ~policy:fast_policy ~fault ~checkpoint:ck
      ~size specs
  in
  checki "one experiment quarantined" 1 (List.length partial.A.Report.failures);
  checks "the right one" victim
    (List.hd partial.A.Report.failures).Ccache_util.Supervisor.task;
  match Ck.load ~path ~fingerprint () with
  | Error e -> Alcotest.fail e
  | Ok ck2 ->
      let resumed =
        Pool.with_pool ~size:4 (fun pool ->
            A.Report.run_suite_supervised ~pool ~policy:fast_policy
              ~checkpoint:ck2 ~size specs)
      in
      checkb "nothing quarantined on resume" true
        (resumed.A.Report.failures = []);
      checki "two sections replayed" 2 (List.length resumed.A.Report.replayed);
      checks "resumed report byte-identical" baseline resumed.A.Report.report

(* qcheck: any subset of pre-completed cells in the checkpoint yields
   the same results as computing everything *)
let resume_subset_test =
  QCheck.Test.make ~name:"resume from any checkpoint subset is identical"
    ~count:20
    QCheck.(list_of_size (Gen.int_range 0 12) (int_range 0 11))
    (fun subset ->
      let baseline = run_cells () in
      let path = tmp_path () in
      Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
      let ck = Ck.create ~path ~fingerprint:"subset" () in
      (* pre-record the subset from the baseline run's own payloads *)
      List.iter
        (fun i ->
          match List.assoc i baseline with
          | S.Completed s -> Ck.record ck ~id:(cell_id i) s
          | S.Quarantined _ -> ())
        (List.sort_uniq compare subset);
      let resumed = run_cells ~checkpoint:ck () in
      completed_cells resumed = completed_cells baseline)

(* ------------------------------------------------------------------ *)
(* Prng.derive                                                         *)
(* ------------------------------------------------------------------ *)

let test_derive_stability () =
  let draws key =
    let g = Prng.derive ~seed:11 ~key in
    List.init 5 (fun _ -> Prng.next_int64 g)
  in
  checkb "same key, same stream" true (draws "task-a" = draws "task-a");
  checkb "different key, different stream" true (draws "task-a" <> draws "task-b");
  let g1 = Prng.derive ~seed:11 ~key:"k" in
  let g2 = Prng.derive ~seed:12 ~key:"k" in
  checkb "seed matters" true (Prng.next_int64 g1 <> Prng.next_int64 g2)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ccache_supervisor"
    [
      ( "fault",
        [
          Alcotest.test_case "spec parsing" `Quick test_fault_spec;
          Alcotest.test_case "deterministic" `Quick test_fault_deterministic;
          Alcotest.test_case "first attempt only" `Quick
            test_fault_first_attempt_only;
          Alcotest.test_case "kill list" `Quick test_fault_kill;
          Alcotest.test_case "validation" `Quick test_fault_validation;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "jitter-free schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "seeded jitter" `Quick
            test_backoff_jitter_deterministic;
          Alcotest.test_case "policy validation" `Quick test_policy_validation;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "all success" `Quick test_all_success;
          Alcotest.test_case "chaos converges" `Quick test_chaos_converges;
          Alcotest.test_case "no retries -> quarantine" `Quick
            test_chaos_without_retries_quarantines;
          Alcotest.test_case "crash isolation" `Quick test_crash_isolation;
          Alcotest.test_case "cooperative timeout" `Quick
            test_timeout_cooperative;
          Alcotest.test_case "closing boundary timeout" `Quick
            test_timeout_closing_boundary;
          Alcotest.test_case "duplicate ids" `Quick test_duplicate_ids_rejected;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "fingerprint guard" `Quick
            test_checkpoint_fingerprint_guard;
          Alcotest.test_case "corrupt/missing" `Quick
            test_checkpoint_corrupt_and_missing;
          Alcotest.test_case "flush batching" `Quick
            test_checkpoint_flush_batching;
        ] );
      ( "resume-determinism",
        [
          Alcotest.test_case "chaos identical at j1/j8" `Quick
            test_sweep_chaos_identical_any_width;
          Alcotest.test_case "kill+resume, jobs 1" `Quick test_resume_j1;
          Alcotest.test_case "kill+resume, jobs 8" `Quick test_resume_j8;
          Alcotest.test_case "kill+resume, jobs 1, chaos" `Quick
            test_resume_j1_chaos;
          Alcotest.test_case "kill+resume, jobs 8, chaos" `Quick
            test_resume_j8_chaos;
          Alcotest.test_case "suite kill+resume" `Quick test_suite_kill_resume;
        ] );
      ("resume-qcheck", qsuite [ resume_subset_test ]);
      ( "prng",
        [ Alcotest.test_case "derive stability" `Quick test_derive_stability ] );
    ]
