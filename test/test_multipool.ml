(* Tests for ccache_multipool: the future-work multi-pool engine. *)

open Ccache_trace
module ME = Ccache_multipool.Multi_engine
module Engine = Ccache_sim.Engine
module Cf = Ccache_cost.Cost_function

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let costs_of n = Array.init n (fun _ -> Cf.monomial ~beta:2.0 ())

let workload ~seed ~tenants ~length =
  Workloads.generate ~seed ~length
    (Workloads.symmetric_zipf ~tenants ~pages_per_tenant:24 ~skew:0.8)

let test_single_pool_equals_engine () =
  (* 1 pool with static assignment behaves exactly like the plain
     engine running the same policy *)
  let t = workload ~seed:1 ~tenants:3 ~length:800 in
  let costs = costs_of 3 in
  let shared = Engine.run ~k:16 ~costs Ccache_core.Alg_discrete.policy t in
  let mp =
    ME.run ~pools:1 ~pool_size:16 ~strategy:ME.Static_round_robin ~costs t
  in
  checkb "same miss vector" true
    (shared.Engine.misses_per_user = mp.ME.misses_per_user);
  checki "no migrations" 0 mp.ME.migrations

let test_partitioning_never_helps () =
  (* splitting the same total memory across pools cannot beat sharing *)
  let t = workload ~seed:2 ~tenants:4 ~length:1200 in
  let costs = costs_of 4 in
  let shared = Engine.run ~k:32 ~costs Ccache_core.Alg_discrete.policy t in
  let shared_cost = Ccache_sim.Metrics.total_cost ~costs shared in
  List.iter
    (fun pools ->
      let mp =
        ME.run ~pools ~pool_size:(32 / pools) ~strategy:ME.Static_round_robin
          ~costs t
      in
      checkb
        (Printf.sprintf "%d pools not cheaper" pools)
        true
        (mp.ME.total_cost >= shared_cost -. 1e-9))
    [ 2; 4 ]

let test_rebalance_repairs_bad_assignment () =
  let t = workload ~seed:3 ~tenants:4 ~length:2000 in
  let costs = costs_of 4 in
  let all_on_zero = Array.make 4 0 in
  let static =
    ME.run ~initial_assignment:all_on_zero ~pools:2 ~pool_size:12
      ~strategy:ME.Static_round_robin ~costs t
  in
  let greedy =
    ME.run ~initial_assignment:all_on_zero ~pools:2 ~pool_size:12
      ~strategy:(ME.Greedy_cost { rebalance_every = 200; switch_cost = 0.0 })
      ~costs t
  in
  checkb "greedy migrates" true (greedy.ME.migrations > 0);
  checkb "greedy cheaper than stuck-static" true
    (greedy.ME.total_cost < static.ME.total_cost)

let test_huge_switch_cost_freezes () =
  let t = workload ~seed:4 ~tenants:4 ~length:1000 in
  let costs = costs_of 4 in
  let frozen =
    ME.run
      ~initial_assignment:(Array.make 4 0)
      ~pools:2 ~pool_size:8
      ~strategy:(ME.Greedy_cost { rebalance_every = 100; switch_cost = 1e12 })
      ~costs t
  in
  checki "no migrations at huge switch cost" 0 frozen.ME.migrations;
  Alcotest.(check (float 1e-9)) "no switch cost paid" 0.0 frozen.ME.switch_cost_paid

let test_switch_cost_accounted () =
  let t = workload ~seed:5 ~tenants:4 ~length:2000 in
  let costs = costs_of 4 in
  let r =
    ME.run
      ~initial_assignment:(Array.make 4 0)
      ~pools:2 ~pool_size:12
      ~strategy:(ME.Greedy_cost { rebalance_every = 200; switch_cost = 25.0 })
      ~costs t
  in
  Alcotest.(check (float 1e-9))
    "switch cost = migrations x price"
    (25.0 *. float_of_int r.ME.migrations)
    r.ME.switch_cost_paid

let test_validation () =
  let t = workload ~seed:6 ~tenants:2 ~length:10 in
  let costs = costs_of 2 in
  Alcotest.check_raises "pools > 0"
    (Invalid_argument "Multi_engine.run: pools must be positive") (fun () ->
      ignore (ME.run ~pools:0 ~pool_size:4 ~strategy:ME.Static_round_robin ~costs t));
  Alcotest.check_raises "assignment range"
    (Invalid_argument "Multi_engine.run: assignment outside pool range") (fun () ->
      ignore
        (ME.run ~initial_assignment:[| 0; 5 |] ~pools:2 ~pool_size:4
           ~strategy:ME.Static_round_robin ~costs t))

let test_policy_override () =
  (* any engine policy can drive the pools *)
  let t = workload ~seed:7 ~tenants:2 ~length:400 in
  let costs = costs_of 2 in
  let r =
    ME.run ~policy:Ccache_policies.Lru.policy ~pools:2 ~pool_size:8
      ~strategy:ME.Static_round_robin ~costs t
  in
  checkb "runs with lru" true (r.ME.total_cost > 0.0);
  (* single pool with lru equals plain lru run *)
  let single =
    ME.run ~policy:Ccache_policies.Lru.policy ~pools:1 ~pool_size:16
      ~strategy:ME.Static_round_robin ~costs t
  in
  let plain = Engine.run ~k:16 ~costs Ccache_policies.Lru.policy t in
  checkb "matches engine" true
    (single.ME.misses_per_user = plain.Engine.misses_per_user)

let test_pooled_runs_match_serial () =
  (* multi-pool tenant-routing runs farmed out to a Domain_pool are
     byte-identical to the serial map: each ME.run is a pure function
     of its config, and parallel_map returns results in input order *)
  let t = workload ~seed:8 ~tenants:4 ~length:1500 in
  let costs = costs_of 4 in
  let configs = [ (1, 32); (2, 16); (4, 8); (2, 12) ] in
  let eval (pools, pool_size) =
    let r = ME.run ~pools ~pool_size ~strategy:ME.Static_round_robin ~costs t in
    (r.ME.misses_per_user, r.ME.migrations)
  in
  let serial = List.map eval configs in
  let pooled =
    Ccache_util.Domain_pool.with_pool ~size:4 (fun pool ->
        Ccache_util.Domain_pool.parallel_map pool ~f:eval configs)
  in
  checkb "pooled tenant-routing results identical" true (serial = pooled)

let test_strategy_names () =
  checkb "static" true (ME.strategy_name ME.Static_round_robin = "static-rr");
  checkb "greedy" true
    (ME.strategy_name (ME.Greedy_cost { rebalance_every = 10; switch_cost = 2.0 })
    = "greedy(sw=2)")

let () =
  Alcotest.run "ccache_multipool"
    [
      ( "multi_engine",
        [
          Alcotest.test_case "single pool = engine" `Quick test_single_pool_equals_engine;
          Alcotest.test_case "partitioning never helps" `Quick test_partitioning_never_helps;
          Alcotest.test_case "rebalance repairs" `Quick test_rebalance_repairs_bad_assignment;
          Alcotest.test_case "huge switch freezes" `Quick test_huge_switch_cost_freezes;
          Alcotest.test_case "switch cost accounted" `Quick test_switch_cost_accounted;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "policy override" `Quick test_policy_override;
          Alcotest.test_case "pooled runs match serial" `Quick
            test_pooled_runs_match_serial;
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
        ] );
    ]
