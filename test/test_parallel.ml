(* Tests for Ccache_util.Domain_pool and the parallel plumbing built
   on it: futures, ordering, exception propagation, graceful shutdown,
   and the determinism contract (pool size never changes results). *)

module Pool = Ccache_util.Domain_pool
module Prng = Ccache_util.Prng
module Sweep = Ccache_sim.Sweep
module A = Ccache_analysis

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

exception Boom of int

(* ------------------------------------------------------------------ *)
(* Futures                                                             *)
(* ------------------------------------------------------------------ *)

let test_submit_await () =
  Pool.with_pool ~size:2 (fun pool ->
      let f = Pool.submit pool (fun () -> 6 * 7) in
      checki "one task" 42 (Pool.await f);
      checki "await twice" 42 (Pool.await f);
      let futs = List.init 50 (fun i -> Pool.submit pool (fun () -> i * i)) in
      List.iteri (fun i f -> checki "squares" (i * i) (Pool.await f)) futs)

let test_await_reraises () =
  Pool.with_pool ~size:2 (fun pool ->
      let f = Pool.submit pool (fun () -> raise (Boom 13)) in
      (match Pool.await f with
      | _ -> Alcotest.fail "await should re-raise"
      | exception Boom 13 -> ());
      (* a failed task poisons nothing: the pool keeps serving *)
      let g = Pool.submit pool (fun () -> "alive") in
      checks "pool survives failure" "alive" (Pool.await g))

let test_parallel_map_exception () =
  Pool.with_pool ~size:3 (fun pool ->
      match
        Pool.parallel_map pool
          ~f:(fun i -> if i = 5 then raise (Boom i) else i)
          (List.init 10 Fun.id)
      with
      | _ -> Alcotest.fail "parallel_map should re-raise"
      | exception Boom 5 -> ())

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let test_shutdown () =
  let pool = Pool.create ~size:2 () in
  (* queued work completes before workers exit *)
  let futs = List.init 20 (fun i -> Pool.submit pool (fun () -> i + 1)) in
  Pool.shutdown pool;
  List.iteri (fun i f -> checki "drained" (i + 1) (Pool.await f)) futs;
  Pool.shutdown pool (* idempotent *);
  (match Pool.submit pool (fun () -> ()) with
  | _ -> Alcotest.fail "submit after shutdown should raise"
  | exception Invalid_argument _ -> ());
  (* with_pool shuts down even when the body raises *)
  match Pool.with_pool ~size:1 (fun _ -> raise (Boom 1)) with
  | _ -> Alcotest.fail "with_pool should re-raise"
  | exception Boom 1 -> ()

let test_shutdown_now () =
  (* One worker, pinned on a blocker task, so the five queued tasks are
     provably still in the queue when shutdown_now drains it: their
     futures must fail with Pool_shutdown rather than hang, while the
     already-running blocker completes normally. *)
  let pool = Pool.create ~size:1 () in
  let release = Atomic.make false in
  let started = Atomic.make false in
  let blocker =
    Pool.submit pool (fun () ->
        Atomic.set started true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        42)
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  let queued = List.init 5 (fun i -> Pool.submit pool (fun () -> i)) in
  (* release the blocker only after shutdown_now is already joining *)
  let releaser =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Atomic.set release true)
  in
  Pool.shutdown_now pool;
  Domain.join releaser;
  checki "running task completed" 42 (Pool.await blocker);
  List.iter
    (fun f ->
      match Pool.await f with
      | _ -> Alcotest.fail "cancelled future must not produce a value"
      | exception Pool.Pool_shutdown -> ())
    queued;
  Pool.shutdown_now pool (* idempotent *);
  Pool.shutdown pool (* and freely mixable with graceful shutdown *);
  match Pool.submit pool (fun () -> ()) with
  | _ -> Alcotest.fail "submit after shutdown_now should raise"
  | exception Invalid_argument _ -> ()

let test_sizing () =
  checkb "default size positive" true (Pool.default_size () >= 1);
  Pool.with_pool ~size:0 (fun pool -> checki "clamped up" 1 (Pool.size pool));
  Pool.with_pool ~size:3 (fun pool -> checki "as asked" 3 (Pool.size pool))

let test_parallel_iter () =
  (* chunked iteration visits every element exactly once; per-element
     counters make that check order-independent *)
  let n = 100 in
  let hits = Array.make n 0 in
  let lock = Mutex.create () in
  Pool.with_pool ~size:4 (fun pool ->
      Pool.parallel_iter ~chunk:7 pool
        ~f:(fun i ->
          Mutex.lock lock;
          hits.(i) <- hits.(i) + 1;
          Mutex.unlock lock)
        (List.init n Fun.id));
  Array.iteri (fun i c -> checki (Printf.sprintf "element %d" i) 1 c) hits

(* ------------------------------------------------------------------ *)
(* parallel_map = List.map (qcheck)                                    *)
(* ------------------------------------------------------------------ *)

let map_model_test =
  QCheck.Test.make ~name:"parallel_map matches List.map" ~count:30
    QCheck.(pair (int_range 1 6) (list small_int))
    (fun (width, xs) ->
      let f x = (x * 2) + 1 in
      Pool.with_pool ~size:width (fun pool ->
          Pool.parallel_map pool ~f xs = List.map f xs))

(* ------------------------------------------------------------------ *)
(* Determinism across pool sizes                                       *)
(* ------------------------------------------------------------------ *)

let test_sweep_seeded_deterministic () =
  (* run_seeded pins each cell's PRNG before dispatch, so any pool
     width reproduces the sequential draw exactly *)
  let points = List.init 12 Fun.id in
  let f g p = (p, Prng.int g 1_000_000, Prng.float g) in
  let serial = Sweep.run_seeded ~seed:123 points ~f in
  Pool.with_pool ~size:4 (fun pool ->
      let pooled = Sweep.run_seeded ~pool ~seed:123 points ~f in
      checkb "seeded sweep identical" true (serial = pooled))

let test_suite_output_identical () =
  (* the --jobs 1 vs --jobs 4 contract, on a suite prefix to keep the
     test fast; bin/experiments.exe routes through this exact code *)
  let specs = List.filteri (fun i _ -> i < 3) A.Suite.all in
  let size = A.Experiment.Quick in
  let serial = A.Report.run_suite ~size specs in
  let pooled =
    Pool.with_pool ~size:4 (fun pool -> A.Report.run_suite ~pool ~size specs)
  in
  checks "suite report byte-identical" serial pooled

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ccache_parallel"
    [
      ( "futures",
        [
          Alcotest.test_case "submit/await" `Quick test_submit_await;
          Alcotest.test_case "await re-raises" `Quick test_await_reraises;
          Alcotest.test_case "map re-raises" `Quick test_parallel_map_exception;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "graceful shutdown" `Quick test_shutdown;
          Alcotest.test_case "abortive shutdown" `Quick test_shutdown_now;
          Alcotest.test_case "sizing" `Quick test_sizing;
          Alcotest.test_case "parallel_iter" `Quick test_parallel_iter;
        ] );
      ("model", qsuite [ map_model_test ]);
      ( "determinism",
        [
          Alcotest.test_case "seeded sweep" `Quick test_sweep_seeded_deterministic;
          Alcotest.test_case "suite report" `Quick test_suite_output_identical;
        ] );
    ]
