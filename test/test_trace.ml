(* Tests for ccache_trace: pages, traces + index, Zipf sampling,
   workload generators, IO round-trips and trace statistics. *)

open Ccache_trace
module W = Workloads
module Prng = Ccache_util.Prng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let p u i = Page.make ~user:u ~id:i

(* ------------------------------------------------------------------ *)
(* Page                                                                *)
(* ------------------------------------------------------------------ *)

let test_page_basics () =
  let a = p 1 2 in
  checki "user" 1 (Page.user a);
  checki "id" 2 (Page.id a);
  checkb "equal" true (Page.equal a (p 1 2));
  checkb "not equal" false (Page.equal a (p 1 3));
  checkb "ordered by user first" true (Page.compare (p 0 99) (p 1 0) < 0);
  checkb "then by id" true (Page.compare (p 1 1) (p 1 2) < 0);
  Alcotest.check_raises "negative user"
    (Invalid_argument "Page.make: negative user") (fun () -> ignore (p (-1) 0))

let test_page_string_roundtrip () =
  let a = p 3 17 in
  checkb "roundtrip" true (Page.of_string (Page.to_string a) = Some a);
  checkb "garbage rejected" true (Page.of_string "nonsense" = None);
  checkb "partial rejected" true (Page.of_string "u1" = None);
  checkb "bad numbers rejected" true (Page.of_string "ux:py" = None)

(* ------------------------------------------------------------------ *)
(* Trace + Index                                                       *)
(* ------------------------------------------------------------------ *)

(* sequence: a b a c b a   (users: a,c -> 0; b -> 1) *)
let sample_trace () =
  Trace.of_list ~n_users:2 [ p 0 0; p 1 0; p 0 0; p 0 1; p 1 0; p 0 0 ]

let test_trace_basics () =
  let t = sample_trace () in
  checki "length" 6 (Trace.length t);
  checki "users" 2 (Trace.n_users t);
  checki "distinct" 3 (List.length (Trace.distinct_pages t));
  checkb "first-touch order" true
    (Trace.distinct_pages t = [ p 0 0; p 1 0; p 0 1 ]);
  Alcotest.check_raises "user out of range"
    (Invalid_argument "Trace.of_pages: page u5:p0 outside user range [0,2)")
    (fun () -> ignore (Trace.of_list ~n_users:2 [ p 5 0 ]))

let test_trace_index () =
  let t = sample_trace () in
  let idx = Trace.Index.build t in
  (* interval indices: a(1) b(1) a(2) c(1) b(2) a(3) *)
  checkb "intervals" true
    (List.init 6 (Trace.Index.interval_index idx) = [ 1; 1; 2; 1; 2; 3 ]);
  (* next use: a@0 -> 2, b@1 -> 4, a@2 -> 5, c@3 -> none, b@4 -> none, a@5 -> none *)
  checki "next of a@0" 2 (Trace.Index.next_use idx 0);
  checki "next of b@1" 4 (Trace.Index.next_use idx 1);
  checkb "c@3 last" true (Trace.Index.is_last_request idx 3);
  checkb "a@5 last" true (Trace.Index.is_last_request idx 5);
  checki "prev of a@2" 0 (Trace.Index.prev_use idx 2);
  checki "prev of a@0" (-1) (Trace.Index.prev_use idx 0);
  (* distinct counts: 1 2 2 3 3 3 *)
  checkb "distinct_upto" true
    (List.init 6 (Trace.Index.distinct_upto idx) = [ 1; 2; 2; 3; 3; 3 ]);
  checki "r(a,T)" 3 (Trace.Index.total_requests idx (p 0 0));
  checki "r(c,T)" 1 (Trace.Index.total_requests idx (p 0 1));
  checkb "first_use" true (Trace.Index.first_use idx (p 0 1) = Some 3);
  checkb "unknown page" true (Trace.Index.first_use idx (p 1 9) = None)

let test_trace_append_flush () =
  let t = sample_trace () in
  let doubled = Trace.append t t in
  checki "appended" 12 (Trace.length doubled);
  let flushed = Trace.with_flush ~k:4 t in
  checki "flush adds k" 10 (Trace.length flushed);
  checki "flush adds dummy user" 3 (Trace.n_users flushed);
  (* dummy pages are fresh and owned by the dummy user *)
  for i = 6 to 9 do
    checki "dummy user id" 2 (Page.user (Trace.request flushed i))
  done

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let test_trace_append_mismatch () =
  let a = Trace.of_list ~n_users:1 [ p 0 0 ] in
  let b = Trace.of_list ~n_users:2 [ p 1 0 ] in
  Alcotest.check_raises "user count"
    (Invalid_argument "Trace.append: user-count mismatch") (fun () ->
      ignore (Trace.append a b))

let test_zipf_validation () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~skew:1.0));
  Alcotest.check_raises "negative skew"
    (Invalid_argument "Zipf.create: negative skew") (fun () ->
      ignore (Zipf.create ~n:3 ~skew:(-1.0)));
  let z = Zipf.create ~n:3 ~skew:1.0 in
  Alcotest.check_raises "pmf range" (Invalid_argument "Zipf.pmf: rank out of range")
    (fun () -> ignore (Zipf.pmf z 3))

let test_zipf_pmf () =
  let z = Zipf.create ~n:5 ~skew:1.0 in
  let total = ref 0.0 in
  for i = 0 to 4 do
    total := !total +. Zipf.pmf z i
  done;
  checkf "pmf sums to 1" 1.0 !total;
  checkb "rank 0 most popular" true (Zipf.pmf z 0 > Zipf.pmf z 4)

let test_zipf_skew_zero_uniform () =
  let z = Zipf.create ~n:4 ~skew:0.0 in
  for i = 0 to 3 do
    checkf "uniform pmf" 0.25 (Zipf.pmf z i)
  done

let test_zipf_sampling_skew () =
  let z = Zipf.create ~n:100 ~skew:1.2 in
  let rng = Prng.create ~seed:1 in
  let counts = Array.make 100 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  checkb "head heavier than tail" true (counts.(0) > 10 * counts.(99));
  (* empirical frequency of rank 0 close to pmf *)
  let freq0 = float_of_int counts.(0) /. float_of_int n in
  checkb "matches pmf" true (Float.abs (freq0 -. Zipf.pmf z 0) < 0.01)

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let test_workload_determinism () =
  let specs = W.sqlvm_mix ~scale:1 in
  let a = W.generate ~seed:5 ~length:500 specs in
  let b = W.generate ~seed:5 ~length:500 specs in
  checkb "same seed same trace" true (Trace.requests a = Trace.requests b);
  let c = W.generate ~seed:6 ~length:500 specs in
  checkb "different seed differs" true (Trace.requests a <> Trace.requests c)

let test_workload_cycle () =
  let t = W.generate_single ~seed:1 ~length:7 (W.Cycle { pages = 3 }) in
  let ids = Array.to_list (Array.map Page.id (Trace.requests t)) in
  checkb "cyclic" true (ids = [ 0; 1; 2; 0; 1; 2; 0 ])

let test_workload_scan () =
  let t =
    W.generate_single ~seed:1 ~length:8
      (W.Sequential_scan { pages = 3; passes = 2 })
  in
  let ids = Array.to_list (Array.map Page.id (Trace.requests t)) in
  (* two full passes then uniform re-reads within range *)
  checkb "scan prefix" true
    (List.filteri (fun i _ -> i < 6) ids = [ 0; 1; 2; 0; 1; 2 ]);
  List.iter (fun i -> checkb "wrap in range" true (i >= 0 && i < 3)) ids

let test_workload_hot_cold () =
  let t =
    W.generate_single ~seed:2 ~length:5000
      (W.Hot_cold { pages = 100; hot_pages = 5; hot_prob = 0.9 })
  in
  let hot = ref 0 in
  Array.iter (fun q -> if Page.id q < 5 then incr hot) (Trace.requests t);
  let frac = float_of_int !hot /. 5000.0 in
  checkb "hot fraction ~0.9" true (frac > 0.85 && frac < 0.95)

let test_workload_drift () =
  let t =
    W.generate_single ~seed:3 ~length:1000
      (W.Drifting_zipf { pages = 50; window = 10; skew = 1.0; shift_every = 100 })
  in
  (* early requests stay in the initial window; late ones have drifted *)
  let early = Array.sub (Trace.requests t) 0 100 in
  Array.iter (fun q -> checkb "early in window" true (Page.id q < 10)) early;
  let late = Array.sub (Trace.requests t) 900 100 in
  checkb "late drifted" true (Array.exists (fun q -> Page.id q >= 10) late)

let test_workload_mixture_and_weights () =
  let specs =
    [
      W.tenant ~weight:9.0 (W.Uniform { pages = 10 });
      W.tenant ~weight:1.0 (W.Uniform { pages = 10 });
    ]
  in
  let t = W.generate ~seed:4 ~length:10_000 specs in
  let counts = Array.make 2 0 in
  Array.iter (fun q -> counts.(Page.user q) <- counts.(Page.user q) + 1) (Trace.requests t);
  let ratio = float_of_int counts.(0) /. float_of_int counts.(1) in
  checkb "9:1 rate ratio" true (ratio > 7.0 && ratio < 11.5);
  (* mixture pattern validates and respects footprint *)
  let m = W.Mixture [ (1.0, W.Uniform { pages = 5 }); (1.0, W.Cycle { pages = 9 }) ] in
  checki "mixture footprint" 9 (W.footprint m)

let test_workload_validation () =
  Alcotest.check_raises "no tenants"
    (Invalid_argument "Workloads.generate: no tenants") (fun () ->
      ignore (W.generate ~seed:1 ~length:10 []));
  Alcotest.check_raises "bad pages"
    (Invalid_argument "Workloads: pattern needs pages > 0") (fun () ->
      ignore (W.generate_single ~seed:1 ~length:10 (W.Uniform { pages = 0 })));
  Alcotest.check_raises "bad hot prob"
    (Invalid_argument "Workloads: hot_prob outside [0,1]") (fun () ->
      ignore
        (W.generate_single ~seed:1 ~length:10
           (W.Hot_cold { pages = 10; hot_pages = 2; hot_prob = 1.5 })))

(* NaN passes sign checks silently (comparisons with NaN are false), so
   non-finite workload parameters get a dedicated rejection naming the
   field. *)
let test_workload_float_hygiene () =
  Alcotest.check_raises "nan skew"
    (Invalid_argument "Workloads: skew = nan is not finite") (fun () ->
      ignore
        (W.generate_single ~seed:1 ~length:10
           (W.Zipf { pages = 10; skew = Float.nan })));
  Alcotest.check_raises "inf drifting skew"
    (Invalid_argument "Workloads: skew = inf is not finite") (fun () ->
      W.validate_pattern
        (W.Drifting_zipf
           { pages = 10; window = 5; skew = Float.infinity; shift_every = 3 }));
  Alcotest.check_raises "nan hot_prob"
    (Invalid_argument "Workloads: hot_prob = nan is not finite") (fun () ->
      W.validate_pattern
        (W.Hot_cold { pages = 10; hot_pages = 2; hot_prob = Float.nan }));
  Alcotest.check_raises "nan mixture weight"
    (Invalid_argument "Workloads: mixture weight = nan is not finite")
    (fun () ->
      W.validate_pattern
        (W.Mixture [ (Float.nan, W.Uniform { pages = 2 }) ]));
  Alcotest.check_raises "nan tenant weight"
    (Invalid_argument "Workloads: tenant weight = nan is not finite")
    (fun () -> ignore (W.tenant ~weight:Float.nan (W.Uniform { pages = 2 })))

let test_workload_phases () =
  let phase_a = [ W.tenant (W.Cycle { pages = 2 }); W.tenant ~weight:1e-9 (W.Uniform { pages = 2 }) ] in
  let phase_b = [ W.tenant ~weight:1e-9 (W.Cycle { pages = 2 }); W.tenant (W.Uniform { pages = 2 }) ] in
  let t = W.generate_phases ~seed:9 [ (phase_a, 50); (phase_b, 50) ] in
  checki "total length" 100 (Trace.length t);
  checki "two users" 2 (Trace.n_users t);
  (* phase A is essentially all user 0, phase B all user 1 *)
  let first_half = Array.sub (Trace.requests t) 0 50 in
  let second_half = Array.sub (Trace.requests t) 50 50 in
  let count u a = Array.fold_left (fun acc q -> if Page.user q = u then acc + 1 else acc) 0 a in
  checkb "phase A dominated by user 0" true (count 0 first_half >= 49);
  checkb "phase B dominated by user 1" true (count 1 second_half >= 49);
  Alcotest.check_raises "tenant count mismatch"
    (Invalid_argument "Workloads.generate_phases: phases disagree on tenant count")
    (fun () ->
      ignore (W.generate_phases ~seed:1 [ (phase_a, 10); ([ W.tenant (W.Uniform { pages = 1 }) ], 10) ]))

let test_workload_day_night () =
  let day = W.symmetric_zipf ~tenants:4 ~pages_per_tenant:10 ~skew:0.5 in
  let phases = W.day_night ~day ~night_tenants:2 ~phase_length:100 ~cycles:3 in
  checki "six phases" 6 (List.length phases);
  let t = W.generate_phases ~seed:4 phases in
  checki "length" 600 (Trace.length t);
  (* night phases carry almost no traffic from tenants 2,3 *)
  let night = Array.sub (Trace.requests t) 100 100 in
  let late_users = Array.fold_left (fun acc q -> if Page.user q >= 2 then acc + 1 else acc) 0 night in
  checkb "night is quiet for tenants 2-3" true (late_users <= 2);
  Alcotest.check_raises "bad night count"
    (Invalid_argument "Workloads.day_night: bad night tenant count") (fun () ->
      ignore (W.day_night ~day ~night_tenants:9 ~phase_length:10 ~cycles:1))

let test_lru_nemesis () =
  let t = W.generate ~seed:1 ~length:10 (W.lru_nemesis ~k:3) in
  let ids = Array.to_list (Array.map Page.id (Trace.requests t)) in
  checkb "cycles k+1 pages" true
    (ids = [ 0; 1; 2; 3; 0; 1; 2; 3; 0; 1 ])

(* ------------------------------------------------------------------ *)
(* Trace IO                                                            *)
(* ------------------------------------------------------------------ *)

let test_io_roundtrip_handmade () =
  let t = sample_trace () in
  let s = Trace_io.to_string t in
  let t' = Trace_io.of_string s in
  checkb "requests preserved" true (Trace.requests t = Trace.requests t');
  checki "users preserved" (Trace.n_users t) (Trace.n_users t')

let test_io_rejects_garbage () =
  checkb "bad magic raises" true
    (match Trace_io.of_string "hello\nusers 2\n" with
    | exception Trace_io.Parse_error _ -> true
    | _ -> false);
  checkb "missing users raises" true
    (match Trace_io.of_string "# convex-caching trace v1\n0 1\n" with
    | exception Trace_io.Parse_error _ -> true
    | _ -> false);
  checkb "bad line raises" true
    (match Trace_io.of_string "# convex-caching trace v1\nusers 2\nx y z\n" with
    | exception Trace_io.Parse_error _ -> true
    | _ -> false)

let test_io_comments_and_blanks () =
  let s = "# convex-caching trace v1\n\n# a comment\nusers 2\n0 0\n\n1 3\n" in
  let t = Trace_io.of_string s in
  checki "two requests" 2 (Trace.length t);
  checkb "parsed pages" true (Trace.requests t = [| p 0 0; p 1 3 |])

let test_io_file_roundtrip () =
  let t = W.generate ~seed:9 ~length:300 (W.sqlvm_mix ~scale:1) in
  let path = Filename.temp_file "ccache" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.write_file path t;
      let t' = Trace_io.read_file path in
      checkb "file roundtrip" true (Trace.requests t = Trace.requests t'))

let io_roundtrip_property =
  QCheck.Test.make ~name:"io roundtrip on random traces" ~count:50
    QCheck.(pair (int_range 1 4) (int_range 0 80))
    (fun (users, len) ->
      let rng = Prng.create ~seed:(users + (1000 * len)) in
      let reqs =
        List.init len (fun _ ->
            Page.make ~user:(Prng.int rng users) ~id:(Prng.int rng 20))
      in
      let t = Trace.of_list ~n_users:users reqs in
      let t' = Trace_io.of_string (Trace_io.to_string t) in
      Trace.requests t = Trace.requests t' && Trace.n_users t = Trace.n_users t')

(* ------------------------------------------------------------------ *)
(* Trace stats                                                         *)
(* ------------------------------------------------------------------ *)

let test_stats_compute () =
  let t = sample_trace () in
  let s = Trace_stats.compute t in
  checki "length" 6 s.Trace_stats.length;
  checki "cold misses = distinct" 3 s.Trace_stats.cold_misses;
  checki "user0 requests" 4 s.Trace_stats.per_user.(0).Trace_stats.requests;
  checki "user0 distinct" 2 s.Trace_stats.per_user.(0).Trace_stats.distinct_pages;
  checkf "max hit ratio" 0.5 (Trace_stats.max_hit_ratio s)

let test_stats_reuse_distances () =
  (* a b a: reuse distance of second a is 1 (b in between) *)
  let t = Trace.of_list ~n_users:2 [ p 0 0; p 1 0; p 0 0 ] in
  let d = Trace_stats.reuse_distances t in
  checkb "one reuse" true (d = [| 1.0 |]);
  (* a a: distance 0 *)
  let t2 = Trace.of_list ~n_users:1 [ p 0 0; p 0 0 ] in
  checkb "adjacent reuse" true (Trace_stats.reuse_distances t2 = [| 0.0 |])

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ccache_trace"
    [
      ( "page",
        [
          Alcotest.test_case "basics" `Quick test_page_basics;
          Alcotest.test_case "string roundtrip" `Quick test_page_string_roundtrip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick test_trace_basics;
          Alcotest.test_case "index" `Quick test_trace_index;
          Alcotest.test_case "append/flush" `Quick test_trace_append_flush;
          Alcotest.test_case "append mismatch" `Quick test_trace_append_mismatch;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "pmf" `Quick test_zipf_pmf;
          Alcotest.test_case "validation" `Quick test_zipf_validation;
          Alcotest.test_case "skew 0 uniform" `Quick test_zipf_skew_zero_uniform;
          Alcotest.test_case "sampling skew" `Quick test_zipf_sampling_skew;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "determinism" `Quick test_workload_determinism;
          Alcotest.test_case "cycle" `Quick test_workload_cycle;
          Alcotest.test_case "scan" `Quick test_workload_scan;
          Alcotest.test_case "hot/cold" `Quick test_workload_hot_cold;
          Alcotest.test_case "drift" `Quick test_workload_drift;
          Alcotest.test_case "mixture/weights" `Quick test_workload_mixture_and_weights;
          Alcotest.test_case "validation" `Quick test_workload_validation;
          Alcotest.test_case "non-finite rejected" `Quick
            test_workload_float_hygiene;
          Alcotest.test_case "phases" `Quick test_workload_phases;
          Alcotest.test_case "day/night churn" `Quick test_workload_day_night;
          Alcotest.test_case "lru nemesis" `Quick test_lru_nemesis;
        ] );
      ( "trace_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip_handmade;
          Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
          Alcotest.test_case "comments/blanks" `Quick test_io_comments_and_blanks;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
        ]
        @ qsuite [ io_roundtrip_property ] );
      ( "trace_stats",
        [
          Alcotest.test_case "compute" `Quick test_stats_compute;
          Alcotest.test_case "reuse distances" `Quick test_stats_reuse_distances;
        ] );
    ]
