(* Tests for the zero-copy trace substrate: the binary .ctrace format
   (Trace_binary), dense interning on Trace, external address-trace
   readers (Trace_extern), the fingerprinted on-disk cache
   (Trace_cache) and the CLI's exit-2 discipline on malformed input. *)

open Ccache_trace
module W = Workloads
module Prng = Ccache_util.Prng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let p u i = Page.make ~user:u ~id:i

let same_trace a b =
  Trace.requests a = Trace.requests b && Trace.n_users a = Trace.n_users b

let random_trace seed =
  let rng = Prng.create ~seed in
  let users = 1 + Prng.int rng 4 in
  let len = Prng.int rng 120 in
  let reqs =
    List.init len (fun _ ->
        Page.make ~user:(Prng.int rng users) ~id:(Prng.int rng 30))
  in
  Trace.of_list ~n_users:users reqs

let with_temp f =
  let path = Filename.temp_file "ccache_test" ".ctrace" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Dense interning on Trace                                            *)
(* ------------------------------------------------------------------ *)

let test_interning_basics () =
  (* a b a c b a *)
  let t = Trace.of_list ~n_users:2 [ p 0 0; p 1 0; p 0 0; p 0 1; p 1 0; p 0 0 ] in
  checki "3 distinct" 3 (Trace.n_pages t);
  checkb "dense = first-touch ranks" true
    (Trace.dense t = [| 0; 1; 0; 2; 1; 0 |]);
  checkb "pages in first-touch order" true
    (List.init 3 (Trace.page_of_dense t) = [ p 0 0; p 1 0; p 0 1 ]);
  checkb "dense_of_page hits" true (Trace.dense_of_page t (p 0 1) = Some 2);
  checkb "dense_of_page misses" true (Trace.dense_of_page t (p 1 9) = None);
  checkb "distinct_pages agrees" true
    (Trace.distinct_pages t = [ p 0 0; p 1 0; p 0 1 ])

let interning_property =
  QCheck.Test.make ~name:"interning is a consistent first-touch remap" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let t = random_trace seed in
      let dense = Trace.dense t in
      let n = Trace.length t in
      let seen = ref 0 in
      let ok = ref (Array.length dense = n) in
      for pos = 0 to n - 1 do
        let d = dense.(pos) in
        (* rank valid, first occurrences in increasing order, and the
           remap actually names the requested page *)
        ok := !ok && d >= 0 && d <= !seen && d < Trace.n_pages t;
        if d = !seen then incr seen;
        ok := !ok && Page.equal (Trace.page_of_dense t d) (Trace.request t pos)
      done;
      !ok && !seen = Trace.n_pages t)

let test_of_dense_validation () =
  let reject ~pages ~dense =
    match Trace.of_dense ~n_users:1 ~pages ~dense with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "rank out of range" true
    (reject ~pages:[| p 0 0 |] ~dense:[| 0; 1 |]);
  checkb "rank before first occurrence" true
    (reject ~pages:[| p 0 0; p 0 1 |] ~dense:[| 1; 0 |]);
  checkb "page never requested" true
    (reject ~pages:[| p 0 0; p 0 1 |] ~dense:[| 0; 0 |]);
  checkb "duplicate dictionary page" true
    (reject ~pages:[| p 0 0; p 0 0 |] ~dense:[| 0; 1 |]);
  let t = Trace.of_dense ~n_users:2 ~pages:[| p 0 3; p 1 7 |] ~dense:[| 0; 1; 0 |] in
  checkb "well-formed accepted" true
    (Trace.requests t = [| p 0 3; p 1 7; p 0 3 |])

(* ------------------------------------------------------------------ *)
(* Binary round-trips                                                  *)
(* ------------------------------------------------------------------ *)

let test_binary_string_roundtrip () =
  let t = Trace.of_list ~n_users:2 [ p 0 0; p 1 0; p 0 0; p 0 1 ] in
  checkb "string roundtrip" true (same_trace t (Trace_binary.of_string (Trace_binary.to_string t)));
  let empty = Trace.of_list ~n_users:1 [] in
  checkb "empty roundtrip" true
    (same_trace empty (Trace_binary.of_string (Trace_binary.to_string empty)))

let test_binary_file_roundtrip () =
  let t = W.generate ~seed:11 ~length:500 (W.sqlvm_mix ~scale:1) in
  with_temp (fun path ->
      Trace_binary.write_file path t;
      checkb "file roundtrip" true (same_trace t (Trace_binary.read_file path));
      (* the handle view agrees with the materialised trace *)
      let h = Trace_binary.open_file path in
      checki "handle length" (Trace.length t) (Trace_binary.length h);
      checki "handle users" (Trace.n_users t) (Trace_binary.n_users h);
      checki "handle pages" (Trace.n_pages t) (Trace_binary.n_pages h);
      let ok = ref true in
      for i = 0 to Trace.length t - 1 do
        ok := !ok && Page.equal (Trace_binary.page_at h i) (Trace.request t i)
      done;
      checkb "handle iteration agrees" true !ok)

let binary_roundtrip_property =
  QCheck.Test.make ~name:"binary roundtrip on random traces" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let t = random_trace seed in
      let t' = Trace_binary.of_string (Trace_binary.to_string t) in
      same_trace t t'
      (* the interning remap survives the trip too *)
      && Trace.dense t = Trace.dense t'
      && Trace.n_pages t = Trace.n_pages t')

let text_binary_text_property =
  QCheck.Test.make ~name:"text -> binary -> text is the identity" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let t = random_trace seed in
      let text = Trace_io.to_string t in
      let back =
        Trace_io.to_string (Trace_binary.of_string (Trace_binary.to_string (Trace_io.of_string text)))
      in
      String.equal text back)

let test_read_any_dispatch () =
  let t = random_trace 77 in
  checkb "binary sniffed" true
    (same_trace t (Trace_io.of_string_any (Trace_binary.to_string t)));
  checkb "text sniffed" true
    (same_trace t (Trace_io.of_string_any (Trace_io.to_string t)))

(* ------------------------------------------------------------------ *)
(* Malformed binary input                                              *)
(* ------------------------------------------------------------------ *)

let fails_format s =
  match Trace_binary.of_string s with
  | exception Trace_binary.Format_error _ -> true
  | _ -> false

let set_byte s off v =
  let b = Bytes.of_string s in
  Bytes.set b off (Char.chr v);
  Bytes.to_string b

let test_binary_rejects_garbage () =
  let good = Trace_binary.to_string (random_trace 3) in
  checkb "empty input" true (fails_format "");
  checkb "truncated header" true (fails_format (String.sub good 0 20));
  checkb "bad magic" true (fails_format (set_byte good 0 (Char.code 'X')));
  checkb "wrong version" true (fails_format (set_byte good 8 99));
  checkb "bad endian tag" true (fails_format (set_byte good 12 0xFF));
  checkb "non-zero reserved" true (fails_format (set_byte good 32 1));
  checkb "truncated body" true
    (fails_format (String.sub good 0 (String.length good - 1)));
  checkb "trailing junk" true (fails_format (good ^ "x"));
  (* corrupt a dense id so the first-touch invariant breaks: requests
     exist iff length > 0, so pick a trace guaranteed non-empty *)
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1 ] in
  let s = Trace_binary.to_string t in
  checkb "out-of-range dense id" true
    (fails_format (set_byte s (String.length s - 4) 0x7F))

let test_binary_rejects_garbage_files () =
  (* same failures through the mmap path, and Format_error (not a
     crash or Sys_error) for each *)
  let good = Trace_binary.to_string (random_trace 3) in
  List.iter
    (fun bad ->
      with_temp (fun path ->
          Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bad);
          checkb "file rejected" true
            (match Trace_binary.read_file path with
            | exception Trace_binary.Format_error _ -> true
            | _ -> false)))
    [
      "CCTRACE0 but short";
      set_byte good 8 99;
      String.sub good 0 (String.length good - 1);
    ]

(* ------------------------------------------------------------------ *)
(* External formats                                                    *)
(* ------------------------------------------------------------------ *)

let test_extern_rw () =
  let t =
    Trace_extern.of_string_rw
      "# comment\nR 0x1000\nW 0x2000\nR 0x1000\nr 4096\nW 0xdeadbeef000\n"
  in
  checki "users" 1 (Trace.n_users t);
  checki "requests" 5 (Trace.length t);
  (* 0x1000>>12=1 -> dense 0; 0x2000>>12=2 -> dense 1; 4096>>12 -> dense 0;
     0xdeadbeef000>>12 -> dense 2: interning renames to first-touch ranks *)
  checkb "interned ids" true
    (Trace.requests t = [| p 0 0; p 0 1; p 0 0; p 0 0; p 0 2 |])

let test_extern_rw_page_shift () =
  let t = Trace_extern.of_string_rw ~page_shift:0 "R 0x10\nR 0x11\nR 0x10\n" in
  checki "distinct at shift 0" 2 (Trace.n_pages t);
  let t' = Trace_extern.of_string_rw ~page_shift:4 "R 0x10\nR 0x11\nR 0x10\n" in
  checki "merged at shift 4" 1 (Trace.n_pages t')

let test_extern_rw_errors () =
  let line_of s =
    match Trace_extern.of_string_rw s with
    | exception Trace_io.Parse_error { line; _ } -> line
    | _ -> -1
  in
  checki "garbage line number" 2 (line_of "R 0x1000\nnot a line\n");
  checki "bad address line number" 1 (line_of "R zzz\n");
  checki "bad op line number" 3 (line_of "R 0x1\nW 0x2\nX 0x3\n")

let test_extern_lackey () =
  let t =
    Trace_extern.of_string_lackey
      "==123== banner noise\nI  0400d7d4,8\n L 04f2b7e0,8\n S 04f2b7e8,4\n M 04f2b7f0,8\n"
  in
  checki "four refs" 4 (Trace.length t);
  (* instr page 0x400, data pages 0x4f2b: two distinct after shift 12 *)
  checki "two distinct pages" 2 (Trace.n_pages t);
  checkb "lackey error carries line" true
    (match Trace_extern.of_string_lackey "I nonsense\n" with
    | exception Trace_io.Parse_error { line = 1; _ } -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Trace cache                                                         *)
(* ------------------------------------------------------------------ *)

let with_cache_dir f =
  let dir = Filename.temp_file "ccache_cache" "" in
  Sys.remove dir;
  Trace_cache.set_dir (Some dir);
  Fun.protect
    ~finally:(fun () ->
      Trace_cache.set_dir None;
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_cache_hit_and_fingerprint () =
  with_cache_dir (fun dir ->
      let calls = ref 0 in
      let gen () =
        incr calls;
        W.generate ~seed:21 ~length:200 (W.symmetric_zipf ~tenants:2 ~pages_per_tenant:16 ~skew:0.5)
      in
      let a = Trace_cache.memoize ~fingerprint:"fp-A" gen in
      let b = Trace_cache.memoize ~fingerprint:"fp-A" gen in
      checki "generator ran once" 1 !calls;
      checkb "hit is byte-identical" true (same_trace a b);
      ignore (Trace_cache.memoize ~fingerprint:"fp-B" gen);
      checki "new fingerprint regenerates" 2 !calls;
      (* a stale sidecar (hash collision stand-in) must degrade to a miss *)
      let key = Trace_cache.key_of_fingerprint "fp-A" in
      Out_channel.with_open_bin (Filename.concat dir (key ^ ".fp")) (fun oc ->
          Out_channel.output_string oc "some other fingerprint");
      ignore (Trace_cache.memoize ~fingerprint:"fp-A" gen);
      checki "collision regenerates" 3 !calls;
      (* a corrupt .ctrace must also degrade to a miss, not an error *)
      Out_channel.with_open_bin (Filename.concat dir (key ^ ".ctrace")) (fun oc ->
          Out_channel.output_string oc "CCTRACE0 corrupted");
      let c = Trace_cache.memoize ~fingerprint:"fp-A" gen in
      checkb "corrupt entry regenerated" true (same_trace a c))

let test_cache_generate_equivalence () =
  (* the real integration point: Workloads.generate through the cache
     produces the same trace as without it *)
  let specs = W.sqlvm_mix ~scale:1 in
  let plain = W.generate ~seed:5 ~length:400 specs in
  with_cache_dir (fun _dir ->
      let cold = W.generate ~seed:5 ~length:400 specs in
      let warm = W.generate ~seed:5 ~length:400 specs in
      checkb "cold = plain" true (same_trace plain cold);
      checkb "warm = plain" true (same_trace plain warm))

let test_cache_disabled_passthrough () =
  Trace_cache.set_dir None;
  let calls = ref 0 in
  let gen () =
    incr calls;
    Trace.of_list ~n_users:1 [ p 0 0 ]
  in
  ignore (Trace_cache.memoize ~fingerprint:"x" gen);
  ignore (Trace_cache.memoize ~fingerprint:"x" gen);
  checki "no caching when disabled" 2 !calls

let test_workload_fingerprint_sensitivity () =
  let specs = W.sqlvm_mix ~scale:1 in
  let fp = W.fingerprint ~seed:1 ~length:100 specs in
  checkb "seed changes fingerprint" true
    (fp <> W.fingerprint ~seed:2 ~length:100 specs);
  checkb "length changes fingerprint" true
    (fp <> W.fingerprint ~seed:1 ~length:101 specs);
  checkb "spec changes fingerprint" true
    (fp <> W.fingerprint ~seed:1 ~length:100 (W.sqlvm_mix ~scale:2));
  checks "deterministic" fp (W.fingerprint ~seed:1 ~length:100 specs)

(* ------------------------------------------------------------------ *)
(* Index equivalence on file-backed traces                             *)
(* ------------------------------------------------------------------ *)

let test_index_on_loaded_trace () =
  (* Index answers must not depend on whether the trace was generated
     or loaded from the binary format *)
  let t = W.generate ~seed:31 ~length:600 (W.sqlvm_mix ~scale:1) in
  let t' = Trace_binary.of_string (Trace_binary.to_string t) in
  let i = Trace.Index.build t and i' = Trace.Index.build t' in
  let ok = ref true in
  for pos = 0 to Trace.length t - 1 do
    ok :=
      !ok
      && Trace.Index.interval_index i pos = Trace.Index.interval_index i' pos
      && Trace.Index.next_use i pos = Trace.Index.next_use i' pos
      && Trace.Index.prev_use i pos = Trace.Index.prev_use i' pos
      && Trace.Index.distinct_upto i pos = Trace.Index.distinct_upto i' pos
  done;
  List.iter
    (fun page ->
      ok :=
        !ok
        && Trace.Index.total_requests i page = Trace.Index.total_requests i' page
        && Trace.Index.first_use i page = Trace.Index.first_use i' page)
    (Trace.distinct_pages t);
  checkb "index agrees" true !ok;
  checki "absent page total 0" 0 (Trace.Index.total_requests i (p 0 999_999))

(* ------------------------------------------------------------------ *)
(* CLI exit codes on malformed input                                   *)
(* ------------------------------------------------------------------ *)

let cli = Filename.concat ".." (Filename.concat "bin" "ccache_cli.exe")

let cli_exit args =
  Sys.command (Filename.quote cli ^ " " ^ args ^ " > /dev/null 2> /dev/null")

let test_cli_exit_2 () =
  let good = Trace_binary.to_string (random_trace 3) in
  with_temp (fun path ->
      (* corrupt header: wrong version byte *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (set_byte good 8 99));
      checki "run on wrong-version binary" 2
        (cli_exit ("run --policy lru --trace " ^ Filename.quote path));
      checki "trace stat on wrong-version binary" 2
        (cli_exit ("trace stat " ^ Filename.quote path));
      (* truncated body *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub good 0 (String.length good - 2)));
      checki "run on truncated binary" 2
        (cli_exit ("run --policy lru --trace " ^ Filename.quote path));
      (* text garbage *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "not a trace\n");
      checki "run on text garbage" 2
        (cli_exit ("run --policy lru --trace " ^ Filename.quote path));
      checki "convert on rw garbage" 2
        (cli_exit ("trace convert --format rw " ^ Filename.quote path)))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ccache_trace_binary"
    [
      ( "interning",
        [
          Alcotest.test_case "basics" `Quick test_interning_basics;
          Alcotest.test_case "of_dense validation" `Quick test_of_dense_validation;
        ]
        @ qsuite [ interning_property ] );
      ( "binary",
        [
          Alcotest.test_case "string roundtrip" `Quick test_binary_string_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_binary_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_binary_rejects_garbage;
          Alcotest.test_case "rejects garbage files" `Quick
            test_binary_rejects_garbage_files;
          Alcotest.test_case "read_any dispatch" `Quick test_read_any_dispatch;
        ]
        @ qsuite [ binary_roundtrip_property; text_binary_text_property ] );
      ( "extern",
        [
          Alcotest.test_case "rw format" `Quick test_extern_rw;
          Alcotest.test_case "rw page shift" `Quick test_extern_rw_page_shift;
          Alcotest.test_case "rw errors" `Quick test_extern_rw_errors;
          Alcotest.test_case "lackey format" `Quick test_extern_lackey;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit, collision, corruption" `Quick
            test_cache_hit_and_fingerprint;
          Alcotest.test_case "generate equivalence" `Quick
            test_cache_generate_equivalence;
          Alcotest.test_case "disabled passthrough" `Quick
            test_cache_disabled_passthrough;
          Alcotest.test_case "fingerprint sensitivity" `Quick
            test_workload_fingerprint_sensitivity;
        ] );
      ( "integration",
        [
          Alcotest.test_case "index on loaded trace" `Quick test_index_on_loaded_trace;
          Alcotest.test_case "cli exit 2" `Quick test_cli_exit_2;
        ] );
    ]
