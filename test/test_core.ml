(* Tests for ccache_core: the budget state machine, ALG-DISCRETE and
   its fast implementation, the dual-instrumented ALG-CONT, the
   invariant checker and the Theory formulas. *)

open Ccache_trace
module Engine = Ccache_sim.Engine
module Cf = Ccache_cost.Cost_function
module Bs = Ccache_core.Budget_state
module Alg = Ccache_core.Alg_discrete
module Fast = Ccache_core.Alg_fast
module Cont = Ccache_core.Alg_cont
module Inv = Ccache_core.Invariants
module Theory = Ccache_core.Theory
module Prng = Ccache_util.Prng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let p u i = Page.make ~user:u ~id:i

(* integer-valued costs make float arithmetic exact, so the reference
   and fast implementations must agree victim-for-victim *)
let int_costs n =
  Array.init n (fun i ->
      match i mod 3 with
      | 0 -> Cf.monomial ~beta:2.0 ()
      | 1 -> Cf.linear ~slope:3.0 ()
      | _ -> Ccache_cost.Sla.hinge ~tolerance:8.0 ~penalty_rate:4.0)

let random_trace ~seed ~users ~pages ~len =
  let rng = Prng.create ~seed in
  Trace.of_list ~n_users:users
    (List.init len (fun _ ->
         Page.make ~user:(Prng.int rng users) ~id:(Prng.int rng pages)))

(* ------------------------------------------------------------------ *)
(* Budget_state: hand-computed Figure 3 arithmetic                     *)
(* ------------------------------------------------------------------ *)

let test_budget_touch_and_min () =
  (* user 0: x^2 (discrete marginal at m=0 is f(1)-f(0)=1);
     user 1: 3x (marginal 3) *)
  let st = Bs.create ~costs:(int_costs 2) ~mode:Cf.Discrete ~n_users:2 in
  Bs.touch st (p 0 0);
  Bs.touch st (p 1 0);
  checkb "B(a) = 1" true (Bs.budget st (p 0 0) = Some 1.0);
  checkb "B(b) = 3" true (Bs.budget st (p 1 0) = Some 3.0);
  let victim, b = Bs.min_budget st in
  checkb "min is cheap user" true (Page.equal victim (p 0 0));
  checkf "min value" 1.0 b;
  checki "cached" 2 (Bs.cached_count st)

let test_budget_evict_updates () =
  (* cache: a0 (user0, x^2), b0 (user0), c1 (user1, 3x).
     Evict a0 (B=1): delta=1, user0 bump = marginal(2)-marginal(1) = 3-1 = 2.
     b0: 1 - 1 + 2 = 2.  c1: 3 - 1 = 2. *)
  let st = Bs.create ~costs:(int_costs 2) ~mode:Cf.Discrete ~n_users:2 in
  Bs.touch st (p 0 0);
  Bs.touch st (p 0 1);
  Bs.touch st (p 1 0);
  let delta = Bs.evict st (p 0 0) in
  checkf "delta is victim budget" 1.0 delta;
  checkb "same-user page bumped" true (Bs.budget st (p 0 1) = Some 2.0);
  checkb "other user decayed" true (Bs.budget st (p 1 0) = Some 2.0);
  checki "m(user0)" 1 (Bs.evictions st 0);
  checki "m(user1)" 0 (Bs.evictions st 1);
  (* next touch of user 0 uses the new marginal f(2)-f(1) = 3 *)
  Bs.touch st (p 0 2);
  checkb "fresh budget at new marginal" true (Bs.budget st (p 0 2) = Some 3.0)

let test_budget_min_tie_break () =
  let st = Bs.create ~costs:(int_costs 2) ~mode:Cf.Discrete ~n_users:2 in
  Bs.touch st (p 0 5);
  Bs.touch st (p 0 2);
  (* equal budgets: smaller page id wins *)
  checkb "tie by page order" true (Page.equal (fst (Bs.min_budget st)) (p 0 2))

let test_budget_analytic_mode () =
  let st = Bs.create ~costs:(int_costs 1) ~mode:Cf.Analytic ~n_users:1 in
  Bs.touch st (p 0 0);
  (* f = x^2, analytic f'(m+1) = f'(1) = 2 *)
  checkb "analytic rate" true (Bs.budget st (p 0 0) = Some 2.0)

let test_budget_errors () =
  let st = Bs.create ~costs:(int_costs 1) ~mode:Cf.Discrete ~n_users:1 in
  Alcotest.check_raises "empty min"
    (Invalid_argument "Budget_state.min_budget: empty cache") (fun () ->
      ignore (Bs.min_budget st));
  Alcotest.check_raises "evict uncached"
    (Invalid_argument "Budget_state.evict: victim not cached") (fun () ->
      ignore (Bs.evict st (p 0 0)))

(* ------------------------------------------------------------------ *)
(* ALG-DISCRETE behaviour                                              *)
(* ------------------------------------------------------------------ *)

let test_alg_prefers_evicting_cheap_user () =
  (* user 0 linear slope 3 is pricier than user 1's hinge in its free
     region: the hinge user's page is evicted first *)
  let costs = [| Cf.linear ~slope:3.0 (); Ccache_cost.Sla.hinge ~tolerance:5.0 ~penalty_rate:10.0 |] in
  let t = Trace.of_list ~n_users:2 [ p 0 0; p 1 0; p 0 1 ] in
  let _, log = Engine.run_logged ~k:2 ~costs Alg.policy t in
  let victims =
    List.filter_map (function Engine.Miss_evict { victim; _ } -> Some victim | _ -> None) log
  in
  checkb "free-region page evicted" true (victims = [ p 1 0 ])

let test_alg_protects_user_near_cliff () =
  (* hinge tolerance 2: after 3 misses the user is past the cliff and
     its marginal dwarfs the linear user's; ALG shifts evictions to the
     linear user while LRU keeps hammering both *)
  let costs =
    [| Ccache_cost.Sla.hinge ~tolerance:2.0 ~penalty_rate:50.0; Cf.linear ~slope:1.0 () |]
  in
  let t =
    Workloads.generate ~seed:5 ~length:2000
      [
        Workloads.tenant (Workloads.Zipf { pages = 30; skew = 0.7 });
        Workloads.tenant (Workloads.Zipf { pages = 30; skew = 0.7 });
      ]
  in
  let alg = Engine.run ~k:10 ~costs Alg.policy t in
  let lru = Engine.run ~k:10 ~costs Ccache_policies.Lru.policy t in
  let cost r = Ccache_sim.Metrics.total_cost ~costs r in
  checkb "ALG cheaper than LRU under SLA" true (cost alg < cost lru)

let test_alg_linear_equal_weights_reasonable () =
  (* with identical linear costs ALG has no cost signal to exploit;
     sanity: it stays within 2x of LRU's misses on a zipf trace *)
  let costs = [| Cf.linear ~slope:1.0 () |] in
  let t =
    Workloads.generate ~seed:6 ~length:2000
      [ Workloads.tenant (Workloads.Zipf { pages = 40; skew = 0.9 }) ]
  in
  let alg = Engine.run ~k:10 ~costs Alg.policy t in
  let lru = Engine.run ~k:10 ~costs Ccache_policies.Lru.policy t in
  checkb "within 2x of LRU" true
    (Engine.misses alg <= 2 * Engine.misses lru)

let test_alg_variant_names () =
  checkb "default" true (Ccache_sim.Policy.name Alg.policy = "alg-discrete");
  checkb "analytic" true
    (Ccache_sim.Policy.name Alg.analytic = "alg-discrete[analytic]");
  checkb "nobump" true (Ccache_sim.Policy.name Alg.no_bump = "alg-discrete[nobump]");
  checkb "nosubtract" true
    (Ccache_sim.Policy.name Alg.no_subtract = "alg-discrete[nosubtract]")

let test_alg_ablations_run_and_differ () =
  let costs = int_costs 3 in
  let t = random_trace ~seed:77 ~users:3 ~pages:30 ~len:1500 in
  let full = Engine.run ~k:8 ~costs Alg.policy t in
  let nosub = Engine.run ~k:8 ~costs Alg.no_subtract t in
  checkb "ablation changes behaviour" true
    (Engine.misses full <> Engine.misses nosub
     || full.Engine.misses_per_user <> nosub.Engine.misses_per_user)

(* ------------------------------------------------------------------ *)
(* fast = reference equivalence                                        *)
(* ------------------------------------------------------------------ *)

let fast_equals_reference =
  QCheck.Test.make ~name:"alg-fast identical to reference (integer costs)"
    ~count:60
    QCheck.(triple (int_range 1 24) (int_range 1 4) small_nat)
    (fun (k, users, seed) ->
      let costs = int_costs users in
      let t = random_trace ~seed:(seed + 1) ~users ~pages:20 ~len:400 in
      let a, la = Engine.run_logged ~k ~costs Alg.policy t in
      let b, lb = Engine.run_logged ~k ~costs Fast.policy t in
      a.Engine.misses_per_user = b.Engine.misses_per_user
      && a.Engine.evictions_per_user = b.Engine.evictions_per_user
      && List.length la = List.length lb
      && List.for_all2
           (fun x y ->
             match (x, y) with
             | Engine.Miss_evict { victim = v1; _ }, Engine.Miss_evict { victim = v2; _ }
               ->
                 Page.equal v1 v2
             | Engine.Hit _, Engine.Hit _ | Engine.Miss_insert _, Engine.Miss_insert _
               ->
                 true
             | _ -> false)
           la lb)

let fast_equals_reference_flush =
  QCheck.Test.make ~name:"alg-fast identical under flush" ~count:30
    QCheck.(pair (int_range 2 16) small_nat)
    (fun (k, seed) ->
      let costs = int_costs 2 in
      let t = random_trace ~seed:(seed + 100) ~users:2 ~pages:15 ~len:200 in
      let a = Engine.run ~flush:true ~k ~costs Alg.policy t in
      let b = Engine.run ~flush:true ~k ~costs Fast.policy t in
      a.Engine.evictions_per_user = b.Engine.evictions_per_user)

(* ALG-CONT makes the same decisions as the engine-driven policy *)
let cont_equals_discrete =
  QCheck.Test.make ~name:"alg-cont mirrors alg-discrete" ~count:40
    QCheck.(triple (int_range 1 16) (int_range 1 3) small_nat)
    (fun (k, users, seed) ->
      let costs = int_costs users in
      let t = random_trace ~seed:(seed + 7) ~users ~pages:18 ~len:300 in
      let r = Engine.run ~k ~costs Alg.policy t in
      let c = Cont.run ~flush:false ~k ~costs t in
      r.Engine.misses_per_user = c.Cont.misses_per_user
      && r.Engine.final_cache = c.Cont.result_cache)

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)
(* ------------------------------------------------------------------ *)

let invariants_hold =
  QCheck.Test.make ~name:"invariants hold on random traces (flushed)" ~count:40
    QCheck.(quad (int_range 1 16) (int_range 1 3) (int_range 0 1) small_nat)
    (fun (k, users, mode, seed) ->
      let costs = int_costs users in
      let mode = if mode = 0 then Cf.Discrete else Cf.Analytic in
      let t = random_trace ~seed:(seed + 13) ~users ~pages:15 ~len:250 in
      let _, report = Inv.run_and_check ~mode ~flush:true ~k ~costs t in
      Inv.ok report)

let test_invariants_unflushed_live_form () =
  let costs = int_costs 2 in
  let t = random_trace ~seed:42 ~users:2 ~pages:20 ~len:500 in
  let _, report = Inv.run_and_check ~flush:false ~k:8 ~costs t in
  checkb "live-form invariants hold" true (Inv.ok report)

let test_invariants_report_fields () =
  let costs = int_costs 1 in
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1; p 0 0; p 0 2 ] in
  let run, report = Inv.run_and_check ~flush:true ~k:2 ~costs t in
  checki "intervals = requests" 4 report.Inv.checked_intervals;
  checkb "no failures" true (Inv.ok report);
  (* y only increases at evictions *)
  let evictions = Array.fold_left (fun acc v -> if v > 0.0 then acc + 1 else acc) 0 run.Cont.y in
  checkb "y positive exactly at evictions" true (evictions >= 1)

(* the checker actually detects violations: corrupt a run's y *)
let test_invariants_detect_corruption () =
  let costs = int_costs 1 in
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1; p 0 0; p 0 2; p 0 1 ] in
  let run = Cont.run ~flush:true ~k:2 ~costs t in
  (* negate one y entry: breaks (1c) and downstream conditions *)
  let broken = ref false in
  Array.iteri
    (fun i v ->
      if (not !broken) && v > 0.0 then begin
        run.Cont.y.(i) <- -.v;
        broken := true
      end)
    run.Cont.y;
  checkb "corruption detected" false (Inv.ok (Inv.check run))

(* ------------------------------------------------------------------ *)
(* Windowed variant                                                    *)
(* ------------------------------------------------------------------ *)

let test_windowed_matches_plain_within_first_window () =
  (* before the first boundary the variant is the plain algorithm *)
  let costs = int_costs 2 in
  let t = random_trace ~seed:91 ~users:2 ~pages:20 ~len:200 in
  let plain = Engine.run ~k:8 ~costs Alg.policy t in
  let windowed =
    Engine.run ~k:8 ~costs (Ccache_core.Alg_windowed.make ~window:10_000 ()) t
  in
  checkb "identical within one window" true
    (plain.Engine.misses_per_user = windowed.Engine.misses_per_user)

let test_windowed_resets_change_behaviour () =
  let costs = [| Cf.monomial ~beta:2.0 (); Cf.monomial ~beta:2.0 () |] in
  let t = random_trace ~seed:92 ~users:2 ~pages:30 ~len:2000 in
  let plain = Engine.run ~k:8 ~costs Alg.policy t in
  let windowed =
    Engine.run ~k:8 ~costs (Ccache_core.Alg_windowed.make ~window:100 ()) t
  in
  checkb "resets alter decisions" true
    (plain.Engine.misses_per_user <> windowed.Engine.misses_per_user)

let test_windowed_validation () =
  Alcotest.check_raises "bad window"
    (Invalid_argument "Alg_windowed.make: window must be positive") (fun () ->
      ignore (Ccache_core.Alg_windowed.make ~window:0 ()))

(* ------------------------------------------------------------------ *)
(* Fractional (BBN) algorithm                                          *)
(* ------------------------------------------------------------------ *)

module Frac = Ccache_core.Alg_fractional

let test_fractional_feasible_and_deterministic () =
  let t = random_trace ~seed:55 ~users:2 ~pages:30 ~len:800 in
  let costs = [| Cf.linear ~slope:1.0 (); Cf.linear ~slope:4.0 () |] in
  let a = Frac.run ~k:8 ~costs t in
  let b = Frac.run ~k:8 ~costs t in
  checkb "deterministic" true (a = b);
  checkb "constraints stayed tight" true (a.Frac.max_overflow < 1e-6);
  checkb "movement non-negative" true (a.Frac.movement_cost >= 0.0);
  Array.iter
    (fun m -> checkb "misses non-negative" true (m >= 0.0))
    a.Frac.fractional_misses

let test_fractional_fits_in_cache_no_movement () =
  (* working set of 5 pages, k = 8: after compulsory misses nothing is
     ever evicted *)
  let t = random_trace ~seed:56 ~users:1 ~pages:5 ~len:300 in
  let costs = [| Cf.linear ~slope:1.0 () |] in
  let r = Frac.run ~k:8 ~costs t in
  checkb "no movement" true (r.Frac.movement_cost < 1e-9);
  checkb "only compulsory misses" true
    (Float.abs (r.Frac.fractional_misses.(0) -. 5.0) < 1e-9)

let test_fractional_beats_determinism_on_nemesis () =
  let k = 16 in
  let t =
    Workloads.generate ~seed:57 ~length:4000 (Workloads.lru_nemesis ~k)
  in
  let costs = [| Cf.linear ~slope:1.0 () |] in
  let frac = Frac.run ~k ~costs t in
  let lru = Engine.run ~k ~costs Ccache_policies.Lru.policy t in
  let belady = Engine.run ~k ~costs Ccache_policies.Belady.policy t in
  let opt = float_of_int (Engine.misses belady) in
  (* fractional within ln k + 1 of offline; LRU pays ~k times *)
  checkb "fractional near ln k" true
    (frac.Frac.movement_cost <= (log (float_of_int k) +. 1.5) *. opt);
  checkb "lru pays much more" true
    (float_of_int (Engine.misses lru) > 3.0 *. frac.Frac.movement_cost)

(* cross-library tie: the fractional run's primal is a feasible point
   of the unflushed (CP) the dual solver reasons about *)
let fractional_is_cp_feasible =
  QCheck.Test.make ~name:"fractional run is CP-feasible" ~count:25
    QCheck.(pair (int_range 2 10) small_nat)
    (fun (k, seed) ->
      let costs = [| Cf.linear ~slope:1.0 (); Cf.linear ~slope:3.0 () |] in
      let t = random_trace ~seed:(seed + 41) ~users:2 ~pages:(k + 6) ~len:150 in
      let r = Frac.run ~k ~costs t in
      let cp =
        Ccache_cp.Formulation.of_trace ~flush:false ~k ~cache_size:k ~costs t
      in
      (* map interval-start positions to variable indices *)
      let x = Array.make (Ccache_cp.Formulation.n_vars cp) 0.0 in
      Array.iteri
        (fun vi v ->
          match
            List.assoc_opt v.Ccache_cp.Formulation.start_pos r.Frac.solution
          with
          | Some mass -> x.(vi) <- mass
          | None -> ())
        cp.Ccache_cp.Formulation.vars;
      let feas = Ccache_cp.Formulation.check_feasible ~tol:1e-6 cp x in
      feas.Ccache_cp.Formulation.feasible)

let test_fractional_validation () =
  let t = random_trace ~seed:58 ~users:1 ~pages:5 ~len:10 in
  Alcotest.check_raises "bad k"
    (Invalid_argument "Alg_fractional.run: k must be positive") (fun () ->
      ignore (Frac.run ~k:0 ~costs:[| Cf.linear ~slope:1.0 () |] t));
  Alcotest.check_raises "costs mismatch"
    (Invalid_argument "Alg_fractional.run: costs/users mismatch") (fun () ->
      ignore (Frac.run ~k:2 ~costs:[||] t))

(* ------------------------------------------------------------------ *)
(* Theory                                                              *)
(* ------------------------------------------------------------------ *)

let test_theory_bounds () =
  checkf "cor12 beta=1" 8.0 (Theory.cor12_bound ~beta:1.0 ~k:8);
  checkf "cor12 beta=2" 256.0 (Theory.cor12_bound ~beta:2.0 ~k:8);
  checkf "thm14 curve" 4.0 (Theory.thm14_curve ~beta:2.0 ~k:8);
  let costs = [| Cf.monomial ~beta:2.0 (); Cf.linear ~slope:5.0 () |] in
  checkf "alpha of costs" 2.0 (Theory.alpha_of_costs costs)

let test_theory_thm11_rhs () =
  let costs = [| Cf.monomial ~beta:2.0 () |] in
  (* f(alpha k b) = (2*4*3)^2 = 576 *)
  checkf "rhs" 576.0 (Theory.thm11_rhs ~alpha:2.0 ~costs ~k:4 [| 3 |]);
  let check = Theory.check_thm11 ~alpha:2.0 ~costs ~k:4 ~a:[| 10 |] ~b:[| 3 |] () in
  checkb "holds" true check.Theory.holds;
  checkf "lhs" 100.0 check.Theory.lhs;
  let fails = Theory.check_thm11 ~alpha:2.0 ~costs ~k:4 ~a:[| 100 |] ~b:[| 1 |] () in
  checkb "violation detected" false fails.Theory.holds

let test_theory_thm13_rhs () =
  let costs = [| Cf.linear ~slope:1.0 () |] in
  (* stretch = 1 * 8/(8-4+1) = 1.6; rhs = 1.6 * 5 = 8 *)
  checkf "rhs" 8.0 (Theory.thm13_rhs ~alpha:1.0 ~costs ~k:8 ~h:4 [| 5 |]);
  Alcotest.check_raises "h > k"
    (Invalid_argument "Theory.thm13_rhs: need 0 < h <= k") (fun () ->
      ignore (Theory.thm13_rhs ~costs ~k:4 ~h:5 [| 1 |]))

let claim23_random =
  QCheck.Test.make ~name:"Claim 2.3 on random convex f and sequences" ~count:200
    QCheck.(pair (float_range 1.0 3.5) (list_of_size (Gen.int_range 1 25) (float_range 0.0 4.0)))
    (fun (beta, xs) ->
      let f = Cf.monomial ~beta () in
      let xs = Array.of_list xs in
      Theory.claim23_holds f xs && Theory.claim23_inner_holds f xs)

let claim23_piecewise =
  QCheck.Test.make ~name:"Claim 2.3 inner inequality for hinge costs" ~count:100
    QCheck.(pair (int_range 0 10) (list_of_size (Gen.int_range 1 20) (float_range 0.0 3.0)))
    (fun (tol, xs) ->
      let f = Ccache_cost.Sla.hinge ~tolerance:(float_of_int tol) ~penalty_rate:2.0 in
      Theory.claim23_inner_holds f (Array.of_list xs))

(* Regression: seed 777, trial 1156 of the E7b stress test, pinned
   bit-exact.  A *real-valued* sequence against a hinge cost violates
   Claim 2.3 under the integer-restricted alpha: [Cf.alpha] for
   piecewise-linear costs is a supremum over integer sequences only
   (over the reals the ratio is unbounded near the kink).  This
   witness documents why E7b draws integer sequences for hinge costs;
   the claim must keep failing on it as stated, while the inner
   inequality (6) — which is domain-independent — and the
   integer-rounded witness must both hold. *)
let test_claim23_seed777_trial1156 () =
  let f =
    Ccache_cost.Sla.hinge ~tolerance:0x1.4p+2 (* 5 *)
      ~penalty_rate:0x1.172da369d9dc6p+2 (* 4.362160542841087 *)
  in
  let xs =
    [| 0x1.2486c8e4dd9abp-1; 0x1.0aecf0363115dp+2; 0x1.31dc1863aeffdp-1 |]
  in
  checkb "real-valued witness violates the integer-alpha claim" false
    (Theory.claim23_holds f xs);
  checkb "inner inequality still holds on the witness" true
    (Theory.claim23_inner_holds f xs);
  checkb "integer-rounded witness satisfies the claim" true
    (Theory.claim23_holds f (Array.map Float.round xs))

(* Theorem 1.1 holds end-to-end on random instances, with best-of as b *)
let thm11_end_to_end =
  QCheck.Test.make ~name:"Theorem 1.1 end-to-end on random traces" ~count:15
    QCheck.(pair (int_range 2 12) small_nat)
    (fun (k, seed) ->
      let costs = int_costs 2 in
      let t = random_trace ~seed:(seed + 31) ~users:2 ~pages:16 ~len:300 in
      let r = Engine.run ~k ~costs Alg.policy t in
      let off =
        Ccache_offline.Best_of.compute ~local_search_rounds:0 ~cache_size:k ~costs t
      in
      let check =
        Theory.check_thm11 ~costs ~k ~a:r.Engine.misses_per_user
          ~b:off.Ccache_offline.Best_of.misses_per_user ()
      in
      check.Theory.holds)

(* Theorem 1.3 end-to-end: random traces, offline restricted to h < k *)
let thm13_end_to_end =
  QCheck.Test.make ~name:"Theorem 1.3 end-to-end on random traces" ~count:12
    QCheck.(triple (int_range 4 12) (int_range 1 4) small_nat)
    (fun (k, h_off, seed) ->
      let h = Stdlib.max 1 (k - h_off) in
      let costs = int_costs 2 in
      let t = random_trace ~seed:(seed + 61) ~users:2 ~pages:16 ~len:250 in
      let r = Engine.run ~k ~costs Alg.policy t in
      let off =
        Ccache_offline.Best_of.compute ~local_search_rounds:0 ~cache_size:h ~costs t
      in
      let check =
        Theory.check_thm13 ~costs ~k ~h ~a:r.Engine.misses_per_user
          ~b:off.Ccache_offline.Best_of.misses_per_user ()
      in
      check.Theory.holds)

(* invariants also hold on phased/churn traces (working-set resets) *)
let invariants_hold_on_churn =
  QCheck.Test.make ~name:"invariants hold on churn traces" ~count:10
    QCheck.(pair (int_range 4 20) small_nat)
    (fun (k, seed) ->
      let day =
        [
          Workloads.tenant (Workloads.Zipf { pages = 20; skew = 0.9 });
          Workloads.tenant (Workloads.Uniform { pages = 15 });
        ]
      in
      let phases = Workloads.day_night ~day ~night_tenants:1 ~phase_length:120 ~cycles:2 in
      let t = Workloads.generate_phases ~seed:(seed + 3) phases in
      let costs = int_costs 2 in
      let _, report = Inv.run_and_check ~flush:true ~k ~costs t in
      Inv.ok report)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ccache_core"
    [
      ( "budget_state",
        [
          Alcotest.test_case "touch/min" `Quick test_budget_touch_and_min;
          Alcotest.test_case "evict updates" `Quick test_budget_evict_updates;
          Alcotest.test_case "tie break" `Quick test_budget_min_tie_break;
          Alcotest.test_case "analytic mode" `Quick test_budget_analytic_mode;
          Alcotest.test_case "errors" `Quick test_budget_errors;
        ] );
      ( "alg_discrete",
        [
          Alcotest.test_case "evicts cheap user" `Quick test_alg_prefers_evicting_cheap_user;
          Alcotest.test_case "protects SLA cliff" `Quick test_alg_protects_user_near_cliff;
          Alcotest.test_case "linear sanity" `Quick test_alg_linear_equal_weights_reasonable;
          Alcotest.test_case "variant names" `Quick test_alg_variant_names;
          Alcotest.test_case "ablations differ" `Quick test_alg_ablations_run_and_differ;
        ] );
      ( "equivalence",
        qsuite [ fast_equals_reference; fast_equals_reference_flush; cont_equals_discrete ] );
      ( "invariants",
        [
          Alcotest.test_case "unflushed live form" `Quick test_invariants_unflushed_live_form;
          Alcotest.test_case "report fields" `Quick test_invariants_report_fields;
          Alcotest.test_case "detects corruption" `Quick test_invariants_detect_corruption;
        ]
        @ qsuite [ invariants_hold ] );
      ( "windowed",
        [
          Alcotest.test_case "plain within first window" `Quick
            test_windowed_matches_plain_within_first_window;
          Alcotest.test_case "resets change behaviour" `Quick
            test_windowed_resets_change_behaviour;
          Alcotest.test_case "validation" `Quick test_windowed_validation;
        ] );
      ( "fractional",
        [
          Alcotest.test_case "feasible + deterministic" `Quick
            test_fractional_feasible_and_deterministic;
          Alcotest.test_case "fits: no movement" `Quick
            test_fractional_fits_in_cache_no_movement;
          Alcotest.test_case "beats determinism on nemesis" `Quick
            test_fractional_beats_determinism_on_nemesis;
          Alcotest.test_case "validation" `Quick test_fractional_validation;
        ]
        @ qsuite [ fractional_is_cp_feasible ] );
      ( "theory",
        [
          Alcotest.test_case "bounds" `Quick test_theory_bounds;
          Alcotest.test_case "thm11 rhs" `Quick test_theory_thm11_rhs;
          Alcotest.test_case "thm13 rhs" `Quick test_theory_thm13_rhs;
          Alcotest.test_case "claim 2.3 seed777/trial1156 regression" `Quick
            test_claim23_seed777_trial1156;
        ]
        @ qsuite
            [
              claim23_random; claim23_piecewise; thm11_end_to_end;
              thm13_end_to_end; invariants_hold_on_churn;
            ] );
    ]
