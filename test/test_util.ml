(* Unit and property tests for ccache_util. *)

module Prng = Ccache_util.Prng
module Stats = Ccache_util.Stats
module Fc = Ccache_util.Float_cmp
module Dlist = Ccache_util.Dlist
module Heap = Ccache_util.Indexed_heap
module Itbl = Ccache_util.Int_tbl
module Tbl = Ccache_util.Ascii_table

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:1 in
  for _ = 1 to 100 do
    checkb "same stream" true (Prng.float a = Prng.float b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let xs = Array.init 16 (fun _ -> Prng.float a) in
  let ys = Array.init 16 (fun _ -> Prng.float b) in
  checkb "different seeds differ" true (xs <> ys)

let test_prng_split_independent () =
  let parent = Prng.create ~seed:7 in
  let child = Prng.split parent in
  let c1 = Array.init 8 (fun _ -> Prng.float child) in
  (* splitting again gives a different child stream *)
  let child2 = Prng.split parent in
  let c2 = Array.init 8 (fun _ -> Prng.float child2) in
  checkb "children differ" true (c1 <> c2)

let test_prng_int_range () =
  let t = Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Prng.int t 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_prng_float_range () =
  let t = Prng.create ~seed:4 in
  for _ = 1 to 10_000 do
    let v = Prng.float t in
    checkb "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_uniformity () =
  let t = Prng.create ~seed:5 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Prng.int t 10 in
    counts.(b) <- counts.(b) + 1
  done;
  Array.iter
    (fun c ->
      let freq = float_of_int c /. float_of_int n in
      checkb "roughly uniform" true (freq > 0.08 && freq < 0.12))
    counts

let test_prng_bernoulli () =
  let t = Prng.create ~seed:6 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Prng.bernoulli t ~p:0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  checkb "p=0.3" true (Float.abs (freq -. 0.3) < 0.02)

let test_prng_categorical () =
  let t = Prng.create ~seed:8 in
  let weights = [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 40_000 do
    let i = Prng.categorical t ~weights in
    counts.(i) <- counts.(i) + 1
  done;
  checki "zero-weight bucket empty" 0 counts.(1);
  let ratio = float_of_int counts.(2) /. float_of_int counts.(0) in
  checkb "3:1 ratio" true (ratio > 2.7 && ratio < 3.3)

let test_prng_exponential_mean () =
  let t = Prng.create ~seed:9 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.exponential t ~rate:2.0
  done;
  let mean = !acc /. float_of_int n in
  checkb "mean ~ 1/rate" true (Float.abs (mean -. 0.5) < 0.02)

let test_prng_geometric () =
  let t = Prng.create ~seed:10 in
  checki "p=1 is 0" 0 (Prng.geometric t ~p:1.0);
  for _ = 1 to 1000 do
    checkb "non-negative" true (Prng.geometric t ~p:0.4 >= 0)
  done

let test_prng_shuffle_permutation () =
  let t = Prng.create ~seed:11 in
  let a = Array.init 50 (fun i -> i) in
  let b = Prng.shuffle t a in
  checkb "original untouched" true (a = Array.init 50 (fun i -> i));
  let sorted = Array.copy b in
  Array.sort compare sorted;
  checkb "is a permutation" true (sorted = a)

let test_prng_copy () =
  let a = Prng.create ~seed:5 in
  ignore (Prng.float a);
  let b = Prng.copy a in
  checkb "copy continues identically" true
    (Array.init 8 (fun _ -> Prng.float a) = Array.init 8 (fun _ -> Prng.float b))

let test_prng_sample_distinct () =
  let t = Prng.create ~seed:12 in
  let s = Prng.sample_distinct t ~bound:100 ~count:30 in
  checki "count" 30 (Array.length s);
  let uniq = List.sort_uniq compare (Array.to_list s) in
  checki "distinct" 30 (List.length uniq);
  List.iter (fun v -> checkb "in bound" true (v >= 0 && v < 100)) uniq;
  (* dense case takes the shuffle path *)
  let d = Prng.sample_distinct t ~bound:10 ~count:10 in
  checki "all of them" 10 (List.length (List.sort_uniq compare (Array.to_list d)))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_mean_var () =
  checkf "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  checkf "variance" 1.0 (Stats.variance [| 1.0; 2.0; 3.0 |]);
  checkf "singleton variance" 0.0 (Stats.variance [| 5.0 |]);
  checkf "stddev" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |])

let test_stats_minmax () =
  checkf "min" (-2.0) (Stats.min [| 3.0; -2.0; 1.0 |]);
  checkf "max" 3.0 (Stats.max [| 3.0; -2.0; 1.0 |])

let test_stats_quantile () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf "q0" 1.0 (Stats.quantile a 0.0);
  checkf "q1" 4.0 (Stats.quantile a 1.0);
  checkf "median interpolates" 2.5 (Stats.median a);
  checkf "q25" 1.75 (Stats.quantile a 0.25);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Stats.quantile: q outside [0,1]") (fun () ->
      ignore (Stats.quantile a 1.5))

let test_stats_geometric_mean () =
  checkf "gm" 2.0 (Stats.geometric_mean [| 1.0; 2.0; 4.0 |] ** 3.0 /. 4.0 *. 1.0
                   |> fun _ -> Stats.geometric_mean [| 2.0; 2.0 |]);
  checkb "gm of 1,4 is 2" true
    (Fc.approx_eq (Stats.geometric_mean [| 1.0; 4.0 |]) 2.0)

let test_stats_linear_fit () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  let slope, intercept = Stats.linear_fit ~xs ~ys in
  checkf "slope" 2.0 slope;
  checkf "intercept" 1.0 intercept

let test_stats_loglog_slope () =
  let xs = [| 1.0; 2.0; 4.0; 8.0 |] in
  let ys = Array.map (fun x -> 3.0 *. (x ** 1.7)) xs in
  checkb "power-law exponent" true
    (Fc.approx_eq ~tol:1e-6 (Stats.loglog_slope ~xs ~ys) 1.7)

let test_stats_correlation () =
  let xs = [| 1.0; 2.0; 3.0 |] in
  checkf "perfect" 1.0 (Stats.correlation ~xs ~ys:xs);
  checkf "anti" (-1.0) (Stats.correlation ~xs ~ys:(Array.map (fun x -> -.x) xs))

let test_stats_histogram () =
  let counts = Stats.histogram ~bins:4 ~lo:0.0 ~hi:4.0 [| 0.5; 1.5; 1.6; 3.9; -1.0; 9.0 |] in
  checkb "clamped ends" true (counts = [| 2; 2; 0; 2 |])

let test_stats_summary () =
  let s = Stats.summarize (Array.init 101 (fun i -> float_of_int i)) in
  checki "n" 101 s.Stats.n;
  checkf "median" 50.0 s.Stats.median;
  checkf "p95" 95.0 s.Stats.p95

(* ------------------------------------------------------------------ *)
(* Float_cmp                                                           *)
(* ------------------------------------------------------------------ *)

let test_float_cmp () =
  checkb "eq" true (Fc.approx_eq 1.0 (1.0 +. 1e-12));
  checkb "neq" false (Fc.approx_eq 1.0 1.1);
  checkb "le" true (Fc.approx_le 1.0 (1.0 -. 1e-12));
  checkb "ge" true (Fc.approx_ge (1.0 -. 1e-12) 1.0);
  checkb "zero" true (Fc.approx_zero 1e-12);
  checkf "rel err" 0.1 (Fc.relative_error ~expected:10.0 ~measured:11.0);
  checkf "clamp" 2.0 (Fc.clamp ~lo:0.0 ~hi:2.0 5.0)

(* ------------------------------------------------------------------ *)
(* Dlist                                                               *)
(* ------------------------------------------------------------------ *)

let test_dlist_basic () =
  let l = Dlist.create () in
  checkb "empty" true (Dlist.is_empty l);
  let n1 = Dlist.node 1 and n2 = Dlist.node 2 and n3 = Dlist.node 3 in
  Dlist.push_front l n1;
  Dlist.push_front l n2;
  Dlist.push_back l n3;
  (* order: 2 1 3 *)
  checkb "to_list" true (Dlist.to_list l = [ 2; 1; 3 ]);
  checki "length" 3 (Dlist.length l);
  Dlist.move_to_front l n3;
  checkb "moved" true (Dlist.to_list l = [ 3; 2; 1 ]);
  Dlist.move_to_back l n3;
  checkb "moved back" true (Dlist.to_list l = [ 2; 1; 3 ]);
  Dlist.remove l n1;
  checkb "removed" true (Dlist.to_list l = [ 2; 3 ]);
  checkb "invariant" true (Dlist.invariant_ok l);
  (* removed node can be reinserted *)
  Dlist.push_front l n1;
  checkb "reinserted" true (Dlist.to_list l = [ 1; 2; 3 ])

let test_dlist_pop () =
  let l = Dlist.create () in
  checkb "pop empty" true (Dlist.pop_front l = None);
  let n = Dlist.node 42 in
  Dlist.push_back l n;
  (match Dlist.pop_back l with
  | Some m -> checki "popped" 42 (Dlist.value m)
  | None -> Alcotest.fail "expected node");
  checkb "now empty" true (Dlist.is_empty l)

let test_dlist_cross_list_guard () =
  let a = Dlist.create () and b = Dlist.create () in
  let n = Dlist.node 1 in
  Dlist.push_front a n;
  Alcotest.check_raises "cross-list remove"
    (Invalid_argument "Dlist.remove: node not in this list") (fun () ->
      Dlist.remove b n);
  Alcotest.check_raises "double insert"
    (Invalid_argument "Dlist.push_front: node already in a list") (fun () ->
      Dlist.push_front b n)

(* Model-based qcheck: a random op sequence against a list model. *)
let dlist_model_test =
  QCheck.Test.make ~name:"dlist matches list model" ~count:200
    QCheck.(list (pair (int_range 0 3) small_nat))
    (fun ops ->
      let l = Dlist.create () in
      let nodes = Hashtbl.create 16 in
      let model = ref [] in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 when not (Hashtbl.mem nodes v) ->
              let n = Dlist.node v in
              Hashtbl.add nodes v n;
              Dlist.push_front l n;
              model := v :: !model
          | 1 when not (Hashtbl.mem nodes v) ->
              let n = Dlist.node v in
              Hashtbl.add nodes v n;
              Dlist.push_back l n;
              model := !model @ [ v ]
          | 2 -> (
              match Hashtbl.find_opt nodes v with
              | Some n ->
                  Dlist.remove l n;
                  Hashtbl.remove nodes v;
                  model := List.filter (fun x -> x <> v) !model
              | None -> ())
          | _ -> (
              match Hashtbl.find_opt nodes v with
              | Some n ->
                  Dlist.move_to_front l n;
                  model := v :: List.filter (fun x -> x <> v) !model
              | None -> ()))
        ops;
      Dlist.to_list l = !model && Dlist.invariant_ok l)

(* ------------------------------------------------------------------ *)
(* Indexed_heap                                                        *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = Heap.create () in
  checkb "empty" true (Heap.is_empty h);
  Heap.add h ~key:1 ~prio:5.0;
  Heap.add h ~key:2 ~prio:3.0;
  Heap.add h ~key:3 ~prio:4.0;
  checkb "peek min" true (Heap.peek h = Some (2, 3.0));
  Heap.update h ~key:2 ~prio:10.0;
  checkb "after increase" true (Heap.peek h = Some (3, 4.0));
  Heap.update h ~key:1 ~prio:0.5;
  checkb "after decrease" true (Heap.peek h = Some (1, 0.5));
  Heap.remove h 1;
  checkb "after remove" true (Heap.peek h = Some (3, 4.0));
  checki "length" 2 (Heap.length h);
  checkb "invariant" true (Heap.invariant_ok h)

let test_heap_tie_break () =
  let h = Heap.create () in
  Heap.add h ~key:9 ~prio:1.0;
  Heap.add h ~key:3 ~prio:1.0;
  Heap.add h ~key:7 ~prio:1.0;
  checkb "smallest key wins ties" true (fst (Heap.peek_exn h) = 3)

let test_heap_errors () =
  let h = Heap.create () in
  Heap.add h ~key:1 ~prio:1.0;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Indexed_heap.add: duplicate key") (fun () ->
      Heap.add h ~key:1 ~prio:2.0);
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Heap.priority h 99))

let test_heap_set_upsert () =
  let h = Heap.create () in
  Heap.set h ~key:1 ~prio:5.0;
  checkb "insert path" true (Heap.peek h = Some (1, 5.0));
  Heap.set h ~key:1 ~prio:2.0;
  checkb "update path" true (Heap.peek h = Some (1, 2.0));
  checki "no duplicate" 1 (Heap.length h)

let test_heap_pop_order () =
  let h = Heap.create () in
  let vals = [ 5.0; 1.0; 4.0; 2.0; 3.0 ] in
  List.iteri (fun i p -> Heap.add h ~key:i ~prio:p) vals;
  let popped = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, p) ->
        popped := p :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  checkb "ascending" true (List.rev !popped = [ 1.0; 2.0; 3.0; 4.0; 5.0 ])

let heap_model_test =
  QCheck.Test.make ~name:"heap matches sorted-assoc model" ~count:200
    QCheck.(list (pair (int_range 0 2) (pair (int_range 0 20) (float_range 0.0 100.0))))
    (fun ops ->
      let h = Heap.create () in
      let model : (int, float) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (op, (k, p)) ->
          match op with
          | 0 ->
              if not (Heap.mem h k) then begin
                Heap.add h ~key:k ~prio:p;
                Hashtbl.replace model k p
              end
          | 1 ->
              if Heap.mem h k then begin
                Heap.update h ~key:k ~prio:p;
                Hashtbl.replace model k p
              end
          | _ ->
              if Heap.mem h k then begin
                Heap.remove h k;
                Hashtbl.remove model k
              end)
        ops;
      if not (Heap.invariant_ok h) then false
      else if Hashtbl.length model = 0 then Heap.is_empty h
      else begin
        let min_model =
          Hashtbl.fold
            (fun k p acc ->
              match acc with
              | None -> Some (k, p)
              | Some (bk, bp) ->
                  if p < bp || (p = bp && k < bk) then Some (k, p) else acc)
            model None
        in
        Heap.peek h = min_model
      end)

(* Drain equivalence against a naive sorted-list model: the heap's pop
   sequence must equal the model sorted by (priority, key) — this pins
   the deterministic tie-break, not just the minimum.  Ops go through
   [set] (the upsert the hot path uses), so unchanged-priority re-sets
   and both sift directions are exercised; priorities are drawn from a
   handful of values to force duplicates. *)
let heap_drain_model_test =
  QCheck.Test.make ~name:"heap drain equals sorted-list model" ~count:200
    QCheck.(
      list (pair (int_range 0 4) (pair (int_range 0 15) (int_range 0 5))))
    (fun ops ->
      let h = Heap.create ~capacity:2 () in
      let model : (int, float) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (op, (k, p)) ->
          let p = float_of_int p in
          match op with
          | 0 | 1 | 2 ->
              Heap.set h ~key:k ~prio:p;
              Hashtbl.replace model k p
          | 3 ->
              if Heap.mem h k then begin
                Heap.remove h k;
                Hashtbl.remove model k
              end
          | _ ->
              if Heap.mem h k then begin
                (* priority must reflect the last write *)
                if Heap.priority h k <> Hashtbl.find model k then
                  QCheck.Test.fail_report "priority disagrees with model"
              end)
        ops;
      if not (Heap.invariant_ok h) then false
      else begin
        let expected =
          Hashtbl.fold (fun k p acc -> (k, p) :: acc) model []
          |> List.sort (fun (k1, p1) (k2, p2) ->
                 match Float.compare p1 p2 with
                 | 0 -> Int.compare k1 k2
                 | c -> c)
        in
        (if not (Heap.is_empty h) then
           let mk = Heap.min_key_exn h and mp = Heap.min_prio_exn h in
           if Some (mk, mp) <> Heap.peek h then
             QCheck.Test.fail_report "min_key/min_prio disagree with peek");
        let drained = ref [] in
        let rec go () =
          match Heap.pop h with
          | Some kp ->
              drained := kp :: !drained;
              go ()
          | None -> ()
        in
        go ();
        List.rev !drained = expected
      end)

(* ------------------------------------------------------------------ *)
(* Int_tbl                                                             *)
(* ------------------------------------------------------------------ *)

let test_int_tbl_basic () =
  let t = Itbl.create () in
  checki "empty" 0 (Itbl.length t);
  Itbl.set t 5 50;
  Itbl.set t (-7) 70;
  Itbl.set t 5 51;
  checki "replace keeps one" 2 (Itbl.length t);
  checki "find" 51 (Itbl.find_exn t 5);
  checki "negative key" 70 (Itbl.find_exn t (-7));
  checki "default" 9 (Itbl.find_default t ~default:9 99);
  checkb "remove hit" true (Itbl.remove t 5);
  checkb "remove miss" false (Itbl.remove t 5);
  checkb "mem" true (Itbl.mem t (-7));
  Itbl.clear t;
  checki "cleared" 0 (Itbl.length t);
  checkb "invariant" true (Itbl.invariant_ok t)

let test_int_tbl_min_int_rejected () =
  let t = Itbl.create () in
  Alcotest.check_raises "reserved key"
    (Invalid_argument "Int_tbl: key min_int is reserved") (fun () ->
      Itbl.set t min_int 1)

(* Model test vs Hashtbl: exercises growth from minimum capacity and
   backward-shift deletion under heavy key reuse (keys from a small
   range collide in probe runs once the table folds them down). *)
let int_tbl_model_test =
  QCheck.Test.make ~name:"int_tbl matches Hashtbl model" ~count:300
    QCheck.(
      list (pair (int_range 0 2) (pair (int_range (-25) 25) small_nat)))
    (fun ops ->
      let t = Itbl.create ~capacity:1 () in
      let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
      List.for_all
        (fun (op, (k, v)) ->
          (match op with
          | 0 | 1 ->
              Itbl.set t k v;
              Hashtbl.replace model k v
          | _ ->
              let removed = Itbl.remove t k in
              if removed <> Hashtbl.mem model k then
                QCheck.Test.fail_report "remove result disagrees";
              Hashtbl.remove model k);
          Itbl.invariant_ok t
          && Itbl.length t = Hashtbl.length model
          && Hashtbl.fold
               (fun k v acc -> acc && Itbl.find_default t ~default:(v + 1) k = v)
               model true)
        ops)

(* ------------------------------------------------------------------ *)
(* Ascii_table                                                         *)
(* ------------------------------------------------------------------ *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_table_render_plain () =
  let t = Tbl.create ~title:"demo" ~aligns:[ Tbl.Left; Tbl.Right ] [ "a"; "b" ] in
  Tbl.add_row t [ "xx"; "1" ];
  Tbl.add_row t [ "y"; "22" ];
  let s = Tbl.to_string t in
  checkb "has title" true (String.length s > 4 && String.sub s 0 4 = "demo");
  checkb "contains cell" true (contains ~needle:"xx" s);
  checkb "right-aligned number" true (contains ~needle:" 1 |" s);
  let md = Tbl.to_markdown t in
  checkb "markdown has pipes" true (String.contains md '|');
  checkb "markdown align row" true (contains ~needle:":-" md)

let test_table_errors () =
  let t = Tbl.create [ "a"; "b" ] in
  Alcotest.check_raises "row width"
    (Invalid_argument "Ascii_table.add_row: row width mismatch") (fun () ->
      Tbl.add_row t [ "only-one" ])

let test_table_cells () =
  checkb "int" true (Tbl.cell_int 42 = "42");
  checkb "pct" true (Tbl.cell_pct 0.5 = "50.0%");
  checkb "ratio" true (Tbl.cell_ratio 1.23456 = "1.235")

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ccache_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "bernoulli" `Quick test_prng_bernoulli;
          Alcotest.test_case "categorical" `Quick test_prng_categorical;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "geometric" `Quick test_prng_geometric;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "sample distinct" `Quick test_prng_sample_distinct;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/var" `Quick test_stats_mean_var;
          Alcotest.test_case "min/max" `Quick test_stats_minmax;
          Alcotest.test_case "quantile" `Quick test_stats_quantile;
          Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean;
          Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
          Alcotest.test_case "loglog slope" `Quick test_stats_loglog_slope;
          Alcotest.test_case "correlation" `Quick test_stats_correlation;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
      ("float_cmp", [ Alcotest.test_case "all" `Quick test_float_cmp ]);
      ( "dlist",
        [
          Alcotest.test_case "basic" `Quick test_dlist_basic;
          Alcotest.test_case "pop" `Quick test_dlist_pop;
          Alcotest.test_case "guards" `Quick test_dlist_cross_list_guard;
        ]
        @ qsuite [ dlist_model_test ] );
      ( "indexed_heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "tie break" `Quick test_heap_tie_break;
          Alcotest.test_case "errors" `Quick test_heap_errors;
          Alcotest.test_case "set upsert" `Quick test_heap_set_upsert;
          Alcotest.test_case "pop order" `Quick test_heap_pop_order;
        ]
        @ qsuite [ heap_model_test; heap_drain_model_test ] );
      ( "int_tbl",
        [
          Alcotest.test_case "basic" `Quick test_int_tbl_basic;
          Alcotest.test_case "min_int reserved" `Quick
            test_int_tbl_min_int_rejected;
        ]
        @ qsuite [ int_tbl_model_test ] );
      ( "ascii_table",
        [
          Alcotest.test_case "render" `Quick test_table_render_plain;
          Alcotest.test_case "errors" `Quick test_table_errors;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
    ]
