(* Golden tests for tools/lint/ccache_lint.exe.

   The fixtures in lint_fixtures/lib contain exactly one violation per
   rule plus one suppressed violation ([@lint.allow] inline, a floating
   whole-file allow, or an allowlist entry).  We run the real binary
   and assert the exact diagnostic set, the exit codes, and the
   --format=github rendering. *)

let exe = Filename.concat ".." (Filename.concat "tools" (Filename.concat "lint" "ccache_lint.exe"))

let check_strings = Alcotest.(check (list string))
let checki = Alcotest.(check int)

(* Run [cmd], capturing stdout lines and the exit code. *)
let run_capture cmd =
  let out = Filename.temp_file "ccache_lint_test" ".out" in
  let code = Sys.command (cmd ^ " > " ^ Filename.quote out ^ " 2> /dev/null") in
  let ic = open_in out in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove out;
  (code, List.rev !lines)

let lint args = run_capture (Filename.quote exe ^ " " ^ args)

let golden =
  [
    "lint_fixtures/lib/bad_capture.ml:7:46: [domain-capture] closure passed \
     to Domain_pool.parallel_iter mutates ref 'total' bound outside the \
     closure: an unsynchronised cross-domain write (data race); accumulate \
     per-task results and combine after await instead";
    "lint_fixtures/lib/bad_float_eq.ml:3:12: [float-eq] exact float \
     comparison (=) on a float operand; use Ccache_util.Float_cmp (approx_eq \
     / approx_zero) or justify with [@lint.allow \"float-eq\"]";
    "lint_fixtures/lib/bad_print.ml:3:13: [no-print-in-lib] direct stdout \
     print (print_endline) in lib/; route output through Report / \
     Ascii_table so suite reports stay byte-diffable";
    "lint_fixtures/lib/bad_random.ml:3:13: [no-stdlib-random] reference to \
     Stdlib.Random; draw from a seeded Ccache_util.Prng stream instead so \
     output is reproducible at any --jobs width";
    "lint_fixtures/lib/bad_wall_clock.ml:3:13: [no-wall-clock] wall-clock \
     read (Unix.gettimeofday) in lib/; take timestamps through the \
     Ccache_obs.Clock capability so outputs stay deterministic and tests can \
     substitute clocks";
    "lint_fixtures/lib/no_sibling.ml:1:0: [mli-coverage] lib/ module has no \
     interface: add a sibling .mli documenting the public API (and its \
     tolerances/contracts)";
  ]

let test_fixture_diagnostics () =
  let code, lines =
    lint "--allowlist lint_fixtures/allowlist.txt lint_fixtures"
  in
  checki "exit code signals findings" 1 code;
  check_strings "exact diagnostic set (one per rule)" golden lines

let test_clean_tree_passes () =
  let code, lines = lint "lint_fixtures/clean" in
  checki "clean dir exits 0" 0 code;
  check_strings "no output on a clean tree" [] lines

let starts_with prefix l =
  String.length l >= String.length prefix
  && String.sub l 0 (String.length prefix) = prefix

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_suppressions_required () =
  (* Without the allowlist both allowlisted fixtures' findings
     reappear — including the parse-error one, which goes through
     suppression like any other rule; the inline/floating suppressions
     must still hold. *)
  let code, lines = lint "lint_fixtures" in
  checki "still non-zero" 1 code;
  checki "exactly two extra findings vs golden" (List.length golden + 2)
    (List.length lines);
  Alcotest.(check bool)
    "extra finding is the allowlisted one" true
    (List.exists
       (starts_with "lint_fixtures/lib/allowlisted_random.ml")
       lines);
  Alcotest.(check bool)
    "parse-error resurfaces without the allowlist" true
    (List.exists
       (fun l ->
         starts_with "lint_fixtures/parse/broken_allowlisted.ml" l
         && contains_sub l "[parse-error]")
       lines)

let test_github_format () =
  let code, lines =
    lint "--format=github --allowlist lint_fixtures/allowlist.txt lint_fixtures"
  in
  checki "exit code unchanged by format" 1 code;
  checki "same number of findings" (List.length golden) (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool)
        "workflow-command prefix" true
        (String.length l > 13 && String.sub l 0 13 = "::error file="))
    lines

let test_sarif_format () =
  let code, lines =
    lint "--format=sarif --allowlist lint_fixtures/allowlist.txt lint_fixtures"
  in
  checki "exit code unchanged by format" 1 code;
  let doc = String.concat "\n" lines in
  Alcotest.(check bool)
    "declares SARIF 2.1.0" true
    (contains_sub doc "\"version\": \"2.1.0\"");
  Alcotest.(check bool)
    "driver is ccache_lint" true
    (contains_sub doc "\"name\": \"ccache_lint\"");
  (* same findings as the text golden: one result object per line *)
  checki "one result per golden finding" (List.length golden)
    (List.length
       (List.filter (fun l -> contains_sub l "\"ruleId\":") lines));
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (rule ^ " has driver metadata") true
        (contains_sub doc ("{\"id\": \"" ^ rule ^ "\"")))
    [ "domain-capture"; "parse-error"; "no-wall-clock" ]

(* A path that cannot be read (here: a dangling symlink inside the
   scanned tree) must produce a one-line diagnostic and a non-zero
   exit, never an uncaught exception. *)
let test_unreadable_path () =
  let dir = Filename.temp_file "ccache_lint_dangling" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Unix.symlink (Filename.concat dir "nowhere") (Filename.concat dir "gone.ml");
  let err = Filename.temp_file "ccache_lint_test" ".err" in
  let code =
    Sys.command
      (Filename.quote exe ^ " " ^ Filename.quote dir ^ " > /dev/null 2> "
     ^ Filename.quote err)
  in
  let ic = open_in err in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove err;
  Sys.remove (Filename.concat dir "gone.ml");
  Unix.rmdir dir;
  checki "usage-style exit" 2 code;
  Alcotest.(check bool)
    "one clean ccache_lint diagnostic" true
    (match !lines with
    | [ l ] -> starts_with "ccache_lint:" l
    | _ -> false)

(* --cmt-root promotes domain-capture to the call-graph analysis: the
   transitive global write in bad_pool_transitive.ml (invisible to the
   parsetree heuristic — its closure contains no assignment) is
   caught, and covered files use the typed verdict. *)
let test_typed_domain_capture () =
  (* run from the build root so scanned paths match the build-relative
     source names recorded in the .cmt files *)
  let prefix = "cd .. && " in
  let cmd args = run_capture (prefix ^ "tools/lint/ccache_lint.exe " ^ args) in
  let code_h, lines_h = cmd "test/effects_fixtures" in
  checki "heuristic run exits 1 (direct captures)" 1 code_h;
  Alcotest.(check bool)
    "heuristic is blind to the transitive write" false
    (List.exists (fun l -> contains_sub l "bad_pool_transitive") lines_h);
  let code_t, lines_t =
    cmd "--cmt-root test/effects_fixtures test/effects_fixtures"
  in
  checki "typed run exits 1" 1 code_t;
  Alcotest.(check bool)
    "typed mode catches the transitive write" true
    (List.exists
       (fun l ->
         contains_sub l "bad_pool_transitive.ml"
         && contains_sub l "[domain-capture]"
         && contains_sub l "call-graph analysis")
       lines_t);
  Alcotest.(check bool)
    "typed mode still reports the captured-ref mutation" true
    (List.exists
       (fun l ->
         contains_sub l "bad_pool.ml"
         && contains_sub l "[domain-capture]"
         && contains_sub l "captured from the enclosing scope")
       lines_t);
  Alcotest.(check bool)
    "clean pool usage stays clean" false
    (List.exists (fun l -> contains_sub l "good_pool") lines_t)

let test_list_rules () =
  let code, lines = lint "--list-rules" in
  checki "list-rules exits 0 without PATH" 0 code;
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (rule ^ " is registered") true
        (List.exists
           (fun l -> String.length l >= String.length rule
                     && String.sub l 0 (String.length rule) = rule)
           lines))
    [
      "no-stdlib-random"; "float-eq"; "no-print-in-lib"; "domain-capture";
      "mli-coverage";
    ]

let () =
  Alcotest.run "ccache_lint"
    [
      ( "golden",
        [
          Alcotest.test_case "fixture diagnostics" `Quick
            test_fixture_diagnostics;
          Alcotest.test_case "clean tree passes" `Quick test_clean_tree_passes;
          Alcotest.test_case "suppression mechanisms" `Quick
            test_suppressions_required;
        ] );
      ( "formats",
        [
          Alcotest.test_case "github annotations" `Quick test_github_format;
          Alcotest.test_case "sarif log" `Quick test_sarif_format;
          Alcotest.test_case "list-rules" `Quick test_list_rules;
        ] );
      ( "cli",
        [
          Alcotest.test_case "unreadable path" `Quick test_unreadable_path;
          Alcotest.test_case "typed domain-capture" `Quick
            test_typed_domain_capture;
        ] );
    ]
