(** Shared-cache simulation engine.

    Replays a trace against a policy, owning the cache set and all
    accounting.  Guarantees enforced here, independent of the policy:
    the cache never exceeds [k] pages; victims are actually cached and
    never the incoming page; per-user hit/miss/eviction counts are
    conserved.  Violations raise {!Policy_error}.

    The optional [~flush:true] mode implements the paper's terminal
    dummy user (Section 2.1): k final requests by an infinite-cost
    user whose pages can never be evicted, forcing every real page out
    so that evictions equal misses per user.  Because dummy pages are
    never eviction candidates, the engine realises them without
    inserting anything — observationally identical to pinning
    infinite-cost pages, and it works for every policy unmodified. *)

open Ccache_trace

type event =
  | Hit of { pos : int; page : Page.t }
  | Miss_insert of { pos : int; page : Page.t }
      (** miss absorbed without eviction *)
  | Miss_evict of { pos : int; page : Page.t; victim : Page.t }

val event_pos : event -> int

type result = {
  policy : string;
  k : int;
  trace_length : int;
  n_users : int;
  hits : int;
  misses_per_user : int array;
  evictions_per_user : int array;
  final_cache : Page.t list;  (** sorted; empty after a flush *)
}

val misses : result -> int
val evictions : result -> int
val miss_ratio : result -> float

exception Policy_error of string

val run :
  ?flush:bool ->
  ?on_event:(event -> unit) ->
  ?index:Trace.Index.t ->
  k:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Policy.t ->
  Trace.t ->
  result
(** [run ~k ~costs policy trace] replays [trace].

    @param flush terminal dummy-user flush (default false)
    @param on_event called for every decision, in trace order
    @param index reuse a prebuilt index (otherwise built on demand for
           offline policies)
    @raise Invalid_argument if [costs] has not exactly one entry per
           user
    @raise Policy_error if the policy misbehaves *)

val run_logged :
  ?flush:bool ->
  ?index:Trace.Index.t ->
  k:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Policy.t ->
  Trace.t ->
  result * event list
(** {!run} plus the full decision log. *)
