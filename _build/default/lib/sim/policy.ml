(** Eviction-policy interface.

    The {!Engine} owns the cache contents and the hit/miss accounting; a
    policy only maintains the metadata needed to pick victims.  The
    contract per request [p] at position [pos]:

    - if [p] is cached, the engine calls [on_hit];
    - otherwise, if the cache is full, the engine calls [choose_victim]
      (which must return a currently cached page), then [on_evict] for
      the victim, then [on_insert] for [p];
    - otherwise just [on_insert].

    Policies are packaged as factories so a single value can be
    instantiated repeatedly across sweep points. *)

open Ccache_trace

module Config = struct
  type t = {
    k : int;  (** cache size in pages *)
    n_users : int;
    costs : Ccache_cost.Cost_function.t array;  (** indexed by user id *)
    index : Trace.Index.t option;
        (** full-trace index; [Some _] only for offline policies *)
    rng_seed : int;  (** seed for policies that randomise (deterministically) *)
  }

  let make ?(rng_seed = 42) ?index ~k ~costs () =
    if k <= 0 then invalid_arg "Policy.Config.make: k must be positive";
    let n_users = Array.length costs in
    if n_users = 0 then invalid_arg "Policy.Config.make: no users";
    { k; n_users; costs; index; rng_seed }

  (** Cost function of [user], tolerating the flush dummy user (id =
      n_users) which has zero cost by construction. *)
  let cost t user =
    if user >= 0 && user < Array.length t.costs then t.costs.(user)
    else Ccache_cost.Cost_function.linear ~slope:0.0 ()
end

type handlers = {
  on_hit : pos:int -> Page.t -> unit;
  wants_evict : pos:int -> incoming:Page.t -> bool;
      (** consulted on a miss when the cache is NOT full; returning true
          forces an eviction anyway.  Needed by partitioned policies
          whose per-tenant slice can fill before the shared cache does.
          Most policies use {!never_evict_early}. *)
  choose_victim : pos:int -> incoming:Page.t -> Page.t;
  on_insert : pos:int -> Page.t -> unit;
  on_evict : pos:int -> Page.t -> unit;
}

type t = {
  name : string;
  needs_future : bool;  (** offline policies require [Config.index] *)
  create : Config.t -> handlers;
}

let make ?(needs_future = false) ~name create = { name; needs_future; create }

let name t = t.name
let needs_future t = t.needs_future

let instantiate t config =
  if t.needs_future && config.Config.index = None then
    invalid_arg (t.name ^ ": offline policy requires a trace index");
  t.create config

(* Convenience no-op handlers for policies that ignore some events. *)
let no_hit = fun ~pos:_ _ -> ()
let no_evict = fun ~pos:_ _ -> ()
let never_evict_early = fun ~pos:_ ~incoming:_ -> false
