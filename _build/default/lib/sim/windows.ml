(** Windowed accounting.

    The paper's motivation prices misses per time window ("a user can
    tolerate up to around M misses in a time window of T"), while its
    model prices the whole sequence.  This module provides the
    windowed view: split the request positions into fixed-length
    windows and charge [sum over windows of sum_i f_i(misses_i(w))].

    Windowed cost is computed from an engine event log, so any policy
    can be priced both ways from a single {!Engine.run_logged}. *)

type t = {
  window : int;  (** window length in requests *)
  n_windows : int;
  misses : int array array;  (** misses.(w).(user) *)
}

let of_events ~window ~n_users ~trace_length events =
  if window <= 0 then invalid_arg "Windows.of_events: window must be positive";
  let n_windows = (trace_length + window - 1) / window in
  let misses = Array.init (Stdlib.max 1 n_windows) (fun _ -> Array.make n_users 0) in
  List.iter
    (fun ev ->
      match ev with
      | Engine.Hit _ -> ()
      | Engine.Miss_insert { pos; page } | Engine.Miss_evict { pos; page; _ } ->
          (* flush events sit past the trace end; they are evictions of
             the dummy user and carry no miss for real users *)
          let u = Ccache_trace.Page.user page in
          if pos < trace_length && u < n_users then
            misses.(pos / window).(u) <- misses.(pos / window).(u) + 1)
    events;
  { window; n_windows = Stdlib.max 1 n_windows; misses }

(** Total windowed objective: each window is priced independently. *)
let cost ~costs t =
  let acc = ref 0.0 in
  Array.iter
    (fun per_user ->
      Array.iteri
        (fun u m ->
          acc :=
            !acc +. Ccache_cost.Cost_function.eval costs.(u) (float_of_int m))
        per_user)
    t.misses;
  !acc

(** Per-user totals across windows (= the cumulative miss counts). *)
let total_misses t =
  match Array.length t.misses with
  | 0 -> [||]
  | _ ->
      let n_users = Array.length t.misses.(0) in
      let totals = Array.make n_users 0 in
      Array.iter
        (fun per_user -> Array.iteri (fun u m -> totals.(u) <- totals.(u) + m) per_user)
        t.misses;
      totals

(** Windows in which [user] exceeded [threshold] misses — SLA breach
    count under a per-window tolerance. *)
let breaches t ~user ~threshold =
  Array.fold_left
    (fun acc per_user -> if per_user.(user) > threshold then acc + 1 else acc)
    0 t.misses

(** Convenience: run a policy and price it per-window. *)
let run_windowed ?flush ~window ~k ~costs policy trace =
  let result, log = Engine.run_logged ?flush ~k ~costs policy trace in
  let t =
    of_events ~window
      ~n_users:result.Engine.n_users
      ~trace_length:result.Engine.trace_length log
  in
  (result, t)
