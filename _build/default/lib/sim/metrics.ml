(** Cost evaluation and result presentation.

    Translates the raw per-user miss/eviction counts of an
    {!Engine.result} into the paper's objective
    [sum_i f_i(misses_i)] (and the eviction-charged variant used by the
    (ICP) accounting). *)

type accounting = By_misses | By_evictions

(** Per-user counts under the chosen accounting. *)
let counts ~accounting (r : Engine.result) =
  match accounting with
  | By_misses -> r.Engine.misses_per_user
  | By_evictions -> r.Engine.evictions_per_user

(** Total objective [sum_i f_i(c_i)]. *)
let total_cost ?(accounting = By_misses) ~costs (r : Engine.result) =
  if Array.length costs <> r.Engine.n_users then
    invalid_arg "Metrics.total_cost: costs/users mismatch";
  let cs = counts ~accounting r in
  let acc = ref 0.0 in
  Array.iteri
    (fun u c ->
      acc := !acc +. Ccache_cost.Cost_function.eval costs.(u) (float_of_int c))
    cs;
  !acc

(** Per-user cost vector. *)
let per_user_cost ?(accounting = By_misses) ~costs (r : Engine.result) =
  let cs = counts ~accounting r in
  Array.mapi
    (fun u c -> Ccache_cost.Cost_function.eval costs.(u) (float_of_int c))
    cs

type row = {
  policy : string;
  hits : int;
  misses : int;
  miss_ratio : float;
  cost : float;
}

let row ?accounting ~costs (r : Engine.result) =
  {
    policy = r.Engine.policy;
    hits = r.Engine.hits;
    misses = Engine.misses r;
    miss_ratio = Engine.miss_ratio r;
    cost = total_cost ?accounting ~costs r;
  }

(** Comparison table over several results on the same trace, sorted by
    ascending cost. *)
let comparison_table ?accounting ?(title = "policy comparison") ~costs results =
  let sorted =
    List.sort
      (fun a b -> Float.compare a.cost b.cost)
      (List.map (row ?accounting ~costs) results)
  in
  let open Ccache_util.Ascii_table in
  let tbl =
    create ~title
      ~aligns:[ Left; Right; Right; Right; Right ]
      [ "policy"; "hits"; "misses"; "miss%"; "cost" ]
  in
  List.iter
    (fun r ->
      add_row tbl
        [
          r.policy;
          cell_int r.hits;
          cell_int r.misses;
          cell_pct r.miss_ratio;
          cell_float ~digits:6 r.cost;
        ])
    sorted;
  tbl

let pp_result ~costs ppf (r : Engine.result) =
  Fmt.pf ppf "@[<v>%s (k=%d): hits=%d misses=%d cost=%.6g" r.Engine.policy
    r.Engine.k r.Engine.hits (Engine.misses r) (total_cost ~costs r);
  Array.iteri
    (fun u m ->
      Fmt.pf ppf "@,  user %d: misses=%d evictions=%d cost=%.6g" u m
        r.Engine.evictions_per_user.(u)
        (Ccache_cost.Cost_function.eval costs.(u) (float_of_int m)))
    r.Engine.misses_per_user;
  Fmt.pf ppf "@]"
