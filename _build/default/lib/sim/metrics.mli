(** Cost evaluation and result presentation: translates per-user
    miss/eviction counts into the paper's objective
    [sum_i f_i(count_i)]. *)

type accounting =
  | By_misses  (** the objective the experiments report *)
  | By_evictions  (** the (ICP) accounting; equals misses under flush *)

val counts : accounting:accounting -> Engine.result -> int array

val total_cost :
  ?accounting:accounting ->
  costs:Ccache_cost.Cost_function.t array ->
  Engine.result ->
  float
(** @raise Invalid_argument on a costs/users mismatch. *)

val per_user_cost :
  ?accounting:accounting ->
  costs:Ccache_cost.Cost_function.t array ->
  Engine.result ->
  float array

type row = {
  policy : string;
  hits : int;
  misses : int;
  miss_ratio : float;
  cost : float;
}

val row :
  ?accounting:accounting ->
  costs:Ccache_cost.Cost_function.t array ->
  Engine.result ->
  row

val comparison_table :
  ?accounting:accounting ->
  ?title:string ->
  costs:Ccache_cost.Cost_function.t array ->
  Engine.result list ->
  Ccache_util.Ascii_table.t
(** One row per result, sorted by ascending cost. *)

val pp_result :
  costs:Ccache_cost.Cost_function.t array ->
  Format.formatter ->
  Engine.result ->
  unit
