(** Parameter-sweep helpers for experiments and benches. *)

val product : 'a list -> 'b list -> ('a * 'b) list
val product3 : 'a list -> 'b list -> 'c list -> ('a * 'b * 'c) list

val geometric : start:int -> stop:int -> factor:float -> int list
(** Rounded geometric range, strictly increasing, not exceeding
    [stop]. @raise Invalid_argument on a bad range or [factor <= 1]. *)

val arithmetic : start:int -> stop:int -> step:int -> int list
val linspace : start:float -> stop:float -> count:int -> float list

val run : 'a list -> f:('a -> 'b) -> ('a * 'b) list
(** Map keeping the sweep point for labelling. *)
