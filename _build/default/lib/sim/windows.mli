(** Windowed accounting: price misses per fixed-length request window
    ([sum over windows of sum_i f_i(misses_i(window))]), the form the
    paper's motivation states SLAs in.  Computed from an engine event
    log, so one run prices both the cumulative and the windowed
    objective. *)

type t = {
  window : int;
  n_windows : int;
  misses : int array array;  (** misses.(window).(user) *)
}

val of_events :
  window:int -> n_users:int -> trace_length:int -> Engine.event list -> t
(** Flush events (positions past the trace end) are ignored.
    @raise Invalid_argument if [window <= 0]. *)

val cost : costs:Ccache_cost.Cost_function.t array -> t -> float

val total_misses : t -> int array
(** Per-user sums across windows (the cumulative counts). *)

val breaches : t -> user:int -> threshold:int -> int
(** Windows in which the user exceeded [threshold] misses. *)

val run_windowed :
  ?flush:bool ->
  window:int ->
  k:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Policy.t ->
  Ccache_trace.Trace.t ->
  Engine.result * t
