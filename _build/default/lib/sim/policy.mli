(** Eviction-policy interface.

    The {!Engine} owns the cache contents and the hit/miss accounting;
    a policy only maintains the metadata needed to pick victims.  The
    contract per request [p] at position [pos]:

    - if [p] is cached, the engine calls [on_hit];
    - otherwise, if the cache is full (or [wants_evict] returns true),
      the engine calls [choose_victim] — which must return a currently
      cached page other than [p] — then [on_evict] for the victim,
      then [on_insert] for [p];
    - otherwise just [on_insert].

    Policies are packaged as factories so one value can be
    instantiated repeatedly across sweep points. *)

open Ccache_trace

module Config : sig
  type t = {
    k : int;  (** cache size in pages *)
    n_users : int;
    costs : Ccache_cost.Cost_function.t array;  (** indexed by user id *)
    index : Trace.Index.t option;
        (** full-trace index; [Some _] only for offline policies *)
    rng_seed : int;
        (** seed for policies that randomise (deterministically) *)
  }

  val make :
    ?rng_seed:int ->
    ?index:Trace.Index.t ->
    k:int ->
    costs:Ccache_cost.Cost_function.t array ->
    unit ->
    t
  (** @raise Invalid_argument if [k <= 0] or [costs] is empty. *)

  val cost : t -> int -> Ccache_cost.Cost_function.t
  (** Cost function of a user; out-of-range users (the engine-internal
      flush dummy) get the zero cost. *)
end

type handlers = {
  on_hit : pos:int -> Page.t -> unit;
  wants_evict : pos:int -> incoming:Page.t -> bool;
      (** consulted on a miss when the cache is NOT full; returning
          true forces an eviction anyway.  Needed by partitioned
          policies whose per-tenant slice fills before the shared
          cache does.  Most policies use {!never_evict_early}. *)
  choose_victim : pos:int -> incoming:Page.t -> Page.t;
  on_insert : pos:int -> Page.t -> unit;
  on_evict : pos:int -> Page.t -> unit;
}

type t

val make : ?needs_future:bool -> name:string -> (Config.t -> handlers) -> t
(** [needs_future] marks offline policies, which require
    [Config.index]. *)

val name : t -> string
val needs_future : t -> bool

val instantiate : t -> Config.t -> handlers
(** @raise Invalid_argument if an offline policy gets no index. *)

(** No-op handler fragments for policies that ignore some events. *)

val no_hit : pos:int -> Page.t -> unit
val no_evict : pos:int -> Page.t -> unit
val never_evict_early : pos:int -> incoming:Page.t -> bool
