lib/sim/policy.mli: Ccache_cost Ccache_trace Page Trace
