lib/sim/sweep.ml: Float List Stdlib
