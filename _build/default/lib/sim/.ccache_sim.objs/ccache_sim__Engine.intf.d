lib/sim/engine.mli: Ccache_cost Ccache_trace Page Policy Trace
