lib/sim/metrics.ml: Array Ccache_cost Ccache_util Engine Float Fmt List
