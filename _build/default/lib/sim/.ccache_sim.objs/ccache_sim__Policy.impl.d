lib/sim/policy.ml: Array Ccache_cost Ccache_trace Page Trace
