lib/sim/metrics.mli: Ccache_cost Ccache_util Engine Format
