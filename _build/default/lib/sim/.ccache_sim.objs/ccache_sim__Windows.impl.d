lib/sim/windows.ml: Array Ccache_cost Ccache_trace Engine List Stdlib
