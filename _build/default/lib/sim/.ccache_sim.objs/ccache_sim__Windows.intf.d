lib/sim/windows.mli: Ccache_cost Ccache_trace Engine Policy
