lib/sim/sweep.mli:
