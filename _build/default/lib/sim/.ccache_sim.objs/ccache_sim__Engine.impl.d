lib/sim/engine.ml: Array Ccache_trace List Page Policy Printf Trace
