(** Parameter-sweep helpers for experiments and benches. *)

(** Cartesian product of two parameter lists. *)
let product xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let product3 xs ys zs =
  List.concat_map (fun x -> List.map (fun (y, z) -> (x, y, z)) (product ys zs)) xs

(** Geometric range [start, start*factor, ...] not exceeding [stop]. *)
let geometric ~start ~stop ~factor =
  if start <= 0 || stop < start then invalid_arg "Sweep.geometric: bad range";
  if factor <= 1.0 then invalid_arg "Sweep.geometric: factor must exceed 1";
  let rec go acc v =
    if v > stop then List.rev acc
    else
      let next =
        Stdlib.max (v + 1) (int_of_float (Float.round (float_of_int v *. factor)))
      in
      go (v :: acc) next
  in
  go [] start

(** Inclusive arithmetic range with step. *)
let arithmetic ~start ~stop ~step =
  if step <= 0 then invalid_arg "Sweep.arithmetic: step must be positive";
  let rec go acc v = if v > stop then List.rev acc else go (v :: acc) (v + step) in
  go [] start

(** Evenly spaced floats, inclusive of both endpoints. *)
let linspace ~start ~stop ~count =
  if count < 2 then invalid_arg "Sweep.linspace: count must be >= 2";
  List.init count (fun i ->
      start +. ((stop -. start) *. float_of_int i /. float_of_int (count - 1)))

(** Map with the sweep point available for labelling. *)
let run points ~f = List.map (fun p -> (p, f p)) points
