(** Best-of offline suite: the tightest computable upper bound on the
    offline optimum's cost.

    Runs every offline comparator (Belady, convex-Belady, optional
    local search, and exact DP when the instance is small enough) and
    returns the cheapest schedule's per-user miss counts.  Since every
    comparator produces a *feasible* offline schedule, the winner's
    counts are a sound stand-in for b_i(sigma) in the theorem checks
    (see DESIGN.md "OPT bracketing"): the theorems' right-hand sides
    are monotone in b, so checking against the winner is implied by the
    theorem, while reporting ratios against both this and the dual
    lower bound brackets the true competitive ratio. *)

module Engine = Ccache_sim.Engine
module Metrics = Ccache_sim.Metrics
module Cf = Ccache_cost.Cost_function
open Ccache_trace

type outcome = {
  winner : string;
  cost : float;
  misses_per_user : int array;
  all : (string * float) list;  (** every comparator's cost *)
}

(** @param cache_size offline cache size (h in the bi-criteria setting)
    @param local_search_rounds 0 disables local search (default 40)
    @param exact_dp attempt {!Dp_opt} (default: only when the instance
      is clearly tiny: <= 16 distinct pages and T <= 48) *)
let compute ?(local_search_rounds = 40) ?exact_dp ~cache_size ~costs trace =
  let index = Trace.Index.build trace in
  let entries = ref [] in
  let consider name cost misses = entries := (name, cost, misses) :: !entries in
  let run_offline policy =
    let r = Engine.run ~index ~k:cache_size ~costs policy trace in
    consider r.Engine.policy
      (Metrics.total_cost ~costs r)
      r.Engine.misses_per_user
  in
  run_offline Ccache_policies.Belady.policy;
  run_offline Ccache_policies.Convex_belady.policy;
  if local_search_rounds > 0 then begin
    let ls =
      Local_search.improve ~rounds:local_search_rounds ~cache_size ~costs trace
    in
    consider "local-search" ls.Local_search.cost ls.Local_search.misses_per_user
  end;
  let try_dp =
    match exact_dp with
    | Some b -> b
    | None ->
        List.length (Trace.distinct_pages trace) <= 16 && Trace.length trace <= 48
  in
  if try_dp then begin
    match Dp_opt.solve ~cache_size ~costs trace with
    | r -> consider "dp-exact" r.Dp_opt.cost r.Dp_opt.misses_per_user
    | exception Dp_opt.Too_large _ -> ()
  end;
  let entries = !entries in
  let winner, cost, misses =
    List.fold_left
      (fun (bn, bc, bm) (n, c, m) -> if c < bc then (n, c, m) else (bn, bc, bm))
      (match entries with
      | e :: _ -> e
      | [] -> invalid_arg "Best_of.compute: no comparators ran")
      entries
  in
  {
    winner;
    cost;
    misses_per_user = misses;
    all = List.map (fun (n, c, _) -> (n, c)) entries |> List.rev;
  }

(** Sum of f_i over a miss vector — convenience mirrored from Metrics. *)
let cost_of ~costs misses =
  let acc = ref 0.0 in
  Array.iteri
    (fun u m -> acc := !acc +. Cf.eval costs.(u) (float_of_int m))
    misses;
  !acc
