lib/offline/dp_opt.mli: Ccache_cost Ccache_trace
