lib/offline/batch_offline.mli: Ccache_cost Ccache_trace
