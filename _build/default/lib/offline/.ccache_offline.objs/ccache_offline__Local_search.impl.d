lib/offline/local_search.ml: Array Ccache_policies Ccache_sim Ccache_trace Ccache_util List Option Page Trace
