lib/offline/local_search.mli: Ccache_cost Ccache_sim Ccache_trace
