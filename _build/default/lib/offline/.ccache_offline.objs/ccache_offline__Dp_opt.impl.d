lib/offline/dp_opt.ml: Array Ccache_cost Ccache_trace Hashtbl List Option Page Printf Trace
