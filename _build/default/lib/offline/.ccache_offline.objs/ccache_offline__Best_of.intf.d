lib/offline/best_of.mli: Ccache_cost Ccache_trace
