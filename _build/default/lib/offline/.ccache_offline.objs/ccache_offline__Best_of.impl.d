lib/offline/best_of.ml: Array Ccache_cost Ccache_policies Ccache_sim Ccache_trace Dp_opt List Local_search Trace
