lib/offline/batch_offline.ml: Array Ccache_cost Ccache_trace List Page Stdlib Trace
