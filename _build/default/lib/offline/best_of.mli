(** Best-of offline suite: the tightest computable upper bound on the
    offline optimum's cost.

    Runs Belady, convex-Belady, optional local search, and exact DP
    when the instance is tiny; returns the cheapest schedule's counts.
    Every comparator is a feasible schedule, so the winner is a sound
    stand-in for the theorems' [b_i] (their RHSs are monotone in [b])
    — see DESIGN.md "OPT bracketing". *)

type outcome = {
  winner : string;
  cost : float;
  misses_per_user : int array;
  all : (string * float) list;  (** every comparator's cost *)
}

val compute :
  ?local_search_rounds:int ->
  ?exact_dp:bool ->
  cache_size:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Ccache_trace.Trace.t ->
  outcome
(** [local_search_rounds] defaults to 40 (0 disables); [exact_dp]
    defaults to automatic (only on clearly tiny instances). *)

val cost_of :
  costs:Ccache_cost.Cost_function.t array -> int array -> float
(** [sum_i f_i(misses_i)] over a miss vector. *)
