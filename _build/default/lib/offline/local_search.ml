(** Local search over offline schedules.

    Starts from a recorded run of a seed offline policy (default
    convex-Belady) and hill-climbs: pick an eviction event, force a
    different victim there, let the seed policy finish the rest of the
    trace, and keep the change if total cost drops.  The "replay then
    delegate" wrapper feeds the inner policy every event so its state
    is always consistent with the cache contents; only the victim
    choices up to the switch point are scripted.

    Deterministically seeded; the result is a feasible offline schedule
    whose cost upper-bounds OPT at least as tightly as the seed's. *)

module Policy = Ccache_sim.Policy
module Engine = Ccache_sim.Engine
module Metrics = Ccache_sim.Metrics
module Prng = Ccache_util.Prng
open Ccache_trace

(* A policy that follows [script] (victims for the first evictions, in
   order), with one [override] at eviction number [switch], then
   delegates every later choice to [inner]. *)
let scripted ~inner ~script ~switch ~override =
  Policy.make ~needs_future:true
    ~name:(Policy.name inner ^ "+ls")
    (fun config ->
      let h = Policy.instantiate inner config in
      let eviction_no = ref 0 in
      {
        Policy.on_hit = h.Policy.on_hit;
        wants_evict = h.Policy.wants_evict;
        choose_victim =
          (fun ~pos ~incoming ->
            let e = !eviction_no in
            if e < switch then script.(e)
            else if e = switch then override
            else h.Policy.choose_victim ~pos ~incoming);
        on_insert = h.Policy.on_insert;
        on_evict =
          (fun ~pos page ->
            incr eviction_no;
            h.Policy.on_evict ~pos page);
      })

type result = {
  cost : float;
  misses_per_user : int array;
  improvements : int;
  evaluations : int;
}

(** Improve a schedule for [trace] with cache size [cache_size].

    @param rounds   candidate moves to evaluate (default 60)
    @param seed_policy offline policy to start from and delegate to
    @param rng_seed deterministic sampling seed *)
let improve ?(rounds = 60) ?(rng_seed = 1234) ?seed_policy ~cache_size ~costs trace
    =
  let inner =
    Option.value seed_policy ~default:Ccache_policies.Convex_belady.policy
  in
  let index = Trace.Index.build trace in
  let rng = Prng.create ~seed:rng_seed in
  let run_policy policy =
    Engine.run_logged ~index ~k:cache_size ~costs policy trace
  in
  let cost_of result = Metrics.total_cost ~costs result in
  let victims_of log =
    log
    |> List.filter_map (function
         | Engine.Miss_evict { victim; _ } -> Some victim
         | Engine.Hit _ | Engine.Miss_insert _ -> None)
    |> Array.of_list
  in
  (* cache contents just before eviction [e]: replay the log *)
  let cached_before log target_eviction =
    let cached = Page.Tbl.create 64 in
    let e = ref 0 in
    (try
       List.iter
         (fun ev ->
           match ev with
           | Engine.Hit _ -> ()
           | Engine.Miss_insert { page; _ } -> Page.Tbl.replace cached page ()
           | Engine.Miss_evict { page; victim; _ } ->
               if !e = target_eviction then raise Exit;
               incr e;
               Page.Tbl.remove cached victim;
               Page.Tbl.replace cached page ())
         log
     with Exit -> ());
    Page.Tbl.fold (fun p () acc -> p :: acc) cached []
  in
  let best_result = ref (run_policy inner) in
  let best_cost = ref (cost_of (fst !best_result)) in
  let improvements = ref 0 and evaluations = ref 0 in
  for _ = 1 to rounds do
    let _, log = !best_result in
    let script = victims_of log in
    let n_evictions = Array.length script in
    if n_evictions > 0 then begin
      let e = Prng.int rng n_evictions in
      let candidates =
        cached_before log e
        |> List.filter (fun p -> not (Page.equal p script.(e)))
      in
      if candidates <> [] then begin
        let override = List.nth candidates (Prng.int rng (List.length candidates)) in
        let policy = scripted ~inner ~script ~switch:e ~override in
        incr evaluations;
        match run_policy policy with
        | result, log' ->
            let c = cost_of result in
            if c < !best_cost then begin
              best_cost := c;
              best_result := (result, log');
              incr improvements
            end
        | exception Engine.Policy_error _ -> ()
      end
    end
  done;
  let result, _ = !best_result in
  {
    cost = !best_cost;
    misses_per_user = result.Engine.misses_per_user;
    improvements = !improvements;
    evaluations = !evaluations;
  }
