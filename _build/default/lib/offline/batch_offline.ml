(** The offline comparator of the paper's lower-bound proof (Section 4).

    Specialised to the Theorem 1.4 instance shape — n users, one page
    each, cache size k = n - 1 — the schedule is:

    - split the request sequence into batches of length
      ceil((n-1)/2);
    - at the start of each batch, look at the batch's requests and
      evict one page that is (a) currently cached, (b) not requested in
      the batch, and (c) has the fewest evictions so far (ties by page
      order); the freed slot absorbs the batch's single "new" page, so
      no other eviction happens during the batch.

    This costs at most one eviction per batch and spreads evictions
    evenly, giving total cost <= n * (4T/n^2)^beta against which the
    online algorithm's >= n * (T/n)^beta is measured.

    [run] validates the instance shape (single page per user) and
    simulates the schedule, returning per-user miss counts.  The first
    |cache| requests that merely warm the cache are handled naturally:
    eviction only starts once the cache is full. *)

open Ccache_trace

type result = {
  misses_per_user : int array;
  evictions_per_user : int array;
  batch_length : int;
  batches : int;
}

let run ~k trace =
  let n_users = Trace.n_users trace in
  let pages = Trace.distinct_pages trace in
  List.iter
    (fun p ->
      if Page.id p <> 0 then
        invalid_arg "Batch_offline.run: expects one page per user (id 0)")
    pages;
  if k < 1 then invalid_arg "Batch_offline.run: k must be >= 1";
  let batch_length = Stdlib.max 1 ((n_users - 1 + 1) / 2) in
  let n = Trace.length trace in
  let cached = Array.make n_users false in
  let cached_count = ref 0 in
  let misses = Array.make n_users 0 in
  let evictions = Array.make n_users 0 in
  let batches = ref 0 in
  let pos = ref 0 in
  while !pos < n do
    let batch_end = Stdlib.min n (!pos + batch_length) in
    (* users requested in this batch *)
    let in_batch = Array.make n_users false in
    for q = !pos to batch_end - 1 do
      in_batch.(Page.user (Trace.request trace q)) <- true
    done;
    incr batches;
    (* make room proactively: if the cache is full and some batch
       request would miss, evict the least-evicted cached page not in
       the batch *)
    if !cached_count >= k then begin
      let would_miss = ref false in
      for q = !pos to batch_end - 1 do
        if not cached.(Page.user (Trace.request trace q)) then would_miss := true
      done;
      if !would_miss then begin
        let candidate = ref (-1) in
        for u = n_users - 1 downto 0 do
          if cached.(u) && not in_batch.(u) then
            if !candidate = -1 || evictions.(u) <= evictions.(!candidate) then
              candidate := u
        done;
        match !candidate with
        | -1 ->
            (* batch touches >= k distinct cached users: impossible in
               the Theorem 1.4 shape (batch length <= (n-1)/2 < k) *)
            invalid_arg "Batch_offline.run: no eviction candidate (bad instance shape)"
        | u ->
            cached.(u) <- false;
            decr cached_count;
            evictions.(u) <- evictions.(u) + 1
      end
    end;
    (* replay the batch *)
    for q = !pos to batch_end - 1 do
      let u = Page.user (Trace.request trace q) in
      if not cached.(u) then begin
        misses.(u) <- misses.(u) + 1;
        if !cached_count >= k then begin
          (* second miss within a batch: only possible if the batch has
             two distinct new users, which the shape forbids; fall back
             to evicting the least-evicted non-batch user to stay total *)
          let candidate = ref (-1) in
          for v = n_users - 1 downto 0 do
            if cached.(v) && not in_batch.(v) then
              if !candidate = -1 || evictions.(v) <= evictions.(!candidate) then
                candidate := v
          done;
          let v = if !candidate >= 0 then !candidate else (
            let any = ref (-1) in
            for w = n_users - 1 downto 0 do if cached.(w) then any := w done;
            !any)
          in
          cached.(v) <- false;
          decr cached_count;
          evictions.(v) <- evictions.(v) + 1
        end;
        cached.(u) <- true;
        incr cached_count
      end
    done;
    pos := batch_end
  done;
  { misses_per_user = misses; evictions_per_user = evictions;
    batch_length; batches = !batches }

(** Total cost of the batch schedule under [costs]. *)
let cost ~costs r =
  let acc = ref 0.0 in
  Array.iteri
    (fun u m ->
      acc := !acc +. Ccache_cost.Cost_function.eval costs.(u) (float_of_int m))
    r.misses_per_user;
  !acc
