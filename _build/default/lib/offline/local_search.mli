(** Local search over offline schedules: hill-climbs from a recorded
    run of a seed offline policy by forcing alternative victims at
    sampled eviction events and letting the seed policy finish the
    trace.  Deterministically seeded; never worse than the seed. *)

type result = {
  cost : float;
  misses_per_user : int array;
  improvements : int;
  evaluations : int;
}

val improve :
  ?rounds:int ->
  ?rng_seed:int ->
  ?seed_policy:Ccache_sim.Policy.t ->
  cache_size:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Ccache_trace.Trace.t ->
  result
(** [rounds] candidate moves (default 60); [seed_policy] defaults to
    convex-Belady. *)
