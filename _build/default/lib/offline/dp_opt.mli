(** Exact offline optimum by dynamic programming (tiny instances).

    The convex objective is not additive per step, so the state is
    (cache bitmask) x (Pareto front of per-user miss vectors); all f_i
    are increasing, so some Pareto vector attains the optimum.
    Practical limits ~16 distinct pages, k <= 6, T <= 40.  This is the
    ground truth certifying the heuristic offline upper bounds and the
    dual lower bound on small instances (experiment E8). *)

exception Too_large of string

type result = {
  cost : float;
  misses_per_user : int array;  (** a cost-optimal vector *)
  states_explored : int;
}

val solve :
  ?max_states:int ->
  ?pinned:(Ccache_trace.Page.t -> bool) ->
  cache_size:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Ccache_trace.Trace.t ->
  result
(** @param pinned pages that may never be evicted once cached (models
      the paper's infinite-cost flush user); states with no legal
      victim are dropped.
    @raise Too_large beyond 62 distinct pages or [max_states]
      (default 2M) front entries in a step. *)
