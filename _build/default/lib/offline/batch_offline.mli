(** The offline comparator from the paper's lower-bound proof
    (Section 4), specialised to the Theorem 1.4 instance shape: n
    users, one page each, cache k = n - 1.

    Splits the sequence into ceil((n-1)/2)-length batches; at each
    batch head it evicts one cached page that is not requested in the
    batch and has the fewest evictions so far.  At most one eviction
    per batch, spread evenly — the schedule behind the paper's
    [n * (4T/n^2)^beta] offline cost. *)

type result = {
  misses_per_user : int array;
  evictions_per_user : int array;
  batch_length : int;
  batches : int;
}

val run : k:int -> Ccache_trace.Trace.t -> result
(** @raise Invalid_argument if some user owns more than one page or
    the instance shape leaves no eviction candidate. *)

val cost : costs:Ccache_cost.Cost_function.t array -> result -> float
