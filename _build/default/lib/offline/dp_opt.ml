(** Exact offline optimum by dynamic programming (tiny instances only).

    The convex objective sum_i f_i(total misses_i) is not additive per
    step, so the DP state is (cache contents) x (Pareto front of
    per-user miss vectors): a miss vector is kept only if no other
    vector reaching the same cache set weakly dominates it.  Since all
    f_i are increasing, some Pareto-optimal vector attains the optimum.

    Cache sets are bitmasks over the trace's distinct pages, so the
    instance must touch at most 62 distinct pages; practical limits are
    roughly |pages| <= 16, k <= 6, T <= 40 (the test suite stays well
    inside).  This is the ground truth that certifies the heuristic
    offline upper bounds and the dual lower bound on small instances. *)

open Ccache_trace
module Cf = Ccache_cost.Cost_function

exception Too_large of string

type result = {
  cost : float;
  misses_per_user : int array;  (** a cost-optimal miss vector *)
  states_explored : int;
}

(* Pareto front maintenance: list of int arrays, none dominating another. *)
let dominates a b =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let insert_front front v =
  if List.exists (fun w -> dominates w v) front then front
  else v :: List.filter (fun w -> not (dominates v w)) front

(** Exact optimal offline cost for [trace] with cache size
    [cache_size].  Raises {!Too_large} when the distinct-page count
    exceeds 62 or the state space exceeds [max_states] (default 2M
    front entries summed over a step).

    @param pinned pages that may never be evicted once cached (used to
      model the paper's infinite-cost flush user: its pages must stay);
      states with no legal victim are simply dropped. *)
let solve ?(max_states = 2_000_000) ?(pinned = fun (_ : Page.t) -> false)
    ~cache_size ~costs trace =
  if cache_size <= 0 then invalid_arg "Dp_opt.solve: cache_size must be positive";
  let n_users = Trace.n_users trace in
  if Array.length costs <> n_users then invalid_arg "Dp_opt.solve: costs mismatch";
  let pages = Array.of_list (Trace.distinct_pages trace) in
  let n_pages = Array.length pages in
  if n_pages > 62 then
    raise (Too_large (Printf.sprintf "%d distinct pages > 62" n_pages));
  let id_of : int Page.Tbl.t = Page.Tbl.create 64 in
  Array.iteri (fun i p -> Page.Tbl.add id_of p i) pages;
  let user_of = Array.map Page.user pages in
  let popcount mask =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go mask 0
  in
  (* states: cache bitmask -> Pareto front of miss vectors *)
  let states : (int, int array list) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.add states 0 [ Array.make n_users 0 ];
  let explored = ref 0 in
  let n = Trace.length trace in
  for pos = 0 to n - 1 do
    let p = Trace.request trace pos in
    let pid = Page.Tbl.find id_of p in
    let pbit = 1 lsl pid in
    let next : (int, int array list) Hashtbl.t = Hashtbl.create (Hashtbl.length states * 2) in
    let add mask v =
      let front = Option.value (Hashtbl.find_opt next mask) ~default:[] in
      let front' = insert_front front v in
      Hashtbl.replace next mask front'
    in
    Hashtbl.iter
      (fun mask front ->
        List.iter
          (fun v ->
            incr explored;
            if !explored > max_states then
              raise (Too_large "state budget exceeded");
            if mask land pbit <> 0 then add mask v
            else begin
              let v' = Array.copy v in
              v'.(user_of.(pid)) <- v'.(user_of.(pid)) + 1;
              if popcount mask < cache_size then add (mask lor pbit) v'
              else
                (* try every non-pinned victim *)
                for q = 0 to n_pages - 1 do
                  if mask land (1 lsl q) <> 0 && not (pinned pages.(q)) then
                    add ((mask lxor (1 lsl q)) lor pbit) (Array.copy v')
                done
            end)
          front)
      states;
    Hashtbl.reset states;
    Hashtbl.iter (fun k v -> Hashtbl.add states k v) next
  done;
  (* best final cost over all states and fronts *)
  let best = ref infinity and best_v = ref None in
  Hashtbl.iter
    (fun _ front ->
      List.iter
        (fun v ->
          let c = ref 0.0 in
          Array.iteri
            (fun u m -> c := !c +. Cf.eval costs.(u) (float_of_int m))
            v;
          if !c < !best then begin
            best := !c;
            best_v := Some v
          end)
        front)
    states;
  match !best_v with
  | None -> invalid_arg "Dp_opt.solve: empty trace state space"
  | Some v -> { cost = !best; misses_per_user = v; states_explored = !explored }
