(** Lagrangian dual of (CP) and its exact inner minimisation.

    For multipliers y >= 0 on the covering constraints, the dual
    function [g(y)] separates by user into one-dimensional convex
    minimisations [min_s f_i(s) - C_i(s)], where C_i is the concave
    prefix of the user's sorted dual masses; the exact minimum is
    found by walking C's unit segments and bisecting f' inside the
    segment containing the stationary point.  By weak duality any
    [eval] value is a certified lower bound on the CP optimum. *)

type user_solution = {
  total : float;  (** optimal S_i *)
  value : float;  (** phi(S_i) = f_i(S_i) - C(S_i), <= 0 *)
  x : (int * float) list;  (** variable id -> mass (nonzero entries) *)
}

val minimize_user :
  Ccache_cost.Cost_function.t -> (int * float) list -> user_solution
(** [minimize_user f ids_and_masses] minimises over [0, #vars]; the
    input pairs each variable id with its dual mass c_v (any order). *)

type dual_eval = {
  value : float;  (** g(y): certified lower bound on the CP optimum *)
  x_star : float array;  (** an inner minimiser (for supergradients) *)
  per_user : user_solution array;
}

val eval : Formulation.t -> y:float array -> dual_eval
(** @raise Invalid_argument if [y]'s length differs from the horizon. *)

val supergradient : Formulation.t -> x_star:float array -> float array
(** grad_t = rhs_t - activity_t at the inner minimiser. *)
