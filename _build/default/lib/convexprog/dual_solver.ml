(** Projected supergradient ascent on the Lagrangian dual of (CP).

    Produces a certified lower bound on the convex program's optimum —
    and hence (on a flushed trace, by the relaxation chain
    CP <= ICP <= any offline schedule) on the optimal offline cost.
    Every iterate's dual value is a valid bound by weak duality, so the
    solver simply keeps the best one; ascent quality only affects
    tightness, never soundness (up to the documented float tolerance of
    the inner minimisation, ~1e-9 relative).

    Two step schedules are tried and the better bound kept, because no
    single scale suits every curvature:

    - gradient-norm-normalised steps behave well when the inner minimum
      reacts sharply to c_v crossing f' (near-linear costs);
    - raw diminishing steps reach the much larger dual values of
      strongly convex objectives faster.

    Multipliers for constraints with rhs_t <= 0 are pinned to zero:
    those constraints are slack at any feasible point, so positive
    multipliers only lower g. *)

type options = {
  iterations : int;  (** per ascent schedule *)
  initial_step : float;
  verbose : bool;
}

let default_options = { iterations = 200; initial_step = 1.0; verbose = false }

type outcome = {
  bound : float;  (** best dual value found: certified lower bound *)
  best_y : float array;
  iterations_run : int;
  history : float list;  (** dual values of the winning schedule, oldest first *)
}

let ascent ~options ~normalize (cp : Formulation.t) =
  let horizon = cp.Formulation.horizon in
  let active = Array.map (fun rhs -> rhs > 0) cp.Formulation.rhs in
  let y = Array.make horizon 0.0 in
  let best = ref neg_infinity in
  let best_y = ref (Array.copy y) in
  let history = ref [] in
  let record value =
    if value > !best then begin
      best := value;
      best_y := Array.copy y
    end;
    history := value :: !history
  in
  for i = 0 to options.iterations - 1 do
    let { Lagrangian.value; x_star; _ } = Lagrangian.eval cp ~y in
    record value;
    if options.verbose && i mod 20 = 0 then
      Printf.eprintf "dual_solver(%s): iter %d g(y) = %.6g (best %.6g)\n%!"
        (if normalize then "norm" else "raw")
        i value !best;
    let grad = Lagrangian.supergradient cp ~x_star in
    let scale =
      if not normalize then 1.0
      else begin
        let norm = ref 0.0 in
        for t = 0 to horizon - 1 do
          if active.(t) then norm := !norm +. (grad.(t) *. grad.(t))
        done;
        let n = sqrt !norm in
        if n > 0.0 then 1.0 /. n else 0.0
      end
    in
    let step = options.initial_step *. scale /. sqrt (float_of_int (i + 1)) in
    if step > 0.0 then
      for t = 0 to horizon - 1 do
        if active.(t) then y.(t) <- Float.max 0.0 (y.(t) +. (step *. grad.(t)))
      done
  done;
  let { Lagrangian.value; _ } = Lagrangian.eval cp ~y in
  record value;
  (!best, !best_y, List.rev !history)

(* crude estimate of the dual variables' natural magnitude: the
   marginal cost of a user at half its request volume.  For x^3 costs
   this is ~1e6 where a unit step would need thousands of iterations *)
let auto_scale (cp : Formulation.t) =
  let acc = ref 0.0 and n = ref 0 in
  Array.iteri
    (fun u ids ->
      let half = float_of_int (List.length ids) /. 2.0 in
      if half > 0.0 then begin
        acc := !acc +. Ccache_cost.Cost_function.deriv cp.Formulation.costs.(u) half;
        incr n
      end)
    cp.Formulation.vars_of_user;
  if !n = 0 then 1.0
  else Float.max 1.0 (!acc /. float_of_int !n /. sqrt (float_of_int cp.Formulation.horizon))

let solve ?(options = default_options) (cp : Formulation.t) =
  let schedules =
    [
      ascent ~options ~normalize:true cp;
      ascent ~options ~normalize:false cp;
      ascent
        ~options:{ options with initial_step = options.initial_step *. auto_scale cp }
        ~normalize:false cp;
    ]
  in
  let bound, best_y, history =
    List.fold_left
      (fun (bb, by, bh) (b, y, h) -> if b > bb then (b, y, h) else (bb, by, bh))
      (List.hd schedules) (List.tl schedules)
  in
  {
    bound = Float.max 0.0 bound;
    best_y;
    iterations_run = 3 * options.iterations;
    history;
  }

(** Convenience: build the (flushed) formulation and solve.  [k] is the
    online cache size; [cache_size] defaults to [k] (pass [h] for the
    bi-criteria program (CP-h)). *)
let lower_bound ?options ?cache_size ~k ~costs trace =
  let cache_size = Option.value cache_size ~default:k in
  let cp = Formulation.of_trace ~flush:true ~k ~cache_size ~costs trace in
  (solve ?options cp).bound
