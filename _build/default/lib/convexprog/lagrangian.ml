(** Lagrangian dual of (CP) and its exact inner minimisation.

    For multipliers y >= 0 on the covering constraints (the box
    constraints are kept explicit), the dual function is

      g(y) = min_{x in [0,1]^V}  sum_i f_i(S_i)  -  sum_v c_v x_v
             +  sum_t y_t * rhs_t

    with S_i the sum of user i's variables and
    c_v = sum of y_t over the variable's span.  By weak duality
    g(y) <= CP optimum <= ICP optimum <= offline OPT cost (on a flushed
    trace), so any y yields a certified lower bound.

    The inner problem separates by user.  For user i with dual masses
    c_1 >= c_2 >= ... (sorted), putting total mass s on the variables
    optimally fills the largest-c variables first, so

      phi(s) = f_i(s) - C(s),   C(s) = concave pw-linear prefix of c

    is convex in s; its exact minimum is found by walking the unit
    segments of C: on segment (j-1, j) the derivative is
    f_i'(s) - c_j, monotone in s, so the segment either ends the walk
    (derivative already >= 0 at the left end), continues (still <= 0 at
    the right end), or contains the stationary point, located by
    bisection on the monotone f_i' (f' is only evaluated, never
    inverted symbolically, so any convex cost works). *)

module Cf = Ccache_cost.Cost_function

type user_solution = {
  total : float;  (** optimal S_i *)
  value : float;  (** phi(S_i) = f_i(S_i) - C(S_i) *)
  x : (int * float) list;  (** variable id -> optimal mass (only nonzero) *)
}

(* Bisection for f'(s) = target on [lo, hi]; f' non-decreasing. *)
let solve_deriv f ~target ~lo ~hi =
  let rec go lo hi iters =
    if iters = 0 then (lo +. hi) /. 2.0
    else
      let mid = (lo +. hi) /. 2.0 in
      if Cf.deriv f mid < target then go mid hi (iters - 1) else go lo mid (iters - 1)
  in
  go lo hi 60

(** Minimise phi over [0, #vars] for one user.  [ids_and_costs] pairs
    each variable id with its dual mass c_v (need not be sorted). *)
let minimize_user f ids_and_costs =
  let sorted =
    List.sort (fun (_, a) (_, b) -> Float.compare b a) ids_and_costs
  in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  (* walk segments; maintain running prefix of C and best candidate *)
  let best_s = ref 0.0 and best_v = ref 0.0 (* phi(0) = 0 *) in
  let consider s c_prefix =
    let v = Cf.eval f s -. c_prefix in
    if v < !best_v then begin
      best_v := v;
      best_s := s
    end
  in
  let rec walk j c_prefix =
    (* segment (j, j+1) with slope c = arr.(j); c_prefix = C(j) *)
    if j >= n then ()
    else begin
      let _, c = arr.(j) in
      let s_lo = float_of_int j and s_hi = float_of_int (j + 1) in
      let d_lo = Cf.deriv f s_lo -. c and d_hi = Cf.deriv f s_hi -. c in
      if d_lo >= 0.0 then
        (* phi non-decreasing from here on (c only shrinks, f' grows) *)
        ()
      else if d_hi <= 0.0 then begin
        consider s_hi (c_prefix +. c);
        walk (j + 1) (c_prefix +. c)
      end
      else begin
        (* stationary point inside the segment *)
        let s_star = solve_deriv f ~target:c ~lo:s_lo ~hi:s_hi in
        consider s_star (c_prefix +. (c *. (s_star -. s_lo)));
        (* convex phi: no better point after the stationary one *)
        ()
      end
    end
  in
  walk 0 0.0;
  (* reconstruct x achieving mass best_s on the largest-c variables *)
  let x = ref [] in
  let remaining = ref !best_s in
  Array.iter
    (fun (id, _) ->
      if !remaining > 0.0 then begin
        let take = Float.min 1.0 !remaining in
        x := (id, take) :: !x;
        remaining := !remaining -. take
      end)
    arr;
  { total = !best_s; value = !best_v; x = List.rev !x }

type dual_eval = {
  value : float;  (** g(y): certified lower bound on the CP optimum *)
  x_star : float array;  (** an inner minimiser (for subgradients) *)
  per_user : user_solution array;
}

(** Evaluate the dual function at [y] (length = formulation horizon). *)
let eval (cp : Formulation.t) ~y =
  if Array.length y <> cp.Formulation.horizon then
    invalid_arg "Lagrangian.eval: y has wrong length";
  let y_prefix = Array.make (cp.Formulation.horizon + 1) 0.0 in
  for t = 0 to cp.Formulation.horizon - 1 do
    y_prefix.(t + 1) <- y_prefix.(t) +. y.(t)
  done;
  let c = Formulation.var_costs cp ~y_prefix in
  let x_star = Array.make (Formulation.n_vars cp) 0.0 in
  let per_user =
    Array.mapi
      (fun u ids ->
        let sol =
          minimize_user cp.Formulation.costs.(u)
            (List.map (fun vi -> (vi, c.(vi))) ids)
        in
        List.iter (fun (vi, mass) -> x_star.(vi) <- mass) sol.x;
        sol)
      cp.Formulation.vars_of_user
  in
  let inner =
    Array.fold_left (fun acc (s : user_solution) -> acc +. s.value) 0.0 per_user
  in
  let constant =
    let acc = ref 0.0 in
    Array.iteri
      (fun t rhs -> if y.(t) > 0.0 then acc := !acc +. (y.(t) *. float_of_int rhs))
      cp.Formulation.rhs;
    !acc
  in
  { value = inner +. constant; x_star; per_user }

(** Supergradient of g at y given an inner minimiser x-star:
    grad_t = rhs_t - activity_t. *)
let supergradient (cp : Formulation.t) ~x_star =
  let activity = Formulation.constraint_activity cp x_star in
  Array.mapi (fun t rhs -> float_of_int rhs -. activity.(t)) cp.Formulation.rhs
