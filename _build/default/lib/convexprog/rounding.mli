(** Feasibility repair: turn a fractional (CP) solution into an
    integral schedule by replaying the trace and evicting the cached
    page with the largest current fractional variable.  The result's
    objective upper-bounds the (ICP) optimum — E8's upper jaw. *)

type outcome = {
  misses_per_user : int array;
  evictions_per_user : int array;
  cost_by_misses : float;
  cost_by_evictions : float;
}

val round : Formulation.t -> x:float array -> outcome
(** @raise Invalid_argument on a dimension mismatch. *)
