(** KKT residuals for a primal/dual pair of (CP) (paper Section 2.2):
    quantifies distance from optimality.  Used on tiny instances where
    the dual solver should drive residuals near zero, and by E8 to
    report relaxation quality. *)

type residuals = {
  primal_infeasibility : float;
  box_infeasibility : float;
  dual_infeasibility : float;
  stationarity : float;
  complementarity : float;
      (** max over v of [x_v * (f'(S_i) - c_v)^+] and
          [(1 - x_v) * (c_v - f'(S_i))^+] *)
  constraint_complementarity : float;  (** max y_t * slack_t *)
}

val worst : residuals -> float

val compute : Formulation.t -> x:float array -> y:float array -> residuals

val pp : Format.formatter -> residuals -> unit
