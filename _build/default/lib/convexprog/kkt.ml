(** KKT residuals for a primal/dual pair of (CP) (paper Section 2.2).

    Quantifies how far a pair (x, y) — with z reconstructed as the
    positive part needed by the gradient condition — is from satisfying
    the optimality conditions.  Used by tests on tiny instances (where
    the dual solver should drive residuals near zero) and by experiment
    E8 to report relaxation quality. *)

module Cf = Ccache_cost.Cost_function

type residuals = {
  primal_infeasibility : float;
      (** max over t of max(0, rhs_t - activity_t) *)
  box_infeasibility : float;  (** max distance of any x_v outside [0,1] *)
  dual_infeasibility : float;  (** max over t of max(0, -y_t) *)
  stationarity : float;
      (** max over v of |min-form gradient residual|: for each v the
          gradient f'_i(S_i) - c_v + z_v - mu_v must vanish with
          z_v = max(0, c_v - f'(S_i)) (active only when x_v = 1 is
          optimal) and mu_v = max(0, f'(S_i) - c_v); the residual
          reported is the complementarity mismatch below *)
  complementarity : float;
      (** max over v of
          x_v * max(0, f'(S_i) - c_v)   (x > 0 needs gradient <= 0
                                          before z lifts it to 0)
          and (1 - x_v) * max(0, c_v - f'(S_i))
                                        (x < 1 needs gradient >= 0) *)
  constraint_complementarity : float;
      (** max over t of y_t * (activity_t - rhs_t) *)
}

let worst r =
  List.fold_left Float.max 0.0
    [
      r.primal_infeasibility;
      r.box_infeasibility;
      r.dual_infeasibility;
      r.complementarity;
      r.constraint_complementarity;
    ]

let compute (cp : Formulation.t) ~x ~y =
  let horizon = cp.Formulation.horizon in
  if Array.length y <> horizon then invalid_arg "Kkt.compute: y length";
  if Array.length x <> Formulation.n_vars cp then invalid_arg "Kkt.compute: x length";
  let y_prefix = Array.make (horizon + 1) 0.0 in
  for t = 0 to horizon - 1 do
    y_prefix.(t + 1) <- y_prefix.(t) +. y.(t)
  done;
  let c = Formulation.var_costs cp ~y_prefix in
  let activity = Formulation.constraint_activity cp x in
  let primal = ref 0.0 and ccomp = ref 0.0 in
  Array.iteri
    (fun t rhs ->
      let gap = float_of_int rhs -. activity.(t) in
      if gap > !primal then primal := gap;
      let slackness = y.(t) *. Float.max 0.0 (activity.(t) -. float_of_int rhs) in
      if slackness > !ccomp then ccomp := slackness)
    cp.Formulation.rhs;
  let box = ref 0.0 and dual = ref 0.0 in
  Array.iter
    (fun v ->
      box := Float.max !box (Float.max (-.v) (v -. 1.0)))
    x;
  Array.iter (fun v -> dual := Float.max !dual (-.v)) y;
  (* per-user sums *)
  let totals = Array.make cp.Formulation.real_users 0.0 in
  Array.iteri
    (fun u ids ->
      totals.(u) <- List.fold_left (fun acc vi -> acc +. x.(vi)) 0.0 ids)
    cp.Formulation.vars_of_user;
  let comp = ref 0.0 and stat = ref 0.0 in
  Array.iteri
    (fun u ids ->
      let fprime = Cf.deriv cp.Formulation.costs.(u) totals.(u) in
      List.iter
        (fun vi ->
          let grad = fprime -. c.(vi) in
          (* x_v > 0 requires grad <= 0 (z then closes the gap only at
             x_v = 1); x_v < 1 requires grad >= 0 to be optimal at the
             boundary *)
          let r1 = x.(vi) *. Float.max 0.0 grad in
          let r2 = (1.0 -. x.(vi)) *. Float.max 0.0 (-.grad) in
          comp := Float.max !comp (Float.max r1 r2);
          stat := Float.max !stat (Float.min r1 r2))
        ids)
    cp.Formulation.vars_of_user;
  {
    primal_infeasibility = !primal;
    box_infeasibility = !box;
    dual_infeasibility = !dual;
    stationarity = !stat;
    complementarity = !comp;
    constraint_complementarity = !ccomp;
  }

let pp ppf r =
  Fmt.pf ppf
    "primal=%.3g box=%.3g dual=%.3g stationarity=%.3g complementarity=%.3g y-slack=%.3g"
    r.primal_infeasibility r.box_infeasibility r.dual_infeasibility r.stationarity
    r.complementarity r.constraint_complementarity
