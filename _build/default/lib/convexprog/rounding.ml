(** Feasibility repair: turn a fractional (CP) solution into an
    integral schedule by simulation.

    Replays the trace with a cache of size [cache_size]; whenever an
    eviction is forced, the victim is the cached page whose current
    fractional variable x(p, j(p,t)) is largest ("the relaxation most
    wanted this page out"), ties broken by page order.  The result is a
    feasible integral solution whose objective upper-bounds the (ICP)
    optimum — used in E8 to sandwich the relaxation gap from above. *)

open Ccache_trace
module Cf = Ccache_cost.Cost_function

type outcome = {
  misses_per_user : int array;
  evictions_per_user : int array;
  cost_by_misses : float;
  cost_by_evictions : float;
}

let round (cp : Formulation.t) ~x =
  if Array.length x <> Formulation.n_vars cp then
    invalid_arg "Rounding.round: dimension mismatch";
  let trace = cp.Formulation.trace in
  let n = Trace.length trace in
  let real = cp.Formulation.real_users in
  let k = cp.Formulation.cache_size in
  (* var id of (page at pos): variables were built in position order,
     one per real-user request; rebuild the per-position map *)
  let var_at = Array.make n (-1) in
  Array.iteri (fun vi v -> var_at.(v.Formulation.start_pos) <- vi) cp.Formulation.vars;
  (* cached page -> position of its latest request (to find its current var) *)
  let cached : int Page.Tbl.t = Page.Tbl.create 64 in
  let misses = Array.make (real + 1) 0 in
  let evictions = Array.make (real + 1) 0 in
  let frac pos =
    let vi = var_at.(pos) in
    if vi < 0 then 1e9 (* flush pages never enter, see below *) else x.(vi)
  in
  for pos = 0 to n - 1 do
    let p = Trace.request trace pos in
    let u = Stdlib.min (Page.user p) real in
    if Page.Tbl.mem cached p then Page.Tbl.replace cached p pos
    else begin
      misses.(u) <- misses.(u) + 1;
      if u < real || Page.Tbl.length cached > 0 then begin
        if Page.Tbl.length cached >= k || (u >= real && Page.Tbl.length cached > 0)
        then begin
          (* evict max-fractional cached page *)
          let victim = ref None in
          Page.Tbl.iter
            (fun q qpos ->
              let f = frac qpos in
              match !victim with
              | None -> victim := Some (q, f)
              | Some (bq, bf) ->
                  if f > bf || (f = bf && Page.compare q bq < 0) then
                    victim := Some (q, f))
            cached;
          match !victim with
          | Some (q, _) ->
              Page.Tbl.remove cached q;
              evictions.(Stdlib.min (Page.user q) real) <-
                evictions.(Stdlib.min (Page.user q) real) + 1
          | None -> ()
        end;
        (* flush pages are pinned out of the cache: they evict but do
           not occupy (their variables are fixed to 0 in the program) *)
        if u < real then Page.Tbl.replace cached p pos
      end
    end
  done;
  let eval_cost counts =
    let acc = ref 0.0 in
    for u = 0 to real - 1 do
      acc :=
        !acc +. Cf.eval cp.Formulation.costs.(u) (float_of_int counts.(u))
    done;
    !acc
  in
  {
    misses_per_user = Array.sub misses 0 real;
    evictions_per_user = Array.sub evictions 0 real;
    cost_by_misses = eval_cost misses;
    cost_by_evictions = eval_cost evictions;
  }
