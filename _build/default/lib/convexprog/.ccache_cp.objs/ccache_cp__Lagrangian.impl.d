lib/convexprog/lagrangian.ml: Array Ccache_cost Float Formulation List
