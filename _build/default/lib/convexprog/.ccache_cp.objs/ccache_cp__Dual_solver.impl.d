lib/convexprog/dual_solver.ml: Array Ccache_cost Float Formulation Lagrangian List Option Printf
