lib/convexprog/kkt.ml: Array Ccache_cost Float Fmt Formulation List
