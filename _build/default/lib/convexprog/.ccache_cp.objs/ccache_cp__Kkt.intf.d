lib/convexprog/kkt.mli: Format Formulation
