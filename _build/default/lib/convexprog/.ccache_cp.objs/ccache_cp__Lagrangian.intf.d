lib/convexprog/lagrangian.mli: Ccache_cost Formulation
