lib/convexprog/rounding.ml: Array Ccache_cost Ccache_trace Formulation Page Stdlib Trace
