lib/convexprog/formulation.mli: Ccache_cost Ccache_trace Page Trace
