lib/convexprog/rounding.mli: Formulation
