lib/convexprog/dual_solver.mli: Ccache_cost Ccache_trace Formulation
