lib/convexprog/formulation.ml: Array Ccache_cost Ccache_trace Hashtbl Int List Option Page Trace
