(** The convex program (CP) / (CP-h) of paper Figures 1 and 4.

    Variables: x(p,j) in [0,1] for every page p and interval j (between
    the page's j-th and (j+1)-th requests), meaning "p is evicted in
    that interval".  Constraints, one per time t:

      sum_{p in B(t) \ {p_t}} x(p, j(p,t)) >= |B(t)| - cache_size

    Objective: sum_i f_i( sum of user i's variables ).

    The structural fact this module exploits: variable (p,j) appears in
    exactly the constraints for t strictly between t(p,j) and t(p,j+1)
    (the requested page p_t is excluded from its own constraint, and
    p's interval at any such t is j).  So membership never needs to be
    materialised — interval endpoints are enough both to accumulate
    per-variable dual mass c(p,j) = sum of y_t over the span (via
    prefix sums) and to compute per-constraint activity (via a
    difference array).

    Built from a flushed trace (see {!of_trace} [~flush]) the program's
    optimum lower-bounds the optimal offline cost under the
    misses = evictions accounting; flush-user variables are pinned to 0
    (the paper gives the dummy user infinite cost). *)

open Ccache_trace
module Cf = Ccache_cost.Cost_function

type var = {
  page : Page.t;
  j : int;  (** 1-based interval index *)
  start_pos : int;  (** t(p,j): position of the j-th request *)
  end_pos : int;  (** t(p,j+1), or the horizon if there is none *)
}

type t = {
  trace : Trace.t;  (** possibly flushed *)
  real_users : int;
  cache_size : int;  (** k, or h for (CP-h) *)
  costs : Cf.t array;  (** indexed by real user *)
  vars : var array;
  vars_of_user : int list array;  (** variable ids per real user *)
  rhs : int array;  (** rhs.(t) = |B(t)| - cache_size (may be <= 0) *)
  horizon : int;
}

let n_vars t = Array.length t.vars
let horizon t = t.horizon

(** Build (CP) (or (CP-h) via [~cache_size]) for [trace].

    @param flush model the paper's terminal flush: [cache_size] extra
      requests by a dummy user whose variables are pinned to zero.
      The flush width MUST equal the program's cache size: with pinned
      dummies a wider flush makes the program infeasible (the j-th
      dummy constraint needs j <= cache_size), which would render the
      dual unbounded — not a valid lower bound.  The [k] parameter is
      kept for call-site symmetry with the engine but does not affect
      the program. *)
let of_trace ?(flush = true) ~k ~cache_size ~costs trace =
  ignore k;
  if cache_size <= 0 then invalid_arg "Formulation.of_trace: cache_size > 0";
  let real_users = Trace.n_users trace in
  if Array.length costs <> real_users then
    invalid_arg "Formulation.of_trace: costs/users mismatch";
  let full = if flush then Trace.with_flush ~k:cache_size trace else trace in
  let index = Trace.Index.build full in
  let n = Trace.length full in
  let vars = ref [] in
  let vars_of_user = Array.make real_users [] in
  let count = ref 0 in
  for pos = 0 to n - 1 do
    let p = Trace.request full pos in
    if Page.user p < real_users then begin
      let next = Trace.Index.next_use index pos in
      let v =
        {
          page = p;
          j = Trace.Index.interval_index index pos;
          start_pos = pos;
          end_pos = (if next = Int.max_int then n else next);
        }
      in
      vars := v :: !vars;
      vars_of_user.(Page.user p) <- !count :: vars_of_user.(Page.user p);
      incr count
    end
  done;
  let rhs =
    Array.init n (fun pos -> Trace.Index.distinct_upto index pos - cache_size)
  in
  {
    trace = full;
    real_users;
    cache_size;
    costs;
    vars = Array.of_list (List.rev !vars);
    vars_of_user = Array.map List.rev vars_of_user;
    rhs;
    horizon = n;
  }

(** Per-variable dual mass c_v = sum of y_t over t in
    (start_pos, end_pos), given the prefix sums of y
    ([prefix.(t)] = sum over positions < t). *)
let var_costs t ~y_prefix =
  Array.map
    (fun v ->
      if v.end_pos <= v.start_pos + 1 then 0.0
      else y_prefix.(v.end_pos) -. y_prefix.(v.start_pos + 1))
    t.vars

(** Per-constraint activity sum_{members} x_v for a primal vector [x],
    computed with a difference array in O(V + T). *)
let constraint_activity t x =
  if Array.length x <> Array.length t.vars then
    invalid_arg "Formulation.constraint_activity: dimension mismatch";
  let diff = Array.make (t.horizon + 1) 0.0 in
  Array.iteri
    (fun vi v ->
      (* member of constraints t in (start_pos, end_pos) exclusive *)
      let lo = v.start_pos + 1 and hi = v.end_pos in
      if lo < hi then begin
        diff.(lo) <- diff.(lo) +. x.(vi);
        diff.(hi) <- diff.(hi) -. x.(vi)
      end)
    t.vars;
  let activity = Array.make t.horizon 0.0 in
  let acc = ref 0.0 in
  for pos = 0 to t.horizon - 1 do
    acc := !acc +. diff.(pos);
    activity.(pos) <- !acc
  done;
  activity

(** Objective sum_i f_i(sum of user i's variables). *)
let objective t x =
  if Array.length x <> Array.length t.vars then
    invalid_arg "Formulation.objective: dimension mismatch";
  let total = ref 0.0 in
  Array.iteri
    (fun u ids ->
      let s = List.fold_left (fun acc vi -> acc +. x.(vi)) 0.0 ids in
      total := !total +. Cf.eval t.costs.(u) s)
    t.vars_of_user;
  !total

type feasibility = {
  feasible : bool;
  worst_violation : float;  (** max over t of rhs_t - activity_t, if > 0 *)
  violated_constraints : int;
  box_violations : int;
}

(** Check primal feasibility of [x] (box + covering constraints). *)
let check_feasible ?(tol = 1e-9) t x =
  let activity = constraint_activity t x in
  let worst = ref 0.0 and violated = ref 0 in
  Array.iteri
    (fun pos rhs ->
      let gap = float_of_int rhs -. activity.(pos) in
      if gap > tol then begin
        incr violated;
        if gap > !worst then worst := gap
      end)
    t.rhs;
  let box = ref 0 in
  Array.iter (fun v -> if v < -.tol || v > 1.0 +. tol then incr box) x;
  {
    feasible = !violated = 0 && !box = 0;
    worst_violation = !worst;
    violated_constraints = !violated;
    box_violations = !box;
  }

(** The integral solution induced by an actual schedule: given the
    per-position eviction log (position of each eviction and the page
    evicted), set x(p, j(p, evict-time)) = 1.  [evictions] is a list of
    (position, page).  Used to embed engine runs into the program. *)
let solution_of_evictions t evictions =
  (* A variable (p,j) spans positions [start_pos, end_pos); an eviction
     of p at position pos falls in the unique variable with
     start_pos <= pos < end_pos.  Look it up by binary search over p's
     variables (they are in increasing start_pos order). *)
  let vars_of_page : (Page.t, int list) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun vi v ->
      let prev = Option.value (Hashtbl.find_opt vars_of_page v.page) ~default:[] in
      Hashtbl.replace vars_of_page v.page (vi :: prev))
    t.vars;
  let sorted_vars_of_page : (Page.t, int array) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun page ids ->
      Hashtbl.replace sorted_vars_of_page page (Array.of_list (List.rev ids)))
    vars_of_page;
  let x = Array.make (Array.length t.vars) 0.0 in
  List.iter
    (fun (pos, page) ->
      if Page.user page < t.real_users then
        match Hashtbl.find_opt sorted_vars_of_page page with
        | None -> invalid_arg "Formulation.solution_of_evictions: unknown page"
        | Some ids ->
            (* greatest id with start_pos <= pos *)
            let lo = ref 0 and hi = ref (Array.length ids - 1) in
            if t.vars.(ids.(0)).start_pos > pos then
              invalid_arg "Formulation.solution_of_evictions: eviction before first request";
            while !lo < !hi do
              let mid = (!lo + !hi + 1) / 2 in
              if t.vars.(ids.(mid)).start_pos <= pos then lo := mid else hi := mid - 1
            done;
            x.(ids.(!lo)) <- 1.0)
    evictions;
  x
