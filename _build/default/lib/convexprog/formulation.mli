(** The convex program (CP) / (CP-h) of paper Figures 1 and 4.

    Variables x(p,j) in [0,1] mean "page p is evicted between its j-th
    and (j+1)-th requests"; one covering constraint per time
    ([activity >= |B(t)| - cache_size]); objective
    [sum_i f_i(sum of user i's variables)].

    Variable (p,j) appears in exactly the constraints for
    [t(p,j) < t < t(p,j+1)], so membership is never materialised:
    interval endpoints suffice for dual mass accumulation (prefix
    sums) and constraint activity (difference arrays).

    Built from a flushed trace ([~flush:true]) the program's optimum
    lower-bounds the optimal offline cost under the miss = eviction
    accounting; flush-user variables are pinned to 0 (the paper gives
    the dummy user infinite cost). *)

open Ccache_trace

type var = {
  page : Page.t;
  j : int;  (** 1-based interval index *)
  start_pos : int;  (** t(p,j) *)
  end_pos : int;  (** t(p,j+1), or the horizon *)
}

type t = {
  trace : Trace.t;  (** possibly flushed *)
  real_users : int;
  cache_size : int;  (** k, or h for (CP-h) *)
  costs : Ccache_cost.Cost_function.t array;
  vars : var array;
  vars_of_user : int list array;
  rhs : int array;  (** rhs.(t) = |B(t)| - cache_size (may be <= 0) *)
  horizon : int;
}

val n_vars : t -> int
val horizon : t -> int

val of_trace :
  ?flush:bool ->
  k:int ->
  cache_size:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Trace.t ->
  t
(** [flush] (default true) appends [cache_size] pinned dummy requests
    — the flush width must equal the program's cache size or the
    pinned program becomes infeasible (dual unbounded); [k] is kept
    for call-site symmetry and does not affect the program. *)

val var_costs : t -> y_prefix:float array -> float array
(** Per-variable dual mass c_v = sum of y over the open span, given
    prefix sums ([y_prefix.(t)] = sum over positions < t). *)

val constraint_activity : t -> float array -> float array
(** Per-constraint [sum over members of x_v], in O(V + T). *)

val objective : t -> float array -> float

type feasibility = {
  feasible : bool;
  worst_violation : float;
  violated_constraints : int;
  box_violations : int;
}

val check_feasible : ?tol:float -> t -> float array -> feasibility

val solution_of_evictions : t -> (int * Page.t) list -> float array
(** Integral solution induced by a schedule: for each
    [(position, page)] eviction, sets the covering variable whose span
    contains the position.  Embeds engine runs into the program (the
    paper's observation that every algorithm yields a feasible (ICP)
    point). *)
