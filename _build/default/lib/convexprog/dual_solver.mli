(** Projected supergradient ascent on the Lagrangian dual of (CP):
    certified lower bounds on the offline optimum.

    Soundness never depends on ascent quality — every iterate's dual
    value is a valid bound by weak duality and the best one is kept.
    Three step schedules are tried (gradient-normalised, raw
    diminishing, and raw scaled to the costs' natural magnitude)
    because no single scale suits every curvature. *)

type options = {
  iterations : int;  (** per ascent schedule *)
  initial_step : float;
  verbose : bool;
}

val default_options : options
(** 200 iterations, unit step, quiet. *)

type outcome = {
  bound : float;  (** best dual value: certified lower bound, >= 0 *)
  best_y : float array;
  iterations_run : int;
  history : float list;  (** winning schedule's values, oldest first *)
}

val solve : ?options:options -> Formulation.t -> outcome

val lower_bound :
  ?options:options ->
  ?cache_size:int ->
  k:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Ccache_trace.Trace.t ->
  float
(** Build the flushed formulation and solve.  [cache_size] defaults to
    [k]; pass [h] for the bi-criteria program (CP-h). *)
