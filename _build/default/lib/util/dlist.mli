(** Intrusive doubly-linked list with O(1) splicing.

    Backbone of the LRU/FIFO/LRU-K recency structures: nodes are
    exposed so a policy can keep a hashtable from page to node and
    move/remove a node in O(1) without search.  Every operation checks
    node ownership, so cross-list splicing and double insertion raise
    instead of corrupting the structure. *)

type 'a node
type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val node : 'a -> 'a node
(** A fresh detached node carrying the value. *)

val value : 'a node -> 'a

val push_front : 'a t -> 'a node -> unit
(** @raise Invalid_argument if the node is already in a list. *)

val push_back : 'a t -> 'a node -> unit

val remove : 'a t -> 'a node -> unit
(** Detach; the node may be reinserted afterwards.
    @raise Invalid_argument if the node is not in this list. *)

val front : 'a t -> 'a node option
val back : 'a t -> 'a node option
val pop_front : 'a t -> 'a node option
val pop_back : 'a t -> 'a node option

val move_to_front : 'a t -> 'a node -> unit
(** LRU "touch". @raise Invalid_argument if not a member. *)

val move_to_back : 'a t -> 'a node -> unit

val iter : ('a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

val to_list : 'a t -> 'a list
(** Front-to-back element values. *)

val invariant_ok : 'a t -> bool
(** Structural consistency (links, ownership, size); used by tests. *)
