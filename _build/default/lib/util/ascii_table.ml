(** Plain-text table rendering for experiment reports.

    Produces aligned, boxed ASCII tables as well as GitHub-flavoured
    markdown tables (used when regenerating EXPERIMENTS.md sections). *)

type align = Left | Right | Center

type t = {
  title : string option;
  header : string list;
  aligns : align list;
  mutable rows_rev : string list list;
}

let create ?title ?aligns header =
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> List.length header then
          invalid_arg "Ascii_table.create: aligns/header length mismatch";
        a
    | None -> List.map (fun _ -> Right) header
  in
  { title; header; aligns; rows_rev = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Ascii_table.add_row: row width mismatch";
  t.rows_rev <- row :: t.rows_rev

let add_rows t rows = List.iter (add_row t) rows

let rows t = List.rev t.rows_rev

(* Column widths: max over header and all cells. *)
let widths t =
  let all = t.header :: rows t in
  let ncols = List.length t.header in
  let w = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> w.(i) <- Stdlib.max w.(i) (String.length cell)) row)
    all;
  w

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else
    let fill = width - len in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let l = fill / 2 in
        String.make l ' ' ^ s ^ String.make (fill - l) ' '

let render_row aligns w row =
  let cells =
    List.mapi (fun i cell -> pad (List.nth aligns i) w.(i) cell) row
  in
  "| " ^ String.concat " | " cells ^ " |"

let separator w =
  "+" ^ String.concat "+" (Array.to_list (Array.map (fun n -> String.make (n + 2) '-') w)) ^ "+"

(** Render as a boxed ASCII table. *)
let to_string t =
  let w = widths t in
  let buf = Buffer.create 256 in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  let sep = separator w in
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row t.aligns w t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row t.aligns w row);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.add_string buf sep;
  Buffer.contents buf

(** Render as a GitHub-flavoured markdown table. *)
let to_markdown t =
  let w = widths t in
  let buf = Buffer.create 256 in
  (match t.title with
  | Some title -> Buffer.add_string buf ("**" ^ title ^ "**\n\n")
  | None -> ());
  Buffer.add_string buf (render_row t.aligns w t.header);
  Buffer.add_char buf '\n';
  let dashes =
    List.mapi
      (fun i align ->
        let n = Stdlib.max 3 w.(i) in
        match align with
        | Left -> ":" ^ String.make (n - 1) '-'
        | Right -> String.make (n - 1) '-' ^ ":"
        | Center -> ":" ^ String.make (n - 2) '-' ^ ":")
      t.aligns
  in
  Buffer.add_string buf ("| " ^ String.concat " | " dashes ^ " |");
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row t.aligns w row);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let print t = print_string (to_string t); print_newline ()

(* Cell formatting helpers shared across reports. *)
let cell_int i = string_of_int i
let cell_float ?(digits = 4) f = Printf.sprintf "%.*g" digits f
let cell_pct f = Printf.sprintf "%.1f%%" (100.0 *. f)
let cell_ratio f = Printf.sprintf "%.3f" f
