(** Binary min-heap over integer keys with float priorities and
    O(log n) arbitrary update/removal via a key->slot index.

    Used by the fast ALG-DISCRETE implementation (per-user budget heaps
    and the cross-user minimum structure) and by priority-based eviction
    policies (Landlord, Convex-Belady).

    Ties are broken by the smaller key, making every operation fully
    deterministic regardless of insertion order history. *)

type entry = { key : int; mutable prio : float }

type t = {
  mutable data : entry array; (* slots [0, size) are live *)
  mutable size : int;
  slots : (int, int) Hashtbl.t; (* key -> slot *)
}

let dummy = { key = min_int; prio = nan }

let create ?(capacity = 16) () =
  { data = Array.make (Stdlib.max capacity 1) dummy; size = 0; slots = Hashtbl.create 64 }

let length t = t.size
let is_empty t = t.size = 0
let mem t key = Hashtbl.mem t.slots key

let less a b = a.prio < b.prio || (a.prio = b.prio && a.key < b.key)

let set_slot t i e =
  t.data.(i) <- e;
  Hashtbl.replace t.slots e.key i

let swap t i j =
  let a = t.data.(i) and b = t.data.(j) in
  set_slot t i b;
  set_slot t j a

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) dummy in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

(** Insert a fresh key. Raises if the key is already present. *)
let add t ~key ~prio =
  if Hashtbl.mem t.slots key then invalid_arg "Indexed_heap.add: duplicate key";
  if t.size = Array.length t.data then grow t;
  let e = { key; prio } in
  set_slot t t.size e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let find_slot t key =
  match Hashtbl.find_opt t.slots key with
  | Some i -> i
  | None -> raise Not_found

(** Current priority of [key]. Raises [Not_found] if absent. *)
let priority t key = t.data.(find_slot t key).prio

(** Minimum entry without removing it. *)
let peek t = if t.size = 0 then None else Some (t.data.(0).key, t.data.(0).prio)

let peek_exn t =
  match peek t with
  | Some kp -> kp
  | None -> invalid_arg "Indexed_heap.peek_exn: empty heap"

let remove_slot t i =
  let last = t.size - 1 in
  let removed = t.data.(i) in
  Hashtbl.remove t.slots removed.key;
  if i <> last then begin
    let moved = t.data.(last) in
    set_slot t i moved;
    t.data.(last) <- dummy;
    t.size <- last;
    sift_down t i;
    sift_up t i
  end
  else begin
    t.data.(last) <- dummy;
    t.size <- last
  end

(** Remove and return the minimum. *)
let pop t =
  if t.size = 0 then None
  else begin
    let k = t.data.(0).key and p = t.data.(0).prio in
    remove_slot t 0;
    Some (k, p)
  end

let pop_exn t =
  match pop t with
  | Some kp -> kp
  | None -> invalid_arg "Indexed_heap.pop_exn: empty heap"

(** Remove an arbitrary key. Raises [Not_found] if absent. *)
let remove t key = remove_slot t (find_slot t key)

(** Set the priority of an existing key (increase or decrease). *)
let update t ~key ~prio =
  let i = find_slot t key in
  t.data.(i).prio <- prio;
  sift_down t i;
  sift_up t i

(** Insert or update. *)
let set t ~key ~prio =
  if mem t key then update t ~key ~prio else add t ~key ~prio

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i).key t.data.(i).prio
  done

let to_list t =
  let acc = ref [] in
  iter (fun k p -> acc := (k, p) :: !acc) t;
  List.rev !acc

(** Heap-order and index consistency; used by tests. *)
let invariant_ok t =
  let ok = ref (Hashtbl.length t.slots = t.size) in
  for i = 1 to t.size - 1 do
    if less t.data.(i) t.data.((i - 1) / 2) then ok := false
  done;
  for i = 0 to t.size - 1 do
    match Hashtbl.find_opt t.slots t.data.(i).key with
    | Some j when j = i -> ()
    | _ -> ok := false
  done;
  !ok
