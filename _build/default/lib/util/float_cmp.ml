(** Tolerant float comparison.

    The dual-variable bookkeeping in ALG-CONT accumulates sums of budget
    increments; invariant checks compare those sums against analytic
    derivatives, so all equality tests go through these helpers with a
    combined absolute/relative tolerance. *)

let default_tol = 1e-9

(** [approx_eq ~tol a b] is true when [|a-b| <= tol * max(1,|a|,|b|)]. *)
let approx_eq ?(tol = default_tol) a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= tol *. scale

(** [a <= b] up to tolerance. *)
let approx_le ?(tol = default_tol) a b =
  a <= b || approx_eq ~tol a b

(** [a >= b] up to tolerance. *)
let approx_ge ?(tol = default_tol) a b =
  a >= b || approx_eq ~tol a b

(** True when [a] is zero up to absolute tolerance. *)
let approx_zero ?(tol = default_tol) a = Float.abs a <= tol

(** Signed relative error of [measured] against [expected]. *)
let relative_error ~expected ~measured =
  if expected = 0.0 then Float.abs measured
  else Float.abs (measured -. expected) /. Float.abs expected

let clamp ~lo ~hi x = Float.max lo (Float.min hi x)
