(** Plain-text table rendering for experiment reports: aligned boxed
    ASCII and GitHub-flavoured markdown (used when regenerating
    EXPERIMENTS.md sections). *)

type align = Left | Right | Center

type t

val create : ?title:string -> ?aligns:align list -> string list -> t
(** [create header] makes an empty table.  [aligns] defaults to
    all-[Right]. @raise Invalid_argument on aligns/header mismatch. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_rows : t -> string list list -> unit

val rows : t -> string list list
(** Rows in insertion order. *)

val to_string : t -> string
(** Boxed ASCII rendering. *)

val to_markdown : t -> string
(** GitHub-flavoured markdown rendering. *)

val print : t -> unit
(** [to_string] to stdout, with a trailing newline. *)

(** Cell formatting helpers shared across reports. *)

val cell_int : int -> string
val cell_float : ?digits:int -> float -> string
val cell_pct : float -> string
(** Fraction rendered as a percentage, e.g. [0.5 -> "50.0%"]. *)

val cell_ratio : float -> string
(** Three-decimal fixed rendering. *)
