(** Intrusive doubly-linked list with O(1) splicing.

    Backbone of the LRU/FIFO/LRU-K recency structures: nodes are exposed
    so a policy can keep a hashtable from page to node and move/remove a
    node in O(1) without search. *)

type 'a node = {
  value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable owner : int;
      (* identity of the list currently containing the node; 0 = detached.
         Guards against cross-list splicing bugs. *)
}

type 'a t = {
  id : int;
  mutable front : 'a node option;
  mutable back : 'a node option;
  mutable size : int;
}

let next_id = ref 0

let create () =
  incr next_id;
  { id = !next_id; front = None; back = None; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let node value = { value; prev = None; next = None; owner = 0 }

let value n = n.value

let check_member t n name =
  if n.owner <> t.id then invalid_arg (name ^ ": node not in this list")

let check_detached n name =
  if n.owner <> 0 then invalid_arg (name ^ ": node already in a list")

(** Insert a detached node at the front. *)
let push_front t n =
  check_detached n "Dlist.push_front";
  n.owner <- t.id;
  n.prev <- None;
  n.next <- t.front;
  (match t.front with
  | Some f -> f.prev <- Some n
  | None -> t.back <- Some n);
  t.front <- Some n;
  t.size <- t.size + 1

(** Insert a detached node at the back. *)
let push_back t n =
  check_detached n "Dlist.push_back";
  n.owner <- t.id;
  n.next <- None;
  n.prev <- t.back;
  (match t.back with
  | Some b -> b.next <- Some n
  | None -> t.front <- Some n);
  t.back <- Some n;
  t.size <- t.size + 1

(** Detach a node from the list; the node may be reinserted later. *)
let remove t n =
  check_member t n "Dlist.remove";
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.front <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.back <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.owner <- 0;
  t.size <- t.size - 1

let front t = t.front
let back t = t.back

let pop_front t =
  match t.front with
  | None -> None
  | Some n ->
      remove t n;
      Some n

let pop_back t =
  match t.back with
  | None -> None
  | Some n ->
      remove t n;
      Some n

(** Move an existing member node to the front (LRU "touch"). *)
let move_to_front t n =
  check_member t n "Dlist.move_to_front";
  if t.front != Some n then begin
    remove t n;
    push_front t n
  end

let move_to_back t n =
  check_member t n "Dlist.move_to_back";
  if t.back != Some n then begin
    remove t n;
    push_back t n
  end

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
        f n.value;
        go n.next
  in
  go t.front

let fold f init t =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) t;
  !acc

(** Front-to-back element list. *)
let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)

(** Internal consistency check, used by tests. *)
let invariant_ok t =
  let same a b =
    match a, b with
    | None, None -> true
    | Some x, Some y -> x == y
    | _ -> false
  in
  let rec go prev node count =
    match node with
    | None -> same t.back prev && count = t.size
    | Some n ->
        n.owner = t.id
        && (match n.prev, prev with
           | None, None -> same t.front (Some n)
           | Some p, Some q -> p == q
           | _ -> false)
        && go (Some n) n.next (count + 1)
  in
  go None t.front 0
