lib/util/dlist.mli:
