lib/util/indexed_heap.ml: Array Hashtbl List Stdlib
