lib/util/float_cmp.ml: Float
