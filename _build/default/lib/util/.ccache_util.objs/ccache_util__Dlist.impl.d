lib/util/dlist.ml: List
