lib/util/prng.mli:
