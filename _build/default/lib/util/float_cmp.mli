(** Tolerant float comparison, shared by the dual-variable invariant
    checks and the tests. *)

val default_tol : float
(** [1e-9]. *)

val approx_eq : ?tol:float -> float -> float -> bool
(** [approx_eq a b] iff [|a - b| <= tol * max(1, |a|, |b|)]. *)

val approx_le : ?tol:float -> float -> float -> bool
val approx_ge : ?tol:float -> float -> float -> bool

val approx_zero : ?tol:float -> float -> bool
(** Absolute-tolerance zero test. *)

val relative_error : expected:float -> measured:float -> float
(** Unsigned relative error; absolute error when [expected = 0]. *)

val clamp : lo:float -> hi:float -> float -> float
