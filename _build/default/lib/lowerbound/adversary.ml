(** The adaptive adversary of Theorem 1.4.

    Instance: n users, one page each, cache size k = n - 1.  After a
    warm-up that fills the cache with pages 0..n-2, every step requests
    exactly the page missing from the online algorithm's cache, forcing
    an eviction per step.  The request sequence depends on the
    algorithm, so the adversary co-simulates: it owns the cache model
    (mirroring {!Ccache_sim.Engine}'s bookkeeping) and drives the
    policy's handlers directly.

    Returns both the induced trace — a perfectly ordinary trace that
    offline comparators can then be run on — and the online
    algorithm's per-user miss counts. *)

module Policy = Ccache_sim.Policy
open Ccache_trace

type outcome = {
  trace : Trace.t;
  online_misses : int array;  (** per user *)
  online_evictions : int array;
  k : int;
}

(** Drive [policy] for [steps] adversarial requests (after the n-1
    warm-up requests, which are also part of the returned trace).

    @param costs per-user cost functions, made visible to cost-aware
      policies exactly as the engine would. *)
let drive ~n_users ~steps ~costs policy =
  if n_users < 2 then invalid_arg "Adversary.drive: need at least 2 users";
  if Array.length costs <> n_users then
    invalid_arg "Adversary.drive: costs/users mismatch";
  let k = n_users - 1 in
  let config = Policy.Config.make ~k ~costs () in
  if Policy.needs_future policy then
    invalid_arg "Adversary.drive: offline policies cannot be driven adaptively";
  let h = Policy.instantiate policy config in
  let cached = Array.make n_users false in
  let cached_count = ref 0 in
  let misses = Array.make n_users 0 in
  let evictions = Array.make n_users 0 in
  let requests = ref [] in
  let page_of u = Page.make ~user:u ~id:0 in
  let request pos u =
    requests := page_of u :: !requests;
    if cached.(u) then h.Policy.on_hit ~pos (page_of u)
    else begin
      misses.(u) <- misses.(u) + 1;
      if !cached_count >= k then begin
        let victim = h.Policy.choose_victim ~pos ~incoming:(page_of u) in
        let v = Page.user victim in
        if not cached.(v) then
          invalid_arg
            (Policy.name policy ^ ": adversary saw eviction of uncached page");
        cached.(v) <- false;
        decr cached_count;
        evictions.(v) <- evictions.(v) + 1;
        h.Policy.on_evict ~pos victim
      end;
      cached.(u) <- true;
      incr cached_count;
      h.Policy.on_insert ~pos (page_of u)
    end
  in
  (* warm-up: fill the cache with users 0..k-1 *)
  for u = 0 to k - 1 do
    request u u
  done;
  (* adversarial phase: request the unique missing page *)
  for step = 0 to steps - 1 do
    let missing = ref (-1) in
    for u = n_users - 1 downto 0 do
      if not cached.(u) then missing := u
    done;
    if !missing < 0 then invalid_arg "Adversary.drive: no missing page (k >= n?)";
    request (k + step) !missing
  done;
  {
    trace = Trace.of_list ~n_users (List.rev !requests);
    online_misses = misses;
    online_evictions = evictions;
    k;
  }
