(** Driver for the Theorem 1.4 lower-bound experiment (E4).

    For a policy, user count n (so k = n - 1) and exponent beta, runs
    the adaptive adversary, prices the online run with f_i(x) = x^beta,
    and compares against the Section 4 offline batch comparator on the
    induced trace.  The theorem predicts the ratio grows like
    Omega(k)^beta — concretely at least ((k+1)/4)^beta in the paper's
    own accounting — so across a sweep in k, the log-log slope of
    ratio-vs-k should approach beta. *)

module Cf = Ccache_cost.Cost_function
module Batch = Ccache_offline.Batch_offline

type point = {
  policy : string;
  n_users : int;
  k : int;
  beta : float;
  steps : int;
  online_cost : float;
  offline_cost : float;  (** batch comparator: upper bound on OPT *)
  ratio : float;
  theory_curve : float;  (** (k/4)^beta, the paper's Omega(k)^beta form *)
}

let cost_of ~costs misses =
  let acc = ref 0.0 in
  Array.iteri
    (fun u m -> acc := !acc +. Cf.eval costs.(u) (float_of_int m))
    misses;
  !acc

let measure ?(steps_per_user = 200) ~n_users ~beta policy =
  let costs = Array.init n_users (fun _ -> Cf.monomial ~beta ()) in
  let steps = steps_per_user * n_users in
  let adv = Adversary.drive ~n_users ~steps ~costs policy in
  let online_cost = cost_of ~costs adv.Adversary.online_misses in
  let batch = Batch.run ~k:adv.Adversary.k adv.Adversary.trace in
  let offline_cost = cost_of ~costs batch.Batch.misses_per_user in
  let ratio = if offline_cost > 0.0 then online_cost /. offline_cost else infinity in
  {
    policy = Ccache_sim.Policy.name policy;
    n_users;
    k = adv.Adversary.k;
    beta;
    steps;
    online_cost;
    offline_cost;
    ratio;
    theory_curve = Float.pow (float_of_int adv.Adversary.k /. 4.0) beta;
  }

(** Sweep n over [ns] and estimate the ratio's growth exponent in k
    via log-log regression.  Returns the points and the fitted slope —
    Theorem 1.4 predicts slope close to beta. *)
let sweep ?steps_per_user ~ns ~beta policy =
  let points = List.map (fun n -> measure ?steps_per_user ~n_users:n ~beta policy) ns in
  let xs = Array.of_list (List.map (fun p -> float_of_int p.k) points) in
  let ys = Array.of_list (List.map (fun p -> p.ratio) points) in
  let slope = Ccache_util.Stats.loglog_slope ~xs ~ys in
  (points, slope)
