lib/lowerbound/theorem4.ml: Adversary Array Ccache_cost Ccache_offline Ccache_sim Ccache_util Float List
