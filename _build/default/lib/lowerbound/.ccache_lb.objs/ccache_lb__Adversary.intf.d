lib/lowerbound/adversary.mli: Ccache_cost Ccache_sim Ccache_trace
