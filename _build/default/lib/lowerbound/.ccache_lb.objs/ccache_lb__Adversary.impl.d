lib/lowerbound/adversary.ml: Array Ccache_sim Ccache_trace List Page Trace
