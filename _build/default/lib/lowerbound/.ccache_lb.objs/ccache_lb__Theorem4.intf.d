lib/lowerbound/theorem4.mli: Ccache_cost Ccache_sim
