(** Driver for the Theorem 1.4 lower-bound experiment (E4): runs the
    adaptive adversary against a policy with f_i(x) = x^beta, prices
    the online run, compares to the Section 4 batch comparator, and
    fits the ratio's growth exponent in k (theory: beta). *)

type point = {
  policy : string;
  n_users : int;
  k : int;
  beta : float;
  steps : int;
  online_cost : float;
  offline_cost : float;  (** batch comparator: an OPT upper bound *)
  ratio : float;
  theory_curve : float;  (** (k/4)^beta *)
}

val cost_of :
  costs:Ccache_cost.Cost_function.t array -> int array -> float

val measure :
  ?steps_per_user:int ->
  n_users:int ->
  beta:float ->
  Ccache_sim.Policy.t ->
  point
(** One adversarial run; [steps = steps_per_user * n_users]
    (default 200 per user). *)

val sweep :
  ?steps_per_user:int ->
  ns:int list ->
  beta:float ->
  Ccache_sim.Policy.t ->
  point list * float
(** Points across user counts plus the log-log slope of ratio vs k. *)
