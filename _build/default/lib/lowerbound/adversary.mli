(** The adaptive adversary of Theorem 1.4.

    Instance: n users, one page each, cache k = n - 1.  After filling
    the cache with pages 0..n-2, every step requests exactly the page
    missing from the online algorithm's cache.  The sequence depends
    on the algorithm, so the adversary co-simulates (it cannot use the
    engine, whose traces are fixed up front). *)

type outcome = {
  trace : Ccache_trace.Trace.t;
      (** the induced sequence — an ordinary trace that offline
          comparators can be run on *)
  online_misses : int array;
  online_evictions : int array;
  k : int;
}

val drive :
  n_users:int ->
  steps:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Ccache_sim.Policy.t ->
  outcome
(** [steps] adversarial requests after the n-1 warm-up requests.
    @raise Invalid_argument for fewer than 2 users, a costs mismatch,
    or an offline policy. *)
