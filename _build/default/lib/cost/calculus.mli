(** Numeric validation of cost-function properties.

    Theorem 1.1 requires each [f_i] to be convex, increasing and
    non-negative with [f_i(0) = 0].  These checks verify the properties
    on a sample grid — used by the test suite and as experiment
    preflight to reject malformed user-supplied cost functions. *)

type violation = { property : string; at : float; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val grid : ?max_x:float -> unit -> float list
(** The sampling grid: small integers densely, then geometric. *)

val check_nonnegative : ?max_x:float -> Cost_function.t -> violation list
(** f(0) = 0 and f >= 0 on the grid. *)

val check_increasing : ?max_x:float -> Cost_function.t -> violation list

val check_convex : ?max_x:float -> Cost_function.t -> violation list
(** Midpoint convexity on consecutive integer triples — sufficient for
    the integer arguments the algorithms use. *)

val check_derivative :
  ?max_x:float -> ?tol:float -> Cost_function.t -> violation list
(** Analytic derivative vs central differences. *)

val validate_for_guarantee : ?max_x:float -> Cost_function.t -> violation list
(** Everything Theorem 1.1 needs (derivative consistency excluded:
    piecewise shapes are legitimately non-differentiable at
    breakpoints). *)

val is_valid_for_guarantee : ?max_x:float -> Cost_function.t -> bool
