(** Convex piecewise-linear functions through the origin.

    Represented as an array of [(breakpoint, slope)] pairs sorted by
    breakpoint; [slope_j] applies on [x >= breakpoint_j] until the next
    breakpoint.  The first breakpoint must be 0.  Convexity (and hence
    a valid alpha) requires non-decreasing slopes; {!validate} accepts
    non-convex sequences too, because the paper's algorithm runs
    (without guarantee) on arbitrary costs — {!is_convex} reports
    which case holds. *)

val validate : (float * float) array -> (float * float) array
(** Sorts by breakpoint and checks structure (first breakpoint 0, no
    duplicates, non-negative slopes).
    @raise Invalid_argument otherwise. *)

val is_convex : (float * float) array -> bool

val segment_index : (float * float) array -> float -> int
(** Greatest [i] with [breakpoint_i <= x] (binary search). *)

val eval : (float * float) array -> float -> float
(** @raise Invalid_argument if [x < 0]. *)

val deriv : (float * float) array -> float -> float
(** Right derivative: the marginal rate of the segment containing [x]. *)

val length : (float * float) array -> int
val breakpoints : (float * float) array -> float array
val slopes : (float * float) array -> float array
