(** SLA refund-curve builders.

    The paper's motivating application (SQLVM / DaaS, Section 1.1)
    models the Service Level Agreement between provider and tenant as a
    non-linear cost on buffer-pool misses: "a user can tolerate up to
    around M misses in a time window of T, and any number of misses
    greater than that will result in substantial degradation". *)

val hinge : tolerance:float -> penalty_rate:float -> Cost_function.t
(** Free up to [tolerance] misses, then [penalty_rate] per extra miss:
    f(x) = penalty_rate * max(0, x - tolerance).  Convex. *)

val tiered :
  thresholds:float list ->
  base_rate:float ->
  escalation:float ->
  Cost_function.t
(** Escalating per-miss rates: [base_rate] up to the first threshold,
    multiplied by [escalation >= 1] at each subsequent threshold.
    Convex. *)

val smooth_hinge : tolerance:float -> penalty_rate:float -> Cost_function.t
(** Differentiable hinge: quadratic ramp past the tolerance,
    f(x) = penalty_rate * max(0, x - tolerance)^2 / 2.  The reported
    alpha uses the first charged integer point (see the implementation
    note: the real-valued supremum diverges at the tolerance). *)

val step_refund : thresholds:float list -> fee:float -> Cost_function.t
(** Deliberately {b non-convex} flat fee per breached tier.  Exercises
    the arbitrary-cost mode of Section 2.5; {!Calculus} flags it as
    outside the Theorem 1.1 assumptions. *)
