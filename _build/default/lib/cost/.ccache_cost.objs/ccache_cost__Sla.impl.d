lib/cost/sla.ml: Array Cost_function Float List Printf
