lib/cost/sla.mli: Cost_function
