lib/cost/cost_function.ml: Array Float Fmt List Option Piecewise Printf String
