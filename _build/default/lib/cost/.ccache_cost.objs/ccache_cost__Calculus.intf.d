lib/cost/calculus.mli: Cost_function Format
