lib/cost/piecewise.mli:
