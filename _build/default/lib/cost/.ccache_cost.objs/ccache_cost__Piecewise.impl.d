lib/cost/piecewise.ml: Array Float
