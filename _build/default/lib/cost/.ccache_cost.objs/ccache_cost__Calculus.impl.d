lib/cost/calculus.ml: Cost_function Float Fmt List Printf
