lib/cost/cost_function.mli: Format
