(** Numeric validation of cost-function properties.

    The guarantees of Theorem 1.1 require each [f_i] to be
    differentiable, convex, increasing and non-negative with
    [f_i(0) = 0].  These checks verify the properties on a sample grid —
    they are used by the test suite and by [Experiment] preflight to
    reject malformed user-supplied cost functions early. *)

type violation = {
  property : string;
  at : float;
  detail : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "%s violated at x=%g: %s" v.property v.at v.detail

(** Geometric + integer sampling grid over (0, max_x]. *)
let grid ?(max_x = 10_000.0) () =
  let pts = ref [] in
  (* integer points dominate in practice (miss counts are integers) *)
  let i = ref 1 in
  while float_of_int !i <= Float.min max_x 64.0 do
    pts := float_of_int !i :: !pts;
    incr i
  done;
  let x = ref 64.0 in
  while !x <= max_x do
    pts := !x :: !pts;
    x := !x *. 1.5
  done;
  List.sort_uniq Float.compare !pts

(** f(0) = 0 and f(x) >= 0 on the grid. *)
let check_nonnegative ?max_x f =
  let viols = ref [] in
  let f0 = Cost_function.eval f 0.0 in
  if Float.abs f0 > 1e-12 then
    viols := { property = "f(0)=0"; at = 0.0; detail = Printf.sprintf "f(0)=%g" f0 } :: !viols;
  List.iter
    (fun x ->
      let v = Cost_function.eval f x in
      if v < 0.0 then
        viols :=
          { property = "non-negative"; at = x; detail = Printf.sprintf "f(x)=%g" v }
          :: !viols)
    (grid ?max_x ());
  List.rev !viols

(** f non-decreasing on consecutive grid points. *)
let check_increasing ?max_x f =
  let pts = grid ?max_x () in
  let viols = ref [] in
  let rec go = function
    | a :: (b :: _ as rest) ->
        let fa = Cost_function.eval f a and fb = Cost_function.eval f b in
        if fb < fa -. 1e-9 *. Float.max 1.0 (Float.abs fa) then
          viols :=
            {
              property = "increasing";
              at = b;
              detail = Printf.sprintf "f(%g)=%g > f(%g)=%g" a fa b fb;
            }
            :: !viols;
        go rest
    | _ -> ()
  in
  go (0.0 :: pts);
  List.rev !viols

(** Midpoint convexity on consecutive grid triples:
    f(b) <= (f(a)+f(c))/2 whenever b=(a+c)/2 — checked on equispaced
    integer triples, which suffices for the integer arguments the
    algorithms use. *)
let check_convex ?(max_x = 10_000.0) f =
  let viols = ref [] in
  let n = int_of_float (Float.min max_x 256.0) in
  for x = 1 to n - 1 do
    let a = float_of_int (x - 1) and b = float_of_int x and c = float_of_int (x + 1) in
    let lhs = Cost_function.eval f b in
    let rhs = (Cost_function.eval f a +. Cost_function.eval f c) /. 2.0 in
    if lhs > rhs +. 1e-9 *. Float.max 1.0 rhs then
      viols :=
        {
          property = "convex";
          at = b;
          detail = Printf.sprintf "f(%g)=%g > midpoint %g" b lhs rhs;
        }
        :: !viols
  done;
  List.rev !viols

(** Analytic derivative consistency with central differences. *)
let check_derivative ?(max_x = 10_000.0) ?(tol = 1e-4) f =
  let viols = ref [] in
  List.iter
    (fun x ->
      let h = 1e-5 *. Float.max 1.0 x in
      let numeric =
        (Cost_function.eval f (x +. h) -. Cost_function.eval f (Float.max 0.0 (x -. h)))
        /. (h +. Float.min x h)
      in
      let analytic = Cost_function.deriv f x in
      let scale = Float.max 1.0 (Float.abs analytic) in
      if Float.abs (numeric -. analytic) > tol *. scale then
        viols :=
          {
            property = "derivative";
            at = x;
            detail = Printf.sprintf "analytic=%g numeric=%g" analytic numeric;
          }
          :: !viols)
    (grid ~max_x ());
  List.rev !viols

(** All checks needed for the Theorem 1.1 guarantee.  Derivative
    consistency is skipped for curves with breakpoints (piecewise-linear
    is non-differentiable exactly at breakpoints; the paper allows
    discrete marginals there). *)
let validate_for_guarantee ?max_x f =
  check_nonnegative ?max_x f
  @ check_increasing ?max_x f
  @ check_convex ?max_x f

let is_valid_for_guarantee ?max_x f = validate_for_guarantee ?max_x f = []
