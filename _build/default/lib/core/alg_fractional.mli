(** Online fractional caching in the primal-dual style of Bansal,
    Buchbinder & Naor — the linear program the paper's convex program
    builds on (Section 1.3).

    Exact BBN exponential-update algorithm for linear costs
    (O(log k)-competitive fractionally, vs k for any deterministic
    integral algorithm); for convex costs the page weight is the
    owner's current marginal at its fractional miss volume, a
    documented heuristic extension.  Experiment E12 measures both
    against the integral algorithms. *)

type result = {
  k : int;
  fractional_misses : float array;
      (** per user: evicted-then-refetched mass (plus compulsory
          first-touch misses) *)
  total_cost : float;  (** sum_i f_i(fractional_misses_i) *)
  movement_cost : float;
      (** sum of w_p * dx over eviction mass movements; equals the
          weighted-caching objective for linear costs *)
  max_overflow : float;
      (** worst residual constraint violation after a level rise
          (should be ~0; tracked as a self-check) *)
  solution : (int * float) list;
      (** the fractional primal: one (interval-start position, final
          x) per interval — a feasible point of the unflushed (CP) by
          construction (property-tested) *)
}

val run :
  ?tol:float ->
  k:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Ccache_trace.Trace.t ->
  result
