(** The paper's quantitative statements as executable formulas; every
    experiment evaluates theorem inequalities through this module so
    each bound is defined exactly once. *)

val alpha_of_costs :
  ?max_x:float -> Ccache_cost.Cost_function.t array -> float
(** alpha = sup over users of {!Ccache_cost.Cost_function.alpha}
    (at least 1). *)

val thm11_rhs :
  ?alpha:float ->
  costs:Ccache_cost.Cost_function.t array ->
  k:int ->
  int array ->
  float
(** Theorem 1.1 RHS: [sum_i f_i(alpha * k * b_i)] on offline per-user
    miss counts [b]. *)

val thm13_rhs :
  ?alpha:float ->
  costs:Ccache_cost.Cost_function.t array ->
  k:int ->
  h:int ->
  int array ->
  float
(** Theorem 1.3 RHS with the offline cache restricted to [h <= k].
    @raise Invalid_argument unless [0 < h <= k]. *)

val cor12_bound : beta:float -> k:int -> float
(** Corollary 1.2: beta^beta * k^beta. *)

val thm14_curve : beta:float -> k:int -> float
(** The lower-bound curve (k/4)^beta of Theorem 1.4's construction. *)

type bound_check = {
  lhs : float;  (** online cost sum_i f_i(a_i) *)
  rhs : float;  (** the theorem bound on offline counts *)
  holds : bool;
  slack : float;  (** rhs - lhs *)
}

val make_check : lhs:float -> rhs:float -> bound_check

val check_thm11 :
  ?alpha:float ->
  costs:Ccache_cost.Cost_function.t array ->
  k:int ->
  a:int array ->
  b:int array ->
  unit ->
  bound_check
(** Both sides of Theorem 1.1 on measured counts ([a] online, [b]
    offline).  Any {e feasible} offline schedule's counts are sound
    for [b]: the RHS is monotone in [b], so the check is implied by
    the theorem. *)

val check_thm13 :
  ?alpha:float ->
  costs:Ccache_cost.Cost_function.t array ->
  k:int ->
  h:int ->
  a:int array ->
  b:int array ->
  unit ->
  bound_check

(** {1 Claim 2.3}

    For convex increasing f with f(0) = 0 and non-negative x_j:
    [f'(S) * S <= alpha * sum_j x_j f'(prefix_j)], S = sum x_j. *)

val claim23_sides :
  ?alpha:float -> Ccache_cost.Cost_function.t -> float array -> float * float
(** (lhs, rhs) of the claim. *)

val claim23_holds :
  ?alpha:float -> ?tol:float -> Ccache_cost.Cost_function.t -> float array -> bool

val claim23_inner_holds :
  ?tol:float -> Ccache_cost.Cost_function.t -> float array -> bool
(** The inner inequality (6) used to prove the claim:
    [sum_j x_j f'(prefix_j) >= f(S)]. *)
