(** ALG-CONT (paper Figure 2): the continuous primal-dual algorithm,
    instrumented with its dual variables.

    The eviction decisions are exactly those of ALG-DISCRETE (both are
    driven by {!Budget_state}); what this runner adds is the
    bookkeeping the correctness proof reads:

    - [y.(t)]   — the amount the dual variable [y_t] increases at step
      [t] (zero unless an eviction happens; otherwise the victim's
      budget, i.e. the point where the first gradient condition
      becomes tight);
    - one {!interval} record per (page, request-interval), carrying the
      primal variable [x(p,j)] (true iff the page was evicted between
      its j-th and (j+1)-th requests), the eviction position, and the
      owner's eviction count [m(i(p), t-hat)] at that moment.

    The [z(p,j)] duals need no explicit tracking: [z] grows exactly in
    lockstep with [y] while the page is outside the cache within its
    interval, so [z(p,j) = sum of y over (evict_pos, end_pos)] — the
    checker in {!Invariants} reconstructs them from [y] prefix sums
    (and this is itself one of the checked identities). *)

module Cf = Ccache_cost.Cost_function
open Ccache_trace

type interval = {
  page : Page.t;
  j : int;  (** 1-based interval index: after the page's j-th request *)
  start_pos : int;  (** position of the j-th request, i.e. t(p,j) *)
  mutable end_pos : int option;  (** position of the (j+1)-th request *)
  mutable x : bool;  (** primal variable: evicted in this interval *)
  mutable evict_pos : int option;
  mutable m_at_evict : int option;
      (** m(i(p), t-hat): owner's eviction count right after this
          eviction — the argument of f' in invariant (2b) *)
}

type run = {
  trace : Trace.t;
  k : int;
  costs : Cf.t array;
  mode : Cf.derivative_mode;
  y : float array;  (** y.(t) = dy at step t *)
  intervals : interval list;  (** all intervals, in creation order *)
  final_m : int array;  (** m(i,T) per user *)
  misses_per_user : int array;
  result_cache : Page.t list;  (** cache contents at the end *)
}

(** Replay [trace] with cache size [k], recording duals.

    @param flush append the paper's terminal dummy-user flush so every
           page's last interval ends with an eviction (default false;
           the invariant checker handles both accountings). *)
let run ?(mode = Cf.Discrete) ?(flush = false) ~k ~costs trace =
  if k <= 0 then invalid_arg "Alg_cont.run: k must be positive";
  let real_users = Trace.n_users trace in
  if Array.length costs <> real_users then
    invalid_arg "Alg_cont.run: costs/users mismatch";
  let n = Trace.length trace in
  let st = Budget_state.create ~costs ~mode ~n_users:(Trace.n_users trace) in
  let y = Array.make (n + if flush then k else 0) 0.0 in
  let current : interval Page.Tbl.t = Page.Tbl.create 256 in
  let all = ref [] in
  let cached : unit Page.Tbl.t = Page.Tbl.create 256 in
  let misses = Array.make (Trace.n_users trace) 0 in
  for pos = 0 to n - 1 do
    let p = Trace.request trace pos in
    (* the previous interval of p (if any) ends here; a new one opens *)
    let j =
      match Page.Tbl.find_opt current p with
      | Some iv ->
          iv.end_pos <- Some pos;
          iv.j + 1
      | None -> 1
    in
    let iv =
      { page = p; j; start_pos = pos; end_pos = None; x = false;
        evict_pos = None; m_at_evict = None }
    in
    Page.Tbl.replace current p iv;
    all := iv :: !all;
    if not (Page.Tbl.mem cached p) then begin
      misses.(Page.user p) <- misses.(Page.user p) + 1;
      if Page.Tbl.length cached >= k then begin
        let victim, _ = Budget_state.min_budget st in
        let victim_iv =
          match Page.Tbl.find_opt current victim with
          | Some iv -> iv
          | None -> assert false (* cached pages always have an open interval *)
        in
        let delta = Budget_state.evict st victim in
        y.(pos) <- delta;
        victim_iv.x <- true;
        victim_iv.evict_pos <- Some pos;
        victim_iv.m_at_evict <- Some (Budget_state.evictions st (Page.user victim));
        Page.Tbl.remove cached victim
      end;
      Page.Tbl.replace cached p ();
      Budget_state.touch st p
    end
    else Budget_state.touch st p
  done;
  (* Terminal flush (paper Section 2.1): k requests by an infinite-cost
     dummy user, realised as pinned non-insertions — each one evicts
     the minimum-budget real page, closing its last interval with an
     eviction so the (ICP) accounting (evictions = misses) holds. *)
  if flush then
    for step = 0 to k - 1 do
      if Page.Tbl.length cached > 0 then begin
        let pos = n + step in
        let victim, _ = Budget_state.min_budget st in
        let victim_iv =
          match Page.Tbl.find_opt current victim with
          | Some iv -> iv
          | None -> assert false
        in
        let delta = Budget_state.evict st victim in
        y.(pos) <- delta;
        victim_iv.x <- true;
        victim_iv.evict_pos <- Some pos;
        victim_iv.m_at_evict <- Some (Budget_state.evictions st (Page.user victim));
        Page.Tbl.remove cached victim
      end
    done;
  let final_m =
    Array.init (Trace.n_users trace) (fun u -> Budget_state.evictions st u)
  in
  {
    trace;
    k;
    costs;
    mode;
    y;
    intervals = List.rev !all;
    final_m;
    misses_per_user = misses;
    result_cache =
      Page.Tbl.fold (fun p () acc -> p :: acc) cached [] |> List.sort Page.compare;
  }

(** Prefix sums of [y]: [prefix.(t)] = sum of y over positions [0..t-1],
    so a sum over positions [a..b] inclusive is
    [prefix.(b+1) -. prefix.(a)]. *)
let y_prefix run =
  let n = Array.length run.y in
  let prefix = Array.make (n + 1) 0.0 in
  for t = 0 to n - 1 do
    prefix.(t + 1) <- prefix.(t) +. run.y.(t)
  done;
  prefix

(** Sum of y over the open-open range (a, b) in positions, i.e.
    positions a+1 .. b-1 — the paper's
    [sum_{t = t(p,j)+1}^{t(p,j+1)-1} y_t]. *)
let y_between prefix ~after ~before =
  if before <= after + 1 then 0.0 else prefix.(before) -. prefix.(after + 1)

(** z(p,j) reconstructed from the closed form: y-mass while the page
    sat outside the cache within its interval. *)
let z_of run prefix iv =
  match iv.evict_pos with
  | None -> 0.0
  | Some ev ->
      let end_pos = Option.value iv.end_pos ~default:(Array.length run.y) in
      y_between prefix ~after:ev ~before:end_pos

(** Total cost of the run: [sum_i f_i(misses_i)] over real users. *)
let total_cost run =
  let acc = ref 0.0 in
  Array.iteri
    (fun u misses ->
      if u < Array.length run.costs then
        acc := !acc +. Cf.eval run.costs.(u) (float_of_int misses))
    run.misses_per_user;
  !acc
