(** The paper's quantitative statements, as executable formulas.

    Every experiment that claims "Theorem X holds" evaluates both sides
    of the theorem's inequality through this module, so the bound
    definitions live in exactly one place. *)

module Cf = Ccache_cost.Cost_function

(** Curvature constant over a set of users:
    alpha = sup_{x,i} x f'_i(x) / f_i(x). *)
let alpha_of_costs ?max_x costs =
  Array.fold_left (fun acc f -> Float.max acc (Cf.alpha ?max_x f)) 1.0 costs

(** Theorem 1.1 right-hand side: sum_i f_i(alpha * k * b_i) where [b]
    are the offline per-user miss counts. *)
let thm11_rhs ?alpha ~costs ~k b =
  if Array.length b <> Array.length costs then
    invalid_arg "Theory.thm11_rhs: misses/costs mismatch";
  let alpha = match alpha with Some a -> a | None -> alpha_of_costs costs in
  let acc = ref 0.0 in
  Array.iteri
    (fun i bi ->
      acc := !acc +. Cf.eval costs.(i) (alpha *. float_of_int k *. float_of_int bi))
    b;
  !acc

(** Theorem 1.3 right-hand side: sum_i f_i(alpha * k/(k-h+1) * b_i)
    where the offline algorithm ran with cache size [h <= k]. *)
let thm13_rhs ?alpha ~costs ~k ~h b =
  if h > k || h <= 0 then invalid_arg "Theory.thm13_rhs: need 0 < h <= k";
  if Array.length b <> Array.length costs then
    invalid_arg "Theory.thm13_rhs: misses/costs mismatch";
  let alpha = match alpha with Some a -> a | None -> alpha_of_costs costs in
  let stretch = alpha *. float_of_int k /. float_of_int (k - h + 1) in
  let acc = ref 0.0 in
  Array.iteri
    (fun i bi -> acc := !acc +. Cf.eval costs.(i) (stretch *. float_of_int bi))
    b;
  !acc

(** Corollary 1.2 competitive-ratio bound for f(x) = x^beta:
    beta^beta * k^beta. *)
let cor12_bound ~beta ~k =
  if beta < 1.0 then invalid_arg "Theory.cor12_bound: beta >= 1";
  Float.pow beta beta *. Float.pow (float_of_int k) beta

(** Theorem 1.4 lower-bound curve: (k/4)^beta (the paper's worst-case
    instance forces at least (n/4)^beta = ((k+1)/4)^beta; we use the
    slightly weaker k/4 form it states as Omega(k)^beta). *)
let thm14_curve ~beta ~k = Float.pow (float_of_int k /. 4.0) beta

type bound_check = {
  lhs : float;  (** online cost: sum_i f_i(a_i) *)
  rhs : float;  (** theorem bound evaluated on offline misses *)
  holds : bool;
  slack : float;  (** rhs - lhs; >= 0 when the bound holds *)
}

let make_check ~lhs ~rhs =
  { lhs; rhs; holds = lhs <= rhs *. (1.0 +. 1e-12) +. 1e-9; slack = rhs -. lhs }

(** Check Theorem 1.1 on measured per-user miss counts: [a] online,
    [b] offline.  Using any *feasible* offline schedule's counts for
    [b] (not necessarily OPT's) gives an implied, still-sound check,
    since the RHS is monotone in [b]. *)
let check_thm11 ?alpha ~costs ~k ~a ~b () =
  let lhs = ref 0.0 in
  Array.iteri (fun i ai -> lhs := !lhs +. Cf.eval costs.(i) (float_of_int ai)) a;
  make_check ~lhs:!lhs ~rhs:(thm11_rhs ?alpha ~costs ~k b)

let check_thm13 ?alpha ~costs ~k ~h ~a ~b () =
  let lhs = ref 0.0 in
  Array.iteri (fun i ai -> lhs := !lhs +. Cf.eval costs.(i) (float_of_int ai)) a;
  make_check ~lhs:!lhs ~rhs:(thm13_rhs ?alpha ~costs ~k ~h b)

(* ------------------------------------------------------------------ *)
(* Claim 2.3                                                           *)
(* ------------------------------------------------------------------ *)

(** Claim 2.3: for convex increasing f with f(0) = 0 and non-negative
    x_1..x_n,
    f'(S) * S <= alpha * sum_j x_j f'(prefix_j)   with S = sum x_j.
    Returns (lhs, rhs). *)
let claim23_sides ?alpha f xs =
  let alpha = match alpha with Some a -> a | None -> Cf.alpha f in
  let s = Array.fold_left ( +. ) 0.0 xs in
  let lhs = Cf.deriv f s *. s in
  let rhs = ref 0.0 in
  let prefix = ref 0.0 in
  Array.iter
    (fun x ->
      prefix := !prefix +. x;
      rhs := !rhs +. (x *. Cf.deriv f !prefix))
    xs;
  (lhs, alpha *. !rhs)

let claim23_holds ?alpha ?(tol = 1e-9) f xs =
  let lhs, rhs = claim23_sides ?alpha f xs in
  lhs <= rhs +. (tol *. Float.max 1.0 rhs)

(** The inner inequality (6) used to prove Claim 2.3:
    sum_j x_j f'(prefix_j) >= f(S). *)
let claim23_inner_holds ?(tol = 1e-9) f xs =
  let s = Array.fold_left ( +. ) 0.0 xs in
  let rhs = Cf.eval f s in
  let lhs = ref 0.0 in
  let prefix = ref 0.0 in
  Array.iter
    (fun x ->
      prefix := !prefix +. x;
      lhs := !lhs +. (x *. Cf.deriv f !prefix))
    xs;
  !lhs >= rhs -. (tol *. Float.max 1.0 rhs)
