(** ALG-DISCRETE with per-window cost resets.

    Under windowed SLAs (see {!Ccache_sim.Windows}) a tenant's marginal
    cost depends on its misses {e within the current window}, not on
    its lifetime total.  This variant applies the paper's algorithm
    window by window: at each window boundary the per-user eviction
    counts reset to zero and every cached budget is re-based to the
    fresh marginal f'(1), i.e. the algorithm restarts its primal-dual
    state against the new window's cost landscape while keeping the
    cache contents.

    With the cumulative objective this variant is strictly worse than
    {!Alg_discrete} (it forgets curvature progress); under the
    windowed objective it tracks the real marginals — E14 measures
    both sides of that trade. *)

module Policy = Ccache_sim.Policy
module Cf = Ccache_cost.Cost_function
open Ccache_trace

let make ?(mode = Cf.Discrete) ~window () =
  if window <= 0 then invalid_arg "Alg_windowed.make: window must be positive";
  Policy.make
    ~name:(Printf.sprintf "alg-discrete[w=%d]" window)
    (fun config ->
      let st =
        Budget_state.create ~costs:config.Policy.Config.costs ~mode
          ~n_users:config.Policy.Config.n_users
      in
      let current_window = ref 0 in
      let roll ~pos =
        let w = pos / window in
        if w > !current_window then begin
          current_window := w;
          (* new window: miss counts restart, so marginals do too *)
          Array.fill st.Budget_state.m 0 (Array.length st.Budget_state.m) 0;
          let pages =
            Page.Tbl.fold (fun p _ acc -> p :: acc) st.Budget_state.b []
          in
          List.iter (Budget_state.touch st) pages
        end
      in
      {
        Policy.on_hit =
          (fun ~pos page ->
            roll ~pos;
            Budget_state.touch st page);
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos ~incoming:_ ->
            roll ~pos;
            fst (Budget_state.min_budget st));
        on_insert =
          (fun ~pos page ->
            roll ~pos;
            Budget_state.touch st page);
        on_evict = (fun ~pos:_ victim -> ignore (Budget_state.evict st victim));
      })
