(** ALG-DISCRETE with O(log k) evictions (DESIGN.md decision 2).

    Figure 3's eviction touches every cached budget; both updates are
    rank-preserving within a user, so budgets decompose as
    [B(p) = raw(p) - Y + U(user p)] with a global decay accumulator
    [Y] and per-user bump accumulators [U].  Per-user min-heaps over
    [raw] plus a top-level heap over users keyed by [min raw + U]
    reproduce {!Budget_state.min_budget}'s deterministic order
    exactly.

    With integer-valued cost marginals the arithmetic is exact and
    this policy is bit-for-bit identical to {!Alg_discrete.policy}
    (property-tested); with general float costs ties may resolve
    differently, changing victims but not the guarantees. *)

val make :
  ?mode:Ccache_cost.Cost_function.derivative_mode -> unit -> Ccache_sim.Policy.t

val policy : Ccache_sim.Policy.t
(** "alg-discrete-fast", discrete marginals. *)

val analytic : Ccache_sim.Policy.t
