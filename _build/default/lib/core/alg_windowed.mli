(** ALG-DISCRETE with per-window cost resets, for windowed SLAs
    ({!Ccache_sim.Windows}): at each window boundary the per-user
    eviction counts reset and cached budgets re-base to the fresh
    marginal, restarting the primal-dual state against the new
    window's cost landscape while keeping the cache contents.
    Experiment E14 measures the cumulative-vs-windowed trade. *)

val make :
  ?mode:Ccache_cost.Cost_function.derivative_mode ->
  window:int ->
  unit ->
  Ccache_sim.Policy.t
(** @raise Invalid_argument if [window <= 0]. *)
