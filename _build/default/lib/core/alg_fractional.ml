(** Online fractional caching in the primal-dual style of Bansal,
    Buchbinder and Naor (J.ACM 2012) — the linear program the paper's
    convex program explicitly builds on (Section 1.3).

    State: for each requested page's current interval a fraction
    x(p) in [0,1] of the page that has been evicted.  On a request the
    page's fraction resets to 0 (a new interval starts; the fetch cost
    of the previously evicted mass is charged then).  Whenever the
    in-cache mass exceeds k, a global "water level" y rises and every
    unsaturated page's fraction grows at rate

      dx_p / dy = (x_p + 1/k) / w_p

    — the classical exponential update, whose closed form
    [x_p(y) = (x_p0 + 1/k) e^{(y - y0)/w_p} - 1/k] lets one bisection
    per request find the exact level at which the constraint
    [sum over B(t) minus p_t of x >= |B(t)| - k] becomes tight.  For
    linear costs w_i this is exactly the O(log k)-competitive BBN
    fractional weighted-caching algorithm.

    For convex costs the weight of a page is the owner's {e current}
    marginal cost [f_i(m_i + 1) - f_i(m_i)] at its fractional miss
    volume m_i — a heuristic extension (the principled integral
    treatment is ALG-DISCRETE); experiment E12 quantifies both. *)

module Cf = Ccache_cost.Cost_function
open Ccache_trace

type result = {
  k : int;
  fractional_misses : float array;
      (** per user: total evicted-then-refetched mass *)
  total_cost : float;
      (** sum_i f_i(fractional_misses_i) — the convex objective at the
          fractional miss volumes *)
  movement_cost : float;
      (** sum over eviction events of w_p * dx — the weighted-caching
          objective (equals total_cost for linear costs) *)
  max_overflow : float;  (** worst residual constraint violation seen *)
  solution : (int * float) list;
      (** the fractional primal the run produced: one
          (interval-start position, final x) pair per interval, in no
          particular order — by construction a feasible point of the
          unflushed (CP), which the tests verify *)
}

type page_state = {
  mutable x : float;  (** evicted fraction of the current interval *)
  mutable weight : float;  (** w_p frozen at interval start *)
  mutable interval_start : int;  (** position that opened the interval *)
}

let run ?(tol = 1e-9) ~k ~costs trace =
  if k <= 0 then invalid_arg "Alg_fractional.run: k must be positive";
  let n_users = Trace.n_users trace in
  if Array.length costs <> n_users then
    invalid_arg "Alg_fractional.run: costs/users mismatch";
  let states : page_state Page.Tbl.t = Page.Tbl.create 256 in
  let solution = ref [] in
  let fractional_misses = Array.make n_users 0.0 in
  let movement = ref 0.0 in
  let max_overflow = ref 0.0 in
  let marginal u =
    let m = fractional_misses.(u) in
    Cf.eval costs.(u) (m +. 1.0) -. Cf.eval costs.(u) m
  in
  let n = Trace.length trace in
  for pos = 0 to n - 1 do
    let p = Trace.request trace pos in
    let u = Page.user p in
    (* close p's previous interval: the evicted mass x is refetched
       now, so it counts as fractional misses of the owner *)
    (match Page.Tbl.find_opt states p with
    | Some s ->
        fractional_misses.(u) <- fractional_misses.(u) +. s.x;
        solution := (s.interval_start, s.x) :: !solution;
        s.x <- 0.0;
        s.weight <- Float.max 1e-12 (marginal u);
        s.interval_start <- pos
    | None ->
        (* first touch: a compulsory (whole) miss *)
        fractional_misses.(u) <- fractional_misses.(u) +. 1.0;
        Page.Tbl.replace states p
          { x = 0.0; weight = Float.max 1e-12 (marginal u); interval_start = pos });
    (* constraint at this position: sum over seen pages except p of x
       must reach D - k, where D = #seen pages *)
    let d = Page.Tbl.length states in
    let need = float_of_int (d - k) in
    if need > 0.0 then begin
      let current =
        Page.Tbl.fold
          (fun q s acc -> if Page.equal q p then acc else acc +. s.x)
          states 0.0
      in
      if current < need -. tol then begin
        (* find the water-level rise dy making the constraint tight:
           x_q(dy) = min(1, (x_q + 1/k) e^{dy/w_q} - 1/k) summed over
           q <> p is monotone in dy *)
        let inv_k = 1.0 /. float_of_int k in
        let grown s dy =
          Float.min 1.0 (((s.x +. inv_k) *. exp (dy /. s.weight)) -. inv_k)
        in
        let total dy =
          Page.Tbl.fold
            (fun q s acc -> if Page.equal q p then acc else acc +. grown s dy)
            states 0.0
        in
        (* bracket: total is unbounded toward d-1 >= need as dy grows *)
        let hi = ref 1.0 in
        while total !hi < need && !hi < 1e12 do
          hi := !hi *. 2.0
        done;
        let rec bisect lo hi iters =
          if iters = 0 then hi
          else
            let mid = 0.5 *. (lo +. hi) in
            if total mid < need then bisect mid hi (iters - 1)
            else bisect lo mid (iters - 1)
        in
        let dy = bisect 0.0 !hi 80 in
        (* apply the growth, charging movement cost w * dx *)
        Page.Tbl.iter
          (fun q s ->
            if not (Page.equal q p) then begin
              let x' = grown s dy in
              movement := !movement +. (s.weight *. (x' -. s.x));
              s.x <- x'
            end)
          states;
        let residual = need -. total 0.0 in
        if residual > !max_overflow then max_overflow := residual
      end
    end
  done;
  let total_cost =
    let acc = ref 0.0 in
    Array.iteri
      (fun u m -> acc := !acc +. Cf.eval costs.(u) m)
      fractional_misses;
    !acc
  in
  (* close the still-open intervals *)
  Page.Tbl.iter
    (fun _ s -> solution := (s.interval_start, s.x) :: !solution)
    states;
  { k; fractional_misses; total_cost; movement_cost = !movement;
    max_overflow = !max_overflow; solution = !solution }
