(** Checker for the algorithm's invariants (paper Section 2.3).

    Given an instrumented {!Alg_cont.run}, verifies numerically every
    condition Lemma 2.1 claims the algorithm maintains:

    - (1a) primal feasibility (cache never exceeds k);
    - (1c) y, z >= 0;
    - (2a) z(p,j) > 0 only where x(p,j) = 1;
    - (2b) the gradient condition is tight at eviction time:
      f'(m(i(p), t-hat)) - y-mass(interval) + z(p,j) = 0;
    - (3a) the gradient condition at final counts is non-negative —
      fully guaranteed only under [~flush:true]; without flush the
      live form (non-negative budgets) is checked for open intervals.

    x in {0,1} (1b) holds by construction. *)

open Ccache_trace

type failure = {
  condition : string;
  page : Page.t option;
  j : int option;
  detail : string;
}

val pp_failure : Format.formatter -> failure -> unit

type report = {
  checked_intervals : int;
  checked_steps : int;
  failures : failure list;
}

val ok : report -> bool

val check : ?tol:float -> Alg_cont.run -> report

val run_and_check :
  ?tol:float ->
  ?mode:Ccache_cost.Cost_function.derivative_mode ->
  ?flush:bool ->
  k:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Trace.t ->
  Alg_cont.run * report
(** Run ALG-CONT (flush defaults to true here) and check. *)
