(** The budget state machine of ALG-DISCRETE (paper Figure 3).

    Shared by the {!Alg_discrete} policy and the dual-instrumented
    {!Alg_cont} runner so both provably make identical decisions.

    State: a budget [B(p)] for every cached page and the per-user
    eviction counts [m(i,t)].  [B(p)] equals the residual of the
    gradient condition for [p]'s current interval in ALG-CONT:
    [f'_{i(p)}(m(i(p)) + 1) - sum of y_t over the interval so far]
    (the [z] term is zero for cached pages).

    The record fields are exposed (not abstract) because the ablation
    variants in {!Alg_discrete} re-derive modified update rules over
    the same state. *)

open Ccache_trace

type t = {
  costs : Ccache_cost.Cost_function.t array;
  mode : Ccache_cost.Cost_function.derivative_mode;
  b : float Page.Tbl.t;  (** budgets of currently cached pages *)
  m : int array;  (** evictions per user, one slot per user + dummy *)
}

val create :
  costs:Ccache_cost.Cost_function.t array ->
  mode:Ccache_cost.Cost_function.derivative_mode ->
  n_users:int ->
  t

val cost_of : t -> int -> Ccache_cost.Cost_function.t
(** User's cost function; the zero cost for out-of-range users. *)

val rate : t -> int -> offset:int -> float
(** [rate t user ~offset] = f'_user evaluated at m(user) + offset
    (discrete marginal in [Discrete] mode). *)

val evictions : t -> int -> int
(** m(user): evictions of the user's pages so far. *)

val budget : t -> Page.t -> float option
val cached_count : t -> int

val touch : t -> Page.t -> unit
(** Refresh [B(p) <- f'(m+1)] on a hit or insertion (a new interval
    starts in ALG-CONT terms). *)

val min_budget : t -> Page.t * float
(** Cached page with minimum budget; ties break by {!Page.compare}.
    @raise Invalid_argument on an empty cache. *)

val evict : t -> Page.t -> float
(** Full Figure-3 eviction update: removes the victim, bumps the
    owner's eviction count, subtracts the victim's budget [delta] from
    every remaining budget and adds [f'(m+2) - f'(m+1)] to the owner's
    remaining pages.  Returns [delta] (the ALG-CONT [y_t] increase).
    @raise Invalid_argument if the victim is not cached. *)

val budgets : t -> (Page.t * float) list
(** All budgets, sorted by page (for tests and the fast-implementation
    equivalence property). *)
