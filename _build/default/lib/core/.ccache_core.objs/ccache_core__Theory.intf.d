lib/core/theory.mli: Ccache_cost
