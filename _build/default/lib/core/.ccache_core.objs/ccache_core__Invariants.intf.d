lib/core/invariants.mli: Alg_cont Ccache_cost Ccache_trace Format Page Trace
