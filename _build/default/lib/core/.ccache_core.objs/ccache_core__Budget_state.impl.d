lib/core/budget_state.ml: Array Ccache_cost Ccache_trace List Page Stdlib
