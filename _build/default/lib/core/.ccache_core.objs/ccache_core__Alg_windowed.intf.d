lib/core/alg_windowed.mli: Ccache_cost Ccache_sim
