lib/core/alg_discrete.ml: Array Budget_state Ccache_cost Ccache_sim Ccache_trace List Page Stdlib String
