lib/core/alg_fractional.mli: Ccache_cost Ccache_trace
