lib/core/theory.ml: Array Ccache_cost Float
