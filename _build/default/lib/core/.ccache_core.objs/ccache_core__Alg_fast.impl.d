lib/core/alg_fast.ml: Array Ccache_cost Ccache_sim Ccache_trace Ccache_util Page Stdlib
