lib/core/alg_cont.mli: Ccache_cost Ccache_trace Page Trace
