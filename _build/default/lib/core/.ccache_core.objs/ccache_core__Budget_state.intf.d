lib/core/budget_state.mli: Ccache_cost Ccache_trace Page
