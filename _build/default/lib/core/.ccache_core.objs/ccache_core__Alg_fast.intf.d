lib/core/alg_fast.mli: Ccache_cost Ccache_sim
