lib/core/alg_discrete.mli: Ccache_cost Ccache_sim
