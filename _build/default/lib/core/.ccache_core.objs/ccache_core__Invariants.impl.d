lib/core/invariants.ml: Alg_cont Array Ccache_cost Ccache_trace Ccache_util Fmt List Option Page Printf
