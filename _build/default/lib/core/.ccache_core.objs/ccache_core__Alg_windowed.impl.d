lib/core/alg_windowed.ml: Array Budget_state Ccache_cost Ccache_sim Ccache_trace List Page Printf
