lib/core/alg_fractional.ml: Array Ccache_cost Ccache_trace Float Page Trace
