lib/core/alg_cont.ml: Array Budget_state Ccache_cost Ccache_trace List Option Page Trace
