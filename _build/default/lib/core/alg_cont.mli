(** ALG-CONT (paper Figure 2): the continuous primal-dual algorithm,
    instrumented with its dual variables.

    Decisions are exactly those of ALG-DISCRETE (both run on
    {!Budget_state}); this runner additionally records what the
    correctness proof reads: the per-step dual increases [y], and one
    {!interval} record per (page, request-interval) carrying the
    primal variable x(p,j) and the eviction metadata.  The z(p,j)
    duals need no explicit tracking — z grows in lockstep with y while
    the page is outside the cache within its interval, so
    [z(p,j) = sum of y over (evict_pos, end_pos)]; {!z_of} computes
    that closed form, and {!Invariants} checks it. *)

open Ccache_trace

type interval = {
  page : Page.t;
  j : int;  (** 1-based interval index *)
  start_pos : int;  (** t(p,j) *)
  mutable end_pos : int option;  (** t(p,j+1), if any *)
  mutable x : bool;  (** primal: evicted in this interval *)
  mutable evict_pos : int option;
  mutable m_at_evict : int option;
      (** m(i(p)) right after this eviction — the argument of f' in
          invariant (2b) *)
}

type run = {
  trace : Trace.t;
  k : int;
  costs : Ccache_cost.Cost_function.t array;
  mode : Ccache_cost.Cost_function.derivative_mode;
  y : float array;
      (** y.(t) = the dual increase at step t (positions [>= length
          trace] are the flush steps when [~flush:true]) *)
  intervals : interval list;  (** in creation order *)
  final_m : int array;  (** m(i, T) per user *)
  misses_per_user : int array;
  result_cache : Page.t list;  (** sorted final cache contents *)
}

val run :
  ?mode:Ccache_cost.Cost_function.derivative_mode ->
  ?flush:bool ->
  k:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Trace.t ->
  run
(** Replay with dual recording.  [~flush:true] (paper Section 2.1)
    appends k pinned dummy evict-steps so every page's last interval
    ends in an eviction — required for the full invariant (3a). *)

val y_prefix : run -> float array
(** [prefix.(t)] = sum of y over positions < t. *)

val y_between : float array -> after:int -> before:int -> float
(** Sum of y over the open range (after, before), i.e. the paper's
    [sum over t(p,j) < t < t(p,j+1)] when applied to interval ends. *)

val z_of : run -> float array -> interval -> float
(** z(p,j) via the closed form (0 for unevicted intervals). *)

val total_cost : run -> float
(** [sum_i f_i(misses_i)] over real users. *)
