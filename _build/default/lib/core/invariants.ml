(** Checker for the algorithm's invariants (paper Section 2.3).

    Given an instrumented {!Alg_cont.run}, verifies numerically (with a
    small tolerance) every condition the correctness proof relies on:

    - (1a) primal feasibility: at every time t, at least |B(t)| - k of
      the seen pages (excluding the one just requested) are outside the
      cache — equivalently the cache never exceeds k pages;
    - (1b) x(p,j) in {0,1} — structural, by construction;
    - (1c) y, z >= 0;
    - (2a) complementary slackness: z(p,j) > 0 only if x(p,j) = 1 —
      structural (z is reconstructed only over post-eviction spans),
      checked via the closed form;
    - (2b) when x(p,j) was set at time t-hat:
      f'(m(i(p), t-hat)) - sum_{t in interval} y_t + z(p,j) = 0;
    - (3a) gradient condition at the end of the run:
      f'(m(i(p), T)) - sum_{t in interval} y_t + z(p,j) >= 0
      for every interval (this needs the flush so that every page's
      last interval ends in an eviction — run {!Alg_cont.run} with
      [~flush:true] for a full (3a) check; without flush the check is
      restricted to intervals that did get evicted, plus non-negativity
      of live budgets which is the in-flight form of (3a)).

    Additionally checks the paper's Claim 2.3 instantiated on the run's
    actual eviction sequence per user (see {!Theory.claim23_holds} for
    the standalone form). *)

module Cf = Ccache_cost.Cost_function
module Fc = Ccache_util.Float_cmp
open Ccache_trace

type failure = {
  condition : string;
  page : Page.t option;
  j : int option;
  detail : string;
}

let pp_failure ppf f =
  Fmt.pf ppf "[%s]%a%a %s" f.condition
    (Fmt.option (fun ppf p -> Fmt.pf ppf " page=%a" Page.pp p))
    f.page
    (Fmt.option (fun ppf j -> Fmt.pf ppf " j=%d" j))
    f.j f.detail

type report = {
  checked_intervals : int;
  checked_steps : int;
  failures : failure list;
}

let ok report = report.failures = []

let fail ?page ?j condition fmt =
  Printf.ksprintf (fun detail -> { condition; page; j; detail }) fmt

(* f' (or discrete marginal, matching the run's mode) of the owner of
   [page], evaluated at integer [x]. *)
let rate_of (run : Alg_cont.run) page x =
  let u = Page.user page in
  if u >= Array.length run.Alg_cont.costs then 0.0
  else Cf.rate run.Alg_cont.costs.(u) run.Alg_cont.mode x

let check ?(tol = 1e-9) (run : Alg_cont.run) =
  let failures = ref [] in
  let push f = failures := f :: !failures in
  let prefix = Alg_cont.y_prefix run in
  let horizon = Array.length run.Alg_cont.y in
  (* ---- (1c): y >= 0 ---- *)
  Array.iteri
    (fun t v ->
      if v < -.tol then push (fail "1c:y>=0" "y(%d) = %g" t v))
    run.Alg_cont.y;
  (* ---- per-interval conditions ---- *)
  let steps = ref 0 in
  let intervals = run.Alg_cont.intervals in
  List.iter
    (fun (iv : Alg_cont.interval) ->
      incr steps;
      let page = iv.Alg_cont.page in
      let j = iv.Alg_cont.j in
      let end_pos = Option.value iv.Alg_cont.end_pos ~default:horizon in
      let y_sum =
        Alg_cont.y_between prefix ~after:iv.Alg_cont.start_pos ~before:end_pos
      in
      let z = Alg_cont.z_of run prefix iv in
      (* (1c): z >= 0 *)
      if z < -.tol then push (fail ~page ~j "1c:z>=0" "z = %g" z);
      (* (2a): z > 0 => x = 1 *)
      if z > tol && not iv.Alg_cont.x then
        push (fail ~page ~j "2a" "z = %g but x = 0" z);
      (match (iv.Alg_cont.x, iv.Alg_cont.m_at_evict, iv.Alg_cont.evict_pos) with
      | true, Some m_hat, Some _ ->
          (* (2b): tight gradient condition at eviction time *)
          let lhs = rate_of run page m_hat -. y_sum +. z in
          if not (Fc.approx_zero ~tol lhs) then
            push
              (fail ~page ~j "2b" "f'(m=%d) - y_sum + z = %g (y_sum=%g z=%g)"
                 m_hat lhs y_sum z);
          (* (3a): same expression with the final m is >= 0 *)
          let m_final =
            let u = Page.user page in
            if u < Array.length run.Alg_cont.final_m then
              run.Alg_cont.final_m.(u)
            else 0
          in
          let lhs_final = rate_of run page m_final -. y_sum +. z in
          if lhs_final < -.tol then
            push (fail ~page ~j "3a" "f'(m_T=%d) - y_sum + z = %g" m_final lhs_final)
      | true, _, _ ->
          push (fail ~page ~j "internal" "x=1 but missing eviction metadata")
      | false, _, _ ->
          (* un-evicted interval: z = 0; (3a) requires
             f'(m(i,T)) >= y_sum.  Fully guaranteed only under flush
             (every page eventually evicted); without flush we still
             check the in-flight form f'(m+1) >= y_sum, which is
             non-negativity of the page's final budget. *)
          let u = Page.user page in
          let m_final =
            if u < Array.length run.Alg_cont.final_m then run.Alg_cont.final_m.(u)
            else 0
          in
          let bound = rate_of run page (m_final + 1) in
          if bound +. tol < y_sum then
            push
              (fail ~page ~j "3a:live" "budget would be negative: f'(%d)=%g < y_sum=%g"
                 (m_final + 1) bound y_sum)))
    intervals;
  (* ---- (1a): cache occupancy never exceeds k ----
     Reconstruct occupancy from the interval records: a page is inside
     the cache from each request until its eviction (or trace end). *)
  let occupancy = Array.make (horizon + 1) 0 in
  List.iter
    (fun (iv : Alg_cont.interval) ->
      let inside_from = iv.Alg_cont.start_pos in
      let inside_until =
        match iv.Alg_cont.evict_pos with
        | Some ev -> ev
        | None -> Option.value iv.Alg_cont.end_pos ~default:horizon
      in
      (* difference array: +1 on [inside_from, inside_until) *)
      occupancy.(inside_from) <- occupancy.(inside_from) + 1;
      if inside_until <= horizon then
        occupancy.(inside_until) <- occupancy.(inside_until) - 1)
    intervals;
  let acc = ref 0 in
  for t = 0 to horizon - 1 do
    acc := !acc + occupancy.(t);
    if !acc > run.Alg_cont.k then
      push (fail "1a" "cache holds %d > k=%d pages after step %d" !acc run.Alg_cont.k t)
  done;
  { checked_intervals = List.length intervals; checked_steps = !steps; failures = List.rev !failures }

(** Convenience: run ALG-CONT and check in one call. *)
let run_and_check ?tol ?mode ?(flush = true) ~k ~costs trace =
  let run = Alg_cont.run ?mode ~flush ~k ~costs trace in
  (run, check ?tol run)
