(** E11 — per-instance certificates: the algorithm's own dual
    variables certify its competitive ratio on each instance, without
    reference to any offline heuristic.

    For each workload and k: the certified upper bound on the ratio
    (online / dual value at the run's rescaled y°, optionally
    ascent-refined), next to the heuristic bracket and the worst-case
    theory bound.  Soundness requirement: the certificate bound must
    never fall below the best-of offline measurement of the same
    quantity — i.e. certified ratio >= online/best-of. *)

module Tbl = Ccache_util.Ascii_table
module Engine = Ccache_sim.Engine
module Theory = Ccache_core.Theory

let run size =
  let length, ks, iters =
    match size with
    | Experiment.Quick -> (700, [ 8; 16 ], 30)
    | Experiment.Full -> (2500, [ 8; 16; 32 ], 120)
  in
  let scenarios =
    [
      Scenarios.two_tenant_monomial ~seed:111 ~length ~beta:2.0 ~pages:48;
      Scenarios.zipf ~seed:112 ~length ~tenants:3 ~pages:40 ~skew:0.8;
    ]
  in
  let table =
    Tbl.create
      ~title:"E11: per-instance certificates from the algorithm's own duals"
      ~aligns:
        [ Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right ]
      [ "workload"; "k"; "online"; "g(y°)"; "improved LB"; "certified<="; "vs best-of" ]
  in
  let unsound = ref 0 in
  List.iter
    (fun (s : Scenarios.t) ->
      List.iter
        (fun k ->
          let costs = s.Scenarios.costs in
          let c = Certificate.certify ~ascent_iterations:iters ~k ~costs s.Scenarios.trace in
          let offline =
            Ccache_offline.Best_of.compute ~local_search_rounds:0 ~cache_size:k
              ~costs s.Scenarios.trace
          in
          let vs_best =
            if offline.Ccache_offline.Best_of.cost > 0.0 then
              c.Certificate.online_cost /. offline.Ccache_offline.Best_of.cost
            else infinity
          in
          (* the certificate is an upper bound on the true ratio, the
             best-of ratio a lower bound: ordering must hold *)
          if c.Certificate.certified_ratio +. 1e-9 < vs_best then incr unsound;
          Tbl.add_row table
            [
              s.Scenarios.name;
              Tbl.cell_int k;
              Tbl.cell_float ~digits:6 c.Certificate.online_cost;
              Tbl.cell_float ~digits:6 c.Certificate.raw_bound;
              Tbl.cell_float ~digits:6 c.Certificate.improved_bound;
              Tbl.cell_ratio c.Certificate.certified_ratio;
              Tbl.cell_ratio vs_best;
            ])
        ks)
    scenarios;
  Experiment.output ~id:"e11" ~title:"Per-instance dual certificates"
    ~notes:
      [
        Printf.sprintf "ordering violations (certified < best-of ratio): %d" !unsound;
        "a single online run certifies its own competitive ratio via weak \
         duality — typically orders of magnitude tighter than the worst-case \
         alpha^alpha k^alpha guarantee";
      ]
    [ table ]

let spec =
  {
    Experiment.id = "e11";
    title = "Per-instance dual certificates";
    claim = "weak duality on (CP): the run's own y° certify its ratio";
    run;
  }
