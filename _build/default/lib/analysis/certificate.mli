(** Per-instance competitive certificates from the algorithm's own
    dual variables.

    ALG-CONT's y° are multipliers for exactly the constraints of (CP)
    on the flushed trace; by weak duality the Lagrangian dual value at
    any rescaling of y° lower-bounds the offline optimum, so a single
    online run certifies [ratio <= cost(ALG) / g(c*y°)] with no
    offline heuristic involved.  A scaling grid plus a few
    warm-started ascent iterations tighten the bound (the raw y°
    typically over-charge and certify nothing until rescaled —
    experiment E11 reports all stages). *)

type t = {
  online_cost : float;
  raw_bound : float;  (** g(y°) — can be negative *)
  scaled_bound : float;  (** best over the scaling grid *)
  best_scale : float;
  improved_bound : float;  (** after warm-started ascent; >= 0 *)
  certified_ratio : float;  (** online_cost / improved_bound *)
}

val certify :
  ?ascent_iterations:int ->
  ?mode:Ccache_cost.Cost_function.derivative_mode ->
  k:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Ccache_trace.Trace.t ->
  t
(** Runs ALG-CONT (flushed) and certifies it.  [ascent_iterations]
    defaults to 50 (0 disables refinement). *)

val pp : Format.formatter -> t -> unit
