(** Per-instance competitive certificates from the algorithm's own
    dual variables.

    ALG-CONT maintains dual multipliers y° for exactly the constraints
    of (CP) on the flushed trace.  By weak duality, the Lagrangian dual
    value g(y°) — or g at any rescaling c*y°, since validity does not
    depend on how y was produced — lower-bounds the offline optimum.
    So after a single online run we can output a {e certificate}:

      competitive ratio on this instance <= cost(ALG) / g(c*y°)

    with no reference to offline heuristics at all.  The theory
    guarantees the worst case alpha^alpha k^alpha; the certificate is
    typically far smaller, which is exactly the gap EXPERIMENTS.md
    (E11) quantifies.  A few warm-started ascent iterations usually
    tighten the bound further. *)

module Cont = Ccache_core.Alg_cont
module F = Ccache_cp.Formulation
module L = Ccache_cp.Lagrangian
module DS = Ccache_cp.Dual_solver
module Cf = Ccache_cost.Cost_function

type t = {
  online_cost : float;  (** sum_i f_i(misses_i) of the run *)
  raw_bound : float;  (** g(y°) at the algorithm's own duals *)
  scaled_bound : float;  (** max over a scaling grid of g(c * y°) *)
  best_scale : float;
  improved_bound : float;  (** after warm-started ascent iterations *)
  certified_ratio : float;  (** online_cost / improved_bound *)
}

let scales = [ 0.05; 0.1; 0.25; 0.5; 0.75; 1.0; 1.5; 2.0; 4.0 ]

(** Certify a run of the paper's algorithm on [trace].

    @param ascent_iterations warm-started refinement steps (default 50;
      0 disables). *)
let certify ?(ascent_iterations = 50) ?(mode = Cf.Discrete) ~k ~costs trace =
  let run = Cont.run ~mode ~flush:true ~k ~costs trace in
  let online_cost = Cont.total_cost run in
  let cp = F.of_trace ~flush:true ~k ~cache_size:k ~costs trace in
  if F.horizon cp <> Array.length run.Cont.y then
    invalid_arg "Certificate.certify: horizon mismatch (internal)";
  let eval_scaled c =
    let y = Array.map (fun v -> c *. v) run.Cont.y in
    (L.eval cp ~y).L.value
  in
  let raw_bound = eval_scaled 1.0 in
  let scaled_bound, best_scale =
    List.fold_left
      (fun (bv, bc) c ->
        let v = eval_scaled c in
        if v > bv then (v, c) else (bv, bc))
      (raw_bound, 1.0) scales
  in
  let improved_bound =
    if ascent_iterations <= 0 then scaled_bound
    else begin
      (* warm-started ascent: like Dual_solver but starting from the
         certificate's best rescaled y° rather than zero *)
      let y = Array.map (fun v -> best_scale *. v) run.Cont.y in
      let active = Array.map (fun rhs -> rhs > 0) cp.F.rhs in
      let best = ref scaled_bound in
      for i = 0 to ascent_iterations - 1 do
        let { L.value; x_star; _ } = L.eval cp ~y in
        if value > !best then best := value;
        let grad = L.supergradient cp ~x_star in
        let norm = ref 0.0 in
        Array.iteri (fun t g -> if active.(t) then norm := !norm +. (g *. g)) grad;
        let norm = sqrt !norm in
        if norm > 0.0 then begin
          let step =
            Float.max 1.0 (Float.abs scaled_bound)
            /. norm
            /. float_of_int (10 * (i + 1))
          in
          Array.iteri
            (fun t g -> if active.(t) then y.(t) <- Float.max 0.0 (y.(t) +. (step *. g)))
            grad
        end
      done;
      let { L.value; _ } = L.eval cp ~y in
      Float.max !best value
    end
  in
  let improved_bound = Float.max improved_bound 0.0 in
  {
    online_cost;
    raw_bound;
    scaled_bound;
    best_scale;
    improved_bound;
    certified_ratio =
      (if improved_bound > 0.0 then online_cost /. improved_bound else infinity);
  }

let pp ppf c =
  Fmt.pf ppf
    "online=%.6g g(y°)=%.6g scaled(x%.2g)=%.6g improved=%.6g certified<=%.3f"
    c.online_cost c.raw_bound c.best_scale c.scaled_bound c.improved_bound
    c.certified_ratio
