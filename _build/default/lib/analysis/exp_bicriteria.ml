(** E3 — Theorem 1.3 (bi-criteria): against an offline algorithm
    restricted to a cache of size h <= k, the bound tightens to
    sum_i f_i(alpha * k/(k-h+1) * b_i).

    Fixes k, sweeps h, and checks the inequality with the offline
    suite running at cache size h.  At h = k this coincides with
    Theorem 1.1; as h shrinks the stretch factor k/(k-h+1) falls
    toward 1. *)

module Tbl = Ccache_util.Ascii_table
module Engine = Ccache_sim.Engine
module Theory = Ccache_core.Theory

let run size =
  let length, k, hs =
    match size with
    | Experiment.Quick -> (1200, 16, [ 4; 16 ])
    | Experiment.Full -> (5000, 32, [ 4; 8; 16; 24; 32 ])
  in
  let s = Scenarios.zipf ~seed:31 ~length ~tenants:3 ~pages:64 ~skew:0.8 in
  let costs = s.Scenarios.costs in
  let alpha = Theory.alpha_of_costs ~max_x:1e6 costs in
  let r = Engine.run ~k ~costs Ccache_core.Alg_discrete.policy s.Scenarios.trace in
  let table =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E3: Theorem 1.3 bi-criteria (k=%d, workload %s, alpha=%.3g)" k
           s.Scenarios.name alpha)
      ~aligns:[ Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Left ]
      [ "h"; "stretch k/(k-h+1)"; "ALG cost"; "offline(h) cost"; "Thm1.3 RHS"; "holds" ]
  in
  let violations = ref 0 in
  List.iter
    (fun h ->
      let offline =
        Ccache_offline.Best_of.compute
          ~local_search_rounds:(match size with Experiment.Quick -> 0 | Experiment.Full -> 30)
          ~cache_size:h ~costs s.Scenarios.trace
      in
      let check =
        Theory.check_thm13 ~alpha ~costs ~k ~h ~a:r.Engine.misses_per_user
          ~b:offline.Ccache_offline.Best_of.misses_per_user ()
      in
      if not check.Theory.holds then incr violations;
      Tbl.add_row table
        [
          Tbl.cell_int h;
          Tbl.cell_float ~digits:4 (float_of_int k /. float_of_int (k - h + 1));
          Tbl.cell_float ~digits:6 check.Theory.lhs;
          Tbl.cell_float ~digits:6 offline.Ccache_offline.Best_of.cost;
          Tbl.cell_float ~digits:6 check.Theory.rhs;
          (if check.Theory.holds then "yes" else "VIOLATED");
        ])
    hs;
  Experiment.output ~id:"e3" ~title:"Theorem 1.3 bi-criteria trade-off"
    ~notes:
      [
        Printf.sprintf "violations: %d (theorem requires 0)" !violations;
        "smaller offline caches h inflate offline misses, so the RHS stays \
         above the fixed online cost even as the stretch factor shrinks";
      ]
    [ table ]

let spec =
  {
    Experiment.id = "e3";
    title = "Theorem 1.3 bi-criteria trade-off";
    claim = "Thm 1.3: sum f_i(a_i) <= sum f_i(alpha k/(k-h+1) b_i) vs h-cache offline";
    run;
  }
