(** Competitive-ratio bookkeeping with OPT bracketing.

    No exact OPT is computable at experiment scale, so every ratio is
    reported as an interval (DESIGN.md decision 5):

    - [ratio_vs_upper] = online / best-of-offline cost.  Best-of is an
      upper bound on OPT's cost, so this is a *lower* bound on the true
      competitive ratio;
    - [ratio_vs_lower] = online / dual lower bound.  The Lagrangian
      bound under-estimates OPT, so this is an *upper* bound on the
      true ratio.

    true ratio is always inside [ratio_vs_upper, ratio_vs_lower]. *)

module Cf = Ccache_cost.Cost_function

type bracket = {
  online_cost : float;
  offline_upper : float;  (** best-of-offline: >= OPT cost *)
  offline_lower : float option;  (** dual bound: <= OPT cost *)
  ratio_vs_upper : float;
  ratio_vs_lower : float option;
}

let safe_div a b = if b > 0.0 then a /. b else infinity

let bracket ?offline_lower ~online_cost ~offline_upper () =
  {
    online_cost;
    offline_upper;
    offline_lower;
    ratio_vs_upper = safe_div online_cost offline_upper;
    ratio_vs_lower = Option.map (fun lb -> safe_div online_cost lb) offline_lower;
  }

let cost_of ~costs misses =
  let acc = ref 0.0 in
  Array.iteri
    (fun u m -> acc := !acc +. Cf.eval costs.(u) (float_of_int m))
    misses;
  !acc

let pp_bracket ppf b =
  match b.ratio_vs_lower with
  | Some r -> Fmt.pf ppf "[%.3f, %.3f]" b.ratio_vs_upper r
  | None -> Fmt.pf ppf "[%.3f, ?]" b.ratio_vs_upper
