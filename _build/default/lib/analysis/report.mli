(** Rendering experiment outputs as text or markdown (EXPERIMENTS.md
    regeneration). *)

type format = Text | Markdown

val render_output : format -> Experiment.output -> string
val run_and_render : ?fmt:format -> size:Experiment.size -> Experiment.t -> string
val run_suite : ?fmt:format -> size:Experiment.size -> Experiment.t list -> string
