(** E14 — windowed SLAs: the paper's motivating phrasing ("M misses in
    a time window of T") priced literally.

    Each policy is run once and priced under (a) the cumulative
    objective sum_i f_i(total misses_i) and (b) the windowed objective
    sum over windows of sum_i f_i(misses in window).  The window-reset
    variant of the paper's algorithm joins the lineup.

    Measured outcome (an honest negative mirroring E13): resetting
    does NOT pay even on the windowed objective, because each reset
    re-enters the hinge's zero-marginal region — the algorithm then
    evicts the protected tenants' hot pages "for free" at every window
    start, blowing exactly the cliffs it was meant to track.  The
    cumulative variant never revisits the zero region, which
    accidentally regularises its marginals.  Low-marginal myopia, not
    window alignment, is the binding constraint. *)

module Tbl = Ccache_util.Ascii_table
module Engine = Ccache_sim.Engine
module Windows = Ccache_sim.Windows
module Cf = Ccache_cost.Cost_function

let run size =
  let length, k, window =
    match size with
    | Experiment.Quick -> (3000, 32, 500)
    | Experiment.Full -> (12000, 48, 1000)
  in
  let trace =
    Ccache_trace.Workloads.generate ~seed:141 ~length
      [
        Ccache_trace.Workloads.tenant ~weight:2.0
          (Ccache_trace.Workloads.Zipf { pages = 60; skew = 0.9 });
        Ccache_trace.Workloads.tenant
          (Ccache_trace.Workloads.Hot_cold
             { pages = 60; hot_pages = 8; hot_prob = 0.8 });
        Ccache_trace.Workloads.tenant
          (Ccache_trace.Workloads.Zipf { pages = 50; skew = 0.6 });
      ]
  in
  (* per-window hinge: tolerance ~what a fair slice of the cache can
     hold a tenant to within one window, so cliffs are live each
     window; quadratic tail keeps marginals informative past it *)
  let costs =
    [|
      Cf.sum
        (Ccache_cost.Sla.hinge ~tolerance:(float_of_int (window / 10)) ~penalty_rate:6.0)
        (Cf.scale ~by:0.01 (Cf.monomial ~beta:2.0 ()));
      Cf.sum
        (Ccache_cost.Sla.hinge ~tolerance:(float_of_int (window / 16)) ~penalty_rate:3.0)
        (Cf.scale ~by:0.01 (Cf.monomial ~beta:2.0 ()));
      Cf.linear ~slope:0.5 ();
    |]
  in
  let policies =
    [
      Ccache_core.Alg_discrete.policy;
      Ccache_core.Alg_windowed.make ~window ();
      Ccache_policies.Lru.policy;
      Ccache_policies.Lfu.policy;
      Ccache_policies.Arc.policy;
      Ccache_policies.Landlord.adaptive;
    ]
  in
  let table =
    Tbl.create
      ~title:
        (Printf.sprintf "E14: cumulative vs windowed objective (k=%d, window=%d)"
           k window)
      ~aligns:[ Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right ]
      [ "policy"; "misses"; "cumulative cost"; "windowed cost"; "worst breaches" ]
  in
  let rows =
    List.map
      (fun policy ->
        let result, w = Windows.run_windowed ~window ~k ~costs policy trace in
        let cumulative = Ccache_sim.Metrics.total_cost ~costs result in
        let windowed = Windows.cost ~costs w in
        let breaches =
          List.init (Array.length costs) (fun u ->
              Windows.breaches w ~user:u ~threshold:(window / 10))
          |> List.fold_left Stdlib.max 0
        in
        (result.Engine.policy, Engine.misses result, cumulative, windowed, breaches))
      policies
  in
  let sorted = List.sort (fun (_, _, _, a, _) (_, _, _, b, _) -> compare a b) rows in
  List.iter
    (fun (name, misses, cum, win, br) ->
      Tbl.add_row table
        [
          name;
          Tbl.cell_int misses;
          Tbl.cell_float ~digits:6 cum;
          Tbl.cell_float ~digits:6 win;
          Tbl.cell_int br;
        ])
    sorted;
  let windowed_of name =
    List.find_map
      (fun (n, _, _, w, _) -> if n = name then Some w else None)
      rows
  in
  let plain = windowed_of "alg-discrete"
  and reset = windowed_of (Printf.sprintf "alg-discrete[w=%d]" window) in
  let reset_wins =
    match (plain, reset) with Some p, Some r -> r <= p | _ -> false
  in
  Experiment.output ~id:"e14" ~title:"Windowed SLAs"
    ~notes:
      [
        Printf.sprintf
          "window-reset variant beats plain ALG-DISCRETE on the windowed \
           objective: %b (expected false — see the module comment)"
          reset_wins;
        "honest negative: each reset re-enters the hinge's zero-marginal \
         region and the algorithm evicts protected tenants' hot pages for \
         free at every window start — the same myopia as E13; cumulative \
         marginals never return to zero, which accidentally regularises \
         them.  Plain ALG-DISCRETE stays the best policy under BOTH \
         accountings here";
      ]
    [ table ]

let spec =
  {
    Experiment.id = "e14";
    title = "Windowed SLAs";
    claim = "the motivation's 'M misses in a window of T', priced literally";
    run;
  }
