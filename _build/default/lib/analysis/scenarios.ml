(** Shared workload + cost-function scenarios used across experiments.

    Centralising them keeps experiment tables comparable: E1/E5/E9 all
    talk about "the SQLVM mix" and mean the same generator and seeds. *)

module Cf = Ccache_cost.Cost_function
module W = Ccache_trace.Workloads

type t = {
  name : string;
  trace : Ccache_trace.Trace.t;
  costs : Cf.t array;
}

let make ~name ~seed ~length ~specs ~costs =
  let trace = W.generate ~seed ~length specs in
  if Array.length costs <> List.length specs then
    invalid_arg "Scenarios.make: costs/specs mismatch";
  { name; trace; costs }

(** Mixed convex costs: cycles through x^2, linear(2), hinge SLA. *)
let mixed_costs n =
  Array.init n (fun i ->
      match i mod 3 with
      | 0 -> Cf.monomial ~beta:2.0 ()
      | 1 -> Cf.linear ~slope:2.0 ()
      | _ -> Ccache_cost.Sla.hinge ~tolerance:50.0 ~penalty_rate:4.0)

(** Uniform monomial costs x^beta for every user. *)
let monomial_costs ~beta n = Array.init n (fun _ -> Cf.monomial ~beta ())

(** Distinct linear weights 1, 2, 4, ... (weighted caching). *)
let weighted_costs n =
  Array.init n (fun i -> Cf.linear ~slope:(Float.pow 2.0 (float_of_int i)) ())

(** n symmetric Zipf tenants. *)
let zipf ~seed ~length ~tenants ~pages ~skew =
  let specs = W.symmetric_zipf ~tenants ~pages_per_tenant:pages ~skew in
  make ~name:(Printf.sprintf "zipf(n=%d,p=%d,s=%g)" tenants pages skew)
    ~seed ~length ~specs ~costs:(mixed_costs tenants)

(** The SQLVM-style 5-tenant mix with SLA refund curves. *)
let sqlvm ~seed ~length ~scale =
  let specs = W.sqlvm_mix ~scale in
  let costs =
    [|
      Ccache_cost.Sla.hinge ~tolerance:100.0 ~penalty_rate:5.0;
      Ccache_cost.Sla.tiered ~thresholds:[ 50.0; 150.0 ] ~base_rate:1.0
        ~escalation:3.0;
      Cf.linear ~slope:0.5 ();
      Cf.monomial ~beta:2.0 ();
      Ccache_cost.Sla.hinge ~tolerance:30.0 ~penalty_rate:8.0;
    |]
  in
  make ~name:(Printf.sprintf "sqlvm(scale=%d)" scale) ~seed ~length ~specs ~costs

(** Diurnal tenant churn: 4 tenants, half going quiet every other
    phase (generator-level churn, DESIGN substitution table row 3). *)
let churn ~seed ~length =
  let day =
    [
      W.tenant ~weight:2.0 (W.Zipf { pages = 50; skew = 0.9 });
      W.tenant ~weight:1.5 (W.Zipf { pages = 40; skew = 0.7 });
      W.tenant ~weight:1.0 (W.Hot_cold { pages = 40; hot_pages = 6; hot_prob = 0.85 });
      W.tenant ~weight:1.0 (W.Sequential_scan { pages = 60; passes = 2 });
    ]
  in
  let cycles = Stdlib.max 1 (length / 1000) in
  let phase_length = Stdlib.max 1 (length / (2 * cycles)) in
  let phases = W.day_night ~day ~night_tenants:2 ~phase_length ~cycles in
  {
    name = Printf.sprintf "churn(cycles=%d)" cycles;
    trace = W.generate_phases ~seed phases;
    costs = mixed_costs 4;
  }

(** Small two-tenant scenario with monomial costs, for k/beta sweeps. *)
let two_tenant_monomial ~seed ~length ~beta ~pages =
  let specs =
    [
      W.tenant ~weight:2.0 (W.Zipf { pages; skew = 0.8 });
      W.tenant ~weight:1.0 (W.Hot_cold { pages; hot_pages = Stdlib.max 1 (pages / 8); hot_prob = 0.8 });
    ]
  in
  make ~name:(Printf.sprintf "2tenant(beta=%g)" beta) ~seed ~length ~specs
    ~costs:(monomial_costs ~beta 2)

(** Tiny deterministic scenario for exact-DP experiments: [tenants]
    users, few pages, short trace. *)
let tiny ~seed ~tenants ~pages_per_tenant ~length =
  let specs =
    List.init tenants (fun _ -> W.tenant (W.Uniform { pages = pages_per_tenant }))
  in
  make ~name:(Printf.sprintf "tiny(n=%d,p=%d,T=%d)" tenants pages_per_tenant length)
    ~seed ~length ~specs
    ~costs:(monomial_costs ~beta:2.0 tenants)
