(** E4 — Theorem 1.4: the adaptive adversary forces any deterministic
    online algorithm to pay Omega(k)^beta times offline.

    Drives the adversary against both LRU (cost-blind) and ALG-DISCRETE
    and prices against the Section 4 batch comparator.  The log-log
    slope of ratio vs k should approach beta for every deterministic
    policy — the lower bound is policy-independent. *)

module Tbl = Ccache_util.Ascii_table
module T4 = Ccache_lb.Theorem4

let run size =
  let ns, betas, steps_per_user =
    match size with
    | Experiment.Quick -> ([ 4; 8; 16 ], [ 1.0; 2.0 ], 100)
    | Experiment.Full -> ([ 4; 8; 16; 32; 64 ], [ 1.0; 2.0; 3.0 ], 300)
  in
  let policies =
    [ Ccache_policies.Lru.policy; Ccache_core.Alg_discrete.policy ]
  in
  let table =
    Tbl.create
      ~title:"E4: Theorem 1.4 adversarial lower bound (k = n-1, f = x^beta)"
      ~aligns:[ Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right ]
      [ "policy"; "beta"; "k"; "online cost"; "offline cost"; "ratio"; "(k/4)^beta" ]
  in
  let slopes =
    Tbl.create ~title:"E4b: growth exponent of ratio in k (log-log slope; theory: beta)"
      ~aligns:[ Tbl.Left; Tbl.Right; Tbl.Right ]
      [ "policy"; "beta"; "fitted slope" ]
  in
  List.iter
    (fun policy ->
      List.iter
        (fun beta ->
          let points, slope = T4.sweep ~steps_per_user ~ns ~beta policy in
          List.iter
            (fun (p : T4.point) ->
              Tbl.add_row table
                [
                  p.T4.policy;
                  Tbl.cell_float ~digits:2 p.T4.beta;
                  Tbl.cell_int p.T4.k;
                  Tbl.cell_float ~digits:6 p.T4.online_cost;
                  Tbl.cell_float ~digits:6 p.T4.offline_cost;
                  Tbl.cell_ratio p.T4.ratio;
                  Tbl.cell_float ~digits:4 p.T4.theory_curve;
                ])
            points;
          Tbl.add_row slopes
            [
              (match points with p :: _ -> p.T4.policy | [] -> "?");
              Tbl.cell_float ~digits:2 beta;
              Tbl.cell_float ~digits:3 slope;
            ])
        betas)
    policies;
  Experiment.output ~id:"e4" ~title:"Theorem 1.4 adversarial lower bound"
    ~notes:
      [
        "the measured ratio exceeds the paper's (k/4)^beta curve and its \
         growth exponent in k tracks beta, for cost-blind and cost-aware \
         policies alike — no deterministic algorithm escapes the bound";
      ]
    [ table; slopes ]

let spec =
  {
    Experiment.id = "e4";
    title = "Theorem 1.4 adversarial lower bound";
    claim = "Thm 1.4: any deterministic online algorithm pays Omega(k)^beta x OPT";
    run;
  }
