(** E9 — ablations of the design decisions (DESIGN.md Section 3):

    - drop the same-owner marginal bump ([no-bump]);
    - drop the uniform budget decay ([no-subtract] = greedy marginal);
    - analytic derivative instead of discrete marginal;
    - fast (offset-decomposed) vs reference implementation —
      equal costs expected, and with integer-valued costs equal
      victim-for-victim (the property tests enforce the latter).

    Each variant still runs, but only the full rule set carries the
    paper's guarantee; the table shows what each rule buys. *)

module Tbl = Ccache_util.Ascii_table
module Engine = Ccache_sim.Engine
module Metrics = Ccache_sim.Metrics
module Alg = Ccache_core.Alg_discrete

let run size =
  let length, ks =
    match size with
    | Experiment.Quick -> (2000, [ 32 ])
    | Experiment.Full -> (8000, [ 32; 96 ])
  in
  let s = Scenarios.zipf ~seed:91 ~length ~tenants:4 ~pages:64 ~skew:0.9 in
  let monomial = Scenarios.monomial_costs ~beta:2.0 4 in
  let variants =
    [
      Alg.policy;
      Alg.analytic;
      Alg.no_bump;
      Alg.no_subtract;
      Ccache_core.Alg_fast.policy;
    ]
  in
  let tables =
    List.map
      (fun k ->
        let results =
          List.map (fun p -> Engine.run ~k ~costs:monomial p s.Scenarios.trace) variants
        in
        Metrics.comparison_table
          ~title:
            (Printf.sprintf "E9: ALG-DISCRETE ablations, %s, x^2 costs, k=%d"
               s.Scenarios.name k)
          ~costs:monomial results)
      ks
  in
  (* fast = reference cost identity *)
  let agree =
    List.for_all
      (fun k ->
        let a = Engine.run ~k ~costs:monomial Alg.policy s.Scenarios.trace in
        let b = Engine.run ~k ~costs:monomial Ccache_core.Alg_fast.policy s.Scenarios.trace in
        a.Engine.misses_per_user = b.Engine.misses_per_user)
      ks
  in
  Experiment.output ~id:"e9" ~title:"ALG-DISCRETE ablations"
    ~notes:
      [
        Printf.sprintf "fast = reference (identical miss vectors): %b" agree;
        "no-subtract (pure greedy marginal) loses the recency signal and \
         degrades most; no-bump weakens inter-page coupling within a user; \
         analytic vs discrete marginals differ marginally on smooth costs";
      ]
    tables

let spec =
  {
    Experiment.id = "e9";
    title = "ALG-DISCRETE ablations";
    claim = "design decisions 1-3 of DESIGN.md: each update rule is load-bearing";
    run;
  }
