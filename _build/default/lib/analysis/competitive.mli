(** Competitive-ratio bookkeeping with OPT bracketing (DESIGN.md
    decision 5): no exact OPT is computable at experiment scale, so
    every ratio is an interval.  [ratio_vs_upper] (online / best-of
    offline) lower-bounds the true ratio; [ratio_vs_lower] (online /
    dual bound) upper-bounds it. *)

type bracket = {
  online_cost : float;
  offline_upper : float;  (** best-of offline: >= OPT cost *)
  offline_lower : float option;  (** dual bound: <= OPT cost *)
  ratio_vs_upper : float;
  ratio_vs_lower : float option;
}

val bracket :
  ?offline_lower:float -> online_cost:float -> offline_upper:float -> unit -> bracket

val cost_of : costs:Ccache_cost.Cost_function.t array -> int array -> float
(** [sum_i f_i(misses_i)]. *)

val pp_bracket : Format.formatter -> bracket -> unit
