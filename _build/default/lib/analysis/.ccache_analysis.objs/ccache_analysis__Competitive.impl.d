lib/analysis/competitive.ml: Array Ccache_cost Fmt Option
