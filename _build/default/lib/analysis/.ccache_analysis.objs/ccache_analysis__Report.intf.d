lib/analysis/report.mli: Experiment
