lib/analysis/exp_multipool.ml: Array Ccache_core Ccache_multipool Ccache_sim Ccache_util Experiment List Printf Scenarios
