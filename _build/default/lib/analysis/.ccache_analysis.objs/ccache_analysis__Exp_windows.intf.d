lib/analysis/exp_windows.mli: Experiment
