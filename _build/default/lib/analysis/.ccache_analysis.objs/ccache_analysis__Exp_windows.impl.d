lib/analysis/exp_windows.ml: Array Ccache_core Ccache_cost Ccache_policies Ccache_sim Ccache_trace Ccache_util Experiment List Printf Stdlib
