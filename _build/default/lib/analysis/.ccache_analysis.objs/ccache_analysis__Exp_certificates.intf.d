lib/analysis/exp_certificates.mli: Experiment
