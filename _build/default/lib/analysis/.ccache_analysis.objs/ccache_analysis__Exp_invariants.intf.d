lib/analysis/exp_invariants.mli: Experiment
