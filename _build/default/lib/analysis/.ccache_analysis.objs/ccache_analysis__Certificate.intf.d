lib/analysis/certificate.mli: Ccache_cost Ccache_trace Format
