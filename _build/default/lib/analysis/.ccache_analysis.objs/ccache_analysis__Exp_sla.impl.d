lib/analysis/exp_sla.ml: Ccache_core Ccache_policies Ccache_sim Ccache_util Experiment List Printf Scenarios
