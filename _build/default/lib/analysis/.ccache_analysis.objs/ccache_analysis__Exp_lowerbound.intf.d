lib/analysis/exp_lowerbound.mli: Experiment
