lib/analysis/exp_linear.ml: Ccache_core Ccache_offline Ccache_policies Ccache_sim Ccache_trace Ccache_util Experiment List Printf Scenarios
