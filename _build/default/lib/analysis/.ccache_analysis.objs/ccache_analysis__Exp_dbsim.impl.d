lib/analysis/exp_dbsim.ml: Array Ccache_core Ccache_cost Ccache_dbsim Ccache_policies Ccache_sim Ccache_trace Ccache_util Experiment List Printf
