lib/analysis/suite.mli: Experiment
