lib/analysis/exp_dbsim.mli: Experiment
