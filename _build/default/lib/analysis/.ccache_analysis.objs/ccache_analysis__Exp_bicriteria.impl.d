lib/analysis/exp_bicriteria.ml: Ccache_core Ccache_offline Ccache_sim Ccache_util Experiment List Printf Scenarios
