lib/analysis/exp_invariants.ml: Array Ccache_core Ccache_cost Ccache_trace Ccache_util Experiment List Printf Scenarios
