lib/analysis/exp_ablations.mli: Experiment
