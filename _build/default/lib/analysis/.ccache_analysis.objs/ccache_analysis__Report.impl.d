lib/analysis/report.ml: Buffer Ccache_util Experiment List Printf String
