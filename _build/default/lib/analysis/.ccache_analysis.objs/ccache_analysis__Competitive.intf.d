lib/analysis/competitive.mli: Ccache_cost Format
