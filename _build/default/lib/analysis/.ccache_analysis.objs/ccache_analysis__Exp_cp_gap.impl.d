lib/analysis/exp_cp_gap.ml: Array Ccache_cost Ccache_cp Ccache_offline Ccache_trace Ccache_util Experiment List Printf Scenarios
