lib/analysis/exp_lowerbound.ml: Ccache_core Ccache_lb Ccache_policies Ccache_util Experiment List
