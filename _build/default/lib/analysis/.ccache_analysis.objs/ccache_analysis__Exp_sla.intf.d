lib/analysis/exp_sla.mli: Experiment
