lib/analysis/experiment.ml: Ccache_util List
