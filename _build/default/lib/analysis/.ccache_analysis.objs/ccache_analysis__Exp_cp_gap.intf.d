lib/analysis/exp_cp_gap.mli: Experiment
