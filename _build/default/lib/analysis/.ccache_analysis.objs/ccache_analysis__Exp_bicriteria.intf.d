lib/analysis/exp_bicriteria.mli: Experiment
