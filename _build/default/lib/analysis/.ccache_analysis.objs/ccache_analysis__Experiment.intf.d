lib/analysis/experiment.mli: Ccache_util
