lib/analysis/exp_monomial.ml: Ccache_core Ccache_cp Ccache_offline Ccache_sim Ccache_util Competitive Experiment Fmt List Printf Scenarios
