lib/analysis/exp_monomial.mli: Experiment
