lib/analysis/exp_thm11.mli: Experiment
