lib/analysis/exp_ablations.ml: Ccache_core Ccache_sim Ccache_util Experiment List Printf Scenarios
