lib/analysis/exp_fractional.mli: Experiment
