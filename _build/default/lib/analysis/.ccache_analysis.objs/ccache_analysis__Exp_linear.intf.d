lib/analysis/exp_linear.mli: Experiment
