lib/analysis/scenarios.mli: Ccache_cost Ccache_trace
