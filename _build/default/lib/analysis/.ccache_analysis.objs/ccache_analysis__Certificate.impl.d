lib/analysis/certificate.ml: Array Ccache_core Ccache_cost Ccache_cp Float Fmt List
