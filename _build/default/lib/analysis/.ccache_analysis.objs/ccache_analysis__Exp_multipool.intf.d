lib/analysis/exp_multipool.mli: Experiment
