lib/analysis/exp_certificates.ml: Ccache_core Ccache_offline Ccache_sim Ccache_util Certificate Experiment List Printf Scenarios
