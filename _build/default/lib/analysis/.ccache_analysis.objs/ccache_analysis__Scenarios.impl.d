lib/analysis/scenarios.ml: Array Ccache_cost Ccache_trace Float List Printf Stdlib
