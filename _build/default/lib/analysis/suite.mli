(** The complete experiment suite, in DESIGN.md order (E1..E14). *)

val all : Experiment.t list
val find : string -> Experiment.t option
val ids : string list
