(** E10 — the paper's future-work extension (§5): multiple memory
    pools with per-user assignment and switching costs.

    Compares, at equal total memory: one shared pool (the paper's
    setting), static round-robin assignment over p pools, and the
    greedy cost-pressure rebalancer at several switching costs.  The
    shared pool is the upper baseline (assignment can only restrict);
    rebalancing should recover part of the gap, less as switching gets
    pricier. *)

module Tbl = Ccache_util.Ascii_table
module ME = Ccache_multipool.Multi_engine
module Engine = Ccache_sim.Engine
module Metrics = Ccache_sim.Metrics

let run size =
  let length, total_k, pool_counts =
    match size with
    | Experiment.Quick -> (3000, 64, [ 2 ])
    | Experiment.Full -> (10000, 128, [ 2; 4; 8 ])
  in
  let s = Scenarios.sqlvm ~seed:101 ~length ~scale:1 in
  let costs = s.Scenarios.costs in
  let shared =
    Engine.run ~k:total_k ~costs Ccache_core.Alg_discrete.policy s.Scenarios.trace
  in
  let shared_cost = Metrics.total_cost ~costs shared in
  let table =
    Tbl.create
      ~title:
        (Printf.sprintf "E10: multi-pool (total memory %d pages, workload %s)"
           total_k s.Scenarios.name)
      ~aligns:[ Tbl.Right; Tbl.Left; Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right ]
      [ "pools"; "start"; "assignment"; "total cost"; "migrations"; "vs shared" ]
  in
  Tbl.add_row table
    [ "1"; "-"; "shared (paper)"; Tbl.cell_float ~digits:6 shared_cost; "0"; "1.000" ];
  let n_users = Array.length costs in
  List.iter
    (fun pools ->
      let pool_size = total_k / pools in
      (* two starting assignments: balanced round-robin, and a
         pathological one with every tenant on pool 0 (an operator
         mistake the rebalancer should repair) *)
      let assignments =
        [ ("rr", None); ("skewed", Some (Array.make n_users 0)) ]
      in
      let strategies =
        ME.Static_round_robin
        :: List.map
             (fun sw -> ME.Greedy_cost { rebalance_every = 250; switch_cost = sw })
             [ 0.0; 50.0; 1e7 ]
      in
      List.iter
        (fun (start_name, initial_assignment) ->
          List.iter
            (fun strategy ->
              let r =
                ME.run ?initial_assignment ~pools ~pool_size ~strategy ~costs
                  s.Scenarios.trace
              in
              Tbl.add_row table
                [
                  Tbl.cell_int pools;
                  start_name;
                  r.ME.strategy;
                  Tbl.cell_float ~digits:6 r.ME.total_cost;
                  Tbl.cell_int r.ME.migrations;
                  Tbl.cell_ratio (r.ME.total_cost /. shared_cost);
                ])
            strategies)
        assignments)
    pool_counts;
  Experiment.output ~id:"e10" ~title:"Multi-pool future-work extension"
    ~notes:
      [
        "a single shared pool dominates (assignment only constrains)";
        "from a balanced start the rebalancer correctly declines to migrate \
         (warm-up cost exceeds the imbalance); from the pathological \
         all-on-one-pool start it migrates tenants out and recovers most of \
         the gap, until the switching cost makes migration uneconomical — \
         the trade-off the paper poses as future work";
      ]
    [ table ]

let spec =
  {
    Experiment.id = "e10";
    title = "Multi-pool future-work extension";
    claim = "Section 5 future work: pools + assignment + switching costs";
    run;
  }
