(** Shared workload + cost-function scenarios: E1/E5/E9 all say "the
    SQLVM mix" and mean the same generator and seeds. *)

type t = {
  name : string;
  trace : Ccache_trace.Trace.t;
  costs : Ccache_cost.Cost_function.t array;
}

val make :
  name:string ->
  seed:int ->
  length:int ->
  specs:Ccache_trace.Workloads.tenant_spec list ->
  costs:Ccache_cost.Cost_function.t array ->
  t

val mixed_costs : int -> Ccache_cost.Cost_function.t array
(** Cycles x^2 / linear / hinge SLA. *)

val monomial_costs : beta:float -> int -> Ccache_cost.Cost_function.t array
val weighted_costs : int -> Ccache_cost.Cost_function.t array
(** Linear weights 1, 2, 4, ... *)

val zipf : seed:int -> length:int -> tenants:int -> pages:int -> skew:float -> t
val sqlvm : seed:int -> length:int -> scale:int -> t
val churn : seed:int -> length:int -> t
(** Diurnal tenant churn over {!Ccache_trace.Workloads.day_night}. *)

val two_tenant_monomial : seed:int -> length:int -> beta:float -> pages:int -> t
val tiny : seed:int -> tenants:int -> pages_per_tenant:int -> length:int -> t
