(** E8 — relaxation quality of (CP): on instances small enough for the
    exact Pareto DP, verify and report the sandwich

      dual lower bound <= DP optimum <= rounded fractional <= best-of

    (each inequality is a soundness requirement for the OPT bracketing
    used everywhere else; the gaps quantify tightness).  The dual
    bound prices evictions on the flushed program, so it is compared
    against the DP optimum computed on the same flushed accounting. *)

module Tbl = Ccache_util.Ascii_table
module DS = Ccache_cp.Dual_solver
module F = Ccache_cp.Formulation

let run size =
  let instances, dual_iters =
    match size with
    | Experiment.Quick ->
        ([ (1, 2, 4, 24, 3); (2, 3, 3, 24, 4) ], 120)
    | Experiment.Full ->
        ([ (1, 2, 4, 36, 3); (2, 3, 3, 36, 4); (3, 2, 6, 40, 5); (4, 3, 4, 40, 6) ], 400)
  in
  let table =
    Tbl.create
      ~title:"E8: (CP) relaxation sandwich on tiny instances (eviction accounting, flushed)"
      ~aligns:[ Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Left ]
      [ "instance"; "dual LB"; "DP OPT"; "rounded"; "best-of"; "sound" ]
  in
  let unsound = ref 0 in
  List.iter
    (fun (seed, tenants, pages, length, k) ->
      let s = Scenarios.tiny ~seed ~tenants ~pages_per_tenant:pages ~length in
      let costs = s.Scenarios.costs in
      let cp = F.of_trace ~flush:true ~k ~cache_size:k ~costs s.Scenarios.trace in
      let sol = DS.solve ~options:{ DS.default_options with iterations = dual_iters } cp in
      let dual_lb = sol.DS.bound in
      (* DP on the same accounting: flushed trace makes misses =
         evictions for real users, so DP misses match (ICP) cost *)
      let flushed = Ccache_trace.Trace.with_flush ~k s.Scenarios.trace in
      let dp =
        let costs_flushed =
          Array.append costs [| Ccache_cost.Cost_function.linear ~slope:0.0 () |]
        in
        (* flush pages are pinned, exactly as (CP) fixes their x to 0 *)
        Ccache_offline.Dp_opt.solve
          ~pinned:(fun p -> Ccache_trace.Page.user p >= tenants)
          ~cache_size:k ~costs:costs_flushed flushed
      in
      let { Ccache_cp.Lagrangian.x_star; _ } =
        Ccache_cp.Lagrangian.eval cp ~y:sol.DS.best_y
      in
      let rounded = Ccache_cp.Rounding.round cp ~x:x_star in
      let best =
        Ccache_offline.Best_of.compute ~local_search_rounds:20 ~exact_dp:false
          ~cache_size:k ~costs s.Scenarios.trace
      in
      let tol = 1e-6 in
      let sound =
        dual_lb <= dp.Ccache_offline.Dp_opt.cost +. tol
        && dp.Ccache_offline.Dp_opt.cost
           <= rounded.Ccache_cp.Rounding.cost_by_evictions +. tol
      in
      if not sound then incr unsound;
      Tbl.add_row table
        [
          s.Scenarios.name ^ Printf.sprintf "/k=%d" k;
          Tbl.cell_float ~digits:5 dual_lb;
          Tbl.cell_float ~digits:5 dp.Ccache_offline.Dp_opt.cost;
          Tbl.cell_float ~digits:5 rounded.Ccache_cp.Rounding.cost_by_evictions;
          Tbl.cell_float ~digits:5 best.Ccache_offline.Best_of.cost;
          (if sound then "yes" else "VIOLATED");
        ])
    instances;
  Experiment.output ~id:"e8" ~title:"(CP) relaxation gap"
    ~notes:
      [
        Printf.sprintf "sandwich violations: %d (soundness requires 0)" !unsound;
        "best-of is evaluated on the unflushed (miss) accounting and so can \
         sit above or below the eviction-accounting columns; the binding \
         soundness chain is dual-LB <= DP-OPT <= rounded";
      ]
    [ table ]

let spec =
  {
    Experiment.id = "e8";
    title = "(CP) relaxation gap";
    claim = "CP relaxation: weak duality and integrality gap are small on tiny instances";
    run;
  }
