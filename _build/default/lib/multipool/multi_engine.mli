(** Multiple memory pools — the paper's future-work extension (§5):
    each tenant is assigned to one pool (its own cache + policy
    instance); an optional rebalancer migrates tenants between pools,
    paying a switching cost and losing the migrated tenant's warm
    pages.

    The greedy rebalancer fires every [rebalance_every] requests and
    moves the highest-pressure tenant from the most- to the
    least-pressured pool, guarded by: a cooldown, a 3x pool-pressure
    hysteresis, a stability condition (the move must not just flip the
    imbalance), and an economics test (amortised expected gain must
    exceed switching plus estimated re-warm cost). *)

type strategy =
  | Static_round_robin
  | Greedy_cost of { rebalance_every : int; switch_cost : float }

val strategy_name : strategy -> string

type result = {
  strategy : string;
  pools : int;
  pool_size : int;
  misses_per_user : int array;
  migrations : int;
  switch_cost_paid : float;
  total_cost : float;  (** sum_i f_i(misses_i) + switch costs paid *)
}

val run :
  ?policy:Ccache_sim.Policy.t ->
  ?initial_assignment:int array ->
  pools:int ->
  pool_size:int ->
  strategy:strategy ->
  costs:Ccache_cost.Cost_function.t array ->
  Ccache_trace.Trace.t ->
  result
(** [policy] defaults to ALG-DISCRETE; [initial_assignment] defaults
    to round-robin.  @raise Invalid_argument on malformed pools,
    sizes, costs or assignments. *)
