lib/multipool/multi_engine.ml: Array Ccache_core Ccache_cost Ccache_sim Ccache_trace Float List Page Printf Trace
