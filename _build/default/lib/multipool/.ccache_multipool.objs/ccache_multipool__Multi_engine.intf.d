lib/multipool/multi_engine.mli: Ccache_cost Ccache_sim Ccache_trace
