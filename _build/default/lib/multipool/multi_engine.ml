(** Multiple memory pools — the paper's future-work extension (§5).

    "Consider the case of multiple memory pools (e.g., each pool
    corresponds to a single physical server), where each user has to be
    assigned to a single pool, with potentially switching cost incurred
    for migrating users between servers."

    Model implemented here:

    - [pools] caches, each of size [pool_size], each running its own
      instance of a policy (ALG-DISCRETE by default);
    - every user is assigned to exactly one pool; all its requests are
      served by that pool's cache;
    - an optional periodic rebalancer migrates users between pools; a
      migration costs [switch_cost] plus the implicit cost of losing
      the user's cached pages (its pages in the old pool are dropped).

    Assignment strategies:
    - [Static_round_robin] — user u on pool (u mod pools), never moves;
    - [Greedy_cost] — every [rebalance_every] requests, move the user
      with the highest recent marginal cost pressure to the pool with
      the lowest total recent pressure, if the estimated gain exceeds
      [switch_cost]. *)

module Policy = Ccache_sim.Policy
module Cf = Ccache_cost.Cost_function
open Ccache_trace

type strategy =
  | Static_round_robin
  | Greedy_cost of { rebalance_every : int; switch_cost : float }

let strategy_name = function
  | Static_round_robin -> "static-rr"
  | Greedy_cost { switch_cost; _ } -> Printf.sprintf "greedy(sw=%g)" switch_cost

type result = {
  strategy : string;
  pools : int;
  pool_size : int;
  misses_per_user : int array;
  migrations : int;
  switch_cost_paid : float;
  total_cost : float;  (** sum_i f_i(misses_i) + switch costs *)
}

(* One pool: its own policy instance and cache bookkeeping, mirroring
   the single-cache engine. *)
type pool = {
  handlers : Policy.handlers;
  cached : unit Page.Tbl.t;
  mutable occupancy : int;
}

let make_pool ~policy ~pool_size ~costs =
  let config = Policy.Config.make ~k:pool_size ~costs () in
  {
    handlers = Policy.instantiate policy config;
    cached = Page.Tbl.create 64;
    occupancy = 0;
  }

let run ?(policy = Ccache_core.Alg_discrete.policy) ?initial_assignment
    ~pools:n_pools ~pool_size ~strategy ~costs trace =
  if n_pools <= 0 then invalid_arg "Multi_engine.run: pools must be positive";
  if pool_size <= 0 then invalid_arg "Multi_engine.run: pool_size must be positive";
  let n_users = Trace.n_users trace in
  if Array.length costs <> n_users then
    invalid_arg "Multi_engine.run: costs/users mismatch";
  let pool_of_user =
    match initial_assignment with
    | None -> Array.init n_users (fun u -> u mod n_pools)
    | Some a ->
        if Array.length a <> n_users then
          invalid_arg "Multi_engine.run: initial_assignment/users mismatch";
        Array.iter
          (fun q ->
            if q < 0 || q >= n_pools then
              invalid_arg "Multi_engine.run: assignment outside pool range")
          a;
        Array.copy a
  in
  let pools = Array.init n_pools (fun _ -> make_pool ~policy ~pool_size ~costs) in
  let misses = Array.make n_users 0 in
  (* sliding pressure window: marginal cost of each user's recent misses *)
  let pressure = Array.make n_users 0.0 in
  let pool_pressure = Array.make n_pools 0.0 in
  let migrations = ref 0 in
  let switch_paid = ref 0.0 in
  let serve pos page =
    let pool = pools.(pool_of_user.(Page.user page)) in
    if Page.Tbl.mem pool.cached page then pool.handlers.Policy.on_hit ~pos page
    else begin
      let u = Page.user page in
      misses.(u) <- misses.(u) + 1;
      let marginal =
        Cf.eval costs.(u) (float_of_int misses.(u))
        -. Cf.eval costs.(u) (float_of_int (misses.(u) - 1))
      in
      pressure.(u) <- pressure.(u) +. marginal;
      pool_pressure.(pool_of_user.(u)) <- pool_pressure.(pool_of_user.(u)) +. marginal;
      if pool.occupancy >= pool_size then begin
        let victim = pool.handlers.Policy.choose_victim ~pos ~incoming:page in
        if not (Page.Tbl.mem pool.cached victim) then
          invalid_arg "Multi_engine.run: policy evicted uncached page";
        Page.Tbl.remove pool.cached victim;
        pool.occupancy <- pool.occupancy - 1;
        pool.handlers.Policy.on_evict ~pos victim
      end;
      Page.Tbl.replace pool.cached page ();
      pool.occupancy <- pool.occupancy + 1;
      pool.handlers.Policy.on_insert ~pos page
    end
  in
  (* migrate user u to pool q: drop its pages from the old pool (they
     are simply lost — the new pool warms up from scratch) *)
  let migrate ~pos u q =
    let p = pool_of_user.(u) in
    if p <> q then begin
      let pool = pools.(p) in
      let mine =
        Page.Tbl.fold
          (fun page () acc -> if Page.user page = u then page :: acc else acc)
          pool.cached []
      in
      List.iter
        (fun page ->
          Page.Tbl.remove pool.cached page;
          pool.occupancy <- pool.occupancy - 1;
          pool.handlers.Policy.on_evict ~pos page)
        mine;
      pool_of_user.(u) <- q;
      incr migrations
    end
  in
  let last_migration = ref (-1_000_000_000) in
  let rebalance ~pos ~rebalance_every ~switch_cost =
    (* hottest user on the most pressured pool vs least pressured pool *)
    let hot_pool = ref 0 and cold_pool = ref 0 in
    Array.iteri
      (fun q v ->
        if v > pool_pressure.(!hot_pool) then hot_pool := q;
        if v < pool_pressure.(!cold_pool) then cold_pool := q)
      pool_pressure;
    (* cooldown (migrating too often thrashes warm working sets) and
       hysteresis (pools within 3x pressure are left alone: moving a tenant
       out of a balanced assignment only creates the imbalance it
       claims to fix) *)
    if !hot_pool <> !cold_pool
       && pos - !last_migration >= 4 * rebalance_every
       && pool_pressure.(!hot_pool) > 3.0 *. pool_pressure.(!cold_pool) +. 1e-9
    then begin
      let gap = pool_pressure.(!hot_pool) -. pool_pressure.(!cold_pool) in
      (* move the user contributing most of the hot pool's pressure *)
      let best_u = ref (-1) in
      Array.iteri
        (fun u _ ->
          if pool_of_user.(u) = !hot_pool
             && (!best_u < 0 || pressure.(u) > pressure.(!best_u))
          then best_u := u)
        pressure;
      if !best_u >= 0 && pressure.(!best_u) > 0.0 then begin
        let u = !best_u in
        (* migration drops the user's warm pages: estimate the re-warm
           cost as cached-footprint x current marginal miss cost, and
           require the observed imbalance to pay for switch + warm-up *)
        let footprint =
          Page.Tbl.fold
            (fun page () acc -> if Page.user page = u then acc + 1 else acc)
            pools.(!hot_pool).cached 0
        in
        let marginal =
          Cf.eval costs.(u) (float_of_int (misses.(u) + 1))
          -. Cf.eval costs.(u) (float_of_int misses.(u))
        in
        let warmup_cost = float_of_int footprint *. marginal in
        (* the user's pressure is a per-window quantity while switch and
           warm-up are one-time: amortise over an assumed persistence
           horizon of 8 windows (heuristic; see E10's sensitivity to
           switch_cost for how the decision degrades gracefully) *)
        let horizon = 8.0 in
        let expected_gain = Float.min pressure.(u) gap *. horizon in
        (* a user carrying most of the gap would just flip the imbalance
           to the other pool and ping-pong; require the move to leave
           the hot pool at least as pressured as the cold one *)
        let stable = pressure.(u) <= 0.75 *. gap in
        if stable && expected_gain > switch_cost +. warmup_cost then begin
          migrate ~pos u !cold_pool;
          last_migration := pos;
          switch_paid := !switch_paid +. switch_cost
        end
      end
    end;
    (* decay the pressure window *)
    Array.iteri (fun u v -> pressure.(u) <- v /. 2.0) pressure;
    Array.iteri (fun q v -> pool_pressure.(q) <- v /. 2.0) pool_pressure
  in
  let n = Trace.length trace in
  for pos = 0 to n - 1 do
    serve pos (Trace.request trace pos);
    match strategy with
    | Greedy_cost { rebalance_every; switch_cost }
      when pos > 0 && pos mod rebalance_every = 0 ->
        rebalance ~pos ~rebalance_every ~switch_cost
    | Greedy_cost _ | Static_round_robin -> ()
  done;
  let total =
    let acc = ref !switch_paid in
    Array.iteri
      (fun u m -> acc := !acc +. Cf.eval costs.(u) (float_of_int m))
      misses;
    !acc
  in
  {
    strategy = strategy_name strategy;
    pools = n_pools;
    pool_size;
    misses_per_user = misses;
    migrations = !migrations;
    switch_cost_paid = !switch_paid;
    total_cost = total;
  }
