(** Plain-text trace serialisation.

    Line-oriented format ('#' comments and blank lines allowed):
    {v
    # convex-caching trace v1
    users <n>
    <user> <page>
    ...
    v} *)

val magic : string
(** The mandatory first line. *)

exception Parse_error of { line : int; message : string }

val to_string : Trace.t -> string
val of_string : string -> Trace.t
(** @raise Parse_error on malformed input. *)

val write_channel : out_channel -> Trace.t -> unit
val write_file : string -> Trace.t -> unit
val read_file : string -> Trace.t
