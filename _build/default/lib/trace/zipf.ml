(** Zipf-distributed sampling over [\[0, n)].

    Buffer-pool page popularity is classically heavy-tailed; the
    SQLVM-style workloads sample page ids from Zipf(s) where [s] is the
    skew exponent (s = 0 degenerates to uniform).  Sampling uses the
    inverse-CDF over precomputed cumulative weights: O(n) setup and
    O(log n) per sample, exact (no rejection). *)

type t = {
  n : int;
  skew : float;
  cumulative : float array; (* cumulative.(i) = sum_{j<=i} w_j, normalised *)
}

let create ~n ~skew =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if skew < 0.0 then invalid_arg "Zipf.create: negative skew";
  let weights = Array.init n (fun i -> Float.pow (float_of_int (i + 1)) (-.skew)) in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    weights;
  let total = !acc in
  Array.iteri (fun i c -> cumulative.(i) <- c /. total) cumulative;
  { n; skew; cumulative }

let n t = t.n
let skew t = t.skew

(** Probability mass of rank [i] (0-based; rank 0 is most popular). *)
let pmf t i =
  if i < 0 || i >= t.n then invalid_arg "Zipf.pmf: rank out of range";
  if i = 0 then t.cumulative.(0) else t.cumulative.(i) -. t.cumulative.(i - 1)

(** Draw a rank in [\[0, n)]. *)
let sample t rng =
  let u = Ccache_util.Prng.float rng in
  (* least i with cumulative.(i) > u *)
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cumulative.(mid) > u then bsearch lo mid else bsearch (mid + 1) hi
  in
  bsearch 0 (t.n - 1)

(** Draw [count] ranks. *)
let sample_many t rng ~count = Array.init count (fun _ -> sample t rng)
