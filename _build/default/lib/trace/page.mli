(** Pages and their owning users.

    Every page belongs to exactly one user (the paper's [P_i]
    partition).  User ids are dense integers [0 .. n-1]; page ids are
    arbitrary non-negative integers, unique within a user. *)

type t = private { user : int; id : int }

val make : user:int -> id:int -> t
(** @raise Invalid_argument on negative components. *)

val user : t -> int
val id : t -> int

val compare : t -> t -> int
(** Orders by user, then id — the deterministic tie-break order used
    throughout the algorithms. *)

val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t option
(** Parses the ["u<user>:p<id>"] form produced by {!to_string}. *)

module Key : Hashtbl.HashedType with type t = t
module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
