(** Descriptive statistics of a trace.

    Used by experiment reports to characterise generated workloads
    (footprint, per-user request share, reuse distances) and by tests to
    sanity-check the generators (e.g. Zipf skew actually skews). *)

type per_user = {
  user : int;
  requests : int;
  distinct_pages : int;
}

type t = {
  length : int;
  n_users : int;
  distinct_pages : int;
  per_user : per_user array;
  cold_misses : int;  (** first-touch requests = compulsory misses *)
}

let compute trace =
  let n_users = Trace.n_users trace in
  let req_counts = Array.make n_users 0 in
  let page_sets = Array.init n_users (fun _ -> Page.Tbl.create 64) in
  let seen = Page.Tbl.create 256 in
  let cold = ref 0 in
  Array.iter
    (fun p ->
      let u = Page.user p in
      req_counts.(u) <- req_counts.(u) + 1;
      Page.Tbl.replace page_sets.(u) p ();
      if not (Page.Tbl.mem seen p) then begin
        Page.Tbl.add seen p ();
        incr cold
      end)
    (Trace.requests trace);
  {
    length = Trace.length trace;
    n_users;
    distinct_pages = Page.Tbl.length seen;
    per_user =
      Array.init n_users (fun u ->
          { user = u; requests = req_counts.(u); distinct_pages = Page.Tbl.length page_sets.(u) });
    cold_misses = !cold;
  }

(** Reuse distance of each non-first request: number of *distinct* pages
    referenced strictly between consecutive uses of the same page.
    Infinite-cache stack distances; the classical locality profile. *)
let reuse_distances trace =
  let idx = Trace.Index.build trace in
  let n = Trace.length trace in
  (* O(T * D) sweep with a distinct-page counter per gap would be
     quadratic; instead count distinct pages via timestamps: for each
     request at [pos] with previous use [prev], the reuse distance is
     the number of pages whose last use in (prev, pos) lies in that
     window.  We approximate with the standard "set of pages touched in
     the window" computed by a per-window hash sweep, acceptable for the
     trace sizes used in experiments. *)
  let reqs = Trace.requests trace in
  let out = ref [] in
  for pos = 0 to n - 1 do
    let prev = Trace.Index.prev_use idx pos in
    if prev >= 0 then begin
      let seen = Page.Tbl.create 16 in
      for q = prev + 1 to pos - 1 do
        Page.Tbl.replace seen reqs.(q) ()
      done;
      out := float_of_int (Page.Tbl.length seen) :: !out
    end
  done;
  Array.of_list (List.rev !out)

(** Fraction of requests that would hit in an unbounded cache
    (i.e. 1 - compulsory miss rate). *)
let max_hit_ratio t =
  if t.length = 0 then 0.0
  else float_of_int (t.length - t.cold_misses) /. float_of_int t.length

let pp ppf t =
  Fmt.pf ppf "@[<v>T=%d users=%d distinct=%d cold=%d max-hit=%.3f" t.length
    t.n_users t.distinct_pages t.cold_misses (max_hit_ratio t);
  Array.iter
    (fun u ->
      Fmt.pf ppf "@,  user %d: %d requests over %d pages" u.user u.requests
        u.distinct_pages)
    t.per_user;
  Fmt.pf ppf "@]"

let to_table t =
  let open Ccache_util.Ascii_table in
  let tbl =
    create ~title:"trace statistics"
      [ "user"; "requests"; "distinct pages"; "share" ]
  in
  Array.iter
    (fun u ->
      add_row tbl
        [
          cell_int u.user;
          cell_int u.requests;
          cell_int u.distinct_pages;
          cell_pct (float_of_int u.requests /. float_of_int (Stdlib.max 1 t.length));
        ])
    t.per_user;
  tbl
