(** Descriptive statistics of a trace: per-tenant footprints, request
    shares, compulsory misses and reuse distances.  Used by reports
    and by tests that sanity-check the generators. *)

type per_user = { user : int; requests : int; distinct_pages : int }

type t = {
  length : int;
  n_users : int;
  distinct_pages : int;
  per_user : per_user array;
  cold_misses : int;  (** first-touch requests = compulsory misses *)
}

val compute : Trace.t -> t

val reuse_distances : Trace.t -> float array
(** Per non-first request: distinct pages referenced strictly between
    consecutive uses of the same page (infinite-cache stack
    distances).  Quadratic sweep — intended for analysis-scale traces. *)

val max_hit_ratio : t -> float
(** 1 - compulsory miss rate: the best any cache could do. *)

val pp : Format.formatter -> t -> unit
val to_table : t -> Ccache_util.Ascii_table.t
