(** Pages and their owning users.

    Every page belongs to exactly one user (the paper's [P_i] partition).
    User ids are dense integers [0 .. n-1]; page ids are arbitrary
    non-negative integers, unique within a user. *)

type t = { user : int; id : int }

let make ~user ~id =
  if user < 0 then invalid_arg "Page.make: negative user";
  if id < 0 then invalid_arg "Page.make: negative id";
  { user; id }

let user t = t.user
let id t = t.id

let compare a b =
  let c = Int.compare a.user b.user in
  if c <> 0 then c else Int.compare a.id b.id

let equal a b = a.user = b.user && a.id = b.id

let hash t = (t.user * 0x9E3779B1) lxor t.id

let pp ppf t = Fmt.pf ppf "u%d:p%d" t.user t.id

let to_string t = Printf.sprintf "u%d:p%d" t.user t.id

(** Parse the [uU:pI] form produced by {!to_string}/{!pp}. *)
let of_string s =
  match String.split_on_char ':' s with
  | [ u; p ]
    when String.length u > 1 && u.[0] = 'u' && String.length p > 1 && p.[0] = 'p' ->
      (try
         let user = int_of_string (String.sub u 1 (String.length u - 1)) in
         let id = int_of_string (String.sub p 1 (String.length p - 1)) in
         Some (make ~user ~id)
       with Invalid_argument _ | Failure _ -> None)
  | _ -> None

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Tbl = Hashtbl.Make (Key)
module Set = Set.Make (Key)
module Map = Map.Make (Key)
