lib/trace/trace.ml: Array Fmt Int List Option Page Printf
