lib/trace/trace_stats.mli: Ccache_util Format Trace
