lib/trace/trace.mli: Format Page
