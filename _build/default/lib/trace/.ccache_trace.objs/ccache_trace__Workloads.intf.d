lib/trace/workloads.mli: Ccache_util Trace
