lib/trace/trace_stats.ml: Array Ccache_util Fmt List Page Stdlib Trace
