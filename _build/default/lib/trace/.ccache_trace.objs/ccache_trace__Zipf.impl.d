lib/trace/zipf.ml: Array Ccache_util Float
