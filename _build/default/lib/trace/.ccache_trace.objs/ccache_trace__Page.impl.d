lib/trace/page.ml: Fmt Hashtbl Int Map Printf Set String
