lib/trace/trace_io.ml: Array Buffer Fun List Page Printf String Trace
