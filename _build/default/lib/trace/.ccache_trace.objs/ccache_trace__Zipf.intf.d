lib/trace/zipf.mli: Ccache_util
