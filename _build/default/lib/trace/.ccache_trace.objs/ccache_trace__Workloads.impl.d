lib/trace/workloads.ml: Array Ccache_util List Page Stdlib Trace Zipf
