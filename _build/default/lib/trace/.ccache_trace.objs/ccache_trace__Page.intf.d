lib/trace/page.mli: Format Hashtbl Map Set
