(** Request sequences and their static index.

    A trace is the online input sigma = (p_1, ..., p_T).  Besides the raw
    sequence, the convex program and the offline algorithms need the
    bookkeeping the paper defines in Section 2:

    - [r(p,t)]     — number of requests of page p up to time t,
    - [j(p,t)]     — interval index of p at time t,
    - [B(t)]       — set of distinct pages requested up to time t,
    - next/previous use positions (for Belady-style policies).

    [Index.build] precomputes all of these in O(T) once per trace.
    Positions are 0-based throughout the code base; the paper's t runs
    from 1, so position [t-1] here corresponds to the paper's time t. *)

type t = {
  requests : Page.t array;
  n_users : int;
}

let length t = Array.length t.requests
let n_users t = t.n_users
let request t pos = t.requests.(pos)
let requests t = t.requests

let of_pages ~n_users pages =
  if n_users <= 0 then invalid_arg "Trace.of_pages: need at least one user";
  Array.iter
    (fun p ->
      if Page.user p < 0 || Page.user p >= n_users then
        invalid_arg
          (Printf.sprintf "Trace.of_pages: page %s outside user range [0,%d)"
             (Page.to_string p) n_users))
    pages;
  { requests = Array.copy pages; n_users }

let of_list ~n_users pages = of_pages ~n_users (Array.of_list pages)

(** Concatenate traces over the same user universe. *)
let append a b =
  if a.n_users <> b.n_users then invalid_arg "Trace.append: user-count mismatch";
  { requests = Array.append a.requests b.requests; n_users = a.n_users }

(** Distinct pages, in first-touch order. *)
let distinct_pages t =
  let seen = Page.Tbl.create 256 in
  let acc = ref [] in
  Array.iter
    (fun p ->
      if not (Page.Tbl.mem seen p) then begin
        Page.Tbl.add seen p ();
        acc := p :: !acc
      end)
    t.requests;
  List.rev !acc

(** Append the paper's terminal flush: a dummy user owning [k] fresh
    pages, all requested once at the end, forcing every real page out of
    a size-k cache.  The dummy user gets id [n_users] (so the result has
    [n_users + 1] users); its cost function should be zero. *)
let with_flush ~k t =
  if k <= 0 then invalid_arg "Trace.with_flush: k must be positive";
  let dummy = Array.init k (fun i -> Page.make ~user:t.n_users ~id:i) in
  { requests = Array.append t.requests dummy; n_users = t.n_users + 1 }

module Index = struct
  type trace = t

  type t = {
    trace : trace;
    interval : int array;
        (** [interval.(pos)] = j(p,pos): 1-based index of this request
            among all requests of the same page. *)
    next_use : int array;
        (** position of the next request of the same page, or
            [Int.max_int] if none. *)
    prev_use : int array;
        (** position of the previous request of the same page, or [-1]. *)
    distinct_upto : int array;
        (** [distinct_upto.(pos)] = |B(t)| after including this request. *)
    total_requests : int Page.Tbl.t;  (** r(p,T) per page *)
    first_use : int Page.Tbl.t;  (** first position of each page *)
  }

  let build trace =
    let n = Array.length trace.requests in
    let interval = Array.make n 0 in
    let next_use = Array.make n Int.max_int in
    let prev_use = Array.make n (-1) in
    let distinct_upto = Array.make n 0 in
    let counts = Page.Tbl.create 256 in
    let last_pos = Page.Tbl.create 256 in
    let first_use = Page.Tbl.create 256 in
    let distinct = ref 0 in
    for pos = 0 to n - 1 do
      let p = trace.requests.(pos) in
      let c = Option.value (Page.Tbl.find_opt counts p) ~default:0 in
      Page.Tbl.replace counts p (c + 1);
      interval.(pos) <- c + 1;
      (match Page.Tbl.find_opt last_pos p with
      | Some prev ->
          next_use.(prev) <- pos;
          prev_use.(pos) <- prev
      | None ->
          incr distinct;
          Page.Tbl.add first_use p pos);
      Page.Tbl.replace last_pos p pos;
      distinct_upto.(pos) <- !distinct
    done;
    { trace; interval; next_use; prev_use; distinct_upto; total_requests = counts; first_use }

    let trace t = t.trace
    let length t = Array.length t.trace.requests

    (** j(p, pos): which interval of page p the position falls in. *)
    let interval_index t pos = t.interval.(pos)

    let next_use t pos = t.next_use.(pos)
    let prev_use t pos = t.prev_use.(pos)
    let distinct_upto t pos = t.distinct_upto.(pos)

    (** r(p, T): total number of requests of [page] in the whole trace. *)
    let total_requests t page =
      Option.value (Page.Tbl.find_opt t.total_requests page) ~default:0

    let first_use t page = Page.Tbl.find_opt t.first_use page

    (** Is [pos] the last request of its page? *)
    let is_last_request t pos = t.next_use.(pos) = Int.max_int
end

let pp ppf t =
  Fmt.pf ppf "@[<v>trace: T=%d users=%d distinct=%d@]" (length t) t.n_users
    (List.length (distinct_pages t))
