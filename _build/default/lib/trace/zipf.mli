(** Zipf-distributed sampling over [\[0, n)].

    Inverse-CDF over precomputed cumulative weights: O(n) setup,
    O(log n) exact sampling.  Skew 0 degenerates to uniform. *)

type t

val create : n:int -> skew:float -> t
(** @raise Invalid_argument if [n <= 0] or [skew < 0]. *)

val n : t -> int
val skew : t -> float

val pmf : t -> int -> float
(** Probability of rank [i] (rank 0 is most popular). *)

val sample : t -> Ccache_util.Prng.t -> int
val sample_many : t -> Ccache_util.Prng.t -> count:int -> int array
