(** Catalogue of baseline policies, used by the CLI and experiments. *)

val online : Ccache_sim.Policy.t list
(** Online baselines (cost-blind, or cost-aware without the paper's
    coupling). *)

val offline : Ccache_sim.Policy.t list
(** Offline references (require the full trace). *)

val all : Ccache_sim.Policy.t list
val find : string -> Ccache_sim.Policy.t option
val names : string list
