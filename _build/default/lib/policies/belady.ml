(** Belady's MIN (offline): evict the cached page whose next request is
    furthest in the future.

    Optimal for miss *count* with a single user / uniform costs; used as
    the classical offline reference.  Requires the trace index
    ([Policy.needs_future]).

    Each cached page's next-use position is known at its last access
    (that is exactly what [Trace.Index.next_use] stores), so a heap
    keyed by negated next-use gives the furthest page in O(log k). *)

module Policy = Ccache_sim.Policy

open Ccache_trace
module Heap = Ccache_util.Indexed_heap

let policy =
  Policy.make ~needs_future:true ~name:"belady" (fun config ->
      let index =
        match config.Policy.Config.index with
        | Some i -> i
        | None -> assert false (* guarded by needs_future *)
      in
      let interner = Interner.create () in
      let heap = Heap.create () in
      let touch ~pos page =
        let key = Interner.intern interner page in
        let next = Trace.Index.next_use index pos in
        let prio = if next = Int.max_int then Float.neg_infinity else -.float_of_int next in
        Heap.set heap ~key ~prio
      in
      {
        Policy.on_hit = (fun ~pos page -> touch ~pos page);
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming:_ ->
            let key, _ = Heap.peek_exn heap in
            Interner.page interner key);
        on_insert = (fun ~pos page -> touch ~pos page);
        on_evict =
          (fun ~pos:_ page -> Heap.remove heap (Interner.intern interner page));
      })
