(** Least Recently Used.

    The classical k-competitive policy (Sleator & Tarjan).  Cost-blind:
    ignores both users and cost functions.  O(1) per event via an
    intrusive recency list. *)

module Policy = Ccache_sim.Policy

open Ccache_trace
module Dlist = Ccache_util.Dlist

let policy =
  Policy.make ~name:"lru" (fun _config ->
      let recency = Dlist.create () in
      let nodes : Page.t Dlist.node Page.Tbl.t = Page.Tbl.create 256 in
      let node_of page =
        match Page.Tbl.find_opt nodes page with
        | Some n -> n
        | None -> invalid_arg ("lru: untracked page " ^ Page.to_string page)
      in
      {
        Policy.on_hit = (fun ~pos:_ page -> Dlist.move_to_front recency (node_of page));
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming:_ ->
            match Dlist.back recency with
            | Some n -> Dlist.value n
            | None -> invalid_arg "lru: choose_victim on empty cache");
        on_insert =
          (fun ~pos:_ page ->
            let n = Dlist.node page in
            Page.Tbl.replace nodes page n;
            Dlist.push_front recency n);
        on_evict =
          (fun ~pos:_ page ->
            Dlist.remove recency (node_of page);
            Page.Tbl.remove nodes page);
      })
