(** LRU-K (O'Neil, O'Neil & Weikum): evict the page whose K-th most
    recent reference is oldest; short-history pages go first.
    Reference history is retained across evictions. *)

val make : k_refs:int -> Ccache_sim.Policy.t
(** @raise Invalid_argument if [k_refs < 1]. *)

val lru_2 : Ccache_sim.Policy.t
val lru_3 : Ccache_sim.Policy.t
