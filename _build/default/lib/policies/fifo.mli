(** First In First Out: evict the page resident longest, ignoring
    hits. *)

val policy : Ccache_sim.Policy.t
