(** Least Frequently Used (in-cache frequency, reset on eviction);
    deterministic ties by first-touch order. *)

val policy : Ccache_sim.Policy.t
