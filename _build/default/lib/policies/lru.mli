(** Least Recently Used — the classical k-competitive policy
    (Sleator & Tarjan).  Cost-blind; O(1) per event. *)

val policy : Ccache_sim.Policy.t
