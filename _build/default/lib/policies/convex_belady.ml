(** Cost-aware offline heuristic ("convex Belady").

    Victim: the cached page minimising
    [marginal_cost(user) / (next_use - pos)] — prefer evicting pages
    that are cheap for their owner *and* not needed for a long time.
    Pages never requested again have infinite distance and are evicted
    first (cheapest owner first).

    Not optimal (no offline polynomial algorithm is known for the
    convex objective), but a strong upper bound on OPT used by
    {!Ccache_offline.Best_of}. *)

module Policy = Ccache_sim.Policy

open Ccache_trace
module Heap = Ccache_util.Indexed_heap
module Cf = Ccache_cost.Cost_function

let policy =
  Policy.make ~needs_future:true ~name:"convex-belady" (fun config ->
      let index =
        match config.Policy.Config.index with
        | Some i -> i
        | None -> assert false
      in
      let interner = Interner.create () in
      let heap = Heap.create () in
      let n_users = config.Policy.Config.n_users in
      let evictions = Array.make (n_users + 1) 0 in
      (* next-use position per cached page, kept to recompute scores
         when a user's marginal cost changes *)
      let next_use_of : (int, int) Hashtbl.t = Hashtbl.create 256 in
      let marginal user =
        let f = Policy.Config.cost config user in
        let m = evictions.(Stdlib.min user n_users) in
        Cf.eval f (float_of_int (m + 1)) -. Cf.eval f (float_of_int m)
      in
      let score ~pos ~next page =
        if next = Int.max_int then
          (* dead page: order by marginal so cheap owners go first, and
             keep all dead pages below any live page *)
          -.1e18 +. marginal (Page.user page)
        else
          let dist = float_of_int (next - pos) in
          marginal (Page.user page) /. Float.max 1.0 dist
      in
      let touch ~pos page =
        let key = Interner.intern interner page in
        let next = Trace.Index.next_use index pos in
        Hashtbl.replace next_use_of key next;
        Heap.set heap ~key ~prio:(score ~pos ~next page)
      in
      (* After a user's eviction count changes, marginals of its other
         cached pages change; refresh them (O(cached-of-user log k),
         acceptable for an offline reference). *)
      let refresh_user ~pos user =
        Hashtbl.iter
          (fun key next ->
            let page = Interner.page interner key in
            if Page.user page = user && Heap.mem heap key then
              Heap.update heap ~key ~prio:(score ~pos ~next page))
          next_use_of
      in
      {
        Policy.on_hit = (fun ~pos page -> touch ~pos page);
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming:_ ->
            let key, _ = Heap.peek_exn heap in
            Interner.page interner key);
        on_insert = (fun ~pos page -> touch ~pos page);
        on_evict =
          (fun ~pos page ->
            let u = Page.user page in
            let slot = Stdlib.min u n_users in
            evictions.(slot) <- evictions.(slot) + 1;
            let key = Interner.intern interner page in
            Heap.remove heap key;
            Hashtbl.remove next_use_of key;
            refresh_user ~pos u);
      })
