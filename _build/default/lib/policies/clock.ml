(** CLOCK (second-chance FIFO).

    Pages sit on a circular list with a reference bit; the hand sweeps
    from the oldest entry, clearing set bits and evicting the first
    page whose bit is already clear.  Approximates LRU at O(1) hit
    cost — the classical VM page-replacement algorithm. *)

module Policy = Ccache_sim.Policy
open Ccache_trace
module Dlist = Ccache_util.Dlist

type entry = { page : Page.t; mutable referenced : bool }

let policy =
  Policy.make ~name:"clock" (fun _config ->
      (* the Dlist front is the hand position: entries cycle from front
         (oldest / next to examine) to back (most recently passed) *)
      let ring = Dlist.create () in
      let nodes : entry Dlist.node Page.Tbl.t = Page.Tbl.create 256 in
      {
        Policy.on_hit =
          (fun ~pos:_ page ->
            match Page.Tbl.find_opt nodes page with
            | Some n -> (Dlist.value n).referenced <- true
            | None -> invalid_arg ("clock: untracked page " ^ Page.to_string page));
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming:_ ->
            (* sweep: clear bits and rotate until an unreferenced entry
               surfaces.  Terminates within two laps. *)
            let rec sweep () =
              match Dlist.front ring with
              | None -> invalid_arg "clock: choose_victim on empty cache"
              | Some n ->
                  let e = Dlist.value n in
                  if e.referenced then begin
                    e.referenced <- false;
                    Dlist.move_to_back ring n;
                    sweep ()
                  end
                  else e.page
            in
            sweep ());
        on_insert =
          (fun ~pos:_ page ->
            let n = Dlist.node { page; referenced = false } in
            Page.Tbl.replace nodes page n;
            Dlist.push_back ring n);
        on_evict =
          (fun ~pos:_ page ->
            match Page.Tbl.find_opt nodes page with
            | Some n ->
                Dlist.remove ring n;
                Page.Tbl.remove nodes page
            | None -> invalid_arg ("clock: untracked page " ^ Page.to_string page));
      })
