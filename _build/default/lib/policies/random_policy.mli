(** Uniform-random eviction, deterministically seeded from
    [Policy.Config.rng_seed]. *)

val policy : Ccache_sim.Policy.t
