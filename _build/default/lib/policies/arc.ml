(** ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST'03).

    Four lists: resident [T1] (recency: seen once recently) and [T2]
    (frequency: seen at least twice), plus ghost histories [B1]/[B2]
    of pages recently evicted from T1/T2.  A tunable target [p] splits
    the cache between T1 and T2; ghost hits move it — a B1 hit says
    "recency is winning, grow p", a B2 hit the opposite — which is the
    self-tuning that made ARC famous.

    Adaptation to the engine contract: placement decisions happen in
    [on_insert] (ghost membership decides T1 vs T2 and adapts p);
    victims follow the REPLACE procedure (evict T1's LRU when
    |T1| > p, else T2's LRU).  Ghost lists are capped so that
    |T1|+|B1| <= k and the four lists total <= 2k, as in the paper. *)

module Policy = Ccache_sim.Policy
open Ccache_trace
module Dlist = Ccache_util.Dlist

type list_id = T1 | T2 | B1 | B2

let policy =
  Policy.make ~name:"arc" (fun config ->
      let k = config.Policy.Config.k in
      let t1 = Dlist.create () and t2 = Dlist.create () in
      let b1 = Dlist.create () and b2 = Dlist.create () in
      let lists = function T1 -> t1 | T2 -> t2 | B1 -> b1 | B2 -> b2 in
      let where : list_id Page.Tbl.t = Page.Tbl.create 256 in
      let nodes : Page.t Dlist.node Page.Tbl.t = Page.Tbl.create 256 in
      let p = ref 0.0 (* target size of T1, in [0, k] *) in
      let detach page =
        match (Page.Tbl.find_opt where page, Page.Tbl.find_opt nodes page) with
        | Some l, Some n ->
            Dlist.remove (lists l) n;
            Page.Tbl.remove where page;
            Page.Tbl.remove nodes page;
            Some l
        | _ -> None
      in
      let attach_front page l =
        let n = Dlist.node page in
        Page.Tbl.replace nodes page n;
        Page.Tbl.replace where page l;
        Dlist.push_front (lists l) n
      in
      (* drop a ghost from the LRU end of B1 or B2 *)
      let trim_ghost l =
        match Dlist.pop_back (lists l) with
        | Some n ->
            let page = Dlist.value n in
            Page.Tbl.remove where page;
            Page.Tbl.remove nodes page
        | None -> ()
      in
      {
        Policy.on_hit =
          (fun ~pos:_ page ->
            (* resident hit: promote to T2 MRU *)
            ignore (detach page);
            attach_front page T2);
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming ->
            (* REPLACE: prefer T1 when it exceeds the target p (with the
               paper's tie nudge toward T1 if the incoming page is a B2
               ghost), else T2 *)
            let incoming_in_b2 = Page.Tbl.find_opt where incoming = Some B2 in
            let t1_len = float_of_int (Dlist.length t1) in
            let from_t1 =
              (not (Dlist.is_empty t1))
              && (t1_len > !p || (incoming_in_b2 && t1_len = !p) || Dlist.is_empty t2)
            in
            let queue = if from_t1 then t1 else t2 in
            match Dlist.back queue with
            | Some n -> Dlist.value n
            | None -> invalid_arg "arc: choose_victim on empty cache");
        on_insert =
          (fun ~pos:_ page ->
            (match Page.Tbl.find_opt where page with
            | Some B1 ->
                (* recency ghost hit: grow p by max(1, |B2|/|B1|) *)
                let d =
                  Float.max 1.0
                    (float_of_int (Dlist.length b2)
                    /. float_of_int (Stdlib.max 1 (Dlist.length b1)))
                in
                p := Float.min (float_of_int k) (!p +. d);
                ignore (detach page);
                attach_front page T2
            | Some B2 ->
                (* frequency ghost hit: shrink p *)
                let d =
                  Float.max 1.0
                    (float_of_int (Dlist.length b1)
                    /. float_of_int (Stdlib.max 1 (Dlist.length b2)))
                in
                p := Float.max 0.0 (!p -. d);
                ignore (detach page);
                attach_front page T2
            | Some (T1 | T2) ->
                invalid_arg ("arc: inserting resident page " ^ Page.to_string page)
            | None ->
                (* brand new page goes to T1; keep |T1|+|B1| <= k and
                   the directory total <= 2k, as in the paper's Case IV *)
                if Dlist.length t1 + Dlist.length b1 >= k then trim_ghost B1
                else if
                  Dlist.length t1 + Dlist.length t2 + Dlist.length b1
                  + Dlist.length b2
                  >= 2 * k
                then trim_ghost B2;
                attach_front page T1));
        on_evict =
          (fun ~pos:_ page ->
            (* resident page leaves the cache: its identity becomes a
               ghost in the matching history list *)
            match detach page with
            | Some T1 -> attach_front page B1
            | Some T2 -> attach_front page B2
            | Some (B1 | B2) | None ->
                invalid_arg ("arc: evicting non-resident " ^ Page.to_string page));
      })
