(** 2Q (Johnson & Shasha, VLDB'94), full version.

    Three structures: [A1in], a FIFO of recently admitted pages;
    [A1out], a ghost FIFO of page identities recently expelled from
    A1in (it holds no cache space); [Am], an LRU of established hot
    pages.  A miss whose page is remembered in A1out goes straight to
    Am (a second touch within the window proves reuse); other misses
    enter A1in.  Victims come from A1in while it exceeds its quota
    (defaults: Kin = k/4, Kout = k/2), else from Am's LRU end.

    Filters out one-touch scan traffic that floods plain LRU. *)

module Policy = Ccache_sim.Policy
open Ccache_trace
module Dlist = Ccache_util.Dlist

let make ?(kin_fraction = 0.25) ?(kout_fraction = 0.5) () =
  if kin_fraction <= 0.0 || kin_fraction >= 1.0 then
    invalid_arg "Two_q.make: kin_fraction in (0,1)";
  if kout_fraction <= 0.0 then invalid_arg "Two_q.make: kout_fraction > 0";
  Policy.make ~name:"2q" (fun config ->
      let k = config.Policy.Config.k in
      let kin = Stdlib.max 1 (int_of_float (kin_fraction *. float_of_int k)) in
      let kout = Stdlib.max 1 (int_of_float (kout_fraction *. float_of_int k)) in
      let a1in = Dlist.create () in
      let am = Dlist.create () in
      (* which resident queue a page is in, and its node *)
      let where : [ `A1in | `Am ] Page.Tbl.t = Page.Tbl.create 256 in
      let nodes : Page.t Dlist.node Page.Tbl.t = Page.Tbl.create 256 in
      (* ghost FIFO: identities only *)
      let a1out = Dlist.create () in
      let ghosts : Page.t Dlist.node Page.Tbl.t = Page.Tbl.create 256 in
      let remember_ghost page =
        if not (Page.Tbl.mem ghosts page) then begin
          let n = Dlist.node page in
          Page.Tbl.replace ghosts page n;
          Dlist.push_front a1out n;
          if Dlist.length a1out > kout then
            match Dlist.pop_back a1out with
            | Some old -> Page.Tbl.remove ghosts (Dlist.value old)
            | None -> ()
        end
      in
      let node_of page =
        match Page.Tbl.find_opt nodes page with
        | Some n -> n
        | None -> invalid_arg ("2q: untracked page " ^ Page.to_string page)
      in
      {
        Policy.on_hit =
          (fun ~pos:_ page ->
            match Page.Tbl.find_opt where page with
            | Some `Am -> Dlist.move_to_front am (node_of page)
            | Some `A1in ->
                (* original 2Q: a hit in A1in does nothing (the queue
                   is young by construction) *)
                ()
            | None -> invalid_arg ("2q: hit on untracked " ^ Page.to_string page));
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming:_ ->
            let from_a1in = Dlist.length a1in >= kin && not (Dlist.is_empty a1in) in
            let queue = if from_a1in || Dlist.is_empty am then a1in else am in
            match Dlist.back queue with
            | Some n -> Dlist.value n
            | None -> invalid_arg "2q: choose_victim on empty cache");
        on_insert =
          (fun ~pos:_ page ->
            let hot = Page.Tbl.mem ghosts page in
            if hot then begin
              (* promoted: drop the ghost, go to Am *)
              (match Page.Tbl.find_opt ghosts page with
              | Some g ->
                  Dlist.remove a1out g;
                  Page.Tbl.remove ghosts page
              | None -> ());
              let n = Dlist.node page in
              Page.Tbl.replace nodes page n;
              Page.Tbl.replace where page `Am;
              Dlist.push_front am n
            end
            else begin
              let n = Dlist.node page in
              Page.Tbl.replace nodes page n;
              Page.Tbl.replace where page `A1in;
              Dlist.push_front a1in n
            end);
        on_evict =
          (fun ~pos:_ page ->
            let n = node_of page in
            (match Page.Tbl.find_opt where page with
            | Some `A1in ->
                Dlist.remove a1in n;
                (* expelled from A1in: remember the identity *)
                remember_ghost page
            | Some `Am -> Dlist.remove am n
            | None -> invalid_arg ("2q: evicting untracked " ^ Page.to_string page));
            Page.Tbl.remove nodes page;
            Page.Tbl.remove where page);
      })

let policy = make ()
