(** Landlord / GreedyDual (Young) — the deterministic weighted-caching
    baseline: credits refreshed on access, uniformly drained on
    eviction (O(log k) via a global offset).  Cost-aware but without
    ALG-DISCRETE's same-owner coupling. *)

type weight_mode =
  | Static  (** weight = f_i(1), the user's first-miss cost *)
  | Adaptive  (** weight = the user's current marginal cost *)

val mode_name : weight_mode -> string
val make : mode:weight_mode -> Ccache_sim.Policy.t
val static : Ccache_sim.Policy.t
val adaptive : Ccache_sim.Policy.t
