(** 2Q (Johnson & Shasha, VLDB'94), full version: A1in FIFO for new
    pages, A1out ghost FIFO of expelled identities, Am LRU for proven
    reusers.  Scan-resistant. *)

val make : ?kin_fraction:float -> ?kout_fraction:float -> unit -> Ccache_sim.Policy.t
(** Queue quotas as fractions of k (defaults 0.25 and 0.5).
    @raise Invalid_argument outside (0,1) / nonpositive. *)

val policy : Ccache_sim.Policy.t
