(** Cost-aware offline heuristic: evict the page minimising
    [owner's marginal cost / distance to next use].  Not optimal (no
    polynomial offline algorithm is known for the convex objective)
    but a strong OPT upper bound; requires the trace index. *)

val policy : Ccache_sim.Policy.t
