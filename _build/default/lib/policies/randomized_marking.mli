(** Randomized marking (Fiat et al.): uniformly random unmarked
    victim; the classical O(log k)-competitive randomized paging
    algorithm, seeded from [Policy.Config.rng_seed]. *)

val policy : Ccache_sim.Policy.t
