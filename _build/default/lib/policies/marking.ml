(** Deterministic marking algorithm.

    Pages are marked on access; victims are chosen among unmarked pages
    (FIFO order within the unmarked set, making the policy
    deterministic).  When every cached page is marked, a new phase
    begins: all marks are cleared.  k-competitive, and the phase
    structure makes it a useful structural contrast to LRU in the
    experiments. *)

module Policy = Ccache_sim.Policy

open Ccache_trace
module Dlist = Ccache_util.Dlist

let policy =
  Policy.make ~name:"marking" (fun _config ->
      (* unmarked pages in FIFO order; marked pages tracked in a set *)
      let unmarked = Dlist.create () in
      let nodes : Page.t Dlist.node Page.Tbl.t = Page.Tbl.create 256 in
      let marked : unit Page.Tbl.t = Page.Tbl.create 256 in
      let mark page =
        (match Page.Tbl.find_opt nodes page with
        | Some n ->
            Dlist.remove unmarked n;
            Page.Tbl.remove nodes page
        | None -> ());
        Page.Tbl.replace marked page ()
      in
      let new_phase () =
        (* all marks drop; marked pages become unmarked in deterministic
           (sorted) order so phase boundaries do not depend on hash order *)
        let pages = Page.Tbl.fold (fun p () acc -> p :: acc) marked [] in
        Page.Tbl.reset marked;
        List.iter
          (fun p ->
            let n = Dlist.node p in
            Page.Tbl.replace nodes p n;
            Dlist.push_back unmarked n)
          (List.sort Page.compare pages)
      in
      {
        Policy.on_hit = (fun ~pos:_ page -> mark page);
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming:_ ->
            if Dlist.is_empty unmarked then new_phase ();
            match Dlist.front unmarked with
            | Some n -> Dlist.value n
            | None -> invalid_arg "marking: choose_victim on empty cache");
        on_insert = (fun ~pos:_ page -> mark page);
        on_evict =
          (fun ~pos:_ page ->
            match Page.Tbl.find_opt nodes page with
            | Some n ->
                Dlist.remove unmarked n;
                Page.Tbl.remove nodes page
            | None -> Page.Tbl.remove marked page);
      })
