(** Uniform-random eviction (deterministically seeded).

    The seed comes from [Config.rng_seed], so runs are reproducible.
    Maintains a dense array of cached pages with O(1) swap-removal. *)

module Policy = Ccache_sim.Policy

open Ccache_trace
module Prng = Ccache_util.Prng

let policy =
  Policy.make ~name:"random" (fun config ->
      let rng = Prng.create ~seed:config.Policy.Config.rng_seed in
      let slots : (Page.t, int) Hashtbl.t = Hashtbl.create 256 in
      let pages = ref (Array.make 16 (Page.make ~user:0 ~id:0)) in
      let count = ref 0 in
      let push page =
        if !count = Array.length !pages then begin
          let bigger = Array.make (2 * !count) page in
          Array.blit !pages 0 bigger 0 !count;
          pages := bigger
        end;
        !pages.(!count) <- page;
        Hashtbl.replace slots page !count;
        incr count
      in
      let remove page =
        match Hashtbl.find_opt slots page with
        | None -> invalid_arg ("random: untracked page " ^ Page.to_string page)
        | Some i ->
            let last = !count - 1 in
            if i <> last then begin
              let moved = !pages.(last) in
              !pages.(i) <- moved;
              Hashtbl.replace slots moved i
            end;
            Hashtbl.remove slots page;
            count := last
      in
      {
        Policy.on_hit = Policy.no_hit;
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming:_ ->
            if !count = 0 then invalid_arg "random: choose_victim on empty cache";
            !pages.(Prng.int rng !count));
        on_insert = (fun ~pos:_ page -> push page);
        on_evict = (fun ~pos:_ page -> remove page);
      })
