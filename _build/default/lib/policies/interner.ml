(** Page <-> dense-int interner.

    {!Ccache_util.Indexed_heap} keys are ints; policies that keep pages
    in a heap intern them once and reuse the dense id for the page's
    lifetime (ids are never recycled — traces touch bounded page sets). *)

open Ccache_trace

type t = {
  ids : int Page.Tbl.t;
  mutable pages : Page.t array;
  mutable count : int;
}

let create () = { ids = Page.Tbl.create 256; pages = Array.make 16 (Page.make ~user:0 ~id:0); count = 0 }

let intern t page =
  match Page.Tbl.find_opt t.ids page with
  | Some id -> id
  | None ->
      let id = t.count in
      if id = Array.length t.pages then begin
        let bigger = Array.make (2 * id) t.pages.(0) in
        Array.blit t.pages 0 bigger 0 id;
        t.pages <- bigger
      end;
      t.pages.(id) <- page;
      Page.Tbl.add t.ids page id;
      t.count <- t.count + 1;
      id

let page t id =
  if id < 0 || id >= t.count then invalid_arg "Interner.page: unknown id";
  t.pages.(id)

let find_opt t page = Page.Tbl.find_opt t.ids page
let size t = t.count
