(** Belady's MIN (offline): evict the page whose next request is
    furthest in the future.  Optimal for miss count with uniform
    costs; requires the trace index. *)

val policy : Ccache_sim.Policy.t
