(** Landlord / GreedyDual (Young), the deterministic weighted-caching
    baseline.

    Each cached page holds a credit, set on insertion (and refreshed on
    hits) to the page's weight.  To evict, decrease every credit by the
    minimum credit delta and evict a zero-credit page.  With weight
    [w_i] per user this is k-competitive for weighted caching — the
    linear special case of the paper's model.

    The uniform credit decrease is implemented with a global offset
    [level]: stored priority = credit-at-set + level-at-set, current
    credit = priority - level, so eviction is O(log k).

    Two weight modes make it a cost-aware-but-uncoupled baseline for
    the experiments (it lacks ALG-DISCRETE's same-user budget bump):

    - [Static]: weight = f_i(1), the cost of the user's first miss;
    - [Adaptive]: weight = marginal cost f_i(m_i+1) - f_i(m_i) at the
      user's current eviction count. *)

module Policy = Ccache_sim.Policy

open Ccache_trace
module Heap = Ccache_util.Indexed_heap
module Cf = Ccache_cost.Cost_function

type weight_mode = Static | Adaptive

let mode_name = function Static -> "static" | Adaptive -> "adaptive"

let make ~mode =
  Policy.make
    ~name:(Printf.sprintf "landlord-%s" (mode_name mode))
    (fun config ->
      let interner = Interner.create () in
      let heap = Heap.create () in
      let level = ref 0.0 in
      let evictions = Array.make (config.Policy.Config.n_users + 1) 0 in
      let weight page =
        let u = Page.user page in
        let f = Policy.Config.cost config u in
        match mode with
        | Static -> Cf.eval f 1.0
        | Adaptive ->
            let m = evictions.(Stdlib.min u config.Policy.Config.n_users) in
            Cf.eval f (float_of_int (m + 1)) -. Cf.eval f (float_of_int m)
      in
      let set_credit page =
        let key = Interner.intern interner page in
        Heap.set heap ~key ~prio:(weight page +. !level)
      in
      {
        Policy.on_hit = (fun ~pos:_ page -> set_credit page);
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming:_ ->
            let key, prio = Heap.peek_exn heap in
            (* all credits drop by the victim's remaining credit *)
            level := prio;
            Interner.page interner key);
        on_insert = (fun ~pos:_ page -> set_credit page);
        on_evict =
          (fun ~pos:_ page ->
            let u = Page.user page in
            let slot = Stdlib.min u config.Policy.Config.n_users in
            evictions.(slot) <- evictions.(slot) + 1;
            Heap.remove heap (Interner.intern interner page));
      })

let static = make ~mode:Static
let adaptive = make ~mode:Adaptive
