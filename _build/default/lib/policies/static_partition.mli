(** Static memory partitioning: fixed per-tenant slices with LRU
    inside — the "inherently wasteful" strawman of the paper's
    introduction.  Uses the engine's early-eviction hook because a
    slice can fill before the shared cache does. *)

val slice_sizes : k:int -> n_users:int -> weights:float array option -> int array
(** Proportional-with-floor allocation; every tenant gets >= 1 slot
    when [k >= n_users].  Exposed for tests. *)

val make : ?weights:float array -> unit -> Ccache_sim.Policy.t
val equal_split : Ccache_sim.Policy.t
