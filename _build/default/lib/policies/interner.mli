(** Page <-> dense-int interner for policies that keep pages in an
    {!Ccache_util.Indexed_heap} (whose keys are ints).  Ids are
    assigned in first-touch order and never recycled. *)

type t

val create : unit -> t
val intern : t -> Ccache_trace.Page.t -> int
val page : t -> int -> Ccache_trace.Page.t
(** @raise Invalid_argument on an unknown id. *)

val find_opt : t -> Ccache_trace.Page.t -> int option
val size : t -> int
