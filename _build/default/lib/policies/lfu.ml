(** Least Frequently Used (in-cache frequency, reset on eviction).

    Victim: the cached page with the fewest hits since insertion, ties
    broken deterministically by interner id (i.e. first-touch order). *)

module Policy = Ccache_sim.Policy


module Heap = Ccache_util.Indexed_heap

let policy =
  Policy.make ~name:"lfu" (fun _config ->
      let interner = Interner.create () in
      let heap = Heap.create () in
      let freq : (int, int) Hashtbl.t = Hashtbl.create 256 in
      {
        Policy.on_hit =
          (fun ~pos:_ page ->
            let key = Interner.intern interner page in
            let f = Option.value (Hashtbl.find_opt freq key) ~default:0 + 1 in
            Hashtbl.replace freq key f;
            Heap.update heap ~key ~prio:(float_of_int f));
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming:_ ->
            let key, _ = Heap.peek_exn heap in
            Interner.page interner key);
        on_insert =
          (fun ~pos:_ page ->
            let key = Interner.intern interner page in
            Hashtbl.replace freq key 1;
            Heap.add heap ~key ~prio:1.0);
        on_evict =
          (fun ~pos:_ page ->
            let key = Interner.intern interner page in
            Hashtbl.remove freq key;
            Heap.remove heap key);
      })
