(** Static memory partitioning: each tenant owns a fixed slice of the
    cache, managed by LRU internally.

    This is the strawman of the paper's introduction ("static memory
    allocations are inherently wasteful"): capacity reserved for an
    idle tenant cannot be used by a busy one.  A tenant whose slice is
    full evicts its own LRU page even when other slices have free
    space, which is why this policy needs the engine's early-eviction
    hook.

    Slice sizes: proportional to [weights] (default: equal), floored,
    with leftover slots handed out round-robin from user 0.  Every
    tenant gets at least one slot when k >= n_users. *)

module Policy = Ccache_sim.Policy

open Ccache_trace
module Dlist = Ccache_util.Dlist

let slice_sizes ~k ~n_users ~weights =
  let weights =
    match weights with
    | Some w ->
        if Array.length w <> n_users then
          invalid_arg "Static_partition: weights/users mismatch";
        Array.iter
          (fun x -> if x <= 0.0 then invalid_arg "Static_partition: nonpositive weight")
          w;
        w
    | None -> Array.make n_users 1.0
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let sizes =
    Array.map (fun w -> int_of_float (float_of_int k *. w /. total)) weights
  in
  (* guarantee a slot per tenant where possible *)
  if k >= n_users then
    Array.iteri (fun i s -> if s = 0 then sizes.(i) <- 1) sizes;
  let used = Array.fold_left ( + ) 0 sizes in
  let leftover = ref (k - used) in
  (* steal back if the minimum-guarantee overshot *)
  let i = ref 0 in
  while !leftover < 0 do
    if sizes.(!i mod n_users) > 1 then begin
      sizes.(!i mod n_users) <- sizes.(!i mod n_users) - 1;
      incr leftover
    end;
    incr i
  done;
  let j = ref 0 in
  while !leftover > 0 do
    sizes.(!j mod n_users) <- sizes.(!j mod n_users) + 1;
    decr leftover;
    incr j
  done;
  sizes

let make ?weights () =
  Policy.make ~name:"static-partition" (fun config ->
      let n_users = config.Policy.Config.n_users in
      let k = config.Policy.Config.k in
      let sizes = slice_sizes ~k ~n_users ~weights in
      (* per-user LRU lists; the flush dummy user (id = n_users) shares
         a zero-quota slice handled by falling back to global LRU order *)
      let slices = Array.init (n_users + 1) (fun _ -> Dlist.create ()) in
      let occupancy = Array.make (n_users + 1) 0 in
      let nodes : Page.t Dlist.node Page.Tbl.t = Page.Tbl.create 256 in
      let slice_of page = Stdlib.min (Page.user page) n_users in
      (* the flush dummy user gets quota k so its requests displace real
         pages (via the over-quota branch) instead of each other *)
      let quota u = if u >= n_users then k else sizes.(u) in
      let node_of page =
        match Page.Tbl.find_opt nodes page with
        | Some n -> n
        | None -> invalid_arg ("static-partition: untracked " ^ Page.to_string page)
      in
      (* victim for an incoming page of user u: u's own LRU page if u's
         slice is at quota; otherwise (u under quota but cache full,
         possible for the zero-quota dummy) the LRU page of the most
         over-quota tenant *)
      let victim_for u =
        if occupancy.(u) >= quota u && occupancy.(u) > 0 then
          match Dlist.back slices.(u) with
          | Some n -> Dlist.value n
          | None -> assert false
        else begin
          let worst = ref (-1) and worst_excess = ref min_int in
          Array.iteri
            (fun v occ ->
              let excess = occ - quota v in
              if occ > 0 && excess > !worst_excess then begin
                worst := v;
                worst_excess := excess
              end)
            occupancy;
          match Dlist.back slices.(!worst) with
          | Some n -> Dlist.value n
          | None -> invalid_arg "static-partition: empty cache"
        end
      in
      {
        Policy.on_hit =
          (fun ~pos:_ page ->
            Dlist.move_to_front slices.(slice_of page) (node_of page));
        wants_evict =
          (fun ~pos:_ ~incoming ->
            let u = slice_of incoming in
            occupancy.(u) >= quota u && occupancy.(u) > 0);
        choose_victim = (fun ~pos:_ ~incoming -> victim_for (slice_of incoming));
        on_insert =
          (fun ~pos:_ page ->
            let u = slice_of page in
            let n = Dlist.node page in
            Page.Tbl.replace nodes page n;
            Dlist.push_front slices.(u) n;
            occupancy.(u) <- occupancy.(u) + 1);
        on_evict =
          (fun ~pos:_ page ->
            let u = slice_of page in
            Dlist.remove slices.(u) (node_of page);
            Page.Tbl.remove nodes page;
            occupancy.(u) <- occupancy.(u) - 1);
      })

let equal_split = make ()
