(** LRU-K (O'Neil, O'Neil & Weikum, SIGMOD'93).

    Victim: the cached page whose K-th most recent reference is oldest;
    pages with fewer than K references are evicted first (oldest last
    reference first), matching the paper's backward K-distance with
    infinite distance for short histories.

    Reference history is retained across evictions (the "retained
    information" of the original paper), which is what distinguishes
    LRU-2 from LRU on correlated re-references. *)

module Policy = Ccache_sim.Policy


module Heap = Ccache_util.Indexed_heap

(* Priority encoding (min-heap, smallest evicted first):
   - fewer than K references: priority = time_of_last_ref - HUGE
   - at least K references:   priority = time of K-th most recent ref.
   HUGE dominates any trace position, so short-history pages always
   order before full-history ones, oldest-last-ref first. *)
let huge = 1e15

let make ~k_refs =
  if k_refs < 1 then invalid_arg "Lru_k.make: k_refs must be >= 1";
  Policy.make
    ~name:(Printf.sprintf "lru-%d" k_refs)
    (fun _config ->
      let interner = Interner.create () in
      let heap = Heap.create () in
      (* history.(key) = circular buffer of the last <= k_refs reference
         positions, most recent last *)
      let history : (int, int array * int ref) Hashtbl.t = Hashtbl.create 256 in
      let record key pos =
        let buf, len =
          match Hashtbl.find_opt history key with
          | Some h -> h
          | None ->
              let h = (Array.make k_refs (-1), ref 0) in
              Hashtbl.add history key h;
              h
        in
        if !len < k_refs then begin
          buf.(!len) <- pos;
          incr len
        end
        else begin
          (* shift left: drop the oldest *)
          Array.blit buf 1 buf 0 (k_refs - 1);
          buf.(k_refs - 1) <- pos
        end
      in
      let priority key =
        match Hashtbl.find_opt history key with
        | None -> -.huge
        | Some (buf, len) ->
            if !len < k_refs then float_of_int buf.(!len - 1) -. huge
            else float_of_int buf.(0)
      in
      {
        Policy.on_hit =
          (fun ~pos page ->
            let key = Interner.intern interner page in
            record key pos;
            Heap.update heap ~key ~prio:(priority key));
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming:_ ->
            let key, _ = Heap.peek_exn heap in
            Interner.page interner key);
        on_insert =
          (fun ~pos page ->
            let key = Interner.intern interner page in
            record key pos;
            Heap.add heap ~key ~prio:(priority key));
        on_evict =
          (fun ~pos:_ page ->
            let key = Interner.intern interner page in
            Heap.remove heap key);
      })

let lru_2 = make ~k_refs:2
let lru_3 = make ~k_refs:3
