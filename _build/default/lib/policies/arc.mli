(** ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST'03):
    recency list T1 and frequency list T2 with ghost histories B1/B2
    and a self-tuning split target p moved by ghost hits. *)

val policy : Ccache_sim.Policy.t
