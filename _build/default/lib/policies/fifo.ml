(** First In First Out: evict the page resident longest, ignoring hits. *)

module Policy = Ccache_sim.Policy

open Ccache_trace
module Dlist = Ccache_util.Dlist

let policy =
  Policy.make ~name:"fifo" (fun _config ->
      let queue = Dlist.create () in
      let nodes : Page.t Dlist.node Page.Tbl.t = Page.Tbl.create 256 in
      {
        Policy.on_hit = Policy.no_hit;
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming:_ ->
            match Dlist.back queue with
            | Some n -> Dlist.value n
            | None -> invalid_arg "fifo: choose_victim on empty cache");
        on_insert =
          (fun ~pos:_ page ->
            let n = Dlist.node page in
            Page.Tbl.replace nodes page n;
            Dlist.push_front queue n);
        on_evict =
          (fun ~pos:_ page ->
            match Page.Tbl.find_opt nodes page with
            | Some n ->
                Dlist.remove queue n;
                Page.Tbl.remove nodes page
            | None -> invalid_arg ("fifo: untracked page " ^ Page.to_string page));
      })
