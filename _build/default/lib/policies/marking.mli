(** Deterministic marking: victims come FIFO from the unmarked set; a
    new phase clears all marks.  k-competitive. *)

val policy : Ccache_sim.Policy.t
