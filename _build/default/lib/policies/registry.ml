(** Catalogue of baseline policies, used by the CLI and experiments. *)

module Policy = Ccache_sim.Policy

(** Online, cost-blind or cost-aware-but-uncoupled baselines. *)
let online =
  [
    Lru.policy;
    Fifo.policy;
    Lfu.policy;
    Random_policy.policy;
    Marking.policy;
    Lru_k.lru_2;
    Lru_k.lru_3;
    Landlord.static;
    Landlord.adaptive;
    Static_partition.equal_split;
    Clock.policy;
    Two_q.policy;
    Arc.policy;
    Randomized_marking.policy;
  ]

(** Offline references (need the full trace). *)
let offline = [ Belady.policy; Convex_belady.policy ]

let all = online @ offline

let find name =
  List.find_opt (fun p -> Policy.name p = name) all

let names = List.map Policy.name all
