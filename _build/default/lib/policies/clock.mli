(** CLOCK (second-chance FIFO): reference bits on a circular list, the
    hand clears bits and evicts the first clear page. *)

val policy : Ccache_sim.Policy.t
