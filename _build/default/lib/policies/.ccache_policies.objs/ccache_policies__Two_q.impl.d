lib/policies/two_q.ml: Ccache_sim Ccache_trace Ccache_util Page Stdlib
