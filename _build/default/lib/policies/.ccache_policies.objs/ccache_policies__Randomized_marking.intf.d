lib/policies/randomized_marking.mli: Ccache_sim
