lib/policies/belady.ml: Ccache_sim Ccache_trace Ccache_util Float Int Interner Trace
