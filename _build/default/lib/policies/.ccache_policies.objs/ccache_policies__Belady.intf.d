lib/policies/belady.mli: Ccache_sim
