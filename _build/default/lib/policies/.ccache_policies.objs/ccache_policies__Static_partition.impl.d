lib/policies/static_partition.ml: Array Ccache_sim Ccache_trace Ccache_util Page Stdlib
