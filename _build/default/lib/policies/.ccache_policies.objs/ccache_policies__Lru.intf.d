lib/policies/lru.mli: Ccache_sim
