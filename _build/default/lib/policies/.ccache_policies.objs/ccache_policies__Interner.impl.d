lib/policies/interner.ml: Array Ccache_trace Page
