lib/policies/interner.mli: Ccache_trace
