lib/policies/convex_belady.ml: Array Ccache_cost Ccache_sim Ccache_trace Ccache_util Float Hashtbl Int Interner Page Stdlib Trace
