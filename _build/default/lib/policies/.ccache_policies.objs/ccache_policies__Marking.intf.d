lib/policies/marking.mli: Ccache_sim
