lib/policies/randomized_marking.ml: Array Ccache_sim Ccache_trace Ccache_util Hashtbl List Page
