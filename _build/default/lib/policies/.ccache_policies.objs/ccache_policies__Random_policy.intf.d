lib/policies/random_policy.mli: Ccache_sim
