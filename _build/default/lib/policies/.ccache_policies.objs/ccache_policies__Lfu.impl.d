lib/policies/lfu.ml: Ccache_sim Ccache_util Hashtbl Interner Option
