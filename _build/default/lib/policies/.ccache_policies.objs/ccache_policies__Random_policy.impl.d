lib/policies/random_policy.ml: Array Ccache_sim Ccache_trace Ccache_util Hashtbl Page
