lib/policies/marking.ml: Ccache_sim Ccache_trace Ccache_util List Page
