lib/policies/lfu.mli: Ccache_sim
