lib/policies/lru_k.mli: Ccache_sim
