lib/policies/two_q.mli: Ccache_sim
