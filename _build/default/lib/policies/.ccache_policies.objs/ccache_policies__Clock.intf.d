lib/policies/clock.mli: Ccache_sim
