lib/policies/arc.mli: Ccache_sim
