lib/policies/fifo.mli: Ccache_sim
