lib/policies/landlord.ml: Array Ccache_cost Ccache_sim Ccache_trace Ccache_util Interner Page Printf Stdlib
