lib/policies/arc.ml: Ccache_sim Ccache_trace Ccache_util Float Page Stdlib
