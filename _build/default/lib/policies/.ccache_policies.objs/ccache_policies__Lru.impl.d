lib/policies/lru.ml: Ccache_sim Ccache_trace Ccache_util Page
