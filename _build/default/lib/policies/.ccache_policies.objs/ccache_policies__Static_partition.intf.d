lib/policies/static_partition.mli: Ccache_sim
