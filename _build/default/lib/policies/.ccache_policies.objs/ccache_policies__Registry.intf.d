lib/policies/registry.mli: Ccache_sim
