lib/policies/convex_belady.mli: Ccache_sim
