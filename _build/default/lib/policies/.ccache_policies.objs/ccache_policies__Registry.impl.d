lib/policies/registry.ml: Arc Belady Ccache_sim Clock Convex_belady Fifo Landlord Lfu List Lru Lru_k Marking Random_policy Randomized_marking Static_partition Two_q
