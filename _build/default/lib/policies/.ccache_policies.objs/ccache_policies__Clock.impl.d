lib/policies/clock.ml: Ccache_sim Ccache_trace Ccache_util Page
