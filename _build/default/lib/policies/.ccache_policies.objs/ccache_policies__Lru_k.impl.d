lib/policies/lru_k.ml: Array Ccache_sim Ccache_util Hashtbl Interner Printf
