lib/policies/landlord.mli: Ccache_sim
