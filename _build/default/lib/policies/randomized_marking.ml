(** Randomized marking (Fiat et al.): marking with a uniformly random
    unmarked victim.

    The classical O(log k)-competitive randomized paging algorithm —
    the integral counterpart of the fractional exponential-update
    scheme (see {!Ccache_core.Alg_fractional}).  Seeded from
    [Config.rng_seed], so runs are reproducible; against the
    Theorem 1.4 adversary it only helps in expectation, and since our
    adversary reacts to the realised cache state, single runs still
    thrash — the textbook oblivious-vs-adaptive adversary distinction,
    visible in E4 if run with this policy. *)

module Policy = Ccache_sim.Policy
open Ccache_trace
module Prng = Ccache_util.Prng

let policy =
  Policy.make ~name:"randomized-marking" (fun config ->
      let rng = Prng.create ~seed:config.Policy.Config.rng_seed in
      (* unmarked pages in a dense array for O(1) uniform choice *)
      let unmarked_slots : (Page.t, int) Hashtbl.t = Hashtbl.create 64 in
      let unmarked = ref (Array.make 16 (Page.make ~user:0 ~id:0)) in
      let unmarked_count = ref 0 in
      let marked : unit Page.Tbl.t = Page.Tbl.create 64 in
      let push_unmarked page =
        if not (Hashtbl.mem unmarked_slots page) then begin
          if !unmarked_count = Array.length !unmarked then begin
            let bigger = Array.make (2 * !unmarked_count) page in
            Array.blit !unmarked 0 bigger 0 !unmarked_count;
            unmarked := bigger
          end;
          !unmarked.(!unmarked_count) <- page;
          Hashtbl.replace unmarked_slots page !unmarked_count;
          incr unmarked_count
        end
      in
      let remove_unmarked page =
        match Hashtbl.find_opt unmarked_slots page with
        | None -> ()
        | Some i ->
            let last = !unmarked_count - 1 in
            if i <> last then begin
              let moved = !unmarked.(last) in
              !unmarked.(i) <- moved;
              Hashtbl.replace unmarked_slots moved i
            end;
            Hashtbl.remove unmarked_slots page;
            unmarked_count := last
      in
      let mark page =
        remove_unmarked page;
        Page.Tbl.replace marked page ()
      in
      let new_phase () =
        let pages = Page.Tbl.fold (fun p () acc -> p :: acc) marked [] in
        Page.Tbl.reset marked;
        List.iter push_unmarked (List.sort Page.compare pages)
      in
      {
        Policy.on_hit = (fun ~pos:_ page -> mark page);
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming:_ ->
            if !unmarked_count = 0 then new_phase ();
            if !unmarked_count = 0 then
              invalid_arg "randomized-marking: choose_victim on empty cache";
            !unmarked.(Prng.int rng !unmarked_count));
        on_insert = (fun ~pos:_ page -> mark page);
        on_evict =
          (fun ~pos:_ page ->
            remove_unmarked page;
            Page.Tbl.remove marked page);
      })
