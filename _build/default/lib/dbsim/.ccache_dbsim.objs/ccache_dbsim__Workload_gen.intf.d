lib/dbsim/workload_gen.mli: Ccache_trace Query Schema
