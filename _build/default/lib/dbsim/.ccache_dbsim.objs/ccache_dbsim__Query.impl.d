lib/dbsim/query.ml: Float List Schema Stdlib
