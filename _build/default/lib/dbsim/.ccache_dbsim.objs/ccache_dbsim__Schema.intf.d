lib/dbsim/schema.mli:
