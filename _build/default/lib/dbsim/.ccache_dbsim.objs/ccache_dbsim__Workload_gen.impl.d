lib/dbsim/workload_gen.ml: Array Ccache_trace Ccache_util Hashtbl List Option Page Query Schema Trace Zipf
