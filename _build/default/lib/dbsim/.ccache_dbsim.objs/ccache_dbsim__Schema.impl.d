lib/dbsim/schema.ml: Array Float List Stdlib
