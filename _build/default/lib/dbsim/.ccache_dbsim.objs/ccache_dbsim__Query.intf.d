lib/dbsim/query.mli: Schema
