(** Query model and its compilation to buffer-pool page accesses.

    Four query shapes cover the buffer-pool behaviours that matter for
    multi-tenant caching:

    - [Point_lookup]: a root-to-leaf B-tree descent plus one data
      page — index roots become very hot, leaves follow the key
      distribution;
    - [Range_scan]: one descent, then [length] consecutive leaves —
      the sequential traffic that floods recency-based policies;
    - [Full_scan]: every leaf of the table in order;
    - [Insert]: a descent plus the target leaf (buffer-pool-wise a
      write touches the same pages as a read in this model).

    Keys are ranks into the table's leaf region; the generator draws
    them from a per-table Zipf so each table has its own hot range. *)

type kind =
  | Point_lookup of { table : int }
  | Range_scan of { table : int; length : int }
  | Full_scan of { table : int }
  | Insert of { table : int }

let kind_name = function
  | Point_lookup _ -> "point"
  | Range_scan _ -> "range"
  | Full_scan _ -> "full-scan"
  | Insert _ -> "insert"

let table_of = function
  | Point_lookup { table } | Range_scan { table; _ } | Full_scan { table }
  | Insert { table } ->
      table

(* Index descent for a given leaf: at level l the slot is the leaf
   index divided by fanout^(depth - l) — the ancestor covering it. *)
let descent schema ~table ~leaf =
  let tbl = Schema.table schema table in
  let depth = Schema.index_depth tbl.Schema.spec in
  List.init depth (fun level ->
      let span =
        int_of_float
          (Float.pow (float_of_int tbl.Schema.spec.Schema.fanout)
             (float_of_int (depth - level)))
      in
      Schema.index_page tbl ~level ~slot:(leaf / Stdlib.max 1 span))

(** Page ids touched by one query, in access order.  [leaf_rank] is
    the key's leaf position (callers draw it from their distribution);
    it is clamped into range, so samplers need not know table sizes. *)
let compile schema query ~leaf_rank =
  let tbl = Schema.table schema (table_of query) in
  let leaves = tbl.Schema.spec.Schema.data_pages in
  let leaf = ((leaf_rank mod leaves) + leaves) mod leaves in
  match query with
  | Point_lookup { table } ->
      descent schema ~table ~leaf @ [ Schema.data_page tbl leaf ]
  | Insert { table } ->
      descent schema ~table ~leaf @ [ Schema.data_page tbl leaf ]
  | Range_scan { table; length } ->
      let length = Stdlib.max 1 (Stdlib.min length leaves) in
      let start = Stdlib.min leaf (leaves - length) in
      descent schema ~table ~leaf:start
      @ List.init length (fun i -> Schema.data_page tbl (start + i))
  | Full_scan { table } ->
      descent schema ~table ~leaf:0
      @ List.init leaves (fun i -> Schema.data_page tbl i)
