(** Storage layout of a tenant's database: tables as clustered
    B-trees (index region + leaf region) laid out back to back in the
    tenant's page-id space.  The minimal model needed to make
    buffer-pool traces look like the SQLVM workloads: hot index roots,
    skewed point reads, sequential leaf scans. *)

type table_spec = private {
  data_pages : int;
  fanout : int;
}

val table_spec : ?fanout:int -> data_pages:int -> unit -> table_spec
(** Defaults: fanout 64. @raise Invalid_argument on non-positive
    pages or fanout < 2. *)

val index_depth : table_spec -> int
(** Index levels above the leaves (>= 1; the root always exists). *)

val index_level_sizes : table_spec -> int list
(** Pages per index level, root (size 1) first. *)

val index_pages : table_spec -> int
val total_pages : table_spec -> int

type table = private { id : int; spec : table_spec; base : int }

type t

val create : table_spec list -> t
val table : t -> int -> table
val n_tables : t -> int

val footprint : t -> int

val index_page : table -> level:int -> slot:int -> int
(** Page id of an index page (level 0 = root; slots wrap). *)

val data_page : table -> int -> int
(** Page id of the i-th leaf. @raise Invalid_argument out of range. *)
