(** Query model and its compilation to buffer-pool page accesses:
    B-tree point lookups and inserts (root-to-leaf descent + data
    page), range scans (descent + consecutive leaves), full scans. *)

type kind =
  | Point_lookup of { table : int }
  | Range_scan of { table : int; length : int }
  | Full_scan of { table : int }
  | Insert of { table : int }

val kind_name : kind -> string
val table_of : kind -> int

val descent : Schema.t -> table:int -> leaf:int -> int list
(** Index pages (root first) on the path to [leaf]. *)

val compile : Schema.t -> kind -> leaf_rank:int -> int list
(** Page ids touched by one query, in access order.  [leaf_rank]
    (clamped into range) is the key's leaf position. *)
