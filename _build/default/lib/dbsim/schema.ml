(** Storage layout of a tenant's database.

    Each tenant owns a set of tables.  A table is a clustered B-tree:
    a region of index pages (root + internal levels, sized by the
    fanout) followed by a region of data (leaf) pages.  Tables are
    laid out back to back in the tenant's page-id space, so every page
    id a query touches maps to exactly one (tenant, table, role).

    This is the minimal storage model needed to make buffer-pool
    traces look like the SQLVM workloads of the paper's motivation:
    hot shared index roots, skewed point reads, and long sequential
    leaf scans. *)

type table_spec = {
  data_pages : int;  (** leaf pages holding rows *)
  fanout : int;  (** B-tree fanout; >= 2 *)
}

let table_spec ?(fanout = 64) ~data_pages () =
  if data_pages <= 0 then invalid_arg "Schema.table_spec: data_pages must be positive";
  if fanout < 2 then invalid_arg "Schema.table_spec: fanout must be >= 2";
  { data_pages; fanout }

(** Number of index levels above the leaves: ceil(log_fanout data_pages),
    at least 1 (the root always exists). *)
let index_depth spec =
  let rec go covered depth =
    if covered >= spec.data_pages then depth
    else go (covered * spec.fanout) (depth + 1)
  in
  go 1 0 |> Stdlib.max 1

(** Index pages per level, root first: level l (0 = root) has
    ceil(data_pages / fanout^(depth - l)) pages, at least 1. *)
let index_level_sizes spec =
  let depth = index_depth spec in
  List.init depth (fun l ->
      let divisor = Float.pow (float_of_int spec.fanout) (float_of_int (depth - l)) in
      Stdlib.max 1
        (int_of_float (ceil (float_of_int spec.data_pages /. divisor))))

let index_pages spec = List.fold_left ( + ) 0 (index_level_sizes spec)

let total_pages spec = index_pages spec + spec.data_pages

type table = {
  id : int;
  spec : table_spec;
  base : int;  (** first page id of this table within the tenant *)
}

type t = {
  tables : table array;
  footprint : int;  (** total pages across all tables *)
}

let create specs =
  if specs = [] then invalid_arg "Schema.create: no tables";
  let base = ref 0 in
  let tables =
    List.mapi
      (fun id spec ->
        let t = { id; spec; base = !base } in
        base := !base + total_pages spec;
        t)
      specs
  in
  { tables = Array.of_list tables; footprint = !base }

let table t id =
  if id < 0 || id >= Array.length t.tables then
    invalid_arg "Schema.table: unknown table";
  t.tables.(id)

let n_tables t = Array.length t.tables

(** Page id of the [i]-th index page at [level] (0 = root) of [tbl]. *)
let index_page tbl ~level ~slot =
  let sizes = index_level_sizes tbl.spec in
  if level < 0 || level >= List.length sizes then
    invalid_arg "Schema.index_page: bad level";
  let offset = List.fold_left ( + ) 0 (List.filteri (fun l _ -> l < level) sizes) in
  let width = List.nth sizes level in
  tbl.base + offset + (slot mod width)

(** Page id of the [i]-th data (leaf) page of [tbl]. *)
let data_page tbl i =
  if i < 0 || i >= tbl.spec.data_pages then
    invalid_arg "Schema.data_page: leaf out of range";
  tbl.base + index_pages tbl.spec + i

let footprint t = t.footprint
