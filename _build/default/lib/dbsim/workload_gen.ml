(** Query-level workload generation: per-tenant query mixes compiled
    down to a multi-tenant buffer-pool page trace.

    This is the DaaS front-end of the DESIGN.md substitution table —
    where {!Ccache_trace.Workloads} synthesises page streams directly,
    this module synthesises {e queries} (the unit the SQLVM paper's
    SLAs are written against) and lets the storage model produce the
    page accesses.  The resulting traces have the structural
    signatures of real buffer pools: blazing-hot index roots, Zipf
    leaves, and scan bursts. *)

module Prng = Ccache_util.Prng
open Ccache_trace

type tenant_profile = {
  schema : Schema.t;
  mix : (float * Query.kind) list;  (** weighted query shapes *)
  key_skew : float;  (** Zipf skew of leaf ranks, per table *)
  weight : float;  (** relative query rate of this tenant *)
}

let profile ?(key_skew = 0.9) ?(weight = 1.0) ~schema mix =
  if mix = [] then invalid_arg "Workload_gen.profile: empty mix";
  List.iter
    (fun (w, q) ->
      if w <= 0.0 then invalid_arg "Workload_gen.profile: nonpositive mix weight";
      let t = Query.table_of q in
      if t < 0 || t >= Schema.n_tables schema then
        invalid_arg "Workload_gen.profile: query references unknown table")
    mix;
  if weight <= 0.0 then invalid_arg "Workload_gen.profile: nonpositive weight";
  if key_skew < 0.0 then invalid_arg "Workload_gen.profile: negative skew";
  { schema; mix; key_skew; weight }

type stats = {
  queries_per_tenant : int array;
  pages_per_tenant : int array;
  queries_by_kind : (string * int) list;
}

(** Generate [queries] queries across the tenants and compile them to
    a page trace.  Returns the trace plus query-level stats (the
    quantity SLAs of the companion paper are written against). *)
let generate ~seed ~queries profiles =
  if profiles = [] then invalid_arg "Workload_gen.generate: no tenants";
  if queries < 0 then invalid_arg "Workload_gen.generate: negative query count";
  let profiles = Array.of_list profiles in
  let n = Array.length profiles in
  let rng = Prng.create ~seed in
  let tenant_weights = Array.map (fun p -> p.weight) profiles in
  (* per-tenant per-table key samplers *)
  let keyed =
    Array.map
      (fun p ->
        let rngs = Prng.split rng in
        let zipfs =
          Array.init (Schema.n_tables p.schema) (fun t ->
              let tbl = Schema.table p.schema t in
              Zipf.create ~n:tbl.Schema.spec.Schema.data_pages ~skew:p.key_skew)
        in
        (rngs, zipfs))
      profiles
  in
  let q_counts = Array.make n 0 in
  let p_counts = Array.make n 0 in
  let kind_counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let requests = ref [] in
  for _ = 1 to queries do
    let u = Prng.categorical rng ~weights:tenant_weights in
    let p = profiles.(u) in
    let t_rng, zipfs = keyed.(u) in
    let mix_weights = Array.of_list (List.map fst p.mix) in
    let query = snd (List.nth p.mix (Prng.categorical t_rng ~weights:mix_weights)) in
    let table = Query.table_of query in
    let leaf_rank = Zipf.sample zipfs.(table) t_rng in
    let pages = Query.compile p.schema query ~leaf_rank in
    q_counts.(u) <- q_counts.(u) + 1;
    p_counts.(u) <- p_counts.(u) + List.length pages;
    let key = Query.kind_name query in
    Hashtbl.replace kind_counts key
      (1 + Option.value (Hashtbl.find_opt kind_counts key) ~default:0);
    List.iter
      (fun id -> requests := Page.make ~user:u ~id :: !requests)
      pages
  done;
  let trace = Trace.of_list ~n_users:n (List.rev !requests) in
  let stats =
    {
      queries_per_tenant = q_counts;
      pages_per_tenant = p_counts;
      queries_by_kind =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) kind_counts []
        |> List.sort compare;
    }
  in
  (trace, stats)

(** A canned OLTP + reporting tenant pair, scaled by [scale]:
    tenant 0 runs skewed point lookups and inserts over two tables;
    tenant 1 mixes point reads with periodic range and full scans —
    the archetypes of the SQLVM evaluation. *)
let oltp_reporting ~scale =
  if scale <= 0 then invalid_arg "Workload_gen.oltp_reporting: scale must be positive";
  let oltp_schema =
    Schema.create
      [
        Schema.table_spec ~fanout:32 ~data_pages:(80 * scale) ();
        Schema.table_spec ~fanout:32 ~data_pages:(40 * scale) ();
      ]
  in
  let reporting_schema =
    Schema.create [ Schema.table_spec ~fanout:32 ~data_pages:(120 * scale) () ]
  in
  [
    profile ~weight:3.0 ~key_skew:1.1 ~schema:oltp_schema
      [
        (6.0, Query.Point_lookup { table = 0 });
        (2.0, Query.Point_lookup { table = 1 });
        (2.0, Query.Insert { table = 0 });
      ];
    profile ~weight:1.0 ~key_skew:0.6 ~schema:reporting_schema
      [
        (5.0, Query.Point_lookup { table = 0 });
        (3.0, Query.Range_scan { table = 0; length = 12 * scale });
        (0.5, Query.Full_scan { table = 0 });
      ];
  ]
