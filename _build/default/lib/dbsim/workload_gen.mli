(** Query-level workload generation: per-tenant query mixes compiled
    to a multi-tenant buffer-pool page trace — the DaaS front-end of
    the DESIGN.md substitution table.  Traces carry real buffer-pool
    signatures: hot index roots, Zipf leaves, scan bursts. *)

type tenant_profile = {
  schema : Schema.t;
  mix : (float * Query.kind) list;
  key_skew : float;
  weight : float;
}

val profile :
  ?key_skew:float ->
  ?weight:float ->
  schema:Schema.t ->
  (float * Query.kind) list ->
  tenant_profile
(** Defaults: skew 0.9, weight 1.  Validates the mix against the
    schema. *)

type stats = {
  queries_per_tenant : int array;
  pages_per_tenant : int array;
  queries_by_kind : (string * int) list;
}

val generate :
  seed:int ->
  queries:int ->
  tenant_profile list ->
  Ccache_trace.Trace.t * stats
(** [queries] queries across all tenants (weighted), compiled to page
    requests.  Deterministic in [(seed, profiles)]. *)

val oltp_reporting : scale:int -> tenant_profile list
(** Canned pair: a skewed OLTP tenant and a scan-heavy reporting
    tenant — the SQLVM evaluation archetypes. *)
