(** Regenerate the experiment tables (DESIGN.md Section 4 /
    EXPERIMENTS.md).

    Usage:
      experiments [--full] [--markdown] [ID ...]

    With no IDs, runs the whole suite in DESIGN.md order. *)

open Cmdliner
module A = Ccache_analysis

let run full markdown ids =
  let size = if full then A.Experiment.Full else A.Experiment.Quick in
  let fmt = if markdown then A.Report.Markdown else A.Report.Text in
  let specs =
    match ids with
    | [] -> A.Suite.all
    | ids ->
        List.map
          (fun id ->
            match A.Suite.find (String.lowercase_ascii id) with
            | Some s -> s
            | None ->
                Fmt.epr "unknown experiment %S; known: %s@." id
                  (String.concat ", " A.Suite.ids);
                exit 2)
          ids
  in
  print_string (A.Report.run_suite ~fmt ~size specs);
  0

let full =
  Arg.(value & flag & info [ "full" ] ~doc:"Full-size runs (EXPERIMENTS.md scale).")

let markdown =
  Arg.(value & flag & info [ "markdown" ] ~doc:"Emit markdown tables.")

let ids =
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (e1..e10).")

let cmd =
  Cmd.v
    (Cmd.info "experiments" ~doc:"Reproduce the convex-caching experiment suite")
    Term.(const run $ full $ markdown $ ids)

let () = exit (Cmd.eval' cmd)
