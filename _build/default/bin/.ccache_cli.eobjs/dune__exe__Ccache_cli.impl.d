bin/ccache_cli.ml: Arg Array Ccache_analysis Ccache_core Ccache_cost Ccache_policies Ccache_sim Ccache_trace Cmd Cmdliner Float Fmt List Stdlib Term
