bin/ccache_cli.mli:
