bin/experiments.mli:
