bin/experiments.ml: Arg Ccache_analysis Cmd Cmdliner Fmt List String Term
