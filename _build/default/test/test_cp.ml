(* Tests for ccache_cp: the (CP) formulation, Lagrangian inner
   minimisation, dual solver soundness and rounding. *)

open Ccache_trace
module F = Ccache_cp.Formulation
module L = Ccache_cp.Lagrangian
module DS = Ccache_cp.Dual_solver
module Kkt = Ccache_cp.Kkt
module R = Ccache_cp.Rounding
module Cf = Ccache_cost.Cost_function
module Engine = Ccache_sim.Engine
module Prng = Ccache_util.Prng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let p u i = Page.make ~user:u ~id:i

let mono_costs n = Array.init n (fun _ -> Cf.monomial ~beta:2.0 ())

(* a b a c b a with users a,c -> 0, b -> 1 *)
let sample_trace () =
  Trace.of_list ~n_users:2 [ p 0 0; p 1 0; p 0 0; p 0 1; p 1 0; p 0 0 ]

(* ------------------------------------------------------------------ *)
(* Formulation                                                         *)
(* ------------------------------------------------------------------ *)

let test_formulation_vars () =
  let t = sample_trace () in
  let cp = F.of_trace ~flush:false ~k:2 ~cache_size:2 ~costs:(mono_costs 2) t in
  (* one variable per request of a real user: 6 *)
  checki "vars" 6 (F.n_vars cp);
  checki "horizon" 6 (F.horizon cp);
  (* user 0 owns 4 of them (a,a,c,a) *)
  checki "user0 vars" 4 (List.length cp.F.vars_of_user.(0));
  checki "user1 vars" 2 (List.length cp.F.vars_of_user.(1))

let test_formulation_flush_pins_dummy () =
  let t = sample_trace () in
  let cp = F.of_trace ~flush:true ~k:2 ~cache_size:2 ~costs:(mono_costs 2) t in
  (* flush adds 2 dummy requests but no variables for them *)
  checki "horizon includes flush" 8 (F.horizon cp);
  checki "still 6 vars" 6 (F.n_vars cp);
  (* rhs grows with the dummy pages entering B(t) *)
  checki "final rhs" (5 - 2) cp.F.rhs.(7)

let test_formulation_rhs () =
  let t = sample_trace () in
  let cp = F.of_trace ~flush:false ~k:2 ~cache_size:2 ~costs:(mono_costs 2) t in
  (* distinct counts 1 2 2 3 3 3 minus k=2 *)
  checkb "rhs" true (cp.F.rhs = [| -1; 0; 0; 1; 1; 1 |])

let test_constraint_activity_brute_force () =
  let t = sample_trace () in
  let cp = F.of_trace ~flush:false ~k:2 ~cache_size:2 ~costs:(mono_costs 2) t in
  let rng = Prng.create ~seed:1 in
  let x = Array.init (F.n_vars cp) (fun _ -> Prng.float rng) in
  let fast = F.constraint_activity cp x in
  (* brute force: for each t sum x_v over vars whose open span contains t *)
  Array.iteri
    (fun pos fast_v ->
      let slow = ref 0.0 in
      Array.iteri
        (fun vi v ->
          if pos > v.F.start_pos && pos < v.F.end_pos then slow := !slow +. x.(vi))
        cp.F.vars;
      checkb (Printf.sprintf "activity at %d" pos) true
        (Float.abs (fast_v -. !slow) < 1e-9))
    fast

let test_var_costs_brute_force () =
  let t = sample_trace () in
  let cp = F.of_trace ~flush:false ~k:2 ~cache_size:2 ~costs:(mono_costs 2) t in
  let y = [| 0.5; 0.0; 1.0; 2.0; 0.0; 0.25 |] in
  let y_prefix = Array.make 7 0.0 in
  for i = 0 to 5 do
    y_prefix.(i + 1) <- y_prefix.(i) +. y.(i)
  done;
  let c = F.var_costs cp ~y_prefix in
  Array.iteri
    (fun vi v ->
      let slow = ref 0.0 in
      for pos = v.F.start_pos + 1 to v.F.end_pos - 1 do
        slow := !slow +. y.(pos)
      done;
      checkb (Printf.sprintf "c(%d)" vi) true (Float.abs (c.(vi) -. !slow) < 1e-9))
    cp.F.vars

let test_objective () =
  let t = sample_trace () in
  let cp = F.of_trace ~flush:false ~k:2 ~cache_size:2 ~costs:(mono_costs 2) t in
  let x = Array.make (F.n_vars cp) 1.0 in
  (* user0: 4 vars -> 16; user1: 2 vars -> 4 *)
  checkf "objective" 20.0 (F.objective cp x)

let test_engine_run_is_feasible () =
  (* the paper's observation: every algorithm induces a feasible ICP
     solution.  Run LRU with flush, embed its evictions, check. *)
  let t =
    Workloads.generate ~seed:3 ~length:200
      (Workloads.symmetric_zipf ~tenants:2 ~pages_per_tenant:12 ~skew:0.8)
  in
  let costs = mono_costs 2 in
  let k = 4 in
  let cp = F.of_trace ~flush:true ~k ~cache_size:k ~costs t in
  let _, log = Engine.run_logged ~flush:true ~k ~costs Ccache_policies.Lru.policy t in
  let evictions =
    List.filter_map
      (function Engine.Miss_evict { pos; victim; _ } -> Some (pos, victim) | _ -> None)
      log
  in
  let x = F.solution_of_evictions cp evictions in
  let feas = F.check_feasible cp x in
  checkb "feasible" true feas.F.feasible;
  (* objective equals the eviction-accounting cost of the run *)
  let by_user = Array.make 2 0 in
  List.iter
    (fun (_, v) ->
      if Page.user v < 2 then by_user.(Page.user v) <- by_user.(Page.user v) + 1)
    evictions;
  let expected =
    Cf.eval costs.(0) (float_of_int by_user.(0))
    +. Cf.eval costs.(1) (float_of_int by_user.(1))
  in
  checkf "objective = eviction cost" expected (F.objective cp x)

let test_infeasible_detected () =
  let t = sample_trace () in
  let cp = F.of_trace ~flush:false ~k:2 ~cache_size:2 ~costs:(mono_costs 2) t in
  let x = Array.make (F.n_vars cp) 0.0 in
  (* all-zero violates the rhs=1 constraints at t=3,4,5 *)
  let feas = F.check_feasible cp x in
  checkb "infeasible" false feas.F.feasible;
  checki "three violated" 3 feas.F.violated_constraints;
  (* box violations *)
  let x2 = Array.make (F.n_vars cp) 2.0 in
  checkb "box flagged" true ((F.check_feasible cp x2).F.box_violations > 0)

(* ------------------------------------------------------------------ *)
(* Lagrangian inner minimisation                                       *)
(* ------------------------------------------------------------------ *)

let test_minimize_user_brute_force () =
  (* compare against a dense grid search for several cost shapes *)
  let cases =
    [
      (Cf.monomial ~beta:2.0 (), [ (0, 3.0); (1, 1.0); (2, 5.0) ]);
      (Cf.linear ~slope:2.0 (), [ (0, 1.0); (1, 3.0); (2, 0.5); (3, 2.0) ]);
      (Cf.monomial ~beta:1.5 (), [ (0, 0.0); (1, 0.0) ]);
      (Ccache_cost.Sla.hinge ~tolerance:1.0 ~penalty_rate:4.0, [ (0, 2.0); (1, 6.0) ]);
    ]
  in
  List.iter
    (fun (f, ids_costs) ->
      let sol = L.minimize_user f ids_costs in
      (* grid search on s with the same greedy C(s) *)
      let sorted = List.sort (fun (_, a) (_, b) -> compare b a) ids_costs in
      let n = List.length sorted in
      let c_of s =
        let rec go lst s acc =
          match lst with
          | [] -> acc
          | (_, c) :: rest ->
              if s <= 0.0 then acc
              else
                let take = Float.min 1.0 s in
                go rest (s -. take) (acc +. (c *. take))
        in
        go sorted s 0.0
      in
      let best = ref 0.0 in
      let steps = 2000 in
      for i = 0 to steps do
        let s = float_of_int n *. float_of_int i /. float_of_int steps in
        let v = Cf.eval f s -. c_of s in
        if v < !best then best := v
      done;
      checkb
        (Printf.sprintf "%s inner min matches grid (%g vs %g)" (Cf.name f)
           sol.L.value !best)
        true
        (sol.L.value <= !best +. 1e-6
        && sol.L.value >= !best -. 1e-3 (* grid is coarse *)))
    cases

let test_minimize_user_solution_consistent () =
  let f = Cf.monomial ~beta:2.0 () in
  let sol = L.minimize_user f [ (7, 3.0); (9, 1.0) ] in
  (* x masses sum to the reported total and respect [0,1] *)
  let total = List.fold_left (fun acc (_, m) -> acc +. m) 0.0 sol.L.x in
  checkb "masses sum to total" true (Float.abs (total -. sol.L.total) < 1e-9);
  List.iter (fun (_, m) -> checkb "mass in box" true (m >= 0.0 && m <= 1.0)) sol.L.x;
  (* the largest-c variable is filled first *)
  match sol.L.x with
  | (first, _) :: _ -> checki "fills largest c first" 7 first
  | [] -> ()

(* weak duality: g(y) <= objective of any feasible x, for random y *)
let weak_duality =
  QCheck.Test.make ~name:"weak duality on random y" ~count:30
    QCheck.(pair small_nat (list_of_size (Gen.return 10) (float_range 0.0 2.0)))
    (fun (seed, _) ->
      let t =
        Workloads.generate ~seed:(seed + 2) ~length:60
          (Workloads.symmetric_zipf ~tenants:2 ~pages_per_tenant:6 ~skew:0.6)
      in
      let costs = mono_costs 2 in
      let k = 3 in
      let cp = F.of_trace ~flush:true ~k ~cache_size:k ~costs t in
      let rng = Prng.create ~seed:(seed * 3 + 1) in
      let y =
        Array.init (F.horizon cp) (fun i ->
            if cp.F.rhs.(i) > 0 && Prng.bool rng then Prng.float rng else 0.0)
      in
      let dual = L.eval cp ~y in
      (* feasible x: the LRU run's integral solution *)
      let _, log = Engine.run_logged ~flush:true ~k ~costs Ccache_policies.Lru.policy t in
      let evs =
        List.filter_map
          (function Engine.Miss_evict { pos; victim; _ } -> Some (pos, victim) | _ -> None)
          log
      in
      let x = F.solution_of_evictions cp evs in
      (F.check_feasible cp x).F.feasible
      && dual.L.value <= F.objective cp x +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Dual solver                                                         *)
(* ------------------------------------------------------------------ *)

let test_dual_solver_improves_and_sound () =
  let t =
    Workloads.generate ~seed:8 ~length:80
      (Workloads.symmetric_zipf ~tenants:2 ~pages_per_tenant:6 ~skew:0.8)
  in
  let costs = mono_costs 2 in
  let k = 3 in
  let cp = F.of_trace ~flush:true ~k ~cache_size:k ~costs t in
  let sol = DS.solve ~options:{ DS.default_options with iterations = 150 } cp in
  checkb "bound non-negative" true (sol.DS.bound >= 0.0);
  checkb "bound positive (trace forces misses)" true (sol.DS.bound > 0.0);
  (* sound vs exact DP on the pinned flushed instance *)
  let flushed = Trace.with_flush ~k t in
  let dp =
    Ccache_offline.Dp_opt.solve
      ~pinned:(fun q -> Page.user q >= 2)
      ~cache_size:k
      ~costs:(Array.append costs [| Cf.linear ~slope:0.0 () |])
      flushed
  in
  checkb "dual <= DP OPT" true (sol.DS.bound <= dp.Ccache_offline.Dp_opt.cost +. 1e-6);
  (* ascent achieved something: better than the all-zero dual *)
  let zero = L.eval cp ~y:(Array.make (F.horizon cp) 0.0) in
  checkb "better than trivial" true (sol.DS.bound >= zero.L.value);
  checkb "history recorded" true (List.length sol.DS.history > 1)

let test_bicriteria_dual_bound () =
  (* (CP-h): the dual bound with a smaller offline cache h must be at
     least the k-cache bound (fewer slots -> more forced evictions) and
     still below the h-cache best-of *)
  let t =
    Workloads.generate ~seed:12 ~length:70
      (Workloads.symmetric_zipf ~tenants:2 ~pages_per_tenant:6 ~skew:0.7)
  in
  let costs = mono_costs 2 in
  let k = 4 and h = 2 in
  let opts = { DS.default_options with iterations = 120 } in
  let lb_k = DS.lower_bound ~options:opts ~k ~costs t in
  let lb_h = DS.lower_bound ~options:opts ~cache_size:h ~k ~costs t in
  let off_h =
    Ccache_offline.Best_of.compute ~local_search_rounds:0 ~cache_size:h ~costs t
  in
  checkb "h-bound >= 0" true (lb_h >= 0.0);
  checkb "h-bound below h best-of" true (lb_h <= off_h.Ccache_offline.Best_of.cost +. 1e-6);
  (* tightening constraints cannot lower the optimum; ascent noise gets
     a small tolerance *)
  checkb "h-bound >= k-bound (up to ascent slack)" true (lb_h >= lb_k *. 0.75)

let test_lower_bound_convenience () =
  let t =
    Workloads.generate ~seed:9 ~length:60
      (Workloads.symmetric_zipf ~tenants:1 ~pages_per_tenant:5 ~skew:0.5)
  in
  let costs = mono_costs 1 in
  let lb =
    DS.lower_bound
      ~options:{ DS.default_options with iterations = 80 }
      ~k:2 ~costs t
  in
  (* any real schedule costs at least the bound *)
  let off =
    Ccache_offline.Best_of.compute ~local_search_rounds:0 ~cache_size:2 ~costs t
  in
  checkb "bound below best-of" true (lb <= off.Ccache_offline.Best_of.cost +. 1e-6)

(* ------------------------------------------------------------------ *)
(* KKT and rounding                                                    *)
(* ------------------------------------------------------------------ *)

let test_kkt_residuals () =
  let t = sample_trace () in
  let costs = mono_costs 2 in
  let cp = F.of_trace ~flush:true ~k:2 ~cache_size:2 ~costs t in
  let sol = DS.solve ~options:{ DS.default_options with iterations = 200 } cp in
  let { L.x_star; _ } = L.eval cp ~y:sol.DS.best_y in
  let r = Kkt.compute cp ~x:x_star ~y:sol.DS.best_y in
  checkb "dual feasible" true (r.Kkt.dual_infeasibility <= 1e-9);
  checkb "box feasible" true (r.Kkt.box_infeasibility <= 1e-9);
  (* inner minimiser satisfies variable complementarity by construction *)
  checkb "complementarity small" true (r.Kkt.complementarity <= 1e-6);
  checkb "worst is finite" true (Float.is_finite (Kkt.worst r))

let test_rounding_feasible_schedule () =
  let t =
    Workloads.generate ~seed:10 ~length:100
      (Workloads.symmetric_zipf ~tenants:2 ~pages_per_tenant:8 ~skew:0.7)
  in
  let costs = mono_costs 2 in
  let k = 3 in
  let cp = F.of_trace ~flush:true ~k ~cache_size:k ~costs t in
  let sol = DS.solve ~options:{ DS.default_options with iterations = 60 } cp in
  let { L.x_star; _ } = L.eval cp ~y:sol.DS.best_y in
  let rounded = R.round cp ~x:x_star in
  (* rounded schedule costs at least the dual bound *)
  checkb "rounded >= dual bound" true
    (rounded.R.cost_by_evictions >= sol.DS.bound -. 1e-6);
  (* eviction counts are conserved: flush makes evictions ~ misses *)
  checkb "evictions close to misses" true
    (Array.for_all2
       (fun e m -> e <= m)
       rounded.R.evictions_per_user rounded.R.misses_per_user
    || rounded.R.cost_by_evictions <= rounded.R.cost_by_misses +. 1e-9)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ccache_cp"
    [
      ( "formulation",
        [
          Alcotest.test_case "vars" `Quick test_formulation_vars;
          Alcotest.test_case "flush pins dummy" `Quick test_formulation_flush_pins_dummy;
          Alcotest.test_case "rhs" `Quick test_formulation_rhs;
          Alcotest.test_case "activity brute force" `Quick test_constraint_activity_brute_force;
          Alcotest.test_case "var costs brute force" `Quick test_var_costs_brute_force;
          Alcotest.test_case "objective" `Quick test_objective;
          Alcotest.test_case "engine run feasible" `Quick test_engine_run_is_feasible;
          Alcotest.test_case "infeasible detected" `Quick test_infeasible_detected;
        ] );
      ( "lagrangian",
        [
          Alcotest.test_case "inner min brute force" `Quick test_minimize_user_brute_force;
          Alcotest.test_case "solution consistent" `Quick test_minimize_user_solution_consistent;
        ]
        @ qsuite [ weak_duality ] );
      ( "dual_solver",
        [
          Alcotest.test_case "improves and sound" `Quick test_dual_solver_improves_and_sound;
          Alcotest.test_case "bi-criteria bound" `Quick test_bicriteria_dual_bound;
          Alcotest.test_case "lower_bound convenience" `Quick test_lower_bound_convenience;
        ] );
      ( "kkt_rounding",
        [
          Alcotest.test_case "kkt residuals" `Quick test_kkt_residuals;
          Alcotest.test_case "rounding feasible" `Quick test_rounding_feasible_schedule;
        ] );
    ]
