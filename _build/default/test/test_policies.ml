(* Behavioural tests for the baseline policies: each test pins the
   policy's defining decision on a handcrafted sequence. *)

open Ccache_trace
module Engine = Ccache_sim.Engine
module Cf = Ccache_cost.Cost_function
module P = Ccache_policies

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let p u i = Page.make ~user:u ~id:i
let uni_costs n = Array.init n (fun _ -> Cf.linear ~slope:1.0 ())

let victims_of log =
  List.filter_map
    (function Engine.Miss_evict { victim; _ } -> Some victim | _ -> None)
    log

let run ?(n_users = 1) ?(k = 2) ?(costs = None) policy reqs =
  let t = Trace.of_list ~n_users reqs in
  let costs = Option.value costs ~default:(uni_costs n_users) in
  Engine.run_logged ~k ~costs policy t

(* ------------------------------------------------------------------ *)
(* LRU vs FIFO                                                         *)
(* ------------------------------------------------------------------ *)

let test_lru_evicts_least_recent () =
  (* a b a c : LRU evicts b (a was touched more recently) *)
  let _, log = run P.Lru.policy [ p 0 0; p 0 1; p 0 0; p 0 2 ] in
  checkb "evicts b" true (victims_of log = [ p 0 1 ])

let test_fifo_ignores_hits () =
  (* a b a c : FIFO evicts a (inserted first) despite the recent hit *)
  let _, log = run P.Fifo.policy [ p 0 0; p 0 1; p 0 0; p 0 2 ] in
  checkb "evicts a" true (victims_of log = [ p 0 0 ])

let test_lru_cycle_thrashes () =
  (* classical worst case: cycle over k+1 pages -> all misses *)
  let t = Workloads.generate ~seed:1 ~length:40 (Workloads.lru_nemesis ~k:4) in
  let r = Engine.run ~k:4 ~costs:(uni_costs 1) P.Lru.policy t in
  checki "all miss" 40 (Engine.misses r);
  (* Belady on the same trace hits most of the time *)
  let b = Engine.run ~k:4 ~costs:(uni_costs 1) P.Belady.policy t in
  checkb "belady far fewer misses" true (Engine.misses b * 2 < Engine.misses r)

(* ------------------------------------------------------------------ *)
(* LFU                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lfu_keeps_frequent () =
  (* a a a b c : b has freq 1, a freq 3 -> evict b for c *)
  let _, log = run P.Lfu.policy [ p 0 0; p 0 0; p 0 0; p 0 1; p 0 2 ] in
  checkb "evicts infrequent" true (victims_of log = [ p 0 1 ])

let test_lfu_resets_on_eviction () =
  (* after eviction the page restarts at freq 1 *)
  let _, log =
    run P.Lfu.policy [ p 0 0; p 0 0; p 0 1; p 0 2; p 0 1; p 0 1; p 0 0; p 0 3 ]
  in
  (* a reaches freq 3; b is evicted for c, re-enters at freq 1 (reset)
     and only reaches 2, so the final insertion of d evicts b, not a *)
  List.iter
    (fun v -> checkb "never evicts hot a" false (Page.equal v (p 0 0)))
    (victims_of log);
  checkb "last eviction is the reset page" true
    (List.rev (victims_of log) |> List.hd = p 0 1)

(* ------------------------------------------------------------------ *)
(* LRU-K                                                               *)
(* ------------------------------------------------------------------ *)

let test_lru2_prefers_short_history () =
  (* a touched twice, b once; inserting c evicts b (no 2nd reference) *)
  let _, log = run P.Lru_k.lru_2 [ p 0 0; p 0 0; p 0 1; p 0 2 ] in
  checkb "evicts single-ref page" true (victims_of log = [ p 0 1 ])

let test_lru2_uses_kth_reference () =
  (* k=2 cache {a,b}; both referenced twice: a at times 0,1; b at 2,3.
     a's 2nd-most-recent (time 0) is older than b's (time 2): evict a. *)
  let _, log =
    run P.Lru_k.lru_2 [ p 0 0; p 0 0; p 0 1; p 0 1; p 0 2 ]
  in
  checkb "evicts older 2nd reference" true (victims_of log = [ p 0 0 ])

let test_lru2_differs_from_lru () =
  (* correlated double touches: LRU-2 sees through them *)
  let reqs = [ p 0 0; p 0 0; p 0 1; p 0 2; p 0 0 ] in
  let _, log2 = run P.Lru_k.lru_2 reqs in
  let _, log1 = run P.Lru.policy reqs in
  (* LRU evicts a (least recent at time of c); LRU-2 evicts b (1 ref) *)
  checkb "lru evicts a" true (List.hd (victims_of log1) = p 0 0);
  checkb "lru-2 evicts b" true (List.hd (victims_of log2) = p 0 1)

let test_lru_k_make_validation () =
  Alcotest.check_raises "k_refs >= 1"
    (Invalid_argument "Lru_k.make: k_refs must be >= 1") (fun () ->
      ignore (P.Lru_k.make ~k_refs:0))

(* ------------------------------------------------------------------ *)
(* Marking                                                             *)
(* ------------------------------------------------------------------ *)

let test_marking_protects_marked () =
  (* k=2: a b -> both marked; c starts a new phase, evicts an unmarked
     page; after c, marks = {c}; d evicts one of the now-unmarked a/b *)
  let _, log = run P.Marking.policy [ p 0 0; p 0 1; p 0 2; p 0 3 ] in
  let vs = victims_of log in
  checki "two evictions" 2 (List.length vs);
  checkb "never evicts just-marked c" false (List.mem (p 0 2) vs)

(* ------------------------------------------------------------------ *)
(* Landlord                                                            *)
(* ------------------------------------------------------------------ *)

let test_landlord_prefers_cheap_users () =
  (* user 0 weight 1, user 1 weight 10; cache {a0, b1}; inserting c0
     should evict the cheap user's page a0, not the expensive b1 *)
  let costs = [| Cf.linear ~slope:1.0 (); Cf.linear ~slope:10.0 () |] in
  let _, log =
    run ~n_users:2 ~costs:(Some costs) P.Landlord.static
      [ p 0 0; p 1 0; p 0 1 ]
  in
  checkb "evicts cheap page" true (victims_of log = [ p 0 0 ])

let test_landlord_credit_decay () =
  (* a b c d with k=2, equal weights.  Inserting c drains the uniform
     credit by the victim's credit (1): the survivor b is left at 0
     while fresh c holds 1, so inserting d evicts the drained b, not
     the fresher c — the defining GreedyDual decay behaviour. *)
  let _, log = run P.Landlord.static [ p 0 0; p 0 1; p 0 2; p 0 3 ] in
  checkb "decay order" true (victims_of log = [ p 0 0; p 0 1 ])

let test_landlord_adaptive_tracks_marginals () =
  (* convex user gets pricier after evictions: adaptive landlord starts
     protecting it; just assert it runs and differs from static on a
     workload where marginals diverge *)
  let costs = [| Cf.monomial ~beta:3.0 (); Cf.linear ~slope:1.0 () |] in
  let t =
    Workloads.generate ~seed:11 ~length:1500
      [
        Workloads.tenant (Workloads.Zipf { pages = 40; skew = 0.6 });
        Workloads.tenant (Workloads.Zipf { pages = 40; skew = 0.6 });
      ]
  in
  let st = Engine.run ~k:10 ~costs P.Landlord.static t in
  let ad = Engine.run ~k:10 ~costs P.Landlord.adaptive t in
  let cost r = Ccache_sim.Metrics.total_cost ~costs r in
  checkb "adaptive not worse on convex mix" true (cost ad <= cost st)

(* ------------------------------------------------------------------ *)
(* Belady / Convex-Belady                                              *)
(* ------------------------------------------------------------------ *)

let test_belady_optimal_miss_count () =
  (* compare against exact DP with uniform linear cost (DP minimises
     total misses then) on random small instances *)
  let rng = Ccache_util.Prng.create ~seed:99 in
  for _ = 1 to 10 do
    let len = 12 + Ccache_util.Prng.int rng 10 in
    let reqs =
      List.init len (fun _ -> p 0 (Ccache_util.Prng.int rng 5))
    in
    let t = Trace.of_list ~n_users:1 reqs in
    let costs = uni_costs 1 in
    let r = Engine.run ~k:3 ~costs P.Belady.policy t in
    let dp = Ccache_offline.Dp_opt.solve ~cache_size:3 ~costs t in
    checki "belady = DP misses" dp.Ccache_offline.Dp_opt.misses_per_user.(0)
      (Engine.misses r)
  done

let test_belady_requires_future () =
  checkb "needs future" true (Ccache_sim.Policy.needs_future P.Belady.policy);
  let t = Trace.of_list ~n_users:1 [ p 0 0 ] in
  (* engine builds the index automatically, so this must not raise *)
  let r = Engine.run ~k:1 ~costs:(uni_costs 1) P.Belady.policy t in
  checki "runs" 1 (Engine.misses r)

let test_convex_belady_prefers_cheap () =
  (* both pages dead after this point; the cheap user's page goes first *)
  let costs = [| Cf.linear ~slope:1.0 (); Cf.linear ~slope:100.0 () |] in
  let _, log =
    run ~n_users:2 ~costs:(Some costs) P.Convex_belady.policy
      [ p 0 0; p 1 0; p 0 1 ]
  in
  checkb "evicts cheap dead page" true (victims_of log = [ p 0 0 ])

(* ------------------------------------------------------------------ *)
(* Static partition                                                    *)
(* ------------------------------------------------------------------ *)

let test_static_partition_slice_sizes () =
  let sizes = P.Static_partition.slice_sizes ~k:10 ~n_users:3 ~weights:None in
  checki "total" 10 (Array.fold_left ( + ) 0 sizes);
  Array.iter (fun s -> checkb "everyone >= 1" true (s >= 1)) sizes;
  let weighted =
    P.Static_partition.slice_sizes ~k:10 ~n_users:2 ~weights:(Some [| 4.0; 1.0 |])
  in
  checkb "weights respected" true (weighted.(0) >= 7 && weighted.(1) >= 1)

let test_static_partition_isolation () =
  (* user 0 churns through many pages; user 1 parks two pages and never
     loses them even though user 0 is starved *)
  let reqs =
    [ p 1 0; p 1 1 ]
    @ List.init 20 (fun i -> p 0 (i mod 6))
    @ [ p 1 0; p 1 1 ]
  in
  let t = Trace.of_list ~n_users:2 reqs in
  let r =
    Engine.run ~k:4 ~costs:(uni_costs 2) P.Static_partition.equal_split t
  in
  (* user 1's final touches are hits: its slice was never stolen *)
  checki "user1 misses only cold" 2 r.Engine.misses_per_user.(1);
  (* user 0 suffered: its 6-page working set lives in 2 slots *)
  checkb "user0 thrashes" true (r.Engine.misses_per_user.(0) > 10)

let test_static_partition_early_eviction () =
  (* user 0's slice (2 of k=4) fills and evicts its own LRU while the
     global cache still has room *)
  let t = Trace.of_list ~n_users:2 [ p 0 0; p 0 1; p 0 2 ] in
  let r, log =
    Engine.run_logged ~k:4 ~costs:(uni_costs 2) P.Static_partition.equal_split t
  in
  checki "one early eviction" 1 (Engine.evictions r);
  checkb "evicted own page" true
    (match victims_of log with [ v ] -> Page.user v = 0 | _ -> false)

(* ------------------------------------------------------------------ *)
(* CLOCK                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_second_chance () =
  (* a b a c : a's reference bit is set by the hit, so the sweep skips
     a (clearing its bit) and evicts b *)
  let _, log = run Ccache_policies.Clock.policy [ p 0 0; p 0 1; p 0 0; p 0 2 ] in
  checkb "second chance protects a" true (victims_of log = [ p 0 1 ])

let test_clock_degrades_to_fifo_without_hits () =
  (* no hits: all bits stay clear, CLOCK evicts in insertion order *)
  let _, log = run Ccache_policies.Clock.policy [ p 0 0; p 0 1; p 0 2; p 0 3 ] in
  checkb "fifo order" true (victims_of log = [ p 0 0; p 0 1 ])

let test_clock_two_lap_termination () =
  (* all pages referenced: the sweep clears every bit in one lap and
     evicts the hand's next page in the second *)
  let _, log =
    run Ccache_policies.Clock.policy
      [ p 0 0; p 0 1; p 0 0; p 0 1; p 0 2 ]
  in
  checkb "evicts oldest after clearing" true (victims_of log = [ p 0 0 ])

(* ------------------------------------------------------------------ *)
(* 2Q                                                                  *)
(* ------------------------------------------------------------------ *)

let test_2q_scan_resistance () =
  (* hot pages get re-referenced after a ghost interval and live in Am;
     a long one-touch scan churns only A1in *)
  let hot = [ p 0 0; p 0 1 ] in
  let reqs =
    hot
    (* evict them out of A1in so their identities land in A1out *)
    @ List.init 6 (fun i -> p 0 (10 + i))
    (* re-touch: promoted to Am *)
    @ hot
    (* scan traffic *)
    @ List.init 12 (fun i -> p 0 (100 + i))
    (* hot pages must still be resident *)
    @ hot
  in
  let t = Trace.of_list ~n_users:1 reqs in
  let r = Engine.run ~k:6 ~costs:(uni_costs 1) Ccache_policies.Two_q.policy t in
  (* the final two hot touches hit *)
  checkb "hot pages survive the scan" true (r.Engine.hits >= 2)

let test_2q_beats_lru_on_scan_mix () =
  let specs =
    [
      Workloads.tenant ~weight:1.0 (Workloads.Hot_cold { pages = 40; hot_pages = 6; hot_prob = 0.9 });
      Workloads.tenant ~weight:1.0 (Workloads.Sequential_scan { pages = 200; passes = 8 });
    ]
  in
  let t = Workloads.generate ~seed:31 ~length:4000 specs in
  let costs = uni_costs 2 in
  let q = Engine.run ~k:16 ~costs Ccache_policies.Two_q.policy t in
  let l = Engine.run ~k:16 ~costs P.Lru.policy t in
  checkb "2q fewer misses than lru under scans" true
    (Engine.misses q < Engine.misses l)

(* ------------------------------------------------------------------ *)
(* ARC                                                                 *)
(* ------------------------------------------------------------------ *)

let test_arc_promotes_on_second_touch () =
  (* page touched twice lands in T2 and outlives one-touch traffic *)
  let reqs = [ p 0 0; p 0 0; p 0 1; p 0 2; p 0 3; p 0 0 ] in
  let t = Trace.of_list ~n_users:1 reqs in
  let r = Engine.run ~k:2 ~costs:(uni_costs 1) Ccache_policies.Arc.policy t in
  (* first touch of 0 misses, second hits; final touch of 0 hits if ARC
     kept it through the scan (T2 protection) *)
  checkb "frequency protection" true (r.Engine.hits >= 2)

let test_arc_ghost_adaptation_runs () =
  (* mixed recency/frequency traffic exercises both ghost lists; this
     is a smoke test that the adaptive machinery stays consistent over
     a long run (the engine validates every eviction) *)
  let specs =
    [
      Workloads.tenant (Workloads.Zipf { pages = 60; skew = 1.0 });
      Workloads.tenant (Workloads.Sequential_scan { pages = 120; passes = 6 });
    ]
  in
  let t = Workloads.generate ~seed:77 ~length:6000 specs in
  let costs = uni_costs 2 in
  let r = Engine.run ~k:24 ~costs Ccache_policies.Arc.policy t in
  checkb "ran to completion" true (r.Engine.hits + Engine.misses r = 6000);
  (* ARC should not be worse than FIFO on this mix *)
  let f = Engine.run ~k:24 ~costs P.Fifo.policy t in
  checkb "arc <= fifo misses" true (Engine.misses r <= Engine.misses f)

let test_arc_flush_clean () =
  let t =
    Workloads.generate ~seed:5 ~length:500
      (Workloads.symmetric_zipf ~tenants:2 ~pages_per_tenant:20 ~skew:0.8)
  in
  let r =
    Engine.run ~flush:true ~k:8 ~costs:(uni_costs 2) Ccache_policies.Arc.policy t
  in
  checkb "flush empties" true (r.Engine.final_cache = []);
  checkb "evictions = misses" true
    (r.Engine.misses_per_user = r.Engine.evictions_per_user)

(* ------------------------------------------------------------------ *)
(* Randomized marking                                                  *)
(* ------------------------------------------------------------------ *)

let test_randomized_marking_protects_marked () =
  (* same phase structure as deterministic marking: freshly marked
     pages are never victims within the phase *)
  let _, log =
    run P.Randomized_marking.policy [ p 0 0; p 0 1; p 0 2; p 0 3 ]
  in
  let vs = victims_of log in
  checki "two evictions" 2 (List.length vs);
  checkb "never evicts just-marked c" false (List.mem (p 0 2) vs)

let test_randomized_marking_seeded () =
  let t =
    Workloads.generate ~seed:8 ~length:600
      (Workloads.symmetric_zipf ~tenants:2 ~pages_per_tenant:25 ~skew:0.6)
  in
  let costs = uni_costs 2 in
  let a = Engine.run ~k:8 ~costs P.Randomized_marking.policy t in
  let b = Engine.run ~k:8 ~costs P.Randomized_marking.policy t in
  checkb "same seed, same run" true
    (a.Engine.misses_per_user = b.Engine.misses_per_user)

(* ------------------------------------------------------------------ *)
(* Random + registry                                                   *)
(* ------------------------------------------------------------------ *)

let test_random_deterministic_by_seed () =
  let t =
    Workloads.generate ~seed:2 ~length:500
      (Workloads.symmetric_zipf ~tenants:2 ~pages_per_tenant:30 ~skew:0.5)
  in
  let costs = uni_costs 2 in
  let a = Engine.run ~k:8 ~costs P.Random_policy.policy t in
  let b = Engine.run ~k:8 ~costs P.Random_policy.policy t in
  checkb "same seed same run" true
    (a.Engine.misses_per_user = b.Engine.misses_per_user)

let test_registry () =
  let names = P.Registry.names in
  checki "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  checkb "find lru" true (P.Registry.find "lru" <> None);
  checkb "find missing" true (P.Registry.find "nope" = None);
  checki "online + offline = all" (List.length P.Registry.all)
    (List.length P.Registry.online + List.length P.Registry.offline)

let () =
  Alcotest.run "ccache_policies"
    [
      ( "lru/fifo",
        [
          Alcotest.test_case "lru least recent" `Quick test_lru_evicts_least_recent;
          Alcotest.test_case "fifo ignores hits" `Quick test_fifo_ignores_hits;
          Alcotest.test_case "lru cycle thrash" `Quick test_lru_cycle_thrashes;
        ] );
      ( "lfu",
        [
          Alcotest.test_case "keeps frequent" `Quick test_lfu_keeps_frequent;
          Alcotest.test_case "reset on eviction" `Quick test_lfu_resets_on_eviction;
        ] );
      ( "lru-k",
        [
          Alcotest.test_case "short history first" `Quick test_lru2_prefers_short_history;
          Alcotest.test_case "kth reference" `Quick test_lru2_uses_kth_reference;
          Alcotest.test_case "differs from lru" `Quick test_lru2_differs_from_lru;
          Alcotest.test_case "validation" `Quick test_lru_k_make_validation;
        ] );
      ("marking", [ Alcotest.test_case "protects marked" `Quick test_marking_protects_marked ]);
      ( "landlord",
        [
          Alcotest.test_case "prefers cheap users" `Quick test_landlord_prefers_cheap_users;
          Alcotest.test_case "credit decay" `Quick test_landlord_credit_decay;
          Alcotest.test_case "adaptive marginals" `Quick test_landlord_adaptive_tracks_marginals;
        ] );
      ( "belady",
        [
          Alcotest.test_case "optimal miss count" `Quick test_belady_optimal_miss_count;
          Alcotest.test_case "requires future" `Quick test_belady_requires_future;
          Alcotest.test_case "convex prefers cheap" `Quick test_convex_belady_prefers_cheap;
        ] );
      ( "static partition",
        [
          Alcotest.test_case "slice sizes" `Quick test_static_partition_slice_sizes;
          Alcotest.test_case "isolation" `Quick test_static_partition_isolation;
          Alcotest.test_case "early eviction" `Quick test_static_partition_early_eviction;
        ] );
      ( "clock",
        [
          Alcotest.test_case "second chance" `Quick test_clock_second_chance;
          Alcotest.test_case "fifo without hits" `Quick test_clock_degrades_to_fifo_without_hits;
          Alcotest.test_case "two-lap termination" `Quick test_clock_two_lap_termination;
        ] );
      ( "2q",
        [
          Alcotest.test_case "scan resistance" `Quick test_2q_scan_resistance;
          Alcotest.test_case "beats lru on scans" `Quick test_2q_beats_lru_on_scan_mix;
        ] );
      ( "arc",
        [
          Alcotest.test_case "second-touch promotion" `Quick test_arc_promotes_on_second_touch;
          Alcotest.test_case "ghost adaptation" `Quick test_arc_ghost_adaptation_runs;
          Alcotest.test_case "flush clean" `Quick test_arc_flush_clean;
        ] );
      ( "randomized-marking",
        [
          Alcotest.test_case "protects marked" `Quick test_randomized_marking_protects_marked;
          Alcotest.test_case "seeded" `Quick test_randomized_marking_seeded;
        ] );
      ( "misc",
        [
          Alcotest.test_case "random determinism" `Quick test_random_deterministic_by_seed;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
    ]
