(* Tests for ccache_dbsim: the B-tree storage model, query
   compilation, and the query-level workload generator. *)

module S = Ccache_dbsim.Schema
module Q = Ccache_dbsim.Query
module WG = Ccache_dbsim.Workload_gen
open Ccache_trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let test_schema_depth () =
  checki "1 leaf" 1 (S.index_depth (S.table_spec ~fanout:4 ~data_pages:1 ()));
  checki "within one fanout" 1 (S.index_depth (S.table_spec ~fanout:4 ~data_pages:4 ()));
  checki "two levels" 2 (S.index_depth (S.table_spec ~fanout:4 ~data_pages:5 ()));
  checki "three levels" 3 (S.index_depth (S.table_spec ~fanout:4 ~data_pages:17 ()));
  (* 64-fanout over 80 pages: depth 2 (root + 1 internal level) *)
  checki "realistic" 2 (S.index_depth (S.table_spec ~fanout:64 ~data_pages:80 ()))

let test_schema_level_sizes () =
  let spec = S.table_spec ~fanout:4 ~data_pages:17 () in
  (match S.index_level_sizes spec with
  | [ root; mid; leaf_dir ] ->
      checki "root" 1 root;
      (* ceil(17/16)=2, ceil(17/4)=5 *)
      checki "mid" 2 mid;
      checki "leaf directory" 5 leaf_dir
  | _ -> Alcotest.fail "expected three levels");
  checki "index pages" 8 (S.index_pages spec);
  checki "total" 25 (S.total_pages spec)

let test_schema_layout_disjoint () =
  let schema =
    S.create
      [ S.table_spec ~fanout:4 ~data_pages:10 (); S.table_spec ~fanout:4 ~data_pages:6 () ]
  in
  let t0 = S.table schema 0 and t1 = S.table schema 1 in
  checki "t0 starts at 0" 0 t0.S.base;
  checki "t1 starts after t0" (S.total_pages t0.S.spec) t1.S.base;
  checki "footprint" (S.total_pages t0.S.spec + S.total_pages t1.S.spec)
    (S.footprint schema);
  (* data pages of t0 never collide with any page of t1 *)
  for i = 0 to 9 do
    checkb "t0 data below t1 base" true (S.data_page t0 i < t1.S.base)
  done

let test_schema_validation () =
  Alcotest.check_raises "no tables" (Invalid_argument "Schema.create: no tables")
    (fun () -> ignore (S.create []));
  Alcotest.check_raises "bad fanout"
    (Invalid_argument "Schema.table_spec: fanout must be >= 2") (fun () ->
      ignore (S.table_spec ~fanout:1 ~data_pages:5 ()));
  Alcotest.check_raises "leaf range"
    (Invalid_argument "Schema.data_page: leaf out of range") (fun () ->
      let schema = S.create [ S.table_spec ~fanout:4 ~data_pages:3 () ] in
      ignore (S.data_page (S.table schema 0) 3))

(* ------------------------------------------------------------------ *)
(* Query compilation                                                   *)
(* ------------------------------------------------------------------ *)

let schema_17 () = S.create [ S.table_spec ~fanout:4 ~data_pages:17 () ]

let test_point_lookup_shape () =
  let schema = schema_17 () in
  let pages = Q.compile schema (Q.Point_lookup { table = 0 }) ~leaf_rank:7 in
  (* depth 3 descent + 1 data page *)
  checki "4 pages" 4 (List.length pages);
  (* first page is always the root (page 0 of the table) *)
  checki "root first" 0 (List.hd pages);
  (* last page is the leaf *)
  let tbl = S.table schema 0 in
  checki "leaf last" (S.data_page tbl 7) (List.nth pages 3)

let test_descent_shares_root () =
  let schema = schema_17 () in
  let d1 = Q.descent schema ~table:0 ~leaf:0 in
  let d2 = Q.descent schema ~table:0 ~leaf:16 in
  checkb "same root" true (List.hd d1 = List.hd d2);
  checkb "different lower levels" true (d1 <> d2)

let test_range_scan_sequential () =
  let schema = schema_17 () in
  let tbl = S.table schema 0 in
  let pages = Q.compile schema (Q.Range_scan { table = 0; length = 5 }) ~leaf_rank:3 in
  (* last 5 pages are consecutive leaves from 3 *)
  let leaves = List.filteri (fun i _ -> i >= List.length pages - 5) pages in
  checkb "consecutive" true
    (leaves = List.init 5 (fun i -> S.data_page tbl (3 + i)))

let test_range_scan_clamps_to_table_end () =
  let schema = schema_17 () in
  let pages = Q.compile schema (Q.Range_scan { table = 0; length = 5 }) ~leaf_rank:16 in
  (* start shifts back so the scan fits: leaves 12..16 *)
  let tbl = S.table schema 0 in
  checkb "ends at last leaf" true
    (List.rev pages |> List.hd = S.data_page tbl 16)

let test_full_scan_covers_all_leaves () =
  let schema = schema_17 () in
  let pages = Q.compile schema (Q.Full_scan { table = 0 }) ~leaf_rank:0 in
  let tbl = S.table schema 0 in
  let leaves = List.filter (fun p -> p >= tbl.S.base + S.index_pages tbl.S.spec) pages in
  checki "all 17 leaves" 17 (List.length leaves)

let test_leaf_rank_clamped () =
  let schema = schema_17 () in
  (* out-of-range and negative ranks are wrapped, never raise *)
  List.iter
    (fun rank ->
      checkb "compiles" true
        (Q.compile schema (Q.Point_lookup { table = 0 }) ~leaf_rank:rank <> []))
    [ -1; 17; 1000; min_int + 17 ]

(* ------------------------------------------------------------------ *)
(* Workload generation                                                 *)
(* ------------------------------------------------------------------ *)

let test_generate_deterministic_and_valid () =
  let profiles = WG.oltp_reporting ~scale:1 in
  let t1, s1 = WG.generate ~seed:9 ~queries:500 profiles in
  let t2, _ = WG.generate ~seed:9 ~queries:500 profiles in
  checkb "deterministic" true (Trace.requests t1 = Trace.requests t2);
  checki "two tenants" 2 (Trace.n_users t1);
  checki "query conservation" 500
    (Array.fold_left ( + ) 0 s1.WG.queries_per_tenant);
  checki "page counts match trace" (Trace.length t1)
    (Array.fold_left ( + ) 0 s1.WG.pages_per_tenant);
  (* every page id within the owning tenant's schema footprint *)
  let fps = List.map (fun p -> S.footprint p.WG.schema) profiles in
  Array.iter
    (fun q ->
      let fp = List.nth fps (Page.user q) in
      checkb "page within footprint" true (Page.id q < fp))
    (Trace.requests t1)

let test_generate_hot_roots () =
  (* index roots are touched by every query of their table: they must
     dominate the page-frequency distribution *)
  let profiles = WG.oltp_reporting ~scale:1 in
  let trace, _ = WG.generate ~seed:10 ~queries:800 profiles in
  let counts = Page.Tbl.create 256 in
  Array.iter
    (fun q ->
      Page.Tbl.replace counts q
        (1 + Option.value (Page.Tbl.find_opt counts q) ~default:0))
    (Trace.requests trace);
  (* tenant 0's table-0 root is page 0 *)
  let root_count =
    Option.value (Page.Tbl.find_opt counts (Page.make ~user:0 ~id:0)) ~default:0
  in
  let mean =
    float_of_int (Trace.length trace) /. float_of_int (Page.Tbl.length counts)
  in
  checkb "root much hotter than average" true (float_of_int root_count > 5.0 *. mean)

let test_generate_validation () =
  Alcotest.check_raises "no tenants"
    (Invalid_argument "Workload_gen.generate: no tenants") (fun () ->
      ignore (WG.generate ~seed:1 ~queries:10 []));
  let schema = S.create [ S.table_spec ~data_pages:4 () ] in
  Alcotest.check_raises "unknown table"
    (Invalid_argument "Workload_gen.profile: query references unknown table")
    (fun () ->
      ignore (WG.profile ~schema [ (1.0, Q.Point_lookup { table = 3 }) ]))

let test_buffer_pool_behaviour () =
  (* sanity: on the OLTP+reporting mix, LRU caches the hot index/leaf
     set and achieves a decent hit ratio at modest k *)
  let trace, _ = WG.generate ~seed:11 ~queries:2500 (WG.oltp_reporting ~scale:1) in
  let costs = Array.init 2 (fun _ -> Ccache_cost.Cost_function.linear ~slope:1.0 ()) in
  let r = Ccache_sim.Engine.run ~k:64 ~costs Ccache_policies.Lru.policy trace in
  checkb "hit ratio above 50%" true
    (float_of_int r.Ccache_sim.Engine.hits
    > 0.5 *. float_of_int (Trace.length trace))

let () =
  Alcotest.run "ccache_dbsim"
    [
      ( "schema",
        [
          Alcotest.test_case "index depth" `Quick test_schema_depth;
          Alcotest.test_case "level sizes" `Quick test_schema_level_sizes;
          Alcotest.test_case "disjoint layout" `Quick test_schema_layout_disjoint;
          Alcotest.test_case "validation" `Quick test_schema_validation;
        ] );
      ( "query",
        [
          Alcotest.test_case "point lookup shape" `Quick test_point_lookup_shape;
          Alcotest.test_case "descent shares root" `Quick test_descent_shares_root;
          Alcotest.test_case "range scan sequential" `Quick test_range_scan_sequential;
          Alcotest.test_case "range scan clamps" `Quick test_range_scan_clamps_to_table_end;
          Alcotest.test_case "full scan" `Quick test_full_scan_covers_all_leaves;
          Alcotest.test_case "rank clamping" `Quick test_leaf_rank_clamped;
        ] );
      ( "workload_gen",
        [
          Alcotest.test_case "deterministic + valid" `Quick test_generate_deterministic_and_valid;
          Alcotest.test_case "hot roots" `Quick test_generate_hot_roots;
          Alcotest.test_case "validation" `Quick test_generate_validation;
          Alcotest.test_case "buffer-pool behaviour" `Quick test_buffer_pool_behaviour;
        ] );
    ]
