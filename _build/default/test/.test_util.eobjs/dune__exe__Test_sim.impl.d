test/test_sim.ml: Alcotest Array Ccache_cost Ccache_policies Ccache_sim Ccache_trace Ccache_util List Page QCheck QCheck_alcotest String Trace Workloads
