test/test_util.ml: Alcotest Array Ccache_util Float Hashtbl List QCheck QCheck_alcotest String
