test/test_trace.ml: Alcotest Array Ccache_trace Ccache_util Filename Float Fun List Page QCheck QCheck_alcotest Sys Trace Trace_io Trace_stats Workloads Zipf
