test/test_policies.ml: Alcotest Array Ccache_cost Ccache_offline Ccache_policies Ccache_sim Ccache_trace Ccache_util List Option Page Trace Workloads
