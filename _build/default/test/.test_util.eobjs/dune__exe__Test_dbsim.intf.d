test/test_dbsim.mli:
