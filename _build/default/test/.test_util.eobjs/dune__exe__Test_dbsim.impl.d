test/test_dbsim.ml: Alcotest Array Ccache_cost Ccache_dbsim Ccache_policies Ccache_sim Ccache_trace List Option Page Trace
