test/test_multipool.ml: Alcotest Array Ccache_core Ccache_cost Ccache_multipool Ccache_policies Ccache_sim Ccache_trace List Printf Workloads
