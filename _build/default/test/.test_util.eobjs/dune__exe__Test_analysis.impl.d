test/test_analysis.ml: Alcotest Array Ccache_analysis Ccache_cost Ccache_offline Ccache_trace Float List Option String
