test/test_lb.ml: Alcotest Array Ccache_core Ccache_cost Ccache_lb Ccache_policies Ccache_sim Ccache_trace List Page Printf Trace
