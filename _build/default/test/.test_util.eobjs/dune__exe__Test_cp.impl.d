test/test_cp.ml: Alcotest Array Ccache_cost Ccache_cp Ccache_offline Ccache_policies Ccache_sim Ccache_trace Ccache_util Float Gen List Page Printf QCheck QCheck_alcotest Trace Workloads
