test/test_multipool.mli:
