test/test_cost.ml: Alcotest Array Ccache_cost Float Gen List Printf QCheck QCheck_alcotest
