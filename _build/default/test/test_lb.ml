(* Tests for ccache_lb: the Theorem 1.4 adversary and driver. *)

open Ccache_trace
module Adv = Ccache_lb.Adversary
module T4 = Ccache_lb.Theorem4
module Cf = Ccache_cost.Cost_function

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let mono_costs ~beta n = Array.init n (fun _ -> Cf.monomial ~beta ())

let test_adversary_structure () =
  let n = 6 in
  let costs = mono_costs ~beta:2.0 n in
  let adv = Adv.drive ~n_users:n ~steps:100 ~costs Ccache_policies.Lru.policy in
  checki "k = n-1" (n - 1) adv.Adv.k;
  checki "trace length = warmup + steps" (n - 1 + 100) (Trace.length adv.Adv.trace);
  (* one page per user *)
  List.iter
    (fun q -> checki "page id 0" 0 (Page.id q))
    (Trace.distinct_pages adv.Adv.trace);
  (* every adversarial request is a miss: total misses = T *)
  let total = Array.fold_left ( + ) 0 adv.Adv.online_misses in
  checki "all requests miss" (Trace.length adv.Adv.trace) total

let test_adversary_forces_all_policies () =
  let n = 5 in
  let costs = mono_costs ~beta:1.0 n in
  List.iter
    (fun policy ->
      let adv = Adv.drive ~n_users:n ~steps:60 ~costs policy in
      let total = Array.fold_left ( + ) 0 adv.Adv.online_misses in
      checki
        (Ccache_sim.Policy.name policy ^ " all miss")
        (Trace.length adv.Adv.trace) total)
    [
      Ccache_policies.Lru.policy;
      Ccache_policies.Fifo.policy;
      Ccache_policies.Marking.policy;
      Ccache_policies.Landlord.adaptive;
      Ccache_core.Alg_discrete.policy;
      Ccache_core.Alg_fast.policy;
    ]

let test_adversary_rejects_offline () =
  let costs = mono_costs ~beta:1.0 4 in
  Alcotest.check_raises "offline rejected"
    (Invalid_argument "Adversary.drive: offline policies cannot be driven adaptively")
    (fun () ->
      ignore (Adv.drive ~n_users:4 ~steps:10 ~costs Ccache_policies.Belady.policy))

let test_adversary_validation () =
  let costs = mono_costs ~beta:1.0 1 in
  Alcotest.check_raises "needs 2 users"
    (Invalid_argument "Adversary.drive: need at least 2 users") (fun () ->
      ignore (Adv.drive ~n_users:1 ~steps:10 ~costs Ccache_policies.Lru.policy))

let test_theorem4_ratio_exceeds_one () =
  let point = T4.measure ~steps_per_user:100 ~n_users:8 ~beta:2.0 Ccache_policies.Lru.policy in
  checkb "online pricier than offline" true (point.T4.ratio > 1.0);
  checkb "offline positive" true (point.T4.offline_cost > 0.0);
  checki "k" 7 point.T4.k

let test_theorem4_ratio_beats_theory_curve () =
  (* the paper: ratio >= (k/4)^beta asymptotically; with a decent T the
     measured ratio should already clear the curve *)
  List.iter
    (fun beta ->
      let point =
        T4.measure ~steps_per_user:300 ~n_users:16 ~beta Ccache_policies.Lru.policy
      in
      checkb
        (Printf.sprintf "beta=%g clears (k/4)^beta" beta)
        true
        (point.T4.ratio >= point.T4.theory_curve))
    [ 1.0; 2.0 ]

let test_theorem4_slope_tracks_beta () =
  (* log-log slope of ratio vs k should be near beta (loose tolerance:
     finite-T effects) *)
  let _, slope1 =
    T4.sweep ~steps_per_user:200 ~ns:[ 4; 8; 16; 32 ] ~beta:1.0
      Ccache_policies.Lru.policy
  in
  let _, slope2 =
    T4.sweep ~steps_per_user:200 ~ns:[ 4; 8; 16; 32 ] ~beta:2.0
      Ccache_policies.Lru.policy
  in
  checkb "slope grows with beta" true (slope2 > slope1 +. 0.5);
  checkb "beta=1 slope ~1" true (slope1 > 0.5 && slope1 < 1.6);
  checkb "beta=2 slope ~2" true (slope2 > 1.4 && slope2 < 2.8)

let test_theorem4_cost_aware_not_exempt () =
  (* Theorem 1.4 binds every deterministic algorithm, including the
     paper's own *)
  let point =
    T4.measure ~steps_per_user:200 ~n_users:12 ~beta:2.0 Ccache_core.Alg_discrete.policy
  in
  checkb "alg-discrete also forced" true (point.T4.ratio >= point.T4.theory_curve)

let () =
  Alcotest.run "ccache_lb"
    [
      ( "adversary",
        [
          Alcotest.test_case "structure" `Quick test_adversary_structure;
          Alcotest.test_case "forces all policies" `Quick test_adversary_forces_all_policies;
          Alcotest.test_case "rejects offline" `Quick test_adversary_rejects_offline;
          Alcotest.test_case "validation" `Quick test_adversary_validation;
        ] );
      ( "theorem4",
        [
          Alcotest.test_case "ratio > 1" `Quick test_theorem4_ratio_exceeds_one;
          Alcotest.test_case "beats theory curve" `Quick test_theorem4_ratio_beats_theory_curve;
          Alcotest.test_case "slope tracks beta" `Quick test_theorem4_slope_tracks_beta;
          Alcotest.test_case "cost-aware not exempt" `Quick test_theorem4_cost_aware_not_exempt;
        ] );
    ]
