(* Tests for ccache_offline: exact DP, the Section 4 batch comparator,
   local search and the best-of wrapper. *)

open Ccache_trace
module Dp = Ccache_offline.Dp_opt
module Batch = Ccache_offline.Batch_offline
module Ls = Ccache_offline.Local_search
module Best = Ccache_offline.Best_of
module Cf = Ccache_cost.Cost_function
module Engine = Ccache_sim.Engine
module Prng = Ccache_util.Prng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let p u i = Page.make ~user:u ~id:i
let uni_costs n = Array.init n (fun _ -> Cf.linear ~slope:1.0 ())
let mono_costs n = Array.init n (fun _ -> Cf.monomial ~beta:2.0 ())

(* ------------------------------------------------------------------ *)
(* DP exact optimum                                                    *)
(* ------------------------------------------------------------------ *)

let test_dp_trivial_fits_in_cache () =
  (* 3 distinct pages, k=3: only compulsory misses *)
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1; p 0 2; p 0 0; p 0 1 ] in
  let r = Dp.solve ~cache_size:3 ~costs:(uni_costs 1) t in
  checkf "cost" 3.0 r.Dp.cost;
  checki "misses" 3 r.Dp.misses_per_user.(0)

let test_dp_classic_belady_example () =
  (* a b c a b c with k=2: OPT = 4 misses (keep one of the repeats) *)
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1; p 0 2; p 0 0; p 0 1; p 0 2 ] in
  let r = Dp.solve ~cache_size:2 ~costs:(uni_costs 1) t in
  checkf "cost" 4.0 r.Dp.cost

let test_dp_convex_prefers_balance () =
  (* two users, x^2 costs: spreading 4 misses 2/2 costs 8, while 4/0
     costs 16.  Construct a trace where cost-blind OPT-misses would
     dump all misses on one user but convex OPT balances. *)
  let reqs =
    [ p 0 0; p 1 0; p 0 1; p 1 1; p 0 0; p 1 0; p 0 1; p 1 1 ]
  in
  let t = Trace.of_list ~n_users:2 reqs in
  let r = Dp.solve ~cache_size:2 ~costs:(mono_costs 2) t in
  (* 4 distinct pages in 2 slots: at least 4 cold + some repeats missed;
     whatever the count, the optimal vector must be balanced within 1 *)
  let a = r.Dp.misses_per_user.(0) and b = r.Dp.misses_per_user.(1) in
  checkb "balanced misses" true (abs (a - b) <= 1)

let test_dp_matches_brute_force_small () =
  (* random tiny instances: DP vs exhaustive search over victim choices *)
  let rng = Prng.create ~seed:5 in
  for _ = 1 to 5 do
    let len = 8 + Prng.int rng 4 in
    let reqs = List.init len (fun _ -> p 0 (Prng.int rng 4)) in
    let t = Trace.of_list ~n_users:1 reqs in
    let costs = uni_costs 1 in
    let dp = Dp.solve ~cache_size:2 ~costs t in
    (* brute force: recursive over all eviction choices *)
    let arr = Array.of_list reqs in
    let rec brute pos cache misses =
      if pos = Array.length arr then misses
      else
        let q = arr.(pos) in
        if List.exists (Page.equal q) cache then brute (pos + 1) cache misses
        else if List.length cache < 2 then brute (pos + 1) (q :: cache) (misses + 1)
        else
          List.fold_left
            (fun best victim ->
              let cache' = q :: List.filter (fun r -> not (Page.equal r victim)) cache in
              Stdlib.min best (brute (pos + 1) cache' (misses + 1)))
            max_int cache
    in
    let expected = brute 0 [] 0 in
    checki "dp = brute force" expected (int_of_float dp.Dp.cost)
  done

let test_dp_pinned () =
  (* pin page b: with k=1... use k=2, pages a b c, b pinned once cached.
     requests: a b c a — c must evict a (b pinned), so a misses twice *)
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1; p 0 2; p 0 0 ] in
  let costs = uni_costs 1 in
  let unpinned = Dp.solve ~cache_size:2 ~costs t in
  let pinned =
    Dp.solve ~pinned:(fun q -> Page.id q = 1) ~cache_size:2 ~costs t
  in
  checkf "unpinned keeps a" 3.0 unpinned.Dp.cost;
  checkf "pinning b forces extra miss" 4.0 pinned.Dp.cost

let test_dp_too_large_guard () =
  let t =
    Workloads.generate ~seed:1 ~length:200
      (Workloads.symmetric_zipf ~tenants:1 ~pages_per_tenant:70 ~skew:0.2)
  in
  checkb "raises Too_large" true
    (match Dp.solve ~cache_size:4 ~costs:(uni_costs 1) t with
    | exception Dp.Too_large _ -> true
    | _ -> false)

let dp_lower_bounds_policies =
  QCheck.Test.make ~name:"DP lower-bounds every policy" ~count:20
    QCheck.(pair (int_range 2 4) small_nat)
    (fun (k, seed) ->
      let rng = Prng.create ~seed:(seed + 3) in
      let reqs =
        List.init 20 (fun _ ->
            Page.make ~user:(Prng.int rng 2) ~id:(Prng.int rng 3))
      in
      let t = Trace.of_list ~n_users:2 reqs in
      let costs = mono_costs 2 in
      let dp = Dp.solve ~cache_size:k ~costs t in
      List.for_all
        (fun pol ->
          let r = Engine.run ~k ~costs pol t in
          Ccache_sim.Metrics.total_cost ~costs r >= dp.Dp.cost -. 1e-9)
        [
          Ccache_policies.Lru.policy;
          Ccache_policies.Belady.policy;
          Ccache_policies.Convex_belady.policy;
          Ccache_core.Alg_discrete.policy;
        ])

(* ------------------------------------------------------------------ *)
(* Batch offline (Section 4)                                           *)
(* ------------------------------------------------------------------ *)

let test_batch_shape_validation () =
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1 ] in
  Alcotest.check_raises "multi-page user rejected"
    (Invalid_argument "Batch_offline.run: expects one page per user (id 0)")
    (fun () -> ignore (Batch.run ~k:1 t))

let test_batch_on_adversarial_instance () =
  (* drive the adversary against LRU, then run the batch comparator *)
  let n = 8 in
  let costs = Array.init n (fun _ -> Cf.monomial ~beta:2.0 ()) in
  let adv =
    Ccache_lb.Adversary.drive ~n_users:n ~steps:400 ~costs Ccache_policies.Lru.policy
  in
  let b = Batch.run ~k:adv.Ccache_lb.Adversary.k adv.Ccache_lb.Adversary.trace in
  (* at most one eviction per batch *)
  let total_evictions = Array.fold_left ( + ) 0 b.Batch.evictions_per_user in
  checkb "<= one eviction per batch" true (total_evictions <= b.Batch.batches);
  (* offline far cheaper than online *)
  let online = Ccache_lb.Theorem4.cost_of ~costs adv.Ccache_lb.Adversary.online_misses in
  let offline = Batch.cost ~costs b in
  checkb "offline much cheaper" true (offline *. 2.0 < online);
  (* evictions spread evenly: max within factor ~3 of mean *)
  let nonzero = Array.to_list b.Batch.evictions_per_user in
  let mx = List.fold_left Stdlib.max 0 nonzero in
  let mean = float_of_int total_evictions /. float_of_int n in
  checkb "evictions spread" true (float_of_int mx <= (3.0 *. mean) +. 2.0)

let test_batch_misses_at_least_cold () =
  let n = 6 in
  let costs = Array.init n (fun _ -> Cf.linear ~slope:1.0 ()) in
  let adv =
    Ccache_lb.Adversary.drive ~n_users:n ~steps:100 ~costs Ccache_policies.Fifo.policy
  in
  let b = Batch.run ~k:(n - 1) adv.Ccache_lb.Adversary.trace in
  (* every user requested at least once must miss at least once *)
  Array.iteri
    (fun u m ->
      let requested =
        Array.exists (fun q -> Page.user q = u) (Trace.requests adv.Ccache_lb.Adversary.trace)
      in
      if requested then checkb (Printf.sprintf "user %d cold miss" u) true (m >= 1))
    b.Batch.misses_per_user

(* ------------------------------------------------------------------ *)
(* Local search and Best_of                                            *)
(* ------------------------------------------------------------------ *)

let test_local_search_never_worse () =
  let t =
    Workloads.generate ~seed:21 ~length:400
      (Workloads.symmetric_zipf ~tenants:2 ~pages_per_tenant:20 ~skew:0.8)
  in
  let costs = mono_costs 2 in
  let seed_run =
    Engine.run ~k:6 ~costs Ccache_policies.Convex_belady.policy t
  in
  let seed_cost = Ccache_sim.Metrics.total_cost ~costs seed_run in
  let ls = Ls.improve ~rounds:30 ~cache_size:6 ~costs t in
  checkb "not worse than seed" true (ls.Ls.cost <= seed_cost +. 1e-9);
  checkb "evaluations counted" true (ls.Ls.evaluations > 0)

let test_local_search_zero_rounds () =
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1; p 0 0 ] in
  let ls = Ls.improve ~rounds:0 ~cache_size:1 ~costs:(uni_costs 1) t in
  checki "no evaluations" 0 ls.Ls.evaluations;
  checkb "still returns seed schedule" true (ls.Ls.cost > 0.0)

let test_best_of_picks_minimum () =
  let t =
    Workloads.generate ~seed:22 ~length:300
      (Workloads.symmetric_zipf ~tenants:2 ~pages_per_tenant:15 ~skew:0.9)
  in
  let costs = mono_costs 2 in
  let b = Best.compute ~local_search_rounds:10 ~cache_size:5 ~costs t in
  checkb "winner listed" true (List.mem_assoc b.Best.winner b.Best.all |> fun _ -> true);
  List.iter
    (fun (_, c) -> checkb "winner is min" true (b.Best.cost <= c +. 1e-9))
    b.Best.all;
  checkf "cost matches vector" b.Best.cost (Best.cost_of ~costs b.Best.misses_per_user)

let test_best_of_uses_dp_on_tiny () =
  let t = Trace.of_list ~n_users:1 [ p 0 0; p 0 1; p 0 2; p 0 0; p 0 1; p 0 2 ] in
  let costs = uni_costs 1 in
  let b = Best.compute ~exact_dp:true ~local_search_rounds:0 ~cache_size:2 ~costs t in
  checkb "dp among comparators" true (List.mem_assoc "dp-exact" b.Best.all);
  (* DP is optimal, so best-of must equal it *)
  checkf "best = dp" (List.assoc "dp-exact" b.Best.all) b.Best.cost

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ccache_offline"
    [
      ( "dp_opt",
        [
          Alcotest.test_case "fits in cache" `Quick test_dp_trivial_fits_in_cache;
          Alcotest.test_case "belady example" `Quick test_dp_classic_belady_example;
          Alcotest.test_case "convex balance" `Quick test_dp_convex_prefers_balance;
          Alcotest.test_case "matches brute force" `Quick test_dp_matches_brute_force_small;
          Alcotest.test_case "pinned pages" `Quick test_dp_pinned;
          Alcotest.test_case "too-large guard" `Quick test_dp_too_large_guard;
        ]
        @ qsuite [ dp_lower_bounds_policies ] );
      ( "batch_offline",
        [
          Alcotest.test_case "shape validation" `Quick test_batch_shape_validation;
          Alcotest.test_case "adversarial instance" `Quick test_batch_on_adversarial_instance;
          Alcotest.test_case "cold misses" `Quick test_batch_misses_at_least_cold;
        ] );
      ( "local_search",
        [
          Alcotest.test_case "never worse" `Quick test_local_search_never_worse;
          Alcotest.test_case "zero rounds" `Quick test_local_search_zero_rounds;
        ] );
      ( "best_of",
        [
          Alcotest.test_case "picks minimum" `Quick test_best_of_picks_minimum;
          Alcotest.test_case "dp on tiny" `Quick test_best_of_uses_dp_on_tiny;
        ] );
    ]
