(* End-to-end DaaS buffer-pool walkthrough:

   1. generate a multi-tenant buffer-pool trace and persist it to disk
      (the text format round-trips, so real traces can be dropped in);
   2. characterise it (per-tenant footprints, reuse);
   3. run the cost-aware policy and compare accountings (misses vs the
      paper's eviction accounting with terminal flush);
   4. scale out to multiple pools with tenant migration (the paper's
      future-work Section 5).

     dune exec examples/buffer_pool_sqlvm.exe *)

module Cf = Ccache_cost.Cost_function
module W = Ccache_trace.Workloads
module Engine = Ccache_sim.Engine
module Metrics = Ccache_sim.Metrics
module ME = Ccache_multipool.Multi_engine
module Tbl = Ccache_util.Ascii_table

let () =
  (* --- 1. generate and persist ------------------------------------ *)
  let trace = W.generate ~seed:2026 ~length:12_000 (W.sqlvm_mix ~scale:2) in
  let path = Filename.temp_file "bufferpool" ".trace" in
  Ccache_trace.Trace_io.write_file path trace;
  let trace = Ccache_trace.Trace_io.read_file path in
  Sys.remove path;
  Printf.printf "trace round-tripped through %s (%d requests)\n\n"
    (Filename.basename path) (Ccache_trace.Trace.length trace);

  (* --- 2. characterise --------------------------------------------- *)
  let stats = Ccache_trace.Trace_stats.compute trace in
  Tbl.print (Ccache_trace.Trace_stats.to_table stats);
  Printf.printf "max achievable hit ratio (infinite cache): %.1f%%\n\n"
    (100.0 *. Ccache_trace.Trace_stats.max_hit_ratio stats);

  (* --- 3. run and compare accountings ------------------------------ *)
  let costs =
    [|
      Ccache_cost.Sla.hinge ~tolerance:200.0 ~penalty_rate:4.0;
      Ccache_cost.Sla.tiered ~thresholds:[ 100.0; 300.0 ] ~base_rate:1.0 ~escalation:2.5;
      Cf.linear ~slope:0.5 ();
      Cf.monomial ~beta:2.0 ();
      Ccache_cost.Sla.hinge ~tolerance:60.0 ~penalty_rate:8.0;
    |]
  in
  let k = 192 in
  let plain = Engine.run ~k ~costs Ccache_core.Alg_discrete.policy trace in
  let flushed = Engine.run ~flush:true ~k ~costs Ccache_core.Alg_discrete.policy trace in
  Printf.printf "accountings for ALG-DISCRETE at k = %d:\n" k;
  Printf.printf "  by misses            : %.0f\n" (Metrics.total_cost ~costs plain);
  Printf.printf "  by evictions (flush) : %.0f\n"
    (Metrics.total_cost ~accounting:Metrics.By_evictions ~costs flushed);
  Printf.printf
    "  (the paper's ICP accounting charges evictions; the terminal flush makes \
     them equal to misses)\n\n";

  (* --- 4. multiple pools (future work, Section 5) ------------------ *)
  let tbl =
    Tbl.create ~title:"scale-out: same total memory, more pools"
      ~aligns:[ Tbl.Right; Tbl.Left; Tbl.Right; Tbl.Right ]
      [ "pools"; "assignment"; "cost"; "migrations" ]
  in
  Tbl.add_row tbl
    [ "1"; "shared"; Tbl.cell_float ~digits:6 (Metrics.total_cost ~costs plain); "0" ];
  List.iter
    (fun pools ->
      List.iter
        (fun strategy ->
          let r = ME.run ~pools ~pool_size:(k / pools) ~strategy ~costs trace in
          Tbl.add_row tbl
            [
              Tbl.cell_int pools;
              r.ME.strategy;
              Tbl.cell_float ~digits:6 r.ME.total_cost;
              Tbl.cell_int r.ME.migrations;
            ])
        [
          ME.Static_round_robin;
          ME.Greedy_cost { rebalance_every = 400; switch_cost = 100.0 };
        ])
    [ 2; 4 ];
  Tbl.print tbl
