(* Theorem 1.3's bi-criteria trade-off, visualised: how does the bound
   and the measured gap change as the offline comparator's cache h
   shrinks relative to the online algorithm's k?

     dune exec examples/bicriteria_tradeoff.exe *)

module Cf = Ccache_cost.Cost_function
module W = Ccache_trace.Workloads
module Engine = Ccache_sim.Engine
module Theory = Ccache_core.Theory
module Tbl = Ccache_util.Ascii_table

let () =
  let costs = [| Cf.monomial ~beta:2.0 (); Cf.monomial ~beta:2.0 () |] in
  let trace =
    W.generate ~seed:17 ~length:6000
      [
        W.tenant (W.Zipf { pages = 60; skew = 0.9 });
        W.tenant (W.Hot_cold { pages = 60; hot_pages = 8; hot_prob = 0.8 });
      ]
  in
  let k = 32 in
  let r = Engine.run ~k ~costs Ccache_core.Alg_discrete.policy trace in
  let online_cost = Ccache_sim.Metrics.total_cost ~costs r in
  Printf.printf "online ALG-DISCRETE with k = %d: cost %.0f\n\n" k online_cost;
  let tbl =
    Tbl.create
      ~title:"Theorem 1.3: offline runs with a smaller cache h"
      ~aligns:[ Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Left ]
      [ "h"; "h/k"; "stretch"; "offline(h) cost"; "Thm 1.3 RHS"; "holds" ]
  in
  List.iter
    (fun h ->
      let offline =
        Ccache_offline.Best_of.compute ~local_search_rounds:20 ~cache_size:h
          ~costs trace
      in
      let check =
        Theory.check_thm13 ~alpha:2.0 ~costs ~k ~h ~a:r.Engine.misses_per_user
          ~b:offline.Ccache_offline.Best_of.misses_per_user ()
      in
      Tbl.add_row tbl
        [
          Tbl.cell_int h;
          Tbl.cell_float ~digits:2 (float_of_int h /. float_of_int k);
          Tbl.cell_float ~digits:4 (2.0 *. float_of_int k /. float_of_int (k - h + 1));
          Tbl.cell_float ~digits:6 offline.Ccache_offline.Best_of.cost;
          Tbl.cell_float ~digits:6 check.Theory.rhs;
          (if check.Theory.holds then "yes" else "VIOLATED");
        ])
    [ 4; 8; 16; 24; 32 ];
  Tbl.print tbl;
  print_endline
    "\nShrinking h weakens the offline comparator (more misses) while the\n\
     multiplicative stretch alpha*k/(k-h+1) shrinks toward alpha: the paper's\n\
     resource-augmentation trade-off.";
