(* Quickstart: two tenants share one cache; one tenant's SLA is convex.

   Build a workload, run the paper's ALG-DISCRETE against LRU, and
   check Theorem 1.1 on the measured counts.

     dune exec examples/quickstart.exe *)

module Cf = Ccache_cost.Cost_function
module W = Ccache_trace.Workloads
module Engine = Ccache_sim.Engine
module Metrics = Ccache_sim.Metrics

let () =
  (* 1. Per-tenant cost functions: tenant 0 pays quadratically in its
     misses, tenant 1 linearly. *)
  let costs = [| Cf.monomial ~beta:2.0 (); Cf.linear ~slope:2.0 () |] in

  (* 2. A deterministic multi-tenant workload: both tenants draw from
     Zipf-distributed working sets, tenant 0 twice as chatty. *)
  let trace =
    W.generate ~seed:42 ~length:5000
      [
        W.tenant ~weight:2.0 (W.Zipf { pages = 100; skew = 0.9 });
        W.tenant ~weight:1.0 (W.Zipf { pages = 80; skew = 0.7 });
      ]
  in

  (* 3. Run the paper's algorithm and a cost-blind baseline on a
     64-page shared cache. *)
  let k = 64 in
  let alg = Engine.run ~k ~costs Ccache_core.Alg_discrete.policy trace in
  let lru = Engine.run ~k ~costs Ccache_policies.Lru.policy trace in
  Ccache_util.Ascii_table.print (Metrics.comparison_table ~costs [ alg; lru ]);

  (* 4. Check Theorem 1.1 against an offline comparator. *)
  let offline =
    Ccache_offline.Best_of.compute ~local_search_rounds:0 ~cache_size:k ~costs
      trace
  in
  let check =
    Ccache_core.Theory.check_thm11 ~costs ~k ~a:alg.Engine.misses_per_user
      ~b:offline.Ccache_offline.Best_of.misses_per_user ()
  in
  Printf.printf
    "\nTheorem 1.1:  cost(ALG) = %.0f  <=  sum f_i(alpha*k*b_i) = %.3g : %s\n"
    check.Ccache_core.Theory.lhs check.Ccache_core.Theory.rhs
    (if check.Ccache_core.Theory.holds then "HOLDS" else "VIOLATED");
  Printf.printf
    "(offline comparator '%s' cost %.0f; the worst-case bound is loose on \
     benign workloads, as expected)\n"
    offline.Ccache_offline.Best_of.winner offline.Ccache_offline.Best_of.cost
