examples/buffer_pool_sqlvm.mli:
