examples/certified_ratio.mli:
