examples/multi_tenant_sla.ml: Array Ccache_core Ccache_cost Ccache_policies Ccache_sim Ccache_trace Ccache_util List Printf
