examples/bicriteria_tradeoff.mli:
