examples/quickstart.mli:
