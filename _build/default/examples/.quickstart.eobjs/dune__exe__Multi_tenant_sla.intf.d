examples/multi_tenant_sla.mli:
