examples/buffer_pool_sqlvm.ml: Ccache_core Ccache_cost Ccache_multipool Ccache_sim Ccache_trace Ccache_util Filename List Printf Sys
