(* Multi-tenant DaaS buffer pool with SLA refund curves — the paper's
   motivating scenario (Section 1.1, SQLVM).

   Five tenants with distinct access patterns share one buffer pool;
   each has a Service Level Agreement translating misses into refunds
   (hinge and tiered curves).  Compare every policy in the library and
   break the winner's cost down per tenant.

     dune exec examples/multi_tenant_sla.exe *)

module Cf = Ccache_cost.Cost_function
module Sla = Ccache_cost.Sla
module W = Ccache_trace.Workloads
module Engine = Ccache_sim.Engine
module Metrics = Ccache_sim.Metrics
module Tbl = Ccache_util.Ascii_table

let () =
  let specs = W.sqlvm_mix ~scale:2 in
  let costs =
    [|
      Sla.hinge ~tolerance:150.0 ~penalty_rate:5.0;
      (* gold tenant: generous allowance, steep penalty *)
      Sla.tiered ~thresholds:[ 80.0; 200.0 ] ~base_rate:1.0 ~escalation:3.0;
      Cf.linear ~slope:0.5 ();
      (* best-effort tenant *)
      Cf.monomial ~beta:2.0 ();
      Sla.hinge ~tolerance:40.0 ~penalty_rate:10.0;
      (* small but latency-critical tenant *)
    |]
  in
  let trace = W.generate ~seed:7 ~length:20_000 specs in
  let stats = Ccache_trace.Trace_stats.compute trace in
  Tbl.print (Ccache_trace.Trace_stats.to_table stats);
  print_newline ();

  let k = 160 in
  let policies =
    Ccache_policies.Registry.all
    @ [ Ccache_core.Alg_discrete.policy; Ccache_core.Alg_fast.policy ]
  in
  let results = List.map (fun p -> Engine.run ~k ~costs p trace) policies in
  Tbl.print
    (Metrics.comparison_table
       ~title:(Printf.sprintf "SLA refunds, k = %d pages" k)
       ~costs results);

  (* per-tenant breakdown for the cheapest online policy *)
  let online =
    List.filter
      (fun (r : Engine.result) ->
        r.Engine.policy <> "belady" && r.Engine.policy <> "convex-belady")
      results
  in
  let best =
    List.fold_left
      (fun acc r ->
        if Metrics.total_cost ~costs r < Metrics.total_cost ~costs acc then r
        else acc)
      (List.hd online) online
  in
  Printf.printf "\nper-tenant breakdown of the best online policy (%s):\n"
    best.Engine.policy;
  let tbl =
    Tbl.create
      ~aligns:[ Tbl.Right; Tbl.Left; Tbl.Right; Tbl.Right ]
      [ "tenant"; "SLA"; "misses"; "refund" ]
  in
  Array.iteri
    (fun u misses ->
      Tbl.add_row tbl
        [
          Tbl.cell_int u;
          Cf.name costs.(u);
          Tbl.cell_int misses;
          Tbl.cell_float ~digits:6 (Cf.eval costs.(u) (float_of_int misses));
        ])
    best.Engine.misses_per_user;
  Tbl.print tbl
