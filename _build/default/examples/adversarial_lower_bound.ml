(* Theorem 1.4 live: an adaptive adversary forces any deterministic
   online policy to pay Omega(k)^beta times the offline optimum.

   Sweeps the number of users (k = n - 1) for beta in {1, 2} and both
   a cost-blind (LRU) and the cost-aware (ALG-DISCRETE) policy, then
   fits the growth exponent of the ratio.

     dune exec examples/adversarial_lower_bound.exe *)

module T4 = Ccache_lb.Theorem4
module Tbl = Ccache_util.Ascii_table

let () =
  let ns = [ 4; 8; 16; 32 ] in
  List.iter
    (fun policy ->
      List.iter
        (fun beta ->
          let points, slope = T4.sweep ~steps_per_user:250 ~ns ~beta policy in
          let tbl =
            Tbl.create
              ~title:
                (Printf.sprintf "%s, f(x) = x^%g  (fitted growth exponent %.2f; theory: %g)"
                   (Ccache_sim.Policy.name policy) beta slope beta)
              ~aligns:[ Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right ]
              [ "k"; "online cost"; "offline cost"; "ratio"; "(k/4)^beta" ]
          in
          List.iter
            (fun (pt : T4.point) ->
              Tbl.add_row tbl
                [
                  Tbl.cell_int pt.T4.k;
                  Tbl.cell_float ~digits:6 pt.T4.online_cost;
                  Tbl.cell_float ~digits:6 pt.T4.offline_cost;
                  Tbl.cell_ratio pt.T4.ratio;
                  Tbl.cell_float ~digits:4 pt.T4.theory_curve;
                ])
            points;
          Tbl.print tbl;
          print_newline ())
        [ 1.0; 2.0 ])
    [ Ccache_policies.Lru.policy; Ccache_core.Alg_discrete.policy ];
  print_endline
    "No deterministic policy escapes: the ratio clears the paper's (k/4)^beta \
     curve and its growth exponent tracks beta, for the cost-aware algorithm \
     just as for LRU.";
