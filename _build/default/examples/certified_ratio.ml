(* Self-certifying runs and the fractional relaxation.

   1. Run ALG-DISCRETE once and certify its competitive ratio on this
      very instance from its own dual variables (weak duality on the
      paper's convex program) — no offline heuristic involved.
   2. Compare against the heuristic OPT bracket.
   3. Run the BBN fractional algorithm (the LP substrate of paper
      Section 1.3) on the LRU-nemesis cycle, where it escapes the
      deterministic factor-k barrier.

     dune exec examples/certified_ratio.exe *)

module Cf = Ccache_cost.Cost_function
module W = Ccache_trace.Workloads
module Cert = Ccache_analysis.Certificate
module Frac = Ccache_core.Alg_fractional
module Engine = Ccache_sim.Engine

let () =
  (* --- 1 & 2: certificate vs heuristic bracket ---------------------- *)
  let costs = [| Cf.monomial ~beta:2.0 (); Cf.monomial ~beta:2.0 () |] in
  let trace =
    W.generate ~seed:3 ~length:3000
      [
        W.tenant (W.Zipf { pages = 60; skew = 0.9 });
        W.tenant (W.Hot_cold { pages = 50; hot_pages = 8; hot_prob = 0.85 });
      ]
  in
  let k = 24 in
  let c = Cert.certify ~ascent_iterations:120 ~k ~costs trace in
  Format.printf "certificate: %a@." Cert.pp c;
  let off =
    Ccache_offline.Best_of.compute ~local_search_rounds:30 ~cache_size:k ~costs
      trace
  in
  Printf.printf
    "heuristic view: best offline schedule ('%s') costs %.0f, so the ratio is \
     at least %.3f;\nthe certificate bounds it at %.3f — the true ratio lives \
     in between.\n"
    off.Ccache_offline.Best_of.winner off.Ccache_offline.Best_of.cost
    (c.Cert.online_cost /. off.Ccache_offline.Best_of.cost)
    c.Cert.certified_ratio;
  let alpha = Ccache_core.Theory.alpha_of_costs costs in
  Printf.printf "(worst-case theory bound: alpha^alpha k^alpha = %.3g)\n\n"
    (Ccache_core.Theory.cor12_bound ~beta:alpha ~k);

  (* --- 3: the fractional escape --------------------------------- *)
  let k = 16 in
  let nemesis = W.generate ~seed:5 ~length:3400 (W.lru_nemesis ~k) in
  let ucosts = [| Cf.linear ~slope:1.0 () |] in
  let frac = Frac.run ~k ~costs:ucosts nemesis in
  let lru = Engine.run ~k ~costs:ucosts Ccache_policies.Lru.policy nemesis in
  let belady = Engine.run ~k ~costs:ucosts Ccache_policies.Belady.policy nemesis in
  Printf.printf
    "cycle over %d pages, k = %d:\n  offline (Belady) misses : %d\n  LRU \
     misses              : %d  (the deterministic ~k barrier)\n  fractional \
     movement     : %.1f  (~ln k escape: ln k + 1 = %.2f x offline)\n"
    (k + 1) k (Engine.misses belady) (Engine.misses lru)
    frac.Frac.movement_cost
    (log (float_of_int k) +. 1.0)
