(* Benchmark harness (Bechamel).

   Three families, per DESIGN.md Section 4:

   - experiment regeneration: one Test per experiment E1..E10 wrapping
     the Quick-size runner (the full tables themselves are printed by
     `dune exec bin/experiments.exe`; here we time the regeneration,
     proving each is a push-button artefact);
   - throughput microbenchmarks: requests/second for every policy at
     two cache sizes, the fast-vs-reference ALG-DISCRETE comparison
     (DESIGN decision 2), the dual-solver iteration cost, and core data
     structure operations;
   - parallel-vs-serial: the E-suite and a multi-k policy sweep run
     sequentially and on a Domain_pool, with the speedup printed (the
     ratio only exceeds 1 on multicore hardware; domains oversubscribed
     onto one core pay minor-GC synchronisation for no parallelism).

   `--smoke` runs every group once with a tiny measurement quota — a
   CI-friendly time-boxed pass proving the harness itself still works.

   `--baseline PATH` compares this run against a committed artifact
   (BENCH_NNNN.json): a per-row delta table is printed, and the process
   exits non-zero if any row regressed beyond `--threshold PCT`
   (default 25%).  CI runs this as a non-blocking perf-diff job; the
   threshold is deliberately loose because shared runners are noisy —
   the table, not the exit code, is the artefact of record.

   Output: one line per benchmark with the OLS estimate of
   nanoseconds/run and derived requests/second where meaningful. *)

open Bechamel
open Toolkit

let smoke = Array.exists (String.equal "--smoke") Sys.argv

let flag_value name =
  let v = ref None in
  Array.iteri
    (fun i a ->
      if String.equal a name && i + 1 < Array.length Sys.argv then
        v := Some Sys.argv.(i + 1))
    Sys.argv;
  !v

(* --json PATH overrides the artifact destination; --smoke alone writes
   the CI artifact BENCH_0007.json next to the working directory. *)
let json_path =
  match flag_value "--json" with
  | Some _ as p -> p
  | None -> if smoke then Some "BENCH_0007.json" else None

let baseline_path = flag_value "--baseline"

(* regression threshold, percent slower-than-baseline *)
let threshold_pct =
  match flag_value "--threshold" with
  | None -> 25.0
  | Some s -> (
      match float_of_string_opt s with
      | Some v when v > 0.0 -> v
      | _ ->
          prerr_endline "--threshold must be a positive number (percent)";
          exit 2)

(* ------------------------------------------------------------------ *)
(* Shared fixtures (built once, outside the timed thunks)              *)
(* ------------------------------------------------------------------ *)

module Cf = Ccache_cost.Cost_function
module W = Ccache_trace.Workloads
module Engine = Ccache_sim.Engine

let trace_len = 20_000
let tenants = 5

(* Fixtures are forced on first use, not at module init: the
   data-structure microbenches never touch them, and a per-op cost of
   ~100 ns is sensitive to the GC pressure of whatever is resident in
   the major heap — measured ~25% higher with the trace fixtures live
   than against an empty heap. *)
let fixture_trace =
  lazy (W.generate ~seed:99 ~length:trace_len (W.sqlvm_mix ~scale:2))

let fixture_costs =
  lazy
    (Array.init tenants (fun i ->
         match i mod 3 with
         | 0 -> Cf.monomial ~beta:2.0 ()
         | 1 -> Cf.linear ~slope:2.0 ()
         | _ -> Ccache_cost.Sla.hinge ~tolerance:100.0 ~penalty_rate:4.0))

let fixture_index = lazy (Ccache_trace.Trace.Index.build (Lazy.force fixture_trace))

let run_policy ~k policy () =
  ignore
    (Engine.run ~index:(Lazy.force fixture_index) ~k
       ~costs:(Lazy.force fixture_costs) policy (Lazy.force fixture_trace))

(* ------------------------------------------------------------------ *)
(* Tests                                                               *)
(* ------------------------------------------------------------------ *)

let experiment_tests =
  let quick (e : Ccache_analysis.Experiment.t) =
    Test.make ~name:e.Ccache_analysis.Experiment.id
      (Staged.stage (fun () ->
           ignore (e.Ccache_analysis.Experiment.run Ccache_analysis.Experiment.Quick)))
  in
  Test.make_grouped ~name:"experiments"
    (List.map quick Ccache_analysis.Suite.all)

let policy_tests ~k =
  let bench policy =
    Test.make
      ~name:(Ccache_sim.Policy.name policy)
      (Staged.stage (run_policy ~k policy))
  in
  Test.make_grouped
    ~name:(Printf.sprintf "policies_k%d" k)
    (List.map bench
       (Ccache_policies.Registry.all
       @ [ Ccache_core.Alg_discrete.policy; Ccache_core.Alg_fast.policy ]))

let fast_vs_ref_tests =
  Test.make_grouped ~name:"alg_fast_vs_ref"
    (List.concat_map
       (fun k ->
         [
           Test.make
             ~name:(Printf.sprintf "reference_k%d" k)
             (Staged.stage (run_policy ~k Ccache_core.Alg_discrete.policy));
           Test.make
             ~name:(Printf.sprintf "fast_k%d" k)
             (Staged.stage (run_policy ~k Ccache_core.Alg_fast.policy));
         ])
       (* crossover sweep: the reference is O(k) per eviction, the heap
          implementation O(log k) — small k favours the flat scan,
          large k the heaps *)
       [ 64; 256; 512; 1024; 4096 ])

let dual_solver_test =
  (* small fixed program; measures cost per ascent iteration batch *)
  let cp =
    lazy
      (let small_trace = W.generate ~seed:5 ~length:400 (W.sqlvm_mix ~scale:1) in
       let costs = Array.init 5 (fun _ -> Cf.monomial ~beta:2.0 ()) in
       Ccache_cp.Formulation.of_trace ~flush:true ~k:16 ~cache_size:16 ~costs
         small_trace)
  in
  Test.make ~name:"dual_solver_20iters"
    (Staged.stage (fun () ->
         ignore
           (Ccache_cp.Dual_solver.solve
              ~options:
                { Ccache_cp.Dual_solver.default_options with iterations = 20 }
              (Lazy.force cp))))

let structure_tests =
  let heap_ops () =
    let h = Ccache_util.Indexed_heap.create () in
    for i = 0 to 999 do
      Ccache_util.Indexed_heap.add h ~key:i ~prio:(float_of_int ((i * 7919) mod 1000))
    done;
    for i = 0 to 999 do
      Ccache_util.Indexed_heap.update h ~key:i ~prio:(float_of_int ((i * 104729) mod 1000))
    done;
    while not (Ccache_util.Indexed_heap.is_empty h) do
      ignore (Ccache_util.Indexed_heap.pop h)
    done
  in
  let dlist_ops () =
    let l = Ccache_util.Dlist.create () in
    let nodes = Array.init 1000 Ccache_util.Dlist.node in
    Array.iter (Ccache_util.Dlist.push_front l) nodes;
    Array.iter (Ccache_util.Dlist.move_to_front l) nodes;
    Array.iter (Ccache_util.Dlist.remove l) nodes
  in
  Test.make_grouped ~name:"structures"
    [
      Test.make ~name:"indexed_heap_1k" (Staged.stage heap_ops);
      Test.make ~name:"dlist_1k" (Staged.stage dlist_ops);
    ]

(* ------------------------------------------------------------------ *)
(* Parallel vs serial (Domain_pool)                                    *)
(* ------------------------------------------------------------------ *)

module Pool = Ccache_util.Domain_pool

let pool_width = if smoke then 2 else 4

(* One shared pool for the whole group: workers idle on a condition
   variable between tests, so keeping it alive costs nothing. *)
let pool = lazy (Pool.create ~size:pool_width ())

let bench_suite =
  (* smoke keeps the per-run cost bounded; the full group times the
     entire E-suite, the headline number for --jobs regeneration *)
  let specs =
    if smoke then
      List.filteri (fun i _ -> i < 4) Ccache_analysis.Suite.all
    else Ccache_analysis.Suite.all
  in
  fun pool () ->
    ignore
      (Ccache_analysis.Experiment.run_all ?pool
         ~size:Ccache_analysis.Experiment.Quick specs)

let sweep_ks = [ 16; 32; 64; 128; 256; 512 ]

let bench_ksweep pool () =
  ignore
    (Ccache_sim.Sweep.run ?pool sweep_ks ~f:(fun k ->
         Ccache_sim.Engine.run ~index:(Lazy.force fixture_index) ~k
           ~costs:(Lazy.force fixture_costs) Ccache_core.Alg_fast.policy
           (Lazy.force fixture_trace)))

let parallel_tests =
  Test.make_grouped ~name:"parallel_vs_serial"
    [
      Test.make ~name:"e_suite_serial" (Staged.stage (bench_suite None));
      Test.make
        ~name:(Printf.sprintf "e_suite_pool%d" pool_width)
        (Staged.stage (fun () -> bench_suite (Some (Lazy.force pool)) ()));
      Test.make ~name:"k_sweep_serial" (Staged.stage (bench_ksweep None));
      Test.make
        ~name:(Printf.sprintf "k_sweep_pool%d" pool_width)
        (Staged.stage (fun () -> bench_ksweep (Some (Lazy.force pool)) ()));
    ]

(* ------------------------------------------------------------------ *)
(* Fused vs unfused sweeps                                             *)
(* ------------------------------------------------------------------ *)

(* Two grid families, three arms:

   - [mixed_*]: the E5/E13 table shape — every registry policy plus the
     paper's algorithm at spreading cache sizes, one shared trace.
     Policy work dominates, so fused and unfused track each other; the
     rows pin down that fusion is free where it cannot win.
   - [calib_*]: the E13 binding-calibration shape — an offline-policy
     (belady) k-sweep over one shared trace.  Here the per-cell fixed
     costs fusion amortizes (the O(T) trace index; for [percell], also
     the trace generation) dominate the per-cell scan, which is where
     the >= 3x shows up at 16+ cells.

   Arms: [fused] scans the shared trace once (Sweep.run_fused);
   [unfused] is exactly the --no-fused production path (one Engine.run
   per cell, offline cells rebuilding their own index); [percell] is
   the pre-fusion experiment pipeline — regenerate the trace and
   rebuild the index for every cell, as the seed's grid experiments
   (E2, E12) did before their traces were hoisted into shared cells. *)
let sweep_cell_counts = [ 1; 4; 16; 64 ]

let fused_policies =
  lazy
    (Ccache_policies.Registry.all
    @ [ Ccache_core.Alg_discrete.policy; Ccache_core.Alg_fast.policy ])

let mixed_cells n =
  let pols = Lazy.force fused_policies in
  let npol = List.length pols in
  List.init n (fun i ->
      Ccache_sim.Sweep.cell
        ~k:(64 * (1 + (i / npol)))
        ~costs:(Lazy.force fixture_costs)
        (List.nth pols (i mod npol))
        (Lazy.force fixture_trace))

let calib_ks n = List.init n (fun i -> 424 + (4 * i))

let calib_costs =
  lazy (Array.init tenants (fun _ -> Cf.linear ~slope:1.0 ()))

let calib_cells n =
  List.map
    (fun k ->
      Ccache_sim.Sweep.cell ~k ~costs:(Lazy.force calib_costs)
        Ccache_policies.Belady.policy (Lazy.force fixture_trace))
    (calib_ks n)

let calib_percell n () =
  (* the seed pipeline: every cell regenerates and re-indexes *)
  List.iter
    (fun k ->
      let trace = W.generate ~seed:99 ~length:trace_len (W.sqlvm_mix ~scale:2) in
      ignore
        (Engine.run ~k ~costs:(Lazy.force calib_costs)
           Ccache_policies.Belady.policy trace))
    (calib_ks n)

let fused_tests =
  let arm name cells run =
    Test.make ~name (Staged.stage (fun () -> ignore (run (Lazy.force cells))))
  in
  Test.make_grouped ~name:"fused_vs_unfused"
    (List.concat_map
       (fun n ->
         let mixed = lazy (mixed_cells n) and calib = lazy (calib_cells n) in
         [
           arm (Printf.sprintf "mixed_fused_%dcells" n) mixed
             Ccache_sim.Sweep.run_fused;
           arm (Printf.sprintf "mixed_unfused_%dcells" n) mixed
             (Ccache_sim.Sweep.run_cells ~fuse:false);
           arm (Printf.sprintf "calib_fused_%dcells" n) calib
             Ccache_sim.Sweep.run_fused;
           arm (Printf.sprintf "calib_unfused_%dcells" n) calib
             (Ccache_sim.Sweep.run_cells ~fuse:false);
           Test.make
             ~name:(Printf.sprintf "calib_percell_%dcells" n)
             (Staged.stage (calib_percell n));
         ])
       sweep_cell_counts)

(* ------------------------------------------------------------------ *)
(* Trace substrate: binary format, mmap open, dense index              *)
(* ------------------------------------------------------------------ *)

module Tbin = Ccache_trace.Trace_binary
module Trace = Ccache_trace.Trace

let substrate_len = 1_000_000
let substrate_specs () = W.symmetric_zipf ~tenants:4 ~pages_per_tenant:4096 ~skew:0.9

let temp_ctrace trace =
  let path = Filename.temp_file "ccache_bench" ".ctrace" in
  Tbin.write_file path trace;
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* prebuilt 1e6-request binary: the "open an existing trace" side of the
   generate-vs-mmap comparison *)
let substrate_file =
  lazy
    (temp_ctrace (W.generate ~seed:7 ~length:substrate_len (substrate_specs ())))

(* the 20k fixture as a binary handle, for array-vs-Bigarray scans *)
let fixture_handle =
  lazy (Tbin.open_file (temp_ctrace (Lazy.force fixture_trace)))

(* The Page.Tbl-based Index.build this PR replaced, replicated here so
   the dense rewrite keeps an honest in-tree baseline to race against. *)
let index_build_hashtbl trace =
  let module PT = Ccache_trace.Page.Tbl in
  let n = Trace.length trace in
  let counts = PT.create 256 in
  let last_pos = PT.create 256 in
  let first_use = PT.create 256 in
  let interval = Array.make n 0 in
  let next_use = Array.make n Int.max_int in
  let prev_use = Array.make n (-1) in
  let distinct_upto = Array.make n 0 in
  let distinct = ref 0 in
  for pos = 0 to n - 1 do
    let p = Trace.request trace pos in
    let c = (match PT.find_opt counts p with Some c -> c | None -> 0) + 1 in
    PT.replace counts p c;
    interval.(pos) <- c;
    (match PT.find_opt last_pos p with
    | Some prev ->
        next_use.(prev) <- pos;
        prev_use.(pos) <- prev
    | None ->
        incr distinct;
        PT.replace first_use p pos);
    PT.replace last_pos p pos;
    distinct_upto.(pos) <- !distinct
  done;
  (interval, next_use, prev_use, distinct_upto, counts, first_use)

let substrate_tests =
  let gen_1e6 () =
    ignore
      (Sys.opaque_identity
         (W.generate ~seed:7 ~length:substrate_len (substrate_specs ())))
  in
  let mmap_open_1e6 () =
    (* O(P) header+dictionary; the request region is mapped, not read *)
    ignore (Sys.opaque_identity (Tbin.open_file (Lazy.force substrate_file)))
  in
  let mmap_materialize_1e6 () =
    ignore
      (Sys.opaque_identity (Tbin.to_trace (Tbin.open_file (Lazy.force substrate_file))))
  in
  let scan_boxed_20k () =
    let requests = Trace.requests (Lazy.force fixture_trace) in
    let acc = ref 0 in
    for i = 0 to Array.length requests - 1 do
      acc := !acc + Ccache_trace.Page.pack requests.(i)
    done;
    ignore (Sys.opaque_identity !acc)
  in
  let scan_bigarray_20k () =
    let h = Lazy.force fixture_handle in
    let acc = ref 0 in
    for i = 0 to Tbin.length h - 1 do
      acc := !acc + Tbin.dense_at h i
    done;
    ignore (Sys.opaque_identity !acc)
  in
  let index_dense_20k () =
    ignore (Sys.opaque_identity (Trace.Index.build (Lazy.force fixture_trace)))
  in
  let index_hashtbl_20k () =
    ignore (Sys.opaque_identity (index_build_hashtbl (Lazy.force fixture_trace)))
  in
  Test.make_grouped ~name:"trace_substrate"
    [
      Test.make ~name:"gen_zipf_1e6" (Staged.stage gen_1e6);
      Test.make ~name:"mmap_open_1e6" (Staged.stage mmap_open_1e6);
      Test.make ~name:"mmap_materialize_1e6" (Staged.stage mmap_materialize_1e6);
      Test.make ~name:"scan_boxed_20k" (Staged.stage scan_boxed_20k);
      Test.make ~name:"scan_bigarray_20k" (Staged.stage scan_bigarray_20k);
      Test.make ~name:"index_build_dense_20k" (Staged.stage index_dense_20k);
      Test.make ~name:"index_build_hashtbl_20k" (Staged.stage index_hashtbl_20k);
    ]

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let benchmark test =
  (* smoke stays time-boxed, but a single sample gave OLS estimates too
     noisy to diff against a baseline (observed 1.5-2x run-to-run swings
     on cheap tests), and with fewer than ~10 samples the cold first
     runs of a test tilt the OLS slope well above steady state.  A
     larger sample budget keeps cheap rows dominated by warm
     high-run-count samples; expensive rows still stop after a run or
     two, bounding the total pass. *)
  let cfg =
    if smoke then
      (* geometric run growth reaches warm high-run samples quickly;
         the default +1-per-sample growth never leaves the cold zone
         inside a smoke quota *)
      Benchmark.cfg ~limit:100 ~quota:(Time.second 0.4)
        ~sampling:(`Geometric 1.2) ~kde:None ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  Benchmark.all cfg Instance.[ monotonic_clock ] test

let analyze results =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock results

let report ~requests_per_run tbl =
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
        in
        (name, ns) :: acc)
      tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Printf.printf "  %-42s (no estimate)\n" name
      else begin
        Printf.printf "  %-42s %12.0f ns/run" name ns;
        (match requests_per_run with
        | Some reqs when ns > 0.0 ->
            Printf.printf "  %10.2f Mreq/s" (float_of_int reqs /. ns *. 1e3)
        | _ -> ());
        print_newline ()
      end)
    rows;
  rows

(* (group title, OLS rows) in run order, for the JSON artifact *)
let recorded : (string * (string * float) list) list ref = ref []

let run_group ?requests_per_run title test =
  Printf.printf "== %s ==\n%!" title;
  let rows = report ~requests_per_run (analyze (benchmark test)) in
  recorded := (title, rows) :: !recorded;
  print_newline ()

(* Serial/pool speedup summary for the parallel_vs_serial group.  Row
   names arrive prefixed by the group name, hence the substring match. *)
let print_speedups rows =
  let find suffix =
    List.find_map
      (fun (name, ns) ->
        let n = String.length name and s = String.length suffix in
        if n >= s && String.sub name (n - s) s = suffix && not (Float.is_nan ns)
        then Some ns
        else None)
      rows
  in
  List.iter
    (fun prefix ->
      match
        (find (prefix ^ "_serial"), find (Printf.sprintf "%s_pool%d" prefix pool_width))
      with
      | Some serial, Some pooled when pooled > 0.0 ->
          Printf.printf "  %-42s %11.2fx (pool of %d)\n"
            (prefix ^ " speedup") (serial /. pooled) pool_width
      | _ -> ())
    [ "e_suite"; "k_sweep" ]

let run_fused_group () =
  Printf.printf
    "== fused vs unfused sweeps (mixed = E5/E13 grid, calib = offline k-sweep) ==\n%!";
  let rows = report ~requests_per_run:None (analyze (benchmark fused_tests)) in
  recorded := ("fused vs unfused", rows) :: !recorded;
  (* crossover summary; the "/" anchors the match so "..._fused_N" can
     never pick up the "..._unfused_N" row it is a suffix of *)
  let find suffix =
    List.find_map
      (fun (name, ns) ->
        let n = String.length name and s = String.length suffix in
        if n >= s && String.sub name (n - s) s = suffix && not (Float.is_nan ns)
        then Some ns
        else None)
      rows
  in
  let speedup label n num den =
    match (find (Printf.sprintf "/%s_%dcells" num n),
           find (Printf.sprintf "/%s_%dcells" den n))
    with
    | Some slow, Some fast when fast > 0.0 ->
        Printf.printf "  %-42s %11.2fx\n"
          (Printf.sprintf "%s, %d cells" label n)
          (slow /. fast)
    | _ -> ()
  in
  List.iter
    (fun n ->
      speedup "mixed: fused vs unfused" n "mixed_unfused" "mixed_fused";
      speedup "calib: fused vs unfused" n "calib_unfused" "calib_fused";
      speedup "calib: fused vs percell pipeline" n "calib_percell" "calib_fused")
    sweep_cell_counts;
  print_newline ()

let run_parallel_group () =
  Printf.printf "== parallel vs serial (Domain_pool, %d workers) ==\n%!"
    pool_width;
  let rows = report ~requests_per_run:None (analyze (benchmark parallel_tests)) in
  recorded := ("parallel vs serial", rows) :: !recorded;
  print_speedups rows;
  print_newline ()

let run_substrate_group () =
  Printf.printf "== trace substrate (binary format, mmap, dense index) ==\n%!";
  (* force the prebuilt-file fixtures before timing starts: the lazy
     generate+write otherwise lands inside the first timed run and
     dominates a smoke-sized sample *)
  ignore (Lazy.force substrate_file);
  ignore (Lazy.force fixture_handle);
  let rows = report ~requests_per_run:None (analyze (benchmark substrate_tests)) in
  recorded := ("trace substrate", rows) :: !recorded;
  let find suffix =
    List.find_map
      (fun (name, ns) ->
        let n = String.length name and s = String.length suffix in
        if n >= s && String.sub name (n - s) s = suffix && not (Float.is_nan ns)
        then Some ns
        else None)
      rows
  in
  let ratio label num den =
    match (find num, find den) with
    | Some slow, Some fast when fast > 0.0 ->
        Printf.printf "  %-42s %11.2fx\n" label (slow /. fast)
    | _ -> ()
  in
  ratio "mmap open vs regeneration (1e6)" "/gen_zipf_1e6" "/mmap_open_1e6";
  ratio "mmap materialize vs regeneration (1e6)" "/gen_zipf_1e6"
    "/mmap_materialize_1e6";
  ratio "dense vs hashtable Index.build (20k)" "/index_build_hashtbl_20k"
    "/index_build_dense_20k";
  print_newline ()

(* The artifact records every OLS point estimate the run printed.
   Schema: {"harness","mode","unit","estimator","groups":[{"title",
   "rows":[{"name","ns_per_run"}]}]} — numbers via Obs_json.num, so a
   missing estimate serialises as null rather than NaN. *)
let write_json path =
  let module J = Ccache_obs.Obs_json in
  let row (name, ns) =
    Printf.sprintf "{\"name\":%s,\"ns_per_run\":%s}" (J.str name) (J.num ns)
  in
  let group (title, rows) =
    Printf.sprintf "{\"title\":%s,\"rows\":[%s]}" (J.str title)
      (String.concat "," (List.map row rows))
  in
  let body =
    Printf.sprintf
      "{\"harness\":\"bechamel\",\"mode\":%s,\"unit\":\"ns/run\",\"estimator\":\"ols\",\"groups\":[\n\
       %s\n\
       ]}\n"
      (J.str (if smoke then "smoke" else "full"))
      (String.concat ",\n" (List.rev_map group !recorded))
  in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc body);
  Printf.printf "wrote OLS estimates to %s\n" path

(* ------------------------------------------------------------------ *)
(* Baseline comparison (--baseline)                                    *)
(* ------------------------------------------------------------------ *)

(* Flatten a committed artifact back to [(name, ns_per_run)] rows; the
   group structure only matters for display. *)
let baseline_rows path =
  let module J = Ccache_obs.Obs_json in
  let doc =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "cannot read baseline: %s\n" msg;
      exit 2
  in
  match J.parse doc with
  | Error msg ->
      Printf.eprintf "cannot parse %s: %s\n" path msg;
      exit 2
  | Ok v ->
      let groups =
        match J.member "groups" v with Some (J.List gs) -> gs | _ -> []
      in
      List.concat_map
        (fun g ->
          match J.member "rows" g with
          | Some (J.List rows) ->
              List.filter_map
                (fun r ->
                  match (J.member "name" r, J.member "ns_per_run" r) with
                  | Some (J.String name), Some (J.Number ns) -> Some (name, ns)
                  | _ -> None)
                rows
          | _ -> [])
        groups

(* Per-row delta table; returns the number of rows slower than the
   baseline by more than [threshold_pct]. *)
let compare_against_baseline path =
  let base = baseline_rows path in
  let current = List.concat_map snd (List.rev !recorded) in
  Printf.printf "== regression check vs %s (threshold +%g%%) ==\n" path
    threshold_pct;
  Printf.printf "  %-44s %14s %14s %9s\n" "name" "baseline ns" "current ns"
    "delta";
  let regressed = ref 0 in
  List.iter
    (fun (name, cur) ->
      match List.assoc_opt name base with
      | None -> Printf.printf "  %-44s %14s %14.0f %9s\n" name "-" cur "new"
      | Some b when Float.is_finite b && b > 0.0 && Float.is_finite cur ->
          let delta = (cur -. b) /. b *. 100.0 in
          let tag =
            if delta > threshold_pct then begin
              incr regressed;
              "  REGRESSED"
            end
            else if delta < -.threshold_pct then "  improved"
            else ""
          in
          Printf.printf "  %-44s %14.0f %14.0f %+8.1f%%%s\n" name b cur delta
            tag
      | Some _ -> Printf.printf "  %-44s %14s %14.0f %9s\n" name "null" cur "-")
    current;
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun (n, _) -> String.equal n name) current) then
        Printf.printf "  %-44s (dropped: not measured in this run)\n" name)
    base;
  if !regressed > 0 then
    Printf.printf "%d row(s) regressed beyond +%g%%\n" !regressed threshold_pct
  else Printf.printf "no regressions beyond +%g%%\n" threshold_pct;
  !regressed

let () =
  Printf.printf
    "convex-caching benchmark harness (trace: %d requests, %d tenants%s)\n\n"
    trace_len tenants
    (if smoke then ", smoke mode" else "");
  (* Microbench groups first: a structure op costs ~100 ns, so its
     estimate is dominated by GC pressure — measured 25% higher when
     the heavy groups have already grown and fragmented the major heap
     (and 5x higher under a few hundred MB of live ballast).  The
     macro groups allocate enough per run to be insensitive to what
     ran before them. *)
  run_group "data structures" structure_tests;
  run_group "dual solver" (Test.make_grouped ~name:"dual" [ dual_solver_test ]);
  run_group "experiment regeneration (quick size, one run each)" experiment_tests;
  run_group ~requests_per_run:trace_len "policy throughput, k=64" (policy_tests ~k:64);
  run_group ~requests_per_run:trace_len "policy throughput, k=1024" (policy_tests ~k:1024);
  run_group ~requests_per_run:trace_len "ALG-DISCRETE fast vs reference" fast_vs_ref_tests;
  run_fused_group ();
  run_parallel_group ();
  run_substrate_group ();
  Option.iter write_json json_path;
  let regressions =
    match baseline_path with
    | None -> 0
    | Some path -> compare_against_baseline path
  in
  if Lazy.is_val pool then Pool.shutdown (Lazy.force pool);
  if regressions > 0 then exit 1
