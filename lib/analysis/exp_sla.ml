(** E5 — the motivating claim of Section 1.1: under non-linear SLA
    refund curves, cost-aware eviction beats cost-blind policies even
    when it takes *more* raw misses.

    SQLVM-style multi-tenant mix with hinge/tiered refund costs; every
    policy in the registry plus the paper's algorithm, one comparison
    table per cache size. *)

module Tbl = Ccache_util.Ascii_table
module Engine = Ccache_sim.Engine
module Metrics = Ccache_sim.Metrics

let run size =
  let length, scale, ks =
    match size with
    | Experiment.Quick -> (2500, 1, [ 48 ])
    | Experiment.Full -> (12000, 2, [ 64; 160; 320 ])
  in
  let s = Scenarios.sqlvm ~seed:51 ~length ~scale in
  let costs = s.Scenarios.costs in
  let policies =
    Ccache_policies.Registry.all
    @ [ Ccache_core.Alg_discrete.policy; Ccache_core.Alg_fast.policy ]
  in
  (* The whole (k, policy) grid shares one trace: the fused path scans
     it once for all |ks| * |policies| engine cells. *)
  let results =
    Ccache_sim.Sweep.run_cells
      (List.concat_map
         (fun k ->
           List.map
             (fun p -> Ccache_sim.Sweep.cell ~k ~costs p s.Scenarios.trace)
             policies)
         ks)
  in
  let tables =
    List.map2
      (fun k results ->
        Metrics.comparison_table
          ~title:(Printf.sprintf "E5: SLA workload %s, k=%d" s.Scenarios.name k)
          ~costs results)
      ks
      (Ccache_sim.Sweep.rows ~width:(List.length policies) results)
  in
  Experiment.output ~id:"e5" ~title:"SLA cost-aware vs cost-blind baselines"
    ~notes:
      [
        "alg-discrete trades misses of cheap tenants for hits of tenants \
         near their SLA cliff, landing at lower total refund than the \
         cost-blind baselines; belady/convex-belady rows are offline \
         references, not online competitors";
      ]
    tables

let spec =
  {
    Experiment.id = "e5";
    title = "SLA cost-aware vs cost-blind baselines";
    claim = "Section 1.1 motivation: non-linear costs need cost-aware eviction";
    run;
  }
