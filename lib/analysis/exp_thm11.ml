(** E1 — Theorem 1.1: the primal-dual algorithm's cost is at most
    sum_i f_i(alpha * k * b_i) for offline miss counts b.

    Runs ALG-DISCRETE and the best-of-offline suite over a grid of
    workloads and cache sizes with mixed convex costs, and evaluates
    both sides of the inequality.  The theorem must hold on every row
    (it is checked against a feasible offline schedule, which only
    weakens the RHS — see Theory.check_thm11). *)

module Tbl = Ccache_util.Ascii_table
module Engine = Ccache_sim.Engine
module Theory = Ccache_core.Theory

let run size =
  let lengths, ks =
    match size with
    | Experiment.Quick -> (1500, [ 16; 48 ])
    | Experiment.Full -> (6000, [ 8; 16; 32; 64; 128 ])
  in
  let scenarios =
    [
      Scenarios.zipf ~seed:11 ~length:lengths ~tenants:2 ~pages:80 ~skew:0.9;
      Scenarios.zipf ~seed:12 ~length:lengths ~tenants:4 ~pages:60 ~skew:0.7;
      Scenarios.sqlvm ~seed:13 ~length:lengths ~scale:1;
      Scenarios.churn ~seed:14 ~length:lengths;
    ]
  in
  let table =
    Tbl.create
      ~title:"E1: Theorem 1.1 bound check (alpha from costs; b = best-of offline)"
      ~aligns:[ Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Left ]
      [ "workload"; "k"; "alpha"; "ALG cost"; "offline cost"; "Thm1.1 RHS"; "holds" ]
  in
  let violations = ref 0 in
  (* One engine cell per (workload, k); each workload's trace is scanned
     once for all its ks on the fused path (identical output either
     way). *)
  let points =
    List.concat_map (fun s -> List.map (fun k -> (s, k)) ks) scenarios
  in
  let results =
    Ccache_sim.Sweep.run_cells
      (List.map
         (fun ((s : Scenarios.t), k) ->
           Ccache_sim.Sweep.cell ~k ~costs:s.Scenarios.costs
             Ccache_core.Alg_discrete.policy s.Scenarios.trace)
         points)
  in
  List.iter2
    (fun ((s : Scenarios.t), k) r ->
      let costs = s.Scenarios.costs in
      let offline =
        Ccache_offline.Best_of.compute
          ~local_search_rounds:(match size with Experiment.Quick -> 0 | Experiment.Full -> 30)
          ~cache_size:k ~costs s.Scenarios.trace
      in
      let alpha = Theory.alpha_of_costs ~max_x:1e6 costs in
      let check =
        Theory.check_thm11 ~alpha ~costs ~k ~a:r.Engine.misses_per_user
          ~b:offline.Ccache_offline.Best_of.misses_per_user ()
      in
      if not check.Theory.holds then incr violations;
      Tbl.add_row table
        [
          s.Scenarios.name;
          Tbl.cell_int k;
          Tbl.cell_float ~digits:3 alpha;
          Tbl.cell_float ~digits:6 check.Theory.lhs;
          Tbl.cell_float ~digits:6 offline.Ccache_offline.Best_of.cost;
          Tbl.cell_float ~digits:6 check.Theory.rhs;
          (if check.Theory.holds then "yes" else "VIOLATED");
        ])
    points results;
  Experiment.output ~id:"e1" ~title:"Theorem 1.1 bound verification"
    ~notes:
      [
        Printf.sprintf "violations: %d (theorem requires 0)" !violations;
        "measured cost sits far below the worst-case RHS on benign workloads, \
         as expected of a worst-case bound";
      ]
    [ table ]

let spec =
  {
    Experiment.id = "e1";
    title = "Theorem 1.1 bound verification";
    claim = "Thm 1.1: sum f_i(a_i) <= sum f_i(alpha k b_i)";
    run;
  }
