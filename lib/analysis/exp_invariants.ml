(** E7 — the proof machinery itself: the algorithm maintains its
    primal/dual invariants (Section 2.3) at every step, and Claim 2.3
    holds on the realised eviction sequences.

    Runs the dual-instrumented ALG-CONT over a grid of seeds and
    workloads with the checker on, in both derivative modes, and
    separately stress-tests Claim 2.3 on random convex functions and
    random sequences. *)

module Tbl = Ccache_util.Ascii_table
module Inv = Ccache_core.Invariants
module Theory = Ccache_core.Theory
module Cf = Ccache_cost.Cost_function
module Prng = Ccache_util.Prng

let run size =
  let seeds, length, claim_trials =
    match size with
    | Experiment.Quick -> ([ 1; 2; 3 ], 800, 200)
    | Experiment.Full -> ([ 1; 2; 3; 4; 5; 6; 7; 8 ], 4000, 2000)
  in
  let table =
    Tbl.create ~title:"E7: invariant checks on ALG-CONT runs (flushed)"
      ~aligns:[ Tbl.Left; Tbl.Right; Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right ]
      [ "workload"; "k"; "mode"; "steps"; "intervals"; "failures" ]
  in
  let total_failures = ref 0 in
  List.iter
    (fun seed ->
      let scenarios =
        [
          (Scenarios.zipf ~seed ~length ~tenants:3 ~pages:50 ~skew:0.9, 24);
          (Scenarios.sqlvm ~seed:(seed + 100) ~length ~scale:1, 48);
        ]
      in
      List.iter
        (fun ((s : Scenarios.t), k) ->
          List.iter
            (fun mode ->
              let _, report =
                Inv.run_and_check ~mode ~flush:true ~k ~costs:s.Scenarios.costs
                  s.Scenarios.trace
              in
              let fails = List.length report.Inv.failures in
              total_failures := !total_failures + fails;
              Tbl.add_row table
                [
                  s.Scenarios.name;
                  Tbl.cell_int k;
                  (match mode with Cf.Discrete -> "discrete" | Cf.Analytic -> "analytic");
                  Tbl.cell_int (Ccache_trace.Trace.length s.Scenarios.trace);
                  Tbl.cell_int report.Inv.checked_intervals;
                  Tbl.cell_int fails;
                ])
            [ Cf.Discrete; Cf.Analytic ])
        scenarios)
    seeds;
  (* Claim 2.3 stress test: random convex monomials/pw-linear and
     random non-negative sequences.

     Sequences for hinge draws are integer-valued: [Cf.alpha] for
     piecewise-linear costs is the *integer-restricted* supremum (see
     Cost_function), because over the reals the hinge ratio is
     unbounded near the kink and the claim genuinely fails — seed 777
     used to hit such a real-valued counterexample at trial 1156
     (pinned as a regression test in test_core).  The algorithm only
     ever applies the claim to per-interval eviction counts, which are
     integers, so the integer domain is the meaningful one.  Smooth
     draws keep real-valued sequences. *)
  let rng = Prng.create ~seed:777 in
  let claim_failures = ref 0 in
  for _ = 1 to claim_trials do
    let integer_domain = ref false in
    let f =
      match Prng.int rng 3 with
      | 0 -> Cf.monomial ~beta:(1.0 +. (3.0 *. Prng.float rng)) ()
      | 1 -> Cf.linear ~slope:(0.5 +. Prng.float rng) ()
      | _ ->
          integer_domain := true;
          Ccache_cost.Sla.hinge
            ~tolerance:(float_of_int (Prng.int rng 20))
            ~penalty_rate:(1.0 +. (4.0 *. Prng.float rng))
    in
    let n = 1 + Prng.int rng 30 in
    let xs =
      Array.init n (fun _ ->
          if !integer_domain then float_of_int (Prng.int rng 6)
          else Prng.float rng *. 5.0)
    in
    if not (Theory.claim23_holds f xs) then incr claim_failures;
    if not (Theory.claim23_inner_holds f xs) then incr claim_failures
  done;
  let claim_table =
    Tbl.create ~title:"E7b: Claim 2.3 random stress test"
      ~aligns:[ Tbl.Left; Tbl.Right ]
      [ "check"; "count" ]
  in
  Tbl.add_row claim_table [ "trials"; Tbl.cell_int claim_trials ];
  Tbl.add_row claim_table [ "failures"; Tbl.cell_int !claim_failures ];
  Experiment.output ~id:"e7" ~title:"Invariants and Claim 2.3"
    ~notes:
      [
        Printf.sprintf "invariant failures: %d (proof requires 0)" !total_failures;
        Printf.sprintf "Claim 2.3 failures: %d / %d trials" !claim_failures claim_trials;
      ]
    [ table; claim_table ]

let spec =
  {
    Experiment.id = "e7";
    title = "Invariants and Claim 2.3";
    claim = "Lemma 2.1 invariants (1a)-(3a), (2a)-(2b); Claim 2.3";
    run;
  }
