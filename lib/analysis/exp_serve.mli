(** Experiment spec — see the implementation's module comment and
    DESIGN.md Section 4. *)

val spec : Experiment.t
