(** E15 — the serving layer: what sharding a convex-cost cache does to
    aggregate cost and logical throughput.

    A sharded service splits one k-page cache into N private k/N-page
    shards, so it pays twice: the hash partition severs each tenant's
    locality across shards, and a hot shard cannot borrow capacity
    from a cold one.  The shared engine (N = 1, paper setting) is the
    cost baseline; the throughput column is the other side of the
    trade — N shards drain N batches per logical round.  The second
    table holds shards fixed and squeezes the queue bound, showing the
    backpressure dial: [Block] preserves every request but stretches
    the makespan (stalls), [Reject] holds the makespan and sheds load
    instead. *)

module Tbl = Ccache_util.Ascii_table
module Serve = Ccache_serve
module Engine = Ccache_sim.Engine
module Metrics = Ccache_sim.Metrics

let policy = Ccache_core.Alg_fast.policy

let serve ?(overload = Serve.Scheduler.Block) ?(queue_cap = 64) ~router
    ~shard_k ~costs trace =
  let config =
    Serve.Service.config ~policy ~clients:4 ~overload ~batch:8 ~queue_cap
      ~router ~shard_k ()
  in
  Serve.Service.run config ~costs trace

let run size =
  let length, total_k, shard_counts =
    match size with
    | Experiment.Quick -> (3000, 64, [ 2; 4 ])
    | Experiment.Full -> (10000, 128, [ 2; 4; 8 ])
  in
  let s = Scenarios.sqlvm ~seed:101 ~length ~scale:1 in
  let costs = s.Scenarios.costs in
  let trace = s.Scenarios.trace in
  let n_users = Array.length costs in
  let shared = Engine.run ~k:total_k ~costs policy trace in
  let shared_cost = Metrics.total_cost ~costs shared in
  let scaling =
    Tbl.create
      ~title:
        (Printf.sprintf "E15: sharded service (total memory %d pages, %s)"
           total_k s.Scenarios.name)
      ~aligns:
        [
          Tbl.Right; Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right;
          Tbl.Right;
        ]
      [
        "shards"; "route"; "total cost"; "vs shared"; "rounds"; "req/round";
        "maxdepth";
      ]
  in
  Tbl.add_row scaling
    [
      "1"; "shared";
      Tbl.cell_float ~digits:6 shared_cost;
      "1.000"; "-"; "-"; "-";
    ]
  ;
  List.iter
    (fun shards ->
      let shard_k = total_k / shards in
      let routers =
        [
          Serve.Router.by_page ~shards;
          Serve.Router.by_tenant ~shards ~n_users ();
        ]
      in
      List.iter
        (fun router ->
          let r = serve ~router ~shard_k ~costs trace in
          let sched = r.Serve.Service.schedule in
          let max_depth =
            Array.fold_left
              (fun acc (ss : Serve.Scheduler.shard_schedule) ->
                Stdlib.max acc ss.Serve.Scheduler.max_depth)
              0 sched.Serve.Scheduler.shards
          in
          Tbl.add_row scaling
            [
              Tbl.cell_int shards;
              Serve.Router.name router;
              Tbl.cell_float ~digits:6 r.Serve.Service.total_cost;
              Tbl.cell_ratio (r.Serve.Service.total_cost /. shared_cost);
              Tbl.cell_int sched.Serve.Scheduler.rounds;
              Tbl.cell_float ~digits:2 r.Serve.Service.throughput;
              Tbl.cell_int max_depth;
            ])
        routers)
    shard_counts;
  let backpressure =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E15: backpressure at 4 shards (4 clients, batch 8, %d requests)"
           length)
      ~aligns:
        [ Tbl.Right; Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right ]
      [ "queue cap"; "overload"; "admitted"; "dropped"; "stalls"; "rounds" ]
  in
  let shards = 4 in
  let router = Serve.Router.by_page ~shards in
  List.iter
    (fun queue_cap ->
      List.iter
        (fun overload ->
          let r =
            serve ~overload ~queue_cap ~router ~shard_k:(total_k / shards)
              ~costs trace
          in
          let sched = r.Serve.Service.schedule in
          Tbl.add_row backpressure
            [
              Tbl.cell_int queue_cap;
              Serve.Scheduler.overload_name overload;
              Tbl.cell_int sched.Serve.Scheduler.admitted;
              Tbl.cell_int sched.Serve.Scheduler.rejected;
              Tbl.cell_int sched.Serve.Scheduler.stalls;
              Tbl.cell_int sched.Serve.Scheduler.rounds;
            ])
        [ Serve.Scheduler.Block; Serve.Scheduler.Reject ])
    [ 1; 2; 64 ];
  Experiment.output ~id:"e15" ~title:"Sharded cache service"
    ~notes:
      [
        "sharding generally costs more than the shared engine: it splits \
         capacity and severs cross-shard locality, and that gap is the price \
         of the service's parallel drain (throughput scales with the shard \
         count); the one exception is tenant isolation at low shard counts, \
         which can edge out the shared run because the shared algorithm is \
         competitive, not optimal — walls that match the skew remove its \
         cross-tenant mistakes";
        "tenant routing keeps each user's working set whole but cannot \
         balance capacity: with few, skewed tenants a pinned shard saturates \
         while others idle (the 4-shard row), whereas the hash partition \
         balances load at the price of splitting every working set";
        "with a tight queue bound, Block preserves every request and pays in \
         rounds (stalls); Reject holds the makespan and pays in dropped \
         requests — cost falls only because rejected work was never served";
      ]
    [ scaling; backpressure ]

let spec =
  {
    Experiment.id = "e15";
    title = "Sharded cache service";
    claim = "serving-layer extension: cost/throughput trade of sharding";
    run;
  }
