(** E6 — the linear special case: with f_i(x) = w_i x the model is
    weighted caching, alpha = 1, and Theorem 1.1 reduces to the
    classical k-competitive guarantee.

    Compares ALG-DISCRETE against Landlord (deterministic weighted
    caching) and LRU across k; verifies cost(ALG) <= k * offline cost
    (the alpha = 1 instantiation of the theorem, with linearity pulling
    the factor out of f). *)

module Tbl = Ccache_util.Ascii_table
module Engine = Ccache_sim.Engine
module Metrics = Ccache_sim.Metrics
module Theory = Ccache_core.Theory

let run size =
  let length, ks =
    match size with
    | Experiment.Quick -> (1500, [ 16 ])
    | Experiment.Full -> (6000, [ 8; 16; 32; 64 ])
  in
  let specs =
    Ccache_trace.Workloads.symmetric_zipf ~tenants:4 ~pages_per_tenant:48 ~skew:0.8
  in
  let trace = Ccache_trace.Workloads.generate ~seed:61 ~length specs in
  let costs = Scenarios.weighted_costs 4 in
  let table =
    Tbl.create
      ~title:"E6: linear costs w_i in {1,2,4,8} — weighted-caching reduction"
      ~aligns:[ Tbl.Right; Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Left ]
      [ "k"; "policy"; "cost"; "offline cost"; "k*offline"; "<= k-competitive" ]
  in
  let violations = ref 0 in
  let policies =
    [
      Ccache_core.Alg_discrete.policy;
      Ccache_policies.Landlord.adaptive;
      Ccache_policies.Landlord.static;
      Ccache_policies.Lru.policy;
    ]
  in
  (* All (k, policy) cells replay the one weighted-Zipf trace: a single
     fused scan covers the whole grid. *)
  let results =
    Ccache_sim.Sweep.run_cells
      (List.concat_map
         (fun k -> List.map (fun p -> Ccache_sim.Sweep.cell ~k ~costs p trace) policies)
         ks)
  in
  List.iter2
    (fun k results ->
      let offline =
        Ccache_offline.Best_of.compute ~local_search_rounds:0 ~cache_size:k ~costs
          trace
      in
      List.iter2
        (fun policy r ->
          let cost = Metrics.total_cost ~costs r in
          let bound = float_of_int k *. offline.Ccache_offline.Best_of.cost in
          let is_alg =
            Ccache_sim.Policy.name policy = "alg-discrete"
          in
          let holds = cost <= bound +. 1e-9 in
          if is_alg && not holds then incr violations;
          Tbl.add_row table
            [
              Tbl.cell_int k;
              Ccache_sim.Policy.name policy;
              Tbl.cell_float ~digits:6 cost;
              Tbl.cell_float ~digits:6 offline.Ccache_offline.Best_of.cost;
              Tbl.cell_float ~digits:6 bound;
              (if holds then "yes" else if is_alg then "VIOLATED" else "no (baseline)");
            ])
        policies results)
    ks
    (Ccache_sim.Sweep.rows ~width:(List.length policies) results);
  (* alpha sanity: linear costs have alpha exactly 1 *)
  let alpha = Theory.alpha_of_costs costs in
  Experiment.output ~id:"e6" ~title:"Linear-cost reduction to weighted caching"
    ~notes:
      [
        Printf.sprintf "alpha(linear costs) = %g (theory: 1)" alpha;
        Printf.sprintf "k-competitiveness violations for alg-discrete: %d" !violations;
        "alg-discrete and landlord-adaptive track each other closely under \
         linear costs, as the theory predicts for the weighted special case";
      ]
    [ table ]

let spec =
  {
    Experiment.id = "e6";
    title = "Linear-cost reduction to weighted caching";
    claim = "linear f_i => alpha = 1 => classical k-competitive weighted caching";
    run;
  }
