(** Rendering experiment outputs as text or markdown (EXPERIMENTS.md
    regeneration). *)

type format = Text | Markdown

val render_output : format -> Experiment.output -> string
val run_and_render : ?fmt:format -> size:Experiment.size -> Experiment.t -> string
val run_suite :
  ?fmt:format ->
  ?pool:Ccache_util.Domain_pool.t ->
  size:Experiment.size ->
  Experiment.t list ->
  string
(** Render a whole suite.  With [?pool] the experiments execute
    concurrently (collect-then-print), and the returned report is
    byte-identical to the sequential one. *)
