(** Rendering experiment outputs as text or markdown (EXPERIMENTS.md
    regeneration). *)

type format = Text | Markdown

val render_output : format -> Experiment.output -> string
val run_and_render : ?fmt:format -> size:Experiment.size -> Experiment.t -> string
val run_suite :
  ?fmt:format ->
  ?pool:Ccache_util.Domain_pool.t ->
  size:Experiment.size ->
  Experiment.t list ->
  string
(** Render a whole suite.  With [?pool] the experiments execute
    concurrently (collect-then-print), and the returned report is
    byte-identical to the sequential one. *)

(** {1 Supervised suites} *)

type supervised = {
  report : string;
      (** completed sections concatenated in spec order — byte-identical
          to {!run_suite} when nothing was quarantined, whatever faults
          were injected and retried along the way *)
  failures : Ccache_util.Supervisor.failure list;
      (** quarantined experiments, in spec order *)
  replayed : string list;  (** ids served from the checkpoint *)
}

val fingerprint :
  fmt:format -> size:Experiment.size -> Experiment.t list -> string
(** Single-line digest of everything that affects section bytes (format,
    size, spec ids) — the {!Ccache_util.Checkpoint} fingerprint for
    supervised suite runs. *)

val run_suite_supervised :
  ?fmt:format ->
  ?pool:Ccache_util.Domain_pool.t ->
  ?policy:Ccache_util.Supervisor.policy ->
  ?fault:Ccache_util.Fault.t ->
  ?checkpoint:Ccache_util.Checkpoint.t ->
  ?on_event:(Ccache_util.Supervisor.event -> unit) ->
  size:Experiment.size ->
  Experiment.t list ->
  supervised
(** Run and render a suite under supervision (see
    [Ccache_util.Supervisor] for the failure model).  Rendering happens
    inside each task, so with [?checkpoint] the snapshot stores each
    section's final bytes and a later resume replays them verbatim —
    the checkpoint must have been created with {!fingerprint} for this
    exact configuration. *)
