(** The complete experiment suite, in DESIGN.md order. *)

let all : Experiment.t list =
  [
    Exp_thm11.spec;
    Exp_monomial.spec;
    Exp_bicriteria.spec;
    Exp_lowerbound.spec;
    Exp_sla.spec;
    Exp_linear.spec;
    Exp_invariants.spec;
    Exp_cp_gap.spec;
    Exp_ablations.spec;
    Exp_multipool.spec;
    Exp_certificates.spec;
    Exp_fractional.spec;
    Exp_dbsim.spec;
    Exp_windows.spec;
    Exp_serve.spec;
  ]

let find id = List.find_opt (fun (e : Experiment.t) -> e.Experiment.id = id) all

let ids = List.map (fun (e : Experiment.t) -> e.Experiment.id) all

(** Run the whole suite, optionally on a domain pool; outputs are in
    DESIGN.md order whatever the pool size. *)
let run_all ?pool ~size () = Experiment.run_all ?pool ~size all

(** Supervised whole-suite run: quarantines are isolated per
    experiment, outcomes stay in DESIGN.md order. *)
let run_all_supervised ?pool ?policy ?fault ?on_event ~size () =
  Experiment.run_all_supervised ?pool ?policy ?fault ?on_event ~size all
