(** Experiment descriptors (see DESIGN.md Section 4).  [Quick] sizes
    keep the full suite test-friendly; [Full] sizes are what
    EXPERIMENTS.md records. *)

type size = Quick | Full

type output = {
  id : string;
  title : string;
  tables : Ccache_util.Ascii_table.t list;
  notes : string list;  (** one-line prose conclusions *)
}

type t = {
  id : string;
  title : string;
  claim : string;  (** which paper statement this exercises *)
  run : size -> output;
}

val output :
  id:string ->
  title:string ->
  ?notes:string list ->
  Ccache_util.Ascii_table.t list ->
  output

val register : t -> unit
(** Add an experiment to the global registry.  Mutex-guarded, so it is
    safe from any domain (registration normally happens at module
    initialisation, before any pool exists). *)

val all : unit -> t list
(** Registered experiments in registration order (mutex-guarded
    snapshot). *)

val find : string -> t option

val run_all :
  ?pool:Ccache_util.Domain_pool.t ->
  ?chunk:int ->
  size:size ->
  t list ->
  output list
(** Run experiments (in parallel when [?pool] is given), returning
    outputs in spec order.  Every experiment derives its randomness
    from fixed seeds, so the outputs are identical at any pool size —
    and at any [?chunk] grain (consecutive experiments batched per pool
    task, see {!Ccache_util.Domain_pool.parallel_map}). *)

val run_all_supervised :
  ?pool:Ccache_util.Domain_pool.t ->
  ?policy:Ccache_util.Supervisor.policy ->
  ?fault:Ccache_util.Fault.t ->
  ?on_event:(Ccache_util.Supervisor.event -> unit) ->
  size:size ->
  t list ->
  (t * output Ccache_util.Supervisor.outcome) list
(** Like {!run_all} under supervision: a crashing experiment is
    quarantined in place while every other spec completes; injected
    transients and deadline misses are retried.  Experiments re-seed
    internally on each call, so retries reproduce the first attempt's
    output bit-for-bit and the completed outputs match {!run_all}'s. *)
