(** E13 — query-compiled buffer-pool workloads: the SQLVM scenario
    rebuilt from the query level (lib/dbsim) rather than from raw page
    statistics.

    An OLTP tenant (hot-key point lookups + inserts) and a reporting
    tenant (point reads + range/full scans) share one buffer pool.
    Two SLA regimes per cache size:

    - {e saturated}: tolerances far below what any policy can achieve,
      so every tenant sits in its constant-penalty tail — the problem
      degenerates to weighted caching, and pure hit-ratio maximisation
      (LFU exploiting the hot B-tree roots) wins;
    - {e binding}: tolerances calibrated just above the offline
      optimum's per-tenant misses, so staying under the cliff is
      actually possible;
    - {e smooth}: strictly convex x^2 cost for the OLTP tenant, linear
      for the reporting tenant — marginals always positive and
      diverging.

    The three-way contrast is the experiment's point.  Hinge SLAs make
    the marginal-cost-myopic algorithm evict a protected tenant's
    hottest pages while it is under its cliff (marginal zero), so
    frequency exploitation wins both hinge regimes on this strongly
    frequency-skewed traffic; with smooth convex costs the paper's
    algorithm wins by a wide margin on the very same trace.  This is
    the behaviour that led the companion production system to deploy
    engineered variants (paper Section 2.5's remark that the
    algorithm accepts arbitrary cost surrogates). *)

module Tbl = Ccache_util.Ascii_table
module Engine = Ccache_sim.Engine
module Metrics = Ccache_sim.Metrics
module WG = Ccache_dbsim.Workload_gen

let run size =
  let queries, scale, ks =
    match size with
    | Experiment.Quick -> (2000, 1, [ 48 ])
    | Experiment.Full -> (10000, 2, [ 64; 160 ])
  in
  let profiles = WG.oltp_reporting ~scale in
  let trace, stats = WG.generate ~seed:131 ~queries profiles in
  (* saturated regime: tolerances of ~2% of page volume are hopeless
     at these cache sizes, so both tenants pay per miss throughout *)
  let saturated_costs =
    Array.mapi
      (fun u pages ->
        let tolerance = 0.02 *. float_of_int pages in
        let penalty_rate = if u = 0 then 8.0 else 2.0 in
        Ccache_cost.Sla.hinge ~tolerance ~penalty_rate)
      stats.WG.pages_per_tenant
  in
  (* binding regime: tolerances sit 30% above the offline optimum's
     per-tenant misses (the oracle is used only to size the scenario).
     The per-k belady calibration runs are themselves one fused batch
     over the shared trace. *)
  let belady_by_k =
    let uni =
      Array.map
        (fun _ -> Ccache_cost.Cost_function.linear ~slope:1.0 ())
        stats.WG.pages_per_tenant
    in
    List.combine ks
      (Ccache_sim.Sweep.run_cells
         (List.map
            (fun k ->
              Ccache_sim.Sweep.cell ~k ~costs:uni Ccache_policies.Belady.policy
                trace)
            ks))
  in
  let binding_costs ~k =
    let belady = List.assoc k belady_by_k in
    Array.mapi
      (fun u _ ->
        let baseline = float_of_int belady.Engine.misses_per_user.(u) in
        let penalty_rate = if u = 0 then 8.0 else 2.0 in
        Ccache_cost.Sla.hinge ~tolerance:(1.3 *. baseline) ~penalty_rate)
      stats.WG.pages_per_tenant
  in
  let head =
    Tbl.create ~title:"E13: query mix (compiled to pages by lib/dbsim)"
      ~aligns:[ Tbl.Left; Tbl.Right ]
      [ "query kind"; "count" ]
  in
  List.iter
    (fun (k, c) -> Tbl.add_row head [ k; Tbl.cell_int c ])
    stats.WG.queries_by_kind;
  let policies =
    Ccache_policies.Registry.all
    @ [ Ccache_core.Alg_discrete.policy; Ccache_core.Alg_fast.policy ]
  in
  let first_online tbl =
    let rec go rows =
      match rows with
      | [] -> None
      | (name :: _) :: tl ->
          if name <> "belady" && name <> "convex-belady" then Some name else go tl
      | [] :: tl -> go tl
    in
    go (Tbl.rows tbl)
  in
  let smooth_costs =
    [|
      Ccache_cost.Cost_function.monomial ~beta:2.0 ();
      Ccache_cost.Cost_function.linear ~slope:1.0 ();
    |]
  in
  (* All three regimes share the one compiled trace, so the whole
     regime x k x policy grid is a single fused scan. *)
  let regime_points =
    List.concat_map
      (fun (regime, costs_of_k) ->
        List.map (fun k -> (regime, k, costs_of_k ~k)) ks)
      [
        ("saturated", fun ~k:_ -> saturated_costs);
        ("binding", fun ~k -> binding_costs ~k);
        ("smooth convex", fun ~k:_ -> smooth_costs);
      ]
  in
  let grid_results =
    Ccache_sim.Sweep.run_cells
      (List.concat_map
         (fun (_, k, costs) ->
           List.map (fun p -> Ccache_sim.Sweep.cell ~k ~costs p trace) policies)
         regime_points)
  in
  let point_tables =
    List.map2
      (fun (regime, k, costs) results ->
        Metrics.comparison_table
          ~title:
            (Printf.sprintf "E13: %s SLAs, k=%d (%d queries, %d page requests)"
               regime k queries (Ccache_trace.Trace.length trace))
          ~costs results)
      regime_points
      (Ccache_sim.Sweep.rows ~width:(List.length policies) grid_results)
  in
  let saturated_tables, binding_tables, smooth_tables =
    match Ccache_sim.Sweep.rows ~width:(List.length ks) point_tables with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let cost_aware name =
    name = "alg-discrete" || name = "alg-discrete-fast" || name = "landlord-adaptive"
  in
  let smooth_cost_aware =
    List.for_all
      (fun tbl -> match first_online tbl with Some n -> cost_aware n | None -> false)
      smooth_tables
  in
  let tables = saturated_tables @ binding_tables @ smooth_tables in
  Experiment.output ~id:"e13" ~title:"Query-compiled buffer pool (dbsim)"
    ~notes:
      [
        Printf.sprintf
          "smooth-convex regime: best online policy cost-aware on every k: %b"
          smooth_cost_aware;
        "hinge regimes (saturated and binding): frequency exploitation (LFU \
         on the hot B-tree roots) wins — under a hinge the protected \
         tenant's marginal is zero, so the marginal-myopic algorithm evicts \
         its hottest pages for free and forfeits the hit-ratio structure; \
         an honest negative result matching why the companion production \
         system deployed engineered cost surrogates";
        "smooth-convex regime: on the very same trace the paper's algorithm \
         wins by ~3x over LFU by shifting misses onto the linear tenant — \
         cost-awareness pays exactly when marginals are informative";
      ]
    (head :: tables)

let spec =
  {
    Experiment.id = "e13";
    title = "Query-compiled buffer pool (dbsim)";
    claim = "SQLVM from the query level: when cost-awareness pays, and when hinge myopia loses";
    run;
  }
