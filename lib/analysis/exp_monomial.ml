(** E2 — Corollary 1.2: with f_i(x) = x^beta the algorithm is
    beta^beta k^beta competitive.

    Sweeps beta and k; reports the measured ratio as a bracket
    [online/best-of, online/dual-LB] next to the corollary's bound.
    The bracket's upper end must stay below the bound, and ratios drift
    upward with k on a fixed workload family. *)

module Tbl = Ccache_util.Ascii_table
module Engine = Ccache_sim.Engine
module Theory = Ccache_core.Theory

let run size =
  let length, ks, betas, dual_iters =
    match size with
    | Experiment.Quick -> (800, [ 8; 16 ], [ 1.0; 2.0 ], 60)
    | Experiment.Full -> (3000, [ 4; 8; 16; 32 ], [ 1.0; 2.0; 3.0 ], 150)
  in
  let table =
    Tbl.create
      ~title:"E2: Corollary 1.2 (f = x^beta): measured ratio bracket vs beta^beta k^beta"
      ~aligns:[ Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Left ]
      [ "beta"; "k"; "ALG cost"; "offline<="; "dual-LB>="; "ratio-bracket"; "bound"; "holds" ]
  in
  let violations = ref 0 in
  (* The two-tenant trace depends only on (seed, length, pages) — beta
     enters through the costs alone — so one materialization serves the
     whole (beta, k) grid and the fused path replays it in one scan.
     Identical rows to the old per-cell scenario rebuilds. *)
  let trace =
    (Scenarios.two_tenant_monomial ~seed:21 ~length ~beta:(List.hd betas)
       ~pages:64)
      .Scenarios.trace
  in
  let points =
    List.concat_map
      (fun beta ->
        let costs = Scenarios.monomial_costs ~beta 2 in
        List.map (fun k -> (beta, k, costs)) ks)
      betas
  in
  let results =
    Ccache_sim.Sweep.run_cells
      (List.map
         (fun (_, k, costs) ->
           Ccache_sim.Sweep.cell ~k ~costs Ccache_core.Alg_discrete.policy trace)
         points)
  in
  List.iter2
    (fun (beta, k, costs) r ->
      let offline =
        Ccache_offline.Best_of.compute ~local_search_rounds:0 ~cache_size:k
          ~costs trace
      in
      let dual_lb =
        Ccache_cp.Dual_solver.lower_bound
          ~options:{ Ccache_cp.Dual_solver.default_options with iterations = dual_iters }
          ~k ~costs trace
      in
      let check =
        Theory.check_thm11 ~alpha:beta ~costs ~k ~a:r.Engine.misses_per_user
          ~b:offline.Ccache_offline.Best_of.misses_per_user ()
      in
      let bound = Theory.cor12_bound ~beta ~k in
      let br =
        Competitive.bracket
          ~offline_lower:dual_lb
          ~online_cost:check.Theory.lhs
          ~offline_upper:offline.Ccache_offline.Best_of.cost ()
      in
      if not check.Theory.holds then incr violations;
      Tbl.add_row table
        [
          Tbl.cell_float ~digits:2 beta;
          Tbl.cell_int k;
          Tbl.cell_float ~digits:6 check.Theory.lhs;
          Tbl.cell_float ~digits:6 offline.Ccache_offline.Best_of.cost;
          Tbl.cell_float ~digits:6 dual_lb;
          Fmt.str "%a" Competitive.pp_bracket br;
          Tbl.cell_float ~digits:4 bound;
          (if check.Theory.holds then "yes" else "VIOLATED");
        ])
    points results;
  Experiment.output ~id:"e2" ~title:"Corollary 1.2 monomial-cost sweep"
    ~notes:
      [
        Printf.sprintf "violations: %d (corollary requires 0)" !violations;
        "the bracket upper end (vs the dual lower bound) stays orders of \
         magnitude below the worst-case beta^beta k^beta on these workloads";
      ]
    [ table ]

let spec =
  {
    Experiment.id = "e2";
    title = "Corollary 1.2 monomial-cost sweep";
    claim = "Cor 1.2: algorithm is beta^beta k^beta-competitive for x^beta";
    run;
  }
