(** E12 — the fractional relaxation online: BBN exponential-update
    fractional caching (the LP substrate the paper builds on, §1.3)
    vs the integral algorithms.

    Two regimes:

    - the LRU-nemesis cycle over k+1 pages, where every deterministic
      integral algorithm pays ~k times offline, while the fractional
      algorithm pays only ~H_k ≈ ln k — the classical integrality-of-
      determinism gap;
    - weighted multi-tenant Zipf, where the fractional cost
      lower-bounds what any determinisation of the same scheme could
      achieve. *)

module Tbl = Ccache_util.Ascii_table
module Engine = Ccache_sim.Engine
module Frac = Ccache_core.Alg_fractional
module Cf = Ccache_cost.Cost_function

let run size =
  let ks, length =
    match size with
    | Experiment.Quick -> ([ 8; 16 ], 2000)
    | Experiment.Full -> ([ 8; 16; 32; 64 ], 8000)
  in
  (* --- regime 1: the cycle nemesis --- *)
  let nemesis =
    Tbl.create
      ~title:"E12a: cycle over k+1 pages — fractional escapes the deterministic k"
      ~aligns:[ Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right ]
      [ "k"; "offline"; "fractional"; "lru"; "alg-discrete"; "frac/off"; "ln k + 1" ]
  in
  (* Each k has its own k+1-cycle trace, so the fused run degenerates
     to one group per k (the per-group fallback); within a k the two
     integral policies still share a single scan. *)
  let nemesis_costs = [| Cf.linear ~slope:1.0 () |] in
  let nemesis_traces =
    List.map
      (fun k ->
        ( k,
          Ccache_trace.Workloads.generate ~seed:121 ~length
            (Ccache_trace.Workloads.lru_nemesis ~k) ))
      ks
  in
  let nemesis_results =
    Ccache_sim.Sweep.run_cells
      (List.concat_map
         (fun (k, trace) ->
           [
             Ccache_sim.Sweep.cell ~k ~costs:nemesis_costs
               Ccache_policies.Lru.policy trace;
             Ccache_sim.Sweep.cell ~k ~costs:nemesis_costs
               Ccache_core.Alg_discrete.policy trace;
           ])
         nemesis_traces)
  in
  List.iter2
    (fun (k, trace) pair ->
      let lru, alg =
        match pair with [ a; b ] -> (a, b) | _ -> assert false
      in
      let costs = nemesis_costs in
      let offline =
        Ccache_offline.Best_of.compute ~local_search_rounds:0 ~cache_size:k
          ~costs trace
      in
      let frac = Frac.run ~k ~costs trace in
      let cost r = Ccache_sim.Metrics.total_cost ~costs r in
      Tbl.add_row nemesis
        [
          Tbl.cell_int k;
          Tbl.cell_float ~digits:6 offline.Ccache_offline.Best_of.cost;
          Tbl.cell_float ~digits:6 frac.Frac.movement_cost;
          Tbl.cell_float ~digits:6 (cost lru);
          Tbl.cell_float ~digits:6 (cost alg);
          Tbl.cell_ratio
            (frac.Frac.movement_cost /. offline.Ccache_offline.Best_of.cost);
          Tbl.cell_float ~digits:3 (log (float_of_int k) +. 1.0);
        ])
    nemesis_traces
    (Ccache_sim.Sweep.rows ~width:2 nemesis_results);
  (* --- regime 2: weighted multi-tenant --- *)
  let weighted =
    Tbl.create
      ~title:"E12b: weighted zipf tenants (w = 1,2,4,8) — fractional vs integral"
      ~aligns:[ Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right ]
      [ "k"; "offline"; "fractional"; "alg-discrete"; "landlord" ]
  in
  (* The weighted trace does not depend on k — hoist it so every
     (k, policy) cell shares one scan. *)
  let wtrace =
    Ccache_trace.Workloads.generate ~seed:122 ~length
      (Ccache_trace.Workloads.symmetric_zipf ~tenants:4 ~pages_per_tenant:40
         ~skew:0.8)
  in
  let wcosts = Scenarios.weighted_costs 4 in
  let weighted_results =
    Ccache_sim.Sweep.run_cells
      (List.concat_map
         (fun k ->
           [
             Ccache_sim.Sweep.cell ~k ~costs:wcosts
               Ccache_core.Alg_discrete.policy wtrace;
             Ccache_sim.Sweep.cell ~k ~costs:wcosts
               Ccache_policies.Landlord.adaptive wtrace;
           ])
         ks)
  in
  List.iter2
    (fun k pair ->
      let alg, ll =
        match pair with [ a; b ] -> (a, b) | _ -> assert false
      in
      let costs = wcosts in
      let offline =
        Ccache_offline.Best_of.compute ~local_search_rounds:0 ~cache_size:k
          ~costs wtrace
      in
      let frac = Frac.run ~k ~costs wtrace in
      let cost r = Ccache_sim.Metrics.total_cost ~costs r in
      Tbl.add_row weighted
        [
          Tbl.cell_int k;
          Tbl.cell_float ~digits:6 offline.Ccache_offline.Best_of.cost;
          Tbl.cell_float ~digits:6 frac.Frac.movement_cost;
          Tbl.cell_float ~digits:6 (cost alg);
          Tbl.cell_float ~digits:6 (cost ll);
        ])
    ks
    (Ccache_sim.Sweep.rows ~width:2 weighted_results);
  Experiment.output ~id:"e12" ~title:"Fractional relaxation online (BBN substrate)"
    ~notes:
      [
        "on the cycle nemesis the fractional ratio stays near ln k + 1 while \
         every deterministic integral policy (LRU, ALG-DISCRETE alike) pays \
         the full factor ~k — the randomization/integrality gap the paper's \
         Section 1.3 alludes to via [3]";
        "on the weighted workloads the online fractional scheme tracks the \
         integral algorithms closely (it is an online algorithm itself, not \
         the fractional optimum, so it need not sit below them)";
      ]
    [ nemesis; weighted ]

let spec =
  {
    Experiment.id = "e12";
    title = "Fractional relaxation online (BBN substrate)";
    claim = "Section 1.3: the BBN LP substrate; fractional beats the deterministic k barrier";
    run;
  }
