(** The complete experiment suite, in DESIGN.md order (E1..E14). *)

val all : Experiment.t list
val find : string -> Experiment.t option
val ids : string list

val run_all :
  ?pool:Ccache_util.Domain_pool.t ->
  size:Experiment.size ->
  unit ->
  Experiment.output list
(** Run every experiment (concurrently when [?pool] is given); outputs
    are always in DESIGN.md order. *)
