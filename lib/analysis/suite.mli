(** The complete experiment suite, in DESIGN.md order (E1..E14). *)

val all : Experiment.t list
val find : string -> Experiment.t option
val ids : string list

val run_all :
  ?pool:Ccache_util.Domain_pool.t ->
  size:Experiment.size ->
  unit ->
  Experiment.output list
(** Run every experiment (concurrently when [?pool] is given); outputs
    are always in DESIGN.md order. *)

val run_all_supervised :
  ?pool:Ccache_util.Domain_pool.t ->
  ?policy:Ccache_util.Supervisor.policy ->
  ?fault:Ccache_util.Fault.t ->
  ?on_event:(Ccache_util.Supervisor.event -> unit) ->
  size:Experiment.size ->
  unit ->
  (Experiment.t * Experiment.output Ccache_util.Supervisor.outcome) list
(** {!run_all} under supervision: a crashing experiment is quarantined
    in place while the rest of the suite completes; outcomes stay in
    DESIGN.md order. *)
