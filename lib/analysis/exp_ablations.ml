(** E9 — ablations of the design decisions (DESIGN.md Section 3):

    - drop the same-owner marginal bump ([no-bump]);
    - drop the uniform budget decay ([no-subtract] = greedy marginal);
    - analytic derivative instead of discrete marginal;
    - fast (offset-decomposed) vs reference implementation —
      equal costs expected, and with integer-valued costs equal
      victim-for-victim (the property tests enforce the latter).

    Each variant still runs, but only the full rule set carries the
    paper's guarantee; the table shows what each rule buys. *)

module Tbl = Ccache_util.Ascii_table
module Engine = Ccache_sim.Engine
module Metrics = Ccache_sim.Metrics
module Alg = Ccache_core.Alg_discrete

let run size =
  let length, ks =
    match size with
    | Experiment.Quick -> (2000, [ 32 ])
    | Experiment.Full -> (8000, [ 32; 96 ])
  in
  let s = Scenarios.zipf ~seed:91 ~length ~tenants:4 ~pages:64 ~skew:0.9 in
  let monomial = Scenarios.monomial_costs ~beta:2.0 4 in
  let variants =
    [
      Alg.policy;
      Alg.analytic;
      Alg.no_bump;
      Alg.no_subtract;
      Ccache_core.Alg_fast.policy;
    ]
  in
  (* One fused batch covers the ablation grid AND the fast-vs-reference
     agreement re-runs (two extra cells per k, matching the old
     recomputation exactly). *)
  let grid_cells =
    List.concat_map
      (fun k ->
        List.map
          (fun p -> Ccache_sim.Sweep.cell ~k ~costs:monomial p s.Scenarios.trace)
          variants)
      ks
  in
  let agree_cells =
    List.concat_map
      (fun k ->
        [
          Ccache_sim.Sweep.cell ~k ~costs:monomial Alg.policy s.Scenarios.trace;
          Ccache_sim.Sweep.cell ~k ~costs:monomial Ccache_core.Alg_fast.policy
            s.Scenarios.trace;
        ])
      ks
  in
  let all_results = Ccache_sim.Sweep.run_cells (grid_cells @ agree_cells) in
  let n_grid = List.length grid_cells in
  let grid_results = List.filteri (fun i _ -> i < n_grid) all_results in
  let agree_results = List.filteri (fun i _ -> i >= n_grid) all_results in
  let tables =
    List.map2
      (fun k results ->
        Metrics.comparison_table
          ~title:
            (Printf.sprintf "E9: ALG-DISCRETE ablations, %s, x^2 costs, k=%d"
               s.Scenarios.name k)
          ~costs:monomial results)
      ks
      (Ccache_sim.Sweep.rows ~width:(List.length variants) grid_results)
  in
  (* fast = reference cost identity *)
  let agree =
    List.for_all
      (fun pair ->
        match pair with
        | [ a; b ] -> a.Engine.misses_per_user = b.Engine.misses_per_user
        | _ -> assert false)
      (Ccache_sim.Sweep.rows ~width:2 agree_results)
  in
  Experiment.output ~id:"e9" ~title:"ALG-DISCRETE ablations"
    ~notes:
      [
        Printf.sprintf "fast = reference (identical miss vectors): %b" agree;
        "no-subtract (pure greedy marginal) loses the recency signal and \
         degrades most; no-bump weakens inter-page coupling within a user; \
         analytic vs discrete marginals differ marginally on smooth costs";
      ]
    tables

let spec =
  {
    Experiment.id = "e9";
    title = "ALG-DISCRETE ablations";
    claim = "design decisions 1-3 of DESIGN.md: each update rule is load-bearing";
    run;
  }
