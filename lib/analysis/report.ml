(** Rendering experiment outputs as text or markdown (for
    EXPERIMENTS.md regeneration). *)

module Tbl = Ccache_util.Ascii_table

type format = Text | Markdown

let render_output fmt (o : Experiment.output) =
  let buf = Buffer.create 1024 in
  (match fmt with
  | Text ->
      Buffer.add_string buf (Printf.sprintf "=== %s: %s ===\n" (String.uppercase_ascii o.Experiment.id) o.Experiment.title)
  | Markdown ->
      Buffer.add_string buf (Printf.sprintf "## %s — %s\n\n" (String.uppercase_ascii o.Experiment.id) o.Experiment.title));
  List.iter
    (fun t ->
      Buffer.add_string buf
        (match fmt with Text -> Tbl.to_string t | Markdown -> Tbl.to_markdown t);
      Buffer.add_char buf '\n')
    o.Experiment.tables;
  List.iter
    (fun note ->
      Buffer.add_string buf
        (match fmt with Text -> "note: " ^ note ^ "\n" | Markdown -> "- " ^ note ^ "\n"))
    o.Experiment.notes;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let run_and_render ?(fmt = Text) ~size (e : Experiment.t) =
  render_output fmt (e.Experiment.run size)

(* Collect-then-print: with a pool the experiments run concurrently but
   all rendering happens afterwards, in spec order, so the suite report
   is byte-identical to the sequential one. *)
let run_suite ?(fmt = Text) ?pool ~size specs =
  Experiment.run_all ?pool ~size specs
  |> List.map (render_output fmt)
  |> String.concat ""

(* ------------------------------------------------------------------ *)
(* Supervised suites: quarantine, chaos, checkpoint/resume             *)
(* ------------------------------------------------------------------ *)

module S = Ccache_util.Supervisor

type supervised = {
  report : string;  (** completed sections, concatenated in spec order *)
  failures : S.failure list;  (** quarantined experiments, spec order *)
  replayed : string list;  (** ids served from the checkpoint *)
}

let fmt_tag = function Text -> "text" | Markdown -> "markdown"
let size_tag = function Experiment.Quick -> "quick" | Experiment.Full -> "full"

(* Everything that affects a section's bytes goes into the fingerprint,
   so a checkpoint can only replay into the configuration that wrote
   it (Checkpoint.load rejects mismatches). *)
let fingerprint ~fmt ~size specs =
  Printf.sprintf "suite-v1 fmt=%s size=%s ids=%s" (fmt_tag fmt) (size_tag size)
    (String.concat "," (List.map (fun e -> e.Experiment.id) specs))

(* Rendering happens inside the task, so the checkpoint stores the
   section's final bytes and a resume replays them verbatim. *)
let run_suite_supervised ?(fmt = Text) ?pool ?policy ?fault ?checkpoint
    ?on_event ~size specs =
  let replayed_lock = Mutex.create () in
  let replayed = ref [] in
  let observe ev =
    (match ev with
    | S.Replayed { task } ->
        (* already serialised by the supervisor's event mutex, but stay
           self-contained in case callers ever emit directly *)
        Mutex.protect replayed_lock (fun () -> replayed := task :: !replayed)
    | _ -> ());
    match on_event with None -> () | Some f -> f ev
  in
  let tasks =
    List.map
      (fun e ->
        {
          S.id = e.Experiment.id;
          run = (fun _ctx -> render_output fmt (e.Experiment.run size));
        })
      specs
  in
  let outcomes =
    S.run ?pool ?policy ?fault ?checkpoint ~codec:S.string_codec
      ~on_event:observe tasks
  in
  {
    report = String.concat "" (S.completed outcomes);
    failures = S.failures outcomes;
    replayed = List.rev !replayed;
  }
