(** Rendering experiment outputs as text or markdown (for
    EXPERIMENTS.md regeneration). *)

module Tbl = Ccache_util.Ascii_table

type format = Text | Markdown

let render_output fmt (o : Experiment.output) =
  let buf = Buffer.create 1024 in
  (match fmt with
  | Text ->
      Buffer.add_string buf (Printf.sprintf "=== %s: %s ===\n" (String.uppercase_ascii o.Experiment.id) o.Experiment.title)
  | Markdown ->
      Buffer.add_string buf (Printf.sprintf "## %s — %s\n\n" (String.uppercase_ascii o.Experiment.id) o.Experiment.title));
  List.iter
    (fun t ->
      Buffer.add_string buf
        (match fmt with Text -> Tbl.to_string t | Markdown -> Tbl.to_markdown t);
      Buffer.add_char buf '\n')
    o.Experiment.tables;
  List.iter
    (fun note ->
      Buffer.add_string buf
        (match fmt with Text -> "note: " ^ note ^ "\n" | Markdown -> "- " ^ note ^ "\n"))
    o.Experiment.notes;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let run_and_render ?(fmt = Text) ~size (e : Experiment.t) =
  render_output fmt (e.Experiment.run size)

(* Collect-then-print: with a pool the experiments run concurrently but
   all rendering happens afterwards, in spec order, so the suite report
   is byte-identical to the sequential one. *)
let run_suite ?(fmt = Text) ?pool ~size specs =
  Experiment.run_all ?pool ~size specs
  |> List.map (render_output fmt)
  |> String.concat ""
