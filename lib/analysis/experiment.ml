(** Experiment descriptors and the registry (see DESIGN.md Section 4).

    Each experiment is a pure function from a size knob to a set of
    tables; `bin/experiments.ml` prints them and EXPERIMENTS.md records
    a reference run.  [Quick] sizes keep the full suite under ~a minute
    for `dune runtest`-adjacent use; [Full] sizes are what
    EXPERIMENTS.md reports. *)

type size = Quick | Full

type output = {
  id : string;
  title : string;
  tables : Ccache_util.Ascii_table.t list;
  notes : string list;  (** prose conclusions, one line each *)
}

type t = {
  id : string;
  title : string;
  claim : string;  (** which paper statement this exercises *)
  run : size -> output;
}

(* Registration normally happens at module-initialisation time (single
   domain), but nothing stops a caller registering from a pool task, so
   the registry guards its shared ref with a mutex rather than merely
   documenting main-domain-only use. *)
let registry : t list ref = ref []
let registry_mutex = Mutex.create ()
let register e =
  Mutex.protect registry_mutex (fun () -> registry := e :: !registry)
  [@@effects.forgive "gwrite"]
let all () = List.rev (Mutex.protect registry_mutex (fun () -> !registry))
let find id = List.find_opt (fun e -> e.id = id) (all ())

let output ~id ~title ?(notes = []) tables = { id; title; tables; notes }

(** Run independent experiments, optionally on a domain pool.  Outputs
    come back in spec order, so callers can collect-then-print and get
    byte-identical reports at any pool size (each experiment seeds its
    own PRNGs internally and shares no mutable state). *)
let run_all ?pool ?chunk ~size specs =
  Ccache_util.Domain_pool.map_list ?pool ?chunk
    ~f:(fun e ->
      Ccache_obs.Span.with_ ~cat:"experiment"
        ~args:[ ("id", Ccache_obs.Sink.Str e.id) ]
        ("experiment:" ^ e.id)
        (fun () -> e.run size))
    specs

(** Supervised runner: one raising experiment is quarantined (its slot
    reports the failure) while the rest of the suite completes; injected
    transients and deadline misses are retried.  Experiments re-seed
    their own PRNGs on every call, so a retried run recomputes exactly
    the first attempt's tables and outputs stay byte-identical. *)
let run_all_supervised ?pool ?policy ?fault ?on_event ~size specs =
  let module S = Ccache_util.Supervisor in
  let tasks =
    List.map (fun e -> { S.id = e.id; run = (fun _ctx -> e.run size) }) specs
  in
  List.combine specs (S.run ?pool ?policy ?fault ?on_event tasks)
