(** Convex piecewise-linear functions through the origin.

    Represented as an array of [(breakpoint, slope)] pairs sorted by
    breakpoint; [slope_j] applies on [x >= breakpoint_j] until the next
    breakpoint.  The first breakpoint must be [0.0].  Convexity (and
    hence a valid alpha) requires slopes to be non-decreasing; the
    builders in {!Sla} always produce convex curves, but [validate]
    accepts non-convex slope sequences too because the paper's algorithm
    runs (without guarantee) on arbitrary costs. *)

let validate segments =
  let segs = Array.copy segments in
  if Array.length segs = 0 then invalid_arg "Piecewise.validate: empty";
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) segs;
  let x0, _ = segs.(0) in
  (* Breakpoints are user-supplied constants; the first must be
     literally 0, so the exact test is the specification. *)
  if (x0 <> 0.0 [@lint.allow "float-eq"]) then
    invalid_arg "Piecewise.validate: first breakpoint must be 0";
  Array.iteri
    (fun i (x, s) ->
      if s < 0.0 then invalid_arg "Piecewise.validate: negative slope";
      if i > 0 then begin
        let px, _ = segs.(i - 1) in
        if x = px then invalid_arg "Piecewise.validate: duplicate breakpoint"
      end)
    segs;
  segs

let is_convex segs =
  let ok = ref true in
  for i = 1 to Array.length segs - 1 do
    let _, s0 = segs.(i - 1) and _, s1 = segs.(i) in
    if s1 < s0 then ok := false
  done;
  !ok

(* invariant: breakpoint(lo) <= x, breakpoint(hi) > x or hi = n.
   Toplevel rather than a local closure: [segment_index] sits on the
   eviction hot path of SLA cost functions, and a local [bsearch]
   capturing [segs] and [x] costs a closure allocation per call. *)
let rec bsearch segs x lo hi =
  if hi - lo <= 1 then lo
  else
    let mid = (lo + hi) / 2 in
    let bx, _ = segs.(mid) in
    if bx <= x then bsearch segs x mid hi else bsearch segs x lo mid

(* Index of the segment containing x: greatest i with breakpoint_i <= x. *)
let segment_index segs x = bsearch segs x 0 (Array.length segs)
  [@@effects.no_alloc] [@@effects.deterministic]

let eval segs x =
  if x < 0.0 then invalid_arg "Piecewise.eval: negative x";
  (* exact-zero fast path; any positive x takes the general branch,
     which also evaluates to 0 in the limit *)
  if (x = 0.0 [@lint.allow "float-eq"]) then 0.0
  else begin
    let idx = segment_index segs x in
    (* accumulate full segments before idx, then the partial one *)
    let acc = ref 0.0 in
    for i = 0 to idx - 1 do
      let bx, s = segs.(i) in
      let nx, _ = segs.(i + 1) in
      acc := !acc +. (s *. (nx -. bx))
    done;
    let bx, s = segs.(idx) in
    !acc +. (s *. (x -. bx))
  end

(** Right derivative (the marginal cost of the next infinitesimal miss);
    at a breakpoint the incoming slope of the segment starting there. *)
let deriv segs x =
  if x < 0.0 then invalid_arg "Piecewise.deriv: negative x";
  let _, s = segs.(segment_index segs x) in
  s

(** Total number of segments. *)
let length = Array.length

let breakpoints segs = Array.map fst segs
let slopes segs = Array.map snd segs
