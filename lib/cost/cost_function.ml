(** Per-tenant miss-cost functions [f_i].

    The paper's model associates with each user [i] a differentiable,
    convex, increasing, non-negative function [f_i] with [f_i(0) = 0];
    [f_i(x)] is the cost paid when the user suffers [x] misses.  The
    algorithms need three views of a cost function:

    - [eval f x]      — the cost f(x);
    - [deriv f x]     — the analytic derivative f'(x);
    - [marginal f x]  — the discrete difference f(x) - f(x-1), which
      Section 2.5 of the paper notes may replace the derivative (and is
      the only meaningful choice for non-differentiable SLA curves).

    The competitive guarantee depends on the curvature constant
    [alpha = sup_x x f'(x) / f(x)]; [alpha] below returns the closed form
    where one is known and otherwise a numeric supremum over a grid. *)

type shape =
  | Linear of float  (** slope w: f(x) = w*x (weighted caching) *)
  | Monomial of float  (** exponent beta: f(x) = x^beta, beta >= 1 *)
  | Polynomial of float array
      (** non-negative coefficients c, f(x) = sum_d c.(d) * x^d *)
  | Piecewise_linear of (float * float) array
      (** breakpoints [(x_j, slope_j)]: slope [slope_j] applies on
          [x >= x_j]; see {!Piecewise}. Convex iff slopes increase. *)
  | Exponential of { rate : float; scale : float }
      (** f(x) = scale * (exp(rate*x) - 1); convex, but alpha is
          unbounded — useful to exercise the "arbitrary cost" mode. *)
  | Custom of {
      eval : float -> float;
      deriv : float -> float;
      alpha : float option;
    }

type t = { name : string; shape : shape }

let name t = t.name

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let require_finite ~fn ~field v =
  if not (Float.is_finite v) then
    invalid_arg
      (Printf.sprintf "Cost_function.%s: %s = %g is not finite" fn field v)

let linear ?name ~slope () =
  require_finite ~fn:"linear" ~field:"slope" slope;
  if slope < 0.0 then invalid_arg "Cost_function.linear: negative slope";
  let name = Option.value name ~default:(Printf.sprintf "linear(w=%g)" slope) in
  { name; shape = Linear slope }

let monomial ?name ~beta () =
  require_finite ~fn:"monomial" ~field:"beta" beta;
  if beta < 1.0 then invalid_arg "Cost_function.monomial: beta must be >= 1";
  let name = Option.value name ~default:(Printf.sprintf "x^%g" beta) in
  { name; shape = Monomial beta }

let polynomial ?name coeffs =
  if Array.length coeffs = 0 then invalid_arg "Cost_function.polynomial: empty";
  Array.iter
    (fun c ->
      require_finite ~fn:"polynomial" ~field:"coefficient" c;
      if c < 0.0 then invalid_arg "Cost_function.polynomial: negative coefficient")
    coeffs;
  (* Exact check is intended: the constant term is a user-supplied
     constructor argument, not a computed value. *)
  if (coeffs.(0) <> 0.0 [@lint.allow "float-eq"]) then
    invalid_arg "Cost_function.polynomial: constant term must be 0 (f(0)=0)";
  let name =
    Option.value name
      ~default:
        (String.concat " + "
           (List.filteri (fun _ s -> s <> "")
              (Array.to_list
                 (Array.mapi
                    (* exact zero only elides the term from the name *)
                    (fun d c ->
                      if (c = 0.0 [@lint.allow "float-eq"]) then ""
                      else Printf.sprintf "%gx^%d" c d)
                    coeffs))))
  in
  { name; shape = Polynomial coeffs }

let piecewise_linear ?name segments =
  let segs = Piecewise.validate segments in
  let name = Option.value name ~default:"piecewise-linear" in
  { name; shape = Piecewise_linear segs }

let exponential ?name ~rate ~scale () =
  require_finite ~fn:"exponential" ~field:"rate" rate;
  require_finite ~fn:"exponential" ~field:"scale" scale;
  if rate <= 0.0 || scale <= 0.0 then
    invalid_arg "Cost_function.exponential: rate and scale must be positive";
  let name =
    Option.value name ~default:(Printf.sprintf "%g(e^{%gx}-1)" scale rate)
  in
  { name; shape = Exponential { rate; scale } }

let custom ~name ~eval ~deriv ?alpha () =
  { name; shape = Custom { eval; deriv; alpha } }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let eval t x =
  (* NaN fails `x < 0.0` silently, then poisons every theorem check
     downstream; reject it (and infinities) at the boundary instead. *)
  require_finite ~fn:"eval" ~field:"x" x;
  if x < 0.0 then invalid_arg "Cost_function.eval: negative miss count";
  match t.shape with
  | Linear w -> w *. x
  (* x = 0 exactly is the one point where Float.pow misbehaves (0^0=1);
     nearby values must NOT be snapped to 0. *)
  | Monomial beta ->
      if (x = 0.0 [@lint.allow "float-eq"]) then 0.0 else Float.pow x beta
  | Polynomial coeffs ->
      (* Horner evaluation. *)
      let acc = ref 0.0 in
      for d = Array.length coeffs - 1 downto 0 do
        acc := (!acc *. x) +. coeffs.(d)
      done;
      !acc
  | Piecewise_linear segs -> Piecewise.eval segs x
  | Exponential { rate; scale } -> scale *. (exp (rate *. x) -. 1.0)
  | Custom { eval; _ } -> eval x

let deriv t x =
  require_finite ~fn:"deriv" ~field:"x" x;
  if x < 0.0 then invalid_arg "Cost_function.deriv: negative miss count";
  match t.shape with
  | Linear w -> w
  (* beta is a user-supplied constant; the branch only short-circuits
     the exactly-linear case. *)
  | Monomial beta ->
      if (beta = 1.0 [@lint.allow "float-eq"]) then 1.0
      else beta *. Float.pow x (beta -. 1.0)
  | Polynomial coeffs ->
      let acc = ref 0.0 in
      for d = Array.length coeffs - 1 downto 1 do
        acc := (!acc *. x) +. (float_of_int d *. coeffs.(d))
      done;
      !acc
  | Piecewise_linear segs -> Piecewise.deriv segs x
  | Exponential { rate; scale } -> scale *. rate *. exp (rate *. x)
  | Custom { deriv; _ } -> deriv x

(** Discrete marginal cost of the [x]-th miss: [f(x) - f(x-1)] for
    integer [x >= 1]. *)
let marginal t x =
  if x < 1 then invalid_arg "Cost_function.marginal: x must be >= 1";
  eval t (float_of_int x) -. eval t (float_of_int (x - 1))

(** Which derivative notion an algorithm should use. *)
type derivative_mode = Analytic | Discrete

(** [rate t mode x] is f'(x) in [Analytic] mode and f(x)-f(x-1) in
    [Discrete] mode, for integer [x >= 1]. *)
let rate t mode x =
  match mode with
  | Analytic -> deriv t (float_of_int x)
  | Discrete -> marginal t x

(* ------------------------------------------------------------------ *)
(* Curvature constant alpha                                            *)
(* ------------------------------------------------------------------ *)

(** [alpha ?max_x t] = sup over x in (0, max_x] of x f'(x)/f(x).

    Closed forms: [Linear _] and [Monomial beta] have alpha = 1 and beta
    respectively; a degree-d polynomial with non-negative coefficients
    has alpha <= d with equality in the x->infinity limit, so we return
    the degree.  A piecewise-linear f has its supremum at a breakpoint
    or at max_x; we evaluate there exactly.  [Exponential _] has
    unbounded alpha; we return the value at [max_x] (documented:
    callers treating alpha as a bound must cap the horizon).  *)
let alpha ?(max_x = 1_000_000.0) t =
  let numeric_sup points =
    List.fold_left
      (fun acc x ->
        if x <= 0.0 then acc
        else
          let fx = eval t x in
          if fx <= 0.0 then acc else Float.max acc (x *. deriv t x /. fx))
      1.0 points
  in
  match t.shape with
  | Linear _ -> 1.0
  | Monomial beta -> beta
  | Polynomial coeffs ->
      let degree = ref 0 in
      Array.iteri (fun d c -> if c > 0.0 then degree := d) coeffs;
      float_of_int !degree
  | Piecewise_linear segs ->
      (* Over the reals, x f'(x)/f(x) can diverge just past a
         breakpoint where f leaves zero (e.g. the hinge SLA), but the
         algorithms only ever evaluate integer miss counts and the
         proof's Claim 2.3 only needs the sup over realised (integer)
         arguments, so we take the integer-restricted supremum.  The
         ratio is monotone within each linear segment, so integers
         adjacent to breakpoints (plus max_x) suffice. *)
      let points =
        Array.to_list segs
        |> List.concat_map (fun (bp, _) ->
               [ floor bp; floor bp +. 1.0; ceil bp; ceil bp +. 1.0 ])
        |> List.filter (fun x -> x >= 1.0 && x <= max_x)
      in
      numeric_sup (Float.round max_x :: points)
  | Exponential { rate; _ } ->
      let x = max_x in
      x *. rate *. exp (rate *. x) /. (exp (rate *. x) -. 1.0)
  | Custom { alpha = Some a; _ } -> a
  | Custom _ ->
      (* Geometric grid over (0, max_x]. *)
      let points = ref [] in
      let x = ref 1e-3 in
      while !x <= max_x do
        points := !x :: !points;
        x := !x *. 1.25
      done;
      numeric_sup !points

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)
(* ------------------------------------------------------------------ *)

(** Pointwise scaling by [c > 0]; alpha is unchanged. *)
let scale ~by t =
  require_finite ~fn:"scale" ~field:"by" by;
  if by <= 0.0 then invalid_arg "Cost_function.scale: factor must be positive";
  {
    name = Printf.sprintf "%g*(%s)" by t.name;
    shape =
      Custom
        {
          eval = (fun x -> by *. eval t x);
          deriv = (fun x -> by *. deriv t x);
          alpha = Some (alpha t);
        };
  }

(** Pointwise sum; alpha of the sum is at most the max of the alphas
    (both numerator and denominator add, and the ratio of sums is
    bounded by the max ratio). *)
let sum a b =
  {
    name = Printf.sprintf "(%s)+(%s)" a.name b.name;
    shape =
      Custom
        {
          eval = (fun x -> eval a x +. eval b x);
          deriv = (fun x -> deriv a x +. deriv b x);
          alpha = Some (Float.max (alpha a) (alpha b));
        };
  }

let pp ppf t = Fmt.string ppf t.name
