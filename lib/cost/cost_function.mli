(** Per-tenant miss-cost functions [f_i].

    The paper's model associates with each user [i] a differentiable,
    convex, increasing, non-negative function [f_i] with [f_i(0) = 0];
    [f_i(x)] is the cost paid when the user suffers [x] misses.  The
    algorithms need three views of a cost function: the value
    {!eval}, the analytic derivative {!deriv}, and the discrete
    marginal {!marginal} (Section 2.5 of the paper allows replacing
    derivatives with discrete differences, and for the
    non-differentiable SLA curves that is the natural choice).

    The competitive guarantee depends on the curvature constant
    [alpha = sup_x x f'(x) / f(x)]; see {!alpha} for how it is
    computed per shape. *)

type shape =
  | Linear of float  (** slope w: f(x) = w*x (weighted caching) *)
  | Monomial of float  (** exponent beta: f(x) = x^beta, beta >= 1 *)
  | Polynomial of float array
      (** non-negative coefficients c, f(x) = sum_d c.(d) * x^d;
          c.(0) must be 0 *)
  | Piecewise_linear of (float * float) array
      (** breakpoints [(x_j, slope_j)]: slope [slope_j] applies on
          [x >= x_j]; see {!Piecewise}.  Convex iff slopes increase. *)
  | Exponential of { rate : float; scale : float }
      (** f(x) = scale * (exp(rate*x) - 1); convex, but alpha is
          unbounded — exercises the "arbitrary cost" mode *)
  | Custom of {
      eval : float -> float;
      deriv : float -> float;
      alpha : float option;
    }

type t

val name : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Constructors}

    Each validates its parameters and raises [Invalid_argument] on
    shapes that cannot satisfy f(0) = 0, monotonicity or convexity by
    construction ([custom] is unchecked — see {!Calculus} for runtime
    validation).  Non-finite parameters (NaN, infinities) are rejected
    with a message naming the offending field — a NaN slope would
    otherwise slip past the sign checks and silently poison every
    downstream theorem check. *)

val linear : ?name:string -> slope:float -> unit -> t
val monomial : ?name:string -> beta:float -> unit -> t
val polynomial : ?name:string -> float array -> t
val piecewise_linear : ?name:string -> (float * float) array -> t
val exponential : ?name:string -> rate:float -> scale:float -> unit -> t

val custom :
  name:string ->
  eval:(float -> float) ->
  deriv:(float -> float) ->
  ?alpha:float ->
  unit ->
  t

(** {1 Evaluation} *)

val eval : t -> float -> float
(** [eval f x] is f(x). @raise Invalid_argument if [x < 0] or [x] is
    not finite (the error names the field). *)

val deriv : t -> float -> float
(** Analytic derivative (right derivative at piecewise breakpoints).
    Rejects negative and non-finite [x] like {!eval}. *)

val marginal : t -> int -> float
(** [marginal f x] = f(x) - f(x-1), the cost of the [x]-th miss.
    @raise Invalid_argument if [x < 1]. *)

type derivative_mode = Analytic | Discrete
(** Which derivative notion an algorithm uses (paper Section 2.5). *)

val rate : t -> derivative_mode -> int -> float
(** [rate f mode x] is [deriv f x] in [Analytic] mode and
    [marginal f x] in [Discrete] mode. *)

(** {1 Curvature constant} *)

val alpha : ?max_x:float -> t -> float
(** [alpha f] = sup over realisable x of [x * f'(x) / f(x)].

    Closed forms: 1 for linear, beta for monomials, the degree for
    polynomials.  Piecewise-linear shapes take the integer-restricted
    supremum (miss counts are integers; over the reals the ratio
    diverges just past a breakpoint where f leaves zero, e.g. the SLA
    hinge).  Exponentials are unbounded: the value at [max_x]
    (default 1e6) is returned and callers treating alpha as a bound
    must cap the horizon. *)

(** {1 Combinators} *)

val scale : by:float -> t -> t
(** Pointwise scaling by a positive factor; alpha is unchanged. *)

val sum : t -> t -> t
(** Pointwise sum; alpha of the sum is at most the max of the two. *)
