(** SLA refund-curve builders.

    The paper's motivating application (SQLVM / DaaS, Section 1.1)
    models the Service Level Agreement between provider and tenant as a
    non-linear cost on the number of buffer-pool misses: "a user can
    tolerate up to around M misses in a time window of T, and any number
    of misses greater than that will result in substantial degradation".
    These builders produce the convex piecewise-linear curves that
    capture such agreements. *)

(** Free up to [tolerance] misses, then a constant [penalty_rate] per
    additional miss.  Convex hinge: f(x) = penalty_rate * max(0, x - M). *)
let hinge ~tolerance ~penalty_rate =
  if tolerance < 0.0 then invalid_arg "Sla.hinge: negative tolerance";
  if penalty_rate <= 0.0 then invalid_arg "Sla.hinge: penalty_rate must be positive";
  let segments =
    (* tolerance is a user-supplied constant; exactly 0 degenerates to a
       single linear segment (Piecewise rejects duplicate breakpoints) *)
    if (tolerance = 0.0 [@lint.allow "float-eq"]) then
      [| (0.0, penalty_rate) |]
    else [| (0.0, 0.0); (tolerance, penalty_rate) |]
  in
  Cost_function.piecewise_linear
    ~name:(Printf.sprintf "hinge(M=%g,w=%g)" tolerance penalty_rate)
    segments

(** Escalating penalty tiers: [base_rate] per miss up to the first
    threshold, then the rate multiplies by [escalation] at each
    subsequent threshold.  Models refund schedules that get steeper the
    worse the violation ("gold/silver/bronze" breach levels). *)
let tiered ~thresholds ~base_rate ~escalation =
  if base_rate < 0.0 then invalid_arg "Sla.tiered: negative base_rate";
  if escalation < 1.0 then invalid_arg "Sla.tiered: escalation must be >= 1";
  let thresholds = List.sort_uniq Float.compare thresholds in
  List.iter
    (fun th -> if th <= 0.0 then invalid_arg "Sla.tiered: thresholds must be positive")
    thresholds;
  let segments =
    (0.0, base_rate)
    :: List.mapi
         (fun i th -> (th, base_rate *. Float.pow escalation (float_of_int (i + 1))))
         thresholds
  in
  Cost_function.piecewise_linear
    ~name:
      (Printf.sprintf "tiered(%d tiers,w0=%g,esc=%g)" (List.length thresholds + 1)
         base_rate escalation)
    (Array.of_list segments)

(** Smooth analogue of [hinge]: quadratic ramp after the tolerance.
    f(x) = penalty_rate * max(0, x - M)^2 / 2 — differentiable
    everywhere, convenient for exercising the analytic-derivative mode. *)
let smooth_hinge ~tolerance ~penalty_rate =
  if tolerance < 0.0 then invalid_arg "Sla.smooth_hinge: negative tolerance";
  if penalty_rate <= 0.0 then
    invalid_arg "Sla.smooth_hinge: penalty_rate must be positive";
  let eval x =
    let d = Float.max 0.0 (x -. tolerance) in
    penalty_rate *. d *. d /. 2.0
  in
  let deriv x = penalty_rate *. Float.max 0.0 (x -. tolerance) in
  (* alpha = sup x f'(x)/f(x) = sup 2x(x-M)/(x-M)^2 = sup 2x/(x-M),
     unbounded as x -> M+. Cap via the interpretation that misses are
     integers: the first charged point is x = floor(M)+1. *)
  let first = Float.max 1.0 (floor tolerance +. 1.0) in
  let alpha =
    if first <= tolerance then infinity
    else 2.0 *. first /. (first -. tolerance)
  in
  Cost_function.custom
    ~name:(Printf.sprintf "smooth-hinge(M=%g,w=%g)" tolerance penalty_rate)
    ~eval ~deriv ~alpha ()

(** A deliberately non-convex "step refund" curve (flat fee per breached
    tier).  Used by tests and experiments to exercise the
    arbitrary-cost-function mode of Section 2.5, where the algorithm
    still runs (via discrete marginals) but no guarantee applies. *)
let step_refund ~thresholds ~fee =
  if fee <= 0.0 then invalid_arg "Sla.step_refund: fee must be positive";
  let thresholds = List.sort_uniq Float.compare thresholds in
  let eval x =
    fee *. float_of_int (List.length (List.filter (fun th -> x >= th) thresholds))
  in
  let deriv _ = 0.0 in
  Cost_function.custom
    ~name:(Printf.sprintf "step(%d tiers,fee=%g)" (List.length thresholds) fee)
    ~eval ~deriv ()
