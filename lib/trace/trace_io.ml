(** Plain-text trace serialisation.

    Format (line-oriented, '#' comments allowed):
    {v
    # convex-caching trace v1
    users <n>
    <user> <page>
    <user> <page>
    ...
    v}
    The header line and [users] directive are mandatory; each following
    non-comment line is one request. *)

let magic = "# convex-caching trace v1"

let write_channel oc trace =
  output_string oc magic;
  output_char oc '\n';
  Printf.fprintf oc "users %d\n" (Trace.n_users trace);
  Array.iter
    (fun p -> Printf.fprintf oc "%d %d\n" (Page.user p) (Page.id p))
    (Trace.requests trace)

let write_file path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_channel oc trace)

let to_string trace =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "users %d\n" (Trace.n_users trace));
  Array.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "%d %d\n" (Page.user p) (Page.id p)))
    (Trace.requests trace);
  Buffer.contents buf

exception Parse_error of { line : int; msg : string }

let parse_error line msg = raise (Parse_error { line; msg })

let is_comment line = String.length line > 0 && line.[0] = '#'

let parse_lines lines =
  let n_users = ref None in
  let requests = ref [] in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line = "" || is_comment line then ()
      else
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "users"; n ] -> (
            match int_of_string_opt n with
            | Some n when n > 0 ->
                if !n_users <> None then parse_error lineno "duplicate users directive";
                n_users := Some n
            | _ -> parse_error lineno "invalid user count")
        | [ u; p ] -> (
            match (int_of_string_opt u, int_of_string_opt p) with
            | Some u, Some p when u >= 0 && p >= 0 ->
                requests := (u, p) :: !requests
            | _ -> parse_error lineno "invalid request line")
        | _ -> parse_error lineno ("unrecognised line: " ^ line))
    lines;
  match !n_users with
  | None -> parse_error 0 "missing users directive"
  | Some n_users ->
      let reqs =
        List.rev_map (fun (user, id) -> Page.make ~user ~id) !requests
      in
      (try Trace.of_list ~n_users reqs
       with Invalid_argument msg -> parse_error 0 msg)

let of_string s =
  let lines = String.split_on_char '\n' s in
  (match lines with
  | first :: _ when String.trim first = magic -> ()
  | _ -> parse_error 1 "missing or wrong magic header");
  parse_lines lines

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let buf = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel buf ic 4096
         done
       with End_of_file -> ());
      of_string (Buffer.contents buf))

(* {2 Format auto-dispatch} *)

(* Binary-or-text sniffing: everything the CLI loads goes through these
   so users never have to say which format a trace file is in. *)

let of_string_any s =
  if Trace_binary.looks_binary s then Trace_binary.of_string s else of_string s

let read_any path =
  if Trace_binary.file_looks_binary path then Trace_binary.read_file path
  else read_file path
