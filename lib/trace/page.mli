(** Pages and their owning users.

    Every page belongs to exactly one user (the paper's [P_i]
    partition).  User ids are dense integers [0 .. n-1]; page ids are
    arbitrary non-negative integers, unique within a user.

    A page is a single tagged int — [(user lsl 38) lor id], user in the
    high 24 bits — so pages are immediate values: no allocation on
    construction, integer equality/ordering, and hash-table keys that
    never chase a pointer.  {!make} enforces [user <= 2^24 - 1] and
    [id <= 2^38 - 1]; the packed form is always non-negative. *)

type t = private int

val make : user:int -> id:int -> t
(** @raise Invalid_argument on negative components or components
    exceeding the packed field widths (user: 24 bits, id: 38 bits). *)

val user : t -> int
val id : t -> int

val pack : t -> int
(** The packed integer form (the identity on the runtime value).
    Always non-negative, so it can key int-specialised containers
    directly. *)

val unpack : int -> t
(** Inverse of {!pack}.  @raise Invalid_argument if the integer is not
    a well-formed packed page (negative, or user field out of range). *)

val compare : t -> t -> int
(** Orders by user, then id — the deterministic tie-break order used
    throughout the algorithms.  Coincides with [Int.compare] on the
    packed form by construction. *)

val equal : t -> t -> bool

val hash : t -> int
(** Equals the historical record-representation hash
    [(user * 0x9E3779B1) lxor id], keeping every [Tbl] bucket layout —
    and with it all recorded iteration-order-sensitive output —
    unchanged. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t option
(** Parses the ["u<user>:p<id>"] form produced by {!to_string}. *)

module Key : Hashtbl.HashedType with type t = t
module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
