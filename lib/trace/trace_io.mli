(** Plain-text trace serialisation.

    Line-oriented format ('#' comments and blank lines allowed):
    {v
    # convex-caching trace v1
    users <n>
    <user> <page>
    ...
    v} *)

val magic : string
(** The mandatory first line. *)

exception Parse_error of { line : int; msg : string }
(** Malformed text input; [line] is 1-based (0 for whole-input
    problems such as a missing [users] directive). *)

val to_string : Trace.t -> string
val of_string : string -> Trace.t
(** @raise Parse_error on malformed input. *)

val write_channel : out_channel -> Trace.t -> unit
val write_file : string -> Trace.t -> unit
val read_file : string -> Trace.t

val of_string_any : string -> Trace.t
(** Sniff the format: binary [.ctrace] if the {!Trace_binary.magic}
    bytes lead, the text format otherwise.
    @raise Parse_error / @raise Trace_binary.Format_error accordingly. *)

val read_any : string -> Trace.t
(** File counterpart of {!of_string_any}. *)
