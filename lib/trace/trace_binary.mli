(** Zero-copy binary trace format (".ctrace").

    Little-endian, versioned, endian-pinned; see DESIGN.md section 14
    for the byte-level layout.  {!open_file} is O(P) in the number of
    distinct pages — the O(T) request region is mapped with
    [Unix.map_file], shared read-only across domains and processes, and
    iterated without per-request allocation. *)

exception Format_error of { offset : int; msg : string }
(** Raised on malformed input: bad magic, unsupported version, wrong
    endianness tag, size/layout mismatch, or an ill-formed dictionary
    or dense stream.  [offset] is the byte offset of the offending
    field. *)

val magic : string
(** The 8-byte file magic, ["CCTRACE0"]. *)

val version : int

(** {1 Writing} *)

val write_file : string -> Trace.t -> unit
(** @raise Format_error on a big-endian host. *)

val write_channel : out_channel -> Trace.t -> unit

val to_string : Trace.t -> string

(** {1 Zero-copy handles} *)

type handle
(** An open binary trace: decoded header and page dictionary plus the
    mmapped request region.  The mapping is released when the handle is
    garbage-collected. *)

val open_file : string -> handle
(** Validate the header and dictionary and map the request region.
    O(P); does not scan the T requests.
    @raise Format_error on malformed input or a big-endian host.
    @raise Sys_error if the file cannot be opened. *)

val n_users : handle -> int
val n_pages : handle -> int
val length : handle -> int

val dense_at : handle -> int -> int
(** Dense id at a 0-based position — four byte reads, no allocation.
    Unvalidated: a crafted file can yield an id >= [n_pages] here;
    {!to_trace} is the validating path. *)

val page_of_dense : handle -> int -> Page.t
val page_at : handle -> int -> Page.t

val to_trace : handle -> Trace.t
(** Materialise the full trace, validating the dense stream (every id
    in range, first occurrences in rank order, every dictionary page
    used).  @raise Format_error if validation fails. *)

(** {1 Whole-trace reading} *)

val read_file : string -> Trace.t
(** [to_trace (open_file path)]. *)

val of_string : string -> Trace.t
(** Parse an in-memory image (e.g. stdin); same validation as
    {!read_file}. *)

val looks_binary : string -> bool
(** Does the string start with the .ctrace magic? *)

val file_looks_binary : string -> bool
(** Does the file start with the .ctrace magic? *)
