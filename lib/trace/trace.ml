(** Request sequences and their static index.

    A trace is the online input sigma = (p_1, ..., p_T).  Besides the raw
    sequence, the convex program and the offline algorithms need the
    bookkeeping the paper defines in Section 2:

    - [r(p,t)]     — number of requests of page p up to time t,
    - [j(p,t)]     — interval index of p at time t,
    - [B(t)]       — set of distinct pages requested up to time t,
    - next/previous use positions (for Belady-style policies).

    [Index.build] precomputes all of these in O(T) once per trace.
    Positions are 0-based throughout the code base; the paper's t runs
    from 1, so position [t-1] here corresponds to the paper's time t.

    Dense interning: every trace carries (computed on first demand) a
    remap of its distinct pages onto the dense range [0, P) in
    first-touch order — [dense.(pos)] is the rank of the page requested
    at [pos], [pages.(d)] recovers the page.  The remap is what lets
    {!Index.build} run on flat int arrays instead of [Page.Tbl]
    hashtables, and it is the on-disk vocabulary of the binary trace
    format ({!Trace_binary}).  The structure is immutable once built
    and published through an [Atomic.t], so traces stay safely sharable
    across domains. *)

type interning = {
  dense : int array;  (** [dense.(pos)] = first-touch rank of the page at [pos] *)
  pages : Page.t array;  (** [pages.(d)] = page with dense id [d]; first-touch order *)
  dense_of : Ccache_util.Int_tbl.t;
      (** packed page -> dense id; read-only once published *)
}

type t = {
  requests : Page.t array;
  n_users : int;
  interning : interning option Atomic.t;
      (** built on first demand; both racing domains compute the same
          value, and the atomic publish keeps the record safely visible *)
}

let length t = Array.length t.requests
let n_users t = t.n_users

let request t pos = t.requests.(pos)
  [@@effects.no_alloc] [@@effects.deterministic]

let requests t = t.requests

(* One O(T) pass: first-touch ranks via the open-addressing int table
   (packed pages are non-negative ints, so they key it directly). *)
let compute_interning requests =
  let n = Array.length requests in
  let dense_of = Ccache_util.Int_tbl.create ~capacity:256 () in
  let dense = Array.make n 0 in
  let rev_pages = ref [] in
  let next = ref 0 in
  for pos = 0 to n - 1 do
    let key = Page.pack requests.(pos) in
    let d = Ccache_util.Int_tbl.find_default dense_of key ~default:(-1) in
    if d >= 0 then dense.(pos) <- d
    else begin
      Ccache_util.Int_tbl.set dense_of key !next;
      dense.(pos) <- !next;
      rev_pages := requests.(pos) :: !rev_pages;
      incr next
    end
  done;
  let pages = Array.make !next (Page.make ~user:0 ~id:0) in
  List.iteri (fun i p -> pages.(!next - 1 - i) <- p) !rev_pages;
  { dense; pages; dense_of }

let interning t =
  match Atomic.get t.interning with
  | Some i -> i
  | None ->
      let i = compute_interning t.requests in
      Atomic.set t.interning (Some i);
      i

let n_pages t = Array.length (interning t).pages
let dense t = (interning t).dense
let page_of_dense t d = (interning t).pages.(d)

let dense_of_page t page =
  let d =
    Ccache_util.Int_tbl.find_default (interning t).dense_of (Page.pack page)
      ~default:(-1)
  in
  if d >= 0 then Some d else None

let check_users ~n_users pages =
  Array.iter
    (fun p ->
      if Page.user p < 0 || Page.user p >= n_users then
        invalid_arg
          (Printf.sprintf "Trace.of_pages: page %s outside user range [0,%d)"
             (Page.to_string p) n_users))
    pages

let of_pages ~n_users pages =
  if n_users <= 0 then invalid_arg "Trace.of_pages: need at least one user";
  check_users ~n_users pages;
  { requests = Array.copy pages; n_users; interning = Atomic.make None }

let of_list ~n_users pages = of_pages ~n_users (Array.of_list pages)

(** Rebuild a trace from its interned form (the binary format's
    vocabulary): [pages] in first-touch order, [dense] the per-position
    ranks.  Validates that the remap is well-formed — ranks in [0, P),
    first occurrences in increasing rank order, distinct pages — so a
    crafted file cannot smuggle in a trace whose [distinct_pages] order
    disagrees with its request sequence. *)
let of_dense ~n_users ~pages ~dense =
  if n_users <= 0 then invalid_arg "Trace.of_dense: need at least one user";
  check_users ~n_users pages;
  let p = Array.length pages in
  let n = Array.length dense in
  let requests = Array.make n (Page.make ~user:0 ~id:0) in
  let seen = ref 0 in
  for pos = 0 to n - 1 do
    let d = dense.(pos) in
    if d < 0 || d >= p then
      invalid_arg
        (Printf.sprintf "Trace.of_dense: rank %d outside [0,%d) at position %d"
           d p pos);
    if d > !seen then
      invalid_arg
        (Printf.sprintf
           "Trace.of_dense: rank %d at position %d before rank %d appeared"
           d pos !seen)
    else if d = !seen then incr seen;
    requests.(pos) <- pages.(d)
  done;
  if !seen <> p then
    invalid_arg
      (Printf.sprintf "Trace.of_dense: %d of %d pages never requested"
         (p - !seen) p);
  let dense_of = Ccache_util.Int_tbl.create ~capacity:(2 * p) () in
  Array.iteri
    (fun d page ->
      let key = Page.pack page in
      if Ccache_util.Int_tbl.mem dense_of key then
        invalid_arg
          (Printf.sprintf "Trace.of_dense: duplicate page %s"
             (Page.to_string page));
      Ccache_util.Int_tbl.set dense_of key d)
    pages;
  {
    requests;
    n_users;
    interning =
      Atomic.make (Some { dense = Array.copy dense; pages = Array.copy pages; dense_of });
  }

(** Concatenate traces over the same user universe. *)
let append a b =
  if a.n_users <> b.n_users then invalid_arg "Trace.append: user-count mismatch";
  {
    requests = Array.append a.requests b.requests;
    n_users = a.n_users;
    interning = Atomic.make None;
  }

(** Distinct pages, in first-touch order (the interning vocabulary). *)
let distinct_pages t = Array.to_list (interning t).pages

(** Append the paper's terminal flush: a dummy user owning [k] fresh
    pages, all requested once at the end, forcing every real page out of
    a size-k cache.  The dummy user gets id [n_users] (so the result has
    [n_users + 1] users); its cost function should be zero. *)
let with_flush ~k t =
  if k <= 0 then invalid_arg "Trace.with_flush: k must be positive";
  let dummy = Array.init k (fun i -> Page.make ~user:t.n_users ~id:i) in
  {
    requests = Array.append t.requests dummy;
    n_users = t.n_users + 1;
    interning = Atomic.make None;
  }

module Index = struct
  type trace = t

  (* All per-position vectors are flat int arrays; the per-page vectors
     (request totals, first positions) are flat arrays over the dense
     page space — no hashtable is touched after the trace's one-off
     interning pass, and page-keyed queries translate through the
     interning's int table. *)
  type t = {
    trace : trace;
    interval : int array;
        (** [interval.(pos)] = j(p,pos): 1-based index of this request
            among all requests of the same page. *)
    next_use : int array;
        (** position of the next request of the same page, or
            [Int.max_int] if none. *)
    prev_use : int array;
        (** position of the previous request of the same page, or [-1]. *)
    distinct_upto : int array;
        (** [distinct_upto.(pos)] = |B(t)| after including this request. *)
    counts : int array;  (** r(p,T) per dense page id *)
    first_pos : int array;  (** first position of each dense page id *)
  }

  let build trace =
    let inter = interning trace in
    let dense = inter.dense in
    let p = Array.length inter.pages in
    let n = Array.length trace.requests in
    let interval = Array.make n 0 in
    let next_use = Array.make n Int.max_int in
    let prev_use = Array.make n (-1) in
    let distinct_upto = Array.make n 0 in
    let counts = Array.make p 0 in
    let last_pos = Array.make p (-1) in
    let first_pos = Array.make p (-1) in
    let distinct = ref 0 in
    for pos = 0 to n - 1 do
      let d = Array.unsafe_get dense pos in
      let c = Array.unsafe_get counts d in
      Array.unsafe_set counts d (c + 1);
      Array.unsafe_set interval pos (c + 1);
      let prev = Array.unsafe_get last_pos d in
      if prev >= 0 then begin
        Array.unsafe_set next_use prev pos;
        Array.unsafe_set prev_use pos prev
      end
      else begin
        incr distinct;
        Array.unsafe_set first_pos d pos
      end;
      Array.unsafe_set last_pos d pos;
      Array.unsafe_set distinct_upto pos !distinct
    done;
    { trace; interval; next_use; prev_use; distinct_upto; counts; first_pos }

  let trace t = t.trace
  let length t = Array.length t.trace.requests

  (** j(p, pos): which interval of page p the position falls in. *)
  let interval_index t pos = t.interval.(pos)
    [@@effects.no_alloc] [@@effects.deterministic]

  let next_use t pos = t.next_use.(pos)
    [@@effects.no_alloc] [@@effects.deterministic]

  let prev_use t pos = t.prev_use.(pos)
    [@@effects.no_alloc] [@@effects.deterministic]

  let distinct_upto t pos = t.distinct_upto.(pos)
    [@@effects.no_alloc] [@@effects.deterministic]

  (* page-keyed queries: one int-table probe to enter the dense space *)
  let dense_id t page =
    Ccache_util.Int_tbl.find_default
      (match Atomic.get t.trace.interning with
      | Some i -> i.dense_of
      | None -> assert false (* build forced the interning *))
      (Page.pack page) ~default:(-1)
    [@@effects.no_alloc] [@@effects.deterministic]

  (** r(p, T): total number of requests of [page] in the whole trace. *)
  let total_requests t page =
    let d = dense_id t page in
    if d >= 0 then t.counts.(d) else 0
    [@@effects.no_alloc] [@@effects.deterministic]

  let first_use t page =
    let d = dense_id t page in
    if d >= 0 then Some t.first_pos.(d) else None

  (** Is [pos] the last request of its page? *)
  let is_last_request t pos = t.next_use.(pos) = Int.max_int
    [@@effects.no_alloc] [@@effects.deterministic]
end

let pp ppf t =
  Fmt.pf ppf "@[<v>trace: T=%d users=%d distinct=%d@]" (length t) t.n_users
    (n_pages t)
