(** Fingerprinted on-disk trace cache.

    Keyed by an FNV-1a-64 hash of a caller-supplied fingerprint string
    (for generated workloads: seed, length, and a canonical rendering
    of the tenant specs — see {!Workloads.generate}).  A [.fp] sidecar
    holds the full fingerprint so hash collisions degrade to misses.
    Cache-write failures are swallowed: the cache can only trade speed,
    never correctness.  Safe under concurrent writers (atomic
    tmp+rename, identical bytes per key). *)

val set_dir : string option -> unit
(** Enable the cache at a directory (created on first store), or
    disable it with [None] (the default). *)

val current_dir : unit -> string option

val memoize : fingerprint:string -> (unit -> Trace.t) -> Trace.t
(** Return the cached trace for [fingerprint], or run the generator,
    store its result, and return it.  Pass-through when disabled. *)

val key_of_fingerprint : string -> string
(** The 16-hex-digit file stem a fingerprint maps to (exposed for
    tests and tooling). *)
