(** Request sequences and their static index.

    A trace is the online input sigma = (p_1, ..., p_T).  Positions are
    0-based throughout the code base; the paper's time t corresponds to
    position [t - 1].  {!Index.build} precomputes in O(T) the
    bookkeeping of paper Section 2: interval indices [j(p,t)], distinct
    counts [|B(t)|], request totals [r(p,t)] and next/previous-use
    links (the latter also power Belady-style offline policies). *)

type t

val length : t -> int
val n_users : t -> int

val request : t -> int -> Page.t
(** Request at a 0-based position. *)

val requests : t -> Page.t array
(** The raw sequence (do not mutate). *)

val of_pages : n_users:int -> Page.t array -> t
(** Copies the array. @raise Invalid_argument if any page's user is
    outside [\[0, n_users)]. *)

val of_list : n_users:int -> Page.t list -> t

val of_dense : n_users:int -> pages:Page.t array -> dense:int array -> t
(** Rebuild a trace from its interned form: [pages] lists the distinct
    pages in first-touch order, [dense.(pos)] is the rank (index into
    [pages]) of the request at [pos].  This is the in-memory mirror of
    the binary trace format ({!Trace_binary}).  Copies both arrays.
    @raise Invalid_argument if the remap is not well-formed: a rank out
    of range, first occurrences out of rank order, a page listed but
    never requested, duplicate pages, or a user outside
    [\[0, n_users)]. *)

(** {1 Dense page interning}

    Every trace lazily carries a remap of its distinct pages onto the
    dense range [\[0, P)] in first-touch order.  The remap is computed
    once on first demand (thread-safely; traces stay sharable across
    domains) and backs both {!Index.build}'s flat-array index and the
    binary trace format. *)

val n_pages : t -> int
(** Number of distinct pages, P. *)

val dense : t -> int array
(** Per-position dense ids: [dense t] has one entry per request, each
    in [\[0, n_pages t)] (do not mutate). *)

val page_of_dense : t -> int -> Page.t
(** Page with the given dense id (its first-touch rank). *)

val dense_of_page : t -> Page.t -> int option
(** Dense id of a page, or [None] if the trace never requests it. *)

val append : t -> t -> t
(** Concatenation; both traces must agree on [n_users]. *)

val distinct_pages : t -> Page.t list
(** In first-touch order. *)

val with_flush : k:int -> t -> t
(** The paper's terminal flush (Section 2.1): appends one request to
    each of [k] fresh pages owned by a new dummy user (id = previous
    [n_users]); the result has one more user.  The dummy's cost is
    infinite in the paper — the engine and the convex program pin its
    pages instead (see {!Ccache_sim.Engine.run} and
    {!Ccache_cp.Formulation.of_trace}). *)

val pp : Format.formatter -> t -> unit

module Index : sig
  type trace := t
  type t

  val build : trace -> t
  (** O(T) single pass. *)

  val trace : t -> trace
  val length : t -> int

  val interval_index : t -> int -> int
  (** [interval_index t pos] = j(p, pos): 1-based rank of this request
      among all requests of the same page. *)

  val next_use : t -> int -> int
  (** Position of the next request of the same page, or [Int.max_int]. *)

  val prev_use : t -> int -> int
  (** Position of the previous request of the same page, or [-1]. *)

  val distinct_upto : t -> int -> int
  (** [|B(t)|] after including the request at this position. *)

  val total_requests : t -> Page.t -> int
  (** r(p, T); 0 for pages never requested. *)

  val first_use : t -> Page.t -> int option

  val is_last_request : t -> int -> bool
end
