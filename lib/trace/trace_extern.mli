(** Readers for external address-trace formats.

    Supported: cachetrace-style [R 0xADDR] / [W 0xADDR] lines (["rw"])
    and valgrind [--tool=lackey --trace-mem=yes] dumps (["lackey"]).
    Addresses become pages via [addr lsr page_shift] (default 12) and
    are interned to first-touch dense ids under a single user 0 — raw
    64-bit page numbers exceed {!Page}'s 38-bit id field, and the
    policies are invariant under this order-preserving renaming.

    All parsers raise {!Trace_io.Parse_error} with a 1-based line
    number on malformed input. *)

val default_page_shift : int
(** 12 — 4 KiB pages. *)

type format = Rw | Lackey

val format_of_string : string -> format option
(** ["rw"] or ["lackey"]. *)

val of_string_rw : ?page_shift:int -> string -> Trace.t
val of_string_lackey : ?page_shift:int -> string -> Trace.t
val of_string : ?page_shift:int -> format -> string -> Trace.t
val read_file : ?page_shift:int -> format -> string -> Trace.t
