(** Synthetic multi-tenant workload generators.

    Stand-in for the proprietary SQLVM buffer-pool traces of the
    paper's companion system (DESIGN.md substitution table): each
    tenant draws page ids from a configurable access pattern and a
    weighted interleaver merges tenants into one shared stream.  A
    [(seed, spec)] pair fully determines the trace. *)

type pattern =
  | Uniform of { pages : int }
  | Zipf of { pages : int; skew : float }
  | Cycle of { pages : int }
      (** strict cyclic sweep; with [pages = k + 1] the classical LRU
          worst case *)
  | Sequential_scan of { pages : int; passes : int }
      (** [passes] full sweeps, then uniform re-reads *)
  | Hot_cold of { pages : int; hot_pages : int; hot_prob : float }
  | Drifting_zipf of {
      pages : int;
      window : int;
      skew : float;
      shift_every : int;
    }  (** Zipf over a window whose base drifts — working-set motion *)
  | Mixture of (float * pattern) list

val validate_pattern : pattern -> unit
(** @raise Invalid_argument on malformed parameters, including
    non-finite floats (NaN skew, infinite hot_prob, ...) — the message
    names the offending field.  A NaN would otherwise pass the sign
    checks and silently corrupt every generated trace. *)

val footprint : pattern -> int
(** Number of distinct page ids the pattern can emit. *)

val make_sampler : pattern -> Ccache_util.Prng.t -> unit -> int
(** Stateful page-id sampler (validates first). *)

type tenant_spec = {
  pattern : pattern;
  weight : float;  (** relative request rate *)
}

val tenant : ?weight:float -> pattern -> tenant_spec
(** @raise Invalid_argument if [weight <= 0] or [weight] is not
    finite. *)

val fingerprint : seed:int -> length:int -> tenant_spec list -> string
(** Canonical rendering of a generation request (floats via [%h]), the
    {!Trace_cache} key for {!generate}. *)

val generate : seed:int -> length:int -> tenant_spec list -> Trace.t
(** Tenant [i]'s pages get user id [i]; each request picks a tenant
    proportionally to weight, then its sampler picks the page.  A pure
    function of its arguments; when {!Trace_cache.set_dir} has enabled
    the on-disk cache, repeated generations load the stored [.ctrace]
    instead of resampling. *)

val generate_single : seed:int -> length:int -> pattern -> Trace.t

val generate_phases : seed:int -> (tenant_spec list * int) list -> Trace.t
(** Tenant churn: one trace segment per [(specs, duration)] phase,
    concatenated.  All phases must agree on the tenant count; samplers
    restart at phase boundaries (working-set reset on reactivation). *)

val day_night :
  day:tenant_spec list ->
  night_tenants:int ->
  phase_length:int ->
  cycles:int ->
  (tenant_spec list * int) list
(** Diurnal churn phases for {!generate_phases}: alternate the full
    [day] mix with a night mix where only the first [night_tenants]
    stay active (others idle at epsilon weight). *)

(** {1 Canned scenarios} *)

val symmetric_zipf :
  tenants:int -> pages_per_tenant:int -> skew:float -> tenant_spec list

val sqlvm_mix : scale:int -> tenant_spec list
(** Five-tenant DaaS mix (skewed OLTP, scans, hot-set, drifting),
    mirroring the companion paper's workload archetypes. *)

val lru_nemesis : k:int -> tenant_spec list
(** One tenant cycling over [k + 1] pages. *)
