(** Pages and their owning users, packed into a single tagged int.

    Every page belongs to exactly one user (the paper's [P_i] partition).
    User ids are dense integers [0 .. n-1]; page ids are arbitrary
    non-negative integers, unique within a user.

    Representation: [(user lsl 38) lor id] — user in the high 24 bits,
    id in the low 38, 62 bits total, so every page is a non-negative
    immediate OCaml int (no allocation, no indirection; [Page.Tbl] keys
    hash without touching the heap, and the engine's cache set can key
    on the packed value directly).  The split allows 16.7M users and
    274G pages per user; {!make} bounds-checks both.  Because both
    fields are non-negative and user occupies the high bits,
    [Int.compare] on packed values IS the (user, id) lexicographic
    order the algorithms' deterministic tie-breaks rely on. *)

type t = int

let id_bits = 38
let max_id = (1 lsl id_bits) - 1 (* 2^38 - 1 *)
let max_user = (1 lsl 24) - 1 (* 2^24 - 1 *)

(* The packed form needs 62 value bits; OCaml ints have 63 on every
   64-bit platform.  Fail loudly rather than corrupt pages on a 32-bit
   host. *)
let () =
  if Sys.int_size < 63 then
    failwith "Page: packed representation requires a 64-bit platform"

let make ~user ~id =
  if user < 0 then invalid_arg "Page.make: negative user";
  if id < 0 then invalid_arg "Page.make: negative id";
  if user > max_user then invalid_arg "Page.make: user exceeds 2^24 - 1";
  if id > max_id then invalid_arg "Page.make: id exceeds 2^38 - 1";
  (user lsl id_bits) lor id
  [@@effects.pure] [@@effects.no_alloc]

let user t = t lsr id_bits [@@effects.pure] [@@effects.no_alloc]
let id t = t land max_id [@@effects.pure] [@@effects.no_alloc]

let pack t = t [@@effects.pure] [@@effects.no_alloc]

let unpack i =
  if i < 0 || i lsr id_bits > max_user then
    invalid_arg "Page.unpack: not a packed page";
  i
  [@@effects.pure] [@@effects.no_alloc]

let compare (a : t) (b : t) = Int.compare a b
  [@@effects.pure] [@@effects.no_alloc]

let equal (a : t) (b : t) = a = b [@@effects.pure] [@@effects.no_alloc]

(* Same value the unpacked-record representation hashed to, so every
   [Page.Tbl] keeps its historical bucket layout (and with it the
   iteration order golden outputs were recorded under). *)
let hash t = (user t * 0x9E3779B1) lxor id t

let pp ppf t = Fmt.pf ppf "u%d:p%d" (user t) (id t)

let to_string t = Printf.sprintf "u%d:p%d" (user t) (id t)

(** Parse the [uU:pI] form produced by {!to_string}/{!pp}. *)
let of_string s =
  match String.split_on_char ':' s with
  | [ u; p ]
    when String.length u > 1 && u.[0] = 'u' && String.length p > 1 && p.[0] = 'p' ->
      (try
         let user = int_of_string (String.sub u 1 (String.length u - 1)) in
         let id = int_of_string (String.sub p 1 (String.length p - 1)) in
         Some (make ~user ~id)
       with Invalid_argument _ | Failure _ -> None)
  | _ -> None

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Tbl = Hashtbl.Make (Key)
module Set = Set.Make (Key)
module Map = Map.Make (Key)
