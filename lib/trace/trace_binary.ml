(** Zero-copy binary trace format (".ctrace").

    Little-endian, versioned layout (all offsets in bytes):
    {v
    0   8   magic  "CCTRACE0"
    8   4   format version (u32) = 1
    12  4   endianness tag (u32) = 0x0A0B0C0D, written in LE byte order
    16  4   n_users (u32)
    20  4   n_pages P (u32)
    24  8   length T (u64)
    32  8   reserved, must be 0
    40      dictionary: P x i64 — packed pages in first-touch order,
            so dense id d names the page at entry d
    40+8P   requests: T x u32 — dense ids, one per position
    v}
    Total file size is exactly [40 + 8P + 4T]; anything else is
    rejected as truncation/corruption.

    {!open_file} reads and validates the fixed header and the O(P)
    dictionary through a channel, then maps the O(T) request region
    with [Unix.map_file] — so opening is O(P), independent of T, the
    pages are shared read-only across processes and domains, and
    {!dense_at} iteration performs no per-request allocation (the
    region is a [char] Bigarray decoded by hand: the [int32] kind would
    box every element).  The format is endian-pinned rather than
    byte-swapped: big-endian hosts are refused outright, which this
    project will never meet in CI. *)

exception Format_error of { offset : int; msg : string }

let error offset fmt =
  Printf.ksprintf (fun msg -> raise (Format_error { offset; msg })) fmt

let magic = "CCTRACE0"
let version = 1
let endian_tag = 0x0A0B0C0D
let header_bytes = 40

let require_little_endian () =
  if Sys.big_endian then
    error 12 "big-endian hosts are not supported by the .ctrace format"

(* The request region as raw bytes; decoding by hand keeps accessors
   allocation-free (Bigarray's int32 kind boxes every element). *)
type region =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type handle = {
  n_users : int;
  pages : Page.t array;  (** the dictionary; dense id = index *)
  length : int;
  data : region;  (** [4 * length] bytes of u32 dense ids *)
}

let n_users h = h.n_users
let n_pages h = Array.length h.pages
let length h = h.length
let page_of_dense h d = h.pages.(d)

let dense_at h i =
  let base = 4 * i in
  let b k = Char.code (Bigarray.Array1.unsafe_get h.data (base + k)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  [@@effects.deterministic]

let page_at h i = h.pages.(dense_at h i)

(* {2 Writing} *)

let add_u32 buf v =
  for k = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * k)) land 0xFF))
  done

let add_u64 buf v =
  for k = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * k)) land 0xFF))
  done

let header_string trace =
  let buf = Buffer.create header_bytes in
  Buffer.add_string buf magic;
  add_u32 buf version;
  add_u32 buf endian_tag;
  add_u32 buf (Trace.n_users trace);
  add_u32 buf (Trace.n_pages trace);
  add_u64 buf (Trace.length trace);
  add_u64 buf 0;
  Buffer.contents buf

let write_channel oc trace =
  require_little_endian ();
  let p = Trace.n_pages trace in
  if p > 0xFFFFFFFF then error 20 "trace has too many distinct pages for u32";
  output_string oc (header_string trace);
  let buf = Buffer.create (8 * 1024) in
  for d = 0 to p - 1 do
    add_u64 buf (Page.pack (Trace.page_of_dense trace d))
  done;
  Buffer.output_buffer oc buf;
  Buffer.clear buf;
  let dense = Trace.dense trace in
  Array.iter
    (fun d ->
      add_u32 buf d;
      if Buffer.length buf >= 64 * 1024 then begin
        Buffer.output_buffer oc buf;
        Buffer.clear buf
      end)
    dense;
  Buffer.output_buffer oc buf

let write_file path trace =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc trace)

let to_string trace =
  let buf = Buffer.create (header_bytes + (4 * Trace.length trace)) in
  Buffer.add_string buf (header_string trace);
  for d = 0 to Trace.n_pages trace - 1 do
    add_u64 buf (Page.pack (Trace.page_of_dense trace d))
  done;
  Array.iter (fun d -> add_u32 buf d) (Trace.dense trace);
  Buffer.contents buf

(* {2 Reading} *)

let get_u32 s off =
  let b k = Char.code s.[off + k] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let get_u64 s off =
  let lo = get_u32 s off and hi = get_u32 s (off + 4) in
  if hi lsr 30 <> 0 then error off "64-bit field exceeds the OCaml int range";
  lo lor (hi lsl 32)

(* Header + dictionary from their raw bytes; [file_size] (when known)
   must match the layout exactly. *)
let parse_prefix ~file_size s =
  if String.length s < header_bytes then
    error 0 "truncated header: %d bytes, need %d" (String.length s) header_bytes;
  if String.sub s 0 8 <> magic then error 0 "bad magic (not a .ctrace file)";
  let v = get_u32 s 8 in
  if v <> version then error 8 "unsupported format version %d (want %d)" v version;
  let tag = get_u32 s 12 in
  if tag <> endian_tag then error 12 "bad endianness tag 0x%08X" tag;
  let n_users = get_u32 s 16 in
  if n_users <= 0 then error 16 "non-positive user count %d" n_users;
  let p = get_u32 s 20 in
  let t = get_u64 s 24 in
  if get_u64 s 32 <> 0 then error 32 "non-zero reserved field";
  let expect = header_bytes + (8 * p) + (4 * t) in
  (match file_size with
  | Some size when size <> expect ->
      error 24 "size mismatch: file has %d bytes, layout needs %d" size expect
  | _ -> ());
  if String.length s < header_bytes + (8 * p) then
    error header_bytes "truncated dictionary";
  let pages =
    Array.init p (fun d ->
        let off = header_bytes + (8 * d) in
        let packed = get_u64 s off in
        try Page.unpack packed
        with Invalid_argument _ -> error off "invalid packed page %d" packed)
  in
  Array.iter
    (fun page ->
      if Page.user page >= n_users then
        error 16 "dictionary page %s outside user range [0,%d)"
          (Page.to_string page) n_users)
    pages;
  (n_users, pages, t)

let empty_region : region =
  Bigarray.Array1.create Bigarray.char Bigarray.c_layout 0

let open_file path =
  require_little_endian ();
  let ic = open_in_bin path in
  let n_users, pages, t =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let size = in_channel_length ic in
        (* read only header + dict: O(P), never O(T) *)
        let header = really_input_string ic (min size header_bytes) in
        if String.length header < header_bytes then
          error 0 "truncated header: %d bytes, need %d" size header_bytes;
        let p = get_u32 header 20 in
        let dict_len = min (8 * p) (size - header_bytes) in
        let dict = really_input_string ic dict_len in
        parse_prefix ~file_size:(Some size) (header ^ dict))
  in
  let data =
    if t = 0 then empty_region
    else begin
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let pos = Int64.of_int (header_bytes + (8 * Array.length pages)) in
          Bigarray.array1_of_genarray
            (Unix.map_file fd ~pos Bigarray.char Bigarray.c_layout false
               [| 4 * t |]))
    end
  in
  { n_users; pages; length = t; data }

(* Materialise a full [Trace.t]; [Trace.of_dense] validates the dense
   stream (range, first-touch order), so a crafted request region
   cannot produce an ill-formed trace. *)
let to_trace h =
  let dense = Array.init h.length (fun i -> dense_at h i) in
  try Trace.of_dense ~n_users:h.n_users ~pages:h.pages ~dense
  with Invalid_argument msg ->
    error (header_bytes + (8 * Array.length h.pages)) "%s" msg

let read_file path = to_trace (open_file path)

let of_string s =
  require_little_endian ();
  let n_users, pages, t = parse_prefix ~file_size:(Some (String.length s)) s in
  let base = header_bytes + (8 * Array.length pages) in
  let dense = Array.init t (fun i -> get_u32 s (base + (4 * i))) in
  try Trace.of_dense ~n_users ~pages ~dense
  with Invalid_argument msg -> error base "%s" msg

let looks_binary s = String.length s >= 8 && String.sub s 0 8 = magic

let file_looks_binary path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try really_input_string ic 8 = magic with End_of_file -> false)
