(** Synthetic multi-tenant workload generators.

    Stand-in for the proprietary SQLVM buffer-pool traces of the
    companion paper [14] (see DESIGN.md, substitution table): each
    tenant draws page ids from a configurable access pattern, and a
    weighted interleaver merges tenants into one shared request stream.
    All randomness comes from {!Ccache_util.Prng}, so a [(seed, spec)]
    pair fully determines the trace. *)

type pattern =
  | Uniform of { pages : int }
      (** independent uniform draws over a working set *)
  | Zipf of { pages : int; skew : float }
      (** heavy-tailed popularity; skew 0 = uniform *)
  | Cycle of { pages : int }
      (** strict cyclic sweep 0,1,...,pages-1,0,...  With
          [pages = k + 1] this is the classical LRU worst case. *)
  | Sequential_scan of { pages : int; passes : int }
      (** [passes] full sweeps, then wraps to uniform re-reads;
          models a table scan followed by point queries *)
  | Hot_cold of { pages : int; hot_pages : int; hot_prob : float }
      (** with probability [hot_prob] touch one of [hot_pages] hot
          pages uniformly, else a cold page uniformly *)
  | Drifting_zipf of { pages : int; window : int; skew : float; shift_every : int }
      (** Zipf over a [window]-sized working set whose base offset
          advances by one page every [shift_every] requests (mod
          [pages]); models working-set drift *)
  | Mixture of (float * pattern) list
      (** each request drawn from pattern [p_i] with weight [w_i] *)

let require_finite ~field v =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Workloads: %s = %g is not finite" field v)

let rec validate_pattern = function
  | Uniform { pages } | Cycle { pages } ->
      if pages <= 0 then invalid_arg "Workloads: pattern needs pages > 0"
  | Zipf { pages; skew } ->
      if pages <= 0 then invalid_arg "Workloads: pattern needs pages > 0";
      require_finite ~field:"skew" skew;
      if skew < 0.0 then invalid_arg "Workloads: negative skew"
  | Sequential_scan { pages; passes } ->
      if pages <= 0 || passes < 0 then invalid_arg "Workloads: bad scan spec"
  | Hot_cold { pages; hot_pages; hot_prob } ->
      if pages <= 0 || hot_pages <= 0 || hot_pages > pages then
        invalid_arg "Workloads: bad hot/cold split";
      require_finite ~field:"hot_prob" hot_prob;
      if hot_prob < 0.0 || hot_prob > 1.0 then
        invalid_arg "Workloads: hot_prob outside [0,1]"
  | Drifting_zipf { pages; window; skew; shift_every } ->
      if pages <= 0 || window <= 0 || window > pages || shift_every <= 0 then
        invalid_arg "Workloads: bad drift spec";
      require_finite ~field:"skew" skew;
      if skew < 0.0 then invalid_arg "Workloads: negative skew"
  | Mixture parts ->
      if parts = [] then invalid_arg "Workloads: empty mixture";
      List.iter
        (fun (w, p) ->
          require_finite ~field:"mixture weight" w;
          if w <= 0.0 then invalid_arg "Workloads: nonpositive mixture weight";
          validate_pattern p)
        parts

(** Number of distinct page ids a pattern can emit. *)
let rec footprint = function
  | Uniform { pages } | Zipf { pages; _ } | Cycle { pages }
  | Sequential_scan { pages; _ } | Hot_cold { pages; _ }
  | Drifting_zipf { pages; _ } ->
      pages
  | Mixture parts ->
      List.fold_left (fun acc (_, p) -> Stdlib.max acc (footprint p)) 0 parts

(* A sampler is a stateful thunk producing the next page id. *)
let rec make_sampler pattern rng =
  validate_pattern pattern;
  match pattern with
  | Uniform { pages } -> fun () -> Ccache_util.Prng.int rng pages
  | Zipf { pages; skew } ->
      let z = Zipf.create ~n:pages ~skew in
      fun () -> Zipf.sample z rng
  | Cycle { pages } ->
      let pos = ref (-1) in
      fun () ->
        pos := (!pos + 1) mod pages;
        !pos
  | Sequential_scan { pages; passes } ->
      let emitted = ref 0 in
      let budget = passes * pages in
      fun () ->
        if !emitted < budget then begin
          let v = !emitted mod pages in
          incr emitted;
          v
        end
        else Ccache_util.Prng.int rng pages
  | Hot_cold { pages; hot_pages; hot_prob } ->
      fun () ->
        if Ccache_util.Prng.bernoulli rng ~p:hot_prob then
          Ccache_util.Prng.int rng hot_pages
        else if hot_pages = pages then Ccache_util.Prng.int rng pages
        else hot_pages + Ccache_util.Prng.int rng (pages - hot_pages)
  | Drifting_zipf { pages; window; skew; shift_every } ->
      let z = Zipf.create ~n:window ~skew in
      let emitted = ref 0 in
      fun () ->
        let offset = !emitted / shift_every in
        incr emitted;
        (offset + Zipf.sample z rng) mod pages
  | Mixture parts ->
      let weights = Array.of_list (List.map fst parts) in
      let samplers =
        Array.of_list (List.map (fun (_, p) -> make_sampler p rng) parts)
      in
      fun () ->
        let i = Ccache_util.Prng.categorical rng ~weights in
        samplers.(i) ()

type tenant_spec = {
  pattern : pattern;
  weight : float;  (** relative request rate of this tenant *)
}

(* Canonical fingerprint of a (seed, length, specs) triple for the
   on-disk trace cache.  Floats render with %h (exact bit pattern), so
   two spec values collide iff generation would be identical. *)
let rec pattern_fingerprint = function
  | Uniform { pages } -> Printf.sprintf "uniform(%d)" pages
  | Zipf { pages; skew } -> Printf.sprintf "zipf(%d,%h)" pages skew
  | Cycle { pages } -> Printf.sprintf "cycle(%d)" pages
  | Sequential_scan { pages; passes } -> Printf.sprintf "scan(%d,%d)" pages passes
  | Hot_cold { pages; hot_pages; hot_prob } ->
      Printf.sprintf "hotcold(%d,%d,%h)" pages hot_pages hot_prob
  | Drifting_zipf { pages; window; skew; shift_every } ->
      Printf.sprintf "drift(%d,%d,%h,%d)" pages window skew shift_every
  | Mixture parts ->
      Printf.sprintf "mix[%s]"
        (String.concat ";"
           (List.map
              (fun (w, p) -> Printf.sprintf "%h*%s" w (pattern_fingerprint p))
              parts))

let fingerprint ~seed ~length specs =
  Printf.sprintf "workload-v1 seed=%d length=%d tenants=[%s]" seed length
    (String.concat ";"
       (List.map
          (fun s -> Printf.sprintf "%h:%s" s.weight (pattern_fingerprint s.pattern))
          specs))

let tenant ?(weight = 1.0) pattern =
  require_finite ~field:"tenant weight" weight;
  if weight <= 0.0 then invalid_arg "Workloads.tenant: weight must be positive";
  { pattern; weight }

(** Generate a [length]-request multi-tenant trace.  Tenant [i]'s pages
    get user id [i]; each request picks a tenant proportionally to its
    weight, then asks the tenant's sampler for a page id. *)
let generate ~seed ~length specs =
  if specs = [] then invalid_arg "Workloads.generate: no tenants";
  if length < 0 then invalid_arg "Workloads.generate: negative length";
  (* generation is a pure function of (seed, length, specs), which is
     exactly what makes the on-disk memoisation sound *)
  Trace_cache.memoize ~fingerprint:(fingerprint ~seed ~length specs) (fun () ->
      let rng = Ccache_util.Prng.create ~seed in
      let specs = Array.of_list specs in
      let n_users = Array.length specs in
      let weights = Array.map (fun s -> s.weight) specs in
      let samplers =
        Array.map
          (fun s -> make_sampler s.pattern (Ccache_util.Prng.split rng))
          specs
      in
      let requests =
        Array.init length (fun _ ->
            let u = Ccache_util.Prng.categorical rng ~weights in
            Page.make ~user:u ~id:(samplers.(u) ()))
      in
      Trace.of_pages ~n_users requests)

(** Single-tenant convenience wrapper. *)
let generate_single ~seed ~length pattern =
  generate ~seed ~length [ tenant pattern ]

(** Phased generation (tenant churn): each phase runs its own tenant
    specs for its duration; all phases must describe the same number
    of tenants (a tenant "departing" is modelled by a tiny weight).
    Samplers restart at each phase boundary, modelling a working-set
    reset on reactivation. *)
let generate_phases ~seed phases =
  if phases = [] then invalid_arg "Workloads.generate_phases: no phases";
  let n_users =
    match phases with
    | (specs, _) :: _ -> List.length specs
    | [] -> assert false
  in
  List.iter
    (fun (specs, duration) ->
      if List.length specs <> n_users then
        invalid_arg "Workloads.generate_phases: phases disagree on tenant count";
      if duration < 0 then invalid_arg "Workloads.generate_phases: negative duration")
    phases;
  let pieces =
    List.mapi
      (fun i (specs, duration) ->
        generate ~seed:(seed + (7919 * i)) ~length:duration specs)
      phases
  in
  match pieces with
  | first :: rest -> List.fold_left Trace.append first rest
  | [] -> assert false

(** Diurnal-style churn: [cycles] repetitions of a two-phase pattern
    where the tenant set alternates between a "day" mix (all tenants
    active) and a "night" mix (only the [night_tenants] first tenants
    remain chatty; the rest idle at weight epsilon). *)
let day_night ~day ~night_tenants ~phase_length ~cycles =
  if night_tenants <= 0 || night_tenants > List.length day then
    invalid_arg "Workloads.day_night: bad night tenant count";
  if cycles <= 0 || phase_length <= 0 then
    invalid_arg "Workloads.day_night: bad cycle shape";
  let night =
    List.mapi
      (fun i spec ->
        if i < night_tenants then spec else { spec with weight = 1e-6 })
      day
  in
  List.concat
    (List.init cycles (fun _ -> [ (day, phase_length); (night, phase_length) ]))

(* ------------------------------------------------------------------ *)
(* Canned scenario builders used across examples and experiments       *)
(* ------------------------------------------------------------------ *)

(** [n] identical Zipf tenants — the symmetric multi-tenancy baseline. *)
let symmetric_zipf ~tenants ~pages_per_tenant ~skew =
  List.init tenants (fun _ -> tenant (Zipf { pages = pages_per_tenant; skew }))

(** SQLVM-style mix: a few large skewed OLTP-ish tenants, one scan-heavy
    tenant and one small hot-set tenant, with unequal request rates.
    Mirrors the workload archetypes of the companion VLDB paper. *)
let sqlvm_mix ~scale =
  if scale <= 0 then invalid_arg "Workloads.sqlvm_mix: scale must be positive";
  [
    tenant ~weight:4.0 (Zipf { pages = 64 * scale; skew = 0.9 });
    tenant ~weight:2.0 (Zipf { pages = 32 * scale; skew = 0.7 });
    tenant ~weight:1.5
      (Sequential_scan { pages = 48 * scale; passes = 4 });
    tenant ~weight:2.5
      (Hot_cold { pages = 40 * scale; hot_pages = 4 * scale; hot_prob = 0.85 });
    tenant ~weight:1.0
      (Drifting_zipf
         { pages = 50 * scale; window = 10 * scale; skew = 0.8; shift_every = 60 });
  ]

(** The classical deterministic LRU nemesis: one tenant cycling over
    [k + 1] pages. *)
let lru_nemesis ~k = [ tenant (Cycle { pages = k + 1 }) ]
