(** Readers for external address-trace formats.

    Two text formats from the wild:

    - ["rw"] (cachetrace-style): one access per line, [R 0xADDR] or
      [W 0xADDR] (decimal addresses also accepted);
    - ["lackey"] (valgrind [--tool=lackey --trace-mem=yes]): lines
      [I addr,size] for instruction fetches and [ L addr,size] /
      [ S addr,size] / [ M addr,size] for data loads, stores and
      modifies, addresses in bare hex.  Valgrind banner lines
      ([==pid== ...]) are skipped.

    Addresses are mapped to pages by [addr lsr page_shift] (default 12:
    4 KiB pages) and then {e interned}: raw 64-bit page numbers exceed
    {!Page}'s 38-bit id field, so each distinct page gets its
    first-touch rank as its id, under a single user 0.  The renaming is
    order-preserving and collision-free, and every caching policy in
    this repository is invariant under it — policies only ever compare
    pages for identity.

    Malformed lines raise {!Trace_io.Parse_error} with the 1-based line
    number, matching the native text reader's error discipline. *)

let default_page_shift = 12

(* Growable int buffer: avoids a boxed list of millions of cons cells
   while parsing long traces. *)
type buf = { mutable data : int array; mutable len : int }

let buf_create () = { data = Array.make 1024 0; len = 0 }

let buf_push b v =
  if b.len = Array.length b.data then begin
    let bigger = Array.make (2 * b.len) 0 in
    Array.blit b.data 0 bigger 0 b.len;
    b.data <- bigger
  end;
  b.data.(b.len) <- v;
  b.len <- b.len + 1

(* Interning state: raw page number -> dense id (first-touch rank). *)
type interner = {
  tbl : Ccache_util.Int_tbl.t;
  pages : buf;  (** dense ids in request order *)
  mutable next : int;
}

let interner_create () =
  { tbl = Ccache_util.Int_tbl.create ~capacity:4096 (); pages = buf_create (); next = 0 }

let touch it ~line raw_page =
  if raw_page < 0 then
    raise
      (Trace_io.Parse_error { line; msg = "address out of range after shift" });
  let d = Ccache_util.Int_tbl.find_default it.tbl raw_page ~default:(-1) in
  let d =
    if d >= 0 then d
    else begin
      let d = it.next in
      Ccache_util.Int_tbl.set it.tbl raw_page d;
      it.next <- d + 1;
      d
    end
  in
  buf_push it.pages d

let finish it =
  let requests =
    Array.init it.pages.len (fun i ->
        Page.make ~user:0 ~id:it.pages.data.(i))
  in
  Trace.of_pages ~n_users:1 requests

let parse_addr ~line s =
  (* int_of_string understands the 0x prefix; bare decimal also works *)
  match int_of_string_opt s with
  | Some a when a >= 0 -> a
  | _ ->
      raise
        (Trace_io.Parse_error { line; msg = "invalid address: " ^ s })

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let iter_lines s f =
  let n = String.length s in
  let line = ref 1 in
  let start = ref 0 in
  for i = 0 to n do
    if i = n || s.[i] = '\n' then begin
      if i > !start then f !line (String.sub s !start (i - !start));
      start := i + 1;
      incr line
    end
  done

(* {2 rw format} *)

let of_string_rw ?(page_shift = default_page_shift) s =
  if page_shift < 0 || page_shift > 62 then
    invalid_arg "Trace_extern: page_shift outside [0, 62]";
  let it = interner_create () in
  iter_lines s (fun line raw ->
      let trimmed = String.trim raw in
      if trimmed = "" || trimmed.[0] = '#' then ()
      else
        match tokens trimmed with
        | [ ("R" | "W" | "r" | "w"); addr ] ->
            touch it ~line (parse_addr ~line addr lsr page_shift)
        | _ ->
            raise
              (Trace_io.Parse_error
                 { line; msg = "expected 'R 0xADDR' or 'W 0xADDR'" }));
  finish it

(* {2 valgrind lackey format} *)

let is_banner line = String.length line >= 2 && line.[0] = '=' && line.[1] = '='

let of_string_lackey ?(page_shift = default_page_shift) s =
  if page_shift < 0 || page_shift > 62 then
    invalid_arg "Trace_extern: page_shift outside [0, 62]";
  let it = interner_create () in
  iter_lines s (fun line raw ->
      let trimmed = String.trim raw in
      if trimmed = "" || trimmed.[0] = '#' || is_banner trimmed then ()
      else
        match tokens trimmed with
        | [ ("I" | "L" | "S" | "M"); ref_ ] -> (
            (* "addr,size" with bare-hex addr *)
            match String.index_opt ref_ ',' with
            | Some comma ->
                let addr = String.sub ref_ 0 comma in
                touch it ~line (parse_addr ~line ("0x" ^ addr) lsr page_shift)
            | None ->
                raise
                  (Trace_io.Parse_error
                     { line; msg = "expected 'addr,size' reference" }))
        | _ ->
            raise
              (Trace_io.Parse_error
                 { line; msg = "unrecognised lackey line: " ^ trimmed }));
  finish it

(* {2 Files and dispatch} *)

type format = Rw | Lackey

let format_of_string = function
  | "rw" -> Some Rw
  | "lackey" -> Some Lackey
  | _ -> None

let of_string ?page_shift fmt s =
  match fmt with
  | Rw -> of_string_rw ?page_shift s
  | Lackey -> of_string_lackey ?page_shift s

let read_file ?page_shift fmt path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      of_string ?page_shift fmt (really_input_string ic (in_channel_length ic)))
