(** Fingerprinted on-disk trace cache.

    [memoize ~fingerprint gen] returns [gen ()]'s trace, backed by a
    directory of [.ctrace] binaries keyed by a 64-bit FNV-1a hash of
    the fingerprint string.  A [<hash>.fp] sidecar stores the full
    fingerprint, so a hash collision degrades to a cache miss, never to
    a wrong trace.  Workload generation is deterministic in its
    fingerprint, which gives the two crucial properties: a cache hit is
    byte-for-byte the trace that would have been generated, and
    concurrent writers (jobs 8, parallel CI) all write identical bytes
    — the atomic tmp+rename publication below just decides who wins.

    Disabled (the default, [set_dir None]) this module is a transparent
    pass-through; cache {e write} failures (read-only dir, disk full)
    are swallowed and the generated trace returned, so the cache can
    only ever trade speed, not correctness. *)

let dir : string option ref = ref None

let set_dir d = dir := d
let current_dir () = !dir

(* FNV-1a, 64-bit — stable across runs and processes, unlike
   [Hashtbl.hash] which the lint rules also frown on for keys that
   reach the filesystem. *)
let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let key_of_fingerprint fp = Printf.sprintf "%016Lx" (fnv64 fp)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

let mkdir_p d =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go d

let lookup ~dir ~key ~fingerprint =
  let ctrace = Filename.concat dir (key ^ ".ctrace") in
  let fp = Filename.concat dir (key ^ ".fp") in
  match read_all fp with
  | stored when stored = fingerprint -> (
      try Some (Trace_binary.read_file ctrace)
      with Trace_binary.Format_error _ | Sys_error _ -> None)
  | _ -> None (* hash collision or stale sidecar: treat as a miss *)
  | exception (Sys_error _ | End_of_file) -> None

(* Publish [.ctrace] before [.fp]: a reader that races us sees at worst
   a missing sidecar (a miss).  Tmp names carry the pid, so concurrent
   writers never clobber each other's half-written files — and since
   all writers of one key produce identical bytes, last-rename-wins is
   harmless. *)
let store ~dir ~key ~fingerprint trace =
  try
    mkdir_p dir;
    let tmp ext =
      Filename.concat dir (Printf.sprintf ".%s.%d.tmp%s" key (Unix.getpid ()) ext)
    in
    let tc = tmp ".ctrace" and tf = tmp ".fp" in
    Trace_binary.write_file tc trace;
    write_all tf fingerprint;
    Sys.rename tc (Filename.concat dir (key ^ ".ctrace"));
    Sys.rename tf (Filename.concat dir (key ^ ".fp"))
  with Sys_error _ | Unix.Unix_error _ | Trace_binary.Format_error _ -> ()

let memoize ~fingerprint gen =
  match !dir with
  | None -> gen ()
  | Some dir -> (
      let key = key_of_fingerprint fingerprint in
      match lookup ~dir ~key ~fingerprint with
      | Some trace -> trace
      | None ->
          let trace = gen () in
          store ~dir ~key ~fingerprint trace;
          trace)
