(** Minimal JSON emission helpers shared by the exporters.

    Hand-rolled on purpose: the repo has no JSON dependency, the
    exporters only ever *write*, and byte-stable output (fixed field
    order, fixed number formatting) is a contract the golden tests
    enforce. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

(* Non-finite floats have no JSON encoding; observability values are
   finite by construction upstream, and [null] keeps the document
   parseable if one ever slips through. *)
let num v = if Float.is_finite v then Printf.sprintf "%g" v else "null"

(* Microsecond timestamps for Chrome trace events: fixed-point so the
   format cannot flip between decimal and scientific notation. *)
let micros v = Printf.sprintf "%.3f" (v *. 1e6)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of value list
  | Obj of (string * value) list

exception Parse_error of string

(* Recursive-descent parser over the whole document string.  Scope is
   what this repo's own emitters produce (bench artifacts, metric
   shards): full JSON minus the exotica — surrogate pairs in \u escapes
   decode to U+FFFD replacement rather than UTF-16 pairing. *)
let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_add buf code =
    (* encode a BMP code point; lone surrogates become U+FFFD *)
    let code = if code >= 0xD800 && code <= 0xDFFF then 0xFFFD else code in
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
                 advance ();
                 if !pos + 4 > n then fail "truncated \\u escape";
                 let hex = String.sub s !pos 4 in
                 (match int_of_string_opt ("0x" ^ hex) with
                 | Some code -> utf8_add buf code
                 | None -> fail "bad \\u escape");
                 pos := !pos + 4
             | c -> fail (Printf.sprintf "bad escape \\%C" c));
          go ()
      | c when Char.code c < 0x20 -> fail "control char in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    while
      !pos < n
      && match s.[!pos] with
         | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
         | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Number f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((key, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          List []
        end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | '"' -> String (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> parse_number ()
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
