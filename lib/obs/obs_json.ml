(** Minimal JSON emission helpers shared by the exporters.

    Hand-rolled on purpose: the repo has no JSON dependency, the
    exporters only ever *write*, and byte-stable output (fixed field
    order, fixed number formatting) is a contract the golden tests
    enforce. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

(* Non-finite floats have no JSON encoding; observability values are
   finite by construction upstream, and [null] keeps the document
   parseable if one ever slips through. *)
let num v = if Float.is_finite v then Printf.sprintf "%g" v else "null"

(* Microsecond timestamps for Chrome trace events: fixed-point so the
   format cannot flip between decimal and scientific notation. *)
let micros v = Printf.sprintf "%.3f" (v *. 1e6)
