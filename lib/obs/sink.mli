(** Per-domain sharded sinks (internal substrate of {!Metrics} and
    {!Span}; exposed for tests).

    Contract: a domain writes only to its own shard (obtained via
    [shard ()]), so writes are lock-free; [shards]/[reset] synchronise
    on a registry mutex.  Snapshots should be taken after worker
    domains have joined or gone idle.  Merged views order events by
    [(sh_domain, seq)], which is total and deterministic. *)

type arg = Int of int | Float of float | Str of string | Bool of bool

type hist = {
  bounds : float array;  (** strictly increasing bucket upper bounds *)
  counts : int array;  (** length = [Array.length bounds + 1]; last = overflow *)
  mutable sum : float;
  mutable n : int;
}

type span = {
  sp_name : string;
  sp_cat : string;
  sp_domain : int;
  sp_seq : int;  (** open order within the domain *)
  sp_parent : int option;  (** [sp_seq] of the enclosing span, same domain *)
  sp_start : float;
  sp_dur : float;
  sp_instant : bool;
  sp_args : (string * arg) list;
}

type frame = {
  fr_seq : int;
  fr_name : string;
  fr_cat : string;
  fr_start : float;
  fr_args : (string * arg) list;
}

type shard = {
  sh_domain : int;
  mutable sh_seq : int;
  sh_counters : (string, int ref) Hashtbl.t;
  sh_gauges : (string, int * float) Hashtbl.t;  (** (seq at write, value) *)
  sh_hists : (string, hist) Hashtbl.t;
  mutable sh_spans : span list;  (** reversed record order *)
  mutable sh_stack : frame list;  (** open spans, innermost first *)
}

val shard : unit -> shard
(** The calling domain's shard for the current generation (created and
    registered on first use). *)

val next_seq : shard -> int
(** Allocate the next per-shard sequence number. *)

val shards : unit -> shard list
(** All registered shards of the current generation, sorted by domain
    id. *)

val reset : unit -> unit
(** Start a new generation: the registry empties and every domain's
    cached shard is lazily replaced on its next write.  Test isolation
    only — not meant to race live writers. *)
