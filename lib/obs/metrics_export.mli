(** Render a {!Metrics.snapshot} as flat JSON or a markdown table.

    Output is byte-stable for a given snapshot: sections and entries
    are name-sorted (the snapshot's own order) and numbers use fixed
    formatting. *)

val to_json : Metrics.snapshot -> string
(** [{"counters":{..},"gauges":{..},"histograms":{..}}] with
    name-sorted keys. *)

val to_markdown : Metrics.snapshot -> string

val write : path:string -> Metrics.snapshot -> unit
(** [to_json] straight to a file. *)
