(** JSON emission helpers for the exporters (byte-stable by design). *)

val escape : string -> string
(** JSON string-body escaping: quotes, backslashes, control chars. *)

val str : string -> string
(** A quoted, escaped JSON string literal. *)

val num : float -> string
(** A JSON number via [%g]; non-finite values become [null]. *)

val micros : float -> string
(** Seconds rendered as fixed-point microseconds ([%.3f]). *)
