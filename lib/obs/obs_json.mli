(** JSON emission helpers for the exporters (byte-stable by design). *)

val escape : string -> string
(** JSON string-body escaping: quotes, backslashes, control chars. *)

val str : string -> string
(** A quoted, escaped JSON string literal. *)

val num : float -> string
(** A JSON number via [%g]; non-finite values become [null]. *)

val micros : float -> string
(** Seconds rendered as fixed-point microseconds ([%.3f]). *)

(** {1 Reading}

    A minimal parser for reading this repo's own artifacts back (bench
    baselines, metric shards) — still no external JSON dependency. *)

type value =
  | Null
  | Bool of bool
  | Number of float  (** all JSON numbers, integral or not *)
  | String of string
  | List of value list
  | Obj of (string * value) list
      (** fields in document order; duplicate keys are kept *)

val parse : string -> (value, string) result
(** Parse one complete JSON document.  [Error] carries a message with a
    byte offset.  Numbers become [float]s; [\u] escapes outside the BMP
    (surrogates) decode to U+FFFD. *)

val member : string -> value -> value option
(** Field lookup on an [Obj] (first match); [None] on any other
    constructor. *)
