(** The observability clock capability.

    Wall-clock time is quarantined here: this module is the only place
    in [lib/] allowed to read it (enforced by the [no-wall-clock] lint
    rule), and timestamps only ever flow *out* of the simulation into
    observability sinks — never into simulation state.  Code that needs
    a timestamp takes an explicit [t] (a [~now] capability), so tests
    substitute a deterministic clock and golden files stay stable. *)

type t = unit -> float

let now (c : t) = c ()

(* The sanctioned wall-clock read.  Everything else derives from it.
   The forgiveness mask keeps the [time] seed out of every caller's
   effect set: this node IS the quarantine boundary (the static
   analyzer's [direct-clock] rule rejects a [time] seed anywhere
   else). *)
let wall : t = (fun () -> Unix.gettimeofday ()) [@@effects.forgive "time"]

(* Monotonised wall clock: latches the largest value handed out so far,
   so timestamps never step backwards across NTP adjustments.  The
   latch is a CAS loop on a boxed float; contention is negligible at
   span granularity. *)
let last = Atomic.make 0.0

let monotonic : t =
 fun () ->
  let rec go () =
    let now = wall () in
    let prev = Atomic.get last in
    if now <= prev then prev
    else if Atomic.compare_and_set last prev now then now
    else go ()
  in
  go ()

let fixed v : t = fun () -> v

let counting ?(start = 0.0) ?(step = 1.0) () : t =
  let n = Atomic.make 0 in
  fun () -> start +. (step *. float_of_int (Atomic.fetch_and_add n 1))
