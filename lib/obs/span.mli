(** Span tracing: nested timed regions and instant events.

    No-ops while {!Control.enabled} is false.  Parent/child nesting is
    per-domain and maintained by a stack, so it is well-formed by
    construction even across exceptions (the closing record happens in
    a [Fun.protect] finaliser).

    The [?now] capability overrides the configured clock for this span
    only — tests pass {!Clock.counting} or {!Clock.fixed} so exported
    traces are byte-stable. *)

val with_ :
  ?now:Clock.t ->
  ?cat:string ->
  ?args:(string * Sink.arg) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_ name f] runs [f] inside a span.  The span is recorded even
    if [f] raises. *)

val instant :
  ?now:Clock.t -> ?cat:string -> ?args:(string * Sink.arg) list -> string -> unit
(** Record a zero-duration event, parented to the innermost open span
    on this domain. *)

val collect : unit -> Sink.span list
(** All recorded spans, merged across shards and sorted by
    [(domain id, seq)] — a total, deterministic order. *)
