(** Counters, gauges and fixed-bucket histograms.

    All recording calls are no-ops while {!Control.enabled} is false
    (one atomic load + branch).  Writes go to the calling domain's
    {!Sink} shard, lock-free; {!snapshot} merges all shards.

    Merge semantics — associative and commutative by construction (and
    property-tested), so snapshots are independent of [--jobs] width
    and worker interleaving:
    - counters add;
    - histograms add bucket-wise ([Invalid_argument] if the same name
      was recorded with different bounds);
    - a gauge resolves to the write with the largest [(domain, seq)]
      stamp. *)

val default_bounds : float array
(** Default histogram bucket upper bounds (plus an implicit overflow
    bucket). *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to the named counter. *)

val set_gauge : string -> float -> unit
(** Record the gauge's current value. *)

val observe : ?bounds:float array -> string -> float -> unit
(** Add an observation to the named histogram.  [bounds] (default
    {!default_bounds}) takes effect on the first observation per name
    per shard; every call site for a given name must pass the same
    bounds or merging raises. *)

type hist_snapshot = {
  bounds : float array;
  counts : int array;  (** length = [Array.length bounds + 1] *)
  sum : float;
  count : int;
}

type gauge_snapshot = { g_domain : int; g_seq : int; g_value : float }

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * gauge_snapshot) list;  (** sorted by name *)
  hists : (string * hist_snapshot) list;  (** sorted by name *)
}

val empty : snapshot

val of_shard : Sink.shard -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** @raise Invalid_argument on histogram bounds mismatch. *)

val snapshot : unit -> snapshot
(** Merge of every registered shard, in domain-id order. *)

val reset : unit -> unit
(** Clear all recorded metrics and spans (new {!Sink} generation). *)
