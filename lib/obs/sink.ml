(** Per-domain sharded observability sinks.

    Each domain writes to its own shard, looked up through domain-local
    storage, so recording never takes a lock and never contends with
    other domains — the only synchronised operation is registering a
    fresh shard (once per domain per generation) and taking a merged
    snapshot afterwards.

    Determinism: every shard stamps its writes with a per-shard
    sequence number, so merged views can order events totally by
    [(domain id, seq)] — a deterministic function of shard contents.
    Counter and histogram merges are commutative and associative sums
    (property-tested in [test/test_obs.ml]), which is why merged
    metrics are independent of how work was sharded across domains.

    [reset] bumps a generation counter instead of mutating shards in
    place: stale shards cached in worker domains' local storage are
    lazily replaced on their next write.  Snapshots are meant to be
    taken after workers have joined (or are idle); a snapshot raced
    with a writer sees a torn but type-safe view. *)

type arg = Int of int | Float of float | Str of string | Bool of bool

type hist = {
  bounds : float array;  (** strictly increasing bucket upper bounds *)
  counts : int array;  (** length = [Array.length bounds + 1]; last = overflow *)
  mutable sum : float;
  mutable n : int;
}

type span = {
  sp_name : string;
  sp_cat : string;
  sp_domain : int;
  sp_seq : int;  (** open order within the domain *)
  sp_parent : int option;  (** [sp_seq] of the enclosing span, same domain *)
  sp_start : float;
  sp_dur : float;
  sp_instant : bool;
  sp_args : (string * arg) list;
}

type frame = {
  fr_seq : int;
  fr_name : string;
  fr_cat : string;
  fr_start : float;
  fr_args : (string * arg) list;
}

type shard = {
  sh_domain : int;
  mutable sh_seq : int;
  sh_counters : (string, int ref) Hashtbl.t;
  sh_gauges : (string, int * float) Hashtbl.t;  (** (seq at write, value) *)
  sh_hists : (string, hist) Hashtbl.t;
  mutable sh_spans : span list;  (** reversed record order *)
  mutable sh_stack : frame list;  (** open spans, innermost first *)
}

let registry : shard list ref = ref []
let registry_lock = Mutex.create ()
let generation = Atomic.make 0

let make_shard () =
  {
    sh_domain = (Domain.self () :> int);
    sh_seq = 0;
    sh_counters = Hashtbl.create 16;
    sh_gauges = Hashtbl.create 8;
    sh_hists = Hashtbl.create 8;
    sh_spans = [];
    sh_stack = [];
  }

(* The registry push is the one cross-domain write in the recording
   path, and it is mutex-protected: this is the sanctioned shared-write
   boundary, so the [gwrite] seed is forgiven here rather than charged
   to every pool task that records a metric. *)
let register () =
  let s = make_shard () in
  Mutex.protect registry_lock (fun () -> registry := s :: !registry);
  s
  [@@effects.forgive "gwrite"]

let key : (int * shard) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (Atomic.get generation, register ()))

let shard () =
  let gen, s = Domain.DLS.get key in
  let cur = Atomic.get generation in
  if gen = cur then s
  else begin
    let s = register () in
    Domain.DLS.set key (cur, s);
    s
  end

let next_seq sh =
  let s = sh.sh_seq in
  sh.sh_seq <- s + 1;
  s

let shards () =
  Mutex.protect registry_lock (fun () -> !registry)
  |> List.sort (fun a b -> compare a.sh_domain b.sh_domain)

let reset () =
  Atomic.incr generation;
  Mutex.protect registry_lock (fun () -> registry := [])
  [@@effects.forgive "gwrite"]
