(** Clock capability for observability timestamps.

    The determinism contract (DESIGN.md Section 9): wall-clock never
    reaches simulation state.  Timestamps exist only to annotate
    metrics and spans, and every reader takes the clock as an explicit
    value of type [t], so deterministic clocks can be substituted in
    tests.  This module is the single sanctioned wall-clock read in
    [lib/] — the [no-wall-clock] lint rule flags
    [Unix.gettimeofday]/[Unix.time]/[Sys.time] anywhere else. *)

type t = unit -> float
(** A clock: returns a timestamp in seconds.  What the epoch means is
    the clock's business; consumers may only subtract and compare. *)

val now : t -> float
(** [now c] reads the clock. *)

val wall : t
(** Raw wall-clock seconds (Unix epoch).  Observability only. *)

val monotonic : t
(** Wall clock monotonised through a global latch: never decreases,
    even across system clock adjustments.  The default span clock. *)

val fixed : float -> t
(** [fixed v] always returns [v] — for golden-file tests. *)

val counting : ?start:float -> ?step:float -> unit -> t
(** [counting ()] returns [start], [start +. step], [start +. 2*.step],
    ... on successive reads (atomically, so it is usable across
    domains).  Defaults: [start = 0.], [step = 1.].  Deterministic
    substitute for [monotonic] in tests. *)
