(** Chrome trace-event JSON exporter.

    Emits the subset of the Trace Event Format that chrome://tracing
    and Perfetto load: an object with a ["traceEvents"] array of
    complete events (["ph":"X"]) and instant events (["ph":"i"],
    thread-scoped).  Field order is fixed — name, cat, ph, ts, (dur|s),
    pid, tid, args — and timestamps are fixed-point microseconds, so
    the output is byte-stable for a given span list (golden-tested).

    [pid] is always 1 (one process); [tid] is the recording domain's
    id, so Perfetto renders one track per domain — worker occupancy is
    directly visible. *)

module J = Obs_json

let arg_value = function
  | Sink.Int i -> string_of_int i
  | Sink.Float f -> J.num f
  | Sink.Str s -> J.str s
  | Sink.Bool b -> if b then "true" else "false"

let args_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> J.str k ^ ":" ^ arg_value v) args)
  ^ "}"

let event_json ~origin (s : Sink.span) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"name\":";
  Buffer.add_string buf (J.str s.Sink.sp_name);
  Buffer.add_string buf ",\"cat\":";
  Buffer.add_string buf (J.str s.Sink.sp_cat);
  Buffer.add_string buf ",\"ph\":";
  Buffer.add_string buf (if s.Sink.sp_instant then "\"i\"" else "\"X\"");
  Buffer.add_string buf ",\"ts\":";
  Buffer.add_string buf (J.micros (s.Sink.sp_start -. origin));
  if s.Sink.sp_instant then Buffer.add_string buf ",\"s\":\"t\""
  else begin
    Buffer.add_string buf ",\"dur\":";
    Buffer.add_string buf (J.micros s.Sink.sp_dur)
  end;
  Buffer.add_string buf ",\"pid\":1,\"tid\":";
  Buffer.add_string buf (string_of_int s.Sink.sp_domain);
  Buffer.add_string buf ",\"args\":";
  Buffer.add_string buf (args_json s.Sink.sp_args);
  Buffer.add_char buf '}';
  Buffer.contents buf

(* The origin shifts all timestamps so traces start near ts=0 — keeps
   the numbers small and, with a deterministic test clock, stable. *)
let to_json ?origin spans =
  let origin =
    match origin with
    | Some o -> o
    | None ->
        List.fold_left
          (fun acc (s : Sink.span) -> Float.min acc s.Sink.sp_start)
          infinity spans
        |> fun m -> if Float.is_finite m then m else 0.0
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  ";
      Buffer.add_string buf (event_json ~origin s))
    spans;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write ?origin ~path spans =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (to_json ?origin spans))
