(** Flat metrics dump: JSON (machines) and markdown (humans).

    Both renderings iterate the snapshot's name-sorted lists, so the
    output is byte-stable for a given snapshot regardless of how many
    domains recorded into it. *)

module J = Obs_json

let hist_json (h : Metrics.hist_snapshot) =
  Printf.sprintf "{\"bounds\":[%s],\"counts\":[%s],\"sum\":%s,\"count\":%d}"
    (String.concat "," (Array.to_list (Array.map J.num h.Metrics.bounds)))
    (String.concat ","
       (Array.to_list (Array.map string_of_int h.Metrics.counts)))
    (J.num h.Metrics.sum) h.Metrics.count

let section buf name render items =
  Buffer.add_string buf ("\"" ^ name ^ "\":{");
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    ";
      Buffer.add_string buf (J.str k);
      Buffer.add_char buf ':';
      Buffer.add_string buf (render v))
    items;
  Buffer.add_string buf "\n  }"

let to_json (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  ";
  section buf "counters" string_of_int s.Metrics.counters;
  Buffer.add_string buf ",\n  ";
  section buf "gauges"
    (fun (g : Metrics.gauge_snapshot) -> J.num g.Metrics.g_value)
    s.Metrics.gauges;
  Buffer.add_string buf ",\n  ";
  section buf "histograms" hist_json s.Metrics.hists;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let to_markdown (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# Metrics\n\n## Counters\n\n";
  Buffer.add_string buf "| name | count |\n| :--- | ---: |\n";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "| %s | %d |\n" k v))
    s.Metrics.counters;
  Buffer.add_string buf "\n## Gauges\n\n| name | value |\n| :--- | ---: |\n";
  List.iter
    (fun (k, (g : Metrics.gauge_snapshot)) ->
      Buffer.add_string buf (Printf.sprintf "| %s | %g |\n" k g.Metrics.g_value))
    s.Metrics.gauges;
  Buffer.add_string buf
    "\n## Histograms\n\n| name | count | sum | mean |\n| :--- | ---: | ---: | ---: |\n";
  List.iter
    (fun (k, (h : Metrics.hist_snapshot)) ->
      let mean =
        if h.Metrics.count = 0 then 0.0
        else h.Metrics.sum /. float_of_int h.Metrics.count
      in
      Buffer.add_string buf
        (Printf.sprintf "| %s | %d | %g | %g |\n" k h.Metrics.count
           h.Metrics.sum mean))
    s.Metrics.hists;
  Buffer.contents buf

let write ~path s =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (to_json s))
