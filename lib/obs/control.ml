(** The global on/off switch.

    Observability is disabled by default and every recording entry
    point ([Metrics.incr], [Span.with_], ...) checks [enabled] first,
    so the disabled-path cost is a single atomic load and branch — the
    "zero overhead when off" half of the contract.  The other half
    (byte-identical experiment output) holds because sinks are
    write-only from the simulation's point of view: nothing ever reads
    observability state back into a decision. *)

let enabled_flag = Atomic.make false
let configured_clock = Atomic.make Clock.monotonic

let enabled () = Atomic.get enabled_flag

let enable ?clock () =
  (match clock with
  | Some c -> Atomic.set configured_clock c
  | None -> ());
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let clock () = Atomic.get configured_clock

let with_enabled ?clock f =
  let was = enabled () in
  let prev_clock = Atomic.get configured_clock in
  enable ?clock ();
  Fun.protect
    ~finally:(fun () ->
      Atomic.set configured_clock prev_clock;
      if not was then disable ())
    f

let trace_path_from_env () =
  match Sys.getenv_opt "CCACHE_TRACE" with
  | None -> None
  | Some "" -> None
  | Some path -> Some path
