(** Lightweight span tracing over {!Sink} shards.

    A span is opened, runs a thunk, and is recorded on close (also on
    exception — [Fun.protect] — so a supervised task that raises still
    leaves its attempt span, which is how retry paths stay visible).
    Nesting is tracked with a per-domain stack, so parent/child edges
    are well-formed by construction: a span's parent is whatever span
    was open on the same domain when it started.

    Timestamps come from the configured {!Control.clock} unless an
    explicit [~now] capability is passed; wall-clock never enters
    simulation state either way (see {!Clock}). *)

let with_ ?now ?(cat = "app") ?(args = []) name f =
  if not (Control.enabled ()) then f ()
  else begin
    let clock = match now with Some c -> c | None -> Control.clock () in
    let sh = Sink.shard () in
    let seq = Sink.next_seq sh in
    let parent =
      match sh.Sink.sh_stack with
      | [] -> None
      | fr :: _ -> Some fr.Sink.fr_seq
    in
    let frame =
      {
        Sink.fr_seq = seq;
        fr_name = name;
        fr_cat = cat;
        fr_start = Clock.now clock;
        fr_args = args;
      }
    in
    sh.Sink.sh_stack <- frame :: sh.Sink.sh_stack;
    Fun.protect
      ~finally:(fun () ->
        (* The domain's stack is LIFO by construction; the top frame is
           ours because [f] balanced its own pushes (Fun.protect). *)
        (match sh.Sink.sh_stack with
        | fr :: rest when fr.Sink.fr_seq = seq -> sh.Sink.sh_stack <- rest
        | _ -> ());
        let stop = Clock.now clock in
        sh.Sink.sh_spans <-
          {
            Sink.sp_name = name;
            sp_cat = cat;
            sp_domain = sh.Sink.sh_domain;
            sp_seq = seq;
            sp_parent = parent;
            sp_start = frame.Sink.fr_start;
            sp_dur = Float.max 0.0 (stop -. frame.Sink.fr_start);
            sp_instant = false;
            sp_args = args;
          }
          :: sh.Sink.sh_spans)
      f
  end

let instant ?now ?(cat = "app") ?(args = []) name =
  if Control.enabled () then begin
    let clock = match now with Some c -> c | None -> Control.clock () in
    let sh = Sink.shard () in
    let seq = Sink.next_seq sh in
    let parent =
      match sh.Sink.sh_stack with
      | [] -> None
      | fr :: _ -> Some fr.Sink.fr_seq
    in
    sh.Sink.sh_spans <-
      {
        Sink.sp_name = name;
        sp_cat = cat;
        sp_domain = sh.Sink.sh_domain;
        sp_seq = seq;
        sp_parent = parent;
        sp_start = Clock.now clock;
        sp_dur = 0.0;
        sp_instant = true;
        sp_args = args;
      }
      :: sh.Sink.sh_spans
  end

(* Total, deterministic order on merged spans: domain id, then the
   per-domain sequence stamp. *)
let collect () =
  Sink.shards ()
  |> List.concat_map (fun sh -> List.rev sh.Sink.sh_spans)
  |> List.sort (fun (a : Sink.span) (b : Sink.span) ->
         compare (a.Sink.sp_domain, a.Sink.sp_seq) (b.Sink.sp_domain, b.Sink.sp_seq))
