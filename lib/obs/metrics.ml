(** Counters, gauges and fixed-bucket histograms over {!Sink} shards.

    Naming convention: slash-separated lowercase paths,
    [subsystem/detail] (e.g. ["engine/lru/hits"],
    ["alg-discrete/charge"]).  Labels are folded into the name — the
    cardinality in this codebase (policies x a handful of counters) is
    tiny, and flat names keep exports trivially diffable.

    Merge semantics (the laws [test/test_obs.ml] property-tests):
    counters add, histogram buckets add pointwise (requiring equal
    bounds), and a gauge resolves to the write with the largest
    [(domain, seq)] stamp.  All three are associative and commutative,
    so a merged snapshot does not depend on [--jobs] width or worker
    interleaving — only on what was recorded. *)

let default_bounds =
  [| 0.0; 0.5; 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0;
     10000.0 |]

let incr ?(by = 1) name =
  if Control.enabled () then begin
    let sh = Sink.shard () in
    ignore (Sink.next_seq sh);
    match Hashtbl.find_opt sh.Sink.sh_counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace sh.Sink.sh_counters name (ref by)
  end

let set_gauge name v =
  if Control.enabled () then begin
    let sh = Sink.shard () in
    Hashtbl.replace sh.Sink.sh_gauges name (Sink.next_seq sh, v)
  end

(* Smallest bucket whose upper bound admits [v]; the extra slot is the
   overflow bucket. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe ?(bounds = default_bounds) name v =
  if Control.enabled () then begin
    let sh = Sink.shard () in
    ignore (Sink.next_seq sh);
    let h =
      match Hashtbl.find_opt sh.Sink.sh_hists name with
      | Some h -> h
      | None ->
          let h =
            {
              Sink.bounds;
              counts = Array.make (Array.length bounds + 1) 0;
              sum = 0.0;
              n = 0;
            }
          in
          Hashtbl.replace sh.Sink.sh_hists name h;
          h
    in
    let i = bucket_index h.Sink.bounds v in
    h.Sink.counts.(i) <- h.Sink.counts.(i) + 1;
    h.Sink.sum <- h.Sink.sum +. v;
    h.Sink.n <- h.Sink.n + 1
  end

(* ------------------------------------------------------------------ *)
(* Snapshots and merging                                               *)
(* ------------------------------------------------------------------ *)

type hist_snapshot = {
  bounds : float array;
  counts : int array;
  sum : float;
  count : int;
}

type gauge_snapshot = { g_domain : int; g_seq : int; g_value : float }

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * gauge_snapshot) list;  (** sorted by name *)
  hists : (string * hist_snapshot) list;  (** sorted by name *)
}

let empty = { counters = []; gauges = []; hists = [] }

let by_name (a, _) (b, _) = String.compare a b

let of_shard (sh : Sink.shard) =
  let counters =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) sh.Sink.sh_counters []
    |> List.sort by_name
  in
  let gauges =
    Hashtbl.fold
      (fun name (seq, v) acc ->
        (name, { g_domain = sh.Sink.sh_domain; g_seq = seq; g_value = v }) :: acc)
      sh.Sink.sh_gauges []
    |> List.sort by_name
  in
  let hists =
    Hashtbl.fold
      (fun name (h : Sink.hist) acc ->
        ( name,
          {
            bounds = Array.copy h.Sink.bounds;
            counts = Array.copy h.Sink.counts;
            sum = h.Sink.sum;
            count = h.Sink.n;
          } )
        :: acc)
      sh.Sink.sh_hists []
    |> List.sort by_name
  in
  { counters; gauges; hists }

(* Merge two name-sorted assoc lists with a per-name combiner. *)
let rec merge_assoc combine xs ys =
  match (xs, ys) with
  | [], rest | rest, [] -> rest
  | (xn, xv) :: xtl, (yn, yv) :: ytl ->
      let c = String.compare xn yn in
      if c < 0 then (xn, xv) :: merge_assoc combine xtl ys
      else if c > 0 then (yn, yv) :: merge_assoc combine xs ytl
      else (xn, combine xn xv yv) :: merge_assoc combine xtl ytl

let merge_hist name (a : hist_snapshot) (b : hist_snapshot) =
  if a.bounds <> b.bounds then
    invalid_arg
      (Printf.sprintf
         "Metrics.merge: histogram %S recorded with different bucket bounds"
         name);
  {
    bounds = a.bounds;
    counts = Array.map2 ( + ) a.counts b.counts;
    sum = a.sum +. b.sum;
    count = a.count + b.count;
  }

let merge_gauge _ (a : gauge_snapshot) (b : gauge_snapshot) =
  if (a.g_domain, a.g_seq) >= (b.g_domain, b.g_seq) then a else b

let merge a b =
  {
    counters = merge_assoc (fun _ x y -> x + y) a.counters b.counters;
    gauges = merge_assoc merge_gauge a.gauges b.gauges;
    hists = merge_assoc merge_hist a.hists b.hists;
  }

let snapshot () = List.fold_left (fun acc sh -> merge acc (of_shard sh)) empty (Sink.shards ())

let reset = Sink.reset
