(** Chrome trace-event JSON exporter (chrome://tracing / Perfetto).

    Schema per event — fixed field order, golden-tested:
    [{"name":..,"cat":..,"ph":"X"|"i","ts":micros,("dur":micros |
    "s":"t"),"pid":1,"tid":domain,"args":{..}}].  Timestamps are
    microseconds relative to [?origin] (default: the earliest span
    start). *)

val to_json : ?origin:float -> Sink.span list -> string
(** Render spans (pass them in {!Span.collect} order for a
    deterministic document). *)

val write : ?origin:float -> path:string -> Sink.span list -> unit
(** [to_json] straight to a file. *)
