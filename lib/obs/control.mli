(** Global observability switch and configured clock.

    Disabled by default; when disabled, every recording call in
    {!Metrics} and {!Span} is a single atomic load and branch, and no
    observability state is allocated or written.  Enabling mid-run is
    supported but callers normally flip the switch once at startup
    (both binaries do so for [--trace-out]/[--metrics-out]/
    [$CCACHE_TRACE]). *)

val enabled : unit -> bool

val enable : ?clock:Clock.t -> unit -> unit
(** Turn recording on.  [?clock] replaces the span clock (default
    {!Clock.monotonic}); omitting it keeps the current one. *)

val disable : unit -> unit

val clock : unit -> Clock.t
(** The clock spans stamp with; see {!Clock}. *)

val with_enabled : ?clock:Clock.t -> (unit -> 'a) -> 'a
(** Run a thunk with recording on, restoring the previous enabled
    state and clock afterwards (tests). *)

val trace_path_from_env : unit -> string option
(** [Some path] iff the [CCACHE_TRACE] environment variable is set and
    non-empty — the ambient spelling of [--trace-out path]. *)
