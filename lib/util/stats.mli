(** Descriptive statistics over float samples.

    Total on non-empty inputs; functions without a neutral value raise
    [Invalid_argument] on empty arrays. *)

val sum : float array -> float
val mean : float array -> float

val variance : float array -> float
(** Unbiased (n-1) sample variance; 0 for singletons. *)

val stddev : float array -> float
val min : float array -> float
val max : float array -> float

val quantile : float array -> float -> float
(** Linear-interpolation quantile; [q] in [\[0, 1\]]. *)

val median : float array -> float

val geometric_mean : float array -> float
(** @raise Invalid_argument on non-positive samples. *)

val linear_fit : xs:float array -> ys:float array -> float * float
(** Ordinary least squares [(slope, intercept)].

    Degeneracy is detected tolerantly, not with exact float equality:
    [xs] count as constant when the accumulated sum of squared
    deviations is within {!Float_cmp.approx_zero}'s absolute tolerance
    ({!Float_cmp.default_tol} = 1e-9) of zero.
    @raise Invalid_argument on length mismatch, fewer than two points,
    or (near-)constant [xs]. *)

val loglog_slope : xs:float array -> ys:float array -> float
(** Exponent of the best power-law fit [y = c * x^e]; inputs must be
    strictly positive.  Used to measure the Theorem 1.4 growth rate. *)

val correlation : xs:float array -> ys:float array -> float
(** Pearson correlation; 0 when either side is (near-)constant, i.e.
    its sum of squared deviations is {!Float_cmp.approx_zero} at the
    default 1e-9 absolute tolerance. *)

val histogram : bins:int -> lo:float -> hi:float -> float array -> int array
(** Equal-width counts over [\[lo, hi)]; out-of-range values clamp to
    the end bins. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  p95 : float;
  max : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit
