(** Fixed-size worker pool over OCaml 5 domains.

    A dependency-free thread pool built on [Domain], [Mutex] and
    [Condition].  Workers pull tasks from a shared FIFO queue; results
    come back through futures, so [parallel_map] always returns results
    in input order regardless of which domain finished first.

    Determinism contract: the pool never reorders *results* — only the
    wall-clock interleaving of side effects differs between pool sizes.
    Callers that need bit-for-bit reproducible randomness must derive
    one {!Prng} stream per task *before* submission (see
    [Ccache_sim.Sweep.run_seeded]); with that discipline a run with 1
    worker and a run with 8 workers produce identical output.

    Tasks must not themselves [submit]/[await] on the same pool: a task
    blocking on a future that only its own worker could run can
    deadlock the pool.  Fan-out happens at one level only. *)

exception Pool_shutdown
(** Raised by {!await} on a future whose task was discarded by
    {!shutdown_now} before a worker picked it up.  Guarantees an
    awaiter of a cancelled task raises rather than hangs. *)

type t
(** A pool of worker domains. *)

type 'a future
(** The pending result of a submitted task. *)

val default_size : unit -> int
(** Pool size used when [create] is given no [?size]: the value of the
    [CCACHE_JOBS] environment variable if it parses as a positive
    integer, otherwise [Domain.recommended_domain_count ()].  Always in
    [\[1, 64\]]. *)

val create : ?size:int -> unit -> t
(** [create ~size ()] makes a pool of [size] worker domains (clamped to
    [\[1, 64\]]).  Without [?size], uses {!default_size}.  The domains
    themselves are spawned on the first {!submit}: an idle domain still
    joins every stop-the-world minor-GC barrier, so a pool whose maps
    all take the serial-fallback path (see {!effective_parallelism})
    never pays for domains it does not use. *)

val size : t -> int
(** Number of worker domains. *)

val effective_parallelism : t -> int
(** [min (size t) hw] where [hw] is [Domain.recommended_domain_count]
    observed when the pool was created.  When this is [<= 1] the pool
    cannot give any task a core of its own, and {!parallel_map} runs on
    the submitting domain instead: on OCaml 5 every allocating domain
    joins each minor-GC stop-the-world barrier, so two domains
    time-slicing one core are measurably {e slower} than one. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task.  @raise Invalid_argument if the pool was shut
    down. *)

val await : 'a future -> 'a
(** Block until the task completes.  If the task raised, the exception
    is re-raised here with its original backtrace.  [await] may be
    called any number of times; subsequent calls return (or re-raise)
    immediately. *)

val parallel_map : ?chunk:int -> t -> f:('a -> 'b) -> 'a list -> 'b list
(** Map [f] over the list on the pool's workers.  Results are in input
    order.  All elements run to completion even when some raise; the
    first (in input order) exception is then re-raised.

    [?chunk] (default [1]) batches that many consecutive elements into
    one pool task, amortising queue and future traffic when individual
    elements are cheap.  The partition is deterministic — contiguous
    blocks fixed by [chunk] and the input length, independent of
    timing — so together with the in-order results the output is
    identical at every chunk size and pool width.

    When {!effective_parallelism} is [<= 1], runs serially on the
    calling domain (same results, same exception semantics) rather than
    shipping tasks to workers that would contend for the one core. *)

val parallel_iter : ?chunk:int -> t -> f:('a -> unit) -> 'a list -> unit
(** Apply [f] to every element, batching elements into chunks so short
    tasks amortise queue traffic.  [?chunk] forces a chunk length;
    the default aims for ~4 chunks per worker.  Exceptions propagate as
    in {!parallel_map}. *)

val shutdown : t -> unit
(** Graceful shutdown: workers finish every queued task, then exit and
    are joined, so no future submitted before the call is left pending
    — every [await] returns (or re-raises) normally.  Idempotent: a
    second call (of either flavour) is a no-op.  [submit] after
    [shutdown] raises [Invalid_argument]. *)

val shutdown_now : t -> unit
(** Abortive shutdown: tasks already running complete (their futures
    resolve normally), but queued tasks are discarded and their
    futures fail — [await] on them raises {!Pool_shutdown} rather than
    hanging.  Idempotent, and freely mixable with {!shutdown} (the
    first call wins). *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down
    afterwards, including on exception. *)

val map_list :
  ?pool:t -> ?chunk:int -> ?count_blocks:bool -> f:('a -> 'b) -> 'a list -> 'b list
(** [List.map] when [pool] is [None], {!parallel_map} otherwise.  The
    convenience entry point for code with an optional [?pool]
    parameter.  [?chunk] applies the same deterministic block partition
    on every path — serial runs walk the blocks in order — and the
    partition size is recorded in the [pool/map_blocks] obs counter
    identically at every execution width, so chunk-sensitive counters
    match across [--jobs] settings.  [?count_blocks] (default [true])
    suppresses that counter for callers whose item list depends on an
    execution strategy that must not show up in metrics (the fused
    sweep maps over trace groups, the unfused one over cells). *)
