(** Binary min-heap over integer keys with float priorities and
    O(log n) arbitrary update/removal via a key->slot index.

    Structure-of-arrays layout: heap slot [i] is the pair
    [(keys.(i), prios.(i))] with the priorities in a [floatarray], so
    sift operations move two scalars through flat arrays — no boxed
    entry records, no float boxing.  The key->slot index is an
    open-addressing table embedded in this module rather than delegated
    to {!Int_tbl}: a sift touches the index once per level, and without
    flambda a cross-module call per level costs more than the probe
    itself.  The algorithm (linear probing, power-of-two capacity,
    backward-shift deletion, max load 1/2) is Int_tbl's; keep the two
    in sync.

    No operation allocates once the arrays are at capacity (growth is
    amortised doubling).  The key [min_int] is reserved as the index's
    empty marker and rejected with [Invalid_argument].

    Used by the fast ALG-DISCRETE implementation (per-user budget heaps
    and the cross-user minimum structure) and by priority-based eviction
    policies (Landlord, Convex-Belady).

    Ties are broken by the smaller key, making every operation fully
    deterministic regardless of insertion order history. *)

type t = {
  mutable keys : int array; (* heap slots [0, size) are live *)
  mutable prios : floatarray;
  mutable size : int;
  (* key -> heap-slot index: open addressing, [empty] marks free *)
  mutable tkeys : int array;
  mutable tvals : int array;
  mutable tmask : int; (* table capacity - 1; capacity a power of two *)
  mutable tpos : int array;
      (* heap slot -> index of its key in [tkeys]: lets a sift move an
         entry and re-point its table binding without re-probing *)
}

let empty = min_int

let[@inline] check_key key =
  if key = empty then invalid_arg "Indexed_heap: key min_int is reserved"

(* Fibonacci multiplicative hash folded down; see Int_tbl. *)
let[@inline] home mask key =
  let h = key * 0x331B_E495_77F3_1A55 in
  (h lsr 20 lxor h) land mask

let rec pow2 n c = if c >= n then c else pow2 n (c * 2)

let create ?(capacity = 16) () =
  let cap = Stdlib.max capacity 1 in
  let tcap = pow2 (Stdlib.max 8 (2 * cap)) 8 in
  {
    keys = Array.make cap empty;
    prios = Float.Array.make cap nan;
    size = 0;
    tkeys = Array.make tcap empty;
    tvals = Array.make tcap 0;
    tmask = tcap - 1;
    tpos = Array.make cap 0;
  }

let length t = t.size
let is_empty t = t.size = 0

(* First table slot holding [key], or the first empty slot of its
   probe run. *)
let[@inline] probe t key =
  let mask = t.tmask in
  let tkeys = t.tkeys in
  let i = ref (home mask key) in
  while
    let k = Array.unsafe_get tkeys !i in
    k <> key && k <> empty
  do
    i := (!i + 1) land mask
  done;
  !i

let mem t key =
  check_key key;
  t.tkeys.(probe t key) = key
  [@@effects.no_alloc] [@@effects.deterministic]

(* Heap slot of [key], or -1. *)
let[@inline] slot_of t key =
  let i = probe t key in
  if Array.unsafe_get t.tkeys i = key then Array.unsafe_get t.tvals i else -1

(* Amortised-doubling growth: the one allocation site of the steady
   state, forgiven to callers under [@@effects.amortized_alloc] (the
   contract the Gc byte-budget test measures dynamically). *)
let[@effects.amortized_alloc] tbl_grow t =
  let old_keys = t.tkeys and old_vals = t.tvals in
  let cap = 2 * Array.length old_keys in
  t.tkeys <- Array.make cap empty;
  t.tvals <- Array.make cap 0;
  t.tmask <- cap - 1;
  for i = 0 to Array.length old_keys - 1 do
    let k = old_keys.(i) in
    if k <> empty then begin
      let j = probe t k in
      let v = old_vals.(i) in
      t.tkeys.(j) <- k;
      t.tvals.(j) <- v;
      t.tpos.(v) <- j
    end
  done

(* Backward-shift deletion starting from the known table index [i] of
   a live key; see Int_tbl for the interval argument.  Shifted entries
   re-point their [tpos] back-link. *)
let tbl_remove_at t i =
  let mask = t.tmask in
  let i = ref i in
  begin
    let continue = ref true in
    while !continue do
      Array.unsafe_set t.tkeys !i empty;
      let last = !i in
      let j = ref !i in
      let scanning = ref true in
      while !scanning do
        j := (!j + 1) land mask;
        let k = Array.unsafe_get t.tkeys !j in
        if k = empty then begin
          scanning := false;
          continue := false
        end
        else begin
          let h = home mask k in
          let fits =
            if last <= !j then h <= last || h > !j
            else h <= last && h > !j
          in
          if fits then begin
            let v = Array.unsafe_get t.tvals !j in
            Array.unsafe_set t.tkeys last k;
            Array.unsafe_set t.tvals last v;
            Array.unsafe_set t.tpos v last;
            i := !j;
            scanning := false
          end
        end
      done
    done
  end

(* Exact float equality is the tie-break trigger: two priorities are
   tied only when bit-equal, anything else orders strictly — tolerance
   here would make victim choice depend on comparison order. *)
let[@inline] less t i j =
  let pi = Float.Array.unsafe_get t.prios i
  and pj = Float.Array.unsafe_get t.prios j in
  pi < pj
  || (pi = pj [@lint.allow "float-eq"])
     && Array.unsafe_get t.keys i < Array.unsafe_get t.keys j

(* Write the working entry [key, prio] (whose key sits at table index
   [ti]) into heap slot [i] and re-point the binding — no probe. *)
let[@inline] place t i key prio ti =
  Array.unsafe_set t.keys i key;
  Float.Array.unsafe_set t.prios i prio;
  Array.unsafe_set t.tpos i ti;
  Array.unsafe_set t.tvals ti i

(* Move the entry in heap slot [src] to slot [dst] (overwriting dst). *)
let[@inline] move t ~src ~dst =
  Array.unsafe_set t.keys dst (Array.unsafe_get t.keys src);
  Float.Array.unsafe_set t.prios dst (Float.Array.unsafe_get t.prios src);
  let ti = Array.unsafe_get t.tpos src in
  Array.unsafe_set t.tpos dst ti;
  Array.unsafe_set t.tvals ti dst

(* Sift the entry of slot [i] up/down to its heap position.  Both walk
   with a single working copy of the entry and write it once at the
   final slot; [move]'s back-link keeps the index current, so a sift
   never touches the hash probe sequence at all. *)
let sift_up t i =
  let key = t.keys.(i) and prio = Float.Array.get t.prios i in
  let ti = t.tpos.(i) in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    (* !i > 0, so the operand is non-negative and [lsr] is plain
       division by two without the sign correction [/] would emit *)
    let parent = (!i - 1) lsr 1 in
    let pp = Float.Array.unsafe_get t.prios parent in
    if prio < pp || (prio = pp && key < Array.unsafe_get t.keys parent) then begin
      move t ~src:parent ~dst:!i;
      i := parent
    end
    else continue := false
  done;
  place t !i key prio ti

let sift_down t i =
  let key = t.keys.(i) and prio = Float.Array.get t.prios i in
  let ti = t.tpos.(i) in
  let size = t.size in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (!i lsl 1) + 1 in
    if l >= size then continue := false
    else begin
      let r = l + 1 in
      (* pick the smaller child reading each priority once; the floats
         stay unboxed in registers across the two comparisons *)
      let pl = Float.Array.unsafe_get t.prios l in
      let right =
        r < size
        &&
        let pr = Float.Array.unsafe_get t.prios r in
        pr < pl
        || (pr = pl [@lint.allow "float-eq"])
           && Array.unsafe_get t.keys r < Array.unsafe_get t.keys l
      in
      let smallest = if right then r else l in
      let sp = if right then Float.Array.unsafe_get t.prios r else pl in
      if sp < prio || (sp = prio && Array.unsafe_get t.keys smallest < key)
      then begin
        move t ~src:smallest ~dst:!i;
        i := smallest
      end
      else continue := false
    end
  done;
  place t !i key prio ti

let[@effects.amortized_alloc] heap_grow t =
  let cap = Array.length t.keys in
  let keys = Array.make (2 * cap) empty in
  Array.blit t.keys 0 keys 0 t.size;
  t.keys <- keys;
  let prios = Float.Array.make (2 * cap) nan in
  Float.Array.blit t.prios 0 prios 0 t.size;
  t.prios <- prios;
  let tpos = Array.make (2 * cap) 0 in
  Array.blit t.tpos 0 tpos 0 t.size;
  t.tpos <- tpos

(** Insert a fresh key. Raises if the key is already present. *)
let add t ~key ~prio =
  check_key key;
  let ti0 = probe t key in
  if t.tkeys.(ti0) = key then invalid_arg "Indexed_heap.add: duplicate key";
  if t.size = Array.length t.keys then heap_grow t;
  (* only a table grow moves slots around; otherwise the duplicate
     check above already found the insertion point *)
  let ti =
    if 2 * (t.size + 1) > t.tmask then begin
      tbl_grow t;
      probe t key
    end
    else ti0
  in
  t.tkeys.(ti) <- key;
  let i = t.size in
  t.size <- i + 1;
  Array.unsafe_set t.keys i key;
  Float.Array.unsafe_set t.prios i prio;
  t.tpos.(i) <- ti;
  t.tvals.(ti) <- i;
  sift_up t i
  [@@effects.no_alloc] [@@effects.deterministic]

let[@inline] find_slot t key =
  check_key key;
  match slot_of t key with -1 -> raise Not_found | i -> i

(** Current priority of [key]. Raises [Not_found] if absent. *)
let priority t key = Float.Array.get t.prios (find_slot t key)
  [@@effects.no_alloc] [@@effects.deterministic]

(** Minimum key / priority without removing it; allocation-free, for
    the eviction hot path. *)
let min_key_exn t =
  if t.size = 0 then invalid_arg "Indexed_heap.min_key_exn: empty heap";
  Array.unsafe_get t.keys 0
  [@@effects.no_alloc] [@@effects.deterministic]

let min_prio_exn t =
  if t.size = 0 then invalid_arg "Indexed_heap.min_prio_exn: empty heap";
  Float.Array.unsafe_get t.prios 0
  [@@effects.no_alloc] [@@effects.deterministic]

(** Minimum entry without removing it. *)
let peek t =
  if t.size = 0 then None else Some (t.keys.(0), Float.Array.get t.prios 0)

let peek_exn t =
  match peek t with
  | Some kp -> kp
  | None -> invalid_arg "Indexed_heap.peek_exn: empty heap"

let remove_slot t i =
  let last = t.size - 1 in
  tbl_remove_at t t.tpos.(i);
  t.size <- last;
  if i <> last then begin
    move t ~src:last ~dst:i;
    Array.unsafe_set t.keys last empty;
    let k = t.keys.(i) in
    sift_down t i;
    (* only if the moved-in entry stayed put can it still violate the
       invariant upward (removal from the middle of the heap) *)
    if t.keys.(i) = k then sift_up t i
  end
  else Array.unsafe_set t.keys last empty

(** Remove and return the minimum. *)
let pop t =
  if t.size = 0 then None
  else begin
    let k = t.keys.(0) and p = Float.Array.get t.prios 0 in
    remove_slot t 0;
    Some (k, p)
  end

let pop_exn t =
  match pop t with
  | Some kp -> kp
  | None -> invalid_arg "Indexed_heap.pop_exn: empty heap"

(** Remove an arbitrary key. Raises [Not_found] if absent. *)
let remove t key = remove_slot t (find_slot t key)
  [@@effects.no_alloc] [@@effects.deterministic]

(* Directional re-prioritisation: a raised priority can only need to
   move down, a lowered one only up, an unchanged one (the common case
   on cache hits: budgets only move when an eviction changes an offset)
   nowhere.  [Float.compare] gives the total order, so a NaN old value
   still sifts instead of sticking. *)
let[@inline] reprioritize t i prio =
  let c = Float.compare prio (Float.Array.get t.prios i) in
  if c > 0 then begin
    Float.Array.set t.prios i prio;
    sift_down t i
  end
  else if c < 0 then begin
    Float.Array.set t.prios i prio;
    sift_up t i
  end

(** Set the priority of an existing key (increase or decrease). *)
let update t ~key ~prio = reprioritize t (find_slot t key) prio
  [@@effects.no_alloc] [@@effects.deterministic]

(** Insert or update. *)
let set t ~key ~prio =
  check_key key;
  match slot_of t key with
  | -1 -> add t ~key ~prio
  | i -> reprioritize t i prio
  [@@effects.no_alloc] [@@effects.deterministic]

let iter f t =
  for i = 0 to t.size - 1 do
    f t.keys.(i) (Float.Array.get t.prios i)
  done

let to_list t =
  let acc = ref [] in
  iter (fun k p -> acc := (k, p) :: !acc) t;
  List.rev !acc

(** Heap-order and index consistency; used by tests. *)
let invariant_ok t =
  let tlen = ref 0 in
  let ok = ref true in
  for i = 0 to Array.length t.tkeys - 1 do
    let k = t.tkeys.(i) in
    if k <> empty then begin
      incr tlen;
      if probe t k <> i then ok := false
    end
  done;
  if !tlen <> t.size then ok := false;
  for i = 1 to t.size - 1 do
    if less t i ((i - 1) / 2) then ok := false
  done;
  for i = 0 to t.size - 1 do
    if slot_of t t.keys.(i) <> i then ok := false;
    if t.tkeys.(t.tpos.(i)) <> t.keys.(i) then ok := false
  done;
  !ok
