(** Binary min-heap over integer keys with float priorities and
    O(log n) arbitrary update/removal via a key->slot index.

    Used by the fast ALG-DISCRETE implementation (per-user budget heaps
    and the cross-user minimum structure) and by priority-based
    eviction policies (Landlord, Belady).  Ties break toward the
    smaller key, making every operation fully deterministic.

    Layout: structure-of-arrays (flat [int array] keys + [floatarray]
    priorities + an open-addressing {!Int_tbl} key->slot index), so the
    mutating operations allocate nothing once the arrays are at
    capacity.  The key [min_int] is reserved by the index and rejected
    with [Invalid_argument]. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val add : t -> key:int -> prio:float -> unit
(** @raise Invalid_argument on a duplicate key. *)

val priority : t -> int -> float
(** @raise Not_found if absent. *)

val peek : t -> (int * float) option
(** Minimum entry, not removed. *)

val min_key_exn : t -> int
(** Key of the minimum entry, not removed.  Unlike {!peek} this
    allocates nothing — the hot-path accessor for eviction loops.
    @raise Invalid_argument on an empty heap. *)

val min_prio_exn : t -> float
(** Priority of the minimum entry, not removed.
    @raise Invalid_argument on an empty heap. *)

val peek_exn : t -> int * float
(** @raise Invalid_argument on an empty heap. *)

val pop : t -> (int * float) option
val pop_exn : t -> int * float

val remove : t -> int -> unit
(** Remove an arbitrary key. @raise Not_found if absent. *)

val update : t -> key:int -> prio:float -> unit
(** Change an existing key's priority (up or down).
    @raise Not_found if absent. *)

val set : t -> key:int -> prio:float -> unit
(** Insert or update. *)

val iter : (int -> float -> unit) -> t -> unit
val to_list : t -> (int * float) list

val invariant_ok : t -> bool
(** Heap order and index consistency; used by tests. *)
