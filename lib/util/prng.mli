(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the library draws from this generator
    so that traces, workloads and experiments are bit-for-bit
    reproducible across runs and platforms.  The stdlib [Random] module
    is deliberately not used anywhere in the repository. *)

type t
(** Generator state (mutable). *)

val create : seed:int -> t
(** Fresh generator from an integer seed. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val split : t -> t
(** [split t] derives an independent child generator; the parent
    advances, so repeated splits yield distinct streams. *)

val hash_string : string -> int64
(** Deterministic, platform-independent 64-bit FNV-1a hash (unlike
    [Hashtbl.hash], stable across OCaml versions). *)

val derive : seed:int -> key:string -> t
(** [derive ~seed ~key] is a stream that depends only on [(seed, key)]
    — not on any split order — so a task's stream can be re-derived
    from its id alone.  This is what makes supervised retries and
    checkpoint resumes bit-reproducible: every attempt of task [key]
    starts from the same state. *)

val next_int64 : t -> int64
(** Raw 64-bit output (advances the state). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val float_range : t -> float -> float
(** [float_range t hi] is uniform in [\[0, hi)]. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** Success with probability [p]. *)

val exponential : t -> rate:float -> float
(** Exponential variate. @raise Invalid_argument if [rate <= 0]. *)

val geometric : t -> p:float -> int
(** Number of failures before the first success.
    @raise Invalid_argument unless [0 < p <= 1]. *)

val categorical : t -> weights:float array -> int
(** Index sampled proportionally to unnormalised non-negative
    [weights]. @raise Invalid_argument if they sum to 0 or less. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val shuffle : t -> 'a array -> 'a array
(** Shuffled copy; the input is untouched. *)

val sample_distinct : t -> bound:int -> count:int -> int array
(** [count] distinct values from [\[0, bound)].
    @raise Invalid_argument if [count > bound]. *)
