(** Descriptive statistics over float samples.

    Used by trace analysis, experiment reporting and the benchmark
    harness.  All functions are total on non-empty inputs and raise
    [Invalid_argument] on empty inputs where no neutral value exists. *)

let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty sample")

let sum a = Array.fold_left ( +. ) 0.0 a

let mean a =
  check_nonempty "Stats.mean" a;
  sum a /. float_of_int (Array.length a)

(** Unbiased sample variance (n-1 denominator); 0 for singleton samples. *)
let variance a =
  check_nonempty "Stats.variance" a;
  let n = Array.length a in
  if n = 1 then 0.0
  else begin
    let m = mean a in
    let acc = ref 0.0 in
    Array.iter (fun x -> let d = x -. m in acc := !acc +. (d *. d)) a;
    !acc /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let min a =
  check_nonempty "Stats.min" a;
  Array.fold_left Float.min a.(0) a

let max a =
  check_nonempty "Stats.max" a;
  Array.fold_left Float.max a.(0) a

(** Quantile with linear interpolation; [q] in [\[0,1\]]. *)
let quantile a q =
  check_nonempty "Stats.quantile" a;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median a = quantile a 0.5

(** Geometric mean; requires strictly positive samples. *)
let geometric_mean a =
  check_nonempty "Stats.geometric_mean" a;
  let acc = ref 0.0 in
  Array.iter
    (fun x ->
      if x <= 0.0 then invalid_arg "Stats.geometric_mean: nonpositive sample";
      acc := !acc +. log x)
    a;
  exp (!acc /. float_of_int (Array.length a))

(** Ordinary least squares fit [y = slope*x + intercept].
    Returns [(slope, intercept)]. *)
let linear_fit ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need >= 2 points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx in
    sxy := !sxy +. (dx *. (ys.(i) -. my));
    sxx := !sxx +. (dx *. dx)
  done;
  (* Tolerance check, not [= 0.0]: accumulated squared deviations carry
     rounding error, so near-constant xs are just as degenerate. *)
  if Float_cmp.approx_zero !sxx then
    invalid_arg "Stats.linear_fit: degenerate xs";
  let slope = !sxy /. !sxx in
  (slope, my -. (slope *. mx))

(** Slope of the log-log regression, i.e. the exponent [e] of the best
    power-law fit [y = c * x^e].  Inputs must be strictly positive. *)
let loglog_slope ~xs ~ys =
  let logs a =
    Array.map
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats.loglog_slope: nonpositive input";
        log x)
      a
  in
  fst (linear_fit ~xs:(logs xs) ~ys:(logs ys))

(** Pearson correlation coefficient. *)
let correlation ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.correlation: length mismatch";
  if n < 2 then invalid_arg "Stats.correlation: need >= 2 points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if Float_cmp.approx_zero !sxx || Float_cmp.approx_zero !syy then 0.0
  else !sxy /. sqrt (!sxx *. !syy)

(** Histogram with [bins] equal-width buckets over [\[lo, hi)].
    Returns counts; values outside the range are clamped to end bins. *)
let histogram ~bins ~lo ~hi a =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if hi <= lo then invalid_arg "Stats.histogram: hi <= lo";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b < 0 then 0 else if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1)
    a;
  counts

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  p95 : float;
  max : float;
}

let summarize a =
  check_nonempty "Stats.summarize" a;
  {
    n = Array.length a;
    mean = mean a;
    stddev = stddev a;
    min = min a;
    p25 = quantile a 0.25;
    median = median a;
    p75 = quantile a 0.75;
    p95 = quantile a 0.95;
    max = max a;
  }

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g"
    s.n s.mean s.stddev s.min s.median s.p95 s.max
