(** Fixed-size worker pool over OCaml 5 domains (see the .mli for the
    determinism contract).

    One mutex + condition guards the task queue; each future carries
    its own mutex + condition so awaiters never contend with the queue.
    Workers drain the queue even after [shutdown] is requested, which
    is what makes shutdown graceful rather than abortive; [shutdown_now]
    instead cancels queued entries (each queue item carries a [cancel]
    callback that fails its future with [Pool_shutdown]) so awaiters
    raise rather than hang. *)

exception Pool_shutdown

type task = { run : unit -> unit; cancel : unit -> unit }

type t = {
  lock : Mutex.t;  (** guards [queue], [stop] *)
  nonempty : Condition.t;
  queue : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable spawned : bool;  (** workers are created on first [submit] *)
  size : int;
  hw : int;  (** hardware parallelism observed at [create] *)
  busy : int Atomic.t;  (** workers currently inside [task.run] (obs only) *)
}

(* Worker-occupancy buckets: pool sizes are clamped to [max_size]. *)
let occupancy_bounds = [| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 |]

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  flock : Mutex.t;
  fcond : Condition.t;
  mutable state : 'a state;
}

(* The OCaml runtime degrades past ~128 domains; 64 workers (plus the
   submitting domain) is already beyond any machine we target. *)
let max_size = 64

let clamp_size n = Stdlib.min max_size (Stdlib.max 1 n)

let default_size () =
  let from_env =
    match Sys.getenv_opt "CCACHE_JOBS" with
    | None -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> Some n
        | _ -> None)
  in
  match from_env with
  | Some n -> clamp_size n
  | None -> clamp_size (Domain.recommended_domain_count ())

let size t = t.size

(* Workers the machine can actually run at once.  A pool wider than the
   hardware still *works*, but on OCaml 5 every allocating domain joins
   each minor-GC stop-the-world barrier: two domains time-slicing one
   core spend more time fencing each other than computing (measured 3x
   slower than serial on a 1-core host).  [parallel_map] therefore runs
   on the submitting domain whenever the pool cannot give a task a core
   of its own. *)
let effective_parallelism t = Stdlib.min t.size t.hw

let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.nonempty t.lock
  done;
  if Queue.is_empty t.queue then (* stop requested and queue drained *)
    Mutex.unlock t.lock
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.lock;
    (* Guarded so the disabled path costs one atomic load; [obs] is
       latched across [run] so the busy counter stays balanced even if
       recording is toggled mid-task. *)
    let obs = Ccache_obs.Control.enabled () in
    if obs then begin
      let busy = 1 + Atomic.fetch_and_add t.busy 1 in
      Ccache_obs.Metrics.observe ~bounds:occupancy_bounds "pool/occupancy"
        (float_of_int busy);
      Ccache_obs.Metrics.incr "pool/tasks_run"
    end;
    task.run ();
    if obs then Atomic.decr t.busy;
    worker_loop t
  end

let create ?size () =
  let size =
    match size with Some n -> clamp_size n | None -> default_size ()
  in
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
      spawned = false;
      size;
      hw = Domain.recommended_domain_count ();
      busy = Atomic.make 0;
    }
  in
  t

(* Deferred to first [submit] (with [t.lock] held): an idle domain is
   not free — it joins every stop-the-world minor-GC barrier, and a
   pool whose maps all take the serial-fallback path was measured to
   slow the submitting domain ~5x just by existing.  A pool that never
   receives a task never spawns a domain. *)
let spawn_workers t =
  if not t.spawned then begin
    t.spawned <- true;
    t.workers <-
      List.init t.size (fun _ -> Domain.spawn (fun () -> worker_loop t))
  end

let resolve fut result =
  Mutex.lock fut.flock;
  fut.state <- result;
  Condition.broadcast fut.fcond;
  Mutex.unlock fut.flock

let submit t f =
  let fut =
    { flock = Mutex.create (); fcond = Condition.create (); state = Pending }
  in
  let run () =
    let result =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    resolve fut result
  in
  let cancel () = resolve fut (Failed (Pool_shutdown, Printexc.get_callstack 0)) in
  Mutex.lock t.lock;
  if t.stop then begin
    Mutex.unlock t.lock;
    invalid_arg "Domain_pool.submit: pool is shut down"
  end;
  spawn_workers t;
  Queue.push { run; cancel } t.queue;
  if Ccache_obs.Control.enabled () then begin
    Ccache_obs.Metrics.incr "pool/submitted";
    Ccache_obs.Metrics.set_gauge "pool/queue_depth"
      (float_of_int (Queue.length t.queue))
  end;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock;
  fut

let await fut =
  Mutex.lock fut.flock;
  while (match fut.state with Pending -> true | _ -> false) do
    Condition.wait fut.fcond fut.flock
  done;
  let state = fut.state in
  Mutex.unlock fut.flock;
  match state with
  | Pending -> assert false
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt

(* Await as a result, so a map can drain every future (letting all
   tasks finish) before deciding whether to re-raise. *)
let await_result fut =
  match await fut with v -> Ok v | exception e -> Error (e, Printexc.get_raw_backtrace ())

(* Run every element (a failure does not stop later elements, matching
   the pooled path, where every submitted task runs) and re-raise the
   first error in input order. *)
let first_error_or_values results =
  List.map
    (function Ok v -> v | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    results

let serial_map ~f xs =
  first_error_or_values
    (List.map
       (fun x ->
         match f x with
         | v -> Ok v
         | exception e -> Error (e, Printexc.get_raw_backtrace ()))
       xs)

(* Deterministic contiguous blocks of [n] (last may be shorter):
   partitioning depends only on [n] and the input, never on timing. *)
let chunks n xs =
  let rec go acc cur len = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if len + 1 >= n then go (List.rev (x :: cur) :: acc) [] 0 rest
        else go acc (x :: cur) (len + 1) rest
  in
  go [] [] 0 xs

let parallel_map ?(chunk = 1) t ~f xs =
  let chunk = Stdlib.max 1 chunk in
  if effective_parallelism t <= 1 then serial_map ~f xs
  else if chunk = 1 then
    let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
    first_error_or_values (List.map await_result futs)
  else
    (* one task per block; per-element results so a failing element
       does not mask the rest of its block *)
    let block b =
      List.map
        (fun x ->
          match f x with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ()))
        b
    in
    let futs = List.map (fun b -> submit t (fun () -> block b)) (chunks chunk xs) in
    let blocks =
      List.map
        (fun fut ->
          match await_result fut with
          | Ok rs -> rs
          | Error (e, bt) ->
              (* submit machinery itself failed (e.g. Pool_shutdown) *)
              [ Error (e, bt) ])
        futs
    in
    first_error_or_values (List.concat blocks)

let auto_chunk t xs =
  (* ~4 chunks per worker balances load without queue churn *)
  let target = t.size * 4 in
  Stdlib.max 1 ((List.length xs + target - 1) / target)

let parallel_iter ?chunk t ~f xs =
  let chunk =
    match chunk with Some c -> Stdlib.max 1 c | None -> auto_chunk t xs
  in
  parallel_map ~chunk t ~f:(fun x -> f x) xs |> ignore

(* Both shutdown flavours are idempotent and may be mixed: whoever
   observes [stop] already set returns without touching the (already
   empty or already cancelled) queue, and [workers = []] makes the
   join a no-op. *)
let shutdown_with ~drain t =
  Mutex.lock t.lock;
  if t.stop then Mutex.unlock t.lock
  else begin
    t.stop <- true;
    let cancelled =
      if drain then []
      else begin
        (* abortive: queued tasks never run; fail their futures so
           awaiters raise Pool_shutdown instead of hanging forever *)
        let cs = Queue.fold (fun acc task -> task.cancel :: acc) [] t.queue in
        Queue.clear t.queue;
        cs
      end
    in
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    List.iter (fun cancel -> cancel ()) cancelled;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let shutdown t = shutdown_with ~drain:true t
let shutdown_now t = shutdown_with ~drain:false t

let with_pool ?size f =
  let t = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map_list ?pool ?chunk ?(count_blocks = true) ~f xs =
  (* The block partition is a property of (chunk, input) alone, never of
     the execution width, and the partition counter below is emitted on
     every path — so chunk-sensitive obs counters agree between --jobs 1
     and --jobs N runs of the same sweep.  [count_blocks:false] is for
     callers whose *item list* depends on an execution strategy (fused
     sweeps map over trace groups, unfused over cells): their metrics
     must not leak the strategy. *)
  let chunk = match chunk with Some c -> Stdlib.max 1 c | None -> 1 in
  if count_blocks && Ccache_obs.Control.enabled () then begin
    let n = List.length xs in
    Ccache_obs.Metrics.incr ~by:((n + chunk - 1) / chunk) "pool/map_blocks"
  end;
  match pool with
  | None ->
      if chunk = 1 then List.map f xs
      else
        (* serial runs walk the same deterministic blocks the pooled
           path would submit; purely grain bookkeeping, same output *)
        List.concat_map (List.map f) (chunks chunk xs)
  | Some t -> parallel_map ~chunk t ~f xs
