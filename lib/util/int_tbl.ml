(** Open-addressing int->int hash table (see the .mli for the
    contract).

    Linear probing over a power-of-two slot array with *backward-shift
    deletion*: removing a key re-compacts the probe run that follows it
    instead of leaving a tombstone, so long-lived tables that churn
    (the engine's cache set evicts and inserts on every miss, millions
    of times per trace) never degrade — probe lengths depend only on
    the current load factor, not on the deletion history.

    The empty slot is marked with a reserved key ([min_int]), which is
    what makes the whole table two flat [int array]s with no boxing,
    no per-bucket lists and no allocation on [set]/[remove]/[find]
    after the initial (or amortised doubling) allocation. *)

type t = {
  mutable keys : int array; (* [empty_key] marks a free slot *)
  mutable vals : int array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable size : int;
}

let empty_key = min_int

(* Fibonacci multiplicative hashing (multiplier ~ 2^63 / phi, odd).
   The product's high bits carry the entropy, so fold them down before
   masking; [lsr] treats the overflowing product as unsigned, making
   negative keys harmless. *)
let slot_of_key mask key =
  let h = key * 0x331B_E495_77F3_1A55 in
  (h lsr 20 lxor h) land mask
  [@@inline]

let rec pow2 n c = if c >= n then c else pow2 n (c * 2)

let create ?(capacity = 16) () =
  let cap = pow2 (Stdlib.max 8 capacity) 8 in
  {
    keys = Array.make cap empty_key;
    vals = Array.make cap 0;
    mask = cap - 1;
    size = 0;
  }

let length t = t.size

let check_key key =
  if key = empty_key then invalid_arg "Int_tbl: key min_int is reserved"

(* First slot holding [key], or the first empty slot of its probe run. *)
let probe t key =
  let mask = t.mask in
  let keys = t.keys in
  let i = ref (slot_of_key mask key) in
  while
    let k = Array.unsafe_get keys !i in
    k <> key && k <> empty_key
  do
    i := (!i + 1) land mask
  done;
  !i
  [@@inline]

let mem t key =
  check_key key;
  t.keys.(probe t key) = key
  [@@effects.no_alloc] [@@effects.deterministic]

let find_default t key ~default =
  check_key key;
  let i = probe t key in
  if t.keys.(i) = key then t.vals.(i) else default
  [@@effects.no_alloc] [@@effects.deterministic]

let find_exn t key =
  check_key key;
  let i = probe t key in
  if t.keys.(i) = key then t.vals.(i) else raise Not_found
  [@@effects.no_alloc] [@@effects.deterministic]

(* Amortised-doubling growth: the one allocation site after [create],
   forgiven to callers under [@@effects.amortized_alloc]. *)
let[@effects.amortized_alloc] grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = 2 * Array.length old_keys in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  for i = 0 to Array.length old_keys - 1 do
    let k = old_keys.(i) in
    if k <> empty_key then begin
      let j = probe t k in
      t.keys.(j) <- k;
      t.vals.(j) <- old_vals.(i)
    end
  done

let set t key value =
  check_key key;
  let i = probe t key in
  if t.keys.(i) = key then t.vals.(i) <- value
  else begin
    t.keys.(i) <- key;
    t.vals.(i) <- value;
    t.size <- t.size + 1;
    (* max load factor 1/2: probe runs stay short in the worst case *)
    if 2 * t.size > t.mask then grow t
  end
  [@@effects.no_alloc] [@@effects.deterministic]

(* Backward-shift deletion: after clearing slot [i], walk the probe run
   that follows and move back every entry whose home slot is outside
   the (cyclic) gap — exactly the entries a future probe would now miss.
   Terminates at the first empty slot (every run is shorter than the
   table because load <= 1/2). *)
let remove t key =
  check_key key;
  let mask = t.mask in
  let i = ref (probe t key) in
  if t.keys.(!i) = key then begin
    t.size <- t.size - 1;
    let j = ref !i in
    let continue = ref true in
    while !continue do
      t.keys.(!i) <- empty_key;
      let last = !i in
      j := !i;
      let scanning = ref true in
      while !scanning do
        j := (!j + 1) land mask;
        let k = t.keys.(!j) in
        if k = empty_key then begin
          scanning := false;
          continue := false
        end
        else begin
          let home = slot_of_key mask k in
          (* can the entry at [j] legally move into the hole at [last]?
             yes iff [last] lies cyclically in [home, j) *)
          let fits =
            if last <= !j then home <= last || home > !j
            else home <= last && home > !j
          in
          if fits then begin
            t.keys.(last) <- k;
            t.vals.(last) <- t.vals.(!j);
            i := !j;
            scanning := false (* re-open the loop with the new hole *)
          end
        end
      done
    done;
    true
  end
  else false
  [@@effects.no_alloc] [@@effects.deterministic]

let iter f t =
  for i = 0 to Array.length t.keys - 1 do
    let k = t.keys.(i) in
    if k <> empty_key then f k t.vals.(i)
  done

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  t.size <- 0

(* Every live key probes back to itself and the size matches; used by
   the model tests. *)
let invariant_ok t =
  let count = ref 0 in
  let ok = ref true in
  for i = 0 to Array.length t.keys - 1 do
    let k = t.keys.(i) in
    if k <> empty_key then begin
      incr count;
      if probe t k <> i then ok := false
    end
  done;
  !ok && !count = t.size
