(** Open-addressing int->int hash table.

    A cache-friendly replacement for [(int, int) Hashtbl.t] on hot
    paths: two flat [int array]s (keys and values), linear probing at a
    maximum load factor of 1/2, and backward-shift deletion instead of
    tombstones, so probe lengths depend only on the current load — not
    on how many insert/remove cycles the table has survived.  No
    operation allocates once the slot arrays are at capacity; growth is
    amortised doubling.

    The key [min_int] is reserved as the empty-slot marker; every
    operation rejects it with [Invalid_argument].  All page/slot keys
    in this repository are non-negative, so the restriction is never
    observable in practice.

    Used by {!Indexed_heap} (key -> heap slot) and the engine's cache
    set (packed page -> presence). *)

type t

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] sizes the table for at least [capacity]
    entries without growing (rounded up to a power of two, minimum 8). *)

val length : t -> int

val mem : t -> int -> bool

val find_default : t -> int -> default:int -> int
(** Value bound to the key, or [default].  Never allocates. *)

val find_exn : t -> int -> int
(** @raise Not_found if the key is absent. *)

val set : t -> int -> int -> unit
(** Insert or overwrite. *)

val remove : t -> int -> bool
(** Remove the key if present; returns whether it was. *)

val iter : (int -> int -> unit) -> t -> unit
(** Iterate live bindings in unspecified (slot) order. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val clear : t -> unit
(** Empty the table, keeping its capacity. *)

val invariant_ok : t -> bool
(** Probe-consistency and size bookkeeping; used by tests. *)
