(** Atomic on-disk snapshots of completed task payloads (see the .mli
    for the format and the resume contract). *)

let magic = "ccache-checkpoint v1"

type t = {
  path : string;
  fingerprint : string;
  lock : Mutex.t;  (** guards [entries], [dirty] — workers record concurrently *)
  entries : (string, string) Hashtbl.t;
  mutable dirty : int;  (** records since the last flush *)
  flush_every : int;
}

let validate ~path ~fingerprint ~flush_every =
  if path = "" then invalid_arg "Checkpoint: empty path";
  if String.contains fingerprint '\n' then
    invalid_arg "Checkpoint: fingerprint must be a single line";
  if flush_every < 1 then invalid_arg "Checkpoint: flush_every must be >= 1"

let create ?(flush_every = 1) ~path ~fingerprint () =
  validate ~path ~fingerprint ~flush_every;
  {
    path;
    fingerprint;
    lock = Mutex.create ();
    entries = Hashtbl.create 64;
    dirty = 0;
    flush_every;
  }

let path t = t.path
let fingerprint t = t.fingerprint

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)
(* ------------------------------------------------------------------ *)

(* Entries are written sorted by id so a checkpoint's bytes depend only
   on its contents, never on completion order across domains. *)
let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf ("fingerprint " ^ t.fingerprint);
  Buffer.add_char buf '\n';
  Hashtbl.fold (fun id payload acc -> (id, payload) :: acc) t.entries []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (id, payload) ->
         Buffer.add_string buf
           (Printf.sprintf "entry %d %d\n" (String.length id)
              (String.length payload));
         Buffer.add_string buf id;
         Buffer.add_char buf '\n';
         Buffer.add_string buf payload;
         Buffer.add_char buf '\n');
  Buffer.contents buf

(* Write-to-temp + rename: a crash mid-write leaves the previous
   snapshot intact, so a checkpoint on disk is always parseable. *)
let flush_locked t =
  let tmp = t.path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc (render t)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp t.path;
  t.dirty <- 0

let flush t = Mutex.protect t.lock (fun () -> flush_locked t)

let record t ~id payload =
  if String.contains id '\n' then
    invalid_arg "Checkpoint.record: id must be a single line";
  Mutex.protect t.lock (fun () ->
      Hashtbl.replace t.entries id payload;
      t.dirty <- t.dirty + 1;
      if t.dirty >= t.flush_every then flush_locked t)

let find t id = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.entries id)
let mem t id = Option.is_some (find t id)

let ids t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun id _ acc -> id :: acc) t.entries [])
  |> List.sort String.compare

let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.entries)

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

exception Corrupt of string

let parse ~path contents =
  let pos = ref 0 in
  let len = String.length contents in
  let fail msg = raise (Corrupt (Printf.sprintf "%s: %s" path msg)) in
  let line () =
    if !pos >= len then fail "truncated (expected a line)";
    match String.index_from_opt contents !pos '\n' with
    | None -> fail "truncated (unterminated line)"
    | Some i ->
        let l = String.sub contents !pos (i - !pos) in
        pos := i + 1;
        l
  in
  let take n what =
    if !pos + n > len then fail (Printf.sprintf "truncated (%s)" what);
    let s = String.sub contents !pos n in
    pos := !pos + n;
    s
  in
  let expect_newline what =
    if take 1 what <> "\n" then fail (Printf.sprintf "malformed (%s)" what)
  in
  if line () <> magic then fail "not a checkpoint file (bad magic)";
  let fp_line = line () in
  let prefix = "fingerprint " in
  if
    String.length fp_line < String.length prefix
    || String.sub fp_line 0 (String.length prefix) <> prefix
  then fail "missing fingerprint line";
  let fingerprint =
    String.sub fp_line (String.length prefix)
      (String.length fp_line - String.length prefix)
  in
  let entries = Hashtbl.create 64 in
  while !pos < len do
    let header = line () in
    match String.split_on_char ' ' header with
    | [ "entry"; id_len; payload_len ] -> (
        match (int_of_string_opt id_len, int_of_string_opt payload_len) with
        | Some id_len, Some payload_len when id_len >= 0 && payload_len >= 0 ->
            let id = take id_len "entry id" in
            expect_newline "after entry id";
            let payload = take payload_len "entry payload" in
            expect_newline "after entry payload";
            Hashtbl.replace entries id payload
        | _ -> fail (Printf.sprintf "bad entry header %S" header))
    | _ -> fail (Printf.sprintf "bad entry header %S" header)
  done;
  (fingerprint, entries)

let load ?(flush_every = 1) ~path ~fingerprint () =
  validate ~path ~fingerprint ~flush_every;
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error (Printf.sprintf "cannot read checkpoint: %s" e)
  | contents -> (
      match parse ~path contents with
      | exception Corrupt msg -> Error msg
      | stored_fp, entries ->
          if stored_fp <> fingerprint then
            Error
              (Printf.sprintf
                 "%s: fingerprint mismatch — checkpoint was written by a \
                  different run configuration (stored %S, expected %S)"
                 path stored_fp fingerprint)
          else
            Ok
              {
                path;
                fingerprint;
                lock = Mutex.create ();
                entries;
                dirty = 0;
                flush_every;
              })

let load_or_create ?flush_every ~path ~fingerprint () =
  if Sys.file_exists path then load ?flush_every ~path ~fingerprint ()
  else Ok (create ?flush_every ~path ~fingerprint ())
