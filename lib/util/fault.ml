(** Deterministic fault injection at task boundaries (see the .mli for
    the determinism contract).

    Every decision is a pure function of [(seed, task id, attempt)]
    through a dedicated {!Prng} stream, so a chaos run is exactly
    reproducible and — because transient faults fire only on a task's
    first attempt — converges under retries to the fault-free output. *)

exception Injected_transient of { task : string; attempt : int }
exception Injected_crash of { task : string }

let () =
  Printexc.register_printer (function
    | Injected_transient { task; attempt } ->
        Some
          (Printf.sprintf "Fault.Injected_transient(task=%s, attempt=%d)" task
             attempt)
    | Injected_crash { task } ->
        Some (Printf.sprintf "Fault.Injected_crash(task=%s)" task)
    | _ -> None)

type t = {
  seed : int;
  rate : float;  (** transient-fault probability per task, in [0, 1] *)
  kill : string list;  (** task ids that crash permanently *)
  max_delay_s : float;  (** upper bound of an injected delay *)
}

let none = { seed = 0; rate = 0.0; kill = []; max_delay_s = 0.0 }

let create ?(kill = []) ?(max_delay_s = 0.002) ~seed ~rate () =
  if not (Float.is_finite rate) || rate < 0.0 || rate > 1.0 then
    invalid_arg (Printf.sprintf "Fault.create: rate = %g outside [0, 1]" rate);
  if not (Float.is_finite max_delay_s) || max_delay_s < 0.0 then
    invalid_arg
      (Printf.sprintf "Fault.create: max_delay_s = %g must be >= 0" max_delay_s);
  { seed; rate; kill; max_delay_s }

let is_none t = t.rate <= 0.0 && t.kill = []

let seed t = t.seed
let rate t = t.rate
let kill t ids = { t with kill = ids @ t.kill }
let killed t = t.kill

(* "seed:rate", e.g. "7:0.2".  The kill list is a separate knob
   (--kill / [kill]) because it names tasks, not a probability. *)
let of_spec spec =
  match String.index_opt spec ':' with
  | None -> Error (Printf.sprintf "bad chaos spec %S: expected <seed>:<rate>" spec)
  | Some i -> (
      let seed_s = String.sub spec 0 i in
      let rate_s = String.sub spec (i + 1) (String.length spec - i - 1) in
      match (int_of_string_opt seed_s, float_of_string_opt rate_s) with
      | Some seed, Some rate
        when Float.is_finite rate && rate >= 0.0 && rate <= 1.0 ->
          Ok (create ~seed ~rate ())
      | Some _, (Some _ | None) ->
          Error
            (Printf.sprintf "bad chaos spec %S: rate must be a float in [0, 1]"
               spec)
      | None, _ ->
          Error
            (Printf.sprintf "bad chaos spec %S: seed must be an integer" spec))

let to_spec t = Printf.sprintf "%d:%g" t.seed t.rate

let env_var = "CCACHE_CHAOS"

let from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok None
  | Some spec -> (
      match of_spec spec with
      | Ok t -> Ok (Some t)
      | Error e -> Error (Printf.sprintf "%s: %s" env_var e))

(* Draw order is part of the format: delay decision, delay magnitude,
   transient decision.  Changing it changes which faults a given seed
   produces, which silently invalidates recorded chaos runs. *)
let at_boundary t ~task ~attempt =
  if List.mem task t.kill then raise (Injected_crash { task });
  if t.rate > 0.0 then begin
    let g =
      Prng.derive ~seed:t.seed ~key:(task ^ "#" ^ string_of_int attempt)
    in
    (* Delays perturb scheduling (any attempt) without touching results. *)
    if Prng.bernoulli g ~p:(t.rate /. 2.0) && t.max_delay_s > 0.0 then
      Unix.sleepf (Prng.float_range g t.max_delay_s);
    (* Transient faults fire only on the first attempt, so any retry
       budget >= 1 provably recovers every injected transient — the
       invariant behind the chaos-equals-fault-free CI diff. *)
    if attempt = 0 && Prng.bernoulli g ~p:t.rate then
      raise (Injected_transient { task; attempt })
  end

let pp ppf t =
  if is_none t then Fmt.string ppf "no-faults"
  else
    Fmt.pf ppf "chaos(seed=%d, rate=%g%a)" t.seed t.rate
      (fun ppf -> function
        | [] -> ()
        | kill -> Fmt.pf ppf ", kill=%s" (String.concat "," kill))
      t.kill
