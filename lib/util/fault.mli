(** Deterministic fault injection at task boundaries.

    The supervised runner ({!Supervisor}) calls {!at_boundary} before
    every task attempt; this module decides — as a pure function of
    [(seed, task id, attempt)] through a dedicated {!Prng} stream —
    whether to inject a fault there.  Three fault classes:

    - {b transient exceptions} ({!Injected_transient}): raised with
      probability [rate], but only on a task's {e first} attempt, so a
      retry budget of one or more provably recovers every injected
      transient and a chaos run converges byte-for-byte to the
      fault-free output;
    - {b delays}: short sleeps (up to [max_delay_s], probability
      [rate/2], any attempt) that perturb cross-domain scheduling
      without touching results — they exercise the determinism contract
      under adversarial interleavings;
    - {b permanent crashes} ({!Injected_crash}): task ids listed in
      [kill] raise on {e every} attempt, exercising quarantine,
      partial-checkpoint and resume paths.

    Nothing here consults wall-clock time or [Stdlib.Random]; a chaos
    spec reproduces the same injection pattern on every run. *)

exception Injected_transient of { task : string; attempt : int }
(** A retryable injected failure (first attempt only). *)

exception Injected_crash of { task : string }
(** A permanent injected failure (every attempt; task id in [kill]). *)

type t

val none : t
(** Injects nothing; {!at_boundary} is a no-op. *)

val create : ?kill:string list -> ?max_delay_s:float -> seed:int -> rate:float -> unit -> t
(** @raise Invalid_argument if [rate] is outside [\[0, 1\]] or
    [max_delay_s < 0] (non-finite values included). *)

val is_none : t -> bool
(** [true] iff the plan can never inject anything. *)

val seed : t -> int
val rate : t -> float

val kill : t -> string list -> t
(** [kill t ids] adds permanently-crashing task ids. *)

val killed : t -> string list

val of_spec : string -> (t, string) result
(** Parse a ["<seed>:<rate>"] spec (the [--chaos] argument). *)

val to_spec : t -> string

val env_var : string
(** ["CCACHE_CHAOS"] — ambient spec used when no [--chaos] is given. *)

val from_env : unit -> (t option, string) result
(** [Ok None] when the variable is unset or empty; [Error _] names the
    variable on a malformed spec. *)

val at_boundary : t -> task:string -> attempt:int -> unit
(** Called by the supervisor before each attempt.  May sleep briefly,
    raise {!Injected_transient} (first attempt only) or
    {!Injected_crash} (killed ids); otherwise returns unit.  The
    decision depends only on [(seed, task, attempt)]. *)

val pp : Format.formatter -> t -> unit
