(** Supervised task execution over {!Domain_pool}: per-task deadlines
    with cooperative cancellation, bounded deterministic retry,
    crash quarantine, and checkpoint replay.

    {2 Failure model (DESIGN.md Section 8)}

    A task is a named thunk [{id; run}].  The supervisor classifies
    every raised exception:

    - {b retried}: {!Fault.Injected_transient} and {!Timed_out} — the
      only failures that can legitimately differ between attempts
      (injected transients vanish after attempt 0 by construction;
      deadline misses depend on wall-clock load).  Retries are bounded
      by [max_retries] with exponential backoff.
    - {b quarantined immediately}: everything else.  Tasks are
      deterministic functions of their inputs and their {!Prng} stream,
      so a real exception is permanent by construction; re-running it
      would only burn the retry budget.  The task's slot in the result
      list becomes [Quarantined], every other task still completes.

    {2 Why determinism survives retries}

    Each attempt re-derives the task's PRNG stream from its id
    ({!Prng.derive}) rather than mutating a shared stream, so attempt
    [n] sees exactly the state attempt [0] saw; backoff delays are a
    pure function of [(policy, task id, attempt)] (jitter-free by
    default, seeded jitter otherwise); and results are collected in
    input order by {!Domain_pool.map_list}.  Hence a run with injected
    transient faults and retries produces output byte-identical to a
    fault-free run at any pool width.

    {2 Checkpoint replay}

    With [?checkpoint] (and its [?codec]), completed tasks are recorded
    as encoded payloads and flushed atomically; on a later run, tasks
    whose id is already stored are {e replayed} — decoded and returned
    without executing — which is what makes [--resume] bit-for-bit. *)

exception Timed_out of { task : string; elapsed_s : float }
(** Raised by {!check} (and at the closing task boundary) once the
    attempt's deadline has passed.  Retryable. *)

type policy = {
  max_retries : int;  (** extra attempts after the first (>= 0) *)
  timeout_s : float option;  (** per-attempt cooperative deadline *)
  backoff_base_s : float;  (** delay before the first retry *)
  backoff_factor : float;  (** multiplier per subsequent retry (>= 1) *)
  backoff_max_s : float;  (** cap on any single delay *)
  jitter : float;
      (** 0 (default) = jitter-free; otherwise the fraction by which a
          delay may deviate, drawn from a stream keyed on
          [(seed, task, attempt)] — deterministic either way *)
  seed : int;  (** seeds the jitter stream only *)
}

val default_policy : policy
(** 3 retries, no deadline, 50 ms base doubling to a 1 s cap, no
    jitter. *)

val backoff_delay : policy -> task:string -> attempt:int -> float
(** Pure backoff schedule: the delay slept after 0-based [attempt]
    fails (i.e. before attempt [attempt + 1]).  Exposed so tests can
    assert the exact schedule. *)

(** {1 Task context} *)

type ctx
(** Handed to each attempt: identity plus the cooperative deadline. *)

val task_id : ctx -> string

val attempt : ctx -> int
(** 0-based attempt number (0 = first try). *)

val check : ctx -> unit
(** Cooperative cancellation point: long-running tasks call this
    periodically.  @raise Timed_out once the attempt deadline has
    passed.  The supervisor also checks at the closing task boundary,
    so even non-cooperative tasks cannot return past their deadline. *)

val unsupervised_ctx : task:string -> ctx
(** A deadline-free context, for running a supervised task function
    outside the supervisor (plain paths, tests). *)

(** {1 Outcomes and events} *)

type failure = { task : string; attempts : int; error : string }

type 'a outcome =
  | Completed of 'a
  | Quarantined of failure
      (** the task kept raising (or raised a permanent error); the rest
          of the batch completed normally *)

type event =
  | Retrying of { task : string; attempt : int; delay_s : float; error : string }
  | Gave_up of failure
  | Replayed of { task : string }  (** served from the checkpoint *)

type 'a task = { id : string; run : ctx -> 'a }

type 'a codec = { encode : 'a -> string; decode : string -> 'a option }
(** Payload codec for checkpointing.  [decode] returning [None] marks
    the stored entry undecodable; the task is then recomputed. *)

val string_codec : string codec
(** Identity codec for tasks that already produce bytes (e.g. rendered
    report sections). *)

val completed : 'a outcome list -> 'a list
val failures : 'a outcome list -> failure list

val run :
  ?pool:Domain_pool.t ->
  ?policy:policy ->
  ?fault:Fault.t ->
  ?checkpoint:Checkpoint.t ->
  ?codec:'a codec ->
  ?on_event:(event -> unit) ->
  'a task list ->
  'a outcome list
(** Run every task (on [?pool]'s workers when given, else inline),
    returning outcomes in input order.  [?fault] injects faults at
    attempt boundaries; [?checkpoint] + [?codec] enable replay and
    recording (the checkpoint is flushed before returning, so a batch
    with quarantined tasks still leaves its partial results on disk).
    [?on_event] observes retries, quarantines and replays; callbacks
    are serialised under a mutex but may fire from worker domains —
    don't print to stdout from them (stderr is fine).
    @raise Invalid_argument on duplicate task ids, a [?checkpoint]
    without [?codec], or a malformed policy. *)
