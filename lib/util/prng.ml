(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the library draws from this generator so
    that traces, workloads and experiments are bit-for-bit reproducible
    across runs and platforms.  The stdlib [Random] module is deliberately
    not used anywhere in the repository. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer: one 64-bit output per step. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [split t] derives an independent generator; the parent advances. *)
let split t =
  let seed = next_int64 t in
  { state = seed }

(* FNV-1a, 64-bit: a deterministic, platform-independent string hash
   (Hashtbl.hash is unspecified across versions, so it would break the
   bit-reproducibility contract). *)
let hash_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

(** [derive ~seed ~key] keys a fresh stream on [(seed, key)] alone — no
    split-order dependence — so supervised retries and checkpoint
    resumes can rebuild a task's exact stream from its id. *)
let derive ~seed ~key =
  let t =
    { state = Int64.logxor (Int64.mul (Int64.of_int seed) golden_gamma) (hash_string key) }
  in
  (* one step so that correlated (seed, key) pairs decorrelate through
     the SplitMix64 finalizer before the first caller-visible draw *)
  ignore (next_int64 t);
  t

(** Uniform integer in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* 62 high bits so the value fits OCaml's 63-bit int; modulo bias is
     negligible for bound << 2^62 and irrelevant for workload
     generation. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(** Uniform float in [\[0, 1)]. *)
let float t =
  let v = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

(** Uniform float in [\[0, hi)]. *)
let float_range t hi = float t *. hi

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Bernoulli trial with success probability [p]. *)
let bernoulli t ~p = float t < p

(** Exponential variate with the given [rate]. *)
let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Prng.exponential: rate must be positive";
  -.log1p (-.float t) /. rate

(** Geometric variate: number of failures before first success. *)
let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p in (0,1]";
  if p >= 1.0 then 0
  else int_of_float (floor (log1p (-.float t) /. log1p (-.p)))

(** Sample an index from unnormalised non-negative [weights]. *)
let categorical t ~weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Prng.categorical: weights must sum > 0";
  let target = float t *. total in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else go (i + 1) acc
  in
  go 0 0.0

(** In-place Fisher-Yates shuffle. *)
let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t a =
  let b = Array.copy a in
  shuffle_in_place t b;
  b

(** Sample [count] distinct elements from [\[0, bound)]. *)
let sample_distinct t ~bound ~count =
  if count > bound then invalid_arg "Prng.sample_distinct: count > bound";
  if 3 * count >= bound then begin
    let all = Array.init bound (fun i -> i) in
    shuffle_in_place t all;
    Array.sub all 0 count
  end
  else begin
    let seen = Hashtbl.create (2 * count) in
    let out = Array.make count 0 in
    let filled = ref 0 in
    while !filled < count do
      let v = int t bound in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
