(** Atomic on-disk snapshots of completed task payloads.

    A checkpoint maps task ids to opaque byte payloads (the supervised
    runner stores each task's {e encoded result}, e.g. a rendered
    experiment section).  Snapshots are written atomically — full
    contents to [path ^ ".tmp"], then [Sys.rename] — so the file on
    disk is always a complete, parseable snapshot even if the process
    dies mid-flush.  Entries are serialised sorted by id, making the
    bytes a function of the contents alone, not of the completion order
    across worker domains.

    The {e fingerprint} is a caller-supplied single-line digest of
    everything that affects task outputs (experiment ids, size, format,
    seed, ...).  {!load} refuses a file whose stored fingerprint
    differs, which is what makes [--resume] safe: a checkpoint can only
    replay into the run configuration that wrote it, so replayed cells
    are bit-identical by construction.

    All operations are mutex-guarded; worker domains may {!record}
    concurrently. *)

type t

val create : ?flush_every:int -> path:string -> fingerprint:string -> unit -> t
(** Fresh, empty checkpoint bound to [path] (nothing is written until
    the first flush).  [flush_every] (default 1) batches that many
    {!record}s per snapshot write.
    @raise Invalid_argument on an empty path, a multi-line
    fingerprint, or [flush_every < 1]. *)

val load : ?flush_every:int -> path:string -> fingerprint:string -> unit -> (t, string) result
(** Parse an existing snapshot.  [Error _] on a missing or corrupt
    file, or when the stored fingerprint differs from [fingerprint]
    (the error message says which). *)

val load_or_create :
  ?flush_every:int -> path:string -> fingerprint:string -> unit -> (t, string) result
(** {!load} when [path] exists, fresh {!create} otherwise. *)

val path : t -> string
val fingerprint : t -> string

val record : t -> id:string -> string -> unit
(** Store (or overwrite) a payload; flushes automatically every
    [flush_every] records.  @raise Invalid_argument on a multi-line
    id (payloads may contain anything). *)

val flush : t -> unit
(** Write the snapshot now (atomic temp-file + rename). *)

val find : t -> string -> string option
val mem : t -> string -> bool

val ids : t -> string list
(** Completed task ids, sorted. *)

val length : t -> int
