(** Supervision layer over {!Domain_pool}: deadlines, bounded retry
    with deterministic backoff, crash quarantine, checkpoint replay.
    The .mli documents the failure model; DESIGN.md Section 8 explains
    why determinism survives retries. *)

exception Timed_out of { task : string; elapsed_s : float }

(* Deadlines are genuine wall-clock state, but the *read* still goes
   through the quarantined capability so the no-wall-clock lint rule
   holds: Ccache_obs.Clock is the only module in lib/ that touches
   Unix.gettimeofday.  Deadline results never feed simulation state —
   a miss raises and the attempt is recomputed from its seed. *)
let wall_now () = Ccache_obs.Clock.(now wall)

let () =
  Printexc.register_printer (function
    | Timed_out { task; elapsed_s } ->
        Some
          (Printf.sprintf "Supervisor.Timed_out(task=%s, elapsed=%.3fs)" task
             elapsed_s)
    | _ -> None)

type policy = {
  max_retries : int;
  timeout_s : float option;
  backoff_base_s : float;
  backoff_factor : float;
  backoff_max_s : float;
  jitter : float;
  seed : int;
}

let default_policy =
  {
    max_retries = 3;
    timeout_s = None;
    backoff_base_s = 0.05;
    backoff_factor = 2.0;
    backoff_max_s = 1.0;
    jitter = 0.0;
    seed = 0;
  }

let validate_policy p =
  if p.max_retries < 0 then
    invalid_arg "Supervisor: max_retries must be >= 0";
  (match p.timeout_s with
  | Some s when (not (Float.is_finite s)) || s <= 0.0 ->
      invalid_arg
        (Printf.sprintf "Supervisor: timeout_s = %g must be finite and > 0" s)
  | _ -> ());
  if not (Float.is_finite p.backoff_base_s) || p.backoff_base_s < 0.0 then
    invalid_arg "Supervisor: backoff_base_s must be finite and >= 0";
  if not (Float.is_finite p.backoff_factor) || p.backoff_factor < 1.0 then
    invalid_arg "Supervisor: backoff_factor must be finite and >= 1";
  if not (Float.is_finite p.backoff_max_s) || p.backoff_max_s < 0.0 then
    invalid_arg "Supervisor: backoff_max_s must be finite and >= 0";
  if not (Float.is_finite p.jitter) || p.jitter < 0.0 || p.jitter > 1.0 then
    invalid_arg "Supervisor: jitter must be in [0, 1]"

(* Pure so tests can assert the exact schedule.  [attempt] is the
   0-based attempt that just failed; the delay precedes attempt+1. *)
let backoff_delay policy ~task ~attempt =
  if policy.backoff_base_s <= 0.0 then 0.0
  else
    let d =
      policy.backoff_base_s *. (policy.backoff_factor ** float_of_int attempt)
    in
    let d = Float.min d policy.backoff_max_s in
    if policy.jitter <= 0.0 then d
    else
      (* Seeded jitter keyed on (seed, task, attempt): still fully
         deterministic, merely decorrelated across tasks. *)
      let g =
        Prng.derive ~seed:policy.seed
          ~key:(task ^ "/backoff#" ^ string_of_int attempt)
      in
      let scale = 1.0 -. policy.jitter +. (2.0 *. policy.jitter *. Prng.float g) in
      Float.min (d *. scale) policy.backoff_max_s

(* ------------------------------------------------------------------ *)
(* Task context: cooperative cancellation                              *)
(* ------------------------------------------------------------------ *)

type ctx = {
  ctx_task : string;
  ctx_attempt : int;
  started : float;
  deadline : float option;
}

let task_id ctx = ctx.ctx_task
let attempt ctx = ctx.ctx_attempt

let check ctx =
  match ctx.deadline with
  | Some d when wall_now () > d ->
      raise
        (Timed_out
           { task = ctx.ctx_task; elapsed_s = wall_now () -. ctx.started })
  | _ -> ()

let unsupervised_ctx ~task =
  { ctx_task = task; ctx_attempt = 0; started = 0.0; deadline = None }

(* ------------------------------------------------------------------ *)
(* Outcomes and events                                                 *)
(* ------------------------------------------------------------------ *)

type failure = { task : string; attempts : int; error : string }

type 'a outcome = Completed of 'a | Quarantined of failure

type event =
  | Retrying of { task : string; attempt : int; delay_s : float; error : string }
  | Gave_up of failure
  | Replayed of { task : string }

type 'a task = { id : string; run : ctx -> 'a }
type 'a codec = { encode : 'a -> string; decode : string -> 'a option }

let string_codec = { encode = Fun.id; decode = Option.some }

let completed outcomes =
  List.filter_map (function Completed v -> Some v | Quarantined _ -> None) outcomes

let failures outcomes =
  List.filter_map (function Quarantined f -> Some f | Completed _ -> None) outcomes

let error_message e =
  match e with
  | Failure m -> m
  | Invalid_argument m -> "Invalid_argument: " ^ m
  | e -> Printexc.to_string e

(* Only wall-clock events are worth a second attempt: injected
   transients (gone by construction on attempt >= 1) and deadline
   misses.  Anything else a deterministic task raised once it will
   raise forever, so we quarantine immediately rather than burn the
   retry budget re-proving it. *)
let retryable = function
  | Fault.Injected_transient _ | Timed_out _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The runner                                                          *)
(* ------------------------------------------------------------------ *)

let check_distinct_ids tasks =
  let seen = Hashtbl.create (List.length tasks) in
  List.iter
    (fun t ->
      if Hashtbl.mem seen t.id then
        invalid_arg (Printf.sprintf "Supervisor.run: duplicate task id %S" t.id);
      Hashtbl.replace seen t.id ())
    tasks

let run ?pool ?(policy = default_policy) ?(fault = Fault.none) ?checkpoint
    ?codec ?on_event tasks =
  validate_policy policy;
  check_distinct_ids tasks;
  (match (checkpoint, codec) with
  | Some _, None ->
      invalid_arg "Supervisor.run: ?checkpoint requires a ?codec to replay"
  | _ -> ());
  (* Serialise event delivery: callbacks fire on worker domains. *)
  let emit_lock = Mutex.create () in
  let emit ev =
    match on_event with
    | None -> ()
    | Some f -> Mutex.protect emit_lock (fun () -> f ev)
  in
  let replay task =
    match (checkpoint, codec) with
    | Some ck, Some c -> (
        match Checkpoint.find ck task.id with
        | None -> None
        | Some payload -> c.decode payload (* undecodable entry: recompute *))
    | _ -> None
  in
  let record task v =
    match (checkpoint, codec) with
    | Some ck, Some c -> Checkpoint.record ck ~id:task.id (c.encode v)
    | _ -> ()
  in
  let run_task task =
    match replay task with
    | Some v ->
        emit (Replayed { task = task.id });
        Ccache_obs.Metrics.incr "supervisor/replayed";
        Ccache_obs.Span.instant ~cat:"supervisor"
          ~args:[ ("task", Ccache_obs.Sink.Str task.id) ]
          "supervisor/replay";
        Completed v
    | None ->
        let rec go att =
          let started = wall_now () in
          let ctx =
            {
              ctx_task = task.id;
              ctx_attempt = att;
              started;
              deadline = Option.map (fun s -> started +. s) policy.timeout_s;
            }
          in
          match
            (* One span per attempt: the trace shows every retry as its
               own region (recorded even when the attempt raises), with
               quarantine/retry annotations as instant events below. *)
            Ccache_obs.Span.with_ ~cat:"supervisor"
              ~args:[ ("attempt", Ccache_obs.Sink.Int att) ]
              ("task:" ^ task.id)
              (fun () ->
                Fault.at_boundary fault ~task:task.id ~attempt:att;
                let v = task.run ctx in
                (* Closing boundary check: even a task that never calls
                   [check] cannot return a result past its deadline. *)
                check ctx;
                v)
          with
          | v ->
              record task v;
              Ccache_obs.Metrics.incr "supervisor/completed";
              Completed v
          | exception e when retryable e && att < policy.max_retries ->
              let delay_s = backoff_delay policy ~task:task.id ~attempt:att in
              emit
                (Retrying
                   {
                     task = task.id;
                     attempt = att + 1;
                     delay_s;
                     error = error_message e;
                   });
              Ccache_obs.Metrics.incr "supervisor/retries";
              Ccache_obs.Span.instant ~cat:"supervisor"
                ~args:
                  [
                    ("task", Ccache_obs.Sink.Str task.id);
                    ("attempt", Ccache_obs.Sink.Int (att + 1));
                    ("error", Ccache_obs.Sink.Str (error_message e));
                  ]
                "supervisor/retry";
              if delay_s > 0.0 then Unix.sleepf delay_s;
              go (att + 1)
          | exception e ->
              let f =
                { task = task.id; attempts = att + 1; error = error_message e }
              in
              emit (Gave_up f);
              Ccache_obs.Metrics.incr "supervisor/quarantined";
              Ccache_obs.Span.instant ~cat:"supervisor"
                ~args:
                  [
                    ("task", Ccache_obs.Sink.Str task.id);
                    ("attempts", Ccache_obs.Sink.Int f.attempts);
                    ("error", Ccache_obs.Sink.Str f.error);
                  ]
                "supervisor/quarantine";
              Quarantined f
        in
        go 0
  in
  (* run_task never raises, so one quarantined task cannot abort the
     map: every other future still completes and keeps its slot. *)
  let outcomes = Domain_pool.map_list ?pool ~f:run_task tasks in
  Option.iter Checkpoint.flush checkpoint;
  outcomes
