(** Parameter-sweep helpers for experiments and benches. *)

(** Cartesian product of two parameter lists. *)
let product xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let product3 xs ys zs =
  List.concat_map (fun x -> List.map (fun (y, z) -> (x, y, z)) (product ys zs)) xs

(** Geometric range [start, start*factor, ...] not exceeding [stop]. *)
let geometric ~start ~stop ~factor =
  if start <= 0 || stop < start then invalid_arg "Sweep.geometric: bad range";
  if factor <= 1.0 then invalid_arg "Sweep.geometric: factor must exceed 1";
  let rec go acc v =
    if v > stop then List.rev acc
    else
      let next =
        Stdlib.max (v + 1) (int_of_float (Float.round (float_of_int v *. factor)))
      in
      go (v :: acc) next
  in
  go [] start

(** Inclusive arithmetic range with step. *)
let arithmetic ~start ~stop ~step =
  if step <= 0 then invalid_arg "Sweep.arithmetic: step must be positive";
  let rec go acc v = if v > stop then List.rev acc else go (v :: acc) (v + step) in
  go [] start

(** Evenly spaced floats, inclusive of both endpoints. *)
let linspace ~start ~stop ~count =
  if count < 2 then invalid_arg "Sweep.linspace: count must be >= 2";
  List.init count (fun i ->
      start +. ((stop -. start) *. float_of_int i /. float_of_int (count - 1)))

(* One span per sweep cell, labelled by input position — [f] itself is
   opaque, so the position is the only stable identity a cell has. *)
let cell_span i f =
  Ccache_obs.Span.with_ ~cat:"sweep"
    ~args:[ ("cell", Ccache_obs.Sink.Int i) ]
    "sweep/cell" f

(** Map with the sweep point available for labelling.  With [?pool] the
    cells are evaluated on the pool's worker domains; results keep the
    input order either way.  [?chunk] batches consecutive cells into
    one pool task (grain control for cheap cells); the output is
    identical at every chunk size. *)
let run ?pool ?chunk points ~f =
  let cells = List.mapi (fun i p -> (i, p)) points in
  Ccache_util.Domain_pool.map_list ?pool ?chunk cells ~f:(fun (i, p) ->
      (p, cell_span i (fun () -> f p)))

(** Seeded sweep: each cell gets its own PRNG stream, derived from the
    cell's *position* before any cell runs, so the output is identical
    whether cells execute sequentially or on any number of domains. *)
let run_seeded ?pool ?chunk ~seed points ~f =
  let parent = Ccache_util.Prng.create ~seed in
  let cells =
    List.mapi (fun i p -> (i, p, Ccache_util.Prng.split parent)) points
  in
  Ccache_util.Domain_pool.map_list ?pool ?chunk cells ~f:(fun (i, p, g) ->
      (p, cell_span i (fun () -> f g p)))

(* ------------------------------------------------------------------ *)
(* Fused single-pass engine sweeps                                     *)
(* ------------------------------------------------------------------ *)

type cell = {
  policy : Policy.t;
  k : int;
  costs : Ccache_cost.Cost_function.t array;
  flush : bool;
  trace : Ccache_trace.Trace.t;
}

let cell ?(flush = false) ~k ~costs policy trace =
  { policy; k; costs; flush; trace }

(* Process-wide fused/unfused switch (the --fused / --no-fused flag on
   the binaries).  Read from worker domains, hence atomic; fused is the
   default because it is byte-identical by construction and the CI
   fused-equivalence job keeps it that way. *)
let fused = Atomic.make true
let set_fused b = Atomic.set fused b
let fused_enabled () = Atomic.get fused

(* Cells are groupable exactly when they replay the same trace, and
   "same" means physical identity: value equality could conflate
   distinct generator outputs at real cost (an O(T) compare per pair)
   and buys nothing, because sharing only ever arises from callers
   hoisting one trace across cells.  First-touch order of groups, input
   order within a group. *)
let group_indices cells =
  let arr = Array.of_list cells in
  let groups = ref [] in
  Array.iteri
    (fun i c ->
      match List.find_opt (fun (t, _) -> t == c.trace) !groups with
      | Some (_, ixs) -> ixs := i :: !ixs
      | None -> groups := (c.trace, ref [ i ]) :: !groups)
    arr;
  List.rev_map (fun (_, ixs) -> List.rev !ixs) !groups

let fused_scan_span ~cells ~requests f =
  if not (Ccache_obs.Control.enabled ()) then f ()
  else
    Ccache_obs.Span.with_ ~cat:"sweep"
      ~args:
        [
          ("cells", Ccache_obs.Sink.Int cells);
          ("requests", Ccache_obs.Sink.Int requests);
        ]
      "sweep/fused_scan" f

(* One shared scan: init every cell's engine state (sharing one trace
   index across the offline cells), then advance all states in lockstep
   position by position.  Each state is a flat record of arrays, so the
   whole batch stays cache-resident while the trace streams past once. *)
let scan_group cells =
  match cells with
  | [] -> []
  | first :: _ ->
      let trace = first.trace in
      let requests = Ccache_trace.Trace.length trace in
      fused_scan_span ~cells:(List.length cells) ~requests (fun () ->
          let index =
            if List.exists (fun c -> Policy.needs_future c.policy) cells then
              Some (Ccache_trace.Trace.Index.build trace)
            else None
          in
          let states =
            Array.of_list
              (List.map
                 (fun c ->
                   (* only offline cells see the shared index, so each
                      cell's [Policy.Config] matches what a solo
                      [Engine.run] would have built *)
                   let index =
                     if Policy.needs_future c.policy then index else None
                   in
                   Engine.Step.init ~flush:c.flush ?index ~k:c.k ~costs:c.costs
                     c.policy c.trace)
                 cells)
          in
          (* Tiled, not strictly lockstep: each cell replays a block of
             positions before the next cell touches the trace block.
             Cells are independent, so any interleaving that keeps each
             cell's positions in order computes the same results; the
             tile keeps one cell's working set hot for [tile] steps
             while the trace block stays L1-resident, instead of
             reloading every cell's state at every position. *)
          let tile = 4096 in
          let start = ref 0 in
          while !start < requests do
            let stop = Stdlib.min (!start + tile) requests in
            for i = 0 to Array.length states - 1 do
              let st = states.(i) in
              for pos = !start to stop - 1 do
                Engine.Step.step st pos
              done
            done;
            start := stop
          done;
          Array.to_list (Array.map Engine.Step.finish states))

(* Post-scan accounting, in input order: one engine span + the run
   counters per cell, exactly what the per-cell [Engine.run]s of the
   unfused path record, so fused and unfused metrics exports agree. *)
let record_cell_obs cells results =
  if Ccache_obs.Control.enabled () then
    List.iter2
      (fun c r ->
        Ccache_obs.Span.with_ ~cat:"engine"
          ~args:
            [
              ("policy", Ccache_obs.Sink.Str (Policy.name c.policy));
              ("k", Ccache_obs.Sink.Int c.k);
              ("requests", Ccache_obs.Sink.Int (Ccache_trace.Trace.length c.trace));
            ]
          "engine.run"
          (fun () -> Engine.record_result_obs r))
      cells results

let run_fused ?pool ?chunk cells =
  let arr = Array.of_list cells in
  let groups =
    List.map (fun ixs -> List.map (fun i -> (i, arr.(i))) ixs)
      (group_indices cells)
  in
  let scanned =
    (* groups-vs-cells is an execution detail; keep it out of metrics so
       fused and unfused exports stay byte-identical *)
    Ccache_util.Domain_pool.map_list ?pool ?chunk ~count_blocks:false groups
      ~f:(fun group ->
        let results = scan_group (List.map snd group) in
        List.map2 (fun (i, _) r -> (i, r)) group results)
  in
  let out = Array.make (Array.length arr) None in
  List.iter
    (List.iter (fun (i, r) -> out.(i) <- Some r))
    scanned;
  let results =
    Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false (* every index filled *))
         out)
  in
  record_cell_obs cells results;
  results

(* Split a flat row-major result list back into rows of [width] — the
   inverse of building a grid's cells with [concat_map].  Total length
   must be a multiple of [width]. *)
let rows ~width xs =
  if width <= 0 then invalid_arg "Sweep.rows: width must be positive";
  let rec go acc cur n = function
    | [] ->
        if n <> 0 then invalid_arg "Sweep.rows: ragged input";
        List.rev acc
    | x :: rest ->
        if n + 1 = width then go (List.rev (x :: cur) :: acc) [] 0 rest
        else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let run_cells ?pool ?chunk ?(fuse = true) cells =
  if fuse && fused_enabled () then run_fused ?pool ?chunk cells
  else
    Ccache_util.Domain_pool.map_list ?pool ?chunk ~count_blocks:false cells
      ~f:(fun c ->
        Engine.run ~flush:c.flush ~k:c.k ~costs:c.costs c.policy c.trace)

(** Supervised sweep: deadlines, retry, quarantine, checkpoint replay.
    Each cell's stream is keyed on [(seed, task_id p)] — not on split
    order — so every retry (and every resume) rebuilds the exact
    stream the first attempt saw; convergence to the fault-free output
    follows.  See [Ccache_util.Supervisor] for the failure model. *)
let run_supervised ?pool ?policy ?fault ?checkpoint ?codec ?on_event ~seed
    ~task_id points ~f =
  let module S = Ccache_util.Supervisor in
  let tasks =
    List.map
      (fun p ->
        let id = task_id p in
        {
          S.id;
          run =
            (fun ctx ->
              f ctx (Ccache_util.Prng.derive ~seed ~key:id) p);
        })
      points
  in
  let outcomes = S.run ?pool ?policy ?fault ?checkpoint ?codec ?on_event tasks in
  List.combine points outcomes
