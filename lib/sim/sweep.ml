(** Parameter-sweep helpers for experiments and benches. *)

(** Cartesian product of two parameter lists. *)
let product xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let product3 xs ys zs =
  List.concat_map (fun x -> List.map (fun (y, z) -> (x, y, z)) (product ys zs)) xs

(** Geometric range [start, start*factor, ...] not exceeding [stop]. *)
let geometric ~start ~stop ~factor =
  if start <= 0 || stop < start then invalid_arg "Sweep.geometric: bad range";
  if factor <= 1.0 then invalid_arg "Sweep.geometric: factor must exceed 1";
  let rec go acc v =
    if v > stop then List.rev acc
    else
      let next =
        Stdlib.max (v + 1) (int_of_float (Float.round (float_of_int v *. factor)))
      in
      go (v :: acc) next
  in
  go [] start

(** Inclusive arithmetic range with step. *)
let arithmetic ~start ~stop ~step =
  if step <= 0 then invalid_arg "Sweep.arithmetic: step must be positive";
  let rec go acc v = if v > stop then List.rev acc else go (v :: acc) (v + step) in
  go [] start

(** Evenly spaced floats, inclusive of both endpoints. *)
let linspace ~start ~stop ~count =
  if count < 2 then invalid_arg "Sweep.linspace: count must be >= 2";
  List.init count (fun i ->
      start +. ((stop -. start) *. float_of_int i /. float_of_int (count - 1)))

(* One span per sweep cell, labelled by input position — [f] itself is
   opaque, so the position is the only stable identity a cell has. *)
let cell_span i f =
  Ccache_obs.Span.with_ ~cat:"sweep"
    ~args:[ ("cell", Ccache_obs.Sink.Int i) ]
    "sweep/cell" f

(** Map with the sweep point available for labelling.  With [?pool] the
    cells are evaluated on the pool's worker domains; results keep the
    input order either way.  [?chunk] batches consecutive cells into
    one pool task (grain control for cheap cells); the output is
    identical at every chunk size. *)
let run ?pool ?chunk points ~f =
  let cells = List.mapi (fun i p -> (i, p)) points in
  Ccache_util.Domain_pool.map_list ?pool ?chunk cells ~f:(fun (i, p) ->
      (p, cell_span i (fun () -> f p)))

(** Seeded sweep: each cell gets its own PRNG stream, derived from the
    cell's *position* before any cell runs, so the output is identical
    whether cells execute sequentially or on any number of domains. *)
let run_seeded ?pool ?chunk ~seed points ~f =
  let parent = Ccache_util.Prng.create ~seed in
  let cells =
    List.mapi (fun i p -> (i, p, Ccache_util.Prng.split parent)) points
  in
  Ccache_util.Domain_pool.map_list ?pool ?chunk cells ~f:(fun (i, p, g) ->
      (p, cell_span i (fun () -> f g p)))

(** Supervised sweep: deadlines, retry, quarantine, checkpoint replay.
    Each cell's stream is keyed on [(seed, task_id p)] — not on split
    order — so every retry (and every resume) rebuilds the exact
    stream the first attempt saw; convergence to the fault-free output
    follows.  See [Ccache_util.Supervisor] for the failure model. *)
let run_supervised ?pool ?policy ?fault ?checkpoint ?codec ?on_event ~seed
    ~task_id points ~f =
  let module S = Ccache_util.Supervisor in
  let tasks =
    List.map
      (fun p ->
        let id = task_id p in
        {
          S.id;
          run =
            (fun ctx ->
              f ctx (Ccache_util.Prng.derive ~seed ~key:id) p);
        })
      points
  in
  let outcomes = S.run ?pool ?policy ?fault ?checkpoint ?codec ?on_event tasks in
  List.combine points outcomes
