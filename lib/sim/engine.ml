(** Shared-cache simulation engine.

    Replays a trace against a policy, owning the cache set and all
    accounting.  Guarantees enforced here, independent of the policy:

    - the cache never exceeds [k] pages;
    - a victim returned by the policy is actually cached and is not the
      incoming page;
    - per-user hit/miss/eviction counts are conserved
      (hits + misses = requests; per-page insertions = evictions +
      still-cached).

    The optional [~flush:true] mode implements the paper's terminal
    dummy user (Section 2.1): k final requests by an infinite-cost user
    whose pages can never be evicted, forcing every real page out of
    the cache so that evictions equal misses for the real users.
    Because the dummy pages are never eviction candidates, the engine
    realises them without inserting anything: each flush step asks the
    policy for a victim (only real pages are cached, so any answer is
    valid) and evicts it — observationally identical to pinning
    infinite-cost dummy pages, and it works for every policy
    unmodified. *)

open Ccache_trace

type event =
  | Hit of { pos : int; page : Page.t }
  | Miss_insert of { pos : int; page : Page.t }
      (** compulsory or capacity-free miss: inserted without eviction *)
  | Miss_evict of { pos : int; page : Page.t; victim : Page.t }

let event_pos = function
  | Hit { pos; _ } | Miss_insert { pos; _ } | Miss_evict { pos; _ } -> pos

type result = {
  policy : string;
  k : int;
  trace_length : int;
  n_users : int;  (** real users, excluding any flush dummy *)
  hits : int;
  misses_per_user : int array;
  evictions_per_user : int array;
  final_cache : Page.t list;
}

let misses r = Array.fold_left ( + ) 0 r.misses_per_user
let evictions r = Array.fold_left ( + ) 0 r.evictions_per_user

let miss_ratio r =
  if r.trace_length = 0 then 0.0
  else float_of_int (misses r) /. float_of_int r.trace_length

exception Policy_error of string

(* [@@effects.cold]: an unconditional raise, so the message formatting
   never allocates on a path that returns — callers keep their
   [no_alloc] contracts. *)
let[@effects.cold] policy_error fmt =
  Printf.ksprintf (fun s -> raise (Policy_error s)) fmt

(** Run [policy] on [trace] with cache size [k] and per-user [costs].

    @param flush append the terminal dummy-user flush (default false).
    @param on_event called for every decision, in trace order.
    @param index reuse a prebuilt index (otherwise built on demand only
           if the policy needs the future). *)
(* Post-run accounting into the observability sinks.  Counters are
   per-policy; the per-tenant histograms record one observation per
   user per run, i.e. the distribution of misses/evictions across
   tenants — the charging data Young-style loose-competitiveness
   accounting wants per step-window. *)
let record_obs r =
  let module M = Ccache_obs.Metrics in
  let p = r.policy in
  M.incr ~by:r.trace_length ("engine/" ^ p ^ "/requests");
  M.incr ~by:r.hits ("engine/" ^ p ^ "/hits");
  M.incr ~by:(misses r) ("engine/" ^ p ^ "/misses");
  M.incr ~by:(evictions r) ("engine/" ^ p ^ "/evictions");
  Array.iter
    (fun m -> M.observe ("engine/" ^ p ^ "/misses_per_user") (float_of_int m))
    r.misses_per_user;
  Array.iter
    (fun e -> M.observe ("engine/" ^ p ^ "/evictions_per_user") (float_of_int e))
    r.evictions_per_user

(** Stepping form of the engine: [init] builds the per-run state,
    [step] replays one trace position, [finish] runs the optional
    terminal flush and assembles the {!result}.  [run_inner] below is
    exactly [init] + a [step] loop + [finish]; the split exists so the
    fused sweep driver ({!Ccache_sim.Sweep.run_fused}) can advance many
    engine instances in lockstep over a single trace scan.  The state
    is one record of flat arrays and mutable counters, so a batch of
    cells stays cache-resident between steps. *)
module Step = struct
  type t = {
    policy : Policy.t;
    trace : Trace.t;
    requests : Page.t array;
        (** [Trace.requests trace], hoisted so the per-request hot loop
            indexes a local array instead of re-entering [Trace] *)
    k : int;
    real_users : int;
    h : Policy.handlers;
    cached : Ccache_util.Int_tbl.t;
    misses_per_user : int array;
    evictions_per_user : int array;
    mutable hits : int;
    mutable fed : int;  (** requests replayed so far (= next position) *)
    flush : bool;
    on_event : (event -> unit) option;
  }

  let init ?(flush = false) ?on_event ?index ~k ~costs policy trace =
    let real_users = Trace.n_users trace in
    if Array.length costs <> real_users then
      invalid_arg "Engine.run: costs array must have one entry per user";
    let index =
      match index with
      | Some idx -> Some idx
      | None ->
          if Policy.needs_future policy then Some (Trace.Index.build trace)
          else None
    in
    let config = Policy.Config.make ?index ~k ~costs () in
    let h = Policy.instantiate policy config in
    (* The cache set keys on the packed page int directly: an
       open-addressing table with flat int arrays, no boxed keys to hash
       and nothing allocated per request.  Capacity k+1 already gives a
       table that never rehashes mid-trace (it is sized to twice the
       requested capacity, and occupancy never exceeds k); asking for
       more just spreads the hot probes over more cache lines. *)
    let cached = Ccache_util.Int_tbl.create ~capacity:(k + 1) () in
    {
      policy;
      trace;
      requests = Trace.requests trace;
      k;
      real_users;
      h;
      cached;
      misses_per_user = Array.make real_users 0;
      evictions_per_user = Array.make real_users 0;
      hits = 0;
      fed = 0;
      flush;
      on_event;
    }

  let length t = Trace.length t.trace

  let is_cached t page = Ccache_util.Int_tbl.mem t.cached (Page.pack page)
  let cache_add t page = Ccache_util.Int_tbl.set t.cached (Page.pack page) 1
  let cache_remove t page =
    ignore (Ccache_util.Int_tbl.remove t.cached (Page.pack page))
  let occupancy t = Ccache_util.Int_tbl.length t.cached

  (* Event records are built inside the [Some] branches only, so runs
     without a listener allocate nothing per decision; the
     [@effects.allow "alloc"] masks scope that exemption to exactly
     those branches.

     [apply] is the decision body shared by [step] (trace replay, the
     fused sweeps) and [feed] (dynamically arriving requests from the
     serving layer): both spellings run the exact same cache and
     accounting code, which is what makes the sharded service
     differentially testable against plain trace runs. *)
  let apply t pos page =
    t.fed <- pos + 1;
    let h = t.h in
    if is_cached t page then begin
      t.hits <- t.hits + 1;
      h.Policy.on_hit ~pos page;
      match t.on_event with
      | Some f -> (f (Hit { pos; page }) [@effects.allow "alloc"])
      | None -> ()
    end
    else begin
      t.misses_per_user.(Page.user page) <-
        t.misses_per_user.(Page.user page) + 1;
      let occ = occupancy t in
      if occ >= t.k || (occ > 0 && h.Policy.wants_evict ~pos ~incoming:page)
      then begin
        let victim = h.Policy.choose_victim ~pos ~incoming:page in
        if not (is_cached t victim) then
          policy_error "%s: victim %s is not cached (pos %d)"
            (Policy.name t.policy) (Page.to_string victim) pos;
        if Page.equal victim page then
          policy_error "%s: victim equals incoming page %s (pos %d)"
            (Policy.name t.policy) (Page.to_string page) pos;
        cache_remove t victim;
        t.evictions_per_user.(Page.user victim) <-
          t.evictions_per_user.(Page.user victim) + 1;
        h.Policy.on_evict ~pos victim;
        cache_add t page;
        h.Policy.on_insert ~pos page;
        match t.on_event with
        | Some f -> (f (Miss_evict { pos; page; victim }) [@effects.allow "alloc"])
        | None -> ()
      end
      else begin
        cache_add t page;
        h.Policy.on_insert ~pos page;
        match t.on_event with
        | Some f -> (f (Miss_insert { pos; page }) [@effects.allow "alloc"])
        | None -> ()
      end;
      if occupancy t > t.k then
        policy_error "%s: cache exceeded k=%d (pos %d)" (Policy.name t.policy)
          t.k pos
    end
    [@@effects.no_alloc] [@@effects.deterministic]

  let step t pos = apply t pos t.requests.(pos)
    [@@effects.no_alloc] [@@effects.deterministic]

  let feed t page = apply t t.fed page
    [@@effects.no_alloc] [@@effects.deterministic]

  let served t = t.fed

  (* Terminal flush: the dummy user's k requests evict every remaining
     real page; dummy pages are pinned so they are never inserted. *)
  let finish t =
    (* [fed] equals the trace length after a complete trace replay; it
       exceeds it (trivially: the trace is empty) for dynamic states
       driven through [feed]. *)
    let n = max (Trace.length t.trace) t.fed in
    if t.flush then begin
      for step = 0 to t.k - 1 do
        if occupancy t > 0 then begin
          let pos = n + step in
          let dummy = Page.make ~user:t.real_users ~id:step in
          let victim = t.h.Policy.choose_victim ~pos ~incoming:dummy in
          if not (is_cached t victim) then
            policy_error "%s: flush victim %s is not cached"
              (Policy.name t.policy) (Page.to_string victim);
          cache_remove t victim;
          t.evictions_per_user.(Page.user victim) <-
            t.evictions_per_user.(Page.user victim) + 1;
          t.h.Policy.on_evict ~pos victim;
          match t.on_event with
          | Some f -> f (Miss_evict { pos; page = dummy; victim })
          | None -> ()
        end
      done;
      if occupancy t > 0 then
        policy_error "%s: flush left %d pages cached (need k >= cache)"
          (Policy.name t.policy) (occupancy t)
    end;
    let final_cache =
      Ccache_util.Int_tbl.fold (fun p _ acc -> Page.unpack p :: acc) t.cached []
    in
    {
      policy = Policy.name t.policy;
      k = t.k;
      trace_length = n;
      n_users = t.real_users;
      hits = t.hits;
      misses_per_user = t.misses_per_user;
      evictions_per_user = t.evictions_per_user;
      final_cache = List.sort Page.compare final_cache;
    }
end

let run_inner ?flush ?on_event ?index ~k ~costs policy trace =
  let st = Step.init ?flush ?on_event ?index ~k ~costs policy trace in
  for pos = 0 to Step.length st - 1 do
    Step.step st pos
  done;
  Step.finish st

(* Exported for the fused sweep driver, which computes results through
   {!Step} and must then account them exactly as {!run} would have. *)
let record_result_obs = record_obs

let run ?flush ?on_event ?index ~k ~costs policy trace =
  if not (Ccache_obs.Control.enabled ()) then
    run_inner ?flush ?on_event ?index ~k ~costs policy trace
  else
    Ccache_obs.Span.with_ ~cat:"engine"
      ~args:
        [
          ("policy", Ccache_obs.Sink.Str (Policy.name policy));
          ("k", Ccache_obs.Sink.Int k);
          ("requests", Ccache_obs.Sink.Int (Trace.length trace));
        ]
      "engine.run"
      (fun () ->
        let r = run_inner ?flush ?on_event ?index ~k ~costs policy trace in
        record_obs r;
        r)

(** Run and also collect the full decision log (for invariant checking
    and tests). *)
let run_logged ?flush ?index ~k ~costs policy trace =
  let log = ref [] in
  let result =
    run ?flush ?index ~on_event:(fun ev -> log := ev :: !log) ~k ~costs policy trace
  in
  (result, List.rev !log)
