(** Parameter-sweep helpers for experiments and benches. *)

val product : 'a list -> 'b list -> ('a * 'b) list
val product3 : 'a list -> 'b list -> 'c list -> ('a * 'b * 'c) list

val geometric : start:int -> stop:int -> factor:float -> int list
(** Rounded geometric range, strictly increasing, not exceeding
    [stop]. @raise Invalid_argument on a bad range or [factor <= 1]. *)

val arithmetic : start:int -> stop:int -> step:int -> int list
val linspace : start:float -> stop:float -> count:int -> float list

val run :
  ?pool:Ccache_util.Domain_pool.t ->
  ?chunk:int ->
  'a list ->
  f:('a -> 'b) ->
  ('a * 'b) list
(** Map keeping the sweep point for labelling.  With [?pool] the cells
    are evaluated in parallel on the pool's workers; the result list is
    in input order either way.  [?chunk] batches that many consecutive
    cells per pool task (see
    {!Ccache_util.Domain_pool.parallel_map}) — grain control only,
    never a result change. *)

val run_seeded :
  ?pool:Ccache_util.Domain_pool.t ->
  ?chunk:int ->
  seed:int ->
  'a list ->
  f:(Ccache_util.Prng.t -> 'a -> 'b) ->
  ('a * 'b) list
(** Like {!run} but hands each cell a private {!Ccache_util.Prng}
    stream derived deterministically from [seed] and the cell index
    before any cell executes.  Output is bit-for-bit identical across
    pool sizes, including no pool at all. *)

(** {1 Fused single-pass engine sweeps}

    A sweep over (policy, k, costs) cells that share one request trace
    does not need one trace replay per cell: {!run_fused} scans the
    trace once and advances every cell's engine in lockstep through the
    {!Engine.Step} API.  The output is byte-identical to per-cell
    {!Engine.run}s — same results in the same order, same obs metrics —
    which the CI fused-equivalence job enforces end to end. *)

type cell = {
  policy : Policy.t;
  k : int;
  costs : Ccache_cost.Cost_function.t array;
  flush : bool;
  trace : Ccache_trace.Trace.t;
}

val cell :
  ?flush:bool ->
  k:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Policy.t ->
  Ccache_trace.Trace.t ->
  cell
(** One engine run's parameters ([flush] defaults to false), mirroring
    {!Engine.run}'s. *)

val set_fused : bool -> unit
(** Process-wide switch consulted by {!run_cells} (the [--fused] /
    [--no-fused] flag); fused is the default. *)

val fused_enabled : unit -> bool

val group_indices : cell list -> int list list
(** The fused partition: cell indices grouped by *physical* trace
    identity, groups in first-touch order, indices ascending within a
    group.  Cells whose traces are equal but not shared ([==]) land in
    separate groups and fall back to solo scans. *)

val run_fused : ?pool:Ccache_util.Domain_pool.t -> ?chunk:int -> cell list -> Engine.result list
(** Run every cell, scanning each distinct (physically shared) trace
    exactly once; results are in input order.  With [?pool], whole
    groups are distributed over the pool's workers ([?chunk] batches
    consecutive groups per task) — the result is identical at every
    width and grain.  A singleton group degenerates to an ordinary
    engine run over its own scan. *)

val rows : width:int -> 'a list -> 'a list list
(** Split a flat row-major list into rows of [width] — the inverse of
    building a grid's cells with [List.concat_map].
    @raise Invalid_argument if [width <= 0] or the length is not a
    multiple of [width]. *)

val run_cells :
  ?pool:Ccache_util.Domain_pool.t ->
  ?chunk:int ->
  ?fuse:bool ->
  cell list ->
  Engine.result list
(** {!run_fused} when fusing is enabled (the {!set_fused} switch AND
    the per-call [?fuse], default true), per-cell {!Engine.run}s
    otherwise.  Callers whose cells are data-dependent — a later cell's
    trace or costs derived from an earlier result, or traces mutated
    between cells — must pass [~fuse:false] (the per-experiment
    opt-out); everyone else gets the single-pass path for free. *)

val run_supervised :
  ?pool:Ccache_util.Domain_pool.t ->
  ?policy:Ccache_util.Supervisor.policy ->
  ?fault:Ccache_util.Fault.t ->
  ?checkpoint:Ccache_util.Checkpoint.t ->
  ?codec:'b Ccache_util.Supervisor.codec ->
  ?on_event:(Ccache_util.Supervisor.event -> unit) ->
  seed:int ->
  task_id:('a -> string) ->
  'a list ->
  f:(Ccache_util.Supervisor.ctx -> Ccache_util.Prng.t -> 'a -> 'b) ->
  ('a * 'b Ccache_util.Supervisor.outcome) list
(** Supervised variant of {!run_seeded}: per-cell deadlines and
    cooperative cancellation (the [ctx]), bounded deterministic retry,
    quarantine of permanently-failing cells, fault injection, and
    checkpoint replay ([?checkpoint] requires [?codec]).

    Determinism: each cell's stream is {!Ccache_util.Prng.derive}d from
    [(seed, task_id cell)] — independent of split order, position, and
    attempt number — so a retried (or resumed) cell recomputes exactly
    what an undisturbed first attempt would have, and a run with
    injected transient faults is byte-identical to a fault-free run at
    any pool width.  [task_id] must be injective over [points]
    (duplicate ids raise [Invalid_argument]). *)
