(** Parameter-sweep helpers for experiments and benches. *)

val product : 'a list -> 'b list -> ('a * 'b) list
val product3 : 'a list -> 'b list -> 'c list -> ('a * 'b * 'c) list

val geometric : start:int -> stop:int -> factor:float -> int list
(** Rounded geometric range, strictly increasing, not exceeding
    [stop]. @raise Invalid_argument on a bad range or [factor <= 1]. *)

val arithmetic : start:int -> stop:int -> step:int -> int list
val linspace : start:float -> stop:float -> count:int -> float list

val run :
  ?pool:Ccache_util.Domain_pool.t -> 'a list -> f:('a -> 'b) -> ('a * 'b) list
(** Map keeping the sweep point for labelling.  With [?pool] the cells
    are evaluated in parallel on the pool's workers; the result list is
    in input order either way. *)

val run_seeded :
  ?pool:Ccache_util.Domain_pool.t ->
  seed:int ->
  'a list ->
  f:(Ccache_util.Prng.t -> 'a -> 'b) ->
  ('a * 'b) list
(** Like {!run} but hands each cell a private {!Ccache_util.Prng}
    stream derived deterministically from [seed] and the cell index
    before any cell executes.  Output is bit-for-bit identical across
    pool sizes, including no pool at all. *)
