(** Parameter-sweep helpers for experiments and benches. *)

val product : 'a list -> 'b list -> ('a * 'b) list
val product3 : 'a list -> 'b list -> 'c list -> ('a * 'b * 'c) list

val geometric : start:int -> stop:int -> factor:float -> int list
(** Rounded geometric range, strictly increasing, not exceeding
    [stop]. @raise Invalid_argument on a bad range or [factor <= 1]. *)

val arithmetic : start:int -> stop:int -> step:int -> int list
val linspace : start:float -> stop:float -> count:int -> float list

val run :
  ?pool:Ccache_util.Domain_pool.t ->
  ?chunk:int ->
  'a list ->
  f:('a -> 'b) ->
  ('a * 'b) list
(** Map keeping the sweep point for labelling.  With [?pool] the cells
    are evaluated in parallel on the pool's workers; the result list is
    in input order either way.  [?chunk] batches that many consecutive
    cells per pool task (see
    {!Ccache_util.Domain_pool.parallel_map}) — grain control only,
    never a result change. *)

val run_seeded :
  ?pool:Ccache_util.Domain_pool.t ->
  ?chunk:int ->
  seed:int ->
  'a list ->
  f:(Ccache_util.Prng.t -> 'a -> 'b) ->
  ('a * 'b) list
(** Like {!run} but hands each cell a private {!Ccache_util.Prng}
    stream derived deterministically from [seed] and the cell index
    before any cell executes.  Output is bit-for-bit identical across
    pool sizes, including no pool at all. *)

val run_supervised :
  ?pool:Ccache_util.Domain_pool.t ->
  ?policy:Ccache_util.Supervisor.policy ->
  ?fault:Ccache_util.Fault.t ->
  ?checkpoint:Ccache_util.Checkpoint.t ->
  ?codec:'b Ccache_util.Supervisor.codec ->
  ?on_event:(Ccache_util.Supervisor.event -> unit) ->
  seed:int ->
  task_id:('a -> string) ->
  'a list ->
  f:(Ccache_util.Supervisor.ctx -> Ccache_util.Prng.t -> 'a -> 'b) ->
  ('a * 'b Ccache_util.Supervisor.outcome) list
(** Supervised variant of {!run_seeded}: per-cell deadlines and
    cooperative cancellation (the [ctx]), bounded deterministic retry,
    quarantine of permanently-failing cells, fault injection, and
    checkpoint replay ([?checkpoint] requires [?codec]).

    Determinism: each cell's stream is {!Ccache_util.Prng.derive}d from
    [(seed, task_id cell)] — independent of split order, position, and
    attempt number — so a retried (or resumed) cell recomputes exactly
    what an undisturbed first attempt would have, and a run with
    injected transient faults is byte-identical to a fault-free run at
    any pool width.  [task_id] must be injective over [points]
    (duplicate ids raise [Invalid_argument]). *)
