(** Shared-cache simulation engine.

    Replays a trace against a policy, owning the cache set and all
    accounting.  Guarantees enforced here, independent of the policy:
    the cache never exceeds [k] pages; victims are actually cached and
    never the incoming page; per-user hit/miss/eviction counts are
    conserved.  Violations raise {!Policy_error}.

    The optional [~flush:true] mode implements the paper's terminal
    dummy user (Section 2.1): k final requests by an infinite-cost
    user whose pages can never be evicted, forcing every real page out
    so that evictions equal misses per user.  Because dummy pages are
    never eviction candidates, the engine realises them without
    inserting anything — observationally identical to pinning
    infinite-cost pages, and it works for every policy unmodified. *)

open Ccache_trace

type event =
  | Hit of { pos : int; page : Page.t }
  | Miss_insert of { pos : int; page : Page.t }
      (** miss absorbed without eviction *)
  | Miss_evict of { pos : int; page : Page.t; victim : Page.t }

val event_pos : event -> int

type result = {
  policy : string;
  k : int;
  trace_length : int;
  n_users : int;
  hits : int;
  misses_per_user : int array;
  evictions_per_user : int array;
  final_cache : Page.t list;  (** sorted; empty after a flush *)
}

val misses : result -> int
val evictions : result -> int
val miss_ratio : result -> float

exception Policy_error of string

(** Stepping form of the engine.  [init] builds the full per-run state
    (policy instance, cache set, accounting arrays); [step t pos]
    replays the request at trace position [pos]; [finish] runs the
    optional terminal flush and assembles the {!result}.  {!run} is
    exactly [init] + a [step] loop over [0 .. length - 1] + [finish] —
    the split lets {!Ccache_sim.Sweep.run_fused} drive many engine
    instances in lockstep over a single trace scan.

    Positions must be fed in order [0, 1, ..., length - 1], each
    exactly once, before [finish]; [finish] must be called at most
    once.  The state is single-run and single-domain, like a policy
    instance. *)
module Step : sig
  type t

  val init :
    ?flush:bool ->
    ?on_event:(event -> unit) ->
    ?index:Trace.Index.t ->
    k:int ->
    costs:Ccache_cost.Cost_function.t array ->
    Policy.t ->
    Trace.t ->
    t
  (** Same parameters and validation as {!run}. *)

  val length : t -> int
  (** Trace length: the number of [step] calls [finish] expects. *)

  val step : t -> int -> unit
  (** Replay one request. @raise Policy_error if the policy misbehaves. *)

  val feed : t -> Ccache_trace.Page.t -> unit
  (** Dynamic form of [step]: replay [page] as the next request, at
      position = number of requests replayed so far.  The serving layer
      ({!Ccache_serve.Session}) feeds requests as they arrive instead
      of replaying a prebuilt trace; a state meant for [feed] is
      normally built over an empty trace (which only fixes [n_users]
      and the cost vector).  [step] and [feed] run the same decision
      body, and may be mixed only if the caller keeps positions
      consecutive.  @raise Policy_error as [step]. *)

  val served : t -> int
  (** Requests replayed so far through [step]/[feed]. *)

  val finish : t -> result
  (** Terminal flush (when [init] was given [~flush:true]) plus result
      assembly.  [result.trace_length] is the number of requests
      actually replayed (= the trace length after a full [step] loop). *)
end

val record_result_obs : result -> unit
(** Record the per-run observability counters {!run} records after a
    completed run; no-op while recording is off.  Exposed so the fused
    sweep driver can keep obs metrics identical to per-cell {!run}s. *)

val run :
  ?flush:bool ->
  ?on_event:(event -> unit) ->
  ?index:Trace.Index.t ->
  k:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Policy.t ->
  Trace.t ->
  result
(** [run ~k ~costs policy trace] replays [trace].

    @param flush terminal dummy-user flush (default false)
    @param on_event called for every decision, in trace order
    @param index reuse a prebuilt index (otherwise built on demand for
           offline policies)
    @raise Invalid_argument if [costs] has not exactly one entry per
           user
    @raise Policy_error if the policy misbehaves *)

val run_logged :
  ?flush:bool ->
  ?index:Trace.Index.t ->
  k:int ->
  costs:Ccache_cost.Cost_function.t array ->
  Policy.t ->
  Trace.t ->
  result * event list
(** {!run} plus the full decision log. *)
