(** Shard routing (see the interface).  The page-hash partition mixes
    the packed page through a SplitMix64-style avalanche before the
    modulo: [Page.hash] alone leaves the low bits dominated by the page
    id, which for the dense ids the workload generators emit would turn
    [mod shards] into a round-robin over ids — adjacent pages of one
    tenant on adjacent shards, i.e. an accidentally adversarial
    partition for locality experiments. *)

open Ccache_trace

type t =
  | By_page of { shards : int }
  | By_tenant of { shards : int; assignment : int array }

let by_page ~shards =
  if shards <= 0 then invalid_arg "Router.by_page: shards must be positive";
  By_page { shards }

let by_tenant ?assignment ~shards ~n_users () =
  if shards <= 0 then invalid_arg "Router.by_tenant: shards must be positive";
  let assignment =
    match assignment with
    | None -> Array.init n_users (fun u -> u mod shards)
    | Some a ->
        if Array.length a <> n_users then
          invalid_arg "Router.by_tenant: assignment/users mismatch";
        Array.iter
          (fun s ->
            if s < 0 || s >= shards then
              invalid_arg "Router.by_tenant: assignment outside shard range")
          a;
        Array.copy a
  in
  By_tenant { shards; assignment }

let shards = function By_page { shards } | By_tenant { shards; _ } -> shards

let is_by_tenant = function By_page _ -> false | By_tenant _ -> true

let name = function By_page _ -> "page" | By_tenant _ -> "tenant"

(* SplitMix64-shaped finalizer (xorshift / odd-multiply rounds): every
   input bit affects every output bit, so the subsequent modulo sees a
   uniform value.  The multipliers are xxHash64's odd primes, chosen
   because they fit OCaml's 63-bit int literals; uniformity, not any
   published stream, is what matters here, and the masked result stays
   non-negative. *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x27d4eb2f165667c5 in
  let x = x lxor (x lsr 27) in
  let x = x * 0x165667b19e3779f9 in
  (x lxor (x lsr 31)) land max_int

let route t page =
  match t with
  | By_page { shards } -> mix (Page.pack page) mod shards
  | By_tenant { assignment; _ } -> assignment.(Page.user page)

let split t trace =
  let n = shards t in
  let buckets = Array.make n [] in
  let len = Trace.length trace in
  for pos = len - 1 downto 0 do
    let page = Trace.request trace pos in
    let s = route t page in
    buckets.(s) <- page :: buckets.(s)
  done;
  let n_users = Trace.n_users trace in
  Array.map (fun pages -> Trace.of_list ~n_users pages) buckets
